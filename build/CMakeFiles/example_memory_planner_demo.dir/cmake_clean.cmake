file(REMOVE_RECURSE
  "CMakeFiles/example_memory_planner_demo.dir/examples/memory_planner_demo.cpp.o"
  "CMakeFiles/example_memory_planner_demo.dir/examples/memory_planner_demo.cpp.o.d"
  "example_memory_planner_demo"
  "example_memory_planner_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_memory_planner_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
