# Empty dependencies file for example_memory_planner_demo.
# This may be replaced when dependencies are built.
