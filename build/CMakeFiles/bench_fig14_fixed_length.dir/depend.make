# Empty dependencies file for bench_fig14_fixed_length.
# This may be replaced when dependencies are built.
