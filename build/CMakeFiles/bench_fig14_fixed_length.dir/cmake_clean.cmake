file(REMOVE_RECURSE
  "CMakeFiles/bench_fig14_fixed_length.dir/bench/fig14_fixed_length.cc.o"
  "CMakeFiles/bench_fig14_fixed_length.dir/bench/fig14_fixed_length.cc.o.d"
  "bench_fig14_fixed_length"
  "bench_fig14_fixed_length.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig14_fixed_length.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
