file(REMOVE_RECURSE
  "CMakeFiles/bench_fig16_serving_long.dir/bench/fig16_serving_long.cc.o"
  "CMakeFiles/bench_fig16_serving_long.dir/bench/fig16_serving_long.cc.o.d"
  "bench_fig16_serving_long"
  "bench_fig16_serving_long.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig16_serving_long.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
