# Empty dependencies file for bench_fig16_serving_long.
# This may be replaced when dependencies are built.
