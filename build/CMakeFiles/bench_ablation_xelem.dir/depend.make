# Empty dependencies file for bench_ablation_xelem.
# This may be replaced when dependencies are built.
