file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_xelem.dir/bench/ablation_xelem.cc.o"
  "CMakeFiles/bench_ablation_xelem.dir/bench/ablation_xelem.cc.o.d"
  "bench_ablation_xelem"
  "bench_ablation_xelem.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_xelem.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
