# Empty dependencies file for bench_gen_serving.
# This may be replaced when dependencies are built.
