file(REMOVE_RECURSE
  "CMakeFiles/bench_gen_serving.dir/bench/gen_serving.cc.o"
  "CMakeFiles/bench_gen_serving.dir/bench/gen_serving.cc.o.d"
  "bench_gen_serving"
  "bench_gen_serving.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_gen_serving.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
