file(REMOVE_RECURSE
  "libturbo.a"
)
