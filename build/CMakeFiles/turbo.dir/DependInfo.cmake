
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/common/aligned_buffer.cc" "CMakeFiles/turbo.dir/src/common/aligned_buffer.cc.o" "gcc" "CMakeFiles/turbo.dir/src/common/aligned_buffer.cc.o.d"
  "/root/repo/src/common/logging.cc" "CMakeFiles/turbo.dir/src/common/logging.cc.o" "gcc" "CMakeFiles/turbo.dir/src/common/logging.cc.o.d"
  "/root/repo/src/common/rng.cc" "CMakeFiles/turbo.dir/src/common/rng.cc.o" "gcc" "CMakeFiles/turbo.dir/src/common/rng.cc.o.d"
  "/root/repo/src/common/stats.cc" "CMakeFiles/turbo.dir/src/common/stats.cc.o" "gcc" "CMakeFiles/turbo.dir/src/common/stats.cc.o.d"
  "/root/repo/src/common/thread_pool.cc" "CMakeFiles/turbo.dir/src/common/thread_pool.cc.o" "gcc" "CMakeFiles/turbo.dir/src/common/thread_pool.cc.o.d"
  "/root/repo/src/genserve/generation_scheduler.cc" "CMakeFiles/turbo.dir/src/genserve/generation_scheduler.cc.o" "gcc" "CMakeFiles/turbo.dir/src/genserve/generation_scheduler.cc.o.d"
  "/root/repo/src/genserve/generation_server.cc" "CMakeFiles/turbo.dir/src/genserve/generation_server.cc.o" "gcc" "CMakeFiles/turbo.dir/src/genserve/generation_server.cc.o.d"
  "/root/repo/src/genserve/kv_cache_pool.cc" "CMakeFiles/turbo.dir/src/genserve/kv_cache_pool.cc.o" "gcc" "CMakeFiles/turbo.dir/src/genserve/kv_cache_pool.cc.o.d"
  "/root/repo/src/gpukernels/block_reduce.cc" "CMakeFiles/turbo.dir/src/gpukernels/block_reduce.cc.o" "gcc" "CMakeFiles/turbo.dir/src/gpukernels/block_reduce.cc.o.d"
  "/root/repo/src/gpukernels/layernorm_sim.cc" "CMakeFiles/turbo.dir/src/gpukernels/layernorm_sim.cc.o" "gcc" "CMakeFiles/turbo.dir/src/gpukernels/layernorm_sim.cc.o.d"
  "/root/repo/src/gpukernels/softmax_sim.cc" "CMakeFiles/turbo.dir/src/gpukernels/softmax_sim.cc.o" "gcc" "CMakeFiles/turbo.dir/src/gpukernels/softmax_sim.cc.o.d"
  "/root/repo/src/gpusim/block.cc" "CMakeFiles/turbo.dir/src/gpusim/block.cc.o" "gcc" "CMakeFiles/turbo.dir/src/gpusim/block.cc.o.d"
  "/root/repo/src/gpusim/device_spec.cc" "CMakeFiles/turbo.dir/src/gpusim/device_spec.cc.o" "gcc" "CMakeFiles/turbo.dir/src/gpusim/device_spec.cc.o.d"
  "/root/repo/src/gpusim/interpreter.cc" "CMakeFiles/turbo.dir/src/gpusim/interpreter.cc.o" "gcc" "CMakeFiles/turbo.dir/src/gpusim/interpreter.cc.o.d"
  "/root/repo/src/gpusim/launch.cc" "CMakeFiles/turbo.dir/src/gpusim/launch.cc.o" "gcc" "CMakeFiles/turbo.dir/src/gpusim/launch.cc.o.d"
  "/root/repo/src/gpusim/warp.cc" "CMakeFiles/turbo.dir/src/gpusim/warp.cc.o" "gcc" "CMakeFiles/turbo.dir/src/gpusim/warp.cc.o.d"
  "/root/repo/src/graph/builders.cc" "CMakeFiles/turbo.dir/src/graph/builders.cc.o" "gcc" "CMakeFiles/turbo.dir/src/graph/builders.cc.o.d"
  "/root/repo/src/graph/fusion.cc" "CMakeFiles/turbo.dir/src/graph/fusion.cc.o" "gcc" "CMakeFiles/turbo.dir/src/graph/fusion.cc.o.d"
  "/root/repo/src/graph/graph.cc" "CMakeFiles/turbo.dir/src/graph/graph.cc.o" "gcc" "CMakeFiles/turbo.dir/src/graph/graph.cc.o.d"
  "/root/repo/src/kernels/elementwise.cc" "CMakeFiles/turbo.dir/src/kernels/elementwise.cc.o" "gcc" "CMakeFiles/turbo.dir/src/kernels/elementwise.cc.o.d"
  "/root/repo/src/kernels/embedding.cc" "CMakeFiles/turbo.dir/src/kernels/embedding.cc.o" "gcc" "CMakeFiles/turbo.dir/src/kernels/embedding.cc.o.d"
  "/root/repo/src/kernels/fp16.cc" "CMakeFiles/turbo.dir/src/kernels/fp16.cc.o" "gcc" "CMakeFiles/turbo.dir/src/kernels/fp16.cc.o.d"
  "/root/repo/src/kernels/gemm.cc" "CMakeFiles/turbo.dir/src/kernels/gemm.cc.o" "gcc" "CMakeFiles/turbo.dir/src/kernels/gemm.cc.o.d"
  "/root/repo/src/kernels/reduction.cc" "CMakeFiles/turbo.dir/src/kernels/reduction.cc.o" "gcc" "CMakeFiles/turbo.dir/src/kernels/reduction.cc.o.d"
  "/root/repo/src/memory/allocator.cc" "CMakeFiles/turbo.dir/src/memory/allocator.cc.o" "gcc" "CMakeFiles/turbo.dir/src/memory/allocator.cc.o.d"
  "/root/repo/src/memory/dynamic_allocators.cc" "CMakeFiles/turbo.dir/src/memory/dynamic_allocators.cc.o" "gcc" "CMakeFiles/turbo.dir/src/memory/dynamic_allocators.cc.o.d"
  "/root/repo/src/memory/gsoc_planner.cc" "CMakeFiles/turbo.dir/src/memory/gsoc_planner.cc.o" "gcc" "CMakeFiles/turbo.dir/src/memory/gsoc_planner.cc.o.d"
  "/root/repo/src/memory/model_aware_allocator.cc" "CMakeFiles/turbo.dir/src/memory/model_aware_allocator.cc.o" "gcc" "CMakeFiles/turbo.dir/src/memory/model_aware_allocator.cc.o.d"
  "/root/repo/src/model/classifier.cc" "CMakeFiles/turbo.dir/src/model/classifier.cc.o" "gcc" "CMakeFiles/turbo.dir/src/model/classifier.cc.o.d"
  "/root/repo/src/model/decoder.cc" "CMakeFiles/turbo.dir/src/model/decoder.cc.o" "gcc" "CMakeFiles/turbo.dir/src/model/decoder.cc.o.d"
  "/root/repo/src/model/encoder.cc" "CMakeFiles/turbo.dir/src/model/encoder.cc.o" "gcc" "CMakeFiles/turbo.dir/src/model/encoder.cc.o.d"
  "/root/repo/src/model/serialization.cc" "CMakeFiles/turbo.dir/src/model/serialization.cc.o" "gcc" "CMakeFiles/turbo.dir/src/model/serialization.cc.o.d"
  "/root/repo/src/model/weights.cc" "CMakeFiles/turbo.dir/src/model/weights.cc.o" "gcc" "CMakeFiles/turbo.dir/src/model/weights.cc.o.d"
  "/root/repo/src/perfmodel/kernel_cost.cc" "CMakeFiles/turbo.dir/src/perfmodel/kernel_cost.cc.o" "gcc" "CMakeFiles/turbo.dir/src/perfmodel/kernel_cost.cc.o.d"
  "/root/repo/src/perfmodel/model_latency.cc" "CMakeFiles/turbo.dir/src/perfmodel/model_latency.cc.o" "gcc" "CMakeFiles/turbo.dir/src/perfmodel/model_latency.cc.o.d"
  "/root/repo/src/perfmodel/runtime_profile.cc" "CMakeFiles/turbo.dir/src/perfmodel/runtime_profile.cc.o" "gcc" "CMakeFiles/turbo.dir/src/perfmodel/runtime_profile.cc.o.d"
  "/root/repo/src/serving/async_server.cc" "CMakeFiles/turbo.dir/src/serving/async_server.cc.o" "gcc" "CMakeFiles/turbo.dir/src/serving/async_server.cc.o.d"
  "/root/repo/src/serving/cost_table.cc" "CMakeFiles/turbo.dir/src/serving/cost_table.cc.o" "gcc" "CMakeFiles/turbo.dir/src/serving/cost_table.cc.o.d"
  "/root/repo/src/serving/load_balancer.cc" "CMakeFiles/turbo.dir/src/serving/load_balancer.cc.o" "gcc" "CMakeFiles/turbo.dir/src/serving/load_balancer.cc.o.d"
  "/root/repo/src/serving/model_registry.cc" "CMakeFiles/turbo.dir/src/serving/model_registry.cc.o" "gcc" "CMakeFiles/turbo.dir/src/serving/model_registry.cc.o.d"
  "/root/repo/src/serving/response_cache.cc" "CMakeFiles/turbo.dir/src/serving/response_cache.cc.o" "gcc" "CMakeFiles/turbo.dir/src/serving/response_cache.cc.o.d"
  "/root/repo/src/serving/scheduler.cc" "CMakeFiles/turbo.dir/src/serving/scheduler.cc.o" "gcc" "CMakeFiles/turbo.dir/src/serving/scheduler.cc.o.d"
  "/root/repo/src/serving/server.cc" "CMakeFiles/turbo.dir/src/serving/server.cc.o" "gcc" "CMakeFiles/turbo.dir/src/serving/server.cc.o.d"
  "/root/repo/src/serving/simulator.cc" "CMakeFiles/turbo.dir/src/serving/simulator.cc.o" "gcc" "CMakeFiles/turbo.dir/src/serving/simulator.cc.o.d"
  "/root/repo/src/serving/workload.cc" "CMakeFiles/turbo.dir/src/serving/workload.cc.o" "gcc" "CMakeFiles/turbo.dir/src/serving/workload.cc.o.d"
  "/root/repo/src/tensor/tensor.cc" "CMakeFiles/turbo.dir/src/tensor/tensor.cc.o" "gcc" "CMakeFiles/turbo.dir/src/tensor/tensor.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
