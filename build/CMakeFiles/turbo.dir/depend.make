# Empty dependencies file for turbo.
# This may be replaced when dependencies are built.
