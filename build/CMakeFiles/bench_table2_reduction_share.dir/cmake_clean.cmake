file(REMOVE_RECURSE
  "CMakeFiles/bench_table2_reduction_share.dir/bench/table2_reduction_share.cc.o"
  "CMakeFiles/bench_table2_reduction_share.dir/bench/table2_reduction_share.cc.o.d"
  "bench_table2_reduction_share"
  "bench_table2_reduction_share.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table2_reduction_share.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
