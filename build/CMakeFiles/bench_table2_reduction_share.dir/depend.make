# Empty dependencies file for bench_table2_reduction_share.
# This may be replaced when dependencies are built.
