# Empty dependencies file for bench_fig15_serving_short.
# This may be replaced when dependencies are built.
