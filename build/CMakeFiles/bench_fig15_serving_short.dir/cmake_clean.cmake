file(REMOVE_RECURSE
  "CMakeFiles/bench_fig15_serving_short.dir/bench/fig15_serving_short.cc.o"
  "CMakeFiles/bench_fig15_serving_short.dir/bench/fig15_serving_short.cc.o.d"
  "bench_fig15_serving_short"
  "bench_fig15_serving_short.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig15_serving_short.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
