file(REMOVE_RECURSE
  "CMakeFiles/bench_precision_tc.dir/bench/precision_tc.cc.o"
  "CMakeFiles/bench_precision_tc.dir/bench/precision_tc.cc.o.d"
  "bench_precision_tc"
  "bench_precision_tc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_precision_tc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
