# Empty dependencies file for bench_precision_tc.
# This may be replaced when dependencies are built.
