# Empty dependencies file for bench_fig9_variable_length.
# This may be replaced when dependencies are built.
