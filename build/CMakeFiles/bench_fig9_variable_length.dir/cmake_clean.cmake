file(REMOVE_RECURSE
  "CMakeFiles/bench_fig9_variable_length.dir/bench/fig9_variable_length.cc.o"
  "CMakeFiles/bench_fig9_variable_length.dir/bench/fig9_variable_length.cc.o.d"
  "bench_fig9_variable_length"
  "bench_fig9_variable_length.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig9_variable_length.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
