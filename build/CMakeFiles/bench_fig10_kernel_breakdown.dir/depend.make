# Empty dependencies file for bench_fig10_kernel_breakdown.
# This may be replaced when dependencies are built.
