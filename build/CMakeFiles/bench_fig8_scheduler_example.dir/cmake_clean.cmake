file(REMOVE_RECURSE
  "CMakeFiles/bench_fig8_scheduler_example.dir/bench/fig8_scheduler_example.cc.o"
  "CMakeFiles/bench_fig8_scheduler_example.dir/bench/fig8_scheduler_example.cc.o.d"
  "bench_fig8_scheduler_example"
  "bench_fig8_scheduler_example.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig8_scheduler_example.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
