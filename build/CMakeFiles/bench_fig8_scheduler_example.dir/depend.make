# Empty dependencies file for bench_fig8_scheduler_example.
# This may be replaced when dependencies are built.
