file(REMOVE_RECURSE
  "CMakeFiles/bench_fig11_12_memory.dir/bench/fig11_12_memory.cc.o"
  "CMakeFiles/bench_fig11_12_memory.dir/bench/fig11_12_memory.cc.o.d"
  "bench_fig11_12_memory"
  "bench_fig11_12_memory.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig11_12_memory.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
