file(REMOVE_RECURSE
  "CMakeFiles/bench_fig5_batch_reduction.dir/bench/fig5_batch_reduction.cc.o"
  "CMakeFiles/bench_fig5_batch_reduction.dir/bench/fig5_batch_reduction.cc.o.d"
  "bench_fig5_batch_reduction"
  "bench_fig5_batch_reduction.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig5_batch_reduction.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
