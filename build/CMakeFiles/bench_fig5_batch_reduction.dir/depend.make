# Empty dependencies file for bench_fig5_batch_reduction.
# This may be replaced when dependencies are built.
