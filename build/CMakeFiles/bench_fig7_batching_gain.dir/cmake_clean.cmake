file(REMOVE_RECURSE
  "CMakeFiles/bench_fig7_batching_gain.dir/bench/fig7_batching_gain.cc.o"
  "CMakeFiles/bench_fig7_batching_gain.dir/bench/fig7_batching_gain.cc.o.d"
  "bench_fig7_batching_gain"
  "bench_fig7_batching_gain.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig7_batching_gain.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
