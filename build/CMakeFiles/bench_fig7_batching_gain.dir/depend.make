# Empty dependencies file for bench_fig7_batching_gain.
# This may be replaced when dependencies are built.
