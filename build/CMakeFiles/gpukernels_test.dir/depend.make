# Empty dependencies file for gpukernels_test.
# This may be replaced when dependencies are built.
