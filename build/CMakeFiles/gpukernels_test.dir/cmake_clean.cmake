file(REMOVE_RECURSE
  "CMakeFiles/gpukernels_test.dir/tests/gpukernels_test.cc.o"
  "CMakeFiles/gpukernels_test.dir/tests/gpukernels_test.cc.o.d"
  "gpukernels_test"
  "gpukernels_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gpukernels_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
