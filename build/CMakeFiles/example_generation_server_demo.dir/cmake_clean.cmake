file(REMOVE_RECURSE
  "CMakeFiles/example_generation_server_demo.dir/examples/generation_server_demo.cpp.o"
  "CMakeFiles/example_generation_server_demo.dir/examples/generation_server_demo.cpp.o.d"
  "example_generation_server_demo"
  "example_generation_server_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_generation_server_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
