# Empty dependencies file for example_generation_server_demo.
# This may be replaced when dependencies are built.
