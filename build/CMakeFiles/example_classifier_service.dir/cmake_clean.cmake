file(REMOVE_RECURSE
  "CMakeFiles/example_classifier_service.dir/examples/classifier_service.cpp.o"
  "CMakeFiles/example_classifier_service.dir/examples/classifier_service.cpp.o.d"
  "example_classifier_service"
  "example_classifier_service.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_classifier_service.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
