# Empty dependencies file for example_classifier_service.
# This may be replaced when dependencies are built.
