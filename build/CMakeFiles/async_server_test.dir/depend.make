# Empty dependencies file for async_server_test.
# This may be replaced when dependencies are built.
