file(REMOVE_RECURSE
  "CMakeFiles/async_server_test.dir/tests/async_server_test.cc.o"
  "CMakeFiles/async_server_test.dir/tests/async_server_test.cc.o.d"
  "async_server_test"
  "async_server_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/async_server_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
