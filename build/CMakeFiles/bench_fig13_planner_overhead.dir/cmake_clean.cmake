file(REMOVE_RECURSE
  "CMakeFiles/bench_fig13_planner_overhead.dir/bench/fig13_planner_overhead.cc.o"
  "CMakeFiles/bench_fig13_planner_overhead.dir/bench/fig13_planner_overhead.cc.o.d"
  "bench_fig13_planner_overhead"
  "bench_fig13_planner_overhead.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig13_planner_overhead.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
