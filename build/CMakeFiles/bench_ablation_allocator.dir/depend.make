# Empty dependencies file for bench_ablation_allocator.
# This may be replaced when dependencies are built.
