file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_allocator.dir/bench/ablation_allocator.cc.o"
  "CMakeFiles/bench_ablation_allocator.dir/bench/ablation_allocator.cc.o.d"
  "bench_ablation_allocator"
  "bench_ablation_allocator.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_allocator.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
