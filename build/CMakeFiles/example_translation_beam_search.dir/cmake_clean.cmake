file(REMOVE_RECURSE
  "CMakeFiles/example_translation_beam_search.dir/examples/translation_beam_search.cpp.o"
  "CMakeFiles/example_translation_beam_search.dir/examples/translation_beam_search.cpp.o.d"
  "example_translation_beam_search"
  "example_translation_beam_search.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_translation_beam_search.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
