# Empty dependencies file for example_translation_beam_search.
# This may be replaced when dependencies are built.
