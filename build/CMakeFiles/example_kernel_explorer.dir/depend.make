# Empty dependencies file for example_kernel_explorer.
# This may be replaced when dependencies are built.
