file(REMOVE_RECURSE
  "CMakeFiles/example_kernel_explorer.dir/examples/kernel_explorer.cpp.o"
  "CMakeFiles/example_kernel_explorer.dir/examples/kernel_explorer.cpp.o.d"
  "example_kernel_explorer"
  "example_kernel_explorer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_kernel_explorer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
