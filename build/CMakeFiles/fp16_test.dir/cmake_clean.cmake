file(REMOVE_RECURSE
  "CMakeFiles/fp16_test.dir/tests/fp16_test.cc.o"
  "CMakeFiles/fp16_test.dir/tests/fp16_test.cc.o.d"
  "fp16_test"
  "fp16_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fp16_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
