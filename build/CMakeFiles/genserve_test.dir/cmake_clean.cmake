file(REMOVE_RECURSE
  "CMakeFiles/genserve_test.dir/tests/genserve_test.cc.o"
  "CMakeFiles/genserve_test.dir/tests/genserve_test.cc.o.d"
  "genserve_test"
  "genserve_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/genserve_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
