# Empty dependencies file for genserve_test.
# This may be replaced when dependencies are built.
