// A text-classification service (the paper's §6.3 scenario): variable-
// length requests flow through the serving pipeline — response cache, DP
// batch scheduler, zero-padding with attention masks — and the whole batch
// executes through the real model.
#include <cstdio>

#include "common/rng.h"
#include "serving/server.h"

using namespace turbo;

int main() {
  // Classifier over a small encoder; the serving path is identical for the
  // full BERT-base configuration.
  auto classifier = std::make_unique<model::SequenceClassifier>(
      model::ModelConfig::tiny(2, 64, 4, 128, 1000), /*num_classes=*/4,
      /*seed=*/2021);

  // cached_cost table: in production this comes from the warm-up phase on
  // the target GPU; here a simple analytic stand-in.
  auto costs = serving::CostTable::warmup(
      [](int len, int batch) { return 0.6 + 0.012 * len * batch; },
      /*max_len=*/128, /*max_batch=*/8);

  serving::Server server(std::move(classifier),
                         std::make_unique<serving::DpBatchScheduler>(8),
                         std::move(costs), /*cache_capacity=*/64);

  // A burst of requests with very different lengths — exactly the workload
  // where naive batching wastes compute on padding.
  Rng rng(99);
  std::vector<serving::Request> burst;
  int64_t id = 0;
  for (int len : {7, 9, 8, 61, 64, 58, 6, 63}) {
    serving::Request r;
    r.id = id++;
    r.length = len;
    r.tokens = rng.token_ids(len, 1000);
    burst.push_back(std::move(r));
  }

  std::printf("serving a burst of %zu variable-length requests...\n",
              burst.size());
  const auto results = server.serve(burst);
  for (size_t i = 0; i < results.size(); ++i) {
    std::printf("  request %2lld (len %2d) -> class %d%s\n",
                static_cast<long long>(results[i].request_id),
                burst[i].length, results[i].label,
                results[i].from_cache ? "  [cache]" : "");
  }

  // Send two repeats: the response cache answers without inference.
  std::vector<serving::Request> repeats = {burst[0], burst[3]};
  const auto cached = server.serve(repeats);
  std::printf("\nrepeat requests:\n");
  for (size_t i = 0; i < cached.size(); ++i) {
    std::printf("  request %2lld -> class %d%s\n",
                static_cast<long long>(cached[i].request_id),
                cached[i].label, cached[i].from_cache ? "  [cache]" : "");
  }
  std::printf("\ncache: %zu hits, %zu misses\n", server.cache()->hits(),
              server.cache()->misses());
  return 0;
}
