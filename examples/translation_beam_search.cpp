// Neural-machine-translation style decoding (the paper's Seq2Seq Decoder
// workload, Fig. 9 bottom): encode a source sentence, then beam-search
// decode with cached self-attention and precomputed cross-attention K/V.
#include <cstdio>

#include "model/decoder.h"
#include "model/encoder.h"

using namespace turbo;

int main() {
  const int bos = 1, eos = 2;
  model::ModelConfig config = model::ModelConfig::tiny(
      /*layers=*/2, /*hidden=*/64, /*heads=*/4, /*inter=*/256,
      /*vocab=*/500);

  // Source-side encoder and target-side decoder (separate weight sets).
  model::EncoderModel encoder(config, /*seed=*/31);
  model::Seq2SeqDecoder decoder(config, /*seed=*/32);

  // "Translate" three source sentences of increasing length.
  Rng rng(8);
  for (int src_len : {6, 14, 28}) {
    Tensor src = Tensor::owned(Shape{1, src_len}, DType::kI32);
    auto toks = rng.token_ids(src_len, config.vocab);
    std::copy(toks.begin(), toks.end(), src.data<int32_t>());

    Tensor memory_3d = encoder.forward(src);
    // Encoder output [1, S, H] -> decoder memory [S, H].
    Tensor memory = Tensor::view(memory_3d.data<float>(),
                                 Shape{src_len, config.hidden});

    std::printf("source len %2d:\n", src_len);
    for (int beam : {1, 4}) {
      const auto hyp = decoder.decode(memory, /*max_len=*/src_len + 4, bos,
                                      eos, beam);
      std::printf("  beam=%d  log_prob=%8.3f  tokens:", beam, hyp.log_prob);
      for (size_t i = 0; i < hyp.tokens.size() && i < 10; ++i) {
        std::printf(" %d", hyp.tokens[i]);
      }
      if (hyp.tokens.size() > 10) std::printf(" ...");
      std::printf("\n");
    }
  }
  std::printf("\n(beam=4 never scores below greedy; the self-attention KV "
              "cache grows one slot per generated token)\n");
  return 0;
}
