// Memory-planner walkthrough (the paper's Figure 6): plan the intermediate
// tensors of one BERT encoder layer for seq length 200, then re-plan for
// 240, printing each tensor's chunk and offset so the lifetime-sharing is
// visible.
#include <algorithm>
#include <cstdio>
#include <vector>

#include "graph/builders.h"
#include "memory/model_aware_allocator.h"

using namespace turbo;

namespace {

void show_plan(const char* title, const graph::Graph& layer, int seq,
               memory::ModelAwareAllocator& alloc) {
  const auto usages = layer.tensor_usages(1, seq);
  const auto plan = alloc.begin_inference(usages);

  std::printf("%s\n", title);
  std::printf("%-20s %10s %10s %8s %12s %10s\n", "tensor", "first_op",
              "last_op", "chunk", "offset", "bytes");
  std::vector<memory::TensorUsage> ordered = usages;
  std::sort(ordered.begin(), ordered.end(),
            [&](const auto& a, const auto& b) {
              const auto& pa = plan.placements.at(a.tensor_id);
              const auto& pb = plan.placements.at(b.tensor_id);
              if (pa.chunk_id != pb.chunk_id) return pa.chunk_id < pb.chunk_id;
              return pa.offset < pb.offset;
            });
  for (const auto& u : ordered) {
    const auto& p = plan.placements.at(u.tensor_id);
    std::printf("%-20s %10d %10d %8d %12zu %10zu\n", u.name.c_str(),
                u.first_op, u.last_op, p.chunk_id, p.offset, u.size);
  }
  std::printf("chunks: %d, footprint %.2f MB, planned in %.1f us\n\n",
              alloc.num_chunks(), plan.footprint_bytes / 1048576.0,
              plan.planning_us);
}

}  // namespace

int main() {
  const graph::Graph layer = graph::build_encoder_layer_fused({768, 12, 3072});
  memory::ModelAwareAllocator alloc;

  std::printf(
      "Figure 6 walkthrough — one BERT layer, allocator Algorithm 1\n"
      "(tensors with disjoint [first_op, last_op] share offsets)\n\n");
  show_plan("Memory allocation of seq_len = 200", layer, 200, alloc);
  show_plan("Memory allocation of seq_len = 240 (re-planned; chunks "
            "persist, marginal chunk added)",
            layer, 240, alloc);
  show_plan("Back to seq_len = 200 (oversized chunks released)", layer, 200,
            alloc);
  return 0;
}
