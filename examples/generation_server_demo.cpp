// A streaming generation service: seq2seq requests (source tokens in,
// generated tokens out) flow through the iteration-level serving stack —
// KV-cache pool, per-step batch re-formation, fused multi-sequence decode —
// and every token streams back to its client the moment it is decoded,
// while other sequences are still mid-generation.
#include <cstdio>
#include <future>
#include <mutex>
#include <vector>

#include "common/rng.h"
#include "genserve/generation_server.h"

using namespace turbo;

int main() {
  // Small seq2seq model; the serving path is identical for a full
  // transformer configuration.
  genserve::GenServerOptions options;
  options.pool.block_tokens = 8;
  options.pool.blocks_per_slab = 16;
  options.scheduler.max_active = 4;
  auto engine = std::make_unique<genserve::GenerationServer>(
      model::ModelConfig::tiny(2, 64, 4, 128, 1000), options, /*seed=*/2021);
  genserve::AsyncGenerationServer server(std::move(engine));

  // Submit a handful of translations with very different source lengths
  // and output budgets — the workload whole-batch scheduling handles worst.
  Rng rng(7);
  std::mutex out_mutex;
  std::vector<std::future<serving::GenerationResponse>> futures;
  int64_t id = 0;
  for (int src_len : {5, 23, 11, 47, 8, 31}) {
    serving::GenerationRequest request;
    request.id = id++;
    request.src_tokens = rng.token_ids(src_len, 1000);
    request.max_new_tokens = 6 + src_len / 4;
    futures.push_back(server.submit(
        std::move(request),
        [&out_mutex](int64_t rid, int token, int step, bool last) {
          std::lock_guard<std::mutex> lock(out_mutex);
          std::printf("  stream: request %lld step %2d -> token %4d%s\n",
                      static_cast<long long>(rid), step, token,
                      last ? "  [done]" : "");
        }));
  }

  std::printf("\nsubmitted %lld requests; tokens above interleave across "
              "sequences (iteration-level batching)\n\n",
              static_cast<long long>(id));

  for (auto& f : futures) {
    const auto resp = f.get();
    std::printf("request %lld: %zu tokens in %d steps (%.2f ms)%s\n",
                static_cast<long long>(resp.request_id), resp.tokens.size(),
                resp.steps, resp.latency_ms,
                resp.hit_max_len ? " [length budget]" : " [EOS]");
  }

  server.shutdown();
  const auto snapshot = server.pool_snapshot();
  std::printf("\nKV pool: peak footprint %.1f KB, resident after drain "
              "%.1f KB\n",
              snapshot.peak_device_bytes / 1024.0,
              snapshot.device_bytes / 1024.0);
  return 0;
}
