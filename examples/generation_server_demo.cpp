// A streaming multi-model generation service: seq2seq requests (source
// tokens in, generated tokens out) flow through the iteration-level
// serving stack — per-model KV-cache pools on one shared slab budget,
// per-step batch re-formation, fused multi-sequence decode — and every
// token streams back to its client the moment it is decoded, while other
// sequences (of either model!) are still mid-generation.
//
// Two bundles register under different names; requests route by
// GenerationRequest::model (empty = default model, model_version <= 0 =
// latest registered version).
#include <cstdio>
#include <future>
#include <mutex>
#include <vector>

#include "common/rng.h"
#include "genserve/model_bundle.h"
#include "genserve/multi_model_server.h"
#include "obs/passes.h"

using namespace turbo;

int main() {
  // Two small seq2seq configurations; the serving path is identical for
  // full transformer sizes. Both KV pools draw on one 256 KB slab budget,
  // guaranteed half-and-half — a busy model borrows the other's idle
  // headroom and gives it back (via preemption + bit-identical replay)
  // when the owner's traffic returns.
  genserve::GenServerOptions engine;
  engine.pool.block_tokens = 8;
  engine.pool.blocks_per_slab = 16;
  engine.scheduler.max_active = 4;
  genserve::MultiModelOptions options;
  options.engine = engine;
  // Step-level tracing: both engines record phase spans into one shared
  // ring, summarized offline at end of run (see src/obs/).
  options.engine.trace.enabled = true;
  options.total_kv_bytes = 256 * 1024;
  genserve::AsyncMultiModelGenerationServer server(options);

  auto base = genserve::make_bundle(
      "base", 1, model::ModelConfig::tiny(2, 64, 4, 128, 1000), /*seed=*/2021);
  auto wide = genserve::make_bundle(
      "wide", 1, model::ModelConfig::tiny(2, 128, 8, 256, 1000),
      /*seed=*/2022);
  server.register_bundle(base, options.total_kv_bytes / 2).get();
  server.register_bundle(wide, options.total_kv_bytes / 2).get();

  // Submit translations with very different source lengths and output
  // budgets, alternating between the two models.
  Rng rng(7);
  std::mutex out_mutex;
  std::vector<std::future<serving::GenerationResponse>> futures;
  std::vector<std::string> routed;
  int64_t id = 0;
  for (int src_len : {5, 23, 11, 47, 8, 31}) {
    serving::GenerationRequest request;
    request.id = id;
    request.src_tokens = rng.token_ids(src_len, 1000);
    request.max_new_tokens = 6 + src_len / 4;
    request.model = id % 2 == 0 ? "base" : "wide";  // explicit routing
    routed.push_back(request.model);
    ++id;
    futures.push_back(server.submit(
        std::move(request),
        [&out_mutex](int64_t rid, int token, int step, bool last) {
          std::lock_guard<std::mutex> lock(out_mutex);
          std::printf("  stream: request %lld step %2d -> token %4d%s\n",
                      static_cast<long long>(rid), step, token,
                      last ? "  [done]" : "");
        }));
  }

  std::printf("\nsubmitted %lld requests across 2 models; tokens above "
              "interleave across sequences AND models (iteration-level "
              "batching per model, cross-model round-robin)\n\n",
              static_cast<long long>(id));

  for (size_t i = 0; i < futures.size(); ++i) {
    const auto resp = futures[i].get();
    std::printf("request %lld -> %-4s: %zu tokens in %d steps (%.2f ms)%s\n",
                static_cast<long long>(resp.request_id), routed[i].c_str(),
                resp.tokens.size(), resp.steps, resp.latency_ms,
                resp.hit_max_len ? " [length budget]" : " [EOS]");
  }

  server.shutdown();
  std::printf("\nper-model breakdown:\n");
  for (const auto& s : server.model_stats()) {
    std::printf("  %s:v%d  served %zu  peak pool %.1f KB  preempt %zu\n",
                s.name.c_str(), s.version, s.served,
                s.pool.peak_device_bytes / 1024.0, s.pool.preemptions);
  }
  const auto budget = server.budget_snapshot();
  std::printf("shared budget: peak %.1f / %.1f KB, resident after drain "
              "%.1f KB\n",
              budget.peak_used_bytes / 1024.0, budget.total_bytes / 1024.0,
              budget.used_bytes / 1024.0);

  // Offline latency attribution over the drained trace: per-phase p99
  // table, queueing breakdown, and the worst preemption cascade, straight
  // from the span stream both engines recorded.
  std::printf("\n%s", obs::render_trace_summary(server.trace_spans()).c_str());
  return 0;
}
