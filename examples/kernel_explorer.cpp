// Kernel explorer: simulate the batch-reduction kernels for any shape from
// the command line and compare implementations — handy for reasoning about
// where the XElem batching pays off on a given device.
//
//   kernel_explorer [rows cols [x_elem]]
//
// Defaults to the BERT-base attention softmax at batch 20, seq 128.
#include <cstdio>
#include <cstdlib>

#include "gpukernels/reduction_sim.h"
#include "gpusim/interpreter.h"

using namespace turbo;
using gpukernels::ReductionImpl;

int main(int argc, char** argv) {
  long rows = 20L * 12 * 128;
  long cols = 128;
  int x_elem = 2;
  if (argc >= 3) {
    rows = std::atol(argv[1]);
    cols = std::atol(argv[2]);
  }
  if (argc >= 4) x_elem = std::atoi(argv[3]);
  if (rows <= 0 || cols <= 0 || x_elem <= 0) {
    std::fprintf(stderr, "usage: %s [rows cols [x_elem]]\n", argv[0]);
    return 1;
  }

  for (const auto& spec :
       {gpusim::DeviceSpec::rtx2060(), gpusim::DeviceSpec::v100()}) {
    std::printf("%s — softmax over [%ld x %ld], layernorm over [%ld x %ld]\n",
                spec.name.c_str(), rows, cols, rows, cols);
    const auto soft_base = gpukernels::softmax_sim(
        nullptr, rows, cols, 1.0f, ReductionImpl::kBaseline, spec);
    const auto soft_cudnn = gpukernels::softmax_sim(
        nullptr, rows, cols, 1.0f, ReductionImpl::kCudnn, spec);
    const auto soft_turbo = gpukernels::softmax_sim(
        nullptr, rows, cols, 1.0f, ReductionImpl::kTurbo, spec, x_elem);
    std::printf("  softmax   baseline %8.2f us   cudnn %8.2f us   "
                "turbo(X=%d) %8.2f us   -> %.2fx / %.2fx\n",
                soft_base.time_us, soft_cudnn.time_us, x_elem,
                soft_turbo.time_us, soft_base.time_us / soft_turbo.time_us,
                soft_cudnn.time_us / soft_turbo.time_us);
    std::printf("    grid %d blocks, %d/SM resident, %d wave(s), %.0f "
                "cycles/block\n",
                soft_turbo.launch.grid_blocks, soft_turbo.launch.blocks_per_sm,
                soft_turbo.launch.waves, soft_turbo.launch.block_cycles);

    const auto ln_base = gpukernels::layernorm_sim(
        nullptr, nullptr, nullptr, nullptr, rows, cols,
        ReductionImpl::kBaseline, spec);
    const auto ln_turbo = gpukernels::layernorm_sim(
        nullptr, nullptr, nullptr, nullptr, rows, cols,
        ReductionImpl::kTurbo, spec, x_elem);
    std::printf("  layernorm baseline %8.2f us                       "
                "turbo(X=%d) %8.2f us   -> %.2fx\n\n",
                ln_base.time_us, x_elem, ln_turbo.time_us,
                ln_base.time_us / ln_turbo.time_us);
  }

  // Instruction-level view (Figure 4): the warp-reduction inner loop as a
  // scoreboarded program.
  const auto spec = gpusim::DeviceSpec::rtx2060();
  std::printf("warp-reduce inner loop, instruction-level (X rows per warp "
              "pass):\n");
  std::printf("  %-4s %14s %14s %10s\n", "X", "chain cyc/row",
              "xelem cyc/row", "speedup");
  for (int x : {1, 2, 4, 8}) {
    const double chain =
        gpusim::run_warp_program(gpusim::make_reduce_chain_program(x), {},
                                 spec)
            .cycles /
        x;
    const double inter =
        gpusim::run_warp_program(gpusim::make_reduce_interleaved_program(x),
                                 {}, spec)
            .cycles /
        x;
    std::printf("  %-4d %14.1f %14.1f %9.2fx\n", x, chain, inter,
                chain / inter);
  }
  return 0;
}
