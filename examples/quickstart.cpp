// Quickstart: load a BERT model, run one inference, inspect the runtime.
//
// The C++ equivalent of the paper's §6.1 Python snippet: construct a model,
// feed token ids, get hidden states — with the variable-length-aware
// allocator planning memory for each request behind the scenes.
#include <chrono>
#include <cstdio>

#include "model/encoder.h"

using namespace turbo;

int main() {
  // A small BERT-style configuration so the example runs in milliseconds;
  // swap in ModelConfig::bert_base() for the full 12-layer model.
  model::ModelConfig config = model::ModelConfig::tiny(
      /*layers=*/4, /*hidden=*/128, /*heads=*/4, /*inter=*/512,
      /*vocab=*/30522);
  model::EncoderModel model(config, /*seed=*/42);

  // Token ids for one request (the paper's snippet uses 4 tokens).
  Tensor ids = Tensor::owned(Shape{1, 4}, DType::kI32);
  int32_t* d = ids.data<int32_t>();
  d[0] = 12166;
  d[1] = 10699;
  d[2] = 16752;
  d[3] = 4454;

  const auto t0 = std::chrono::steady_clock::now();
  Tensor hidden = model.forward(ids);
  const double ms = std::chrono::duration<double, std::milli>(
                        std::chrono::steady_clock::now() - t0)
                        .count();

  std::printf("input:  [1, 4] token ids\n");
  std::printf("output: %s hidden states in %.2f ms\n",
              hidden.shape().str().c_str(), ms);
  std::printf("first output row (first 6 of %d dims):", config.hidden);
  for (int h = 0; h < 6; ++h) std::printf(" %+.4f", hidden.at({0, 0, h}));
  std::printf("\n");

  // Variable-length serving: a longer request arrives next; the allocator
  // re-plans, adding only the marginal chunks.
  Rng rng(7);
  Tensor long_ids = Tensor::owned(Shape{1, 64}, DType::kI32);
  auto toks = rng.token_ids(64, config.vocab);
  std::copy(toks.begin(), toks.end(), long_ids.data<int32_t>());
  model.forward(long_ids);

  const auto& stats = model.allocator().stats();
  std::printf("\nallocator after two requests (len 4, then len 64):\n");
  std::printf("  device mallocs: %zu (%.2f KB total)\n",
              stats.device_malloc_count, stats.device_malloc_bytes / 1024.0);
  std::printf("  resident:       %.2f KB across %d chunk(s)\n",
              stats.current_device_bytes / 1024.0,
              model.allocator().num_chunks());
  std::printf("  last plan cost: %.1f us\n", model.last_planning_us());
  return 0;
}
