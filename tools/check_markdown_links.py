#!/usr/bin/env python3
"""Fail on broken intra-repo markdown links.

Scans every *.md file in the repository (skipping build trees and .git)
for inline links/images `[text](target)` and reference definitions
`[label]: target`, and checks that every relative target resolves to an
existing file or directory. For targets with a `#fragment` pointing at a
markdown file, the fragment must match a heading's GitHub-style anchor.

External links (http/https/mailto) are not fetched — CI must not depend
on the network. Stdlib only.
"""

import os
import re
import sys

SKIP_DIRS = {".git", ".claude", "node_modules"}
SKIP_PREFIXES = ("build",)  # build/, build-asan/, ...

INLINE_LINK = re.compile(r"!?\[[^\]]*\]\(([^()\s]+(?:\([^()]*\))?)\)")
REF_DEF = re.compile(r"^\s*\[[^\]]+\]:\s+(\S+)", re.MULTILINE)
HEADING = re.compile(r"^#{1,6}\s+(.+?)\s*#*\s*$", re.MULTILINE)
CODE_FENCE = re.compile(r"^(```|~~~).*?^\1\s*$", re.MULTILINE | re.DOTALL)


def heading_anchor(text):
    """GitHub-style anchor: lowercase, drop punctuation, spaces to dashes."""
    text = re.sub(r"`([^`]*)`", r"\1", text)              # inline code
    text = re.sub(r"\[([^\]]*)\]\([^)]*\)", r"\1", text)  # links
    text = text.strip().lower()
    text = re.sub(r"[^\w\- ]", "", text)
    return text.replace(" ", "-")


def anchors_of(md_path):
    with open(md_path, encoding="utf-8") as f:
        body = CODE_FENCE.sub("", f.read())
    anchors = set()
    counts = {}
    for m in HEADING.finditer(body):
        a = heading_anchor(m.group(1))
        n = counts.get(a, 0)
        counts[a] = n + 1
        anchors.add(a if n == 0 else f"{a}-{n}")
    return anchors


def md_files(root):
    for dirpath, dirnames, filenames in os.walk(root):
        dirnames[:] = [
            d for d in dirnames
            if d not in SKIP_DIRS and not d.startswith(SKIP_PREFIXES)
        ]
        for name in filenames:
            if name.endswith(".md"):
                yield os.path.join(dirpath, name)


def main():
    root = sys.argv[1] if len(sys.argv) > 1 else "."
    errors = []
    checked = 0
    for md in sorted(md_files(root)):
        with open(md, encoding="utf-8") as f:
            body = CODE_FENCE.sub("", f.read())
        targets = INLINE_LINK.findall(body) + REF_DEF.findall(body)
        for target in targets:
            if re.match(r"^[a-zA-Z][a-zA-Z0-9+.-]*:", target):  # scheme
                continue
            checked += 1
            path_part, _, fragment = target.partition("#")
            base = os.path.dirname(md)
            if path_part:
                resolved = os.path.normpath(os.path.join(base, path_part))
                if not os.path.exists(resolved):
                    errors.append(f"{md}: broken link -> {target}")
                    continue
            else:
                resolved = md  # pure fragment: same document
            if fragment and resolved.endswith(".md"):
                if fragment not in anchors_of(resolved):
                    errors.append(
                        f"{md}: missing anchor #{fragment} in {resolved}")
    for e in errors:
        print(f"error: {e}", file=sys.stderr)
    print(f"checked {checked} intra-repo links, {len(errors)} broken")
    return 1 if errors else 0


if __name__ == "__main__":
    sys.exit(main())
