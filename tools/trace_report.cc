// trace_report: offline latency attribution over a dumped trace.
//
// Reads a "# turbo-trace v1" file (what the benches write under
// TURBO_TRACE_OUT and what TraceRing snapshots serialize to via
// obs/trace_io.h), runs the obs::passes pipeline over it, and prints the
// report: per-phase p99 attribution, queueing-delay breakdown, preemption
// cascades, cross-model reclaim timeline.
//
//   trace_report trace.tsv                    # summary report
//   trace_report trace.tsv --chrome out.json  # + Chrome-tracing JSON
//                                             # (chrome://tracing, perfetto)
//   trace_report trace.tsv --timeline         # + reclaim timeline detail
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "common/check.h"
#include "obs/passes.h"
#include "obs/trace_io.h"

using namespace turbo;

int main(int argc, char** argv) {
  const char* trace_path = nullptr;
  const char* chrome_path = nullptr;
  bool timeline = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--chrome") == 0 && i + 1 < argc) {
      chrome_path = argv[++i];
    } else if (std::strcmp(argv[i], "--timeline") == 0) {
      timeline = true;
    } else if (trace_path == nullptr) {
      trace_path = argv[i];
    } else {
      std::fprintf(stderr, "unexpected argument '%s'\n", argv[i]);
      return 2;
    }
  }
  if (trace_path == nullptr) {
    std::fprintf(stderr,
                 "usage: trace_report <trace.tsv> [--chrome out.json] "
                 "[--timeline]\n");
    return 2;
  }

  try {
    const std::vector<obs::TraceSpan> spans =
        obs::read_trace_file(trace_path);
    std::fputs(obs::render_trace_summary(spans).c_str(), stdout);

    if (timeline) {
      for (const obs::ReclaimEvent& r : obs::reclaim_timeline(spans)) {
        std::printf("reclaim @%.3f ms (iter %lld): %s <- %s, %zu bytes\n",
                    r.at_ms, static_cast<long long>(r.iteration),
                    r.starved.c_str(), r.donor.c_str(),
                    static_cast<size_t>(r.bytes));
      }
    }

    if (chrome_path != nullptr) {
      const std::string json = obs::chrome_trace_json(spans);
      FILE* f = std::fopen(chrome_path, "w");
      TT_CHECK_MSG(f != nullptr, "cannot open " << chrome_path);
      std::fwrite(json.data(), 1, json.size(), f);
      std::fclose(f);
      std::printf("chrome trace written to %s (%zu bytes)\n", chrome_path,
                  json.size());
    }
  } catch (const CheckError& e) {
    std::fprintf(stderr, "trace_report: %s\n", e.what());
    return 1;
  }
  return 0;
}
