// Token-quantum scheduling unit tests: chunked prefill packed into the
// fused step (GenSchedulerOptions::step_token_quantum).
//
// These tests drive GenerationScheduler directly with a synthetic step
// driver (no decoder): prepare_step() hands back a StepPlan, the driver
// advances each scheduled sequence by its step_tokens rows and samples a
// token whenever the chunk reaches the frontier — exactly the contract
// GenerationServer honors. The server-level half (StepStats / metrics /
// bit-identity) lives at the bottom and in genserve_test.cc.

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <set>
#include <vector>

#include "common/check.h"
#include "common/rng.h"
#include "genserve/generation_server.h"
#include "genserve/kv_cache_pool.h"
#include "model/config.h"
#include "serving/cost_table.h"

namespace turbo::genserve {
namespace {

model::ModelConfig tiny() { return model::ModelConfig::tiny(2, 32, 2, 64, 50); }

model::ModelConfig tiny_causal() {
  return model::ModelConfig::tiny_causal(2, 32, 2, 64, 50);
}

KvPoolOptions small_pool() {
  KvPoolOptions o;
  o.block_tokens = 4;
  o.blocks_per_slab = 8;
  return o;
}

serving::GenerationRequest make_request(int64_t id, std::vector<int> src,
                                        int max_new) {
  serving::GenerationRequest r;
  r.id = id;
  r.src_tokens = std::move(src);
  r.max_new_tokens = max_new;
  r.bos_id = 1;
  r.eos_id = 2;
  return r;
}

serving::CostTable flat_costs() {
  return serving::CostTable::warmup(
      [](int len, int batch) { return 0.01 + 0.0001 * len * batch; }, 128, 16,
      8);
}

// Rows of `seq` whose fed token is already known (mirrors the scheduler's
// private known_rows): the quantum allocator may run up to this many rows
// in one step, and exactly the last of them samples a fresh token.
int known_rows(const ActiveSequence& seq, bool causal) {
  const size_t total = causal ? seq.request.src_tokens.size() + seq.tokens.size()
                              : 1 + seq.tokens.size();
  return static_cast<int>(total) - seq.step;
}

// Synthetic fused step: what GenerationServer does with a StepPlan, minus
// the decoder. Encode jobs materialize their share; stepping sequences
// advance step_tokens rows; a chunk reaching the frontier samples one
// token (a fixed non-EOS id — the scheduler never looks at token values).
void drive(const GenerationScheduler::StepPlan& plan, bool causal,
           int* charged_out = nullptr) {
  int charged = 0;
  for (ActiveSequence* seq : plan.encode) {
    ASSERT_FALSE(causal) << "causal sequences never owe an encode job";
    ASSERT_TRUE(seq->kv->needs_cross_init());
    // An encode job never also runs decoder rows in the same iteration.
    ASSERT_TRUE(std::find(plan.stepping.begin(), plan.stepping.end(), seq) ==
                plan.stepping.end());
    seq->kv->mark_cross_ready();
    charged += seq->kv->src_len();
  }
  for (ActiveSequence* seq : plan.stepping) {
    ASSERT_TRUE(seq->kv && !seq->kv->parked());
    ASSERT_TRUE(seq->kv->cross_ready());
    const int known = known_rows(*seq, causal);
    ASSERT_GE(seq->step_tokens, 1);
    ASSERT_LE(seq->step_tokens, known)
        << "scheduled past the last known fed token";
    seq->step += seq->step_tokens;
    charged += seq->step_tokens;
    if (seq->step_tokens == known) {  // frontier reached: one fresh sample
      seq->tokens.push_back(3);
      seq->last_token = 3;
      if (static_cast<int>(seq->tokens.size()) >= seq->request.max_new_tokens) {
        seq->finished = true;
        seq->hit_max_len = true;
      }
    }
  }
  if (charged_out != nullptr) *charged_out = charged;
}

// ---------------------------------------------------------------------------
// Quantum conservation
// ---------------------------------------------------------------------------

TEST(ChunkedPrefill, QuantumChargeIsConservedEveryStep) {
  // Every step's quantum_charged must equal the rows + encode tokens the
  // plan actually carries, and never exceed the budget (no seq2seq encode
  // here, so overflow is impossible).
  const auto config = tiny_causal();
  KvCachePool pool(config, small_pool());
  const auto costs = flat_costs();
  GenSchedulerOptions opts;
  opts.causal_lm = true;
  opts.max_active = 4;
  opts.step_token_quantum = 6;
  GenerationScheduler scheduler(&pool, &costs, opts);

  Rng rng(101);
  scheduler.enqueue(make_request(1, rng.token_ids(12, 50), 3));
  scheduler.enqueue(make_request(2, rng.token_ids(12, 50), 3));
  scheduler.admit(0.0);

  int chunked_steps = 0;
  int steps = 0;
  while (!scheduler.idle()) {
    ASSERT_LT(++steps, 200) << "scheduler stopped making progress";
    scheduler.admit(0.0);
    const auto plan = scheduler.prepare_step();
    ASSERT_FALSE(plan.empty());
    EXPECT_FALSE(plan.quantum_overflow);
    EXPECT_LE(plan.quantum_charged, opts.step_token_quantum);
    for (const ActiveSequence* seq : plan.stepping) {
      if (seq->step_tokens > 1) ++chunked_steps;
    }
    int charged = 0;
    drive(plan, /*causal=*/true, &charged);
    EXPECT_EQ(charged, plan.quantum_charged);
    scheduler.retire_finished();
    pool.check_invariants();
  }
  // 12-token prompts under a 6-token quantum: prefill must have chunked.
  EXPECT_GT(chunked_steps, 0);
  EXPECT_EQ(scheduler.total_admitted(), 2u);
  EXPECT_EQ(scheduler.total_retired(), 2u);
}

TEST(ChunkedPrefill, QuantumSmallerThanOneChunkStillProgresses) {
  // quantum=2 < block_tokens=4: chunks clamp to the budget, the prompt
  // still prefills to completion, and no step ever exceeds the quantum.
  const auto config = tiny_causal();
  KvCachePool pool(config, small_pool());
  const auto costs = flat_costs();
  GenSchedulerOptions opts;
  opts.causal_lm = true;
  opts.step_token_quantum = 2;
  GenerationScheduler scheduler(&pool, &costs, opts);

  const int P = 13, M = 2;
  Rng rng(7);
  scheduler.enqueue(make_request(1, rng.token_ids(P, 50), M));
  scheduler.admit(0.0);

  int steps = 0;
  while (!scheduler.idle()) {
    ASSERT_LT(++steps, 200);
    scheduler.admit(0.0);
    const auto plan = scheduler.prepare_step();
    ASSERT_FALSE(plan.empty());
    EXPECT_LE(plan.quantum_charged, 2);
    drive(plan, /*causal=*/true);
    scheduler.retire_finished();
  }
  // Total rows run is P + M - 1; at most 2 per step.
  EXPECT_GE(steps, (P + M - 1 + 1) / 2);
  pool.check_invariants();
}

// ---------------------------------------------------------------------------
// Fairness: long prompts vs decode-ready sequences
// ---------------------------------------------------------------------------

TEST(ChunkedPrefill, LongPromptFillsLeftoverQuantumWithoutCrowdingDecodes) {
  // One 32-token prompt next to three decode-ready sequences under an
  // 8-token quantum: pass 0 gives every sequence its row, the long prompt
  // soaks up the remaining 5 rows per step in block-sized extension
  // rounds, and the decoders never miss an iteration.
  const auto config = tiny_causal();
  auto pool_opts = small_pool();
  pool_opts.blocks_per_slab = 16;
  KvCachePool pool(config, pool_opts);
  const auto costs = flat_costs();
  GenSchedulerOptions opts;
  opts.causal_lm = true;
  opts.max_active = 4;
  opts.step_token_quantum = 8;
  GenerationScheduler scheduler(&pool, &costs, opts);

  Rng rng(23);
  scheduler.enqueue(make_request(0, rng.token_ids(32, 50), 2));
  for (int i = 1; i < 4; ++i) {
    scheduler.enqueue(make_request(i, rng.token_ids(1, 50), 12));
  }
  scheduler.admit(0.0);
  ASSERT_EQ(scheduler.active(), 4u);

  bool long_prefilling = true;
  int steps = 0;
  while (!scheduler.idle()) {
    ASSERT_LT(++steps, 200);
    scheduler.admit(0.0);
    const auto plan = scheduler.prepare_step();
    ASSERT_FALSE(plan.empty());
    // active <= quantum: every active sequence steps every iteration.
    EXPECT_EQ(plan.stepping.size(), scheduler.active());
    for (const ActiveSequence* seq : plan.stepping) {
      if (seq->request.id != 0) continue;
      if (known_rows(*seq, true) > seq->step_tokens) {
        // Mid-prefill: pass-0 row + one block-sized extension round + the
        // budget remainder = 1 + 4 = 5 rows (3 decode rows take the rest).
        EXPECT_EQ(seq->step_tokens, 5);
      } else {
        long_prefilling = false;
      }
    }
    drive(plan, /*causal=*/true);
    scheduler.retire_finished();
  }
  EXPECT_FALSE(long_prefilling) << "the long prompt never reached decode";
  pool.check_invariants();
}

TEST(ChunkedPrefill, DecodeStarvationBoundedByRotation) {
  // More decode-ready sequences than the quantum: the least-recently-
  // stepped rotation guarantees every sequence runs at least once every
  // ceil(active / quantum) steps.
  const auto config = tiny_causal();
  KvCachePool pool(config, small_pool());
  const auto costs = flat_costs();
  GenSchedulerOptions opts;
  opts.causal_lm = true;
  opts.max_active = 4;
  opts.step_token_quantum = 2;
  GenerationScheduler scheduler(&pool, &costs, opts);

  Rng rng(5);
  for (int i = 0; i < 4; ++i) {
    scheduler.enqueue(make_request(i, rng.token_ids(1, 50), 6));
  }
  scheduler.admit(0.0);
  ASSERT_EQ(scheduler.active(), 4u);
  const int bound = 2;  // ceil(4 active / quantum 2)

  std::map<int64_t, int> last_stepped;
  int steps = 0;
  while (scheduler.active() == 4u) {
    ++steps;
    const auto plan = scheduler.prepare_step();
    EXPECT_EQ(plan.stepping.size(), 2u);
    EXPECT_LE(plan.quantum_charged, 2);
    for (const ActiveSequence* seq : plan.stepping) {
      auto it = last_stepped.find(seq->request.id);
      if (it != last_stepped.end()) {
        EXPECT_LE(steps - it->second, bound)
            << "sequence " << seq->request.id << " starved";
      }
      last_stepped[seq->request.id] = steps;
    }
    drive(plan, /*causal=*/true);
    scheduler.retire_finished();
    ASSERT_LT(steps, 100);
  }
  EXPECT_EQ(last_stepped.size(), 4u);
  // Drain the stragglers.
  while (!scheduler.idle()) {
    const auto plan = scheduler.prepare_step();
    ASSERT_FALSE(plan.empty());
    drive(plan, /*causal=*/true);
    scheduler.retire_finished();
  }
}

// ---------------------------------------------------------------------------
// Seq2seq encode jobs: indivisible, deferred, overflow only when empty
// ---------------------------------------------------------------------------

TEST(ChunkedPrefill, EncodeJobsDeferAndOverflowOnlyWhenStepWouldBeEmpty) {
  const auto config = tiny();
  KvCachePool pool(config, small_pool());
  const auto costs = flat_costs();
  GenSchedulerOptions opts;
  opts.max_active = 3;
  opts.step_token_quantum = 4;
  GenerationScheduler scheduler(&pool, &costs, opts);

  Rng rng(31);
  const auto shared_src = rng.token_ids(3, 50);
  scheduler.enqueue(make_request(1, shared_src, 4));          // A: src 3
  scheduler.enqueue(make_request(2, rng.token_ids(6, 50), 4));  // B: src 6
  scheduler.enqueue(make_request(3, shared_src, 4));          // C follows A
  scheduler.admit(0.0);
  ASSERT_EQ(scheduler.active(), 3u);
  const auto& active = scheduler.active_set();
  ASSERT_TRUE(active[0]->kv->needs_cross_init());   // A: creator
  ASSERT_TRUE(active[1]->kv->needs_cross_init());   // B: creator
  ASSERT_FALSE(active[2]->kv->needs_cross_init());  // C: follower of A
  ASSERT_FALSE(active[2]->kv->cross_ready());       // ...but A never encoded

  // Step 1: A's encode fits (3 <= 4); B's (6) does not and the step is not
  // empty, so it defers; C cannot run before A's encode lands.
  auto plan = scheduler.prepare_step();
  ASSERT_EQ(plan.encode.size(), 1u);
  EXPECT_EQ(plan.encode[0]->request.id, 1);
  EXPECT_TRUE(plan.stepping.empty());
  EXPECT_FALSE(plan.quantum_overflow);
  EXPECT_EQ(plan.quantum_charged, 3);
  drive(plan, /*causal=*/false);
  EXPECT_TRUE(active[2]->kv->cross_ready());  // A's encode readied the share

  // Step 2: B rotates to the front (never stepped), the plan is empty when
  // its turn comes, so the 6-token encode overruns the 4-token budget —
  // flagged, and nothing else runs this step.
  plan = scheduler.prepare_step();
  ASSERT_EQ(plan.encode.size(), 1u);
  EXPECT_EQ(plan.encode[0]->request.id, 2);
  EXPECT_TRUE(plan.stepping.empty());
  EXPECT_TRUE(plan.quantum_overflow);
  EXPECT_EQ(plan.quantum_charged, 6);
  drive(plan, /*causal=*/false);

  // Step 3: everyone decode-ready; three 1-row decodes fit the quantum.
  plan = scheduler.prepare_step();
  EXPECT_TRUE(plan.encode.empty());
  EXPECT_EQ(plan.stepping.size(), 3u);
  EXPECT_FALSE(plan.quantum_overflow);
  EXPECT_EQ(plan.quantum_charged, 3);
  drive(plan, /*causal=*/false);

  while (!scheduler.idle()) {
    scheduler.admit(0.0);
    const auto p = scheduler.prepare_step();
    ASSERT_FALSE(p.empty());
    drive(p, /*causal=*/false);
    scheduler.retire_finished();
  }
  pool.check_invariants();
}

TEST(ChunkedPrefill, CostGateStopsChunkExtensions) {
  // A binding max_step_cost_ms must cap chunk growth (extensions stop at
  // the predicted-latency ceiling) without ever blocking pass-0 progress.
  const auto config = tiny_causal();
  KvCachePool pool(config, small_pool());
  // 0.1 ms per row: a 0.35 ms budget prices at most 3 rows per step.
  const auto costs = serving::CostTable::warmup(
      [](int, int batch) { return 0.1 * batch; }, 128, 16, 8);
  GenSchedulerOptions opts;
  opts.causal_lm = true;
  opts.step_token_quantum = 8;
  opts.max_step_cost_ms = 0.35;
  GenerationScheduler scheduler(&pool, &costs, opts);

  Rng rng(11);
  scheduler.enqueue(make_request(1, rng.token_ids(12, 50), 2));
  scheduler.admit(0.0);

  int steps = 0;
  while (!scheduler.idle()) {
    ASSERT_LT(++steps, 100);
    const auto plan = scheduler.prepare_step();
    ASSERT_FALSE(plan.empty());
    EXPECT_LE(plan.quantum_charged, 3) << "cost gate ignored";
    drive(plan, /*causal=*/true);
    scheduler.retire_finished();
  }
  EXPECT_GE(steps, 5);  // 13 rows at <= 3 per step
}

// ---------------------------------------------------------------------------
// StepStats / metrics: prefill tokens are counted as tokens (satellite 4)
// ---------------------------------------------------------------------------

TEST(ChunkedPrefill, ServerCountsPrefillTokensAndChunks) {
  // Causal server, quantum on: StepStats::prefilled sums to exactly the
  // prompt rows short of the frontier (P - 1), mirrored into the
  // gen.*.prefill_tokens counter; chunked steps are visible in
  // prefill_chunks, and the charge never exceeds the quantum.
  const int P = 10, M = 3;
  GenServerOptions options;
  options.pool = small_pool();
  options.pool.enable_radix_tree = false;
  options.scheduler.causal_lm = true;
  options.scheduler.step_token_quantum = 6;
  GenerationServer server(tiny_causal(), options, 29);

  Rng rng(77);
  server.submit(make_request(1, rng.token_ids(P, 50), M));
  int prefilled = 0, chunks = 0, max_charged = 0;
  bool overflow = false;
  server.set_step_observer([&](const StepStats& s) {
    prefilled += s.prefilled;
    chunks += s.prefill_chunks;
    max_charged = std::max(max_charged, s.quantum_charged);
    overflow = overflow || s.quantum_overflow;
    EXPECT_GE(s.step_rows, s.active);
  });
  ASSERT_EQ(server.run_to_completion().size(), 1u);

  EXPECT_EQ(prefilled, P - 1);
  EXPECT_GT(chunks, 0);
  EXPECT_LE(max_charged, 6);
  EXPECT_FALSE(overflow);  // causal: no indivisible encode jobs
  EXPECT_EQ(server.metrics()->counter_value(server.metric_prefix() +
                                            "prefill_tokens"),
            static_cast<uint64_t>(P - 1));
  EXPECT_EQ(server.metrics()->counter_value(server.metric_prefix() +
                                            "prefill_chunks"),
            static_cast<uint64_t>(chunks));
}

TEST(ChunkedPrefill, Seq2SeqPrefillTokensMatchAcrossQuantumModes) {
  // The prefilled stat counts encoder source tokens in both paths, so the
  // totals are comparable: legacy (encode at admission) and quantum
  // (deferred encode jobs) both report src_len per request.
  const int kSrc[] = {6, 3};
  auto run = [&](int quantum) {
    GenServerOptions options;
    options.pool = small_pool();
    options.scheduler.step_token_quantum = quantum;
    GenerationServer server(tiny(), options, 29);
    Rng rng(41);
    for (int i = 0; i < 2; ++i) {
      server.submit(make_request(i, rng.token_ids(kSrc[i], 50), 3));
    }
    int prefilled = 0;
    bool overflow = false;
    server.set_step_observer([&](const StepStats& s) {
      prefilled += s.prefilled;
      overflow = overflow || s.quantum_overflow;
    });
    EXPECT_EQ(server.run_to_completion().size(), 2u);
    EXPECT_EQ(server.metrics()->counter_value(server.metric_prefix() +
                                              "prefill_tokens"),
              static_cast<uint64_t>(prefilled));
    return std::make_pair(prefilled, overflow);
  };

  const auto legacy = run(0);
  const auto quantum = run(4);
  EXPECT_EQ(legacy.first, kSrc[0] + kSrc[1]);
  EXPECT_EQ(quantum.first, kSrc[0] + kSrc[1]);
  EXPECT_FALSE(legacy.second);
  // src 6 > quantum 4: the indivisible encode must have overflowed once.
  EXPECT_TRUE(quantum.second);
}

}  // namespace
}  // namespace turbo::genserve
