#include <gtest/gtest.h>

#include <map>
#include <set>

#include "common/check.h"
#include "graph/builders.h"
#include "graph/fusion.h"
#include "graph/graph.h"
#include "memory/model_aware_allocator.h"

namespace turbo::graph {
namespace {

LayerDims bert_dims() { return LayerDims{768, 12, 3072}; }

// --------------------------------------------------------------- basics --

TEST(Graph, ValidateCatchesUseBeforeProduce) {
  Graph g;
  const int a = g.add_tensor("a", [](int, int) { return size_t{4}; });
  const int b = g.add_tensor("b", [](int, int) { return size_t{4}; });
  g.add_op(OpKind::kGemm, "bad", {a}, {b},
           [](int, int) { return OpCost{}; });
  EXPECT_THROW(g.validate(), CheckError);  // `a` never produced, not input
}

TEST(Graph, ValidateCatchesDoubleProduce) {
  Graph g;
  const int a = g.add_tensor("a", [](int, int) { return size_t{4}; },
                             /*input=*/true);
  const int b = g.add_tensor("b", [](int, int) { return size_t{4}; });
  g.add_op(OpKind::kGemm, "p1", {a}, {b}, [](int, int) { return OpCost{}; });
  g.add_op(OpKind::kGemm, "p2", {a}, {b}, [](int, int) { return OpCost{}; });
  EXPECT_THROW(g.validate(), CheckError);
}

// --------------------------------------------------------- fused builder --

TEST(FusedBuilder, TwelveKernelsPerLayer) {
  const Graph g = build_encoder_layer_fused(bert_dims());
  EXPECT_EQ(g.num_ops(), 12);
}

TEST(FusedBuilder, TensorSizesMatchPaperFigure6) {
  // Fig. 6, seq len 200 (batch 1, hidden 768): qkv_out 1843200 B,
  // Q/K/V 614400 B, intermediate_out 2457600 B.
  const Graph g = build_encoder_layer_fused(bert_dims());
  std::map<std::string, size_t> sizes;
  for (const auto& u : g.tensor_usages(1, 200)) sizes[u.name] = u.size;
  EXPECT_EQ(sizes.at("qkv_out"), 1843200u);
  EXPECT_EQ(sizes.at("Q"), 614400u);
  EXPECT_EQ(sizes.at("K"), 614400u);
  EXPECT_EQ(sizes.at("V"), 614400u);
  EXPECT_EQ(sizes.at("intermediate_out"), 2457600u);
  EXPECT_EQ(sizes.at("layer_out"), 614400u);
}

TEST(FusedBuilder, LifetimesFollowDataflow) {
  const Graph g = build_encoder_layer_fused(bert_dims());
  std::map<std::string, std::pair<int, int>> lt;
  for (const auto& u : g.tensor_usages(1, 64)) {
    lt[u.name] = {u.first_op, u.last_op};
  }
  // qkv_out: produced by op 0, consumed by the split (op 1).
  EXPECT_EQ(lt.at("qkv_out"), std::make_pair(0, 1));
  // V survives until BatchGemm4 (op 4).
  EXPECT_EQ(lt.at("V"), std::make_pair(1, 4));
  // attn_score is written by op 2, softmaxed in place (3), read by op 4.
  EXPECT_EQ(lt.at("attn_score"), std::make_pair(2, 4));
  // layer_in feeds op 0 and the first residual (op 7).
  EXPECT_EQ(lt.at("layer_in"), std::make_pair(0, 7));
  // attn_ln_out: residual for the final layernorm (op 11).
  EXPECT_EQ(lt.at("attn_ln_out"), std::make_pair(7, 11));
}

TEST(FusedBuilder, PeakLiveBytesGrowsWithSeq) {
  const Graph g = build_encoder_layer_fused(bert_dims());
  EXPECT_LT(g.peak_live_bytes(1, 100), g.peak_live_bytes(1, 200));
  EXPECT_LT(g.peak_live_bytes(1, 200), g.peak_live_bytes(4, 200));
}

TEST(FusedBuilder, GemmFlopsScaleCorrectly) {
  const Graph g = build_encoder_layer_fused(bert_dims());
  double total_flops = 0;
  for (const auto& op : g.ops()) total_flops += op.cost_fn(1, 40).flops;
  // Per-layer flops x 12 layers should be in the ballpark of the paper's
  // 6.9 Gflops for a 40-token BERT-base inference.
  const double model_gflops = total_flops * 12 / 1e9;
  EXPECT_GT(model_gflops, 5.0);
  EXPECT_LT(model_gflops, 9.0);
}

// ------------------------------------------------------- unfused builder --

TEST(UnfusedBuilder, TwentyFourKernelsPerLayer) {
  const Graph g = build_encoder_layer_unfused(bert_dims());
  EXPECT_EQ(g.num_ops(), 24);
}

TEST(UnfusedBuilder, SameGemmFlopsAsFused) {
  const Graph fused = build_encoder_layer_fused(bert_dims());
  const Graph unfused = build_encoder_layer_unfused(bert_dims());
  auto total_flops = [](const Graph& g) {
    double t = 0;
    for (const auto& op : g.ops()) t += op.cost_fn(2, 128).flops;
    return t;
  };
  EXPECT_NEAR(total_flops(fused), total_flops(unfused), 1.0);
}

TEST(UnfusedBuilder, MovesMoreBytesThanFused) {
  const Graph fused = build_encoder_layer_fused(bert_dims());
  const Graph unfused = build_encoder_layer_unfused(bert_dims());
  auto total_bytes = [](const Graph& g) {
    double t = 0;
    for (const auto& op : g.ops()) t += op.cost_fn(2, 128).bytes;
    return t;
  };
  EXPECT_GT(total_bytes(unfused), total_bytes(fused) * 1.2);
}

// --------------------------------------------------------- decoder step --

TEST(DecoderStep, ValidatesAndHasExpectedShape) {
  const Graph g = build_decoder_step_fused({1024, 16, 4096}, 80);
  EXPECT_EQ(g.num_ops(), 16);
  EXPECT_NO_THROW(g.validate());
}

TEST(DecoderStep, ScoreTensorGrowsWithCacheLength) {
  const Graph g = build_decoder_step_fused({1024, 16, 4096}, 80);
  auto size_of = [&](const char* name, int beam, int t) {
    for (const auto& u : g.tensor_usages(beam, t)) {
      if (u.name == name) return u.size;
    }
    return size_t{0};
  };
  // Self-attention scores grow with the cache; cross-attention scores and
  // activations do not.
  EXPECT_LT(size_of("self_score", 4, 10), size_of("self_score", 4, 100));
  EXPECT_EQ(size_of("cross_score", 4, 10), size_of("cross_score", 4, 100));
  EXPECT_EQ(size_of("x1", 4, 10), size_of("x1", 4, 100));
}

TEST(DecoderStep, ResidualLifetimesSpanTheirBlocks) {
  const Graph g = build_decoder_step_fused({512, 8, 2048}, 40);
  std::map<std::string, std::pair<int, int>> lt;
  for (const auto& u : g.tensor_usages(4, 20)) {
    lt[u.name] = {u.first_op, u.last_op};
  }
  // x1 is produced by the self-attention LN and survives as the residual of
  // the cross-attention LN; x2 likewise for the FFN.
  EXPECT_LT(lt.at("x1").first, lt.at("x2").first);
  EXPECT_GT(lt.at("x1").second, lt.at("x1").first + 3);
  EXPECT_EQ(lt.at("x_out").second, g.num_ops() - 1);
}

TEST(DecoderStep, AllocatorPlansEveryStepOfAGrowingCache) {
  // Step-wise decoding with the model-aware allocator: the cache length
  // grows every step; plans must stay valid and the footprint bounded.
  const Graph g = build_decoder_step_fused({1024, 16, 4096}, 100);
  memory::ModelAwareAllocator alloc;
  size_t last_footprint = 0;
  for (int t = 1; t <= 200; t += 7) {
    const auto usages = g.tensor_usages(4, t);
    const auto plan = alloc.begin_inference(usages);
    ASSERT_NO_THROW(memory::validate_plan(usages, plan));
    last_footprint = plan.footprint_bytes;
  }
  // Per-step activations are a few beam x hidden vectors: a single default
  // chunk is plenty even at cache length 200.
  EXPECT_LE(last_footprint, 4u << 20);
}

TEST(DecoderStep, PerStepFlopsGrowOnlyViaAttention) {
  const Graph g = build_decoder_step_fused({1024, 16, 4096}, 80);
  auto flops_at = [&](int t) {
    double total = 0;
    for (const auto& op : g.ops()) total += op.cost_fn(4, t).flops;
    return total;
  };
  const double f10 = flops_at(10);
  const double f200 = flops_at(200);
  EXPECT_GT(f200, f10);
  // The growth is the cache-length-linear attention term only - small
  // relative to the constant GEMM work.
  EXPECT_LT((f200 - f10) / f10, 0.2);
}

// ----------------------------------------------------------- fusion pass --

class FusionParam
    : public ::testing::TestWithParam<std::tuple<int, int, int>> {};

TEST_P(FusionParam, RewritesToTheFusedKernelSequence) {
  const auto [hidden, heads, inter] = GetParam();
  const LayerDims dims{hidden, heads, inter};
  const Graph fused_ref = build_encoder_layer_fused(dims);
  const Graph fused = fuse(build_encoder_layer_unfused(dims));

  ASSERT_EQ(fused.num_ops(), fused_ref.num_ops());
  for (int i = 0; i < fused.num_ops(); ++i) {
    EXPECT_EQ(fused.op(i).kind, fused_ref.op(i).kind)
        << "op " << i << ": " << fused.op(i).name << " vs "
        << fused_ref.op(i).name;
  }
}

TEST_P(FusionParam, PreservesGemmFlopsAndMatchesFusedBytes) {
  const auto [hidden, heads, inter] = GetParam();
  const LayerDims dims{hidden, heads, inter};
  const Graph fused_ref = build_encoder_layer_fused(dims);
  const Graph fused = fuse(build_encoder_layer_unfused(dims));

  for (int b : {1, 4}) {
    for (int s : {16, 200}) {
      double ref_flops = 0, got_flops = 0, ref_bytes = 0, got_bytes = 0;
      for (const auto& op : fused_ref.ops()) {
        const auto c = op.cost_fn(b, s);
        ref_flops += c.flops;
        ref_bytes += c.bytes;
      }
      for (const auto& op : fused.ops()) {
        const auto c = op.cost_fn(b, s);
        got_flops += c.flops;
        got_bytes += c.bytes;
      }
      EXPECT_NEAR(got_flops, ref_flops, ref_flops * 1e-9);
      EXPECT_NEAR(got_bytes, ref_bytes, ref_bytes * 0.02)
          << "b=" << b << " s=" << s;
    }
  }
}

TEST_P(FusionParam, LifetimeStructureMatchesHandFusedGraph) {
  const auto [hidden, heads, inter] = GetParam();
  const LayerDims dims{hidden, heads, inter};
  const Graph fused_ref = build_encoder_layer_fused(dims);
  const Graph fused = fuse(build_encoder_layer_unfused(dims));

  auto usage_multiset = [](const Graph& g) {
    std::multiset<std::tuple<int, int, size_t>> s;
    for (const auto& u : g.tensor_usages(1, 128)) {
      s.insert({u.first_op, u.last_op, u.size});
    }
    return s;
  };
  EXPECT_EQ(usage_multiset(fused), usage_multiset(fused_ref));
}

INSTANTIATE_TEST_SUITE_P(
    Dims, FusionParam,
    ::testing::Values(std::make_tuple(768, 12, 3072),
                      std::make_tuple(4096, 64, 16384),
                      std::make_tuple(256, 4, 1024),
                      std::make_tuple(64, 2, 128)));

TEST(Fusion, OutputGraphValidates) {
  EXPECT_NO_THROW(fuse(build_encoder_layer_unfused(bert_dims())).validate());
}

TEST(Fusion, ReducesKernelCountByHalf) {
  const Graph unfused = build_encoder_layer_unfused(bert_dims());
  const Graph fused = fuse(unfused);
  EXPECT_EQ(fused.num_ops(), unfused.num_ops() / 2);
}

TEST(Fusion, IdempotentOnAlreadyFusedGraph) {
  const Graph fused = build_encoder_layer_fused(bert_dims());
  const Graph again = fuse(fused);
  EXPECT_EQ(again.num_ops(), fused.num_ops());
}

}  // namespace
}  // namespace turbo::graph
