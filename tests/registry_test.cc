#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>

#include "common/check.h"
#include "common/rng.h"
#include "genserve/model_bundle.h"
#include "genserve/multi_model_server.h"
#include "model/serialization.h"
#include "serving/load_balancer.h"
#include "serving/model_registry.h"
#include "serving/workload.h"

namespace turbo {
namespace {

model::ModelConfig tiny() { return model::ModelConfig::tiny(2, 32, 2, 64, 50); }

Tensor make_ids(Rng& rng, int batch, int seq, int vocab) {
  Tensor ids = Tensor::owned(Shape{batch, seq}, DType::kI32);
  auto toks = rng.token_ids(batch * seq, vocab);
  std::copy(toks.begin(), toks.end(), ids.data<int32_t>());
  return ids;
}

// ------------------------------------------------------------ checkpoints --

TEST(Serialization, RoundTripIsBitExact) {
  const std::string path = "/tmp/turbo_ckpt_test.bin";
  model::ModelConfig config = tiny();
  config.name = "roundtrip";
  const auto weights = model::EncoderWeights::random(config, 321);
  model::save_encoder(path, config, weights);

  const auto loaded = model::load_encoder(path);
  EXPECT_EQ(loaded.config.name, "roundtrip");
  EXPECT_EQ(loaded.config.num_layers, config.num_layers);
  EXPECT_EQ(loaded.config.hidden, config.hidden);
  EXPECT_EQ(loaded.config.vocab, config.vocab);
  ASSERT_EQ(loaded.weights.layers.size(), weights.layers.size());

  // Bit-exact weight data.
  const float* a = weights.layers[0].qkv_weight.data<float>();
  const float* b = loaded.weights.layers[0].qkv_weight.data<float>();
  for (int64_t i = 0; i < weights.layers[0].qkv_weight.numel(); ++i) {
    ASSERT_EQ(a[i], b[i]);
  }
  std::remove(path.c_str());
}

TEST(Serialization, LoadedModelProducesIdenticalOutputs) {
  const std::string path = "/tmp/turbo_ckpt_model_test.bin";
  model::EncoderModel original(tiny(), 55);
  model::save_encoder(path, original.config(), original.weights());

  auto loaded = model::load_encoder(path);
  model::EncoderModel restored(loaded.config, std::move(loaded.weights));

  Rng rng(1);
  Tensor ids = make_ids(rng, 1, 12, 50);
  Tensor a = original.forward(ids);
  Tensor b = restored.forward(ids);
  for (int64_t i = 0; i < a.numel(); ++i) {
    ASSERT_EQ(a.data<float>()[i], b.data<float>()[i]);
  }
  std::remove(path.c_str());
}

TEST(Serialization, RejectsMissingAndCorruptFiles) {
  EXPECT_THROW(model::load_encoder("/tmp/does_not_exist_turbo.bin"),
               CheckError);
  const std::string path = "/tmp/turbo_ckpt_corrupt.bin";
  {
    std::FILE* f = std::fopen(path.c_str(), "wb");
    std::fputs("not a checkpoint at all", f);
    std::fclose(f);
  }
  EXPECT_THROW(model::load_encoder(path), CheckError);
  std::remove(path.c_str());
}

// --------------------------------------------------------------- registry --

TEST(Registry, VersionManagement) {
  serving::ModelRegistry registry;
  auto v1 = std::make_shared<model::EncoderModel>(tiny(), 1);
  auto v2 = std::make_shared<model::EncoderModel>(tiny(), 2);
  registry.register_model("classifier", 1, v1);
  registry.register_model("classifier", 2, v2);

  EXPECT_EQ(registry.size(), 2u);
  EXPECT_EQ(registry.latest("classifier"), v2);
  EXPECT_EQ(registry.version("classifier", 1), v1);
  EXPECT_EQ(registry.versions("classifier"), (std::vector<int>{1, 2}));
  EXPECT_EQ(registry.latest("unknown"), nullptr);
  EXPECT_EQ(registry.version("classifier", 3), nullptr);
}

TEST(Registry, DuplicateVersionRejected) {
  serving::ModelRegistry registry;
  registry.register_model("m", 1, std::make_shared<model::EncoderModel>(tiny(), 1));
  EXPECT_THROW(registry.register_model(
                   "m", 1, std::make_shared<model::EncoderModel>(tiny(), 2)),
               CheckError);
}

TEST(Registry, UnregisterRollsBackToPreviousVersion) {
  serving::ModelRegistry registry;
  auto v1 = std::make_shared<model::EncoderModel>(tiny(), 1);
  auto v2 = std::make_shared<model::EncoderModel>(tiny(), 2);
  registry.register_model("m", 1, v1);
  registry.register_model("m", 2, v2);
  EXPECT_TRUE(registry.unregister_model("m", 2));
  EXPECT_EQ(registry.latest("m"), v1);
  EXPECT_FALSE(registry.unregister_model("m", 2));
  EXPECT_TRUE(registry.unregister_model("m", 1));
  EXPECT_EQ(registry.latest("m"), nullptr);
}

// ------------------------------------------------------- decoder bundles --

TEST(Registry, BundleLatestVsPinnedResolution) {
  genserve::BundleRegistry registry;
  auto v1 = genserve::make_bundle("seq2seq", 1, tiny(), 1);
  auto v3 = genserve::make_bundle("seq2seq", 3, tiny(), 3);
  registry.register_model("seq2seq", 1, v1);
  registry.register_model("seq2seq", 3, v3);

  // resolve() is the request-routing convention: model_version <= 0 means
  // the latest live version, positive pins exactly.
  EXPECT_EQ(registry.resolve("seq2seq"), v3);
  EXPECT_EQ(registry.resolve("seq2seq", 0), v3);
  EXPECT_EQ(registry.resolve("seq2seq", -1), v3);
  EXPECT_EQ(registry.resolve("seq2seq", 1), v1);
  EXPECT_EQ(registry.resolve("seq2seq", 2), nullptr);
  EXPECT_EQ(registry.resolve("other"), nullptr);
  EXPECT_EQ(registry.names(), (std::vector<std::string>{"seq2seq"}));

  // Unregistering the latest rolls the latest-route back; pinned routes to
  // the removed version go dark even though live holders keep it alive.
  EXPECT_TRUE(registry.unregister_model("seq2seq", 3));
  EXPECT_EQ(registry.resolve("seq2seq"), v1);
  EXPECT_EQ(registry.resolve("seq2seq", 3), nullptr);
  EXPECT_EQ(v3->config.hidden, tiny().hidden);  // our pin still works
}

TEST(Registry, BundleUnregisterWhileInFlightPinsUntilRetirement) {
  genserve::MultiModelGenerationServer server;
  genserve::GenServerOptions engine;
  engine.pool.block_tokens = 4;
  engine.pool.blocks_per_slab = 4;
  std::weak_ptr<genserve::ModelBundle> weak;
  {
    auto bundle = genserve::make_bundle("m", 1, tiny(), 7);
    weak = bundle;
    server.register_bundle(std::move(bundle), 0, engine);
  }

  Rng rng(13);
  serving::GenerationRequest request;
  request.id = 0;
  request.src_tokens = rng.token_ids(9, 50);
  request.max_new_tokens = 12;
  server.submit(request);
  server.step();  // the sequence is mid-decode

  // The route disappears immediately; the engine's shared_ptr keeps the
  // bundle alive for the in-flight sequence.
  EXPECT_TRUE(server.unregister_bundle("m", 1));
  EXPECT_EQ(server.registry().resolve("m"), nullptr);
  EXPECT_TRUE(server.serving("m", 1));
  EXPECT_FALSE(weak.expired());
  serving::GenerationRequest late = request;
  late.id = 1;
  EXPECT_THROW(server.submit(late), CheckError);

  // Drain: the last sequence retires, the engine tears down, the bundle
  // unpins.
  const auto responses = server.run_to_completion();
  ASSERT_EQ(responses.size(), 1u);
  EXPECT_FALSE(server.serving("m", 1));
  EXPECT_EQ(server.live_engines(), 0u);
  EXPECT_TRUE(weak.expired());
}

// --------------------------------------------------------------- ensemble --

TEST(Ensemble, SingleMemberIsIdentity) {
  auto m = std::make_shared<model::EncoderModel>(tiny(), 3);
  serving::EncoderEnsemble ensemble({m});
  Rng rng(2);
  Tensor ids = make_ids(rng, 1, 8, 50);
  Tensor solo = m->forward(ids);
  Tensor ens = ensemble.forward(ids);
  for (int64_t i = 0; i < solo.numel(); ++i) {
    ASSERT_EQ(solo.data<float>()[i], ens.data<float>()[i]);
  }
}

TEST(Ensemble, AveragesMembers) {
  auto a = std::make_shared<model::EncoderModel>(tiny(), 4);
  auto b = std::make_shared<model::EncoderModel>(tiny(), 5);
  serving::EncoderEnsemble ensemble({a, b});
  Rng rng(3);
  Tensor ids = make_ids(rng, 1, 6, 50);
  Tensor oa = a->forward(ids);
  Tensor ob = b->forward(ids);
  Tensor ens = ensemble.forward(ids);
  for (int64_t i = 0; i < ens.numel(); ++i) {
    ASSERT_NEAR(ens.data<float>()[i],
                (oa.data<float>()[i] + ob.data<float>()[i]) / 2, 1e-6f);
  }
}

TEST(Ensemble, RejectsEmptyAndMismatchedMembers) {
  EXPECT_THROW(serving::EncoderEnsemble({}), CheckError);
  auto a = std::make_shared<model::EncoderModel>(tiny(), 1);
  auto wide = std::make_shared<model::EncoderModel>(
      model::ModelConfig::tiny(2, 64, 2, 64, 50), 1);
  EXPECT_THROW(serving::EncoderEnsemble({a, wide}), CheckError);
}

// ------------------------------------------------------------ load balancer --

serving::CostTable lb_table() {
  return serving::CostTable::warmup(
      [](int len, int batch) { return 1.0 + 0.02 * len * batch; }, 128, 20,
      8);
}

TEST(LoadBalancer, SplitsWorkAcrossServers) {
  const auto table = lb_table();
  const serving::DpBatchScheduler scheduler(20);
  std::vector<serving::ClusterServer> servers = {
      {"gpu0", &scheduler, &table, 1.0}, {"gpu1", &scheduler, &table, 1.0}};

  serving::WorkloadSpec wspec;
  wspec.rate_per_s = 200;
  wspec.horizon_s = 4;
  wspec.min_len = 2;
  wspec.max_len = 100;
  const auto arrivals = serving::generate_poisson_workload(wspec);

  const auto rr = serving::simulate_cluster(
      arrivals, servers, serving::DispatchPolicy::kRoundRobin, {});
  ASSERT_EQ(rr.per_server.size(), 2u);
  size_t total = rr.per_server[0].completed + rr.per_server[1].completed;
  EXPECT_EQ(total, arrivals.size());
  // Roughly even split.
  EXPECT_NEAR(static_cast<double>(rr.per_server[0].completed),
              static_cast<double>(rr.per_server[1].completed),
              arrivals.size() * 0.02);
}

TEST(LoadBalancer, TwoServersSustainDoubleTheLoad) {
  const auto table = lb_table();
  const serving::DpBatchScheduler scheduler(20);
  serving::WorkloadSpec wspec;
  wspec.rate_per_s = 2500;  // far past one server's critical point
  wspec.horizon_s = 4;
  wspec.min_len = 2;
  wspec.max_len = 100;
  const auto arrivals = serving::generate_poisson_workload(wspec);

  std::vector<serving::ClusterServer> one = {{"gpu0", &scheduler, &table, 1.0}};
  std::vector<serving::ClusterServer> two = {{"gpu0", &scheduler, &table, 1.0},
                                             {"gpu1", &scheduler, &table, 1.0}};
  const auto single = serving::simulate_cluster(
      arrivals, one, serving::DispatchPolicy::kLeastLoaded, {});
  const auto dual = serving::simulate_cluster(
      arrivals, two, serving::DispatchPolicy::kLeastLoaded, {});
  EXPECT_TRUE(single.any_saturated);
  EXPECT_GT(dual.total_response_rate, single.total_response_rate * 1.4);
}

TEST(LoadBalancer, LeastLoadedBeatsRoundRobinOnHeterogeneousServers) {
  // One fast + one slow server: round-robin overloads the slow one, the
  // backlog-aware policy (Nexus-style) keeps both below their critical
  // points.
  const auto table = lb_table();
  const serving::DpBatchScheduler scheduler(20);
  std::vector<serving::ClusterServer> servers = {
      {"fast", &scheduler, &table, 1.0}, {"slow", &scheduler, &table, 0.25}};

  serving::WorkloadSpec wspec;
  wspec.rate_per_s = 400;
  wspec.horizon_s = 4;
  wspec.min_len = 2;
  wspec.max_len = 100;
  const auto arrivals = serving::generate_poisson_workload(wspec);

  const auto rr = serving::simulate_cluster(
      arrivals, servers, serving::DispatchPolicy::kRoundRobin, {});
  const auto ll = serving::simulate_cluster(
      arrivals, servers, serving::DispatchPolicy::kLeastLoaded, {});
  EXPECT_GE(ll.total_response_rate, rr.total_response_rate);
  // Least-loaded shifts work toward the fast server.
  EXPECT_GT(ll.per_server[0].completed, ll.per_server[1].completed);
}

}  // namespace
}  // namespace turbo
