#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <set>

#include "common/aligned_buffer.h"
#include "common/check.h"
#include "common/rng.h"
#include "common/stats.h"
#include "common/thread_pool.h"

namespace turbo {
namespace {

// ---------------------------------------------------------------- checks --

TEST(Check, PassingConditionsDoNotThrow) {
  EXPECT_NO_THROW(TT_CHECK(true));
  EXPECT_NO_THROW(TT_CHECK_EQ(1, 1));
  EXPECT_NO_THROW(TT_CHECK_LT(1, 2));
  EXPECT_NO_THROW(TT_CHECK_GE(2, 2));
}

TEST(Check, FailingConditionThrowsCheckError) {
  EXPECT_THROW(TT_CHECK(false), CheckError);
  EXPECT_THROW(TT_CHECK_EQ(1, 2), CheckError);
  EXPECT_THROW(TT_CHECK_GT(1, 2), CheckError);
}

TEST(Check, MessageCarriesExpressionAndValues) {
  try {
    TT_CHECK_EQ(3, 4);
    FAIL() << "expected throw";
  } catch (const CheckError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("(3) == (4)"), std::string::npos) << what;
    EXPECT_NE(what.find("3 vs 4"), std::string::npos) << what;
  }
}

// ------------------------------------------------------------------- rng --

TEST(Rng, DeterministicForSameSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) same += a.next_u64() == b.next_u64();
  EXPECT_LT(same, 3);
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, UniformIntCoversRangeInclusive) {
  Rng rng(7);
  std::set<int64_t> seen;
  for (int i = 0; i < 5000; ++i) seen.insert(rng.uniform_int(3, 10));
  EXPECT_EQ(seen.size(), 8u);
  EXPECT_EQ(*seen.begin(), 3);
  EXPECT_EQ(*seen.rbegin(), 10);
}

TEST(Rng, UniformIntSingleton) {
  Rng rng(9);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(rng.uniform_int(5, 5), 5);
}

TEST(Rng, NormalMomentsApproximate) {
  Rng rng(11);
  RunningStat stat;
  for (int i = 0; i < 50000; ++i) stat.add(rng.normal(2.0, 3.0));
  EXPECT_NEAR(stat.mean(), 2.0, 0.1);
  EXPECT_NEAR(stat.stddev(), 3.0, 0.1);
}

TEST(Rng, ExponentialMeanIsInverseRate) {
  Rng rng(13);
  RunningStat stat;
  for (int i = 0; i < 50000; ++i) stat.add(rng.exponential(4.0));
  EXPECT_NEAR(stat.mean(), 0.25, 0.01);
}

TEST(Rng, ExponentialRequiresPositiveRate) {
  Rng rng(1);
  EXPECT_THROW(rng.exponential(0.0), CheckError);
}

TEST(Rng, TokenIdsWithinVocab) {
  Rng rng(17);
  auto ids = rng.token_ids(1000, 50);
  ASSERT_EQ(ids.size(), 1000u);
  for (int id : ids) {
    EXPECT_GE(id, 0);
    EXPECT_LT(id, 50);
  }
}

TEST(Rng, FillUniformRespectsBounds) {
  Rng rng(19);
  std::vector<float> v(1000);
  rng.fill_uniform(v.data(), v.size(), -2.0f, 3.0f);
  for (float x : v) {
    EXPECT_GE(x, -2.0f);
    EXPECT_LT(x, 3.0f);
  }
}

// ----------------------------------------------------------------- stats --

TEST(Stats, MeanAndStddev) {
  std::vector<double> xs{1, 2, 3, 4, 5};
  EXPECT_DOUBLE_EQ(mean(xs), 3.0);
  EXPECT_NEAR(stddev(xs), std::sqrt(2.5), 1e-12);
}

TEST(Stats, MeanOfEmptyIsZero) { EXPECT_EQ(mean({}), 0.0); }

TEST(Stats, PercentileEndpoints) {
  std::vector<double> xs{5, 1, 3, 2, 4};
  EXPECT_DOUBLE_EQ(percentile(xs, 0), 1.0);
  EXPECT_DOUBLE_EQ(percentile(xs, 100), 5.0);
  EXPECT_DOUBLE_EQ(percentile(xs, 50), 3.0);
}

TEST(Stats, PercentileInterpolates) {
  std::vector<double> xs{0, 10};
  EXPECT_DOUBLE_EQ(percentile(xs, 25), 2.5);
}

TEST(Stats, PercentileRejectsEmptyAndBadQ) {
  EXPECT_THROW(percentile({}, 50), CheckError);
  EXPECT_THROW(percentile({1.0}, -1), CheckError);
  EXPECT_THROW(percentile({1.0}, 101), CheckError);
}

TEST(Stats, SummarizeMatchesComponents) {
  std::vector<double> xs{4, 8, 15, 16, 23, 42};
  const auto s = summarize(xs);
  EXPECT_EQ(s.count, 6u);
  EXPECT_DOUBLE_EQ(s.min, 4);
  EXPECT_DOUBLE_EQ(s.max, 42);
  EXPECT_DOUBLE_EQ(s.mean, mean(xs));
  EXPECT_DOUBLE_EQ(s.p50, percentile(xs, 50));
}

TEST(Stats, RunningStatMatchesBatch) {
  std::vector<double> xs{1.5, -2.25, 7.0, 3.125, 0.5};
  RunningStat r;
  for (double x : xs) r.add(x);
  EXPECT_EQ(r.count(), xs.size());
  EXPECT_NEAR(r.mean(), mean(xs), 1e-12);
  EXPECT_NEAR(r.stddev(), stddev(xs), 1e-12);
}

// ----------------------------------------------------------- thread pool --

TEST(ThreadPool, ParallelForCoversRangeExactlyOnce) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(1000);
  pool.parallel_for(hits.size(), [&](size_t b, size_t e) {
    for (size_t i = b; i < e; ++i) hits[i].fetch_add(1);
  });
  for (auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, EmptyRangeIsNoop) {
  ThreadPool pool(2);
  bool called = false;
  pool.parallel_for(0, [&](size_t, size_t) { called = true; });
  EXPECT_FALSE(called);
}

TEST(ThreadPool, PropagatesExceptions) {
  ThreadPool pool(4);
  EXPECT_THROW(pool.parallel_for(100,
                                 [](size_t b, size_t) {
                                   if (b == 0) throw std::runtime_error("x");
                                 }),
               std::runtime_error);
}

TEST(ThreadPool, UsableAfterException) {
  ThreadPool pool(2);
  try {
    pool.parallel_for(10, [](size_t, size_t) {
      throw std::runtime_error("x");
    });
  } catch (const std::runtime_error&) {
  }
  std::atomic<size_t> total{0};
  pool.parallel_for(10, [&](size_t b, size_t e) { total += e - b; });
  EXPECT_EQ(total.load(), 10u);
}

// --------------------------------------------------------- aligned buffer --

TEST(AlignedBuffer, SixtyFourByteAlignment) {
  AlignedBuffer buf(100);
  EXPECT_EQ(reinterpret_cast<uintptr_t>(buf.data()) % 64, 0u);
  EXPECT_EQ(buf.size(), 100u);
}

TEST(AlignedBuffer, ZeroFills) {
  AlignedBuffer buf(64);
  buf.data()[3] = std::byte{7};
  buf.zero();
  for (size_t i = 0; i < buf.size(); ++i) {
    EXPECT_EQ(buf.data()[i], std::byte{0});
  }
}

TEST(AlignedBuffer, MoveTransfersOwnership) {
  AlignedBuffer a(32);
  std::byte* p = a.data();
  AlignedBuffer b(std::move(a));
  EXPECT_EQ(b.data(), p);
  EXPECT_EQ(a.data(), nullptr);
  EXPECT_TRUE(a.empty());
}

TEST(AlignedBuffer, EmptyBufferIsValid) {
  AlignedBuffer buf;
  EXPECT_TRUE(buf.empty());
  EXPECT_NO_THROW(buf.zero());
}

}  // namespace
}  // namespace turbo
