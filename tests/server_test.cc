#include <gtest/gtest.h>

#include "common/rng.h"
#include "serving/server.h"

namespace turbo::serving {
namespace {

model::ModelConfig tiny() { return model::ModelConfig::tiny(2, 32, 2, 64, 50); }

CostTable tiny_table() {
  return CostTable::warmup(
      [](int len, int batch) { return 0.5 + 0.01 * len * batch; }, 64, 8, 8);
}

Request make_request(Rng& rng, int64_t id, int len) {
  Request r;
  r.id = id;
  r.length = len;
  r.tokens = rng.token_ids(len, 50);
  return r;
}

std::unique_ptr<Server> make_server(size_t cache = 0) {
  return std::make_unique<Server>(
      std::make_unique<model::SequenceClassifier>(tiny(), 3, 99),
      std::make_unique<DpBatchScheduler>(8), tiny_table(), cache);
}

TEST(Server, BatchedResultsMatchIndividualRuns) {
  // End-to-end semantic soundness of the whole stack: DP batching +
  // zero-padding + attention masking must not change any request's answer.
  auto server = make_server();
  Rng rng(1);
  std::vector<Request> requests;
  for (int i = 0; i < 6; ++i) {
    requests.push_back(make_request(rng, i, 3 + i * 7));
  }

  const auto batched = server->serve(requests);
  ASSERT_EQ(batched.size(), requests.size());

  for (size_t i = 0; i < requests.size(); ++i) {
    const auto solo = server->serve({requests[i]});
    ASSERT_EQ(solo.size(), 1u);
    ASSERT_EQ(batched[i].logits.size(), solo[0].logits.size());
    for (size_t c = 0; c < solo[0].logits.size(); ++c) {
      EXPECT_NEAR(batched[i].logits[c], solo[0].logits[c], 5e-3f)
          << "request " << i << " class " << c;
    }
    EXPECT_EQ(batched[i].label, solo[0].label);
  }
}

TEST(Server, ResultsInRequestOrder) {
  auto server = make_server();
  Rng rng(2);
  std::vector<Request> requests;
  for (int i = 0; i < 5; ++i) {
    requests.push_back(make_request(rng, 100 + i, 40 - i * 7));
  }
  const auto results = server->serve(requests);
  for (size_t i = 0; i < requests.size(); ++i) {
    EXPECT_EQ(results[i].request_id, requests[i].id);
  }
}

TEST(Server, CacheServesRepeatsWithoutInference) {
  auto server = make_server(/*cache=*/16);
  Rng rng(3);
  const auto req = make_request(rng, 7, 12);
  const auto first = server->serve({req});
  EXPECT_FALSE(first[0].from_cache);
  const auto second = server->serve({req});
  EXPECT_TRUE(second[0].from_cache);
  EXPECT_EQ(second[0].logits, first[0].logits);
  EXPECT_EQ(second[0].label, first[0].label);
  EXPECT_EQ(server->cache()->hits(), 1u);
}

TEST(Server, MixedCachedAndFreshRequests) {
  auto server = make_server(16);
  Rng rng(4);
  const auto a = make_request(rng, 1, 10);
  const auto b = make_request(rng, 2, 20);
  server->serve({a});
  const auto results = server->serve({a, b});
  EXPECT_TRUE(results[0].from_cache);
  EXPECT_FALSE(results[1].from_cache);
  EXPECT_EQ(results[0].request_id, 1);
  EXPECT_EQ(results[1].request_id, 2);
}

TEST(Server, RejectsPayloadFreeRequests) {
  auto server = make_server();
  Request r;
  r.id = 1;
  r.length = 4;  // but no tokens
  EXPECT_THROW(server->serve({r}), CheckError);
}

TEST(Server, EmptyQueueYieldsEmptyResults) {
  auto server = make_server();
  EXPECT_TRUE(server->serve({}).empty());
}

}  // namespace
}  // namespace turbo::serving
