// Deterministic preempt-and-requeue scenarios for optimistic admission.
//
// The contract under test: preemption is invisible to results. A victim
// surrenders its unshared self blocks (CoW-shared and prefix-shared blocks
// stay resident through their other holders), parks its generated tokens,
// and on resume re-derives them bit-identically — same tokens, same
// logits — because the cross K/V never left the pool and the decoder is
// deterministic. KvCachePool::check_invariants() runs after every event.
#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <vector>

#include "common/check.h"
#include "common/rng.h"
#include "genserve/generation_server.h"
#include "genserve/kv_cache_pool.h"
#include "model/decoder.h"

namespace turbo::genserve {
namespace {

model::ModelConfig tiny() { return model::ModelConfig::tiny(2, 32, 2, 64, 50); }

KvPoolOptions small_pool() {
  KvPoolOptions o;
  o.block_tokens = 4;
  o.blocks_per_slab = 8;
  return o;
}

size_t pool_block_bytes() {
  return KvCachePool(tiny(), small_pool()).block_bytes();
}

float row_value(int marker, int t) {
  return static_cast<float>(marker) * 100.0f + static_cast<float>(t);
}

void write_row(const model::ModelConfig& config, SequenceKv& kv, int marker,
               int t) {
  for (int layer = 0; layer < config.num_layers; ++layer) {
    std::fill_n(kv.self_k(layer, t), config.hidden, row_value(marker, t));
    std::fill_n(kv.self_v(layer, t), config.hidden,
                row_value(marker, t) + 0.5f);
  }
}

void expect_rows(const model::ModelConfig& config, SequenceKv& kv, int marker,
                 int rows) {
  for (int layer = 0; layer < config.num_layers; ++layer) {
    for (int t = 0; t < rows; ++t) {
      ASSERT_EQ(kv.self_k(layer, t)[0], row_value(marker, t))
          << "seq " << kv.id() << " layer " << layer << " row " << t;
      ASSERT_EQ(kv.self_v(layer, t)[config.hidden - 1],
                row_value(marker, t) + 0.5f);
    }
  }
}

void init_cross(const model::ModelConfig& config, SequenceKv& kv,
                float value) {
  for (int layer = 0; layer < config.num_layers; ++layer) {
    for (int s = 0; s < kv.src_len(); ++s) {
      std::fill_n(kv.cross_k(layer, s), config.hidden, value);
      std::fill_n(kv.cross_v(layer, s), config.hidden, value);
    }
  }
  if (kv.needs_cross_init()) kv.mark_cross_ready();
}

serving::GenerationRequest make_request(Rng& rng, int64_t id, int src_len,
                                        int max_new) {
  serving::GenerationRequest r;
  r.id = id;
  r.src_tokens = rng.token_ids(src_len, 50);
  r.max_new_tokens = max_new;
  r.bos_id = 1;
  r.eos_id = 2;
  return r;
}

// ---------------------------------------------------------------------------
// Pool-level lifecycle
// ---------------------------------------------------------------------------

TEST(Preemption, SingleVictimReleasesBlocksAndResumesExactly) {
  const auto config = tiny();
  auto opts = small_pool();
  opts.max_bytes = 2 * 8 * pool_block_bytes();  // 16 blocks
  KvCachePool pool(config, opts);
  Rng rng(31);

  // Two optimistic admits: current demand (2 cross blocks x 2 layers +
  // 1 self block x 2 layers = 6 each) fits; the summed worst case
  // (blocks_for: 10 + 8 = 18) oversubscribes the 16-block pool.
  const auto prompt_a = rng.token_ids(6, 50);
  const auto prompt_b = rng.token_ids(7, 50);
  auto a = pool.admit_optimistic(1, prompt_a, 12);
  auto b = pool.admit_optimistic(2, prompt_b, 8);
  init_cross(config, *a, 10.0f);
  init_cross(config, *b, 20.0f);
  pool.check_invariants();
  EXPECT_EQ(pool.blocks_in_use(), 12u);
  EXPECT_GT(pool.blocks_reserved(), pool.max_blocks());  // oversubscribed

  // a grows to 9 rows (two block-boundary crossings: 12 -> 14 -> 16).
  int a_rows = 0;
  for (int t = 0; t < 9; ++t, ++a_rows) {
    ASSERT_TRUE(pool.try_ensure_token(*a, t));
    write_row(config, *a, 1, t);
  }
  int b_rows = 0;
  for (int t = 0; t < 4; ++t, ++b_rows) {
    ASSERT_TRUE(pool.try_ensure_token(*b, t));
    write_row(config, *b, 2, t);
  }
  pool.check_invariants();
  EXPECT_EQ(pool.blocks_in_use(), 16u);

  // b's next row needs a block per layer: the pool is exhausted, and the
  // failed grow must mutate nothing.
  EXPECT_FALSE(pool.try_ensure_token(*b, 4));
  pool.check_invariants();
  expect_rows(config, *b, 2, b_rows);

  // Preempt b: its 2 self blocks return, its cross share stays resident.
  pool.preempt(*b);
  pool.check_invariants();
  EXPECT_TRUE(b->parked());
  EXPECT_EQ(pool.parked_sequences(), 1);
  EXPECT_EQ(pool.blocks_in_use(), 14u);
  EXPECT_EQ(pool.preemptions(), 1u);
  EXPECT_EQ(pool.stats().preempt_freed_bytes, 2 * pool.block_bytes());
  // b's cross rows are still readable (the share never moved).
  EXPECT_EQ(b->cross_k(0, 0)[0], 20.0f);

  // a keeps decoding through the capacity b released.
  for (int t = 9; t < 12; ++t, ++a_rows) {
    ASSERT_TRUE(pool.try_ensure_token(*a, t));
    write_row(config, *a, 1, t);
  }
  pool.check_invariants();

  // a retires; b resumes and replays its rows past the old blocker.
  a.reset();
  pool.check_invariants();
  ASSERT_TRUE(pool.can_resume(*b));
  pool.resume(*b);
  pool.check_invariants();
  EXPECT_FALSE(b->parked());
  EXPECT_EQ(pool.resumes(), 1u);
  for (int t = 0; t <= b_rows; ++t) {
    ASSERT_TRUE(pool.try_ensure_token(*b, t));
    write_row(config, *b, 2, t);
  }
  ++b_rows;
  pool.check_invariants();
  expect_rows(config, *b, 2, b_rows);
  EXPECT_EQ(b->cross_k(1, b->src_len() - 1)[0], 20.0f);

  b.reset();
  pool.check_invariants();
  EXPECT_EQ(pool.blocks_in_use(), 0u);
  EXPECT_EQ(pool.stats().current_device_bytes, 0u);
}

TEST(Preemption, CowForkedBeamVictimFreesOnlyUnsharedBlocks) {
  const auto config = tiny();
  KvCachePool pool(config, small_pool());
  Rng rng(33);

  auto parent = pool.admit(1, rng.token_ids(5, 50), 12);
  init_cross(config, *parent, 5.0f);
  for (int t = 0; t < 6; ++t) {
    pool.ensure_token(*parent, t);
    write_row(config, *parent, 1, t);
  }
  auto child = pool.fork(*parent, 2);
  pool.check_invariants();

  // Child diverges in the tail block (CoW copy), keeps rows 0-3 shared.
  for (int t = 4; t < 6; ++t) {
    pool.ensure_token(*child, t);
    write_row(config, *child, 2, t);
  }
  ASSERT_GT(pool.cow_copies(), 0u);
  pool.check_invariants();

  // Preempting the parent must free only the blocks the child does not
  // hold: the diverged tail block per layer (the shared rows 0-3 blocks
  // stay live through the child).
  const size_t in_use_before = pool.blocks_in_use();
  pool.preempt(*parent);
  pool.check_invariants();
  EXPECT_EQ(pool.blocks_in_use(),
            in_use_before - static_cast<size_t>(config.num_layers));
  // Child reads all of its history unchanged: the shared prefix and its
  // own diverged tail.
  for (int layer = 0; layer < config.num_layers; ++layer) {
    for (int t = 0; t < 4; ++t) {
      ASSERT_EQ(child->self_k(layer, t)[0], row_value(1, t));
    }
    for (int t = 4; t < 6; ++t) {
      ASSERT_EQ(child->self_k(layer, t)[0], row_value(2, t));
    }
  }

  // Parent resumes and replays under the CoW barrier: fresh blocks, child
  // untouched, both read their own values.
  pool.resume(*parent);
  for (int t = 0; t < 6; ++t) {
    pool.ensure_token(*parent, t);
    write_row(config, *parent, 1, t);
  }
  pool.check_invariants();
  expect_rows(config, *parent, 1, 6);
  for (int layer = 0; layer < config.num_layers; ++layer) {
    for (int t = 4; t < 6; ++t) {
      ASSERT_EQ(child->self_k(layer, t)[0], row_value(2, t));
    }
  }

  child.reset();
  parent.reset();
  pool.check_invariants();
  EXPECT_EQ(pool.stats().current_device_bytes, 0u);
}

TEST(Preemption, SharedPrefixVictimKeepsCrossBlocksResident) {
  const auto config = tiny();
  KvCachePool pool(config, small_pool());
  Rng rng(35);
  const auto prompt = rng.token_ids(8, 50);

  auto a = pool.admit_optimistic(1, prompt, 6);
  init_cross(config, *a, 7.0f);
  auto b = pool.admit_optimistic(2, prompt, 6);
  EXPECT_FALSE(b->needs_cross_init());
  EXPECT_EQ(pool.prefix_hits(), 1u);
  pool.check_invariants();

  const size_t cross_blocks =
      static_cast<size_t>(config.num_layers) * 2;  // ceil(8/4) per layer

  // Preempt b, then a: the share must survive both because the parked
  // handles keep their references.
  pool.preempt(*b);
  pool.check_invariants();
  pool.preempt(*a);
  pool.check_invariants();
  EXPECT_EQ(pool.parked_sequences(), 2);
  EXPECT_EQ(pool.blocks_in_use(), cross_blocks);  // only the shared cross
  EXPECT_EQ(a->cross_k(0, 0)[0], 7.0f);
  EXPECT_EQ(b->cross_k(1, 7)[0], 7.0f);

  // Both resume without re-encoding (the share is still ready).
  pool.resume(*a);
  pool.resume(*b);
  pool.check_invariants();
  EXPECT_FALSE(a->needs_cross_init());
  EXPECT_FALSE(b->needs_cross_init());
  EXPECT_EQ(b->cross_k(0, 3)[0], 7.0f);

  a.reset();
  b.reset();
  pool.check_invariants();
  EXPECT_EQ(pool.blocks_in_use(), 0u);
  EXPECT_EQ(pool.stats().current_device_bytes, 0u);
}

// ---------------------------------------------------------------------------
// Bit-identity: replayed steps reproduce the exact logits
// ---------------------------------------------------------------------------

TEST(Preemption, ResumeReplayLogitsMatchUncontendedRunBitwise) {
  const auto config = tiny();
  model::Seq2SeqDecoder decoder(config, 29);
  Rng rng(37);
  const int s_src = 6;
  const int max_new = 10;
  Tensor memory = Tensor::owned(Shape{s_src, config.hidden});
  rng.fill_normal(memory.data<float>(), static_cast<size_t>(memory.numel()),
                  0.0f, 1.0f);

  KvCachePool pool(config, small_pool());
  auto kv = pool.admit(1, rng.token_ids(s_src, 50), max_new);
  decoder.init_cross_attention(memory, *kv);
  kv->mark_cross_ready();

  // Uncontended pass: record every step's logits and greedy tokens.
  const int vocab = config.vocab;
  std::vector<std::vector<float>> reference;
  std::vector<int> tokens;
  std::vector<float> logits(static_cast<size_t>(vocab));
  int last = 1;
  const int steps = 6;
  for (int t = 0; t < steps; ++t) {
    pool.ensure_token(*kv, t);
    decoder.step({{last, t, kv.get()}}, logits.data());
    reference.push_back(logits);
    last = static_cast<int>(
        std::max_element(logits.begin(), logits.end()) - logits.begin());
    tokens.push_back(last);
  }

  // Preempt, resume, replay: every replayed step must reproduce the
  // recorded logits bit for bit (cross K/V never left the pool; self rows
  // are a deterministic function of the replayed tokens).
  pool.preempt(*kv);
  pool.check_invariants();
  pool.resume(*kv);
  pool.check_invariants();
  last = 1;
  for (int t = 0; t < steps; ++t) {
    pool.ensure_token(*kv, t);
    decoder.step({{last, t, kv.get()}}, logits.data());
    for (int i = 0; i < vocab; ++i) {
      ASSERT_EQ(logits[static_cast<size_t>(i)],
                reference[static_cast<size_t>(t)][static_cast<size_t>(i)])
          << "replayed step " << t << " logit " << i;
    }
    last = static_cast<int>(
        std::max_element(logits.begin(), logits.end()) - logits.begin());
    ASSERT_EQ(last, tokens[static_cast<size_t>(t)]);
  }
  kv.reset();
  pool.check_invariants();
}

TEST(Preemption, PooledBeamDecodeUnchangedByParkedNeighbors) {
  // Beam search through a pool that also holds preempted (parked)
  // sequences: the parked cross shares must not perturb the beams' blocks
  // or numerics — pooled results stay bit-identical to dense.
  const auto config = tiny();
  model::Seq2SeqDecoder decoder(config, 29);
  Rng rng(39);
  const int s_src = 7;
  const int max_len = 12;
  Tensor memory = Tensor::owned(Shape{s_src, config.hidden});
  rng.fill_normal(memory.data<float>(), static_cast<size_t>(memory.numel()),
                  0.0f, 1.0f);

  for (const int beam : {2, 3}) {
    const auto dense = decoder.decode(memory, max_len, 1, 2, beam);

    KvCachePool pool(config, small_pool());
    auto bystander = pool.admit_optimistic(100, rng.token_ids(5, 50), 8);
    init_cross(config, *bystander, 3.0f);
    for (int t = 0; t < 3; ++t) {
      ASSERT_TRUE(pool.try_ensure_token(*bystander, t));
      write_row(config, *bystander, 9, t);
    }
    pool.preempt(*bystander);
    pool.check_invariants();

    PooledBeamKv factory(&pool);
    const auto pooled = decoder.decode(memory, max_len, 1, 2, beam, &factory);
    EXPECT_EQ(pooled.tokens, dense.tokens) << "beam " << beam;
    EXPECT_EQ(pooled.log_prob, dense.log_prob) << "beam " << beam;
    pool.check_invariants();

    pool.resume(*bystander);
    EXPECT_EQ(bystander->cross_k(0, 0)[0], 3.0f);
    bystander.reset();
    pool.check_invariants();
  }
}

// ---------------------------------------------------------------------------
// Server-level: preemption is invisible in results and streams
// ---------------------------------------------------------------------------

struct StreamLog {
  std::vector<int> tokens;  // streamed content tokens (EOS excluded)
  std::vector<int> steps;   // streamed step indices
  int last_count = 0;
};

std::map<int64_t, std::vector<int>> run_reference(
    const model::ModelConfig& config,
    const std::vector<serving::GenerationRequest>& requests) {
  GenServerOptions options;
  options.pool = small_pool();  // unbounded: never preempts
  options.scheduler.max_active = 8;
  GenerationServer server(config, options, 29);
  for (const auto& r : requests) server.submit(r);
  std::map<int64_t, std::vector<int>> out;
  for (const auto& resp : server.run_to_completion()) {
    out[resp.request_id] = resp.tokens;
  }
  TT_CHECK_EQ(server.scheduler().total_preempted(), 0u);
  return out;
}

TEST(Preemption, ServerPreemptsAndMatchesUncontendedRunExactly) {
  const auto config = tiny();
  Rng rng(41);
  std::vector<serving::GenerationRequest> requests;
  for (int i = 0; i < 4; ++i) {
    requests.push_back(make_request(rng, i, 5 + i, 10));
  }
  const auto reference = run_reference(config, requests);

  GenServerOptions options;
  options.pool = small_pool();
  options.pool.max_bytes = 3 * 8 * pool_block_bytes();  // 24 blocks, tight
  options.scheduler.max_active = 8;
  options.scheduler.optimistic_admission = true;
  GenerationServer server(config, options, 29);

  std::map<int64_t, StreamLog> streams;
  for (const auto& r : requests) {
    server.submit(r, [&, eos = r.eos_id](int64_t id, int token, int step,
                                         bool last) {
      auto& s = streams[id];
      if (token != eos) s.tokens.push_back(token);
      s.steps.push_back(step);
      if (last) ++s.last_count;
    });
  }
  // check_invariants() after every event: one observer call per iteration
  // covers every admit / grow / preempt / resume / retire in it.
  int preempted = 0;
  server.set_step_observer([&](const StepStats& s) {
    preempted += s.preempted;
    server.pool().check_invariants();
    EXPECT_LE(server.pool().blocks_in_use(), server.pool().max_blocks());
  });
  const auto responses = server.run_to_completion();

  ASSERT_EQ(responses.size(), requests.size());
  EXPECT_GT(preempted, 0) << "pool was not tight enough to force preemption";
  EXPECT_EQ(static_cast<size_t>(preempted),
            server.scheduler().total_preempted());
  EXPECT_EQ(server.scheduler().total_resumed(),
            server.scheduler().total_preempted());
  for (const auto& resp : responses) {
    EXPECT_EQ(resp.tokens, reference.at(resp.request_id))
        << "request " << resp.request_id;
    // Streaming continuity: no duplicates, no gaps, one is_last.
    const auto& s = streams[resp.request_id];
    EXPECT_EQ(s.tokens, resp.tokens);
    EXPECT_EQ(s.last_count, 1);
    for (size_t k = 0; k < s.steps.size(); ++k) {
      EXPECT_EQ(s.steps[k], static_cast<int>(k))
          << "request " << resp.request_id;
    }
  }
  EXPECT_TRUE(server.idle());
  EXPECT_EQ(server.pool().active_sequences(), 0);
  EXPECT_EQ(server.pool().stats().current_device_bytes, 0u);
}

TEST(Preemption, CascadingPreemptionStillServesEveryoneIdentically) {
  // A pool so tight that growing one sequence preempts several victims in
  // a cascade (and may evict parked cross shares entirely).
  const auto config = tiny();
  Rng rng(43);
  std::vector<serving::GenerationRequest> requests;
  for (int i = 0; i < 6; ++i) {
    requests.push_back(make_request(rng, i, 4 + (i % 3), 12));
  }
  const auto reference = run_reference(config, requests);

  GenServerOptions options;
  options.pool = small_pool();
  options.pool.max_bytes = 2 * 8 * pool_block_bytes();  // 16 blocks, brutal
  options.scheduler.max_active = 6;
  options.scheduler.optimistic_admission = true;
  GenerationServer server(config, options, 29);
  for (const auto& r : requests) server.submit(r);

  int max_preempted_in_one_step = 0;
  server.set_step_observer([&](const StepStats& s) {
    max_preempted_in_one_step = std::max(max_preempted_in_one_step,
                                         s.preempted);
    server.pool().check_invariants();
  });
  const auto responses = server.run_to_completion();
  ASSERT_EQ(responses.size(), requests.size());
  EXPECT_GE(server.scheduler().total_preempted(), 2u);
  for (const auto& resp : responses) {
    EXPECT_EQ(resp.tokens, reference.at(resp.request_id))
        << "request " << resp.request_id;
  }
  EXPECT_EQ(server.pool().stats().current_device_bytes, 0u);
}

// ---------------------------------------------------------------------------
// Victim policies
// ---------------------------------------------------------------------------

// Drives a scheduler directly (no decoder): admit three sequences, fill
// the pool, and check who gets parked when the requester grows.
class VictimPolicyTest : public ::testing::Test {
 protected:
  void run(GenSchedulerOptions scheduler_opts,
           const std::vector<int>& priorities, int64_t expected_victim) {
    const auto config = tiny();
    auto pool_opts = small_pool();
    pool_opts.max_bytes = 2 * 8 * pool_block_bytes();  // 16 blocks
    KvCachePool pool(config, pool_opts);
    auto costs = serving::CostTable::warmup(
        [](int len, int batch) { return 0.1 + 0.01 * len * batch; }, 64, 8, 8);
    scheduler_opts.optimistic_admission = true;
    scheduler_opts.max_active = 3;
    GenerationScheduler scheduler(&pool, &costs, scheduler_opts);

    // Three admits at 4 blocks each (12, plus admission growth headroom
    // fills out the 16-block pool). Only the FIRST sequence decodes:
    // its third block-boundary crossing exhausts the pool with the oldest
    // sequence as the requester, so victim eligibility (sequences the
    // requester outranks) covers both of the others.
    Rng rng(45);
    for (size_t i = 0; i < priorities.size(); ++i) {
      auto r = make_request(rng, static_cast<int64_t>(i), 4, i == 0 ? 16 : 12);
      r.priority = priorities[i];
      scheduler.enqueue(std::move(r));
    }
    const auto admitted = scheduler.admit(0.0);
    ASSERT_EQ(admitted.size(), priorities.size());
    for (ActiveSequence* seq : admitted) {
      if (seq->kv->needs_cross_init()) seq->kv->mark_cross_ready();
    }
    // Advance only sequence 0 until its growth preempts someone.
    while (scheduler.total_preempted() == 0) {
      const auto plan = scheduler.prepare_step();
      ASSERT_FALSE(plan.stepping.empty());
      for (ActiveSequence* seq : plan.stepping) {
        if (seq->request.id != 0) continue;
        ++seq->step;
        seq->tokens.push_back(3);  // park something replayable
        ASSERT_LT(seq->step, 15) << "pool never filled";
      }
      pool.check_invariants();
    }
    ASSERT_EQ(scheduler.requeued(), 1u);
    // The victim is whoever vanished from the active set.
    std::vector<int64_t> active_ids;
    for (const auto& seq : scheduler.active_set()) {
      active_ids.push_back(seq->request.id);
    }
    EXPECT_EQ(active_ids.size(), priorities.size() - 1);
    EXPECT_TRUE(std::find(active_ids.begin(), active_ids.end(),
                          expected_victim) == active_ids.end())
        << "expected victim " << expected_victim << " still active";
    // Drain: release everything so the pool destructor is happy.
    while (!scheduler.idle()) {
      scheduler.admit(0.0);
      for (const auto& seq : scheduler.active_set()) seq->finished = true;
      scheduler.retire_finished();
    }
  }
};

TEST_F(VictimPolicyTest, MostRecentlyAdmittedLosesByDefault) {
  run({}, {0, 0, 0}, /*expected_victim=*/2);
}

TEST_F(VictimPolicyTest, LowestPriorityLosesFirst) {
  GenSchedulerOptions opts;
  opts.victim_policy = GenSchedulerOptions::VictimPolicy::kLowestPriority;
  // Admission order would blame id 2; priority order blames id 1.
  run(opts, {5, 1, 3}, /*expected_victim=*/1);
}

TEST_F(VictimPolicyTest, CustomSelectorIsPluggable) {
  GenSchedulerOptions opts;
  opts.victim_selector =
      [](const std::vector<ActiveSequence*>& eligible) -> ActiveSequence* {
    // Deliberately pick the *oldest* eligible candidate.
    ActiveSequence* best = eligible.front();
    for (ActiveSequence* cand : eligible) {
      if (cand->admit_order < best->admit_order) best = cand;
    }
    return best;
  };
  run(opts, {0, 0, 0}, /*expected_victim=*/1);
}

}  // namespace
}  // namespace turbo::genserve
