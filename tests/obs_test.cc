// Observability subsystem tests: the lock-free trace ring (wraparound,
// overwrite-oldest under concurrent producers, drain-while-writing
// consistency), log-bucketed histogram quantiles against exact sample
// quantiles, the metrics registry and its exports, the offline
// attribution passes over synthetic span streams, trace serialization
// round-trips, and the registry-backed counter views on the generation
// servers (including the counters-survive-teardown contract).
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cmath>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "common/check.h"
#include "common/rng.h"
#include "genserve/generation_server.h"
#include "obs/metrics.h"
#include "obs/passes.h"
#include "obs/trace.h"
#include "obs/trace_io.h"

namespace turbo::obs {
namespace {

// --------------------------------------------------------------------------
// TraceRing

TraceSpan make_span(SpanKind kind, int64_t iteration, uint64_t start,
                    uint64_t end, int64_t seq = -1) {
  TraceSpan s;
  s.kind = kind;
  s.iteration = iteration;
  s.start_ticks = start;
  s.end_ticks = end;
  s.seq = seq;
  copy_name(s.model, "m:v1");
  return s;
}

TEST(TraceRingTest, RecordsAndSnapshotsInOrder) {
  TraceRing ring(16);
  for (int i = 0; i < 5; ++i) {
    ring.record(make_span(SpanKind::kDecodeStep, i, 100 * i, 100 * i + 7));
  }
  const auto spans = ring.snapshot();
  ASSERT_EQ(spans.size(), 5u);
  for (int i = 0; i < 5; ++i) {
    EXPECT_EQ(spans[i].kind, SpanKind::kDecodeStep);
    EXPECT_EQ(spans[i].iteration, i);
    EXPECT_EQ(spans[i].start_ticks, 100u * i);
    EXPECT_EQ(spans[i].end_ticks, 100u * i + 7);
    EXPECT_STREQ(spans[i].model, "m:v1");
  }
  EXPECT_EQ(ring.total_recorded(), 5u);
  EXPECT_EQ(ring.dropped(), 0u);
}

TEST(TraceRingTest, CapacityRoundsUpToPowerOfTwo) {
  EXPECT_EQ(TraceRing(1).capacity(), 2u);
  EXPECT_EQ(TraceRing(2).capacity(), 2u);
  EXPECT_EQ(TraceRing(5).capacity(), 8u);
  EXPECT_EQ(TraceRing(8).capacity(), 8u);
  EXPECT_EQ(TraceRing(1000).capacity(), 1024u);
}

TEST(TraceRingTest, WraparoundKeepsNewestSpans) {
  TraceRing ring(8);
  ASSERT_EQ(ring.capacity(), 8u);
  const int total = 20;
  for (int i = 0; i < total; ++i) {
    ring.record(make_span(SpanKind::kAdmit, i, i, i + 1));
  }
  const auto spans = ring.snapshot();
  // The ring holds exactly the last capacity() spans, oldest ticket first.
  ASSERT_EQ(spans.size(), 8u);
  for (int i = 0; i < 8; ++i) {
    EXPECT_EQ(spans[i].iteration, total - 8 + i);
  }
  EXPECT_EQ(ring.total_recorded(), static_cast<uint64_t>(total));
  EXPECT_EQ(ring.dropped(), 0u);  // single writer never laps mid-write
}

TEST(TraceRingTest, OverwriteOldestUnderConcurrentProducers) {
  TraceRing ring(256);
  const int threads = 4;
  const int per_thread = 20000;
  std::vector<std::thread> producers;
  for (int t = 0; t < threads; ++t) {
    producers.emplace_back([&ring, t] {
      for (int i = 0; i < per_thread; ++i) {
        TraceSpan s = make_span(SpanKind::kDecodeStep, i,
                                /*start=*/i, /*end=*/i + 3, /*seq=*/t);
        s.tokens = i;
        // Self-consistency checksum: a torn span cannot satisfy it.
        s.bytes = static_cast<uint64_t>(t) * 1000003u +
                  static_cast<uint64_t>(i);
        ring.record(s);
      }
    });
  }
  for (auto& th : producers) th.join();

  EXPECT_EQ(ring.total_recorded(),
            static_cast<uint64_t>(threads) * per_thread);
  const auto spans = ring.snapshot();
  EXPECT_LE(spans.size(), ring.capacity());
  EXPECT_GT(spans.size(), 0u);
  // Overwrite-oldest means drops only happen on the rare mid-write lap.
  EXPECT_LT(ring.dropped(), static_cast<uint64_t>(threads) * per_thread / 10);

  std::vector<int> last_token(threads, -1);
  for (const TraceSpan& s : spans) {
    ASSERT_GE(s.seq, 0);
    ASSERT_LT(s.seq, threads);
    // Published spans are never torn: every field agrees with the writer
    // that produced it.
    EXPECT_EQ(s.kind, SpanKind::kDecodeStep);
    EXPECT_EQ(s.end_ticks, s.start_ticks + 3);
    EXPECT_EQ(s.bytes, static_cast<uint64_t>(s.seq) * 1000003u +
                           static_cast<uint64_t>(s.tokens));
    // Oldest-ticket-first drain preserves each producer's record order.
    EXPECT_GT(s.tokens, last_token[s.seq]);
    last_token[s.seq] = s.tokens;
  }
}

TEST(TraceRingTest, DrainWhileWritingNeverReturnsTornSpans) {
  TraceRing ring(64);
  std::atomic<bool> stop{false};
  std::thread writer([&] {
    uint64_t i = 0;
    while (!stop.load(std::memory_order_relaxed)) {
      TraceSpan s;
      s.kind = SpanKind::kStream;
      s.seq = static_cast<int64_t>(i % 7);
      s.iteration = static_cast<int64_t>(i);
      s.tokens = static_cast<int32_t>(i % 1024);
      s.start_ticks = i;
      s.end_ticks = i + 5;
      s.bytes = i * 2 + 1;
      copy_name(s.model, "writer:v1");
      ring.record(s);
      ++i;
    }
  });

  // Don't start draining before the writer thread has published anything,
  // or all 200 rounds can finish against an empty ring.
  while (ring.total_recorded() == 0) std::this_thread::yield();

  size_t drained = 0;
  for (int round = 0; round < 200; ++round) {
    const auto spans = ring.snapshot();
    drained += spans.size();
    for (const TraceSpan& s : spans) {
      // Every invariant ties multiple words of the payload together; a
      // torn copy (old words mixed with new) would violate one of them.
      ASSERT_EQ(s.kind, SpanKind::kStream);
      ASSERT_EQ(s.end_ticks, s.start_ticks + 5);
      ASSERT_EQ(s.bytes, s.start_ticks * 2 + 1);
      ASSERT_EQ(s.seq, static_cast<int64_t>(s.start_ticks % 7));
      ASSERT_EQ(s.iteration, static_cast<int64_t>(s.start_ticks));
      ASSERT_STREQ(s.model, "writer:v1");
    }
  }
  stop.store(true);
  writer.join();
  EXPECT_GT(drained, 0u);
  EXPECT_GT(ring.total_recorded(), 0u);
}

// --------------------------------------------------------------------------
// Histogram

TEST(HistogramTest, EmptyAndSingleValue) {
  Histogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.quantile(0.5), 0.0);
  EXPECT_EQ(h.min(), 0.0);
  EXPECT_EQ(h.max(), 0.0);

  h.record(42.0);
  EXPECT_EQ(h.count(), 1u);
  EXPECT_EQ(h.min(), 42.0);
  EXPECT_EQ(h.max(), 42.0);
  // Quantiles clamp to the observed range, so a single sample is exact.
  EXPECT_EQ(h.quantile(0.0), 42.0);
  EXPECT_EQ(h.quantile(0.5), 42.0);
  EXPECT_EQ(h.quantile(0.999), 42.0);
}

TEST(HistogramTest, NegativeValuesClampToZero) {
  Histogram h;
  h.record(-3.0);
  EXPECT_EQ(h.count(), 1u);
  EXPECT_EQ(h.min(), 0.0);
  EXPECT_EQ(h.quantile(0.5), 0.0);
}

TEST(HistogramTest, QuantileInterpolationTracksExactQuantiles) {
  // Deterministic long-tailed sample set, the shape step latencies take.
  Rng rng(0x0B55);
  std::vector<double> values;
  Histogram h;
  for (int i = 0; i < 5000; ++i) {
    const double u = rng.uniform();
    const double v = 0.1 * std::exp(6.0 * u);  // ~0.1 .. ~40
    values.push_back(v);
    h.record(v);
  }
  std::sort(values.begin(), values.end());

  EXPECT_EQ(h.count(), values.size());
  double sum = 0;
  for (double v : values) sum += v;
  EXPECT_NEAR(h.sum(), sum, 1e-6 * sum);
  EXPECT_EQ(h.min(), values.front());
  EXPECT_EQ(h.max(), values.back());

  // Bucket bounds grow by 1.25x, so interpolation error is bounded by one
  // bucket width: 25% relative. Use 30% slack for rank-rounding at the
  // extremes.
  for (const double q : {0.50, 0.90, 0.99, 0.999}) {
    const double exact =
        values[static_cast<size_t>(q * (values.size() - 1))];
    const double est = h.quantile(q);
    EXPECT_NEAR(est, exact, 0.30 * exact)
        << "q=" << q << " exact=" << exact << " est=" << est;
    EXPECT_GE(est, h.min());
    EXPECT_LE(est, h.max());
  }
}

TEST(HistogramTest, OverflowBucketStaysClampedToObservedMax) {
  Histogram::Options opt;
  opt.first_bound = 1.0;
  opt.growth = 2.0;
  opt.buckets = 4;  // finite bounds 1, 2, 4, 8; everything above overflows
  Histogram h(opt);
  h.record(0.5);
  h.record(1e9);
  h.record(2e9);
  EXPECT_EQ(h.max(), 2e9);
  EXPECT_LE(h.quantile(0.999), 2e9);
  EXPECT_GE(h.quantile(0.999), 8.0);  // beyond every finite bound
}

TEST(HistogramTest, SummarizeMatchesAccessors) {
  Histogram h;
  for (int i = 1; i <= 100; ++i) h.record(static_cast<double>(i));
  const HistogramSnapshot s = summarize(h);
  EXPECT_EQ(s.count, 100u);
  EXPECT_EQ(s.min, 1.0);
  EXPECT_EQ(s.max, 100.0);
  EXPECT_NEAR(s.mean, 50.5, 1e-9);
  EXPECT_EQ(s.p50, h.quantile(0.50));
  EXPECT_EQ(s.p99, h.quantile(0.99));
}

// --------------------------------------------------------------------------
// Registry

TEST(RegistryTest, CreateOrGetReturnsSameMetric) {
  Registry reg;
  Counter& a = reg.counter("requests");
  Counter& b = reg.counter("requests");
  EXPECT_EQ(&a, &b);
  a.add(3);
  EXPECT_EQ(reg.counter_value("requests"), 3u);
  EXPECT_EQ(reg.counter_value("missing"), 0u);

  reg.gauge("pressure").set(0.75);
  EXPECT_DOUBLE_EQ(reg.gauge_value("pressure"), 0.75);
  EXPECT_DOUBLE_EQ(reg.gauge_value("missing"), 0.0);
}

TEST(RegistryTest, CrossTypeNameThrows) {
  Registry reg;
  reg.counter("x");
  EXPECT_THROW(reg.gauge("x"), CheckError);
  EXPECT_THROW(reg.histogram("x"), CheckError);
  reg.histogram("h");
  EXPECT_THROW(reg.counter("h"), CheckError);
}

TEST(RegistryTest, JsonAndPrometheusExports) {
  Registry reg;
  reg.counter("gen.m:v1.steps").add(7);
  reg.gauge("gen.m:v1.active_sequences").set(3);
  Histogram& h = reg.histogram("gen.m:v1.step_ms");
  h.record(1.0);
  h.record(2.0);

  const std::string json = reg.to_json();
  EXPECT_NE(json.find("\"counters\""), std::string::npos);
  EXPECT_NE(json.find("\"gen.m:v1.steps\":7"), std::string::npos);
  EXPECT_NE(json.find("\"gauges\""), std::string::npos);
  EXPECT_NE(json.find("\"histograms\""), std::string::npos);
  EXPECT_NE(json.find("\"count\":2"), std::string::npos);

  const std::string prom = reg.to_prometheus();
  // Prometheus names are sanitized: '.' is not a legal name character.
  EXPECT_NE(prom.find("gen_m:v1_steps 7"), std::string::npos);
  EXPECT_EQ(prom.find("gen.m"), std::string::npos);
  EXPECT_NE(prom.find("quantile=\"0.99\""), std::string::npos);
  EXPECT_NE(prom.find("gen_m:v1_step_ms_count 2"), std::string::npos);
}

// --------------------------------------------------------------------------
// Passes over synthetic spans

// Two steps tiled by phase spans: iteration 0 is [0, 1ms) with decode
// dominating; iteration 1 is [1ms, 3ms) with prefill dominating the tail.
std::vector<TraceSpan> synthetic_steps() {
  auto ms = [](double v) { return static_cast<uint64_t>(v * 1e6); };
  std::vector<TraceSpan> spans;
  // Step 0: admit 0.1ms, schedule 0.1ms, decode 0.7ms, stream 0.1ms.
  spans.push_back(make_span(SpanKind::kAdmit, 0, ms(0.0), ms(0.1)));
  spans.push_back(make_span(SpanKind::kSchedule, 0, ms(0.1), ms(0.2)));
  spans.push_back(make_span(SpanKind::kDecodeStep, 0, ms(0.2), ms(0.9)));
  spans.push_back(make_span(SpanKind::kStream, 0, ms(0.9), ms(1.0)));
  // Step 1 (the tail step): prefill 1.5ms, decode 0.4ms, stream 0.1ms.
  spans.push_back(make_span(SpanKind::kEncodePrefill, 1, ms(1.0), ms(2.5)));
  spans.push_back(make_span(SpanKind::kDecodeStep, 1, ms(2.5), ms(2.9)));
  spans.push_back(make_span(SpanKind::kStream, 1, ms(2.9), ms(3.0)));
  return spans;
}

TEST(PassesTest, AttributePhasesCoverageAndShares) {
  const auto spans = synthetic_steps();
  const PhaseAttribution attr = attribute_phases(spans);
  EXPECT_EQ(attr.iterations, 2u);
  EXPECT_NEAR(attr.step_wall_ms, 3.0, 1e-9);
  EXPECT_NEAR(attr.covered_ms, 3.0, 1e-9);
  EXPECT_NEAR(attr.coverage, 1.0, 1e-9);
  EXPECT_EQ(attr.dominant_tail_phase, SpanKind::kEncodePrefill);

  double share_sum = 0;
  for (const PhaseStat& p : attr.phases) share_sum += p.fraction;
  EXPECT_NEAR(share_sum, attr.coverage, 1e-9);

  // Phases sort by total time: decode (1.1ms) over prefill (1.5ms)? No —
  // prefill is the largest single total.
  ASSERT_FALSE(attr.phases.empty());
  EXPECT_EQ(attr.phases.front().kind, SpanKind::kEncodePrefill);
  EXPECT_NEAR(attr.phases.front().total_ms, 1.5, 1e-9);
}

TEST(PassesTest, CoverageDetectsUntiledGaps) {
  auto ms = [](double v) { return static_cast<uint64_t>(v * 1e6); };
  std::vector<TraceSpan> spans;
  // One step whose phases cover only half its wall: [0,0.5) of [0,1.0).
  spans.push_back(make_span(SpanKind::kDecodeStep, 0, ms(0.0), ms(0.5)));
  spans.push_back(make_span(SpanKind::kStream, 0, ms(1.0), ms(1.0)));
  const PhaseAttribution attr = attribute_phases(spans);
  EXPECT_NEAR(attr.coverage, 0.5, 1e-9);
}

TEST(PassesTest, PerSequenceSpansStayOutOfThePhaseTable) {
  auto spans = synthetic_steps();
  // A sequence queue-wait far longer than any step: must not leak into the
  // phase table (it belongs to the queueing pass), and must not move
  // coverage.
  auto ms = [](double v) { return static_cast<uint64_t>(v * 1e6); };
  spans.push_back(
      make_span(SpanKind::kAdmit, 0, ms(0.0), ms(500.0), /*seq=*/7));
  spans.push_back(make_span(SpanKind::kStream, 1, ms(500.0), ms(500.0),
                            /*seq=*/7));

  const PhaseAttribution attr = attribute_phases(spans);
  EXPECT_NEAR(attr.coverage, 1.0, 1e-9);
  for (const PhaseStat& p : attr.phases) {
    if (p.kind != SpanKind::kAdmit) continue;
    EXPECT_EQ(p.count, 1u);             // the engine phase span only
    EXPECT_NEAR(p.total_ms, 0.1, 1e-9); // not 500ms of queue wait
  }
  double share_sum = 0;
  for (const PhaseStat& p : attr.phases) share_sum += p.fraction;
  EXPECT_NEAR(share_sum, attr.coverage, 1e-9);
}

TEST(PassesTest, QueueingBreakdownDecomposesTtft) {
  auto ms = [](double v) { return static_cast<uint64_t>(v * 1e6); };
  std::vector<TraceSpan> spans;
  // Seq 1: arrives at 0, admitted at 10ms, first token at 12ms.
  spans.push_back(make_span(SpanKind::kAdmit, 0, ms(0), ms(10), /*seq=*/1));
  spans.push_back(make_span(SpanKind::kStream, 0, ms(12), ms(12), /*seq=*/1));
  // Seq 2: arrives at 0, admitted at 20ms, first token at 26ms.
  spans.push_back(make_span(SpanKind::kAdmit, 0, ms(0), ms(20), /*seq=*/2));
  spans.push_back(make_span(SpanKind::kStream, 0, ms(26), ms(26), /*seq=*/2));
  // Seq 3 has no first token yet: excluded.
  spans.push_back(make_span(SpanKind::kAdmit, 0, ms(0), ms(30), /*seq=*/3));

  const QueueingBreakdown q = queueing_breakdown(spans);
  EXPECT_EQ(q.sequences, 2u);
  EXPECT_NEAR(q.queue_p50_ms, 15.0, 1e-9);       // median of {10, 20}
  EXPECT_NEAR(q.admit_to_first_p50_ms, 4.0, 1e-9);  // median of {2, 6}
  EXPECT_NEAR(q.first_token_p50_ms, 19.0, 1e-9);    // median of {12, 26}
  EXPECT_NEAR(q.first_token_p99_ms, 26.0, 0.5);
}

TraceSpan event_span(SpanKind kind, int64_t iteration, int64_t seq,
                     int32_t tokens = 0) {
  TraceSpan s = make_span(kind, iteration, 0, 0, seq);
  s.tokens = tokens;
  return s;
}

TEST(PassesTest, DetectCascadesGroupsByIterationGap) {
  std::vector<TraceSpan> spans;
  // Cascade A: iterations 5-7, victims 10, 11, 10 again.
  spans.push_back(event_span(SpanKind::kPreempt, 5, 10));
  spans.push_back(event_span(SpanKind::kPreempt, 6, 11));
  spans.push_back(event_span(SpanKind::kPreempt, 7, 10));
  // Far-away cascade B: iteration 20, one victim, one eviction.
  spans.push_back(event_span(SpanKind::kPreempt, 20, 12));
  spans.push_back(event_span(SpanKind::kEvict, 20, 12));
  // Resumes: victim 10 was preempted twice, replaying 8 tokens in total
  // over 2 resumes; victim 11 replayed 5; victim 12 replayed 30.
  {
    TraceSpan r = make_span(SpanKind::kResume, 8, 0, 1'000'000, 10);
    r.tokens = 3;
    spans.push_back(r);
    r = make_span(SpanKind::kResume, 9, 0, 2'000'000, 10);
    r.tokens = 5;
    spans.push_back(r);
    r = make_span(SpanKind::kResume, 9, 0, 500'000, 11);
    r.tokens = 5;
    spans.push_back(r);
    r = make_span(SpanKind::kResume, 22, 0, 4'000'000, 12);
    r.tokens = 30;
    spans.push_back(r);
  }

  const auto cascades = detect_cascades(spans, /*max_gap=*/1);
  ASSERT_EQ(cascades.size(), 2u);
  // Sorted by replay cost: cascade B (30 tokens) first.
  EXPECT_EQ(cascades[0].first_iteration, 20);
  EXPECT_EQ(cascades[0].last_iteration, 20);
  EXPECT_EQ(cascades[0].preemptions, 1u);
  EXPECT_EQ(cascades[0].evictions, 1u);
  EXPECT_EQ(cascades[0].replayed_tokens, 30);

  const PreemptionCascade& a = cascades[1];
  EXPECT_EQ(a.first_iteration, 5);
  EXPECT_EQ(a.last_iteration, 7);
  EXPECT_EQ(a.preemptions, 3u);
  ASSERT_EQ(a.victims.size(), 3u);
  EXPECT_EQ(a.victims[0], 10);
  EXPECT_EQ(a.victims[1], 11);
  EXPECT_EQ(a.victims[2], 10);
  // Victim 10 appears twice; its 8 replayed tokens average to 4 per
  // appearance, so the cascade bills 4 + 5 + 4 = 13, not 8 + 5 + 8.
  EXPECT_EQ(a.replayed_tokens, 13);
}

TEST(PassesTest, ReclaimTimelineOrdersEvents) {
  std::vector<TraceSpan> spans;
  TraceSpan r1 = make_span(SpanKind::kReclaim, 4, 2'000'000, 2'000'000);
  copy_name(r1.model, "starved:v1");
  copy_name(r1.peer, "donor:v1");
  r1.bytes = 4096;
  TraceSpan r2 = make_span(SpanKind::kReclaim, 2, 1'000'000, 1'000'000);
  copy_name(r2.model, "hungry:v2");
  copy_name(r2.peer, "donor:v1");
  r2.bytes = 1024;
  spans.push_back(r1);  // recorded out of order on purpose
  spans.push_back(r2);

  const auto events = reclaim_timeline(spans);
  ASSERT_EQ(events.size(), 2u);
  EXPECT_EQ(events[0].starved, "hungry:v2");
  EXPECT_EQ(events[0].donor, "donor:v1");
  EXPECT_EQ(events[0].bytes, 1024u);
  EXPECT_EQ(events[0].iteration, 2);
  EXPECT_NEAR(events[0].at_ms, 0.0, 1e-9);  // relative to first span
  EXPECT_EQ(events[1].starved, "starved:v1");
  EXPECT_NEAR(events[1].at_ms, 1.0, 1e-9);
}

TEST(PassesTest, RenderSummaryMentionsEverySection) {
  auto spans = synthetic_steps();
  spans.push_back(make_span(SpanKind::kAdmit, 0, 0, 1000, /*seq=*/1));
  spans.push_back(make_span(SpanKind::kStream, 0, 2000, 2000, /*seq=*/1));
  spans.push_back(event_span(SpanKind::kPreempt, 1, 1, 4));
  const std::string summary = render_trace_summary(spans);
  EXPECT_NE(summary.find("trace summary:"), std::string::npos);
  EXPECT_NE(summary.find("phase coverage"), std::string::npos);
  EXPECT_NE(summary.find("queueing (1 seqs)"), std::string::npos);
  EXPECT_NE(summary.find("preemption cascades: 1"), std::string::npos);
}

// --------------------------------------------------------------------------
// Trace IO

TEST(TraceIoTest, RoundTripPreservesEveryField) {
  std::vector<TraceSpan> spans;
  TraceSpan s = make_span(SpanKind::kReclaim, 42, 123456789, 987654321, 7);
  s.model_version = 3;
  s.batch = 12;
  s.tokens = -5;
  s.bytes = 1ull << 40;
  copy_name(s.peer, "donor:v9");
  spans.push_back(s);
  spans.push_back(make_span(SpanKind::kDecodeStep, 0, 1, 2));
  TraceSpan anon = make_span(SpanKind::kEvict, 1, 3, 3, 9);
  copy_name(anon.model, "");  // serializes as "-"
  spans.push_back(anon);

  std::stringstream ss;
  write_trace(ss, spans);
  const auto back = read_trace(ss);
  ASSERT_EQ(back.size(), spans.size());
  for (size_t i = 0; i < spans.size(); ++i) {
    EXPECT_EQ(back[i].kind, spans[i].kind);
    EXPECT_EQ(back[i].model_version, spans[i].model_version);
    EXPECT_EQ(back[i].seq, spans[i].seq);
    EXPECT_EQ(back[i].iteration, spans[i].iteration);
    EXPECT_EQ(back[i].batch, spans[i].batch);
    EXPECT_EQ(back[i].tokens, spans[i].tokens);
    EXPECT_EQ(back[i].bytes, spans[i].bytes);
    EXPECT_EQ(back[i].start_ticks, spans[i].start_ticks);
    EXPECT_EQ(back[i].end_ticks, spans[i].end_ticks);
    EXPECT_STREQ(back[i].model, spans[i].model);
    EXPECT_STREQ(back[i].peer, spans[i].peer);
  }
}

TEST(TraceIoTest, RejectsMissingHeaderAndMalformedLines) {
  {
    std::stringstream ss("not a trace\n");
    EXPECT_THROW(read_trace(ss), CheckError);
  }
  {
    std::stringstream ss("# turbo-trace v1\ndecode m:v1 oops\n");
    EXPECT_THROW(read_trace(ss), CheckError);
  }
  {
    std::stringstream ss(
        "# turbo-trace v1\nwarp m:v1 1 -1 0 0 0 0 1 2 -\n");
    EXPECT_THROW(read_trace(ss), CheckError);  // unknown span kind
  }
}

TEST(TraceIoTest, SpanKindNamesRoundTrip) {
  for (int k = 0; k < kSpanKinds; ++k) {
    const SpanKind kind = static_cast<SpanKind>(k);
    SpanKind back;
    ASSERT_TRUE(span_kind_from_name(span_kind_name(kind), &back));
    EXPECT_EQ(back, kind);
  }
  SpanKind unused;
  EXPECT_FALSE(span_kind_from_name("warp", &unused));
}

TEST(TraceIoTest, ChromeTraceJsonEmitsExpectedEventTypes) {
  auto spans = synthetic_steps();
  spans.push_back(make_span(SpanKind::kResume, 1, 0, 1'000'000, /*seq=*/3));
  spans.push_back(event_span(SpanKind::kPreempt, 1, 3, 2));
  const std::string json = chrome_trace_json(spans);
  EXPECT_EQ(json.front(), '{');
  EXPECT_EQ(json.back(), '}');
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"M\""), std::string::npos);  // track names
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);  // phase spans
  EXPECT_NE(json.find("\"ph\":\"b\""), std::string::npos);  // seq span open
  EXPECT_NE(json.find("\"ph\":\"e\""), std::string::npos);  // seq span close
  EXPECT_NE(json.find("\"ph\":\"i\""), std::string::npos);  // instant
  EXPECT_NE(json.find("\"name\":\"m:v1\""), std::string::npos);
  // Balanced braces: a cheap structural sanity check on the emitter.
  EXPECT_EQ(std::count(json.begin(), json.end(), '{'),
            std::count(json.begin(), json.end(), '}'));
}

// --------------------------------------------------------------------------
// Registry-backed server counters (the dedup satellite)

model::ModelConfig tiny_config() {
  return model::ModelConfig::tiny(2, 32, 2, 64, 50);
}

std::vector<serving::GenerationRequest> tiny_requests(int n) {
  Rng rng(0xC0FFEE);
  std::vector<serving::GenerationRequest> reqs;
  for (int i = 0; i < n; ++i) {
    serving::GenerationRequest r;
    r.id = i;
    r.src_tokens = rng.token_ids(6, 50);
    r.max_new_tokens = 5;
    r.bos_id = 1;
    r.eos_id = 2;
    reqs.push_back(std::move(r));
  }
  return reqs;
}

TEST(ObsIntegrationTest, TracingOffByDefaultButMetricsAlwaysOn) {
  genserve::GenServerOptions options;
  genserve::GenerationServer server(tiny_config(), options, 1);
  EXPECT_EQ(server.trace_ring(), nullptr);
  for (auto& r : tiny_requests(3)) server.submit(r);
  const auto responses = server.run_to_completion();
  EXPECT_TRUE(server.trace_spans().empty());

  // Metrics publish regardless of tracing.
  const auto& reg = *server.metrics();
  const std::string p = server.metric_prefix();
  EXPECT_EQ(reg.counter_value(p + "requests_submitted"), 3u);
  EXPECT_EQ(reg.counter_value(p + "requests_completed"), responses.size());
  EXPECT_EQ(reg.counter_value(p + "steps"),
            static_cast<uint64_t>(server.iterations()));
  size_t tokens = 0;
  for (const auto& r : responses) tokens += r.tokens.size();
  EXPECT_EQ(reg.counter_value(p + "tokens_streamed"), tokens);
}

TEST(ObsIntegrationTest, KvPressureGaugesTrackThePool) {
  // The router's KV-pressure signals, published as gauges at the end of
  // every fused step: free blocks behind the admission gate and the bytes
  // charged against it. Bounded pool so "free" is a finite number.
  genserve::GenServerOptions options;
  options.pool.block_tokens = 4;
  options.pool.blocks_per_slab = 4;
  options.pool.max_bytes = 8ull * 4 * 4 * 2 * 32 * sizeof(float);
  genserve::GenerationServer server(tiny_config(), options, 1);
  const auto& reg = *server.metrics();
  const std::string p = server.metric_prefix();

  for (auto& r : tiny_requests(4)) server.submit(r);
  bool saw_charge = false;
  while (!server.idle()) {
    server.step();
    const auto snap = server.pool_snapshot();
    EXPECT_EQ(reg.gauge_value(p + "kv_free_blocks"),
              static_cast<double>(snap.free_blocks));
    EXPECT_EQ(reg.gauge_value(p + "kv_charged_bytes"),
              static_cast<double>(snap.charged_bytes));
    saw_charge = saw_charge || snap.charged_bytes > 0;
  }
  EXPECT_TRUE(saw_charge) << "pool never charged — the gauges went untested";
  // Drained: everything released, full headroom back.
  EXPECT_EQ(reg.gauge_value(p + "kv_charged_bytes"), 0.0);
  EXPECT_EQ(reg.gauge_value(p + "kv_free_blocks"),
            static_cast<double>(server.pool_snapshot().free_blocks));
}

TEST(ObsIntegrationTest, TracedRunAttributesItsSteps) {
  genserve::GenServerOptions options;
  options.trace.enabled = true;
  genserve::GenerationServer server(tiny_config(), options, 1);
  ASSERT_NE(server.trace_ring(), nullptr);
  for (auto& r : tiny_requests(4)) server.submit(r);
  const auto responses = server.run_to_completion();
  ASSERT_EQ(responses.size(), 4u);

  const auto spans = server.trace_spans();
  ASSERT_FALSE(spans.empty());
  EXPECT_EQ(server.trace_ring()->dropped(), 0u);

  size_t decode_spans = 0;
  size_t first_tokens = 0;
  for (const auto& s : spans) {
    if (s.kind == SpanKind::kDecodeStep && s.seq < 0) ++decode_spans;
    if (s.kind == SpanKind::kStream && s.seq >= 0) ++first_tokens;
  }
  EXPECT_EQ(decode_spans, static_cast<size_t>(server.iterations()));
  EXPECT_EQ(first_tokens, 4u);  // one first-token event per sequence

  const PhaseAttribution attr = attribute_phases(spans);
  EXPECT_EQ(attr.iterations, static_cast<size_t>(server.iterations()));
  // Coverage is a ratio of the same clock on the same steps, so it is
  // machine-independent: the phases tile the step by construction.
  EXPECT_GE(attr.coverage, 0.9);
  const QueueingBreakdown q = queueing_breakdown(spans);
  EXPECT_EQ(q.sequences, 4u);
}

TEST(ObsIntegrationTest, SharedRegistrySurvivesServerTeardown) {
  // The counters-reset-on-teardown fix: hand one registry to successive
  // async server incarnations and the lifetime totals accumulate across
  // them instead of restarting from zero.
  auto registry = std::make_shared<Registry>();
  const auto requests = tiny_requests(3);
  std::string prefix;
  size_t first_served = 0;
  {
    genserve::GenServerOptions options;
    options.metrics = registry;
    auto server = std::make_unique<genserve::GenerationServer>(
        tiny_config(), options, 1);
    prefix = server->metric_prefix();
    genserve::AsyncGenerationServer async(std::move(server));
    std::vector<std::future<serving::GenerationResponse>> futures;
    for (auto r : requests) futures.push_back(async.submit(std::move(r)));
    for (auto& f : futures) f.get();
    first_served = async.served();
    EXPECT_EQ(first_served, requests.size());
  }
  // The shell is gone; the registry still holds the totals.
  EXPECT_EQ(registry->counter_value(prefix + "requests_completed"),
            first_served);

  {
    genserve::GenServerOptions options;
    options.metrics = registry;
    auto server = std::make_unique<genserve::GenerationServer>(
        tiny_config(), options, 1);
    genserve::AsyncGenerationServer async(std::move(server));
    // A fresh shell over the same registry resumes the count.
    EXPECT_EQ(async.served(), first_served);
    auto reqs = tiny_requests(2);
    std::vector<std::future<serving::GenerationResponse>> futures;
    for (auto& r : reqs) {
      r.id += 100;
      futures.push_back(async.submit(std::move(r)));
    }
    for (auto& f : futures) f.get();
    EXPECT_EQ(async.served(), first_served + 2);
  }
}

}  // namespace
}  // namespace turbo::obs
