#include <gtest/gtest.h>

#include <algorithm>
#include <future>
#include <map>
#include <mutex>
#include <thread>

#include "common/check.h"
#include "common/rng.h"
#include "genserve/generation_server.h"
#include "serving/async_server.h"

namespace turbo::serving {
namespace {

model::ModelConfig tiny() { return model::ModelConfig::tiny(2, 32, 2, 64, 50); }

std::unique_ptr<Server> make_sync_server(size_t cache = 0) {
  auto costs = CostTable::warmup(
      [](int len, int batch) { return 0.5 + 0.01 * len * batch; }, 64, 8, 8);
  return std::make_unique<Server>(
      std::make_unique<model::SequenceClassifier>(tiny(), 3, 99),
      std::make_unique<DpBatchScheduler>(8), std::move(costs), cache);
}

Request make_request(Rng& rng, int64_t id, int len) {
  Request r;
  r.id = id;
  r.length = len;
  r.tokens = rng.token_ids(len, 50);
  return r;
}

TEST(AsyncServer, ServesSubmittedRequests) {
  AsyncServer server(make_sync_server());
  Rng rng(1);
  auto f1 = server.submit(make_request(rng, 1, 8));
  auto f2 = server.submit(make_request(rng, 2, 20));
  const auto r1 = f1.get();
  const auto r2 = f2.get();
  EXPECT_EQ(r1.request_id, 1);
  EXPECT_EQ(r2.request_id, 2);
  EXPECT_EQ(r1.logits.size(), 3u);
  server.shutdown();
  EXPECT_EQ(server.served(), 2u);
}

TEST(AsyncServer, ResultsMatchSynchronousServer) {
  // The async pipeline (MQ + hungry trigger + batching) must not change any
  // request's answer.
  auto reference_server = make_sync_server();
  Rng rng(2);
  std::vector<Request> requests;
  for (int i = 0; i < 6; ++i) requests.push_back(make_request(rng, i, 4 + 6 * i));
  const auto expected = reference_server->serve(requests);

  AsyncServer server(make_sync_server());
  std::vector<std::future<ServedResult>> futures;
  for (const auto& r : requests) futures.push_back(server.submit(r));
  for (size_t i = 0; i < futures.size(); ++i) {
    const auto got = futures[i].get();
    ASSERT_EQ(got.logits.size(), expected[i].logits.size());
    for (size_t c = 0; c < got.logits.size(); ++c) {
      EXPECT_NEAR(got.logits[c], expected[i].logits[c], 5e-3f);
    }
    EXPECT_EQ(got.label, expected[i].label);
  }
}

TEST(AsyncServer, ConcurrentClientsAllServed) {
  AsyncServer server(make_sync_server());
  constexpr int kClients = 8, kPerClient = 5;
  std::vector<std::thread> clients;
  std::vector<std::vector<std::future<ServedResult>>> futures(kClients);
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      Rng rng(static_cast<uint64_t>(c) + 10);
      for (int i = 0; i < kPerClient; ++i) {
        futures[static_cast<size_t>(c)].push_back(server.submit(
            make_request(rng, c * 100 + i, 3 + (c + i) % 20)));
      }
    });
  }
  for (auto& t : clients) t.join();
  for (int c = 0; c < kClients; ++c) {
    for (auto& f : futures[static_cast<size_t>(c)]) {
      const auto r = f.get();
      EXPECT_GE(r.label, 0);
      EXPECT_LT(r.label, 3);
    }
  }
  server.shutdown();
  EXPECT_EQ(server.served(), static_cast<size_t>(kClients * kPerClient));
}

TEST(AsyncServer, HungryTriggerBatchesBursts) {
  AsyncServer server(make_sync_server());
  Rng rng(3);
  // A burst submitted faster than the worker can drain forms batches: the
  // scheduler should run far fewer times than there are requests.
  std::vector<std::future<ServedResult>> futures;
  for (int i = 0; i < 40; ++i) {
    futures.push_back(server.submit(make_request(rng, i, 4 + i % 16)));
  }
  for (auto& f : futures) f.get();
  server.shutdown();
  EXPECT_EQ(server.served(), 40u);
  EXPECT_LT(server.scheduler_runs(), 40u);
  EXPECT_GE(server.scheduler_runs(), 1u);
}

TEST(AsyncServer, SubmitAfterShutdownRejected) {
  AsyncServer server(make_sync_server());
  server.shutdown();
  Rng rng(4);
  EXPECT_THROW(server.submit(make_request(rng, 1, 5)), CheckError);
}

TEST(AsyncServer, ShutdownDrainsPendingWork) {
  auto server = std::make_unique<AsyncServer>(make_sync_server());
  Rng rng(5);
  std::vector<std::future<ServedResult>> futures;
  for (int i = 0; i < 10; ++i) {
    futures.push_back(server->submit(make_request(rng, i, 6)));
  }
  server->shutdown();  // must not orphan the futures
  for (auto& f : futures) EXPECT_NO_THROW(f.get());
}

TEST(AsyncServer, BadRequestSurfacesAsException) {
  AsyncServer server(make_sync_server());
  Request bad;
  bad.id = 1;
  bad.length = 4;  // no payload tokens
  auto f = server.submit(bad);
  EXPECT_THROW(f.get(), CheckError);
  // The server stays alive for subsequent good requests.
  Rng rng(6);
  auto good = server.submit(make_request(rng, 2, 5));
  EXPECT_NO_THROW(good.get());
}

// ---------------------------------------------------------------------------
// Shared-prefix concurrency through AsyncGenerationServer: N clients racing
// identical prompts must all complete, and CoW prefix sharing must keep the
// peak pool footprint well under N independent worst-case reservations.
// ---------------------------------------------------------------------------

TEST(AsyncGenerationSharedPrefix, ConcurrentClientsShareBlocks) {
  const auto config = tiny();
  genserve::GenServerOptions options;
  options.pool.block_tokens = 4;
  options.pool.blocks_per_slab = 4;
  options.scheduler.max_active = 16;
  auto engine =
      std::make_unique<genserve::GenerationServer>(config, options, 29);
  genserve::AsyncGenerationServer server(std::move(engine));

  // One long prompt shared by every client: cross-heavy on purpose, so the
  // shared blocks dominate each request's worst case.
  Rng prompt_rng(42);
  const std::vector<int> shared_src = prompt_rng.token_ids(32, 50);

  constexpr int kClients = 6;
  constexpr int kPerClient = 2;
  constexpr int kRequests = kClients * kPerClient;
  int max_new_cap = 0;

  struct Stream {
    std::vector<int> tokens;
    int last_count = 0;
  };
  std::mutex stream_mutex;
  std::map<int64_t, Stream> streams;

  std::vector<std::thread> clients;
  std::vector<std::vector<std::future<serving::GenerationResponse>>> futures(
      kClients);
  for (int c = 0; c < kClients; ++c) {
    const int max_new = 4 + c % 3;
    max_new_cap = std::max(max_new_cap, max_new);
    clients.emplace_back([&, c, max_new] {
      for (int i = 0; i < kPerClient; ++i) {
        serving::GenerationRequest r;
        r.id = c * 100 + i;
        r.src_tokens = shared_src;
        r.max_new_tokens = max_new;
        futures[static_cast<size_t>(c)].push_back(server.submit(
            r, [&](int64_t id, int token, int /*step*/, bool last) {
              std::lock_guard<std::mutex> lock(stream_mutex);
              auto& s = streams[id];
              if (token != 2) s.tokens.push_back(token);
              if (last) ++s.last_count;
            }));
      }
    });
  }
  for (auto& t : clients) t.join();

  // Every stream completes and matches its future's response.
  for (int c = 0; c < kClients; ++c) {
    for (auto& f : futures[static_cast<size_t>(c)]) {
      const auto resp = f.get();
      EXPECT_GE(resp.steps, 1);
      std::lock_guard<std::mutex> lock(stream_mutex);
      const auto& s = streams[resp.request_id];
      EXPECT_EQ(s.tokens, resp.tokens) << "request " << resp.request_id;
      EXPECT_EQ(s.last_count, 1) << "request " << resp.request_id;
    }
  }
  server.shutdown();

  // Peak pool blocks must stay far below N independent worst-case
  // reservations: the prompt's cross blocks exist once per wave, not once
  // per request.
  genserve::KvCachePool probe(config, options.pool);
  const size_t worst_case_bytes =
      probe.blocks_for(static_cast<int>(shared_src.size()), max_new_cap) *
      probe.block_bytes();
  const auto snapshot = server.pool_snapshot();
  EXPECT_GT(snapshot.peak_device_bytes, 0u);
  EXPECT_LT(snapshot.peak_device_bytes, kRequests * worst_case_bytes);
  // Stronger: sharing should beat even half the unshared budget.
  EXPECT_LT(snapshot.peak_device_bytes, kRequests * worst_case_bytes / 2);
  EXPECT_EQ(snapshot.active_sequences, 0);
  EXPECT_EQ(snapshot.device_bytes, 0u);
}

}  // namespace
}  // namespace turbo::serving
