// Differential property tests for memory::TlsfArena, plus the
// mixed-geometry fragmentation regression for TLSF-backed KV pools.
//
// A naive reference allocator — a sorted free-range map with the TLSF
// success predicate re-derived from the size-class math — is maintained
// alongside the arena. Random alloc/free/grow traces then check, after
// every operation:
//
//  * identical success/failure outcomes — the arena returns kNoSpace
//    exactly when no free range's size class reaches the class of the
//    good-fit-rounded request (TLSF's documented behavior, including its
//    intentional failures on requests its own class would have fit);
//  * zero range overlap — every returned span carves out of exactly one
//    reference free range, so no two live allocations can alias;
//  * exact live/free byte agreement and TlsfArena::check_invariants()
//    (physical tiling, immediate coalescing, free-list/bitmap mirror);
//  * full coalescing after drain — live drops to zero, the free bytes
//    equal capacity, and the invariant walk (no two adjacent free blocks)
//    then forces a single spanning block.
//
// Seeded + logged like kv_pool_property_test.cc: every assertion carries
// the seed that produced the trace.
#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <memory>
#include <vector>

#include "common/check.h"
#include "common/rng.h"
#include "genserve/generation_server.h"
#include "genserve/model_bundle.h"
#include "genserve/multi_model_server.h"
#include "memory/tlsf_arena.h"

namespace turbo::memory {
namespace {

constexpr size_t kGranule = 64;

// Free-range bookkeeping with the TLSF "good fit" predicate re-derived
// independently of the implementation (kSlLog2 = 4 subdivision bits, per
// Masmano et al.). All quantities in granules.
class ReferenceAllocator {
 public:
  explicit ReferenceAllocator(size_t capacity_g) : cap_(capacity_g) {
    if (capacity_g > 0) free_[0] = capacity_g;
  }

  // (fl, sl) size class of a block of `g` granules, ordered lexicographic.
  static std::pair<int, int> size_class(size_t g) {
    if (g < 16) return {0, static_cast<int>(g)};
    int f = 0;
    for (size_t v = g; v > 1; v >>= 1) ++f;
    return {f - 3, static_cast<int>((g >> (f - 4)) & 15)};
  }

  // Request rounded up so the class search never returns a too-small
  // block: the class searched for `need` granules.
  static std::pair<int, int> search_class(size_t need_g) {
    size_t rounded = need_g;
    if (need_g >= 16) {
      int f = 0;
      for (size_t v = need_g; v > 1; v >>= 1) ++f;
      rounded = need_g + (static_cast<size_t>(1) << (f - 4)) - 1;
    }
    return size_class(rounded);
  }

  // TLSF succeeds iff some free range's class reaches the search class —
  // NOT iff some range is large enough: a request mid-class fails even
  // when an exact fit waits in the class below the search start.
  bool can_alloc(size_t need_g) const {
    const auto want = search_class(need_g);
    for (const auto& [off, len] : free_) {
      if (size_class(len) >= want) return true;
    }
    return false;
  }

  // Record that the arena carved [off_g, off_g + size_g) out of free
  // space; fails the test if the span is not wholly inside one free range
  // (i.e. it would overlap a live allocation or fall off the arena).
  void take(size_t off_g, size_t size_g) {
    auto it = free_.upper_bound(off_g);
    ASSERT_TRUE(it != free_.begin()) << "span at " << off_g << " not free";
    --it;
    const size_t r_off = it->first;
    const size_t r_len = it->second;
    ASSERT_GE(off_g, r_off);
    ASSERT_LE(off_g + size_g, r_off + r_len)
        << "span [" << off_g << ", " << off_g + size_g
        << ") overlaps a live range";
    free_.erase(it);
    if (off_g > r_off) free_[r_off] = off_g - r_off;
    if (r_off + r_len > off_g + size_g) {
      free_[off_g + size_g] = r_off + r_len - (off_g + size_g);
    }
  }

  void release(size_t off_g, size_t size_g) {
    auto next = free_.upper_bound(off_g);
    if (next != free_.begin()) {
      auto prev = std::prev(next);
      ASSERT_LE(prev->first + prev->second, off_g) << "double free";
      if (prev->first + prev->second == off_g) {  // coalesce backward
        off_g = prev->first;
        size_g += prev->second;
        free_.erase(prev);
      }
    }
    if (next != free_.end()) {
      ASSERT_GE(next->first, off_g + size_g) << "double free";
      if (next->first == off_g + size_g) {  // coalesce forward
        size_g += next->second;
        free_.erase(next);
      }
    }
    free_[off_g] = size_g;
  }

  void grow(size_t extra_g) {
    release(cap_, extra_g);
    cap_ += extra_g;
  }

  size_t free_granules() const {
    size_t total = 0;
    for (const auto& [off, len] : free_) total += len;
    return total;
  }
  size_t ranges() const { return free_.size(); }

 private:
  size_t cap_;
  std::map<size_t, size_t> free_;  // offset -> length, granules
};

struct LiveSpan {
  size_t offset = 0;
  size_t span_g = 0;
};

void run_differential(uint64_t seed, int ops, size_t initial_g) {
  SCOPED_TRACE("seed " + std::to_string(seed));
  Rng rng(seed);
  TlsfArena arena(initial_g * kGranule, kGranule);
  ReferenceAllocator ref(initial_g);
  std::vector<LiveSpan> live;
  size_t cap_g = initial_g;
  size_t live_g = 0;

  for (int op = 0; op < ops; ++op) {
    const int kind = static_cast<int>(rng.uniform_int(0, 99));
    if (kind < 55 || live.empty()) {
      // Alloc, sizes skewed small with an occasional huge request so both
      // the split path and the failure path stay hot.
      size_t bytes;
      const int shape = static_cast<int>(rng.uniform_int(0, 9));
      if (shape < 6) {
        bytes = static_cast<size_t>(rng.uniform_int(1, 2048));
      } else if (shape < 9) {
        bytes = static_cast<size_t>(rng.uniform_int(1, 8 * 1024));
      } else {
        bytes = static_cast<size_t>(rng.uniform_int(1, 24 * 1024));
      }
      const size_t need_g = (bytes + kGranule - 1) / kGranule;
      const size_t offset = arena.malloc(bytes);
      if (offset == TlsfArena::kNoSpace) {
        ASSERT_FALSE(ref.can_alloc(need_g))
            << "arena refused " << bytes
            << " B the class search should have found (op " << op << ")";
      } else {
        ASSERT_TRUE(ref.can_alloc(need_g))
            << "arena served " << bytes
            << " B the class search says cannot fit (op " << op << ")";
        ASSERT_EQ(offset % kGranule, 0u);
        // The arena always splits the remainder, so the span is exactly
        // the granule-rounded request.
        ASSERT_EQ(arena.span_bytes(offset), need_g * kGranule);
        ref.take(offset / kGranule, need_g);
        if (testing::Test::HasFatalFailure()) return;
        live.push_back({offset, need_g});
        live_g += need_g;
      }
    } else if (kind < 97) {
      const size_t idx =
          static_cast<size_t>(rng.uniform_int(0, static_cast<int64_t>(live.size()) - 1));
      std::swap(live[idx], live.back());
      const LiveSpan l = live.back();
      live.pop_back();
      arena.free(l.offset);
      ref.release(l.offset / kGranule, l.span_g);
      if (testing::Test::HasFatalFailure()) return;
      live_g -= l.span_g;
    } else {
      const size_t extra_g = static_cast<size_t>(rng.uniform_int(1, 64));
      arena.grow(extra_g * kGranule);
      ref.grow(extra_g);
      cap_g += extra_g;
    }
    ASSERT_NO_THROW(arena.check_invariants()) << "op " << op;
    ASSERT_EQ(arena.live_bytes(), live_g * kGranule) << "op " << op;
    ASSERT_EQ(arena.capacity_bytes(), cap_g * kGranule) << "op " << op;
    ASSERT_EQ(arena.free_bytes(), ref.free_granules() * kGranule)
        << "op " << op;
    ASSERT_EQ(arena.live_allocations(), live.size()) << "op " << op;
  }

  // Drain: every span back, invariants at every step.
  Rng shuffle_rng(seed ^ 0x9E3779B97F4A7C15ull);
  while (!live.empty()) {
    const size_t idx = static_cast<size_t>(
        shuffle_rng.uniform_int(0, static_cast<int64_t>(live.size()) - 1));
    std::swap(live[idx], live.back());
    const LiveSpan l = live.back();
    live.pop_back();
    arena.free(l.offset);
    ref.release(l.offset / kGranule, l.span_g);
    if (testing::Test::HasFatalFailure()) return;
    ASSERT_NO_THROW(arena.check_invariants());
  }
  // Full coalescing: zero live, free == capacity, and the invariant walk
  // (adjacent free blocks forbidden) makes that a single spanning block.
  EXPECT_EQ(arena.live_bytes(), 0u);
  EXPECT_EQ(arena.resident_bytes(), 0u);
  EXPECT_EQ(arena.free_bytes(), arena.capacity_bytes());
  EXPECT_EQ(ref.ranges(), 1u);
  const TlsfArenaStats stats = arena.stats();
  EXPECT_EQ(stats.allocs, stats.frees);
}

TEST(TlsfArenaProperty, DifferentialRandomTraces) {
  for (const uint64_t seed : {21ull, 22ull, 23ull, 24ull}) {
    run_differential(seed, /*ops=*/10000, /*initial_g=*/512);
    if (testing::Test::HasFatalFailure()) return;
  }
}

TEST(TlsfArenaProperty, DifferentialFromTinyArenaWithGrowth) {
  // Starting near-empty leans on grow(): the trailing-free-block extension
  // and the fresh-top-block append both get exercised under load.
  for (const uint64_t seed : {31ull, 32ull}) {
    run_differential(seed, /*ops=*/10000, /*initial_g=*/16);
    if (testing::Test::HasFatalFailure()) return;
  }
}

// ------------------------------------------------------- deterministic ----

TEST(TlsfArena, GoodFitRoundingFailsMidClassAndGoodSizeRestoresIt) {
  // 33 granules sits mid-class: search rounds to 34, whose class excludes
  // the exact-fit 33-granule block — the documented O(1) trade-off.
  TlsfArena tight(33 * kGranule, kGranule);
  EXPECT_EQ(tight.malloc(33 * kGranule), TlsfArena::kNoSpace);
  EXPECT_EQ(tight.stats().failed_allocs, 1u);
  // good_size names the span that opts out: 34 granules is
  // class-boundary-aligned, so an arena with that much space always
  // serves it.
  EXPECT_EQ(TlsfArena::good_size(33 * kGranule, kGranule), 34 * kGranule);
  TlsfArena roomy(34 * kGranule, kGranule);
  const size_t offset = roomy.malloc(TlsfArena::good_size(33 * kGranule));
  EXPECT_EQ(offset, 0u);
  EXPECT_EQ(roomy.span_bytes(offset), 34 * kGranule);
}

TEST(TlsfArena, GoodSizeIsExactBelowTheSubdivisionThreshold) {
  EXPECT_EQ(TlsfArena::good_size(1, kGranule), kGranule);
  EXPECT_EQ(TlsfArena::good_size(64, kGranule), kGranule);
  EXPECT_EQ(TlsfArena::good_size(65, kGranule), 2 * kGranule);
  EXPECT_EQ(TlsfArena::good_size(15 * kGranule, kGranule), 15 * kGranule);
  EXPECT_EQ(TlsfArena::good_size(17 * kGranule, kGranule), 17 * kGranule);
  // Step 4 at first level log2(100)=6: 100 is already a boundary.
  EXPECT_EQ(TlsfArena::good_size(100 * kGranule, kGranule), 100 * kGranule);
  // 1023 rounds to the next power of two (step 32 at log2 = 9).
  EXPECT_EQ(TlsfArena::good_size(1023 * kGranule, kGranule), 1024 * kGranule);
}

TEST(TlsfArena, CoalescesBothNeighborsAndTracksTheFrontier) {
  TlsfArena arena(64 * kGranule, kGranule);
  const size_t a = arena.malloc(8 * kGranule);
  const size_t b = arena.malloc(8 * kGranule);
  const size_t c = arena.malloc(8 * kGranule);
  EXPECT_EQ(arena.resident_bytes(), 24 * kGranule);
  arena.free(b);
  // The hole at b does not move the frontier; c still pins it.
  EXPECT_EQ(arena.resident_bytes(), 24 * kGranule);
  arena.free(c);
  EXPECT_EQ(arena.resident_bytes(), 8 * kGranule);
  arena.free(a);
  EXPECT_EQ(arena.resident_bytes(), 0u);
  arena.check_invariants();
  // Everything coalesced back into one block: the whole capacity is one
  // allocation again (64 granules is a class boundary).
  const size_t whole = arena.malloc(64 * kGranule);
  EXPECT_EQ(whole, 0u);
  EXPECT_EQ(arena.span_bytes(whole), arena.capacity_bytes());
  arena.free(whole);
  const TlsfArenaStats stats = arena.stats();
  EXPECT_GE(stats.coalesces, 3u);
  EXPECT_GE(stats.splits, 3u);
  EXPECT_EQ(stats.peak_resident_bytes, 64 * kGranule);
}

TEST(TlsfArena, GrowKeepsOffsetsAndExtendsTrailingFreeBlock) {
  TlsfArena arena(16 * kGranule, kGranule);
  const size_t a = arena.malloc(16 * kGranule);
  EXPECT_EQ(arena.malloc(kGranule), TlsfArena::kNoSpace);
  arena.grow(16 * kGranule);
  arena.check_invariants();
  const size_t b = arena.malloc(16 * kGranule);
  EXPECT_EQ(b, 16 * kGranule);
  EXPECT_EQ(arena.span_bytes(a), 16 * kGranule);  // a unaffected by grow
  arena.free(a);
  arena.grow(8 * kGranule);  // trailing block is live: fresh top block
  arena.free(b);
  arena.check_invariants();
  EXPECT_EQ(arena.free_bytes(), arena.capacity_bytes());
  EXPECT_EQ(arena.stats().grows, 2u);
}

}  // namespace
}  // namespace turbo::memory

// ---------------------------------------------------------------------------
// Fragmentation regression: mixed-geometry bundles on one shared budget.
// ---------------------------------------------------------------------------

namespace turbo::genserve {
namespace {

serving::GenerationRequest causal_request(Rng& rng, int64_t id, int src_len,
                                          int max_new,
                                          const std::string& model) {
  serving::GenerationRequest r;
  r.id = id;
  r.src_tokens = rng.token_ids(src_len, 50);
  r.max_new_tokens = max_new;
  r.bos_id = 1;
  r.eos_id = 2;
  r.model = model;
  return r;
}

GenServerOptions frag_engine(int block_tokens, KvArenaKind arena) {
  GenServerOptions o;
  o.pool.block_tokens = block_tokens;
  o.pool.blocks_per_slab = 4;
  o.pool.arena = arena;
  o.scheduler.max_active = 4;
  return o;
}

TEST(TlsfFragmentation, MixedGeometryBundlesBeatTheSlabBaseline) {
  // Two decoder-only bundles with different block_tokens contend for one
  // shared byte budget. Under kSlab every borrow moves a whole (and
  // differently-sized) slab, so the peak device footprint overshoots the
  // peak live working set; under kTlsf both pools draw exact block spans
  // from their arenas. The run gates the peak resident/live ratio below
  // the slab baseline measured in this same test, and both runs must stay
  // bit-identical to dedicated uncontended servers.
  const auto cfg = model::ModelConfig::tiny_causal(2, 32, 2, 64, 50);
  auto g1 = make_decoder_only_bundle("g1", 1, cfg, /*seed=*/13);
  auto g2 = make_decoder_only_bundle("g2", 1, cfg, /*seed=*/17);

  Rng rng(0xF4A6);
  std::vector<serving::GenerationRequest> reqs1, reqs2;
  for (int i = 0; i < 6; ++i) {
    reqs1.push_back(causal_request(rng, i, 6 + i, 12, "g1"));
    reqs2.push_back(causal_request(rng, 100 + i, 5 + i, 12, "g2"));
  }

  // Dedicated uncontended baselines (arena choice must not matter there
  // either — assert that too by running them under kSlab).
  const auto dedicated = [&](const std::shared_ptr<ModelBundle>& bundle,
                             const std::vector<serving::GenerationRequest>&
                                 reqs,
                             int block_tokens) {
    GenerationServer server(bundle, frag_engine(block_tokens,
                                                KvArenaKind::kSlab));
    for (const auto& r : reqs) server.submit(r);
    std::map<int64_t, std::vector<int>> tokens;
    for (auto& resp : server.run_to_completion()) {
      tokens[resp.request_id] = std::move(resp.tokens);
    }
    return tokens;
  };
  const auto ref1 = dedicated(g1, reqs1, 4);
  const auto ref2 = dedicated(g2, reqs2, 6);

  const auto contended = [&](KvArenaKind arena, double* frag_ratio) {
    MultiModelOptions options;
    options.engine = frag_engine(4, arena);
    // Tight enough that twelve sequences contend and preempt across the
    // guarantee floors (g1 blocks are 1 KiB, g2 blocks 1.5 KiB), but each
    // guarantee still covers one worst-case sequence (~12 KiB) so every
    // engine always makes progress.
    options.total_kv_bytes = 24 * 1024;
    MultiModelGenerationServer server(options);
    server.register_bundle(g1, 12 * 1024, frag_engine(4, arena));
    server.register_bundle(g2, 12 * 1024, frag_engine(6, arena));
    for (const auto& r : reqs1) server.submit(r);
    for (const auto& r : reqs2) server.submit(r);
    std::map<int64_t, std::vector<int>> tokens;
    for (auto& resp : server.run_to_completion()) {
      tokens[resp.request_id] = std::move(resp.tokens);
    }
    size_t peak_live = 0;
    size_t peak_waste = 0;
    for (const auto& s : server.stats()) {
      peak_live += s.pool.peak_live_bytes;
      peak_waste += s.pool.peak_waste_bytes;
    }
    EXPECT_GT(peak_live, 0u);
    // Peak resident over peak live, with resident reconstructed from the
    // TIME-CORRELATED overshoot: the separate lifetime peaks of resident
    // and live both saturate under load and the quotient collapses to 1.0
    // for any allocator.
    *frag_ratio = static_cast<double>(peak_live + peak_waste) /
                  static_cast<double>(peak_live);
    return tokens;
  };

  double frag_slab = 0.0;
  double frag_tlsf = 0.0;
  const auto tokens_slab = contended(KvArenaKind::kSlab, &frag_slab);
  const auto tokens_tlsf = contended(KvArenaKind::kTlsf, &frag_tlsf);

  ASSERT_EQ(tokens_slab.size(), reqs1.size() + reqs2.size());
  ASSERT_EQ(tokens_tlsf.size(), reqs1.size() + reqs2.size());
  // Bit-identical to the dedicated servers, and across arena kinds.
  for (const auto& [id, toks] : ref1) {
    EXPECT_EQ(tokens_slab.at(id), toks);
    EXPECT_EQ(tokens_tlsf.at(id), toks);
  }
  for (const auto& [id, toks] : ref2) {
    EXPECT_EQ(tokens_slab.at(id), toks);
    EXPECT_EQ(tokens_tlsf.at(id), toks);
  }
  // The regression gate: byte-granular arenas waste strictly less peak
  // device footprint per live byte than whole-slab pools on this workload.
  EXPECT_LT(frag_tlsf, frag_slab)
      << "TLSF frag " << frag_tlsf << " vs slab " << frag_slab;
  EXPECT_GE(frag_tlsf, 1.0);
}

}  // namespace
}  // namespace turbo::genserve
