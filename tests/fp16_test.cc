#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "common/rng.h"
#include "kernels/fp16.h"
#include "kernels/gemm.h"
#include "model/encoder.h"

namespace turbo::kernels {
namespace {

TEST(Fp16, ExactValuesRoundTrip) {
  // Values exactly representable in binary16 survive the round trip.
  for (float v : {0.0f, 1.0f, -1.0f, 0.5f, 2.0f, 1024.0f, -0.25f, 65504.0f}) {
    EXPECT_EQ(round_to_fp16(v), v) << v;
  }
}

TEST(Fp16, SignedZeroPreserved) {
  EXPECT_EQ(fp32_to_fp16_bits(-0.0f), 0x8000u);
  EXPECT_EQ(fp32_to_fp16_bits(0.0f), 0x0000u);
}

TEST(Fp16, KnownBitPatterns) {
  EXPECT_EQ(fp32_to_fp16_bits(1.0f), 0x3c00u);
  EXPECT_EQ(fp32_to_fp16_bits(-2.0f), 0xc000u);
  EXPECT_EQ(fp32_to_fp16_bits(0.5f), 0x3800u);
  EXPECT_EQ(fp16_bits_to_fp32(0x3c00u), 1.0f);
  EXPECT_EQ(fp16_bits_to_fp32(0x7c00u),
            std::numeric_limits<float>::infinity());
}

TEST(Fp16, OverflowBecomesInfinity) {
  EXPECT_EQ(round_to_fp16(1e6f), std::numeric_limits<float>::infinity());
  EXPECT_EQ(round_to_fp16(-1e6f), -std::numeric_limits<float>::infinity());
}

TEST(Fp16, NanPropagates) {
  EXPECT_TRUE(std::isnan(round_to_fp16(std::nanf(""))));
}

TEST(Fp16, SubnormalsRepresented) {
  // Smallest binary16 subnormal is 2^-24.
  const float tiny = std::ldexp(1.0f, -24);
  EXPECT_EQ(round_to_fp16(tiny), tiny);
  // Below half of it rounds to zero.
  EXPECT_EQ(round_to_fp16(std::ldexp(1.0f, -26)), 0.0f);
}

TEST(Fp16, RelativeErrorWithinHalfUlp) {
  Rng rng(5);
  for (int i = 0; i < 10000; ++i) {
    const float v = static_cast<float>(rng.uniform(-100.0, 100.0));
    const float r = round_to_fp16(v);
    // binary16 has 11 significand bits: max relative error 2^-11.
    EXPECT_LE(std::abs(r - v), std::abs(v) * 0x1.0p-11 + 1e-24f) << v;
  }
}

TEST(Fp16, RoundToNearestEven) {
  // 1 + 2^-11 sits exactly between 1.0 and the next fp16 value 1 + 2^-10;
  // ties go to the even mantissa (1.0).
  EXPECT_EQ(round_to_fp16(1.0f + 0x1.0p-11f), 1.0f);
  // Slightly above the midpoint rounds up.
  EXPECT_EQ(round_to_fp16(1.0f + 0x1.2p-11f), 1.0f + 0x1.0p-10f);
}

TEST(Fp16Gemm, CloseToFp32OnSmallValues) {
  Rng rng(6);
  const int n = 32;
  std::vector<float> a(n * n), b(n * n), c32(n * n, 0.0f), c16(n * n, 0.0f);
  rng.fill_uniform(a.data(), a.size(), -0.5f, 0.5f);
  rng.fill_uniform(b.data(), b.size(), -0.5f, 0.5f);
  gemm(a.data(), b.data(), c32.data(), n, n, n);
  gemm_fp16(a.data(), b.data(), c16.data(), n, n, n);
  for (int i = 0; i < n * n; ++i) {
    EXPECT_NEAR(c16[i], c32[i], 0.02f);
  }
}

TEST(Fp16Gemm, DiffersFromFp32WhenPrecisionMatters) {
  // Values needing more than 11 significand bits must change.
  std::vector<float> a{1.0009765f};  // not representable in fp16
  std::vector<float> b{1.0f};
  std::vector<float> c16{0.0f};
  gemm_fp16(a.data(), b.data(), c16.data(), 1, 1, 1);
  EXPECT_NE(c16[0], a[0]);
  EXPECT_NEAR(c16[0], a[0], 1e-3f);
}

// The paper's Turbo-TC claim: "minimal and acceptable precision loss".
TEST(Fp16Gemm, EndToEndBertPrecisionLossIsSmall) {
  model::ModelConfig fp32_cfg = model::ModelConfig::tiny(2, 64, 4, 128, 100);
  model::ModelConfig tc_cfg = fp32_cfg;
  tc_cfg.tensor_core_gemm = true;

  model::EncoderModel fp32_model(fp32_cfg, 77);
  model::EncoderModel tc_model(tc_cfg, 77);  // identical weights (same seed)

  Rng rng(9);
  Tensor ids = Tensor::owned(Shape{2, 24}, DType::kI32);
  auto toks = rng.token_ids(48, 100);
  std::copy(toks.begin(), toks.end(), ids.data<int32_t>());

  Tensor ref = fp32_model.forward(ids);
  Tensor tc = tc_model.forward(ids);
  double max_err = 0, norm = 0;
  for (int64_t i = 0; i < ref.numel(); ++i) {
    max_err = std::max(
        max_err, std::abs(static_cast<double>(ref.data<float>()[i]) -
                          tc.data<float>()[i]));
    norm = std::max(norm, std::abs(static_cast<double>(ref.data<float>()[i])));
  }
  EXPECT_GT(max_err, 0.0);            // the paths really differ
  EXPECT_LT(max_err, 0.05 * norm);    // ...but only slightly (layernorm
                                      // re-normalizes between layers)
}

}  // namespace
}  // namespace turbo::kernels
