#include <gtest/gtest.h>

#include <cmath>
#include <numeric>

#include "common/check.h"
#include "common/rng.h"
#include "gpusim/block.h"
#include "gpusim/cycle_model.h"
#include "gpusim/device_spec.h"
#include "gpusim/launch.h"
#include "gpusim/warp.h"

namespace turbo::gpusim {
namespace {

// ------------------------------------------------------------ device spec --

TEST(DeviceSpec, Rtx2060Basics) {
  const auto spec = DeviceSpec::rtx2060();
  EXPECT_EQ(spec.num_sms, 30);
  EXPECT_EQ(spec.warp_size, 32);
  EXPECT_GT(spec.gmem_bytes_per_cycle_per_sm(), 0.0);
}

TEST(DeviceSpec, V100HasMoreSmsAndBandwidth) {
  const auto a = DeviceSpec::rtx2060();
  const auto b = DeviceSpec::v100();
  EXPECT_GT(b.num_sms, a.num_sms);
  EXPECT_GT(b.mem_bandwidth_gbps, a.mem_bandwidth_gbps);
  EXPECT_GT(b.tensor_core_tflops, a.tensor_core_tflops);
}

// ---------------------------------------------------------- cycle counter --

TEST(CycleCounter, BatchIsMaxOfIssueAndLatency) {
  const auto spec = DeviceSpec::rtx2060();
  CycleCounter cc(spec);
  // 1 shuffle: latency-bound.
  cc.charge_shfl_batch(1);
  EXPECT_DOUBLE_EQ(cc.cycles(), spec.shfl_latency);
  cc.reset();
  // Many shuffles: issue-bound.
  cc.charge_shfl_batch(100);
  EXPECT_DOUBLE_EQ(cc.cycles(), 100 * spec.shfl_issue);
}

TEST(CycleCounter, ChainCostsFullLatencyPerStep) {
  const auto spec = DeviceSpec::rtx2060();
  CycleCounter cc(spec);
  cc.charge_chain(5, spec.alu_latency);
  EXPECT_DOUBLE_EQ(cc.cycles(), 5 * spec.alu_latency);
}

TEST(CycleCounter, GmemStreamScalesWithBytes) {
  const auto spec = DeviceSpec::rtx2060();
  CycleCounter a(spec), b(spec);
  a.charge_gmem_stream(1024);
  b.charge_gmem_stream(2048);
  EXPECT_GT(b.cycles(), a.cycles());
  // Fixed latency appears once.
  EXPECT_LT(b.cycles(), 2 * a.cycles());
}

TEST(CycleCounter, NegativeChargeRejected) {
  const auto spec = DeviceSpec::rtx2060();
  CycleCounter cc(spec);
  EXPECT_THROW(cc.charge(-1.0), CheckError);
}

// -------------------------------------------------------------- shuffles --

TEST(Warp, ShflXorPermutesLanes) {
  WarpVec v;
  for (int i = 0; i < kWarpSize; ++i) v[i] = static_cast<float>(i);
  const WarpVec r = shfl_xor(v, 1);
  for (int i = 0; i < kWarpSize; ++i) {
    EXPECT_EQ(r[i], static_cast<float>(i ^ 1));
  }
}

TEST(Warp, ShflDownShiftsWithinBounds) {
  WarpVec v;
  for (int i = 0; i < kWarpSize; ++i) v[i] = static_cast<float>(i);
  const WarpVec r = shfl_down(v, 4);
  for (int i = 0; i < kWarpSize - 4; ++i) {
    EXPECT_EQ(r[i], static_cast<float>(i + 4));
  }
}

TEST(Warp, ShflXorRejectsBadMask) {
  WarpVec v{};
  EXPECT_THROW(shfl_xor(v, 0), CheckError);
  EXPECT_THROW(shfl_xor(v, 32), CheckError);
}

// ------------------------------------------------- warp all-reduce: math --

class WarpAllReduceParam : public ::testing::TestWithParam<int> {};

TEST_P(WarpAllReduceParam, SumMatchesDirectSumInEveryLane) {
  const int x = GetParam();
  const auto spec = DeviceSpec::rtx2060();
  CycleCounter cc(spec);
  Rng rng(42 + static_cast<uint64_t>(x));

  std::vector<WarpVec> vecs(static_cast<size_t>(x));
  std::vector<double> expected(static_cast<size_t>(x), 0.0);
  for (int r = 0; r < x; ++r) {
    for (int i = 0; i < kWarpSize; ++i) {
      const float val = static_cast<float>(rng.uniform(-1, 1));
      vecs[static_cast<size_t>(r)][i] = val;
      expected[static_cast<size_t>(r)] += val;
    }
  }
  warp_all_reduce(vecs, ReduceOp::kSum, cc);
  for (int r = 0; r < x; ++r) {
    for (int i = 0; i < kWarpSize; ++i) {
      EXPECT_NEAR(vecs[static_cast<size_t>(r)][i],
                  expected[static_cast<size_t>(r)], 1e-4);
    }
  }
}

TEST_P(WarpAllReduceParam, MaxMatchesDirectMax) {
  const int x = GetParam();
  const auto spec = DeviceSpec::rtx2060();
  CycleCounter cc(spec);
  Rng rng(99 + static_cast<uint64_t>(x));

  std::vector<WarpVec> vecs(static_cast<size_t>(x));
  std::vector<float> expected(static_cast<size_t>(x),
                              -std::numeric_limits<float>::infinity());
  for (int r = 0; r < x; ++r) {
    for (int i = 0; i < kWarpSize; ++i) {
      const float val = static_cast<float>(rng.uniform(-5, 5));
      vecs[static_cast<size_t>(r)][i] = val;
      expected[static_cast<size_t>(r)] =
          std::max(expected[static_cast<size_t>(r)], val);
    }
  }
  warp_all_reduce(vecs, ReduceOp::kMax, cc);
  for (int r = 0; r < x; ++r) {
    for (int i = 0; i < kWarpSize; ++i) {
      EXPECT_EQ(vecs[static_cast<size_t>(r)][i],
                expected[static_cast<size_t>(r)]);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(XWidths, WarpAllReduceParam,
                         ::testing::Values(1, 2, 3, 4, 8, 16));

// ------------------------------------------------- warp all-reduce: cost --

TEST(WarpAllReduceCost, InterleavingAmortizesLatency) {
  // The paper's Figure 4 ILP claim: per-row reduction cost drops when X
  // independent rows interleave, because shuffles pipeline.
  const auto spec = DeviceSpec::rtx2060();
  auto cost_of = [&](int x) {
    CycleCounter cc(spec);
    std::vector<WarpVec> vecs(static_cast<size_t>(x), WarpVec::filled(1.0f));
    warp_all_reduce(vecs, ReduceOp::kSum, cc);
    return cc.cycles() / x;
  };
  const double c1 = cost_of(1);
  const double c2 = cost_of(2);
  const double c4 = cost_of(4);
  EXPECT_LT(c2, c1);
  EXPECT_LE(c4, c2);
}

TEST(WarpAllReduceCost, SingleRowIsLatencyChain) {
  const auto spec = DeviceSpec::rtx2060();
  CycleCounter cc(spec);
  std::vector<WarpVec> vecs(1, WarpVec::filled(1.0f));
  warp_all_reduce(vecs, ReduceOp::kSum, cc);
  // 5 butterfly steps, each shuffle latency + alu latency.
  EXPECT_DOUBLE_EQ(cc.cycles(), 5 * (spec.shfl_latency + spec.alu_latency));
}

TEST(WarpAllReduceCost, EmptySpanChargesNothing) {
  const auto spec = DeviceSpec::rtx2060();
  CycleCounter cc(spec);
  std::vector<WarpVec> vecs;
  warp_all_reduce(vecs, ReduceOp::kSum, cc);
  EXPECT_EQ(cc.cycles(), 0.0);
}

// -------------------------------------------------------------- BlockSim --

TEST(BlockSim, SyncChargesBarrierCost) {
  const auto spec = DeviceSpec::rtx2060();
  BlockSim block(spec, 128, 256);
  block.sync();
  block.sync();
  EXPECT_DOUBLE_EQ(block.cycles().cycles(), 2 * spec.sync_cycles);
}

TEST(BlockSim, RejectsNonWarpMultipleThreads) {
  const auto spec = DeviceSpec::rtx2060();
  EXPECT_THROW(BlockSim(spec, 100), CheckError);
  EXPECT_THROW(BlockSim(spec, 0), CheckError);
  EXPECT_THROW(BlockSim(spec, 2048), CheckError);
}

TEST(BlockSim, SmemStorageRoundTrips) {
  const auto spec = DeviceSpec::rtx2060();
  BlockSim block(spec, 64, 1024);
  block.smem(7) = 3.5f;
  EXPECT_EQ(block.smem(7), 3.5f);
  EXPECT_THROW(block.smem(-1), CheckError);
  EXPECT_THROW(block.smem(100000), CheckError);
}

// ------------------------------------------------------------- occupancy --

TEST(Occupancy, LimitedByThreads) {
  const auto spec = DeviceSpec::rtx2060();  // 1024 threads/SM
  EXPECT_EQ(occupancy_blocks_per_sm(spec, 1024, 0), 1);
  EXPECT_EQ(occupancy_blocks_per_sm(spec, 512, 0), 2);
  EXPECT_EQ(occupancy_blocks_per_sm(spec, 128, 0), 8);
}

TEST(Occupancy, LimitedBySharedMemory) {
  const auto spec = DeviceSpec::rtx2060();  // 64 KiB smem/SM
  EXPECT_EQ(occupancy_blocks_per_sm(spec, 32, 32 * 1024), 2);
}

TEST(Occupancy, CappedByMaxBlocks) {
  const auto spec = DeviceSpec::rtx2060();  // 16 blocks/SM max
  EXPECT_EQ(occupancy_blocks_per_sm(spec, 32, 0), 16);
}

// ------------------------------------------------------------ launch time --

TEST(Launch, SingleWaveBelowConcurrencyLimit) {
  const auto spec = DeviceSpec::rtx2060();
  const auto r = launch_time(spec, 30, 128, 0, 1000.0);
  EXPECT_EQ(r.waves, 1);
  EXPECT_NEAR(r.time_us, spec.kernel_launch_us + 1000.0 / (spec.clock_ghz * 1e3),
              1e-9);
}

TEST(Launch, WavesGrowWithGrid) {
  const auto spec = DeviceSpec::rtx2060();
  const int concurrent = spec.num_sms * occupancy_blocks_per_sm(spec, 128, 0);
  const auto one = launch_time(spec, concurrent, 128, 0, 1000.0);
  const auto two = launch_time(spec, concurrent + 1, 128, 0, 1000.0);
  EXPECT_EQ(one.waves, 1);
  EXPECT_EQ(two.waves, 2);
  EXPECT_GT(two.time_us, one.time_us);
}

TEST(Launch, LaunchOverheadDominatesTinyKernels) {
  const auto spec = DeviceSpec::rtx2060();
  const auto r = launch_time(spec, 1, 32, 0, 10.0);
  EXPECT_GT(spec.kernel_launch_us / r.time_us, 0.99);
}

}  // namespace
}  // namespace turbo::gpusim
