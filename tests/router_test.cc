// Sharded replica serving: ReplicaSet identity/guarantee wiring, Router
// placement policies (round-robin, least-loaded, SLO-aware with the
// routing-denial fallback) and their observability, pinned-worker
// stepping, and the headline property — routed N-replica serving is
// bit-identical to an uncontended single-engine reference, preemption,
// hot registration and all, because placement only decides WHERE a
// sequence runs, never WHAT it decodes.
#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/check.h"
#include "common/rng.h"
#include "genserve/generation_server.h"
#include "genserve/model_bundle.h"
#include "genserve/multi_model_server.h"
#include "memory/slab_budget.h"
#include "obs/trace.h"
#include "router/replica_set.h"
#include "router/router.h"
#include "serving/routing_policy.h"

namespace turbo::router {
namespace {

model::ModelConfig tiny() { return model::ModelConfig::tiny(2, 32, 2, 64, 50); }

genserve::GenServerOptions small_engine() {
  genserve::GenServerOptions o;
  o.pool.block_tokens = 4;
  o.pool.blocks_per_slab = 4;
  o.scheduler.max_active = 4;
  return o;
}

serving::GenerationRequest make_request(Rng& rng, int64_t id, int src_len,
                                        int max_new, int priority = 0) {
  serving::GenerationRequest r;
  r.id = id;
  r.src_tokens = rng.token_ids(src_len, 50);
  r.max_new_tokens = max_new;
  r.bos_id = 1;
  r.eos_id = 2;
  r.priority = priority;
  return r;
}

// Uncontended single-engine run over the same bundle: the bit-identity
// oracle every routed configuration must reproduce.
std::map<int64_t, std::vector<int>> dedicated_reference(
    const std::shared_ptr<genserve::ModelBundle>& bundle,
    const std::vector<serving::GenerationRequest>& requests) {
  genserve::GenerationServer server(bundle, small_engine());
  for (const auto& r : requests) server.submit(r);
  std::map<int64_t, std::vector<int>> tokens;
  for (auto& resp : server.run_to_completion()) {
    tokens[resp.request_id] = std::move(resp.tokens);
  }
  return tokens;
}

// ------------------------------------------------------------- ReplicaSet --

TEST(ReplicaSetTest, LabelsGuaranteeSplitAndSharedAttachments) {
  memory::SlabBudget budget(1 << 20);
  auto opts = small_engine();
  opts.pool.slab_budget = &budget;
  opts.trace.enabled = true;
  ReplicaSetOptions so;
  so.replicas = 3;
  ReplicaSet set(genserve::make_bundle("m", 1, tiny(), 5), opts,
                 /*guarantee_bytes=*/10 * 1024, so);

  ASSERT_EQ(set.size(), 3u);
  // Replica 0 keeps the plain bundle label (single-replica sets are
  // bit-identical to the pre-replica engine, metric names included).
  EXPECT_EQ(set.replica_label(0), "m:v1");
  EXPECT_EQ(set.replica_label(1), "m:v1#1");
  EXPECT_EQ(set.replica_label(2), "m:v1#2");
  EXPECT_EQ(set.replica(0).metric_prefix(), "gen.m:v1.");
  EXPECT_EQ(set.replica(1).metric_prefix(), "gen.m:v1#1.");

  // Even guarantee split, remainder to replica 0.
  EXPECT_EQ(set.replica_guarantee_bytes(0), 10 * 1024 / 3 + 10 * 1024 % 3);
  EXPECT_EQ(set.replica_guarantee_bytes(1), 10 * 1024 / 3);
  EXPECT_EQ(set.replica_guarantee_bytes(2), 10 * 1024 / 3);

  // One registry and one trace ring across the set.
  EXPECT_EQ(set.replica(0).metrics(), set.replica(1).metrics());
  EXPECT_EQ(set.replica(0).metrics(), set.replica(2).metrics());
  ASSERT_NE(set.replica(0).trace_ring(), nullptr);
  EXPECT_EQ(set.replica(0).trace_ring(), set.replica(2).trace_ring());
}

TEST(ReplicaSetTest, PinnedWorkersServeBitIdentical) {
  Rng rng(0xF1A7);
  std::vector<serving::GenerationRequest> requests;
  for (int i = 0; i < 12; ++i) {
    requests.push_back(make_request(rng, i, 4 + i % 5, 6 + i % 7));
  }
  auto bundle = genserve::make_bundle("m", 1, tiny(), 5);
  const auto ref = dedicated_reference(bundle, requests);

  // Unbounded pools: the one configuration pinned workers are legal in
  // (see replica_set.h) — and the TSan job steps this concurrently.
  ReplicaSetOptions so;
  so.replicas = 3;
  so.pinned_workers = true;
  ReplicaSet set(bundle, small_engine(), 0, so);
  RouterOptions ro;
  ro.policy = serving::DispatchPolicy::kRoundRobin;
  Router router(set, ro);
  for (const auto& r : requests) {
    set.replica(router.place(r, 0.0).replica).submit(r);
  }
  while (!set.idle()) set.step();

  const auto responses = set.take_completed();
  ASSERT_EQ(responses.size(), requests.size());
  for (const auto& resp : responses) {
    EXPECT_EQ(resp.tokens, ref.at(resp.request_id));
  }
}

// ----------------------------------------------------------------- Router --

TEST(RouterTest, RoundRobinCyclesAndCounts) {
  ReplicaSetOptions so;
  so.replicas = 3;
  ReplicaSet set(genserve::make_bundle("m", 1, tiny(), 5), small_engine(), 0,
                 so);
  RouterOptions ro;
  ro.policy = serving::DispatchPolicy::kRoundRobin;
  Router router(set, ro);

  Rng rng(1);
  for (int i = 0; i < 6; ++i) {
    const auto d = router.place(make_request(rng, i, 5, 4), 0.0);
    EXPECT_EQ(d.replica, static_cast<size_t>(i % 3));
  }
  const auto& reg = *set.replica(0).metrics();
  EXPECT_EQ(reg.counter_value("router.routed_total"), 6u);
  EXPECT_EQ(reg.counter_value("router.m:v1.routed"), 2u);
  EXPECT_EQ(reg.counter_value("router.m:v1#1.routed"), 2u);
  EXPECT_EQ(reg.counter_value("router.m:v1#2.routed"), 2u);
  EXPECT_EQ(reg.counter_value("router.denial_fallbacks"), 0u);
}

TEST(RouterTest, LeastLoadedFollowsChargedBacklog) {
  ReplicaSetOptions so;
  so.replicas = 3;
  ReplicaSet set(genserve::make_bundle("m", 1, tiny(), 5), small_engine(), 0,
                 so);
  RouterOptions ro;
  ro.policy = serving::DispatchPolicy::kLeastLoaded;
  ro.use_observed_cost = false;  // placement = pure function of the trace
  Router router(set, ro);

  Rng rng(2);
  // Charged work is src + max_new rows; ties resolve to the lowest index.
  const int sizes[][2] = {{10, 20}, {5, 5}, {5, 5}, {2, 3}, {2, 3}};
  const size_t expected[] = {0, 1, 2, 1, 2};
  for (size_t i = 0; i < 5; ++i) {
    const auto d = router.place(
        make_request(rng, static_cast<int64_t>(i), sizes[i][0], sizes[i][1]),
        0.0);
    EXPECT_EQ(d.replica, expected[i]) << "placement " << i;
  }
  EXPECT_GT(router.backlog(0, 0.0), router.backlog(2, 0.0));
}

TEST(RouterTest, SloAwarePlacementFallbackAndSpans) {
  auto opts = small_engine();
  opts.trace.enabled = true;
  ReplicaSetOptions so;
  so.replicas = 3;
  ReplicaSet set(genserve::make_bundle("m", 1, tiny(), 5), opts, 0, so);
  RouterOptions ro;
  ro.use_observed_cost = false;
  Router router(set, ro);

  Rng rng(3);
  // Tight request on an idle set: least-backlog replica 0, no fallback.
  const auto t1 = make_request(rng, 0, 4, 20, /*priority=*/2);
  const auto d1 = router.place(t1, 0.0);
  EXPECT_EQ(d1.replica, 0u);
  EXPECT_EQ(d1.slo, serving::SloClass::kTight);
  EXPECT_FALSE(d1.fallback);

  // Standard: least predicted backlog (replica 0 carries t1's 24 rows).
  const auto s1 = make_request(rng, 1, 4, 4, /*priority=*/0);
  const auto d2 = router.place(s1, 0.0);
  EXPECT_EQ(d2.replica, 1u);
  EXPECT_EQ(d2.slo, serving::SloClass::kStandard);

  // Out-of-band load on replica 2 the backlog model never saw: the next
  // tight request ranks replica 2 least-loaded, sees its waiting queue,
  // and takes the denial fallback to replica 1 (queue empty, KV headroom).
  set.replica(2).submit(make_request(rng, 100, 4, 4));
  const auto t2 = make_request(rng, 2, 4, 4, /*priority=*/2);
  const auto d3 = router.place(t2, 0.0);
  EXPECT_EQ(d3.replica, 1u);
  EXPECT_TRUE(d3.fallback);

  // Batch consolidates onto the deepest predicted backlog (replica 0),
  // keeping the lighter lanes clear for the tight classes.
  const auto b1 = make_request(rng, 3, 4, 4, /*priority=*/-1);
  const auto d4 = router.place(b1, 0.0);
  EXPECT_EQ(d4.replica, 0u);
  EXPECT_EQ(d4.slo, serving::SloClass::kBatch);

  const auto& reg = *set.replica(0).metrics();
  EXPECT_EQ(reg.counter_value("router.routed_total"), 4u);
  EXPECT_EQ(reg.counter_value("router.routed_tight"), 2u);
  EXPECT_EQ(reg.counter_value("router.routed_standard"), 1u);
  EXPECT_EQ(reg.counter_value("router.routed_batch"), 1u);
  EXPECT_EQ(reg.counter_value("router.denial_fallbacks"), 1u);
  EXPECT_GT(reg.gauge_value("router.m:v1.backlog"), 0.0);

  // Every placement is one kRoute span; the fallback one is marked.
  std::vector<obs::TraceSpan> routes;
  for (const auto& s : set.replica(0).trace_ring()->snapshot()) {
    if (s.kind == obs::SpanKind::kRoute) routes.push_back(s);
  }
  ASSERT_EQ(routes.size(), 4u);
  const auto& fb = routes[2];
  EXPECT_EQ(fb.seq, t2.id);
  EXPECT_EQ(fb.batch, 1);  // chosen replica index
  EXPECT_EQ(fb.tokens, static_cast<int>(serving::SloClass::kTight));
  EXPECT_EQ(fb.bytes, 1u);  // denial fallback taken
  EXPECT_STREQ(fb.model, "m:v1");
  EXPECT_STREQ(fb.peer, "m:v1#1");
  EXPECT_EQ(routes[0].bytes, 0u);
  EXPECT_STREQ(routes[3].peer, "m:v1");
}

// --------------------------------------------------------------- property --

// Routed replica serving never changes a token: whatever the policy, the
// replica count, the budget contention (preempt/resume replay) or the
// registration churn, every response matches the uncontended
// single-engine reference bit for bit.
TEST(RouterPropertyTest, RoutedServingBitIdenticalUnderChurnAndPreemption) {
  const size_t slab = 4ull * 2 * 4 * 32 * sizeof(float);
  for (const uint64_t seed : {0xA11CEull, 0xB0Bull}) {
    Rng rng(seed);
    // Same weight seed for both versions: hot-registering v2 mid-run moves
    // the latest route without changing what any request decodes, so one
    // reference covers every routed response.
    auto v1 = genserve::make_bundle("m", 1, tiny(), 7);
    auto v2 = genserve::make_bundle("m", 2, tiny(), 7);

    std::vector<serving::GenerationRequest> requests;
    for (int i = 0; i < 24; ++i) {
      const int priorities[] = {-1, 0, 0, 2};
      requests.push_back(make_request(
          rng, i, static_cast<int>(rng.uniform_int(3, 8)),
          static_cast<int>(rng.uniform_int(4, 10)),
          priorities[rng.uniform_int(0, 3)]));
    }
    const auto ref = dedicated_reference(v1, requests);

    // 3 replicas under a budget far below joint worst-case demand:
    // placement spreads load, the shared budget forces preempt/replay.
    // Each replica's floor (3 slabs) covers one worst-case request (2
    // slabs) — the no-starvation contract register_bundle documents.
    genserve::MultiModelOptions options;
    options.engine = small_engine();
    options.total_kv_bytes = 9 * slab;
    options.replicas_per_model = 3;
    options.router.use_observed_cost = false;
    genserve::MultiModelGenerationServer server(options);
    server.register_bundle(v1, 9 * slab);

    for (int i = 0; i < 12; ++i) server.submit(requests[static_cast<size_t>(i)]);
    for (int i = 0; i < 8; ++i) server.step();

    // Hot registration under load: the latest route moves to v2 (its own
    // 3-replica set, guarantee 0 = pure borrower) for the second wave.
    server.register_bundle(v2);
    for (int i = 12; i < 24; ++i) {
      server.submit(requests[static_cast<size_t>(i)]);
    }
    for (int i = 0; i < 4; ++i) server.step();
    // Hot removal under load: v2 drains its in-flight sequences to
    // completion off-route.
    EXPECT_TRUE(server.unregister_bundle("m", 2));

    std::map<int64_t, std::vector<int>> tokens;
    for (auto& resp : server.run_to_completion()) {
      tokens[resp.request_id] = std::move(resp.tokens);
    }
    ASSERT_EQ(tokens.size(), requests.size());
    for (const auto& [id, expect] : ref) {
      EXPECT_EQ(tokens.at(id), expect) << "request " << id << " seed " << seed;
    }

    // The run actually contended: preemption counters survive engine
    // teardown in the shared registry.
    uint64_t preemptions = 0;
    const auto& reg = *server.metrics();
    for (const std::string label :
         {"m:v1", "m:v1#1", "m:v1#2", "m:v2", "m:v2#1", "m:v2#2"}) {
      preemptions += reg.counter_value("gen." + label + ".preemptions");
    }
    EXPECT_GT(preemptions, 0u) << "budget never actually contended";
    EXPECT_EQ(reg.counter_value("router.routed_total"), requests.size());
    EXPECT_EQ(server.budget().used_bytes(), 0u);
  }
}

}  // namespace
}  // namespace turbo::router
