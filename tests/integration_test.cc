// Cross-module integration tests: scaled-down versions of the paper's
// experiments, asserting the qualitative results the benchmarks print.
#include <gtest/gtest.h>

#include <memory>

#include "common/rng.h"
#include "common/stats.h"
#include "graph/builders.h"
#include "graph/fusion.h"
#include "gpusim/device_spec.h"
#include "memory/dynamic_allocators.h"
#include "memory/gsoc_planner.h"
#include "memory/model_aware_allocator.h"
#include "perfmodel/kernel_cost.h"
#include "perfmodel/model_latency.h"
#include "serving/simulator.h"
#include "serving/workload.h"

namespace turbo {
namespace {

using gpusim::DeviceSpec;
using perfmodel::EncoderModelDesc;
using perfmodel::RuntimeProfile;

EncoderModelDesc bert() {
  EncoderModelDesc d;
  d.dims = graph::LayerDims{768, 12, 3072};
  d.num_layers = 12;
  return d;
}

// --------------------------------------------------- memory (Figs. 11/12) --

TEST(Integration, AllocatorComparisonReproducesFigure11Shape) {
  // Replay a trace of random-length BERT inferences through all four
  // allocators and check the paper's qualitative result.
  const graph::Graph layer = graph::build_encoder_layer_fused({768, 12, 3072});
  Rng rng(2020);

  memory::ModelAwareAllocator turbo;
  memory::GsocPlanner gsoc;
  memory::ReplayAdapter pytorch(
      std::make_unique<memory::CubCachingAllocator>());
  memory::ReplayAdapter onnxrt(std::make_unique<memory::BfcArenaAllocator>());

  size_t turbo_peak = 0, gsoc_peak = 0, pytorch_peak = 0, onnxrt_peak = 0;
  size_t turbo_traffic = 0, gsoc_traffic = 0;
  for (int round = 0; round < 30; ++round) {
    const int len = static_cast<int>(rng.uniform_int(5, 500));
    const auto usages = layer.tensor_usages(1, len);
    const auto pt = turbo.begin_inference(usages);
    const auto pg = gsoc.begin_inference(usages);
    const auto pp = pytorch.begin_inference(usages);
    const auto po = onnxrt.begin_inference(usages);
    turbo_peak = std::max(turbo_peak, pt.footprint_bytes);
    gsoc_peak = std::max(gsoc_peak, pg.footprint_bytes);
    pytorch_peak = std::max(pytorch_peak, pp.footprint_bytes);
    onnxrt_peak = std::max(onnxrt_peak, po.footprint_bytes);
    turbo_traffic += pt.traffic_bytes();
    gsoc_traffic += pg.traffic_bytes();
  }
  // Fig. 11: graph-aware allocators hold far less than caching allocators.
  EXPECT_LT(turbo_peak, pytorch_peak);
  EXPECT_LT(turbo_peak, onnxrt_peak);
  // Turbo's footprint is close to GSOC's near-optimal packing.
  EXPECT_LT(turbo_peak, gsoc_peak * 2);
  // Fig. 12: but with less per-inference device traffic than GSOC.
  EXPECT_LT(turbo_traffic, gsoc_traffic);
}

TEST(Integration, PlannerOverheadSmallFractionOfInference) {
  // Fig. 13: Algorithm 1's planning cost is ~1.8% of inference latency.
  const graph::Graph layer = graph::build_encoder_layer_fused({768, 12, 3072});
  const auto spec = DeviceSpec::rtx2060();
  memory::ModelAwareAllocator turbo;
  Rng rng(7);
  double worst_frac = 0;
  for (int round = 0; round < 10; ++round) {
    const int len = static_cast<int>(rng.uniform_int(5, 500));
    // Median of several runs: wall-clock timing of a ~3 us planner is noisy
    // when the test suite runs under parallel load.
    std::vector<double> planning_us;
    for (int rep = 0; rep < 5; ++rep) {
      planning_us.push_back(
          turbo.begin_inference(layer.tensor_usages(1, len)).planning_us);
    }
    const double infer_us =
        perfmodel::encoder_latency(bert(), 1, len, RuntimeProfile::turbo(),
                                   spec)
            .total_us;
    worst_frac =
        std::max(worst_frac, percentile(planning_us, 50) / infer_us);
  }
  EXPECT_LT(worst_frac, 0.10);
}

// ------------------------------------------------ runtime + graph fusion --

TEST(Integration, FusionPassSpeedsUpTheModeledRuntime) {
  // Cost the same profile over the unfused and the pass-fused graph: the
  // rewrite alone must buy latency (fewer launches, less traffic).
  const auto spec = DeviceSpec::rtx2060();
  const auto dims = graph::LayerDims{768, 12, 3072};
  const graph::Graph unfused = graph::build_encoder_layer_unfused(dims);
  const graph::Graph fused = graph::fuse(unfused);
  const auto profile = RuntimeProfile::turbo();

  auto layer_cost = [&](const graph::Graph& g) {
    double us = 0;
    for (const auto& op : g.ops()) {
      us += perfmodel::kernel_time_us(op.kind, op.cost_fn(1, 64), profile,
                                      spec);
    }
    return us;
  };
  EXPECT_LT(layer_cost(fused), 0.8 * layer_cost(unfused));
}

// ------------------------------------------------------ serving (Fig. 15) --

TEST(Integration, ServingStackOrderingAtModerateLoad) {
  const auto spec = DeviceSpec::rtx2060();
  const auto model = bert();
  // Per-batch service-layer overhead (request handling, MQ, framework
  // dispatch) calibrated to the paper's NoBatch critical points — see
  // EXPERIMENTS.md.
  auto table_for = [&](const RuntimeProfile& p, double overhead_ms) {
    return serving::CostTable::warmup(
        [&](int len, int batch) {
          return overhead_ms +
                 perfmodel::encoder_latency_ms(model, batch, len, p, spec);
        },
        100, 20, 16);
  };
  const auto turbo_table = table_for(RuntimeProfile::turbo(), 1.3);
  const auto pytorch_table = table_for(RuntimeProfile::pytorch(), 4.8);

  serving::WorkloadSpec wspec;
  wspec.rate_per_s = 300;
  wspec.horizon_s = 5;
  wspec.min_len = 2;
  wspec.max_len = 100;
  const auto arrivals = serving::generate_poisson_workload(wspec);
  serving::SimOptions options;

  const auto pytorch_nobatch = serving::simulate_serving(
      arrivals, serving::NoBatchScheduler(), pytorch_table, options);
  const auto turbo_nobatch = serving::simulate_serving(
      arrivals, serving::NoBatchScheduler(), turbo_table, options);
  const auto turbo_dp = serving::simulate_serving(
      arrivals, serving::DpBatchScheduler(20), turbo_table, options);

  // Fig. 15 ordering: PyTorch-NoBatch < Turbo-NoBatch < Turbo-DP.
  EXPECT_LT(pytorch_nobatch.response_rate, turbo_nobatch.response_rate);
  EXPECT_LE(turbo_nobatch.response_rate, turbo_dp.response_rate * 1.02);
  // At 300 req/s PyTorch-NoBatch is far past its ~99 resp/s critical point.
  EXPECT_TRUE(pytorch_nobatch.saturated);
  EXPECT_FALSE(turbo_dp.saturated);
}

// ------------------------------------------------------ serving (Fig. 16) --

TEST(Integration, WideDispersionInvertsNaiveBatchingOrder) {
  // The paper's headline Fig. 16 result: with lengths U(5, 500), naive
  // batching pays so much zero-padding that its critical point falls BELOW
  // NoBatch, while the DP scheduler stays on top.
  const auto spec = DeviceSpec::rtx2060();
  const auto model = bert();
  auto tc_profile = RuntimeProfile::turbo_tc();
  const auto table = serving::CostTable::warmup(
      [&](int len, int batch) {
        return 1.3 +
               perfmodel::encoder_latency_ms(model, batch, len, tc_profile,
                                             spec);
      },
      500, 20, 16);

  serving::WorkloadSpec wspec;
  wspec.rate_per_s = 250;
  wspec.horizon_s = 5;
  wspec.min_len = 5;
  wspec.max_len = 500;
  const auto arrivals = serving::generate_poisson_workload(wspec);
  serving::SimOptions options;

  const auto nobatch = serving::simulate_serving(
      arrivals, serving::NoBatchScheduler(), table, options);
  const auto naive = serving::simulate_serving(
      arrivals, serving::NaiveBatchScheduler(20), table, options);
  const auto dp = serving::simulate_serving(
      arrivals, serving::DpBatchScheduler(20), table, options);

  EXPECT_LT(naive.response_rate, nobatch.response_rate);
  EXPECT_GT(dp.response_rate, nobatch.response_rate);
  EXPECT_GT(naive.padding_overhead_frac, 0.3);
  EXPECT_LT(dp.padding_overhead_frac, 0.15);
}

}  // namespace
}  // namespace turbo
