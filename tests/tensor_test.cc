#include <gtest/gtest.h>

#include "common/check.h"
#include "tensor/tensor.h"

namespace turbo {
namespace {

TEST(Shape, NumelIsProductOfDims) {
  EXPECT_EQ((Shape{2, 3, 4}).numel(), 24);
  EXPECT_EQ((Shape{7}).numel(), 7);
  EXPECT_EQ(Shape{}.numel(), 1);  // scalar
}

TEST(Shape, ZeroDimGivesZeroNumel) {
  EXPECT_EQ((Shape{2, 0, 4}).numel(), 0);
}

TEST(Shape, RejectsNegativeDims) {
  EXPECT_THROW((Shape{2, -1}), CheckError);
}

TEST(Shape, EqualityAndStr) {
  EXPECT_EQ((Shape{1, 2}), (Shape{1, 2}));
  EXPECT_FALSE((Shape{1, 2}) == (Shape{2, 1}));
  EXPECT_EQ((Shape{1, 2}).str(), "[1, 2]");
}

TEST(Tensor, OwnedAllocatesAndZeros) {
  Tensor t = Tensor::zeros(Shape{3, 4});
  EXPECT_EQ(t.numel(), 12);
  EXPECT_EQ(t.bytes(), 48u);
  for (int64_t i = 0; i < 3; ++i) {
    for (int64_t j = 0; j < 4; ++j) EXPECT_EQ(t.at({i, j}), 0.0f);
  }
}

TEST(Tensor, AtUsesRowMajorLayout) {
  Tensor t = Tensor::owned(Shape{2, 3});
  float* d = t.data<float>();
  for (int i = 0; i < 6; ++i) d[i] = static_cast<float>(i);
  EXPECT_EQ(t.at({0, 0}), 0.0f);
  EXPECT_EQ(t.at({0, 2}), 2.0f);
  EXPECT_EQ(t.at({1, 0}), 3.0f);
  EXPECT_EQ(t.at({1, 2}), 5.0f);
}

TEST(Tensor, AtBoundsChecked) {
  Tensor t = Tensor::owned(Shape{2, 3});
  EXPECT_THROW(t.at({2, 0}), CheckError);
  EXPECT_THROW(t.at({0, 3}), CheckError);
  EXPECT_THROW(t.at({0}), CheckError);  // wrong rank
}

TEST(Tensor, ViewSharesExternalStorage) {
  std::vector<float> storage(8, 1.0f);
  Tensor v = Tensor::view(storage.data(), Shape{2, 4});
  v.at({1, 3}) = 9.0f;
  EXPECT_EQ(storage[7], 9.0f);
}

TEST(Tensor, IntTensorTypeChecked) {
  Tensor t = Tensor::zeros(Shape{4}, DType::kI32);
  EXPECT_NO_THROW(t.data<int32_t>());
  EXPECT_THROW(t.data<float>(), CheckError);
}

TEST(Tensor, DefaultIsUndefined) {
  Tensor t;
  EXPECT_FALSE(t.defined());
}

TEST(Tensor, CopySharesOwnedStorage) {
  Tensor a = Tensor::zeros(Shape{4});
  Tensor b = a;
  b.data<float>()[0] = 5.0f;
  EXPECT_EQ(a.data<float>()[0], 5.0f);
}

}  // namespace
}  // namespace turbo
