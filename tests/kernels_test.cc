#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "common/check.h"
#include "common/rng.h"
#include "kernels/elementwise.h"
#include "kernels/embedding.h"
#include "kernels/gemm.h"
#include "kernels/reduction.h"

namespace turbo::kernels {
namespace {

std::vector<float> random_vec(Rng& rng, size_t n, float lo = -1.0f,
                              float hi = 1.0f) {
  std::vector<float> v(n);
  rng.fill_uniform(v.data(), n, lo, hi);
  return v;
}

// ------------------------------------------------------------------ GEMM --

class GemmParam : public ::testing::TestWithParam<
                      std::tuple<int, int, int, bool>> {};

TEST_P(GemmParam, MatchesReference) {
  const auto [m, n, k, trans_b] = GetParam();
  Rng rng(static_cast<uint64_t>(m * 1000 + n * 10 + k + trans_b));
  auto a = random_vec(rng, static_cast<size_t>(m) * k);
  auto b = random_vec(rng, static_cast<size_t>(k) * n);
  std::vector<float> c_opt(static_cast<size_t>(m) * n, 0.0f);
  std::vector<float> c_ref = c_opt;
  gemm(a.data(), b.data(), c_opt.data(), m, n, k, trans_b);
  gemm_ref(a.data(), b.data(), c_ref.data(), m, n, k, trans_b);
  for (size_t i = 0; i < c_opt.size(); ++i) {
    EXPECT_NEAR(c_opt[i], c_ref[i], 1e-3f) << "at " << i;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, GemmParam,
    ::testing::Values(std::make_tuple(1, 1, 1, false),
                      std::make_tuple(3, 5, 7, false),
                      std::make_tuple(3, 5, 7, true),
                      std::make_tuple(64, 64, 64, false),
                      std::make_tuple(65, 33, 17, false),
                      std::make_tuple(65, 33, 17, true),
                      std::make_tuple(128, 300, 257, false),
                      std::make_tuple(100, 100, 300, true)));

TEST(Gemm, AlphaBetaSemantics) {
  Rng rng(5);
  const int m = 8, n = 8, k = 8;
  auto a = random_vec(rng, 64);
  auto b = random_vec(rng, 64);
  std::vector<float> c(64, 2.0f), expected(64, 0.0f);
  gemm_ref(a.data(), b.data(), expected.data(), m, n, k, false, 0.5f, 0.0f);
  for (auto& e : expected) e += 2.0f * 0.25f;  // beta * old
  gemm(a.data(), b.data(), c.data(), m, n, k, false, 0.5f, 0.25f);
  for (int i = 0; i < 64; ++i) EXPECT_NEAR(c[i], expected[i], 1e-4f);
}

TEST(Gemm, ZeroSizedIsNoop) {
  float x = 42.0f;
  EXPECT_NO_THROW(gemm(&x, &x, &x, 0, 0, 0));
}

TEST(BatchedGemm, EachBatchIndependent) {
  Rng rng(9);
  const int batch = 3, m = 4, n = 5, k = 6;
  auto a = random_vec(rng, static_cast<size_t>(batch) * m * k);
  auto b = random_vec(rng, static_cast<size_t>(batch) * k * n);
  std::vector<float> c(static_cast<size_t>(batch) * m * n, 0.0f);
  batched_gemm(a.data(), b.data(), c.data(), batch, m, n, k,
               static_cast<long>(m) * k, static_cast<long>(k) * n,
               static_cast<long>(m) * n);
  for (int i = 0; i < batch; ++i) {
    std::vector<float> ref(static_cast<size_t>(m) * n, 0.0f);
    gemm_ref(a.data() + static_cast<long>(i) * m * k,
             b.data() + static_cast<long>(i) * k * n, ref.data(), m, n, k);
    for (int j = 0; j < m * n; ++j) {
      EXPECT_NEAR(c[static_cast<size_t>(i) * m * n + j], ref[static_cast<size_t>(j)], 1e-3f);
    }
  }
}

TEST(BatchedGemm, SharedOperandViaZeroStride) {
  Rng rng(11);
  const int batch = 2, m = 3, n = 3, k = 3;
  auto a = random_vec(rng, static_cast<size_t>(m) * k);
  auto b = random_vec(rng, static_cast<size_t>(batch) * k * n);
  std::vector<float> c(static_cast<size_t>(batch) * m * n, 0.0f);
  batched_gemm(a.data(), b.data(), c.data(), batch, m, n, k, /*stride_a=*/0,
               static_cast<long>(k) * n, static_cast<long>(m) * n);
  // Both batches used the same A.
  std::vector<float> ref(static_cast<size_t>(m) * n, 0.0f);
  gemm_ref(a.data(), b.data() + k * n, ref.data(), m, n, k);
  for (int j = 0; j < m * n; ++j) {
    EXPECT_NEAR(c[static_cast<size_t>(m * n + j)], ref[static_cast<size_t>(j)], 1e-4f);
  }
}

// --------------------------------------------------------------- softmax --

class SoftmaxParam
    : public ::testing::TestWithParam<std::tuple<long, long>> {};

TEST_P(SoftmaxParam, RowsSumToOneAndOrderPreserved) {
  const auto [rows, cols] = GetParam();
  Rng rng(static_cast<uint64_t>(rows * 100 + cols));
  auto data = random_vec(rng, static_cast<size_t>(rows * cols), -5, 5);
  auto orig = data;
  softmax_rows(data.data(), rows, cols);
  for (long r = 0; r < rows; ++r) {
    double sum = 0;
    for (long c = 0; c < cols; ++c) {
      const float p = data[static_cast<size_t>(r * cols + c)];
      EXPECT_GT(p, 0.0f);
      EXPECT_LE(p, 1.0f);
      sum += p;
    }
    EXPECT_NEAR(sum, 1.0, 1e-4);
    // Monotonicity: larger logits keep larger probabilities.
    for (long c = 1; c < cols; ++c) {
      const auto i0 = static_cast<size_t>(r * cols + c - 1);
      const auto i1 = static_cast<size_t>(r * cols + c);
      if (orig[i0] < orig[i1]) {
        EXPECT_LE(data[i0], data[i1]);
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Shapes, SoftmaxParam,
                         ::testing::Values(std::make_tuple(1, 1),
                                           std::make_tuple(1, 10),
                                           std::make_tuple(7, 33),
                                           std::make_tuple(64, 128),
                                           std::make_tuple(240, 500)));

TEST(Softmax, StableUnderLargeLogits) {
  std::vector<float> row{1000.0f, 1001.0f, 999.0f};
  softmax_rows(row.data(), 1, 3);
  EXPECT_FALSE(std::isnan(row[0]));
  EXPECT_NEAR(row[0] + row[1] + row[2], 1.0f, 1e-5f);
  EXPECT_GT(row[1], row[0]);
}

TEST(Softmax, ScaleShiftsDistribution) {
  std::vector<float> a{1.0f, 2.0f}, b{1.0f, 2.0f};
  softmax_rows(a.data(), 1, 2, 1.0f);
  softmax_rows(b.data(), 1, 2, 10.0f);
  EXPECT_GT(b[1], a[1]);  // sharper with higher scale
}

TEST(AttentionSoftmax, MaskedKeysGetZeroWeight) {
  const int B = 2, h = 2;
  const long S = 4;
  Rng rng(3);
  auto scores = random_vec(rng, static_cast<size_t>(B * h * S * S));
  std::vector<int> valid{3, 2};
  attention_softmax(scores.data(), B, h, S, S, 1.0f, valid.data());
  for (int b = 0; b < B; ++b) {
    for (long r = 0; r < h * S; ++r) {
      const float* row = scores.data() + (b * h * S + r) * S;
      double sum = 0;
      for (long c = 0; c < S; ++c) {
        if (c >= valid[static_cast<size_t>(b)]) {
          EXPECT_EQ(row[c], 0.0f);
        }
        sum += row[c];
      }
      EXPECT_NEAR(sum, 1.0, 1e-4);
    }
  }
}

TEST(AttentionSoftmax, NullMaskMeansFullRows) {
  const long S = 8;
  Rng rng(4);
  auto a = random_vec(rng, static_cast<size_t>(S * S));
  auto b = a;
  attention_softmax(a.data(), 1, 1, S, S, 0.5f, nullptr);
  softmax_rows(b.data(), S, S, 0.5f);
  for (size_t i = 0; i < a.size(); ++i) EXPECT_NEAR(a[i], b[i], 1e-6f);
}

// -------------------------------------------------------------- layernorm --

class LayerNormParam
    : public ::testing::TestWithParam<std::tuple<long, long>> {};

TEST_P(LayerNormParam, OutputHasZeroMeanUnitVarWithIdentityAffine) {
  const auto [rows, cols] = GetParam();
  Rng rng(static_cast<uint64_t>(rows + cols));
  auto in = random_vec(rng, static_cast<size_t>(rows * cols), -3, 3);
  std::vector<float> out(in.size());
  std::vector<float> gamma(static_cast<size_t>(cols), 1.0f);
  std::vector<float> beta(static_cast<size_t>(cols), 0.0f);
  layernorm(out.data(), in.data(), gamma.data(), beta.data(), rows, cols);
  for (long r = 0; r < rows; ++r) {
    double sum = 0, sq = 0;
    for (long c = 0; c < cols; ++c) {
      const double v = out[static_cast<size_t>(r * cols + c)];
      sum += v;
      sq += v * v;
    }
    EXPECT_NEAR(sum / cols, 0.0, 1e-3);
    if (cols > 1) {
      EXPECT_NEAR(sq / cols, 1.0, 2e-2);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Shapes, LayerNormParam,
                         ::testing::Values(std::make_tuple(1, 8),
                                           std::make_tuple(5, 64),
                                           std::make_tuple(16, 768),
                                           std::make_tuple(3, 1000)));

TEST(LayerNorm, AffineApplied) {
  std::vector<float> in{1, 2, 3, 4};
  std::vector<float> out(4), gamma{2, 2, 2, 2}, beta{1, 1, 1, 1};
  layernorm(out.data(), in.data(), gamma.data(), beta.data(), 1, 4);
  double sum = 0;
  for (float v : out) sum += v;
  EXPECT_NEAR(sum / 4, 1.0, 1e-4);  // beta shifts the mean
}

TEST(LayerNorm, InPlaceAllowed) {
  Rng rng(6);
  auto data = random_vec(rng, 64);
  auto copy = data;
  std::vector<float> gamma(64, 1.0f), beta(64, 0.0f), out(64);
  layernorm(out.data(), copy.data(), gamma.data(), beta.data(), 1, 64);
  layernorm(data.data(), data.data(), gamma.data(), beta.data(), 1, 64);
  for (size_t i = 0; i < 64; ++i) EXPECT_EQ(data[i], out[i]);
}

TEST(AddBiasLayerNorm, MatchesComposedOps) {
  const long rows = 6, cols = 32;
  Rng rng(8);
  auto x = random_vec(rng, static_cast<size_t>(rows * cols));
  auto resid = random_vec(rng, static_cast<size_t>(rows * cols));
  auto bias = random_vec(rng, static_cast<size_t>(cols));
  auto gamma = random_vec(rng, static_cast<size_t>(cols), 0.5f, 1.5f);
  auto beta = random_vec(rng, static_cast<size_t>(cols));

  // Composed: add bias, add residual, layernorm.
  auto composed = x;
  add_bias(composed.data(), bias.data(), rows, cols);
  add_residual(composed.data(), resid.data(), rows * cols);
  std::vector<float> expected(composed.size());
  layernorm(expected.data(), composed.data(), gamma.data(), beta.data(),
            rows, cols);

  std::vector<float> fused(x.size());
  add_bias_layernorm(fused.data(), x.data(), resid.data(), bias.data(),
                     gamma.data(), beta.data(), rows, cols);
  for (size_t i = 0; i < fused.size(); ++i) {
    EXPECT_NEAR(fused[i], expected[i], 1e-4f);
  }
}

TEST(AddBiasLayerNorm, NullBiasMeansNoBias) {
  const long rows = 2, cols = 16;
  Rng rng(10);
  auto x = random_vec(rng, static_cast<size_t>(rows * cols));
  auto resid = random_vec(rng, static_cast<size_t>(rows * cols));
  std::vector<float> gamma(16, 1.0f), beta(16, 0.0f);
  std::vector<float> zero_bias(16, 0.0f);
  std::vector<float> with_zero(x.size()), with_null(x.size());
  add_bias_layernorm(with_zero.data(), x.data(), resid.data(),
                     zero_bias.data(), gamma.data(), beta.data(), rows, cols);
  add_bias_layernorm(with_null.data(), x.data(), resid.data(), nullptr,
                     gamma.data(), beta.data(), rows, cols);
  for (size_t i = 0; i < with_zero.size(); ++i) {
    EXPECT_EQ(with_zero[i], with_null[i]);
  }
}

// ------------------------------------------------------------ elementwise --

TEST(AddBias, BroadcastsOverRows) {
  std::vector<float> data{0, 0, 1, 1};
  std::vector<float> bias{5, 7};
  add_bias(data.data(), bias.data(), 2, 2);
  EXPECT_EQ(data, (std::vector<float>{5, 7, 6, 8}));
}

TEST(Gelu, KnownValues) {
  EXPECT_NEAR(gelu_scalar(0.0f), 0.0f, 1e-6f);
  EXPECT_NEAR(gelu_scalar(1.0f), 0.8412f, 1e-3f);
  EXPECT_NEAR(gelu_scalar(-1.0f), -0.1588f, 1e-3f);
  EXPECT_NEAR(gelu_scalar(10.0f), 10.0f, 1e-3f);   // ~identity for large x
  EXPECT_NEAR(gelu_scalar(-10.0f), 0.0f, 1e-3f);   // ~zero for very negative
}

TEST(AddBiasGelu, MatchesComposed) {
  Rng rng(12);
  const long rows = 4, cols = 16;
  auto data = random_vec(rng, static_cast<size_t>(rows * cols));
  auto bias = random_vec(rng, static_cast<size_t>(cols));
  auto composed = data;
  add_bias(composed.data(), bias.data(), rows, cols);
  gelu(composed.data(), rows * cols);
  add_bias_gelu(data.data(), bias.data(), rows, cols);
  for (size_t i = 0; i < data.size(); ++i) {
    EXPECT_NEAR(data[i], composed[i], 1e-6f);
  }
}

// --------------------------------------------------------------- layouts --

class TransposeParam
    : public ::testing::TestWithParam<std::tuple<int, int, int, int>> {};

TEST_P(TransposeParam, HeadSplitAndMergeRoundTrip) {
  const auto [B, S, heads, d] = GetParam();
  const long hidden = static_cast<long>(heads) * d;
  Rng rng(21);
  auto in = random_vec(rng, static_cast<size_t>(B * S) * hidden);
  std::vector<float> headed(in.size()), back(in.size());
  transpose_to_heads(in.data(), headed.data(), B, S, heads, d);
  transpose_for_score(headed.data(), back.data(), B, S, heads, d);
  EXPECT_EQ(in, back);
}

TEST_P(TransposeParam, SplitAddBiasTransposeMatchesManual) {
  const auto [B, S, heads, d] = GetParam();
  const long H = static_cast<long>(heads) * d;
  Rng rng(22);
  auto qkv = random_vec(rng, static_cast<size_t>(B * S) * 3 * H);
  auto bias = random_vec(rng, static_cast<size_t>(3 * H));
  std::vector<float> q(static_cast<size_t>(B * S) * H);
  std::vector<float> k(q.size()), v(q.size());
  split_add_bias_transpose(qkv.data(), bias.data(), q.data(), k.data(),
                           v.data(), B, S, heads, d);
  // Manual check: element (b, s, which, h, dd).
  float* outs[3] = {q.data(), k.data(), v.data()};
  for (int b = 0; b < B; ++b) {
    for (int s = 0; s < S; ++s) {
      for (int which = 0; which < 3; ++which) {
        for (int h = 0; h < heads; ++h) {
          for (int dd = 0; dd < d; ++dd) {
            const float src =
                qkv[static_cast<size_t>(((b * S + s) * 3 + which) * H +
                                        h * d + dd)] +
                bias[static_cast<size_t>(which * H + h * d + dd)];
            const float dst =
                outs[which][static_cast<size_t>(((b * heads + h) * S + s) * d +
                                                dd)];
            ASSERT_EQ(src, dst);
          }
        }
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Shapes, TransposeParam,
                         ::testing::Values(std::make_tuple(1, 1, 1, 4),
                                           std::make_tuple(2, 3, 4, 8),
                                           std::make_tuple(3, 17, 2, 5),
                                           std::make_tuple(1, 64, 12, 64)));

// -------------------------------------------------------------- embedding --

TEST(Embedding, LooksUpAndNormalizes) {
  const int B = 2, S = 3, H = 8, vocab = 10, max_pos = 16;
  Rng rng(31);
  auto word = random_vec(rng, static_cast<size_t>(vocab) * H);
  auto pos = random_vec(rng, static_cast<size_t>(max_pos) * H);
  std::vector<float> gamma(H, 1.0f), beta(H, 0.0f);
  std::vector<int32_t> ids{1, 2, 3, 4, 5, 6};
  std::vector<float> out(static_cast<size_t>(B * S) * H);
  embedding_lookup_layernorm(out.data(), ids.data(), word.data(), pos.data(),
                             nullptr, nullptr, gamma.data(), beta.data(), B,
                             S, H, vocab, max_pos);
  // Expected: layernorm(word[id] + pos[s]).
  for (int b = 0; b < B; ++b) {
    for (int s = 0; s < S; ++s) {
      std::vector<float> expect(static_cast<size_t>(H));
      const int id = ids[static_cast<size_t>(b * S + s)];
      for (int h = 0; h < H; ++h) {
        expect[static_cast<size_t>(h)] =
            word[static_cast<size_t>(id * H + h)] +
            pos[static_cast<size_t>(s * H + h)];
      }
      std::vector<float> norm(static_cast<size_t>(H));
      layernorm(norm.data(), expect.data(), gamma.data(), beta.data(), 1, H);
      for (int h = 0; h < H; ++h) {
        EXPECT_NEAR(out[static_cast<size_t>((b * S + s) * H + h)],
                    norm[static_cast<size_t>(h)], 1e-5f);
      }
    }
  }
}

TEST(Embedding, RejectsOutOfVocabIds) {
  const int H = 4;
  std::vector<float> word(40), pos(40), out(H);
  std::vector<float> gamma(H, 1.0f), beta(H, 0.0f);
  std::vector<int32_t> bad{99};
  EXPECT_THROW(embedding_lookup_layernorm(out.data(), bad.data(), word.data(),
                                          pos.data(), nullptr, nullptr,
                                          gamma.data(), beta.data(), 1, 1, H,
                                          10, 10),
               CheckError);
}

}  // namespace
}  // namespace turbo::kernels
