// BlockRadixTree unit tests: block-aligned matching, pin/evict discipline,
// LRU order, and forced chunk-hash collisions (a collision must cost a
// token compare, never a wrong match).
#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "common/check.h"
#include "genserve/radix_tree.h"

namespace turbo::genserve {
namespace {

constexpr int kBt = 4;      // block_tokens
constexpr int kLayers = 2;  // blocks per node

std::vector<int> seq(int start, int count) {
  std::vector<int> v(static_cast<size_t>(count));
  for (int i = 0; i < count; ++i) v[static_cast<size_t>(i)] = start + i;
  return v;
}

std::vector<int> fake_blocks(int base) { return {base, base + 1}; }

TEST(RadixTree, MatchWalksBlockAlignedPrefixes) {
  BlockRadixTree tree(kBt, kLayers);
  // Chain A: tokens [0..7] as two chunks; branch B shares the first chunk
  // then diverges.
  const auto a = seq(0, 12);
  BlockRadixTree::Node* n0 = tree.insert_child(nullptr, a.data(),
                                               fake_blocks(100));
  BlockRadixTree::Node* n1 = tree.insert_child(n0, a.data() + kBt,
                                               fake_blocks(200));
  std::vector<int> b = seq(0, 8);
  std::fill(b.begin() + kBt, b.end(), 77);
  BlockRadixTree::Node* nb = tree.insert_child(n0, b.data() + kBt,
                                               fake_blocks(300));
  tree.check_invariants();
  EXPECT_EQ(tree.nodes(), 3u);
  EXPECT_EQ(tree.cached_blocks(), 6u);

  // Full prefix of A: both chunks, 8 rows (the trailing partial chunk of
  // the 12 tokens is never matched — blocks are whole or nothing).
  const auto m = tree.match(a, /*max_rows=*/12);
  ASSERT_EQ(m.chain.size(), 2u);
  EXPECT_EQ(m.rows, 2 * kBt);
  EXPECT_EQ(m.chain[0], n0);
  EXPECT_EQ(m.chain[1], n1);

  // max_rows caps at whole chunks: 7 rows allows only one block.
  const auto capped = tree.match(a, /*max_rows=*/7);
  ASSERT_EQ(capped.chain.size(), 1u);
  EXPECT_EQ(capped.rows, kBt);

  // The B branch matches through its own leaf.
  const auto mb = tree.match(b, /*max_rows=*/8);
  ASSERT_EQ(mb.chain.size(), 2u);
  EXPECT_EQ(mb.chain[1], nb);

  // Unrelated tokens match nothing.
  EXPECT_EQ(tree.match(seq(50, 8), 8).rows, 0);
  // match() is read-only: no pins appeared.
  tree.for_each([](const BlockRadixTree::Node& n) { EXPECT_EQ(n.pins, 0); });
}

TEST(RadixTree, PinnedChainsSurviveEvictionLeafFirst) {
  BlockRadixTree tree(kBt, kLayers);
  const auto a = seq(0, 8);
  auto* n0 = tree.insert_child(nullptr, a.data(), fake_blocks(100));
  auto* n1 = tree.insert_child(n0, a.data() + kBt, fake_blocks(200));
  std::vector<int> b = seq(0, 8);
  std::fill(b.begin() + kBt, b.end(), 77);
  tree.insert_child(n0, b.data() + kBt, fake_blocks(300));
  EXPECT_EQ(tree.evictable_blocks(), tree.cached_blocks());

  // Pin chain A: only the B leaf stays evictable.
  const std::vector<BlockRadixTree::Node*> chain = {n0, n1};
  tree.pin_chain(chain);
  tree.check_invariants();
  EXPECT_EQ(tree.evictable_blocks(), static_cast<size_t>(kLayers));

  std::vector<int> freed;
  ASSERT_TRUE(tree.evict_lru(&freed));
  EXPECT_EQ(freed, fake_blocks(300));  // the unpinned B leaf, never A
  EXPECT_EQ(tree.nodes(), 2u);
  // Everything left is pinned: nothing evictable.
  EXPECT_FALSE(tree.evict_lru(&freed));
  tree.check_invariants();

  // Unpin and drain: leaf-first, so the child's blocks come out before the
  // parent's and the tree never orphans a reachable suffix.
  tree.unpin_chain(chain);
  freed.clear();
  ASSERT_TRUE(tree.evict_lru(&freed));
  EXPECT_EQ(freed, fake_blocks(200));
  ASSERT_TRUE(tree.evict_lru(&freed));
  EXPECT_EQ(freed, (std::vector<int>{200, 201, 100, 101}));
  EXPECT_FALSE(tree.evict_lru(&freed));
  EXPECT_EQ(tree.nodes(), 0u);
  EXPECT_EQ(tree.cached_blocks(), 0u);
  tree.check_invariants();
}

TEST(RadixTree, EvictionIsLruAmongLeaves) {
  BlockRadixTree tree(kBt, kLayers);
  auto* old_leaf = tree.insert_child(nullptr, seq(0, 4).data(),
                                     fake_blocks(100));
  auto* young_leaf = tree.insert_child(nullptr, seq(10, 4).data(),
                                       fake_blocks(200));
  // Touch the older node (pin/unpin bumps its LRU stamp, as an adopting
  // sequence would): the other leaf is now least recent.
  tree.pin_chain({old_leaf});
  tree.unpin_chain({old_leaf});
  std::vector<int> freed;
  ASSERT_TRUE(tree.evict_lru(&freed));
  EXPECT_EQ(freed, fake_blocks(200));
  const auto m = tree.match(seq(0, 4), 4);
  ASSERT_EQ(m.chain.size(), 1u);
  EXPECT_EQ(m.chain[0], old_leaf);
  (void)young_leaf;
}

TEST(RadixTree, ForcedHashCollisionsResolveByTokenCompare) {
  // Every chunk hashes to the same bucket: matching correctness must come
  // entirely from the exact token comparison.
  BlockRadixTree tree(kBt, kLayers,
                      [](const int*, int) -> uint64_t { return 42; });
  const auto a = seq(0, 4);
  const auto b = seq(100, 4);
  const auto c = seq(200, 4);
  auto* na = tree.insert_child(nullptr, a.data(), fake_blocks(100));
  auto* nb = tree.insert_child(nullptr, b.data(), fake_blocks(200));
  tree.check_invariants();

  EXPECT_EQ(tree.find_child(nullptr, a.data()), na);
  EXPECT_EQ(tree.find_child(nullptr, b.data()), nb);
  EXPECT_EQ(tree.find_child(nullptr, c.data()), nullptr);

  const auto ma = tree.match(a, 4);
  ASSERT_EQ(ma.chain.size(), 1u);
  EXPECT_EQ(ma.chain[0], na);
  const auto mb = tree.match(b, 4);
  ASSERT_EQ(mb.chain.size(), 1u);
  EXPECT_EQ(mb.chain[0], nb);
  EXPECT_EQ(tree.match(c, 4).rows, 0);

  // Colliding children under a non-root parent too.
  auto* deep_a = tree.insert_child(na, b.data(), fake_blocks(300));
  EXPECT_EQ(tree.find_child(na, b.data()), deep_a);
  EXPECT_EQ(tree.find_child(na, c.data()), nullptr);
  std::vector<int> ab = a;
  ab.insert(ab.end(), b.begin(), b.end());
  EXPECT_EQ(tree.match(ab, 8).rows, 8);
  tree.check_invariants();
}

}  // namespace
}  // namespace turbo::genserve
