#include <gtest/gtest.h>

#include <map>

#include "gpusim/device_spec.h"
#include "perfmodel/kernel_cost.h"
#include "perfmodel/model_latency.h"
#include "perfmodel/runtime_profile.h"

namespace turbo::perfmodel {
namespace {

using gpusim::DeviceSpec;

EncoderModelDesc bert() {
  EncoderModelDesc d;
  d.name = "bert";
  d.dims = graph::LayerDims{768, 12, 3072};
  d.num_layers = 12;
  return d;
}

// -------------------------------------------------------------- roofline --

TEST(GemmTime, MonotoneInFlops) {
  const auto spec = DeviceSpec::rtx2060();
  const auto p = RuntimeProfile::turbo();
  double prev = 0;
  for (double flops : {1e6, 1e8, 1e10, 1e12}) {
    const double t = gemm_time_us(flops, flops / 100, p, spec);
    EXPECT_GT(t, prev);
    prev = t;
  }
}

TEST(GemmTime, TensorCoreFasterOnBigGemms) {
  const auto spec = DeviceSpec::rtx2060();
  const double fp32 =
      gemm_time_us(1e11, 1e8, RuntimeProfile::turbo(), spec);
  const double tc = gemm_time_us(1e11, 1e8, RuntimeProfile::turbo_tc(), spec);
  EXPECT_GT(fp32 / tc, 2.0);
}

TEST(GemmTime, UtilizationPenalizesTinyGemms) {
  const auto spec = DeviceSpec::rtx2060();
  const auto p = RuntimeProfile::turbo();
  // Per-flop cost should be much higher for a tiny GEMM than a big one.
  const double tiny = gemm_time_us(1e7, 1e4, p, spec) / 1e7;
  const double big = gemm_time_us(1e11, 1e8, p, spec) / 1e11;
  EXPECT_GT(tiny / big, 5.0);
}

TEST(GemmTime, BandwidthBoundWhenBytesDominate) {
  const auto spec = DeviceSpec::rtx2060();
  const auto p = RuntimeProfile::turbo();
  const double t = gemm_time_us(1e6, 1e9, p, spec);
  const double memory_us = 1e9 / (spec.mem_bandwidth_gbps * 1e9) * 1e6;
  EXPECT_DOUBLE_EQ(t, memory_us);
}

// ------------------------------------------------------------ kernel cost --

TEST(KernelCost, LaunchOverheadAlwaysCharged) {
  const auto spec = DeviceSpec::rtx2060();
  const auto p = RuntimeProfile::turbo();
  graph::OpCost tiny;
  tiny.cls = graph::CostClass::kElementwise;
  tiny.bytes = 1;
  EXPECT_GE(kernel_time_us(graph::OpKind::kAddBias, tiny, p, spec),
            p.launch_overhead_us);
}

TEST(KernelCost, ReductionImplMatters) {
  const auto spec = DeviceSpec::rtx2060();
  graph::OpCost softmax;
  softmax.cls = graph::CostClass::kReduction;
  softmax.reduce_rows = 20L * 12 * 128;
  softmax.reduce_cols = 128;
  softmax.bytes = 2.0 * softmax.reduce_rows * softmax.reduce_cols * 4;
  const double turbo = kernel_time_us(graph::OpKind::kSoftmax, softmax,
                                      RuntimeProfile::turbo(), spec);
  const double pytorch = kernel_time_us(graph::OpKind::kSoftmax, softmax,
                                        RuntimeProfile::pytorch(), spec);
  EXPECT_GT(pytorch / turbo, 1.5);
}

// ---------------------------------------------------------- encoder model --

TEST(EncoderLatency, TurboBeatsPyTorchEverywhere) {
  const auto spec = DeviceSpec::rtx2060();
  for (int b : {1, 20}) {
    for (int s : {10, 100, 500}) {
      const double turbo =
          encoder_latency_ms(bert(), b, s, RuntimeProfile::turbo(), spec);
      const double pytorch =
          encoder_latency_ms(bert(), b, s, RuntimeProfile::pytorch(), spec);
      EXPECT_GT(pytorch / turbo, 1.0) << "b=" << b << " s=" << s;
    }
  }
}

TEST(EncoderLatency, SpeedupLargestOnShortSequences) {
  // Fig. 9/14 shape: the fusion + launch-overhead win shrinks as GEMMs
  // dominate at long sequence lengths.
  const auto spec = DeviceSpec::rtx2060();
  const double short_speedup =
      encoder_latency_ms(bert(), 1, 10, RuntimeProfile::pytorch(), spec) /
      encoder_latency_ms(bert(), 1, 10, RuntimeProfile::turbo(), spec);
  const double long_speedup =
      encoder_latency_ms(bert(), 1, 500, RuntimeProfile::pytorch(), spec) /
      encoder_latency_ms(bert(), 1, 500, RuntimeProfile::turbo(), spec);
  EXPECT_GT(short_speedup, long_speedup);
}

TEST(EncoderLatency, MonotoneInBatchAndSeq) {
  const auto spec = DeviceSpec::rtx2060();
  const auto p = RuntimeProfile::turbo();
  EXPECT_LT(encoder_latency_ms(bert(), 1, 100, p, spec),
            encoder_latency_ms(bert(), 1, 200, p, spec));
  EXPECT_LT(encoder_latency_ms(bert(), 1, 100, p, spec),
            encoder_latency_ms(bert(), 4, 100, p, spec));
}

TEST(EncoderLatency, BatchingAmortizesPerRequestCost) {
  // Fig. 7: latency(batch N) / N falls well below latency(batch 1).
  const auto spec = DeviceSpec::rtx2060();
  const auto p = RuntimeProfile::turbo();
  const double single = encoder_latency_ms(bert(), 1, 10, p, spec);
  const double batched = encoder_latency_ms(bert(), 10, 10, p, spec) / 10;
  EXPECT_LT(batched / single, 0.5);
}

TEST(EncoderLatency, BreakdownComponentsSumToTotal) {
  const auto spec = DeviceSpec::rtx2060();
  const auto lb =
      encoder_latency(bert(), 4, 128, RuntimeProfile::turbo(), spec, 55.0);
  EXPECT_NEAR(lb.gemm_us + lb.reduction_us + lb.elementwise_us +
                  lb.allocator_us,
              lb.total_us, 1e-6);
  EXPECT_EQ(lb.allocator_us, 55.0);
  double per_kernel = 0;
  for (const auto& [name, us] : lb.per_kernel_us) per_kernel += us;
  EXPECT_NEAR(per_kernel + lb.allocator_us, lb.total_us, 1e-6);
}

TEST(EncoderLatency, GemmShareGrowsWithLength) {
  // Fig. 10: GEMM share ~70% at len 20, ~83% at len 400.
  const auto spec = DeviceSpec::rtx2060();
  const auto p = RuntimeProfile::turbo();
  const auto short_lb = encoder_latency(bert(), 1, 20, p, spec);
  const auto long_lb = encoder_latency(bert(), 1, 400, p, spec);
  const double short_share = short_lb.gemm_us / short_lb.total_us;
  const double long_share = long_lb.gemm_us / long_lb.total_us;
  EXPECT_GT(long_share, short_share);
  EXPECT_GT(long_share, 0.6);
}

TEST(EncoderLatency, RuntimeOrderingMatchesPaper) {
  // Fig. 14, averaged ordering: TensorRT <= FasterTransformers <= Turbo <=
  // onnxruntime/XLA <= PyTorch.
  const auto spec = DeviceSpec::rtx2060();
  double trt = 0, ft = 0, turbo = 0, ort = 0, xla = 0, pt = 0;
  for (int b : {1, 20}) {
    for (int s : {20, 100, 400}) {
      trt += encoder_latency_ms(bert(), b, s, RuntimeProfile::tensorrt(), spec);
      ft += encoder_latency_ms(bert(), b, s,
                               RuntimeProfile::faster_transformers(), spec);
      turbo += encoder_latency_ms(bert(), b, s, RuntimeProfile::turbo(), spec);
      ort += encoder_latency_ms(bert(), b, s, RuntimeProfile::onnxruntime(),
                                spec);
      xla += encoder_latency_ms(bert(), b, s, RuntimeProfile::tf_xla(), spec);
      pt += encoder_latency_ms(bert(), b, s, RuntimeProfile::pytorch(), spec);
    }
  }
  EXPECT_LT(trt, turbo);
  EXPECT_LT(ft, turbo);
  EXPECT_LT(turbo, ort);
  EXPECT_LT(turbo, xla);
  EXPECT_LT(ort, pt);
}

TEST(EncoderLatency, TensorCoreCutsLongSequenceLatency) {
  const auto spec = DeviceSpec::rtx2060();
  const double fp32 =
      encoder_latency_ms(bert(), 1, 500, RuntimeProfile::turbo(), spec);
  const double tc =
      encoder_latency_ms(bert(), 1, 500, RuntimeProfile::turbo_tc(), spec);
  EXPECT_GT(fp32 / tc, 1.5);
}

// ---------------------------------------------------------- decoder model --

TEST(DecoderLatency, GrowsAtLeastLinearlyWithSourceLength) {
  // Each extra source token adds a decode step (per-step cost dominated by
  // the vocabulary projection), so latency grows at least linearly — the
  // paper's Fig. 9 decoder curve (~100 ms at src 30 to ~300 ms at 140).
  const auto spec = DeviceSpec::rtx2060();
  DecoderModelDesc desc;
  const double t30 =
      decoder_latency_us(desc, 30, RuntimeProfile::turbo(), spec);
  const double t60 =
      decoder_latency_us(desc, 60, RuntimeProfile::turbo(), spec);
  const double t120 =
      decoder_latency_us(desc, 120, RuntimeProfile::turbo(), spec);
  EXPECT_GT(t60 / t30, 1.9);
  EXPECT_GT(t120 / t60, 1.9);
}

TEST(DecoderLatency, TurboFasterThanPyTorch) {
  const auto spec = DeviceSpec::rtx2060();
  DecoderModelDesc desc;
  const double turbo =
      decoder_latency_us(desc, 50, RuntimeProfile::turbo(), spec);
  const double pytorch =
      decoder_latency_us(desc, 50, RuntimeProfile::pytorch(), spec);
  // Paper: 1.14x-1.20x on the decoder.
  EXPECT_GT(pytorch / turbo, 1.02);
  EXPECT_LT(pytorch / turbo, 2.5);
}

TEST(DecoderLatency, CapsAtMaxTargetLen) {
  const auto spec = DeviceSpec::rtx2060();
  DecoderModelDesc desc;
  desc.max_target_len = 10;
  const double a =
      decoder_latency_us(desc, 100, RuntimeProfile::turbo(), spec);
  const double b =
      decoder_latency_us(desc, 110, RuntimeProfile::turbo(), spec);
  // Target length capped: only the encoder + cross-attention part grows.
  EXPECT_LT(b / a, 1.3);
}

// ----------------------------------------------------------- table 1 bits --

TEST(Profiles, VariableLengthSupportMatchesTable1) {
  EXPECT_TRUE(RuntimeProfile::turbo().variable_length_ok);
  EXPECT_TRUE(RuntimeProfile::pytorch().variable_length_ok);
  EXPECT_TRUE(RuntimeProfile::onnxruntime().variable_length_ok);
  EXPECT_FALSE(RuntimeProfile::tf_xla().variable_length_ok);
  EXPECT_FALSE(RuntimeProfile::tensorrt().variable_length_ok);
  EXPECT_FALSE(RuntimeProfile::faster_transformers().variable_length_ok);
}

TEST(Profiles, PreprocessRequirementMatchesTable1) {
  EXPECT_FALSE(RuntimeProfile::turbo().requires_preprocess);
  EXPECT_FALSE(RuntimeProfile::pytorch().requires_preprocess);
  EXPECT_TRUE(RuntimeProfile::tensorrt().requires_preprocess);
  EXPECT_TRUE(RuntimeProfile::tf_xla().requires_preprocess);
}

}  // namespace
}  // namespace turbo::perfmodel
