#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.h"
#include "model/classifier.h"
#include "model/decoder.h"
#include "model/encoder.h"

namespace turbo::model {
namespace {

Tensor make_ids(Rng& rng, int batch, int seq, int vocab) {
  Tensor ids = Tensor::owned(Shape{batch, seq}, DType::kI32);
  auto tokens = rng.token_ids(batch * seq, vocab);
  std::copy(tokens.begin(), tokens.end(), ids.data<int32_t>());
  return ids;
}

float max_abs_diff(const Tensor& a, const Tensor& b) {
  EXPECT_EQ(a.numel(), b.numel());
  float worst = 0.0f;
  for (int64_t i = 0; i < a.numel(); ++i) {
    worst = std::max(worst,
                     std::abs(a.data<float>()[i] - b.data<float>()[i]));
  }
  return worst;
}

// ----------------------------------------------------- fused vs reference --

class EncoderEquivalence
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(EncoderEquivalence, PlannedFusedPipelineMatchesNaiveReference) {
  const auto [batch, seq] = GetParam();
  EncoderModel model(ModelConfig::tiny(2, 64, 4, 128, 100), 7);
  Rng rng(static_cast<uint64_t>(batch * 100 + seq));
  Tensor ids = make_ids(rng, batch, seq, 100);

  Tensor fused = model.forward(ids);
  Tensor reference = model.forward_reference(ids);
  EXPECT_LT(max_abs_diff(fused, reference), 5e-3f);
}

INSTANTIATE_TEST_SUITE_P(Shapes, EncoderEquivalence,
                         ::testing::Values(std::make_tuple(1, 4),
                                           std::make_tuple(1, 33),
                                           std::make_tuple(3, 17),
                                           std::make_tuple(4, 64)));

TEST(Encoder, DeterministicAcrossCalls) {
  EncoderModel model(ModelConfig::tiny(), 7);
  Rng rng(1);
  Tensor ids = make_ids(rng, 2, 10, 100);
  Tensor a = model.forward(ids);
  Tensor b = model.forward(ids);
  EXPECT_EQ(max_abs_diff(a, b), 0.0f);
}

TEST(Encoder, VariableLengthSequenceNoReplanningCrash) {
  // The paper's central serving scenario: lengths change every request.
  EncoderModel model(ModelConfig::tiny(), 3);
  Rng rng(2);
  for (int len : {5, 64, 9, 128, 3, 50}) {
    Tensor ids = make_ids(rng, 1, len, 100);
    Tensor out = model.forward(ids);
    EXPECT_EQ(out.shape()[1], len);
    for (int64_t i = 0; i < out.numel(); ++i) {
      ASSERT_FALSE(std::isnan(out.data<float>()[i])) << "len " << len;
    }
  }
  // Planner re-ran per request and its cost was measured.
  EXPECT_GT(model.last_planning_us(), 0.0);
}

TEST(Encoder, PaddingWithMaskMatchesUnpaddedRun) {
  // Zero-padding + attention masking must not change a request's result —
  // this is what makes batched variable-length serving semantically sound.
  EncoderModel model(ModelConfig::tiny(2, 32, 2, 64, 50), 11);
  Rng rng(5);
  const int real_len = 6, padded_len = 16;
  Tensor short_ids = make_ids(rng, 1, real_len, 50);

  Tensor padded_ids = Tensor::zeros(Shape{1, padded_len}, DType::kI32);
  std::copy(short_ids.data<int32_t>(), short_ids.data<int32_t>() + real_len,
            padded_ids.data<int32_t>());
  std::vector<int> valid{real_len};

  Tensor unpadded = model.forward(short_ids);
  Tensor padded = model.forward(padded_ids, &valid);

  // Compare the real positions only.
  const int H = model.config().hidden;
  float worst = 0.0f;
  for (int s = 0; s < real_len; ++s) {
    for (int h = 0; h < H; ++h) {
      worst = std::max(worst, std::abs(unpadded.at({0, s, h}) -
                                       padded.at({0, s, h})));
    }
  }
  EXPECT_LT(worst, 5e-3f);
}

TEST(Encoder, BatchedRequestsMatchIndividualRuns) {
  EncoderModel model(ModelConfig::tiny(2, 32, 2, 64, 50), 13);
  Rng rng(6);
  const int S = 12, B = 3;
  std::vector<Tensor> singles;
  Tensor batch_ids = Tensor::owned(Shape{B, S}, DType::kI32);
  for (int b = 0; b < B; ++b) {
    Tensor one = make_ids(rng, 1, S, 50);
    std::copy(one.data<int32_t>(), one.data<int32_t>() + S,
              batch_ids.data<int32_t>() + static_cast<long>(b) * S);
    singles.push_back(model.forward(one));
  }
  Tensor batched = model.forward(batch_ids);
  const int H = model.config().hidden;
  for (int b = 0; b < B; ++b) {
    for (int s = 0; s < S; ++s) {
      for (int h = 0; h < H; ++h) {
        ASSERT_NEAR(batched.at({b, s, h}), singles[static_cast<size_t>(b)].at({0, s, h}),
                    5e-3f);
      }
    }
  }
}

TEST(Encoder, AlbertSharesOneLayerWeightSet) {
  ModelConfig cfg = ModelConfig::tiny(4, 32, 2, 64, 50);
  cfg.share_layer_weights = true;
  EncoderModel model(cfg, 17);
  EXPECT_EQ(model.weights().layers.size(), 1u);
  // Still runs the full depth.
  Rng rng(7);
  Tensor ids = make_ids(rng, 1, 8, 50);
  EXPECT_NO_THROW(model.forward(ids));
}

TEST(Encoder, AllocatorFootprintTracksRequestSize) {
  EncoderModel model(ModelConfig::tiny(2, 64, 4, 128, 100), 19);
  Rng rng(8);
  model.forward(make_ids(rng, 1, 128, 100));
  const size_t big = model.allocator().stats().current_device_bytes;
  model.forward(make_ids(rng, 1, 4, 100));
  const size_t small = model.allocator().stats().current_device_bytes;
  EXPECT_LE(small, big);
}

// -------------------------------------------------------------- classifier --

TEST(Classifier, ShapesAndDeterminism) {
  SequenceClassifier clf(ModelConfig::tiny(), 4, 23);
  Rng rng(9);
  Tensor ids = make_ids(rng, 2, 10, 100);
  Tensor logits = clf.classify(ids);
  EXPECT_EQ(logits.shape(), (Shape{2, 4}));
  const auto labels1 = clf.predict(ids);
  const auto labels2 = clf.predict(ids);
  EXPECT_EQ(labels1, labels2);
  for (int label : labels1) {
    EXPECT_GE(label, 0);
    EXPECT_LT(label, 4);
  }
}

TEST(Classifier, RejectsDegenerateClassCount) {
  EXPECT_THROW(SequenceClassifier(ModelConfig::tiny(), 1, 1), CheckError);
}

// ----------------------------------------------------------------- decoder --

ModelConfig decoder_cfg() { return ModelConfig::tiny(2, 32, 2, 64, 40); }

Tensor random_memory(Rng& rng, int s_src, int hidden) {
  Tensor m = Tensor::owned(Shape{s_src, hidden});
  rng.fill_uniform(m.data<float>(), static_cast<size_t>(m.numel()), -1.0f,
                   1.0f);
  return m;
}

TEST(Decoder, GreedyDecodingDeterministic) {
  Seq2SeqDecoder dec(decoder_cfg(), 29);
  Rng rng(10);
  Tensor memory = random_memory(rng, 7, 32);
  const auto a = dec.decode(memory, 12, /*bos=*/1, /*eos=*/2, 1);
  const auto b = dec.decode(memory, 12, 1, 2, 1);
  EXPECT_EQ(a.tokens, b.tokens);
  EXPECT_EQ(a.log_prob, b.log_prob);
}

TEST(Decoder, BeamSearchNeverWorseThanGreedy) {
  Seq2SeqDecoder dec(decoder_cfg(), 29);
  Rng rng(11);
  for (int trial = 0; trial < 4; ++trial) {
    Tensor memory = random_memory(rng, 5 + trial * 3, 32);
    const auto greedy = dec.decode(memory, 10, 1, 2, 1);
    const auto beam = dec.decode(memory, 10, 1, 2, 4);
    EXPECT_GE(beam.log_prob, greedy.log_prob - 1e-6);
  }
}

TEST(Decoder, RespectsMaxLength) {
  Seq2SeqDecoder dec(decoder_cfg(), 31);
  Rng rng(12);
  Tensor memory = random_memory(rng, 6, 32);
  const auto hyp = dec.decode(memory, 5, 1, 2, 2);
  // BOS + at most 5 generated tokens.
  EXPECT_LE(hyp.tokens.size(), 6u);
  EXPECT_EQ(hyp.tokens[0], 1);
}

TEST(Decoder, OutputTokensWithinVocab) {
  Seq2SeqDecoder dec(decoder_cfg(), 37);
  Rng rng(13);
  Tensor memory = random_memory(rng, 9, 32);
  const auto hyp = dec.decode(memory, 8, 1, 2, 3);
  for (int t : hyp.tokens) {
    EXPECT_GE(t, 0);
    EXPECT_LT(t, decoder_cfg().vocab);
  }
}

TEST(Decoder, SensitiveToMemoryContent) {
  Seq2SeqDecoder dec(decoder_cfg(), 41);
  Rng rng1(14), rng2(15);
  const auto a = dec.decode(random_memory(rng1, 8, 32), 10, 1, 2, 2);
  const auto b = dec.decode(random_memory(rng2, 8, 32), 10, 1, 2, 2);
  // Different encoder memories should (generically) give different outputs.
  EXPECT_TRUE(a.tokens != b.tokens || a.log_prob != b.log_prob);
}

TEST(Decoder, LogProbNonPositive) {
  Seq2SeqDecoder dec(decoder_cfg(), 43);
  Rng rng(16);
  const auto hyp = dec.decode(random_memory(rng, 4, 32), 6, 1, 2, 2);
  EXPECT_LE(hyp.log_prob, 0.0);
}

}  // namespace
}  // namespace turbo::model
