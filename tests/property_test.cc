// Cross-module randomized property suites: invariants that must hold for
// every seed, sweeping the spaces the paper's components operate over.
#include <gtest/gtest.h>

#include <algorithm>
#include <memory>

#include "common/rng.h"
#include "graph/builders.h"
#include "graph/fusion.h"
#include "gpukernels/reduction_sim.h"
#include "gpusim/device_spec.h"
#include "memory/dynamic_allocators.h"
#include "memory/gsoc_planner.h"
#include "memory/model_aware_allocator.h"
#include "perfmodel/kernel_cost.h"
#include "perfmodel/model_latency.h"
#include "serving/cost_table.h"
#include "serving/scheduler.h"
#include "serving/simulator.h"
#include "serving/workload.h"

namespace turbo {
namespace {

// ------------------------------------------------ allocator trace fuzzing --

class AllocatorTraceFuzz : public ::testing::TestWithParam<uint64_t> {};

TEST_P(AllocatorTraceFuzz, EveryPlanValidOverRandomBertTrace) {
  // Random request traces over the real BERT layer graph: every allocator
  // must produce valid plans (full coverage, no live overlap) and the
  // model-aware footprint must stay within a constant factor of the
  // information-theoretic lower bound.
  Rng rng(GetParam());
  const graph::Graph layer =
      graph::build_encoder_layer_fused({768, 12, 3072});
  memory::ModelAwareAllocator turbo;
  memory::GsocPlanner gsoc;
  memory::ReplayAdapter pytorch(
      std::make_unique<memory::CubCachingAllocator>());

  size_t max_lower_bound = 0;
  for (int round = 0; round < 12; ++round) {
    const int batch = static_cast<int>(rng.uniform_int(1, 4));
    const int len = static_cast<int>(rng.uniform_int(5, 320));
    const auto usages = layer.tensor_usages(batch, len);
    const auto tu = turbo.begin_inference(usages);
    const auto gs = gsoc.begin_inference(usages);
    const auto pt = pytorch.begin_inference(usages);
    ASSERT_NO_THROW(memory::validate_plan(usages, tu));
    ASSERT_NO_THROW(memory::validate_plan(usages, gs));
    ASSERT_NO_THROW(memory::validate_plan(usages, pt));

    const size_t lower_bound = layer.peak_live_bytes(batch, len);
    max_lower_bound = std::max(max_lower_bound, lower_bound);
    ASSERT_GE(tu.footprint_bytes, lower_bound);
    // Chunks in use by this request may have been sized by an earlier,
    // larger request, so the bound is against the largest working set seen
    // so far, not this request's.
    ASSERT_LE(tu.footprint_bytes, 3 * max_lower_bound + (4u << 20))
        << "batch " << batch << " len " << len;
    ASSERT_GE(gs.footprint_bytes, lower_bound);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, AllocatorTraceFuzz,
                         ::testing::Values(11, 22, 33, 44, 55, 66));

TEST(AllocatorDeterminism, SameTraceSamePlacements) {
  const graph::Graph layer = graph::build_encoder_layer_fused({256, 4, 1024});
  auto run = [&]() {
    memory::ModelAwareAllocator alloc;
    std::vector<std::pair<int, size_t>> placements;
    for (int len : {40, 200, 12, 170}) {
      const auto plan = alloc.begin_inference(layer.tensor_usages(1, len));
      for (const auto& [id, p] : plan.placements) {
        placements.emplace_back(id * 1000 + p.chunk_id, p.offset);
      }
    }
    std::sort(placements.begin(), placements.end());
    return placements;
  };
  EXPECT_EQ(run(), run());
}

// ----------------------------------------------------- scheduler fuzzing --

class SchedulerFuzz : public ::testing::TestWithParam<uint64_t> {};

TEST_P(SchedulerFuzz, DpNeverWorseThanBaselinesAndPartitionsSorted) {
  Rng rng(GetParam());
  const auto table = serving::CostTable::warmup(
      [](int len, int batch) {
        return 0.9 + (0.003 * len + 1e-5 * len * len) * batch *
                         (0.3 + 0.7 / batch) * 4;
      },
      512, 20, 8);

  for (int round = 0; round < 10; ++round) {
    const int n = static_cast<int>(rng.uniform_int(1, 40));
    std::vector<serving::Request> reqs;
    for (int i = 0; i < n; ++i) {
      serving::Request r;
      r.id = i;
      r.length = static_cast<int>(rng.uniform_int(2, 500));
      reqs.push_back(r);
    }
    const auto dp = serving::DpBatchScheduler(20).schedule(reqs, table);
    const auto naive = serving::NaiveBatchScheduler(20).schedule(reqs, table);
    const auto nobatch = serving::NoBatchScheduler().schedule(reqs, table);

    // DP objective dominates both baselines.
    ASSERT_LE(serving::scheme_cost_ms(dp),
              serving::scheme_cost_ms(naive) * (1 + 1e-9));
    ASSERT_LE(serving::scheme_cost_ms(dp),
              serving::scheme_cost_ms(nobatch) * (1 + 1e-9));

    // Each DP batch is a contiguous range of the sorted lengths: no batch's
    // interior may contain a length that belongs to another batch.
    std::vector<std::pair<int, int>> ranges;  // (min_len, max_len) per batch
    for (const auto& b : dp) {
      ASSERT_LE(b.size(), 20);
      int lo = 1 << 30, hi = 0;
      for (size_t idx : b.request_indices) {
        lo = std::min(lo, reqs[idx].length);
        hi = std::max(hi, reqs[idx].length);
      }
      ASSERT_EQ(hi, b.padded_length);
      ranges.emplace_back(lo, hi);
    }
    std::sort(ranges.begin(), ranges.end());
    for (size_t i = 1; i < ranges.size(); ++i) {
      ASSERT_LE(ranges[i - 1].second, ranges[i].first)
          << "batches overlap in length space";
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SchedulerFuzz,
                         ::testing::Values(3, 7, 31, 127, 8191));

// ----------------------------------------------------- simulator physics --

class SimulatorConservation : public ::testing::TestWithParam<double> {};

TEST_P(SimulatorConservation, BasicQueueingInvariants) {
  const double rate = GetParam();
  const auto table = serving::CostTable::warmup(
      [](int len, int batch) { return 0.8 + 0.01 * len * batch; }, 128, 20,
      8);
  serving::WorkloadSpec wspec;
  wspec.rate_per_s = rate;
  wspec.horizon_s = 4;
  wspec.min_len = 2;
  wspec.max_len = 100;
  const auto arrivals = serving::generate_poisson_workload(wspec);
  const auto r = serving::simulate_serving(
      arrivals, serving::DpBatchScheduler(20), table, {});

  // Conservation: cannot serve more than arrived.
  EXPECT_LE(r.completed, r.arrived);
  EXPECT_LE(r.response_rate, r.request_rate * 1.01);
  // Latency lower bound: no request finishes faster than the cheapest
  // possible batch containing it.
  EXPECT_GE(r.latency_ms.min, table.batch_cost_ms(2, 1) * 0.99);
  // The GPU cannot be busy more than 100% of elapsed time.
  EXPECT_LE(r.gpu_busy_frac, 1.0 + 1e-9);
  // Padding never reduces token count.
  EXPECT_GE(r.padding_overhead_frac, 0.0);
}

INSTANTIATE_TEST_SUITE_P(Rates, SimulatorConservation,
                         ::testing::Values(25.0, 100.0, 400.0, 1600.0));

// ------------------------------------------------ perf model monotonicity --

TEST(PerfModelProperty, ReductionTimeMonotoneInRowsAndCols) {
  const auto spec = gpusim::DeviceSpec::rtx2060();
  for (auto impl : {gpukernels::ReductionImpl::kBaseline,
                    gpukernels::ReductionImpl::kTurbo}) {
    double prev = 0;
    for (long rows : {64L, 256L, 1024L, 8192L, 65536L}) {
      const double t =
          gpukernels::softmax_sim(nullptr, rows, 128, 1.0f, impl, spec)
              .time_us;
      EXPECT_GE(t, prev);
      prev = t;
    }
    prev = 0;
    for (long cols : {16L, 64L, 256L, 512L}) {
      const double t =
          gpukernels::softmax_sim(nullptr, 4096, cols, 1.0f, impl, spec)
              .time_us;
      EXPECT_GE(t, prev);
      prev = t;
    }
  }
}

TEST(PerfModelProperty, EncoderLatencyMonotoneOverGrid) {
  const auto spec = gpusim::DeviceSpec::rtx2060();
  perfmodel::EncoderModelDesc bert;
  bert.dims = {768, 12, 3072};
  bert.num_layers = 12;
  for (const auto& profile :
       {perfmodel::RuntimeProfile::turbo(), perfmodel::RuntimeProfile::pytorch(),
        perfmodel::RuntimeProfile::turbo_tc()}) {
    for (int b : {1, 4, 20}) {
      double prev = 0;
      for (int s : {8, 32, 128, 512}) {
        const double t =
            perfmodel::encoder_latency_ms(bert, b, s, profile, spec);
        ASSERT_GT(t, prev) << profile.name << " b=" << b << " s=" << s;
        prev = t;
      }
    }
  }
}

TEST(PerfModelProperty, V100OutrunsRtx2060) {
  perfmodel::EncoderModelDesc bert;
  bert.dims = {768, 12, 3072};
  bert.num_layers = 12;
  const auto p = perfmodel::RuntimeProfile::turbo();
  for (int s : {64, 256, 500}) {
    EXPECT_LT(perfmodel::encoder_latency_ms(bert, 8, s, p,
                                            gpusim::DeviceSpec::v100()),
              perfmodel::encoder_latency_ms(bert, 8, s, p,
                                            gpusim::DeviceSpec::rtx2060()));
  }
}

// --------------------------------------------------------- fusion sweeps --

class FusionDimSweep
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(FusionDimSweep, FusedGraphAlwaysHalvesKernelsAndKeepsFlops) {
  const auto [hidden, heads] = GetParam();
  const graph::LayerDims dims{hidden, heads, 4 * hidden};
  const graph::Graph unfused = graph::build_encoder_layer_unfused(dims);
  const graph::Graph fused = graph::fuse(unfused);
  EXPECT_EQ(fused.num_ops(), 12);
  EXPECT_EQ(unfused.num_ops(), 24);
  double a = 0, b = 0;
  for (const auto& op : unfused.ops()) a += op.cost_fn(2, 77).flops;
  for (const auto& op : fused.ops()) b += op.cost_fn(2, 77).flops;
  EXPECT_NEAR(a, b, a * 1e-9);
}

INSTANTIATE_TEST_SUITE_P(
    Dims, FusionDimSweep,
    ::testing::Values(std::make_tuple(128, 2), std::make_tuple(512, 8),
                      std::make_tuple(768, 12), std::make_tuple(1024, 16),
                      std::make_tuple(2048, 32)));

}  // namespace
}  // namespace turbo
