// Randomized property tests for the copy-on-write KvCachePool.
//
// A model of the pool is maintained alongside the real one: every sequence
// remembers the exact K/V values it (or the ancestor it was forked from)
// wrote into each self row, and the value its prompt's cross rows were
// initialized with. Random interleavings of admit / grow-write / fork /
// release then check, after every operation:
//
//  * refcount conservation — KvCachePool::check_invariants() rebuilds each
//    block's expected refcount from the live sequences and prompt shares
//    and compares it with the pool's counters, free list and slab
//    occupancy;
//  * no aliasing — each sequence's recorded rows still read back exactly,
//    so no write through one sequence (including CoW divergence after
//    fork) can leak into an unrelated sequence's blocks;
//  * exact drain — after all releases the DeviceTracker footprint, slab
//    count, refcounts and reservations return exactly to zero.
#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <vector>

#include "common/hash.h"
#include "common/rng.h"
#include "genserve/generation_scheduler.h"
#include "genserve/kv_cache_pool.h"
#include "model/config.h"
#include "serving/cost_table.h"

namespace turbo::genserve {
namespace {

model::ModelConfig tiny() { return model::ModelConfig::tiny(2, 32, 2, 64, 50); }

struct ModelSeq {
  std::unique_ptr<SequenceKv> kv;
  int steps = 0;                  // self rows written so far
  int marker = 0;                 // base of values this sequence writes
  float cross_value = 0.0f;       // value its cross rows were filled with
  std::vector<float> expected;    // expected[t] = value written into row t
};

// The value sequence `marker` writes into self row t (K side; V adds 0.5).
float row_value(int marker, int t) {
  return static_cast<float>(marker) * 100.0f + static_cast<float>(t);
}

void write_next_row(const model::ModelConfig& config, KvCachePool& pool,
                    ModelSeq& s) {
  const int t = s.steps;
  pool.ensure_token(*s.kv, t);
  const float v = row_value(s.marker, t);
  for (int layer = 0; layer < config.num_layers; ++layer) {
    std::fill_n(s.kv->self_k(layer, t), config.hidden, v);
    std::fill_n(s.kv->self_v(layer, t), config.hidden, v + 0.5f);
  }
  s.expected.push_back(v);
  ++s.steps;
}

void init_cross(const model::ModelConfig& config, ModelSeq& s, float value) {
  for (int layer = 0; layer < config.num_layers; ++layer) {
    for (int pos = 0; pos < s.kv->src_len(); ++pos) {
      std::fill_n(s.kv->cross_k(layer, pos), config.hidden, value);
      std::fill_n(s.kv->cross_v(layer, pos), config.hidden, value);
    }
  }
  s.kv->mark_cross_ready();
}

void verify_seq(const model::ModelConfig& config, ModelSeq& s) {
  const int H = config.hidden;
  for (int layer = 0; layer < config.num_layers; ++layer) {
    for (int t = 0; t < s.steps; ++t) {
      const float v = s.expected[static_cast<size_t>(t)];
      ASSERT_EQ(s.kv->self_k(layer, t)[0], v)
          << "seq " << s.kv->id() << " layer " << layer << " row " << t;
      ASSERT_EQ(s.kv->self_k(layer, t)[H - 1], v);
      ASSERT_EQ(s.kv->self_v(layer, t)[0], v + 0.5f);
    }
    for (int pos = 0; pos < s.kv->src_len(); ++pos) {
      ASSERT_EQ(s.kv->cross_k(layer, pos)[0], s.cross_value)
          << "seq " << s.kv->id() << " cross row " << pos;
      ASSERT_EQ(s.kv->cross_v(layer, pos)[H - 1], s.cross_value);
    }
  }
}

void run_interleaving(uint64_t seed, KvPoolOptions opts) {
  const auto config = tiny();
  KvCachePool pool(config, opts);
  Rng rng(seed);

  // A small template set so admits collide on prompts and exercise the
  // prefix-sharing paths; identical templates must share cross blocks.
  const int kTemplates = 5;
  std::vector<std::vector<int>> prompts;
  for (int i = 0; i < kTemplates; ++i) {
    prompts.push_back(
        rng.token_ids(3 + static_cast<int>(rng.uniform_int(0, 7)), 50));
  }

  std::vector<ModelSeq> live;
  int64_t next_id = 1;
  int next_marker = 1;
  const int kOps = 400;

  for (int op = 0; op < kOps; ++op) {
    const int kind = static_cast<int>(rng.uniform_int(0, 9));
    if (kind <= 2 || live.empty()) {
      // Admit from a random template.
      const auto& prompt =
          prompts[static_cast<size_t>(rng.uniform_int(0, kTemplates - 1))];
      const int max_new = 4 + static_cast<int>(rng.uniform_int(0, 8));
      if (!pool.can_admit_prompt(prompt, max_new)) continue;
      ModelSeq s;
      s.kv = pool.admit(next_id++, prompt, max_new);
      s.marker = next_marker++;
      // Cross rows carry a template-determined value, so every sequence
      // sharing the prompt expects identical cross content.
      s.cross_value = static_cast<float>(prompt[0]) + 7000.0f;
      if (s.kv->needs_cross_init()) init_cross(config, s, s.cross_value);
      live.push_back(std::move(s));
    } else if (kind <= 5) {
      // Write the next token row of a random sequence (grow + CoW barrier).
      ModelSeq& s = live[static_cast<size_t>(
          rng.uniform_int(0, static_cast<int64_t>(live.size()) - 1))];
      if (s.steps < s.kv->max_new_tokens()) write_next_row(config, pool, s);
    } else if (kind <= 7) {
      // Fork a random sequence: the child shares all history, then writes
      // under its own marker so parent/child divergence is observable.
      ModelSeq& parent = live[static_cast<size_t>(
          rng.uniform_int(0, static_cast<int64_t>(live.size()) - 1))];
      if (!pool.can_fork(*parent.kv)) continue;
      ModelSeq child;
      child.kv = pool.fork(*parent.kv, next_id++);
      child.steps = parent.steps;
      child.marker = next_marker++;
      child.cross_value = parent.cross_value;
      child.expected = parent.expected;
      live.push_back(std::move(child));
    } else {
      // Release a random sequence, verifying its content first.
      const size_t idx = static_cast<size_t>(
          rng.uniform_int(0, static_cast<int64_t>(live.size()) - 1));
      verify_seq(config, live[idx]);
      live.erase(live.begin() + static_cast<long>(idx));
    }
    ASSERT_NO_THROW(pool.check_invariants()) << "after op " << op;
  }

  // Every sequence must still read back its own writes (full sweep), then
  // drain the pool and require the footprint to return exactly to zero.
  for (auto& s : live) verify_seq(config, s);
  while (!live.empty()) {
    live.pop_back();
    pool.check_invariants();
  }
  EXPECT_EQ(pool.active_sequences(), 0);
  EXPECT_EQ(pool.blocks_in_use(), 0u);
  EXPECT_EQ(pool.blocks_reserved(), 0u);
  EXPECT_EQ(pool.num_slabs(), 0);
  EXPECT_EQ(pool.stats().current_device_bytes, 0u);
  EXPECT_EQ(pool.stats().device_malloc_bytes, pool.stats().device_free_bytes);
}

KvPoolOptions base_opts() {
  KvPoolOptions o;
  o.block_tokens = 4;
  o.blocks_per_slab = 8;
  return o;
}

TEST(KvPoolProperty, RandomInterleavingsUnbounded) {
  for (uint64_t seed = 1; seed <= 4; ++seed) {
    run_interleaving(seed, base_opts());
  }
}

TEST(KvPoolProperty, RandomInterleavingsBoundedPool) {
  // A tight capacity forces admission rejections, slab sweep + slot reuse
  // and CoW under pressure; the reservation discipline must still make
  // every grow/fork succeed once admitted.
  auto opts = base_opts();
  const size_t slab_bytes = static_cast<size_t>(opts.blocks_per_slab) *
                            KvCachePool(tiny(), opts).block_bytes();
  opts.max_bytes = 6 * slab_bytes;  // 48 blocks: a handful of sequences
  for (uint64_t seed = 11; seed <= 14; ++seed) {
    run_interleaving(seed, opts);
  }
}

TEST(KvPoolProperty, RandomInterleavingsBoundedPoolTlsfArena) {
  // Same tight byte cap as the slab variant, but block storage comes from
  // the TLSF arena: per-block spans instead of whole slabs. block_bytes is
  // already a TLSF class boundary for this geometry, so the cap admits the
  // same 48 blocks and every harness invariant must hold unchanged.
  auto opts = base_opts();
  const size_t slab_bytes = static_cast<size_t>(opts.blocks_per_slab) *
                            KvCachePool(tiny(), opts).block_bytes();
  opts.arena = KvArenaKind::kTlsf;
  opts.max_bytes = 6 * slab_bytes;
  for (uint64_t seed = 15; seed <= 18; ++seed) {
    run_interleaving(seed, opts);
  }
}

TEST(KvPoolProperty, RandomInterleavingsTlsfArenaGrowth) {
  // Unbounded TLSF pool seeded with a deliberately tiny arena: every
  // interleaving forces repeated grow_arena() doublings (arena extension +
  // backing-buffer move) under live traffic.
  auto opts = base_opts();
  opts.arena = KvArenaKind::kTlsf;
  opts.tlsf_initial_bytes = 2 * KvCachePool(tiny(), base_opts()).block_bytes();
  for (uint64_t seed = 25; seed <= 26; ++seed) {
    run_interleaving(seed, opts);
  }
}

TEST(KvPoolProperty, RandomInterleavingsSharingDisabled) {
  // With prefix matching off every admit owns private cross blocks, but
  // fork CoW still shares; all invariants must hold identically.
  auto opts = base_opts();
  opts.enable_prefix_sharing = false;
  for (uint64_t seed = 21; seed <= 23; ++seed) {
    run_interleaving(seed, opts);
  }
}

TEST(KvPoolProperty, ForkDivergenceIsExact) {
  // Deterministic CoW scenario: parent writes 6 rows, forks twice, each
  // branch overwrites a different suffix; all three must read their own
  // values and the shared prefix must stay intact.
  const auto config = tiny();
  KvCachePool pool(config, base_opts());
  Rng rng(99);
  const auto prompt = rng.token_ids(6, 50);

  ModelSeq parent;
  parent.kv = pool.admit(1, prompt, 12);
  parent.marker = 1;
  parent.cross_value = 42.0f;
  init_cross(config, parent, parent.cross_value);
  for (int t = 0; t < 6; ++t) write_next_row(config, pool, parent);

  ModelSeq a, b;
  a.kv = pool.fork(*parent.kv, 2);
  b.kv = pool.fork(*parent.kv, 3);
  for (ModelSeq* child : {&a, &b}) {
    child->steps = parent.steps;
    child->cross_value = parent.cross_value;
    child->expected = parent.expected;
  }
  a.marker = 2;
  b.marker = 3;

  // Forks share everything: no new unique blocks yet.
  const size_t shared_blocks = pool.blocks_in_use();
  pool.check_invariants();

  for (int t = 0; t < 4; ++t) {
    write_next_row(config, pool, a);
    write_next_row(config, pool, b);
    write_next_row(config, pool, parent);
    pool.check_invariants();
  }
  EXPECT_GT(pool.cow_copies(), 0u);
  EXPECT_GT(pool.blocks_in_use(), shared_blocks);

  verify_seq(config, parent);
  verify_seq(config, a);
  verify_seq(config, b);

  a.kv.reset();
  b.kv.reset();
  parent.kv.reset();
  pool.check_invariants();
  EXPECT_EQ(pool.blocks_in_use(), 0u);
  EXPECT_EQ(pool.stats().current_device_bytes, 0u);
}

// Randomized admit / grow / fork / preempt / resume / release
// interleavings under optimistic admission. The model tracks parked state:
// a preempted sequence keeps its expected row values (its tokens are
// parked), must hold no self blocks, and must read back every row exactly
// after a resume replays them — while refcount conservation holds at every
// step and the pool never exceeds capacity.
void run_preemption_interleaving(uint64_t seed, KvPoolOptions opts) {
  const auto config = tiny();
  KvCachePool pool(config, opts);
  Rng rng(seed);

  const int kTemplates = 4;
  std::vector<std::vector<int>> prompts;
  for (int i = 0; i < kTemplates; ++i) {
    prompts.push_back(
        rng.token_ids(3 + static_cast<int>(rng.uniform_int(0, 7)), 50));
  }

  struct PSeq : ModelSeq {
    bool parked = false;
  };
  std::vector<PSeq> live;
  int64_t next_id = 1;
  int next_marker = 1;
  size_t preempts = 0;
  size_t resumes = 0;
  const int kOps = 500;

  // Replay after resume: re-derive every parked row (the serving stack
  // feeds the parked tokens back through the decoder; here the model
  // rewrites the recorded values). Growth may hit capacity mid-replay —
  // that is a legitimate cascading preemption, so the sequence parks
  // again.
  auto replay = [&](PSeq& s) {
    for (int t = 0; t < s.steps; ++t) {
      if (!pool.try_ensure_token(*s.kv, t)) {
        pool.preempt(*s.kv);
        s.parked = true;
        ++preempts;
        return;
      }
      for (int layer = 0; layer < config.num_layers; ++layer) {
        std::fill_n(s.kv->self_k(layer, t), config.hidden, s.expected[t]);
        std::fill_n(s.kv->self_v(layer, t), config.hidden,
                    s.expected[t] + 0.5f);
      }
    }
  };

  for (int op = 0; op < kOps; ++op) {
    const int kind = static_cast<int>(rng.uniform_int(0, 11));
    if (kind <= 1 || live.empty()) {
      const auto& prompt =
          prompts[static_cast<size_t>(rng.uniform_int(0, kTemplates - 1))];
      const int max_new = 4 + static_cast<int>(rng.uniform_int(0, 8));
      if (!pool.can_admit_now(prompt)) continue;
      PSeq s;
      s.kv = pool.admit_optimistic(next_id++, prompt, max_new);
      s.marker = next_marker++;
      s.cross_value = static_cast<float>(prompt[0]) + 7000.0f;
      if (s.kv->needs_cross_init()) init_cross(config, s, s.cross_value);
      live.push_back(std::move(s));
    } else if (kind <= 7) {
      // Grow one row, optimistically: exhaustion preempts a random other
      // non-parked sequence (or parks this one when it is alone).
      PSeq& s = live[static_cast<size_t>(
          rng.uniform_int(0, static_cast<int64_t>(live.size()) - 1))];
      if (s.parked || s.steps >= s.kv->max_new_tokens()) continue;
      while (!pool.try_ensure_token(*s.kv, s.steps)) {
        std::vector<PSeq*> victims;
        for (auto& other : live) {
          if (!other.parked && other.kv.get() != s.kv.get()) {
            victims.push_back(&other);
          }
        }
        PSeq* victim =
            victims.empty()
                ? &s
                : victims[static_cast<size_t>(rng.uniform_int(
                      0, static_cast<int64_t>(victims.size()) - 1))];
        pool.preempt(*victim->kv);
        victim->parked = true;
        ++preempts;
        if (victim == &s) break;
      }
      if (!s.parked) {
        const float v = row_value(s.marker, s.steps);
        for (int layer = 0; layer < config.num_layers; ++layer) {
          std::fill_n(s.kv->self_k(layer, s.steps), config.hidden, v);
          std::fill_n(s.kv->self_v(layer, s.steps), config.hidden, v + 0.5f);
        }
        s.expected.push_back(v);
        ++s.steps;
      }
    } else if (kind <= 9) {
      // Resume a random parked sequence and replay its parked rows.
      std::vector<PSeq*> parked;
      for (auto& s : live) {
        if (s.parked) parked.push_back(&s);
      }
      if (parked.empty()) continue;
      PSeq& s = *parked[static_cast<size_t>(
          rng.uniform_int(0, static_cast<int64_t>(parked.size()) - 1))];
      if (!pool.can_resume(*s.kv)) continue;
      pool.resume(*s.kv);
      s.parked = false;
      ++resumes;
      replay(s);
    } else if (kind <= 10) {
      // Fork a non-parked sequence (CoW sharing under preemption churn).
      std::vector<PSeq*> forkable;
      for (auto& s : live) {
        if (!s.parked) forkable.push_back(&s);
      }
      if (forkable.empty()) continue;
      PSeq& parent = *forkable[static_cast<size_t>(
          rng.uniform_int(0, static_cast<int64_t>(forkable.size()) - 1))];
      if (!pool.can_fork(*parent.kv)) continue;
      PSeq child;
      child.kv = pool.fork(*parent.kv, next_id++);
      child.steps = parent.steps;
      child.marker = next_marker++;
      child.cross_value = parent.cross_value;
      child.expected = parent.expected;
      live.push_back(std::move(child));
    } else {
      // Release a random sequence (parked or not), verifying it first.
      const size_t idx = static_cast<size_t>(
          rng.uniform_int(0, static_cast<int64_t>(live.size()) - 1));
      if (!live[idx].parked) verify_seq(config, live[idx]);
      live.erase(live.begin() + static_cast<long>(idx));
    }
    ASSERT_NO_THROW(pool.check_invariants()) << "after op " << op;
    ASSERT_LE(pool.blocks_in_use(), pool.max_blocks()) << "after op " << op;
  }
  EXPECT_GT(preempts, 0u) << "seed " << seed << " never preempted";

  // Every non-parked sequence reads back its writes; drain to zero.
  for (auto& s : live) {
    if (!s.parked) verify_seq(config, s);
  }
  while (!live.empty()) {
    live.pop_back();
    pool.check_invariants();
  }
  EXPECT_EQ(pool.active_sequences(), 0);
  EXPECT_EQ(pool.parked_sequences(), 0);
  EXPECT_EQ(pool.blocks_in_use(), 0u);
  EXPECT_EQ(pool.blocks_reserved(), 0u);
  EXPECT_EQ(pool.num_slabs(), 0);
  EXPECT_EQ(pool.stats().current_device_bytes, 0u);
  EXPECT_EQ(pool.stats().device_malloc_bytes, pool.stats().device_free_bytes);
}

TEST(KvPoolProperty, RandomPreemptRequeueInterleavingsOversubscribed) {
  // Tight capacity + optimistic admission: admits oversubscribe, growth
  // runs the pool dry, preempt/resume churns constantly. No block may
  // leak or double-free, and usage must never exceed capacity.
  auto opts = base_opts();
  const size_t slab_bytes = static_cast<size_t>(opts.blocks_per_slab) *
                            KvCachePool(tiny(), opts).block_bytes();
  opts.max_bytes = 2 * slab_bytes;  // 16 blocks: a couple of sequences
  for (uint64_t seed = 31; seed <= 36; ++seed) {
    run_preemption_interleaving(seed, opts);
  }
}

TEST(KvPoolProperty, RandomPreemptRequeueOversubscribedTlsfArena) {
  // The oversubscribed preempt/requeue churn on TLSF spans: park/resume
  // cycles free and reallocate arbitrary blocks, so the arena coalesces
  // and re-splits constantly while the byte cap stays authoritative.
  auto opts = base_opts();
  const size_t slab_bytes = static_cast<size_t>(opts.blocks_per_slab) *
                            KvCachePool(tiny(), opts).block_bytes();
  opts.arena = KvArenaKind::kTlsf;
  opts.max_bytes = 2 * slab_bytes;
  for (uint64_t seed = 44; seed <= 49; ++seed) {
    run_preemption_interleaving(seed, opts);
  }
}

TEST(KvPoolProperty, RandomPreemptRequeueSharingDisabled) {
  auto opts = base_opts();
  opts.enable_prefix_sharing = false;
  const size_t slab_bytes = static_cast<size_t>(opts.blocks_per_slab) *
                            KvCachePool(tiny(), opts).block_bytes();
  opts.max_bytes = 2 * slab_bytes;
  for (uint64_t seed = 41; seed <= 43; ++seed) {
    run_preemption_interleaving(seed, opts);
  }
}

TEST(KvPoolProperty, PromptSharingChargesCrossBlocksOnce) {
  const auto config = tiny();
  KvCachePool pool(config, base_opts());
  Rng rng(7);
  const auto prompt = rng.token_ids(8, 50);  // 2 cross blocks x 2 layers

  auto a = pool.admit(1, prompt, 4);
  const size_t reserved_one = pool.blocks_reserved();
  const size_t in_use_one = pool.blocks_in_use();
  EXPECT_TRUE(a->needs_cross_init());
  for (int layer = 0; layer < config.num_layers; ++layer) {
    for (int s = 0; s < a->src_len(); ++s) {
      std::fill_n(a->cross_k(layer, s), config.hidden, 3.5f);
    }
  }
  a->mark_cross_ready();

  // Same prompt: marginal demand is self-only and cross blocks are mapped,
  // not allocated.
  EXPECT_LT(pool.blocks_for_prompt(prompt, 4), pool.blocks_for(8, 4));
  auto b = pool.admit(2, prompt, 4);
  EXPECT_FALSE(b->needs_cross_init());
  EXPECT_EQ(pool.prefix_hits(), 1u);
  EXPECT_EQ(pool.blocks_reserved() - reserved_one,
            pool.blocks_for_prompt(prompt, 4));
  // Unique blocks grew only by b's first self block per layer.
  EXPECT_EQ(pool.blocks_in_use() - in_use_one,
            static_cast<size_t>(config.num_layers));
  // The two sequences read the same physical cross rows.
  EXPECT_EQ(a->cross_k(0, 0), b->cross_k(0, 0));
  pool.check_invariants();

  // The share outlives its creator: b keeps the cross blocks (and their
  // projected content) alive.
  a.reset();
  pool.check_invariants();
  EXPECT_EQ(b->cross_k(1, b->src_len() - 1)[0], 3.5f);
  b.reset();
  EXPECT_EQ(pool.blocks_in_use(), 0u);
  EXPECT_EQ(pool.stats().current_device_bytes, 0u);
}

// ---------------------------------------------------------------------------
// Causal (decoder-only) sequences over the radix cache tier.
//
// Every self row t of a causal sequence is a pure function of the fed
// tokens [0, t] — the model writes fnv1a(fed[0..t]) into row t, so a
// radix adoption that ever attached a wrong-prefix chain reads back as a
// value mismatch, not just a refcount error. Random interleavings of
// admit / grow / preempt / resume / fork / donate-and-release then check
// refcount conservation, the cache-tier byte accounting
// (blocks_in_use <= blocks_reserved + radix_cached_blocks), that LRU
// eviction never drops a node a live sequence still references, and that
// drop_radix_cache() + release drains the pool to exactly zero bytes.
// ---------------------------------------------------------------------------

float causal_row_value(const std::vector<int>& fed, int t) {
  return static_cast<float>(fnv1a_range(fed.data(), t + 1) % 8192u);
}

struct CSeq {
  std::unique_ptr<SequenceKv> kv;
  std::vector<int> fed;  // prompt + generated tokens fed so far
  int steps = 0;         // self rows written (== fed.size() unless parked)
  bool parked = false;
};

struct CausalRunStats {
  size_t preempts = 0;
  size_t radix_hits = 0;
  size_t radix_hit_rows = 0;
  size_t radix_evictions = 0;
};

void verify_causal(const model::ModelConfig& config, const CSeq& s) {
  const int H = config.hidden;
  for (int layer = 0; layer < config.num_layers; ++layer) {
    for (int t = 0; t < s.steps; ++t) {
      const float v = causal_row_value(s.fed, t);
      ASSERT_EQ(s.kv->self_k(layer, t)[0], v)
          << "seq " << s.kv->id() << " layer " << layer << " row " << t
          << " (prefix_rows " << s.kv->prefix_rows() << ")";
      ASSERT_EQ(s.kv->self_k(layer, t)[H - 1], v);
      ASSERT_EQ(s.kv->self_v(layer, t)[0], v + 0.5f);
    }
  }
}

void run_causal_radix_interleaving(uint64_t seed, KvPoolOptions opts,
                                   CausalRunStats* out) {
  const auto config = tiny();
  KvCachePool pool(config, opts);
  Rng rng(seed);
  CausalRunStats stats;

  // Prompt templates sharing a block-aligned base, then diverging: admits
  // branch the tree instead of only extending one chain.
  const std::vector<int> base = rng.token_ids(2 * opts.block_tokens, 50);
  const int kTemplates = 5;
  std::vector<std::vector<int>> prompts;
  for (int i = 0; i < kTemplates; ++i) {
    auto p = base;
    const auto tail =
        rng.token_ids(1 + static_cast<int>(rng.uniform_int(0, 5)), 50);
    p.insert(p.end(), tail.begin(), tail.end());
    prompts.push_back(std::move(p));
  }

  std::vector<CSeq> live;
  int64_t next_id = 1;
  const int kOps = 400;

  // Write self row `t` (value derived from the fed prefix), preempting
  // random victims on block exhaustion; parks `s` itself when it is the
  // last one standing. Returns false if `s` parked.
  auto write_row = [&](CSeq& s, int t) -> bool {
    while (!pool.try_ensure_token(*s.kv, t)) {
      CSeq* victim = nullptr;
      for (auto& other : live) {
        if (!other.parked && other.kv && other.kv.get() != s.kv.get()) {
          victim = &other;
        }
      }
      if (victim == nullptr) {
        pool.preempt(*s.kv);
        s.parked = true;
        ++stats.preempts;
        return false;
      }
      pool.preempt(*victim->kv);
      victim->parked = true;
      ++stats.preempts;
    }
    const float v = causal_row_value(s.fed, t);
    for (int layer = 0; layer < config.num_layers; ++layer) {
      std::fill_n(s.kv->self_k(layer, t), config.hidden, v);
      std::fill_n(s.kv->self_v(layer, t), config.hidden, v + 0.5f);
    }
    return true;
  };
  // Write rows [s.steps, rows); s.steps tracks progress even if parked.
  auto write_until = [&](CSeq& s, int rows) {
    while (s.steps < rows) {
      if (!write_row(s, s.steps)) return;
      ++s.steps;
    }
  };

  for (int op = 0; op < kOps; ++op) {
    const int kind = static_cast<int>(rng.uniform_int(0, 11));
    if (kind <= 2 || live.empty()) {
      // Admit from a random template, adopting whatever block-aligned
      // prefix of it the tree has cached. Adopted rows must already read
      // back as this fed-prefix's values — a wrong-prefix adoption fails
      // loudly here.
      const auto& prompt =
          prompts[static_cast<size_t>(rng.uniform_int(0, kTemplates - 1))];
      const int max_new = 4 + static_cast<int>(rng.uniform_int(0, 8));
      const auto plan = pool.plan_causal(prompt);
      if (!pool.can_admit_causal_now(plan)) continue;
      CSeq s;
      s.kv = pool.admit_causal(next_id++, prompt, max_new, plan);
      s.fed = prompt;
      s.steps = s.kv->prefix_rows();
      ASSERT_TRUE(s.kv->causal());
      ASSERT_FALSE(s.kv->needs_cross_init());
      ASSERT_EQ(s.kv->prefix_rows(), plan.prefix_rows);
      ASSERT_EQ(s.kv->prefix_rows() % opts.block_tokens, 0);
      ASSERT_LT(s.kv->prefix_rows(), static_cast<int>(prompt.size()));
      verify_causal(config, s);
      live.push_back(std::move(s));
      write_until(live.back(), static_cast<int>(live.back().fed.size()));
    } else if (kind <= 6) {
      // Grow a non-parked sequence by one fed token.
      std::vector<CSeq*> growable;
      for (auto& s : live) {
        if (!s.parked &&
            static_cast<int>(s.fed.size()) <
                s.kv->src_len() + s.kv->max_new_tokens()) {
          growable.push_back(&s);
        }
      }
      if (growable.empty()) continue;
      CSeq& s = *growable[static_cast<size_t>(
          rng.uniform_int(0, static_cast<int64_t>(growable.size()) - 1))];
      s.fed.push_back(static_cast<int>(rng.uniform_int(0, 49)));
      write_until(s, static_cast<int>(s.fed.size()));
    } else if (kind <= 7) {
      // Preempt a random non-parked sequence outright.
      std::vector<CSeq*> up;
      for (auto& s : live) {
        if (!s.parked) up.push_back(&s);
      }
      if (up.empty()) continue;
      CSeq& s = *up[static_cast<size_t>(
          rng.uniform_int(0, static_cast<int64_t>(up.size()) - 1))];
      pool.preempt(*s.kv);
      s.parked = true;
      ++stats.preempts;
    } else if (kind <= 9) {
      // Resume a parked sequence: re-plan over the full fed history (it
      // may adopt *more* rows than it was admitted with, e.g. its own
      // donation from a neighbour's retirement), then replay the rest.
      std::vector<CSeq*> parked;
      for (auto& s : live) {
        if (s.parked) parked.push_back(&s);
      }
      if (parked.empty()) continue;
      CSeq& s = *parked[static_cast<size_t>(
          rng.uniform_int(0, static_cast<int64_t>(parked.size()) - 1))];
      const auto plan = pool.plan_causal(s.fed);
      if (!pool.can_resume_causal(*s.kv, plan,
                                  static_cast<int>(s.fed.size()))) {
        continue;
      }
      pool.resume_causal(*s.kv, plan);
      s.parked = false;
      s.steps = s.kv->prefix_rows();
      verify_causal(config, s);
      write_until(s, static_cast<int>(s.fed.size()));
    } else if (kind <= 10) {
      // Fork a non-parked sequence: the child re-pins the parent's radix
      // chain and must diverge CoW-exactly as it grows its own fed tail.
      std::vector<CSeq*> forkable;
      for (auto& s : live) {
        if (!s.parked) forkable.push_back(&s);
      }
      if (forkable.empty()) continue;
      CSeq& parent = *forkable[static_cast<size_t>(
          rng.uniform_int(0, static_cast<int64_t>(forkable.size()) - 1))];
      if (!pool.can_fork(*parent.kv)) continue;
      CSeq child;
      child.kv = pool.fork(*parent.kv, next_id++);
      child.fed = parent.fed;
      child.steps = parent.steps;
      live.push_back(std::move(child));
    } else {
      // Retire a random sequence: verify, donate its written rows to the
      // cache tier, release the handle.
      const size_t idx = static_cast<size_t>(
          rng.uniform_int(0, static_cast<int64_t>(live.size()) - 1));
      CSeq& s = live[idx];
      if (!s.parked) {
        verify_causal(config, s);
        std::vector<int> written(s.fed.begin(),
                                 s.fed.begin() + s.steps);
        pool.donate_radix(*s.kv, written);
      }
      live.erase(live.begin() + static_cast<long>(idx));
    }
    ASSERT_NO_THROW(pool.check_invariants()) << "seed " << seed
                                             << " after op " << op;
    ASSERT_LE(pool.blocks_in_use(),
              pool.blocks_reserved() + pool.radix_cached_blocks())
        << "seed " << seed << " after op " << op;
    ASSERT_LE(pool.radix_evictable_blocks(), pool.radix_cached_blocks());
    if (pool.max_blocks() != 0) {
      ASSERT_LE(pool.blocks_in_use(), pool.max_blocks())
          << "seed " << seed << " after op " << op;
    }
  }

  // Every surviving non-parked sequence still reads back its fed-derived
  // rows — eviction under churn never touched a live-referenced node.
  for (auto& s : live) {
    if (!s.parked) verify_causal(config, s);
  }
  while (!live.empty()) {
    CSeq& s = live.back();
    if (!s.parked) {
      std::vector<int> written(s.fed.begin(), s.fed.begin() + s.steps);
      pool.donate_radix(*s.kv, written);
    }
    live.pop_back();
    pool.check_invariants();
  }
  EXPECT_EQ(pool.active_sequences(), 0);
  EXPECT_EQ(pool.parked_sequences(), 0);
  EXPECT_EQ(pool.blocks_reserved(), 0u);
  // Only the cache tier is left holding blocks, all of it evictable.
  EXPECT_EQ(pool.blocks_in_use(), pool.radix_cached_blocks());
  EXPECT_EQ(pool.radix_evictable_blocks(), pool.radix_cached_blocks());
  EXPECT_EQ(pool.charged_blocks(), 0u);

  stats.radix_hits = pool.radix_hits();
  stats.radix_hit_rows = pool.radix_hit_rows();
  stats.radix_evictions = pool.radix_evictions();

  pool.drop_radix_cache();
  pool.check_invariants();
  EXPECT_EQ(pool.radix_cached_blocks(), 0u);
  EXPECT_EQ(pool.blocks_in_use(), 0u);
  EXPECT_EQ(pool.num_slabs(), 0);
  EXPECT_EQ(pool.stats().current_device_bytes, 0u);
  EXPECT_EQ(pool.stats().device_malloc_bytes, pool.stats().device_free_bytes);
  *out = stats;
}

TEST(KvPoolProperty, RandomCausalRadixInterleavingsUnbounded) {
  CausalRunStats total;
  for (uint64_t seed = 51; seed <= 54; ++seed) {
    CausalRunStats s;
    run_causal_radix_interleaving(seed, base_opts(), &s);
    total.radix_hits += s.radix_hits;
    total.radix_hit_rows += s.radix_hit_rows;
  }
  // The workload shares block-aligned prefixes by construction: the tier
  // must actually get hit, or the whole test is vacuous.
  EXPECT_GT(total.radix_hits, 0u);
  EXPECT_GT(total.radix_hit_rows, 0u);
}

TEST(KvPoolProperty, RandomCausalRadixInterleavingsBoundedPool) {
  // Tight capacity: admissions force make_room to reclaim the evictable
  // tier LRU-first and preempt/resume churns; live-referenced (pinned)
  // nodes must survive every eviction.
  auto opts = base_opts();
  const size_t slab_bytes = static_cast<size_t>(opts.blocks_per_slab) *
                            KvCachePool(tiny(), opts).block_bytes();
  opts.max_bytes = 4 * slab_bytes;  // 32 blocks
  CausalRunStats total;
  for (uint64_t seed = 61; seed <= 66; ++seed) {
    CausalRunStats s;
    run_causal_radix_interleaving(seed, opts, &s);
    total.preempts += s.preempts;
    total.radix_hits += s.radix_hits;
    total.radix_evictions += s.radix_evictions;
  }
  EXPECT_GT(total.preempts, 0u);
  EXPECT_GT(total.radix_hits, 0u);
  EXPECT_GT(total.radix_evictions, 0u);
}

TEST(KvPoolProperty, RandomCausalRadixBoundedPoolTlsfArena) {
  // Radix caching + LRU eviction + preemption over TLSF spans: cached
  // nodes pin arena blocks long after their sequences die, so frees land
  // in eviction order, not allocation order — maximal coalescing stress.
  auto opts = base_opts();
  const size_t slab_bytes = static_cast<size_t>(opts.blocks_per_slab) *
                            KvCachePool(tiny(), opts).block_bytes();
  opts.arena = KvArenaKind::kTlsf;
  opts.max_bytes = 4 * slab_bytes;
  CausalRunStats total;
  for (uint64_t seed = 67; seed <= 70; ++seed) {
    CausalRunStats s;
    run_causal_radix_interleaving(seed, opts, &s);
    total.preempts += s.preempts;
    total.radix_hits += s.radix_hits;
    total.radix_evictions += s.radix_evictions;
  }
  EXPECT_GT(total.preempts, 0u);
  EXPECT_GT(total.radix_hits, 0u);
  EXPECT_GT(total.radix_evictions, 0u);
}

TEST(KvPoolProperty, RandomCausalRadixDisabled) {
  // enable_radix_tree=false: plans never match, donations are no-ops, and
  // the same interleavings still conserve refcounts and drain to zero.
  auto opts = base_opts();
  opts.enable_radix_tree = false;
  for (uint64_t seed = 71; seed <= 72; ++seed) {
    CausalRunStats s;
    run_causal_radix_interleaving(seed, opts, &s);
    EXPECT_EQ(s.radix_hits, 0u);
    EXPECT_EQ(s.radix_evictions, 0u);
  }
}

TEST(KvPoolProperty, CausalDonationAdoptionIsExact) {
  // Deterministic end-to-end of the tier: write, donate, re-admit, adopt.
  const auto config = tiny();
  auto opts = base_opts();
  KvCachePool pool(config, opts);
  Rng rng(9);
  const auto prompt = rng.token_ids(11, 50);  // 2 whole blocks + 3 tokens

  CSeq a;
  a.kv = pool.admit_causal(1, prompt, 4, pool.plan_causal(prompt));
  a.fed = prompt;
  EXPECT_EQ(a.kv->prefix_rows(), 0);  // cold tree
  for (int t = 0; t < static_cast<int>(prompt.size()); ++t) {
    pool.ensure_token(*a.kv, t);
    const float v = causal_row_value(a.fed, t);
    for (int layer = 0; layer < config.num_layers; ++layer) {
      std::fill_n(a.kv->self_k(layer, t), config.hidden, v);
      std::fill_n(a.kv->self_v(layer, t), config.hidden, v + 0.5f);
    }
    ++a.steps;
  }
  pool.donate_radix(*a.kv, a.fed);
  // 2 whole chunks x 2 layers donated; the 3-token tail is not block
  // aligned and stays private.
  EXPECT_EQ(pool.radix_nodes(), 2u);
  EXPECT_EQ(pool.radix_cached_blocks(),
            2u * static_cast<size_t>(config.num_layers));
  a.kv.reset();
  pool.check_invariants();
  EXPECT_EQ(pool.radix_evictable_blocks(), pool.radix_cached_blocks());

  // Same prompt again: adopts both cached chunks, reads back a's values.
  const auto plan = pool.plan_causal(prompt);
  EXPECT_EQ(plan.prefix_rows, 2 * opts.block_tokens);
  CSeq b;
  b.kv = pool.admit_causal(2, prompt, 4, plan);
  b.fed = prompt;
  b.steps = b.kv->prefix_rows();
  EXPECT_EQ(b.kv->prefix_rows(), 2 * opts.block_tokens);
  EXPECT_EQ(pool.radix_hits(), 1u);
  EXPECT_EQ(pool.radix_hit_rows(), static_cast<size_t>(2 * opts.block_tokens));
  verify_causal(config, b);
  // Adopted nodes are pinned: not evictable while b holds them.
  EXPECT_EQ(pool.radix_evictable_blocks(), 0u);
  pool.check_invariants();

  // CoW write barrier: extending b past the adopted prefix must not
  // mutate the cached chunk in place.
  b.fed.push_back(42);
  pool.ensure_token(*b.kv, b.steps);
  const float v = causal_row_value(b.fed, b.steps);
  for (int layer = 0; layer < config.num_layers; ++layer) {
    std::fill_n(b.kv->self_k(layer, b.steps), config.hidden, v);
    std::fill_n(b.kv->self_v(layer, b.steps), config.hidden, v + 0.5f);
  }
  ++b.steps;
  verify_causal(config, b);
  pool.donate_radix(*b.kv, b.fed);
  b.kv.reset();
  pool.drop_radix_cache();
  pool.check_invariants();
  EXPECT_EQ(pool.blocks_in_use(), 0u);
  EXPECT_EQ(pool.stats().current_device_bytes, 0u);
}

// ---------------------------------------------------------------------------
// Chunked prefill under a token quantum, driven through the real scheduler.
//
// A GenerationScheduler in causal quantum mode forms every step's mixed
// batch; a synthetic driver stands in for the decoder, writing the
// fed-prefix-derived value fnv1a(fed[0..t]) into every scheduled row and
// sampling a deterministic token at each chunk frontier (so replays after
// preemption regenerate bit-identical values). Random arrivals, forced
// sheds (the cross-pool reclaim path), pool-level CoW forks of running
// sequences and radix donation/adoption at retirement all interleave.
// After every step:
//  * the quantum is conserved — quantum_charged equals the rows the plan
//    actually carries and never exceeds the budget (causal prompts are
//    divisible, so overflow must never be flagged);
//  * refcount conservation — check_invariants() and the capacity cap;
//  * adopted rows read back their fed-prefix values at every admission
//    and resume that attached a radix prefix.
// ---------------------------------------------------------------------------

int deterministic_token(const std::vector<int>& fed) {
  // Any fixed function of the fed history works; it only has to reproduce
  // the same token when a replayed chunk reaches the same frontier (and
  // never the EOS id 2).
  return 3 + static_cast<int>(fnv1a_range(fed.data(), fed.size()) % 40u);
}

void run_chunked_prefill_property(uint64_t seed, KvPoolOptions opts,
                                  int quantum, int chunk_tokens) {
  const auto config = tiny();
  KvCachePool pool(config, opts);
  const auto costs = serving::CostTable::warmup(
      [](int len, int batch) { return 0.01 + 0.0001 * len * batch; }, 128, 16,
      8);
  GenSchedulerOptions sched_opts;
  sched_opts.causal_lm = true;
  sched_opts.optimistic_admission = true;
  sched_opts.max_active = 4;
  sched_opts.step_token_quantum = quantum;
  sched_opts.prefill_chunk_tokens = chunk_tokens;
  GenerationScheduler scheduler(&pool, &costs, sched_opts);
  Rng rng(seed);

  // Prompt templates share a block-aligned base so retirements donate
  // prefixes that later admissions adopt mid-run.
  const std::vector<int> base = rng.token_ids(2 * opts.block_tokens, 50);
  const int kTemplates = 4;
  std::vector<std::vector<int>> prompts;
  for (int i = 0; i < kTemplates; ++i) {
    auto p = base;
    const auto tail =
        rng.token_ids(1 + static_cast<int>(rng.uniform_int(0, 5)), 50);
    p.insert(p.end(), tail.begin(), tail.end());
    prompts.push_back(std::move(p));
  }

  const auto fed_of = [](const ActiveSequence& seq) {
    std::vector<int> fed = seq.request.src_tokens;
    fed.insert(fed.end(), seq.tokens.begin(), seq.tokens.end());
    return fed;
  };
  const auto verify_rows = [&](SequenceKv& kv, const std::vector<int>& fed,
                               int rows) {
    for (int layer = 0; layer < config.num_layers; ++layer) {
      for (int t = 0; t < rows; ++t) {
        const float v = causal_row_value(fed, t);
        ASSERT_EQ(kv.self_k(layer, t)[0], v)
            << "seq " << kv.id() << " layer " << layer << " row " << t
            << " (prefix_rows " << kv.prefix_rows() << ")";
        ASSERT_EQ(kv.self_v(layer, t)[0], v + 0.5f);
      }
    }
  };

  // Pool-level CoW forks of running sequences (the pooled-beam id space):
  // each pins its parent's chain and diverges with its own fed tail.
  struct Fork {
    std::unique_ptr<SequenceKv> kv;
    std::vector<int> fed;
    int steps = 0;
  };
  std::vector<Fork> forks;
  int64_t next_fork_id = -1;
  const auto release_fork = [&](size_t idx) {
    verify_rows(*forks[idx].kv, forks[idx].fed, forks[idx].steps);
    forks.erase(forks.begin() + static_cast<long>(idx));
  };

  int64_t next_id = 1;
  size_t sheds = 0;
  int chunked_rows = 0;
  size_t adoptions_checked = 0;
  const int kOps = 250;

  const auto drive_one_step = [&](int op) {
    // (Re)admissions first; every adoption must already read back the fed
    // prefix it claims to cover.
    for (ActiveSequence* seq : scheduler.admit(static_cast<double>(op))) {
      if (seq->kv->prefix_rows() > 0) {
        verify_rows(*seq->kv, fed_of(*seq), seq->kv->prefix_rows());
        ++adoptions_checked;
      }
      ASSERT_EQ(seq->step, seq->kv->prefix_rows());
    }
    const auto plan = scheduler.prepare_step();
    ASSERT_FALSE(plan.quantum_overflow)
        << "causal prompts are divisible; nothing may overflow the quantum";
    ASSERT_LE(plan.quantum_charged, quantum);
    ASSERT_TRUE(plan.encode.empty());
    int charged = 0;
    for (ActiveSequence* seq : plan.stepping) {
      const std::vector<int> fed = fed_of(*seq);
      const int known = static_cast<int>(fed.size()) - seq->step;
      ASSERT_GE(seq->step_tokens, 1);
      ASSERT_LE(seq->step_tokens, known);
      charged += seq->step_tokens;
      if (seq->step_tokens > 1) chunked_rows += seq->step_tokens;
      for (int i = 0; i < seq->step_tokens; ++i) {
        const int t = seq->step + i;
        const float v = causal_row_value(fed, t);
        for (int layer = 0; layer < config.num_layers; ++layer) {
          std::fill_n(seq->kv->self_k(layer, t), config.hidden, v);
          std::fill_n(seq->kv->self_v(layer, t), config.hidden, v + 0.5f);
        }
      }
      const bool frontier = seq->step_tokens == known;
      seq->step += seq->step_tokens;
      if (frontier) {
        seq->tokens.push_back(deterministic_token(fed));
        seq->last_token = seq->tokens.back();
        if (static_cast<int>(seq->tokens.size()) >=
            seq->request.max_new_tokens) {
          seq->finished = true;
          verify_rows(*seq->kv, fed_of(*seq), seq->step);
        }
      }
    }
    ASSERT_EQ(charged, plan.quantum_charged);
    scheduler.retire_finished();  // donates written rows to the radix tier
  };

  for (int op = 0; op < kOps; ++op) {
    const int kind = static_cast<int>(rng.uniform_int(0, 9));
    if (kind <= 1 && scheduler.pending() < 3) {
      serving::GenerationRequest r;
      r.id = next_id++;
      r.src_tokens =
          prompts[static_cast<size_t>(rng.uniform_int(0, kTemplates - 1))];
      r.max_new_tokens = 2 + static_cast<int>(rng.uniform_int(0, 6));
      r.bos_id = 1;
      r.eos_id = 2;
      scheduler.enqueue(std::move(r));
    } else if (kind == 2) {
      // Forced reclaim (the multi-model shed path): parks sequences —
      // possibly mid-prefill — that must later resume and replay exactly.
      if (scheduler.shed(static_cast<size_t>(
              rng.uniform_int(1, 2) * static_cast<int64_t>(
                                          pool.block_bytes()))) > 0) {
        ++sheds;
      }
    } else if (kind == 3 && forks.size() < 2) {
      // Fork a running sequence at its current row; the child shares every
      // written block CoW and diverges with its own fed tail.
      std::vector<ActiveSequence*> forkable;
      for (const auto& seq : scheduler.active_set()) {
        if (seq->kv && !seq->kv->parked() && seq->step > 0) {
          forkable.push_back(seq.get());
        }
      }
      if (!forkable.empty()) {
        ActiveSequence* parent = forkable[static_cast<size_t>(
            rng.uniform_int(0, static_cast<int64_t>(forkable.size()) - 1))];
        if (pool.can_fork(*parent->kv)) {
          Fork f;
          f.kv = pool.fork(*parent->kv, next_fork_id--);
          f.fed = fed_of(*parent);
          f.steps = parent->step;
          verify_rows(*f.kv, f.fed, f.steps);  // shares the parent's rows
          // Diverge: one private row past the shared history.
          f.fed.resize(static_cast<size_t>(f.steps));
          f.fed.push_back(static_cast<int>(rng.uniform_int(0, 49)));
          if (pool.try_ensure_token(*f.kv, f.steps)) {
            const float v = causal_row_value(f.fed, f.steps);
            for (int layer = 0; layer < config.num_layers; ++layer) {
              std::fill_n(f.kv->self_k(layer, f.steps), config.hidden, v);
              std::fill_n(f.kv->self_v(layer, f.steps), config.hidden,
                          v + 0.5f);
            }
            ++f.steps;
          }
          forks.push_back(std::move(f));
        }
      }
    } else if (kind == 4 && !forks.empty()) {
      release_fork(static_cast<size_t>(
          rng.uniform_int(0, static_cast<int64_t>(forks.size()) - 1)));
    } else {
      drive_one_step(op);
    }
    ASSERT_NO_THROW(pool.check_invariants()) << "seed " << seed
                                             << " after op " << op;
    ASSERT_LE(pool.blocks_in_use(), pool.max_blocks());
  }

  // Drain: release the fork pins first (they are invisible to the
  // scheduler and could otherwise starve its progress guarantee), then
  // step the scheduler dry.
  while (!forks.empty()) release_fork(forks.size() - 1);
  for (int op = kOps; !scheduler.idle(); ++op) {
    ASSERT_LT(op, kOps + 500) << "scheduler failed to drain";
    drive_one_step(op);
    pool.check_invariants();
  }
  EXPECT_GT(chunked_rows, 0) << "seed " << seed << " never ran a chunk";
  EXPECT_GT(adoptions_checked, 0u) << "seed " << seed << " never adopted";
  EXPECT_EQ(pool.active_sequences(), 0);
  EXPECT_EQ(pool.parked_sequences(), 0);
  EXPECT_EQ(pool.blocks_reserved(), 0u);
  EXPECT_EQ(pool.blocks_in_use(), pool.radix_cached_blocks());
  pool.drop_radix_cache();
  pool.check_invariants();
  EXPECT_EQ(pool.blocks_in_use(), 0u);
  EXPECT_EQ(pool.stats().current_device_bytes, 0u);
  EXPECT_EQ(pool.stats().device_malloc_bytes, pool.stats().device_free_bytes);
}

TEST(KvPoolProperty, ChunkedPrefillRandomQuantumInterleavings) {
  // Random quantum and chunk geometry per seed over an unbounded pool.
  for (uint64_t seed = 81; seed <= 84; ++seed) {
    const int quantum = 2 + static_cast<int>(seed % 7);
    const int chunk = static_cast<int>(seed % 3);  // 0 = block_tokens
    run_chunked_prefill_property(seed, base_opts(), quantum, chunk);
  }
}

TEST(KvPoolProperty, ChunkedPrefillBoundedPoolChurn) {
  // Tight capacity: chunked prefill, shed-forced preemption, CoW fork
  // pins and radix eviction all fight over 24 blocks.
  auto opts = base_opts();
  const size_t slab_bytes = static_cast<size_t>(opts.blocks_per_slab) *
                            KvCachePool(tiny(), opts).block_bytes();
  opts.max_bytes = 3 * slab_bytes;
  for (uint64_t seed = 91; seed <= 95; ++seed) {
    const int quantum = 3 + static_cast<int>(seed % 6);
    run_chunked_prefill_property(seed, opts, quantum, /*chunk_tokens=*/0);
  }
}

TEST(KvPoolProperty, ChunkedPrefillBoundedPoolChurnTlsfArena) {
  // The same chunked-prefill/preemption/radix fight over 24 blocks, drawn
  // from a TLSF arena instead of whole slabs.
  auto opts = base_opts();
  const size_t slab_bytes = static_cast<size_t>(opts.blocks_per_slab) *
                            KvCachePool(tiny(), opts).block_bytes();
  opts.arena = KvArenaKind::kTlsf;
  opts.max_bytes = 3 * slab_bytes;
  for (uint64_t seed = 96; seed <= 99; ++seed) {
    const int quantum = 3 + static_cast<int>(seed % 6);
    run_chunked_prefill_property(seed, opts, quantum, /*chunk_tokens=*/0);
  }
}

}  // namespace
}  // namespace turbo::genserve
