// Randomized property tests for the copy-on-write KvCachePool.
//
// A model of the pool is maintained alongside the real one: every sequence
// remembers the exact K/V values it (or the ancestor it was forked from)
// wrote into each self row, and the value its prompt's cross rows were
// initialized with. Random interleavings of admit / grow-write / fork /
// release then check, after every operation:
//
//  * refcount conservation — KvCachePool::check_invariants() rebuilds each
//    block's expected refcount from the live sequences and prompt shares
//    and compares it with the pool's counters, free list and slab
//    occupancy;
//  * no aliasing — each sequence's recorded rows still read back exactly,
//    so no write through one sequence (including CoW divergence after
//    fork) can leak into an unrelated sequence's blocks;
//  * exact drain — after all releases the DeviceTracker footprint, slab
//    count, refcounts and reservations return exactly to zero.
#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <vector>

#include "common/rng.h"
#include "genserve/kv_cache_pool.h"
#include "model/config.h"

namespace turbo::genserve {
namespace {

model::ModelConfig tiny() { return model::ModelConfig::tiny(2, 32, 2, 64, 50); }

struct ModelSeq {
  std::unique_ptr<SequenceKv> kv;
  int steps = 0;                  // self rows written so far
  int marker = 0;                 // base of values this sequence writes
  float cross_value = 0.0f;       // value its cross rows were filled with
  std::vector<float> expected;    // expected[t] = value written into row t
};

// The value sequence `marker` writes into self row t (K side; V adds 0.5).
float row_value(int marker, int t) {
  return static_cast<float>(marker) * 100.0f + static_cast<float>(t);
}

void write_next_row(const model::ModelConfig& config, KvCachePool& pool,
                    ModelSeq& s) {
  const int t = s.steps;
  pool.ensure_token(*s.kv, t);
  const float v = row_value(s.marker, t);
  for (int layer = 0; layer < config.num_layers; ++layer) {
    std::fill_n(s.kv->self_k(layer, t), config.hidden, v);
    std::fill_n(s.kv->self_v(layer, t), config.hidden, v + 0.5f);
  }
  s.expected.push_back(v);
  ++s.steps;
}

void init_cross(const model::ModelConfig& config, ModelSeq& s, float value) {
  for (int layer = 0; layer < config.num_layers; ++layer) {
    for (int pos = 0; pos < s.kv->src_len(); ++pos) {
      std::fill_n(s.kv->cross_k(layer, pos), config.hidden, value);
      std::fill_n(s.kv->cross_v(layer, pos), config.hidden, value);
    }
  }
  s.kv->mark_cross_ready();
}

void verify_seq(const model::ModelConfig& config, ModelSeq& s) {
  const int H = config.hidden;
  for (int layer = 0; layer < config.num_layers; ++layer) {
    for (int t = 0; t < s.steps; ++t) {
      const float v = s.expected[static_cast<size_t>(t)];
      ASSERT_EQ(s.kv->self_k(layer, t)[0], v)
          << "seq " << s.kv->id() << " layer " << layer << " row " << t;
      ASSERT_EQ(s.kv->self_k(layer, t)[H - 1], v);
      ASSERT_EQ(s.kv->self_v(layer, t)[0], v + 0.5f);
    }
    for (int pos = 0; pos < s.kv->src_len(); ++pos) {
      ASSERT_EQ(s.kv->cross_k(layer, pos)[0], s.cross_value)
          << "seq " << s.kv->id() << " cross row " << pos;
      ASSERT_EQ(s.kv->cross_v(layer, pos)[H - 1], s.cross_value);
    }
  }
}

void run_interleaving(uint64_t seed, KvPoolOptions opts) {
  const auto config = tiny();
  KvCachePool pool(config, opts);
  Rng rng(seed);

  // A small template set so admits collide on prompts and exercise the
  // prefix-sharing paths; identical templates must share cross blocks.
  const int kTemplates = 5;
  std::vector<std::vector<int>> prompts;
  for (int i = 0; i < kTemplates; ++i) {
    prompts.push_back(
        rng.token_ids(3 + static_cast<int>(rng.uniform_int(0, 7)), 50));
  }

  std::vector<ModelSeq> live;
  int64_t next_id = 1;
  int next_marker = 1;
  const int kOps = 400;

  for (int op = 0; op < kOps; ++op) {
    const int kind = static_cast<int>(rng.uniform_int(0, 9));
    if (kind <= 2 || live.empty()) {
      // Admit from a random template.
      const auto& prompt =
          prompts[static_cast<size_t>(rng.uniform_int(0, kTemplates - 1))];
      const int max_new = 4 + static_cast<int>(rng.uniform_int(0, 8));
      if (!pool.can_admit_prompt(prompt, max_new)) continue;
      ModelSeq s;
      s.kv = pool.admit(next_id++, prompt, max_new);
      s.marker = next_marker++;
      // Cross rows carry a template-determined value, so every sequence
      // sharing the prompt expects identical cross content.
      s.cross_value = static_cast<float>(prompt[0]) + 7000.0f;
      if (s.kv->needs_cross_init()) init_cross(config, s, s.cross_value);
      live.push_back(std::move(s));
    } else if (kind <= 5) {
      // Write the next token row of a random sequence (grow + CoW barrier).
      ModelSeq& s = live[static_cast<size_t>(
          rng.uniform_int(0, static_cast<int64_t>(live.size()) - 1))];
      if (s.steps < s.kv->max_new_tokens()) write_next_row(config, pool, s);
    } else if (kind <= 7) {
      // Fork a random sequence: the child shares all history, then writes
      // under its own marker so parent/child divergence is observable.
      ModelSeq& parent = live[static_cast<size_t>(
          rng.uniform_int(0, static_cast<int64_t>(live.size()) - 1))];
      if (!pool.can_fork(*parent.kv)) continue;
      ModelSeq child;
      child.kv = pool.fork(*parent.kv, next_id++);
      child.steps = parent.steps;
      child.marker = next_marker++;
      child.cross_value = parent.cross_value;
      child.expected = parent.expected;
      live.push_back(std::move(child));
    } else {
      // Release a random sequence, verifying its content first.
      const size_t idx = static_cast<size_t>(
          rng.uniform_int(0, static_cast<int64_t>(live.size()) - 1));
      verify_seq(config, live[idx]);
      live.erase(live.begin() + static_cast<long>(idx));
    }
    ASSERT_NO_THROW(pool.check_invariants()) << "after op " << op;
  }

  // Every sequence must still read back its own writes (full sweep), then
  // drain the pool and require the footprint to return exactly to zero.
  for (auto& s : live) verify_seq(config, s);
  while (!live.empty()) {
    live.pop_back();
    pool.check_invariants();
  }
  EXPECT_EQ(pool.active_sequences(), 0);
  EXPECT_EQ(pool.blocks_in_use(), 0u);
  EXPECT_EQ(pool.blocks_reserved(), 0u);
  EXPECT_EQ(pool.num_slabs(), 0);
  EXPECT_EQ(pool.stats().current_device_bytes, 0u);
  EXPECT_EQ(pool.stats().device_malloc_bytes, pool.stats().device_free_bytes);
}

KvPoolOptions base_opts() {
  KvPoolOptions o;
  o.block_tokens = 4;
  o.blocks_per_slab = 8;
  return o;
}

TEST(KvPoolProperty, RandomInterleavingsUnbounded) {
  for (uint64_t seed = 1; seed <= 4; ++seed) {
    run_interleaving(seed, base_opts());
  }
}

TEST(KvPoolProperty, RandomInterleavingsBoundedPool) {
  // A tight capacity forces admission rejections, slab sweep + slot reuse
  // and CoW under pressure; the reservation discipline must still make
  // every grow/fork succeed once admitted.
  auto opts = base_opts();
  const size_t slab_bytes = static_cast<size_t>(opts.blocks_per_slab) *
                            KvCachePool(tiny(), opts).block_bytes();
  opts.max_bytes = 6 * slab_bytes;  // 48 blocks: a handful of sequences
  for (uint64_t seed = 11; seed <= 14; ++seed) {
    run_interleaving(seed, opts);
  }
}

TEST(KvPoolProperty, RandomInterleavingsSharingDisabled) {
  // With prefix matching off every admit owns private cross blocks, but
  // fork CoW still shares; all invariants must hold identically.
  auto opts = base_opts();
  opts.enable_prefix_sharing = false;
  for (uint64_t seed = 21; seed <= 23; ++seed) {
    run_interleaving(seed, opts);
  }
}

TEST(KvPoolProperty, ForkDivergenceIsExact) {
  // Deterministic CoW scenario: parent writes 6 rows, forks twice, each
  // branch overwrites a different suffix; all three must read their own
  // values and the shared prefix must stay intact.
  const auto config = tiny();
  KvCachePool pool(config, base_opts());
  Rng rng(99);
  const auto prompt = rng.token_ids(6, 50);

  ModelSeq parent;
  parent.kv = pool.admit(1, prompt, 12);
  parent.marker = 1;
  parent.cross_value = 42.0f;
  init_cross(config, parent, parent.cross_value);
  for (int t = 0; t < 6; ++t) write_next_row(config, pool, parent);

  ModelSeq a, b;
  a.kv = pool.fork(*parent.kv, 2);
  b.kv = pool.fork(*parent.kv, 3);
  for (ModelSeq* child : {&a, &b}) {
    child->steps = parent.steps;
    child->cross_value = parent.cross_value;
    child->expected = parent.expected;
  }
  a.marker = 2;
  b.marker = 3;

  // Forks share everything: no new unique blocks yet.
  const size_t shared_blocks = pool.blocks_in_use();
  pool.check_invariants();

  for (int t = 0; t < 4; ++t) {
    write_next_row(config, pool, a);
    write_next_row(config, pool, b);
    write_next_row(config, pool, parent);
    pool.check_invariants();
  }
  EXPECT_GT(pool.cow_copies(), 0u);
  EXPECT_GT(pool.blocks_in_use(), shared_blocks);

  verify_seq(config, parent);
  verify_seq(config, a);
  verify_seq(config, b);

  a.kv.reset();
  b.kv.reset();
  parent.kv.reset();
  pool.check_invariants();
  EXPECT_EQ(pool.blocks_in_use(), 0u);
  EXPECT_EQ(pool.stats().current_device_bytes, 0u);
}

// Randomized admit / grow / fork / preempt / resume / release
// interleavings under optimistic admission. The model tracks parked state:
// a preempted sequence keeps its expected row values (its tokens are
// parked), must hold no self blocks, and must read back every row exactly
// after a resume replays them — while refcount conservation holds at every
// step and the pool never exceeds capacity.
void run_preemption_interleaving(uint64_t seed, KvPoolOptions opts) {
  const auto config = tiny();
  KvCachePool pool(config, opts);
  Rng rng(seed);

  const int kTemplates = 4;
  std::vector<std::vector<int>> prompts;
  for (int i = 0; i < kTemplates; ++i) {
    prompts.push_back(
        rng.token_ids(3 + static_cast<int>(rng.uniform_int(0, 7)), 50));
  }

  struct PSeq : ModelSeq {
    bool parked = false;
  };
  std::vector<PSeq> live;
  int64_t next_id = 1;
  int next_marker = 1;
  size_t preempts = 0;
  size_t resumes = 0;
  const int kOps = 500;

  // Replay after resume: re-derive every parked row (the serving stack
  // feeds the parked tokens back through the decoder; here the model
  // rewrites the recorded values). Growth may hit capacity mid-replay —
  // that is a legitimate cascading preemption, so the sequence parks
  // again.
  auto replay = [&](PSeq& s) {
    for (int t = 0; t < s.steps; ++t) {
      if (!pool.try_ensure_token(*s.kv, t)) {
        pool.preempt(*s.kv);
        s.parked = true;
        ++preempts;
        return;
      }
      for (int layer = 0; layer < config.num_layers; ++layer) {
        std::fill_n(s.kv->self_k(layer, t), config.hidden, s.expected[t]);
        std::fill_n(s.kv->self_v(layer, t), config.hidden,
                    s.expected[t] + 0.5f);
      }
    }
  };

  for (int op = 0; op < kOps; ++op) {
    const int kind = static_cast<int>(rng.uniform_int(0, 11));
    if (kind <= 1 || live.empty()) {
      const auto& prompt =
          prompts[static_cast<size_t>(rng.uniform_int(0, kTemplates - 1))];
      const int max_new = 4 + static_cast<int>(rng.uniform_int(0, 8));
      if (!pool.can_admit_now(prompt)) continue;
      PSeq s;
      s.kv = pool.admit_optimistic(next_id++, prompt, max_new);
      s.marker = next_marker++;
      s.cross_value = static_cast<float>(prompt[0]) + 7000.0f;
      if (s.kv->needs_cross_init()) init_cross(config, s, s.cross_value);
      live.push_back(std::move(s));
    } else if (kind <= 7) {
      // Grow one row, optimistically: exhaustion preempts a random other
      // non-parked sequence (or parks this one when it is alone).
      PSeq& s = live[static_cast<size_t>(
          rng.uniform_int(0, static_cast<int64_t>(live.size()) - 1))];
      if (s.parked || s.steps >= s.kv->max_new_tokens()) continue;
      while (!pool.try_ensure_token(*s.kv, s.steps)) {
        std::vector<PSeq*> victims;
        for (auto& other : live) {
          if (!other.parked && other.kv.get() != s.kv.get()) {
            victims.push_back(&other);
          }
        }
        PSeq* victim =
            victims.empty()
                ? &s
                : victims[static_cast<size_t>(rng.uniform_int(
                      0, static_cast<int64_t>(victims.size()) - 1))];
        pool.preempt(*victim->kv);
        victim->parked = true;
        ++preempts;
        if (victim == &s) break;
      }
      if (!s.parked) {
        const float v = row_value(s.marker, s.steps);
        for (int layer = 0; layer < config.num_layers; ++layer) {
          std::fill_n(s.kv->self_k(layer, s.steps), config.hidden, v);
          std::fill_n(s.kv->self_v(layer, s.steps), config.hidden, v + 0.5f);
        }
        s.expected.push_back(v);
        ++s.steps;
      }
    } else if (kind <= 9) {
      // Resume a random parked sequence and replay its parked rows.
      std::vector<PSeq*> parked;
      for (auto& s : live) {
        if (s.parked) parked.push_back(&s);
      }
      if (parked.empty()) continue;
      PSeq& s = *parked[static_cast<size_t>(
          rng.uniform_int(0, static_cast<int64_t>(parked.size()) - 1))];
      if (!pool.can_resume(*s.kv)) continue;
      pool.resume(*s.kv);
      s.parked = false;
      ++resumes;
      replay(s);
    } else if (kind <= 10) {
      // Fork a non-parked sequence (CoW sharing under preemption churn).
      std::vector<PSeq*> forkable;
      for (auto& s : live) {
        if (!s.parked) forkable.push_back(&s);
      }
      if (forkable.empty()) continue;
      PSeq& parent = *forkable[static_cast<size_t>(
          rng.uniform_int(0, static_cast<int64_t>(forkable.size()) - 1))];
      if (!pool.can_fork(*parent.kv)) continue;
      PSeq child;
      child.kv = pool.fork(*parent.kv, next_id++);
      child.steps = parent.steps;
      child.marker = next_marker++;
      child.cross_value = parent.cross_value;
      child.expected = parent.expected;
      live.push_back(std::move(child));
    } else {
      // Release a random sequence (parked or not), verifying it first.
      const size_t idx = static_cast<size_t>(
          rng.uniform_int(0, static_cast<int64_t>(live.size()) - 1));
      if (!live[idx].parked) verify_seq(config, live[idx]);
      live.erase(live.begin() + static_cast<long>(idx));
    }
    ASSERT_NO_THROW(pool.check_invariants()) << "after op " << op;
    ASSERT_LE(pool.blocks_in_use(), pool.max_blocks()) << "after op " << op;
  }
  EXPECT_GT(preempts, 0u) << "seed " << seed << " never preempted";

  // Every non-parked sequence reads back its writes; drain to zero.
  for (auto& s : live) {
    if (!s.parked) verify_seq(config, s);
  }
  while (!live.empty()) {
    live.pop_back();
    pool.check_invariants();
  }
  EXPECT_EQ(pool.active_sequences(), 0);
  EXPECT_EQ(pool.parked_sequences(), 0);
  EXPECT_EQ(pool.blocks_in_use(), 0u);
  EXPECT_EQ(pool.blocks_reserved(), 0u);
  EXPECT_EQ(pool.num_slabs(), 0);
  EXPECT_EQ(pool.stats().current_device_bytes, 0u);
  EXPECT_EQ(pool.stats().device_malloc_bytes, pool.stats().device_free_bytes);
}

TEST(KvPoolProperty, RandomPreemptRequeueInterleavingsOversubscribed) {
  // Tight capacity + optimistic admission: admits oversubscribe, growth
  // runs the pool dry, preempt/resume churns constantly. No block may
  // leak or double-free, and usage must never exceed capacity.
  auto opts = base_opts();
  const size_t slab_bytes = static_cast<size_t>(opts.blocks_per_slab) *
                            KvCachePool(tiny(), opts).block_bytes();
  opts.max_bytes = 2 * slab_bytes;  // 16 blocks: a couple of sequences
  for (uint64_t seed = 31; seed <= 36; ++seed) {
    run_preemption_interleaving(seed, opts);
  }
}

TEST(KvPoolProperty, RandomPreemptRequeueSharingDisabled) {
  auto opts = base_opts();
  opts.enable_prefix_sharing = false;
  const size_t slab_bytes = static_cast<size_t>(opts.blocks_per_slab) *
                            KvCachePool(tiny(), opts).block_bytes();
  opts.max_bytes = 2 * slab_bytes;
  for (uint64_t seed = 41; seed <= 43; ++seed) {
    run_preemption_interleaving(seed, opts);
  }
}

TEST(KvPoolProperty, PromptSharingChargesCrossBlocksOnce) {
  const auto config = tiny();
  KvCachePool pool(config, base_opts());
  Rng rng(7);
  const auto prompt = rng.token_ids(8, 50);  // 2 cross blocks x 2 layers

  auto a = pool.admit(1, prompt, 4);
  const size_t reserved_one = pool.blocks_reserved();
  const size_t in_use_one = pool.blocks_in_use();
  EXPECT_TRUE(a->needs_cross_init());
  for (int layer = 0; layer < config.num_layers; ++layer) {
    for (int s = 0; s < a->src_len(); ++s) {
      std::fill_n(a->cross_k(layer, s), config.hidden, 3.5f);
    }
  }
  a->mark_cross_ready();

  // Same prompt: marginal demand is self-only and cross blocks are mapped,
  // not allocated.
  EXPECT_LT(pool.blocks_for_prompt(prompt, 4), pool.blocks_for(8, 4));
  auto b = pool.admit(2, prompt, 4);
  EXPECT_FALSE(b->needs_cross_init());
  EXPECT_EQ(pool.prefix_hits(), 1u);
  EXPECT_EQ(pool.blocks_reserved() - reserved_one,
            pool.blocks_for_prompt(prompt, 4));
  // Unique blocks grew only by b's first self block per layer.
  EXPECT_EQ(pool.blocks_in_use() - in_use_one,
            static_cast<size_t>(config.num_layers));
  // The two sequences read the same physical cross rows.
  EXPECT_EQ(a->cross_k(0, 0), b->cross_k(0, 0));
  pool.check_invariants();

  // The share outlives its creator: b keeps the cross blocks (and their
  // projected content) alive.
  a.reset();
  pool.check_invariants();
  EXPECT_EQ(b->cross_k(1, b->src_len() - 1)[0], 3.5f);
  b.reset();
  EXPECT_EQ(pool.blocks_in_use(), 0u);
  EXPECT_EQ(pool.stats().current_device_bytes, 0u);
}

}  // namespace
}  // namespace turbo::genserve
