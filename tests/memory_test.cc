#include <gtest/gtest.h>

#include <algorithm>
#include <limits>
#include <memory>

#include "common/check.h"
#include "common/rng.h"
#include "memory/allocator.h"
#include "memory/dynamic_allocators.h"
#include "memory/gsoc_planner.h"
#include "memory/model_aware_allocator.h"
#include "memory/slab_budget.h"

namespace turbo::memory {
namespace {

std::vector<TensorUsage> make_usages(
    std::initializer_list<std::tuple<int, int, size_t>> specs) {
  std::vector<TensorUsage> usages;
  int id = 0;
  for (const auto& [first, last, size] : specs) {
    TensorUsage u;
    u.tensor_id = id;
    u.name = "t" + std::to_string(id);
    u.first_op = first;
    u.last_op = last;
    u.size = size;
    usages.push_back(std::move(u));
    ++id;
  }
  return usages;
}

// Random tensor-usage instance resembling a DNN layer: a chain of ops with
// short-lived activations and a couple of long-lived residuals.
std::vector<TensorUsage> random_usages(Rng& rng, int count, int num_ops,
                                       size_t max_size) {
  std::vector<TensorUsage> usages;
  for (int i = 0; i < count; ++i) {
    TensorUsage u;
    u.tensor_id = i;
    u.name = "r" + std::to_string(i);
    u.first_op = static_cast<int>(rng.uniform_int(0, num_ops - 1));
    u.last_op = static_cast<int>(
        rng.uniform_int(u.first_op, std::min(num_ops - 1, u.first_op + 4)));
    u.size = static_cast<size_t>(rng.uniform_int(1, static_cast<long>(max_size)));
    usages.push_back(std::move(u));
  }
  return usages;
}

size_t peak_live(const std::vector<TensorUsage>& usages) {
  size_t peak = 0;
  int max_op = 0;
  for (const auto& u : usages) max_op = std::max(max_op, u.last_op);
  for (int op = 0; op <= max_op; ++op) {
    size_t live = 0;
    for (const auto& u : usages) {
      if (u.first_op <= op && op <= u.last_op) live += u.size;
    }
    peak = std::max(peak, live);
  }
  return peak;
}

// ------------------------------------------------------ ModelAwareAllocator

TEST(ModelAware, PlacesAllTensorsWithoutLiveOverlap) {
  ModelAwareAllocator alloc;
  auto usages = make_usages({{0, 1, 1000}, {0, 2, 2000}, {1, 3, 500},
                             {2, 4, 1500}, {4, 5, 3000}});
  const auto plan = alloc.begin_inference(usages);
  EXPECT_NO_THROW(validate_plan(usages, plan));
}

TEST(ModelAware, DisjointLifetimesShareMemory) {
  ModelAwareAllocator alloc;
  // Two 1 MB tensors that never coexist: a single 2 MB chunk must suffice.
  auto usages = make_usages({{0, 1, 1u << 20}, {2, 3, 1u << 20}});
  const auto plan = alloc.begin_inference(usages);
  EXPECT_EQ(alloc.num_chunks(), 1);
  EXPECT_EQ(plan.footprint_bytes, 2u << 20);
}

TEST(ModelAware, OversizedTensorGetsScaledChunk) {
  ModelAwareAllocator alloc;
  const size_t big = 10u << 20;
  auto usages = make_usages({{0, 0, big}});
  const auto plan = alloc.begin_inference(usages);
  EXPECT_EQ(plan.footprint_bytes,
            static_cast<size_t>(static_cast<double>(big) * 1.2));
}

TEST(ModelAware, ChunksReusedAcrossInferences) {
  ModelAwareAllocator alloc;
  auto usages = make_usages({{0, 1, 500000}, {1, 2, 600000}});
  alloc.begin_inference(usages);
  const auto stats_before = alloc.stats();
  const auto plan2 = alloc.begin_inference(usages);
  // Identical request: no new device traffic at all.
  EXPECT_EQ(alloc.stats().device_malloc_count,
            stats_before.device_malloc_count);
  EXPECT_EQ(plan2.inference_malloc_bytes, 0u);
  EXPECT_EQ(plan2.inference_free_bytes, 0u);
}

TEST(ModelAware, ShrinkingRequestReleasesUnusedChunks) {
  ModelAwareAllocator alloc;
  // Long request needs several chunks.
  auto big = make_usages({{0, 1, 3u << 20}, {0, 1, 3u << 20}});
  alloc.begin_inference(big);
  const size_t big_footprint = alloc.stats().current_device_bytes;
  // Short request: unused chunks are released immediately.
  auto small = make_usages({{0, 1, 1000}});
  const auto plan = alloc.begin_inference(small);
  EXPECT_LT(plan.footprint_bytes, big_footprint);
  EXPECT_GT(plan.inference_free_bytes, 0u);
}

TEST(ModelAware, IdleGraceKeepsChunksAlive) {
  ModelAwareOptions options;
  options.max_idle_inferences = 2;
  ModelAwareAllocator alloc(options);
  auto big = make_usages({{0, 1, 3u << 20}});
  alloc.begin_inference(big);
  // Two completely idle inferences tolerated...
  alloc.begin_inference({});
  alloc.begin_inference({});
  EXPECT_EQ(alloc.stats().device_free_count, 0u);
  // ...the third releases the idle chunk.
  alloc.begin_inference({});
  EXPECT_GT(alloc.stats().device_free_count, 0u);
  EXPECT_EQ(alloc.num_chunks(), 0);
}

TEST(ModelAware, GrowingRequestAddsChunksIncrementally) {
  ModelAwareAllocator alloc;
  auto seq200 = make_usages({{0, 1, 1500000}, {1, 2, 1500000}});
  alloc.begin_inference(seq200);
  const auto before = alloc.stats().current_device_bytes;
  // A longer request adds one overlapping tensor: existing chunks stay and
  // only the marginal chunk is allocated (the paper's Fig. 6 seq 200 -> 240
  // example).
  auto seq240 =
      make_usages({{0, 1, 1500000}, {1, 2, 1500000}, {0, 2, 1500000}});
  const auto plan = alloc.begin_inference(seq240);
  EXPECT_GT(alloc.stats().current_device_bytes, before);
  EXPECT_EQ(plan.inference_free_bytes, 0u);
  EXPECT_LT(plan.inference_malloc_bytes,
            alloc.stats().current_device_bytes);
}

class ModelAwareProperty : public ::testing::TestWithParam<uint64_t> {};

TEST_P(ModelAwareProperty, RandomInstancesAlwaysValid) {
  Rng rng(GetParam());
  ModelAwareAllocator alloc;
  for (int round = 0; round < 8; ++round) {
    auto usages = random_usages(rng, 24, 12, 400000);
    const auto plan = alloc.begin_inference(usages);
    ASSERT_NO_THROW(validate_plan(usages, plan));
    // Footprint can never beat the information-theoretic lower bound.
    EXPECT_GE(plan.footprint_bytes, peak_live(usages));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ModelAwareProperty,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34));

TEST(ModelAware, PackedSelectionReleasesOversizedChunksAfterShortRequest) {
  // The Fig. 11 footprint-tracking behaviour: after a long request, a short
  // one must not keep the big chunks alive under the packed policy, while
  // the literal first-fit scan does retain them.
  auto run = [](ChunkSelection selection) {
    ModelAwareOptions o;
    o.chunk_selection = selection;
    ModelAwareAllocator alloc(o);
    // Long request: two big overlapping tensors.
    alloc.begin_inference(
        make_usages({{0, 2, 9u << 20}, {1, 3, 6u << 20}}));
    // Short request: one small tensor.
    const auto plan = alloc.begin_inference(make_usages({{0, 1, 100000}}));
    return plan.footprint_bytes;
  };
  const size_t packed = run(ChunkSelection::kPacked);
  const size_t first_fit = run(ChunkSelection::kFirstFit);
  // Packed settles in the smallest leftover chunk (the ~7.2 MB one) and the
  // ~10.8 MB chunk is released; first-fit scans in list order, lands in the
  // big chunk and keeps it.
  EXPECT_LT(packed, first_fit);
  EXPECT_LT(packed, 8u << 20);
  EXPECT_GT(first_fit, 10u << 20);
}

TEST(ModelAware, KScaleOneAllocatesExactOversizedChunks) {
  ModelAwareOptions o;
  o.k_scale = 1.0;
  ModelAwareAllocator alloc(o);
  const size_t big = 5u << 20;
  const auto plan = alloc.begin_inference(make_usages({{0, 0, big}}));
  EXPECT_EQ(plan.footprint_bytes, big);
}

TEST(ModelAware, EmptyInferenceProducesEmptyPlan) {
  ModelAwareAllocator alloc;
  const auto plan = alloc.begin_inference({});
  EXPECT_TRUE(plan.placements.empty());
  EXPECT_EQ(plan.footprint_bytes, 0u);
}

TEST(ModelAware, RejectsInvalidUsages) {
  ModelAwareAllocator alloc;
  std::vector<TensorUsage> zero_size = make_usages({{0, 1, 0}});
  zero_size[0].size = 0;
  EXPECT_THROW(alloc.begin_inference(zero_size), CheckError);
  auto backwards = make_usages({{0, 1, 10}});
  backwards[0].first_op = 5;
  backwards[0].last_op = 2;
  EXPECT_THROW(alloc.begin_inference(backwards), CheckError);
}

// ------------------------------------------------------------- GsocPlanner

TEST(Gsoc, PacksWithoutLiveOverlap) {
  auto usages = make_usages({{0, 2, 100}, {1, 3, 200}, {3, 4, 150},
                             {0, 4, 50}});
  GsocPlanner planner;
  const auto plan = planner.begin_inference(usages);
  EXPECT_NO_THROW(validate_plan(usages, plan));
}

TEST(Gsoc, ArenaAtLeastPeakLive) {
  Rng rng(77);
  for (int round = 0; round < 10; ++round) {
    auto usages = random_usages(rng, 20, 10, 100000);
    const auto packing = gsoc_plan(usages);
    EXPECT_GE(packing.arena_size, peak_live(usages));
  }
}

TEST(Gsoc, PerfectPackingWhenAllDisjoint) {
  // Tensors that never coexist collapse onto offset 0.
  auto usages = make_usages({{0, 0, 300}, {1, 1, 200}, {2, 2, 100}});
  const auto packing = gsoc_plan(usages);
  EXPECT_EQ(packing.arena_size, 300u);
  for (const auto& [id, offset] : packing.offsets) EXPECT_EQ(offset, 0u);
}

TEST(Gsoc, ReallocatesWheneverArenaSizeChanges) {
  GsocPlanner planner;
  auto small = make_usages({{0, 1, 1000}});
  auto large = make_usages({{0, 1, 5000}});
  planner.begin_inference(small);
  const auto plan2 = planner.begin_inference(large);
  EXPECT_GT(plan2.inference_malloc_bytes, 0u);
  EXPECT_GT(plan2.inference_free_bytes, 0u);
  const auto plan3 = planner.begin_inference(large);
  EXPECT_EQ(plan3.traffic_bytes(), 0u);  // same size: cached
}

// --------------------------------------------------------- turbo vs gsoc --

TEST(TurboVsGsoc, TurboTrafficLowerOnAlternatingLengths) {
  // The paper's Figure 12 claim: per-inference alloc+free traffic of the
  // chunked allocator is below GSOC's full-arena reallocation when lengths
  // keep changing.
  Rng rng(123);
  ModelAwareAllocator turbo;
  GsocPlanner gsoc;
  size_t turbo_traffic = 0, gsoc_traffic = 0;
  for (int round = 0; round < 20; ++round) {
    auto usages = random_usages(rng, 16, 9, 900000);
    turbo_traffic += turbo.begin_inference(usages).traffic_bytes();
    gsoc_traffic += gsoc.begin_inference(usages).traffic_bytes();
  }
  EXPECT_LT(turbo_traffic, gsoc_traffic);
}

// ------------------------------------------------------- NaiveDeviceAlloc --

TEST(Naive, EveryAllocHitsTheDevice) {
  NaiveDeviceAllocator alloc;
  auto* a = alloc.alloc(100);
  auto* b = alloc.alloc(200);
  EXPECT_EQ(alloc.stats().device_malloc_count, 2u);
  alloc.free(a);
  alloc.free(b);
  EXPECT_EQ(alloc.stats().device_free_count, 2u);
  EXPECT_EQ(alloc.stats().current_device_bytes, 0u);
  EXPECT_GT(alloc.total_stall_us(), 0.0);
}

TEST(Naive, FreeOfUnknownPointerRejected) {
  NaiveDeviceAllocator alloc;
  std::byte dummy;
  EXPECT_THROW(alloc.free(&dummy), CheckError);
}

// ------------------------------------------------------ CubCachingAlloc --

TEST(CubCaching, ReusesFreedBlocksOfSameBin) {
  CubCachingAllocator alloc;
  auto* a = alloc.alloc(1000);  // 1024 bin
  alloc.free(a);
  auto* b = alloc.alloc(900);  // same bin: cache hit
  EXPECT_EQ(a, b);
  EXPECT_EQ(alloc.stats().device_malloc_count, 1u);
}

TEST(CubCaching, FootprintRatchetsUpNeverDown) {
  CubCachingAllocator alloc;
  auto* big = alloc.alloc(8u << 20);
  alloc.free(big);
  const size_t after_big = alloc.stats().current_device_bytes;
  auto* small = alloc.alloc(100);
  alloc.free(small);
  // The big block is still cached: footprint never shrinks.
  EXPECT_GE(alloc.stats().current_device_bytes, after_big);
  EXPECT_EQ(alloc.stats().device_free_count, 0u);
}

TEST(CubCaching, EmptyCacheReturnsMemory) {
  CubCachingAllocator alloc;
  alloc.free(alloc.alloc(4096));
  EXPECT_GT(alloc.cached_bytes(), 0u);
  alloc.empty_cache();
  EXPECT_EQ(alloc.cached_bytes(), 0u);
  EXPECT_EQ(alloc.stats().current_device_bytes, 0u);
}

TEST(CubCaching, BinsArePowersOfTwo) {
  CubCachingAllocator alloc;
  alloc.alloc(513);  // rounds to 1024
  EXPECT_EQ(alloc.stats().device_malloc_bytes, 1024u);
}

// -------------------------------------------------------- BfcArenaAlloc --

TEST(BfcArena, SplitsAndCoalesces) {
  BfcArenaAllocator alloc(1 << 20);
  auto* a = alloc.alloc(1000);
  auto* b = alloc.alloc(1000);
  auto* c = alloc.alloc(1000);
  EXPECT_EQ(alloc.num_regions(), 1u);
  alloc.free(b);
  alloc.free(a);
  // a+b coalesced: a 2000-byte request fits without growing.
  auto* d = alloc.alloc(2000);
  EXPECT_EQ(alloc.num_regions(), 1u);
  alloc.free(c);
  alloc.free(d);
}

TEST(BfcArena, GrowsByDoublingRegions) {
  BfcArenaAllocator alloc(1 << 10);
  alloc.alloc(1 << 10);           // fills region 0 (1 KiB)
  alloc.alloc(1 << 10);           // needs region 1 (2 KiB)
  EXPECT_EQ(alloc.num_regions(), 2u);
  alloc.alloc(100 << 10);         // jumps straight to a big region
  EXPECT_EQ(alloc.num_regions(), 3u);
}

TEST(BfcArena, ArenaNeverShrinks) {
  BfcArenaAllocator alloc(1 << 12);
  auto* a = alloc.alloc(1 << 12);
  const size_t reserved = alloc.stats().current_device_bytes;
  alloc.free(a);
  EXPECT_EQ(alloc.stats().current_device_bytes, reserved);
}

// --------------------------------------------------------- ReplayAdapter --

TEST(Replay, StatsReflectOneInference) {
  ReplayAdapter replay(std::make_unique<NaiveDeviceAllocator>());
  auto usages = make_usages({{0, 1, 100}, {1, 2, 200}, {2, 2, 300}});
  const auto plan = replay.begin_inference(usages);
  EXPECT_EQ(plan.inference_malloc_count, 3u);
  EXPECT_EQ(plan.inference_free_count, 3u);
  EXPECT_EQ(plan.placements.size(), 3u);
}

TEST(Replay, CachingBackendQuiescesOnRepeats) {
  ReplayAdapter replay(std::make_unique<CubCachingAllocator>());
  auto usages = make_usages({{0, 1, 1000}, {1, 3, 2000}, {2, 3, 1000}});
  replay.begin_inference(usages);
  const auto plan2 = replay.begin_inference(usages);
  EXPECT_EQ(plan2.inference_malloc_bytes, 0u);  // warm cache
  EXPECT_EQ(plan2.inference_free_bytes, 0u);
}

// ----------------------------------------------------------- validation --

TEST(ValidatePlan, DetectsOverlapOfLiveTensors) {
  auto usages = make_usages({{0, 1, 100}, {0, 1, 100}});
  InferencePlan plan;
  std::vector<std::byte> arena(200);
  plan.placements[0] = Placement{arena.data(), 0, 0};
  plan.placements[1] = Placement{arena.data() + 50, 0, 50};  // overlaps!
  EXPECT_THROW(validate_plan(usages, plan), CheckError);
}

TEST(ValidatePlan, DetectsMissingPlacement) {
  auto usages = make_usages({{0, 1, 100}});
  InferencePlan plan;
  EXPECT_THROW(validate_plan(usages, plan), CheckError);
}

// ---------------------------------------------------------- slab budget --

TEST(SlabBudget, SharedCapAcrossClientsWithBorrowing) {
  SlabBudget budget(1000);
  const auto a = budget.register_client("a", 400);
  const auto b = budget.register_client("b", 400);

  // a borrows well past its guarantee while b is idle...
  EXPECT_TRUE(budget.try_acquire(a, 700));
  EXPECT_EQ(budget.used_bytes(a), 700u);
  EXPECT_EQ(budget.borrowed_bytes(a), 300u);
  EXPECT_EQ(budget.available_bytes(), 300u);
  // ...and the *total* is what caps: b gets the remainder, not its share.
  EXPECT_FALSE(budget.try_acquire(b, 400));
  EXPECT_TRUE(budget.try_acquire(b, 300));
  EXPECT_EQ(budget.used_bytes(), 1000u);
  EXPECT_FALSE(budget.try_acquire(a, 1));

  budget.release(a, 700);
  EXPECT_EQ(budget.borrowed_bytes(a), 0u);
  EXPECT_TRUE(budget.try_acquire(b, 700));
  budget.release(b, 1000);
  EXPECT_EQ(budget.used_bytes(), 0u);

  const auto snap = budget.snapshot();
  EXPECT_EQ(snap.total_bytes, 1000u);
  EXPECT_EQ(snap.peak_used_bytes, 1000u);
  EXPECT_EQ(snap.denials, 2u);
  ASSERT_EQ(snap.clients.size(), 2u);
  EXPECT_EQ(snap.clients[0].name, "a");
  EXPECT_EQ(snap.clients[0].peak_used_bytes, 700u);
  EXPECT_EQ(snap.clients[1].denials, 1u);

  budget.unregister_client(a);
  budget.unregister_client(b);
}

TEST(SlabBudget, GuaranteesMustFitAndClientsMustDrain) {
  SlabBudget budget(100);
  const auto a = budget.register_client("a", 80);
  EXPECT_THROW(budget.register_client("b", 30), CheckError);
  // Unregistering a returns its guarantee to the pot.
  budget.unregister_client(a);
  const auto b = budget.register_client("b", 90);
  EXPECT_TRUE(budget.try_acquire(b, 50));
  EXPECT_THROW(budget.unregister_client(b), CheckError);  // still charged
  budget.release(b, 50);
  budget.unregister_client(b);
}

TEST(SlabBudget, UnboundedTracksAttributionWithoutACap) {
  SlabBudget budget(0);
  const auto a = budget.register_client("a");
  EXPECT_TRUE(budget.try_acquire(a, 1 << 30));
  EXPECT_EQ(budget.used_bytes(a), static_cast<size_t>(1) << 30);
  EXPECT_EQ(budget.available_bytes(), std::numeric_limits<size_t>::max());
  budget.release(a, 1 << 30);
  budget.unregister_client(a);
}

}  // namespace
}  // namespace turbo::memory
