#include <gtest/gtest.h>

#include "common/rng.h"
#include "gpusim/interpreter.h"

namespace turbo::gpusim {
namespace {

DeviceSpec spec() { return DeviceSpec::rtx2060(); }

WarpVec iota(float base = 0.0f) {
  WarpVec v;
  for (int i = 0; i < kWarpSize; ++i) v[i] = base + static_cast<float>(i);
  return v;
}

// ---------------------------------------------------------- instructions --

TEST(Interpreter, FAddLaneSemantics) {
  std::vector<Instr> prog = {Instr::fadd(2, 0, 1)};
  const auto r = run_warp_program(prog, {iota(0), iota(100)}, spec());
  for (int i = 0; i < kWarpSize; ++i) {
    EXPECT_EQ(r.registers[2][i], 100.0f + 2 * i);
  }
}

TEST(Interpreter, FMulAndFMax) {
  std::vector<Instr> prog = {Instr::fmul(2, 0, 1), Instr::fmax(3, 0, 1)};
  const auto r = run_warp_program(prog, {iota(0), iota(-15)}, spec());
  for (int i = 0; i < kWarpSize; ++i) {
    EXPECT_EQ(r.registers[2][i], static_cast<float>(i) * (i - 15.0f));
    EXPECT_EQ(r.registers[3][i], std::max<float>(i, i - 15.0f));
  }
}

TEST(Interpreter, ShuffleSemanticsMatchWarpHelpers) {
  std::vector<Instr> prog = {Instr::shfl_xor(1, 0, 4),
                             Instr::shfl_down(2, 0, 7)};
  const auto r = run_warp_program(prog, {iota()}, spec());
  const WarpVec expect_xor = shfl_xor(iota(), 4);
  const WarpVec expect_down = shfl_down(iota(), 7);
  for (int i = 0; i < kWarpSize; ++i) {
    EXPECT_EQ(r.registers[1][i], expect_xor[i]);
    EXPECT_EQ(r.registers[2][i], expect_down[i]);
  }
}

TEST(Interpreter, MovBroadcasts) {
  std::vector<Instr> prog = {Instr::mov(0, 2.5f)};
  const auto r = run_warp_program(prog, {}, spec());
  for (int i = 0; i < kWarpSize; ++i) EXPECT_EQ(r.registers[0][i], 2.5f);
}

TEST(Interpreter, RegisterFileGrowsOnDemand) {
  std::vector<Instr> prog = {Instr::mov(17, 1.0f), Instr::fadd(18, 17, 17)};
  const auto r = run_warp_program(prog, {}, spec());
  ASSERT_GE(r.registers.size(), 19u);
  EXPECT_EQ(r.registers[18][0], 2.0f);
}

// ------------------------------------------------------------- scoreboard --

TEST(Interpreter, DependentChainPaysFullLatency) {
  // add -> add -> add on the same register: each waits for the previous.
  std::vector<Instr> prog = {Instr::fadd(0, 0, 0), Instr::fadd(0, 0, 0),
                             Instr::fadd(0, 0, 0)};
  const auto r = run_warp_program(prog, {WarpVec::filled(1.0f)}, spec());
  EXPECT_DOUBLE_EQ(r.cycles, 3 * spec().alu_latency);
}

TEST(Interpreter, IndependentInstructionsPipeline) {
  // Three adds on disjoint registers: issue-limited, one latency exposed.
  std::vector<Instr> prog = {Instr::fadd(3, 0, 0), Instr::fadd(4, 1, 1),
                             Instr::fadd(5, 2, 2)};
  const auto r = run_warp_program(
      prog, {WarpVec::filled(1), WarpVec::filled(2), WarpVec::filled(3)},
      spec());
  EXPECT_DOUBLE_EQ(r.cycles, 2 * spec().alu_issue + spec().alu_latency);
}

TEST(Interpreter, ShuffleLatencyHidesBehindIndependentWork) {
  // A shuffle followed by an unrelated add: the add issues in the shuffle's
  // shadow, total = shuffle path.
  std::vector<Instr> prog = {Instr::shfl_xor(2, 0, 1), Instr::fadd(3, 1, 1)};
  const auto r = run_warp_program(
      prog, {WarpVec::filled(1), WarpVec::filled(2)}, spec());
  EXPECT_DOUBLE_EQ(r.cycles, spec().shfl_latency);
}

// ----------------------------------------------- Figure 4 as programs -----

class ReduceProgramParam : public ::testing::TestWithParam<int> {};

TEST_P(ReduceProgramParam, BothStrategiesComputeTheWarpSum) {
  const int x = GetParam();
  Rng rng(static_cast<uint64_t>(x));
  std::vector<WarpVec> init;
  std::vector<double> expected;
  for (int r = 0; r < x; ++r) {
    WarpVec v;
    double sum = 0;
    for (int i = 0; i < kWarpSize; ++i) {
      v[i] = static_cast<float>(rng.uniform(-1, 1));
      sum += v[i];
    }
    init.push_back(v);
    expected.push_back(sum);
  }

  for (const auto& prog :
       {make_reduce_chain_program(x), make_reduce_interleaved_program(x)}) {
    const auto result = run_warp_program(prog, init, spec());
    for (int r = 0; r < x; ++r) {
      for (int i = 0; i < kWarpSize; ++i) {
        ASSERT_NEAR(result.registers[static_cast<size_t>(r)][i],
                    expected[static_cast<size_t>(r)], 1e-4);
      }
    }
  }
}

TEST_P(ReduceProgramParam, InterleavingIsNeverSlower) {
  const int x = GetParam();
  const auto chain = run_warp_program(make_reduce_chain_program(x),
                                      {WarpVec::filled(1)}, spec());
  const auto inter = run_warp_program(make_reduce_interleaved_program(x),
                                      {WarpVec::filled(1)}, spec());
  EXPECT_LE(inter.cycles, chain.cycles);
}

INSTANTIATE_TEST_SUITE_P(XWidths, ReduceProgramParam,
                         ::testing::Values(1, 2, 3, 4, 8));

TEST(ReducePrograms, InterleavingWinsGrowWithX) {
  // The Figure 4 claim, instruction-derived: per-row cycles fall as X rows
  // interleave, and X = 1 degenerates to the chain.
  const auto s = spec();
  const double chain1 =
      run_warp_program(make_reduce_chain_program(1), {}, s).cycles;
  const double inter1 =
      run_warp_program(make_reduce_interleaved_program(1), {}, s).cycles;
  EXPECT_DOUBLE_EQ(chain1, inter1);

  double prev_per_row = chain1;
  for (int x : {2, 4, 8}) {
    const double per_row =
        run_warp_program(make_reduce_interleaved_program(x), {}, s).cycles /
        x;
    EXPECT_LT(per_row, prev_per_row);
    prev_per_row = per_row;
  }
  // The chain strategy gains almost nothing from more rows (only row
  // boundaries overlap by one instruction).
  const double chain4_per_row =
      run_warp_program(make_reduce_chain_program(4), {}, s).cycles / 4;
  EXPECT_NEAR(chain4_per_row, chain1, 0.05 * chain1);
  const double inter4_per_row =
      run_warp_program(make_reduce_interleaved_program(4), {}, s).cycles / 4;
  EXPECT_LT(inter4_per_row, 0.7 * chain4_per_row);
}

TEST(ReducePrograms, InterpreterAgreesWithAnalyticCostModel) {
  // The hand-charged warp_all_reduce and the instruction-level scoreboard
  // must agree on the chain case (X = 1): 5 steps of SHFL+FADD latency.
  const auto s = spec();
  CycleCounter cc(s);
  std::vector<WarpVec> vecs(1, WarpVec::filled(1.0f));
  warp_all_reduce(vecs, ReduceOp::kSum, cc);
  const double program_cycles =
      run_warp_program(make_reduce_chain_program(1), {}, s).cycles;
  EXPECT_NEAR(cc.cycles(), program_cycles, 1e-9);
}

}  // namespace
}  // namespace turbo::gpusim
