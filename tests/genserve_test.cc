#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <map>
#include <mutex>
#include <thread>
#include <vector>

#include "common/check.h"
#include "common/rng.h"
#include "genserve/generation_server.h"
#include "genserve/kv_cache_pool.h"
#include "model/decoder.h"
#include "model/encoder.h"

namespace turbo::genserve {
namespace {

model::ModelConfig tiny() { return model::ModelConfig::tiny(2, 32, 2, 64, 50); }

KvPoolOptions small_pool() {
  KvPoolOptions o;
  o.block_tokens = 4;
  o.blocks_per_slab = 8;
  return o;
}

serving::GenerationRequest make_request(Rng& rng, int64_t id, int src_len,
                                        int max_new) {
  serving::GenerationRequest r;
  r.id = id;
  r.src_tokens = rng.token_ids(src_len, 50);
  r.max_new_tokens = max_new;
  r.bos_id = 1;
  r.eos_id = 2;
  return r;
}

// ---------------------------------------------------------------------------
// KvCachePool
// ---------------------------------------------------------------------------

TEST(KvCachePool, AdmitGrowReleaseAccounting) {
  KvCachePool pool(tiny(), small_pool());
  EXPECT_EQ(pool.bytes_in_use(), 0u);
  EXPECT_EQ(pool.active_sequences(), 0);

  // bt=4, L=2: s_src=6 -> 2 cross blocks/layer, max_new=8 -> reserve
  // 2 self blocks/layer; admit materializes cross + 1 self per layer.
  auto seq = pool.admit(7, /*s_src=*/6, /*max_new_tokens=*/8);
  EXPECT_EQ(pool.blocks_reserved(), 8u);
  EXPECT_EQ(pool.blocks_in_use(), 6u);
  EXPECT_EQ(pool.active_sequences(), 1);
  EXPECT_EQ(seq->capacity_tokens(), 4);

  // Growth within the first block is free; crossing the boundary adds one
  // block per layer.
  pool.ensure_token(*seq, 3);
  EXPECT_EQ(pool.blocks_in_use(), 6u);
  pool.ensure_token(*seq, 4);
  EXPECT_EQ(pool.blocks_in_use(), 8u);
  EXPECT_EQ(seq->capacity_tokens(), 8);
  EXPECT_LE(pool.blocks_in_use(), pool.blocks_reserved());

  const size_t peak = pool.stats().peak_device_bytes;
  EXPECT_GT(peak, 0u);

  // Release: everything returns, empty slabs are freed, footprint drops.
  seq.reset();
  EXPECT_EQ(pool.blocks_in_use(), 0u);
  EXPECT_EQ(pool.blocks_reserved(), 0u);
  EXPECT_EQ(pool.active_sequences(), 0);
  EXPECT_EQ(pool.stats().current_device_bytes, 0u);
  EXPECT_EQ(pool.num_slabs(), 0);
  EXPECT_EQ(pool.stats().peak_device_bytes, peak);
}

TEST(KvCachePool, CapacityIsNeverExceeded) {
  KvPoolOptions opts = small_pool();
  KvCachePool probe(tiny(), small_pool());
  opts.max_bytes = 8 * probe.block_bytes();  // exactly one slab
  KvCachePool pool(tiny(), opts);

  ASSERT_TRUE(pool.can_admit(6, 8));  // needs all 8 blocks
  auto seq = pool.admit(1, 6, 8);
  EXPECT_FALSE(pool.can_admit(1, 1));
  EXPECT_THROW(pool.admit(2, 1, 1), CheckError);

  seq.reset();
  EXPECT_TRUE(pool.can_admit(6, 8));
  auto seq2 = pool.admit(3, 6, 8);
  EXPECT_LE(pool.stats().current_device_bytes, opts.max_bytes);
}

TEST(KvCachePool, SequencesDoNotAlias) {
  const auto config = tiny();
  KvCachePool pool(config, small_pool());
  auto a = pool.admit(1, 5, 8);
  auto b = pool.admit(2, 3, 8);

  const int H = config.hidden;
  for (int layer = 0; layer < config.num_layers; ++layer) {
    for (int t = 0; t < 8; ++t) {
      pool.ensure_token(*a, t);
      pool.ensure_token(*b, t);
      std::fill(a->self_k(layer, t), a->self_k(layer, t) + H, 1.0f);
      std::fill(b->self_k(layer, t), b->self_k(layer, t) + H, 2.0f);
      std::fill(a->self_v(layer, t), a->self_v(layer, t) + H, 3.0f);
      std::fill(b->self_v(layer, t), b->self_v(layer, t) + H, 4.0f);
    }
    for (int s = 0; s < a->src_len(); ++s) {
      std::fill(a->cross_k(layer, s), a->cross_k(layer, s) + H, 5.0f);
    }
    for (int s = 0; s < b->src_len(); ++s) {
      std::fill(b->cross_k(layer, s), b->cross_k(layer, s) + H, 6.0f);
    }
  }
  for (int layer = 0; layer < config.num_layers; ++layer) {
    for (int t = 0; t < 8; ++t) {
      EXPECT_EQ(a->self_k(layer, t)[0], 1.0f);
      EXPECT_EQ(b->self_k(layer, t)[H - 1], 2.0f);
      EXPECT_EQ(a->self_v(layer, t)[0], 3.0f);
      EXPECT_EQ(b->self_v(layer, t)[H - 1], 4.0f);
    }
    for (int s = 0; s < a->src_len(); ++s) {
      EXPECT_EQ(a->cross_k(layer, s)[0], 5.0f);
    }
    for (int s = 0; s < b->src_len(); ++s) {
      EXPECT_EQ(b->cross_k(layer, s)[0], 6.0f);
    }
  }
}

// ---------------------------------------------------------------------------
// Step decoding over pool caches matches whole-sentence greedy decode
// ---------------------------------------------------------------------------

TEST(StepDecoding, PooledGreedyMatchesBeamOneDecode) {
  const auto config = tiny();
  model::Seq2SeqDecoder decoder(config, 29);
  Rng rng(11);
  const int s_src = 7;
  const int max_new = 10;
  Tensor memory = Tensor::owned(Shape{s_src, config.hidden});
  rng.fill_normal(memory.data<float>(), static_cast<size_t>(memory.numel()),
                  0.0f, 1.0f);

  const auto reference = decoder.decode(memory, max_new, 1, 2, 1);

  KvCachePool pool(config, small_pool());
  auto kv = pool.admit(1, s_src, max_new);
  decoder.init_cross_attention(memory, *kv);

  std::vector<int> generated;
  int last = 1;  // BOS
  std::vector<float> logits(static_cast<size_t>(config.vocab));
  for (int t = 0; t < max_new; ++t) {
    pool.ensure_token(*kv, t);
    decoder.step({{last, t, kv.get()}}, logits.data());
    const int token = static_cast<int>(
        std::max_element(logits.begin(), logits.end()) - logits.begin());
    if (token == 2) break;
    generated.push_back(token);
    last = token;
  }

  // reference.tokens = [BOS, content...]
  ASSERT_GE(reference.tokens.size(), 1u);
  const std::vector<int> ref_content(reference.tokens.begin() + 1,
                                     reference.tokens.end());
  EXPECT_EQ(generated, ref_content);
}

// ---------------------------------------------------------------------------
// Pooled CoW beam search is bit-identical to the DenseKvCache path
// ---------------------------------------------------------------------------

TEST(PooledBeamDecode, BitIdenticalToDenseAcrossBeamSizes) {
  const auto config = tiny();
  model::Seq2SeqDecoder decoder(config, 29);
  Rng rng(13);
  const int s_src = 7;
  const int max_len = 12;
  Tensor memory = Tensor::owned(Shape{s_src, config.hidden});
  rng.fill_normal(memory.data<float>(), static_cast<size_t>(memory.numel()),
                  0.0f, 1.0f);

  for (const int beam : {1, 2, 3}) {
    const auto dense = decoder.decode(memory, max_len, 1, 2, beam);

    KvCachePool pool(config, small_pool());
    PooledBeamKv factory(&pool);
    const auto pooled = decoder.decode(memory, max_len, 1, 2, beam, &factory);

    // Same cache contents, same comparisons, same beam: tokens and the
    // accumulated log-probability must match bit for bit.
    EXPECT_EQ(pooled.tokens, dense.tokens) << "beam " << beam;
    EXPECT_EQ(pooled.log_prob, dense.log_prob) << "beam " << beam;
    if (beam >= 2) {
      EXPECT_GT(pool.forks(), 0u);
    }
    // decode() released every beam: the pool drains to zero.
    EXPECT_EQ(pool.active_sequences(), 0);
    EXPECT_EQ(pool.stats().current_device_bytes, 0u);
  }
}

TEST(PooledBeamDecode, ForkedStepLogitsMatchDenseExactly) {
  // Drive a dense cache and a pooled cache in lockstep through a scripted
  // fork, comparing every step's logits bitwise. After the fork the two
  // branches overwrite different suffixes, so the pooled path must CoW
  // exactly where the dense deep copy diverged.
  const auto config = tiny();
  model::Seq2SeqDecoder decoder(config, 31);
  Rng rng(17);
  const int s_src = 6;
  const int max_len = 10;
  const int vocab = config.vocab;
  Tensor memory = Tensor::owned(Shape{s_src, config.hidden});
  rng.fill_normal(memory.data<float>(), static_cast<size_t>(memory.numel()),
                  0.0f, 1.0f);

  model::DenseKvCache dense_root(config, max_len, s_src);
  decoder.init_cross_attention(memory, dense_root);
  KvCachePool pool(config, small_pool());
  auto pooled_root = pool.admit(1, s_src, max_len);
  decoder.init_cross_attention(memory, *pooled_root);

  std::vector<float> dense_logits(static_cast<size_t>(vocab));
  std::vector<float> pooled_logits(static_cast<size_t>(vocab));
  auto step_pair = [&](model::KvCacheView& dense, SequenceKv& pooled,
                       int token, int t) {
    pool.ensure_token(pooled, t);
    decoder.step({{token, t, &dense}}, dense_logits.data());
    decoder.step({{token, t, &pooled}}, pooled_logits.data());
    for (int i = 0; i < vocab; ++i) {
      ASSERT_EQ(pooled_logits[static_cast<size_t>(i)],
                dense_logits[static_cast<size_t>(i)])
          << "step " << t << " logit " << i;
    }
  };

  // Shared history: 5 steps (crosses the 4-token block boundary).
  std::vector<int> history = {1, 5, 9, 13, 17};
  for (int t = 0; t < static_cast<int>(history.size()); ++t) {
    step_pair(dense_root, *pooled_root, history[static_cast<size_t>(t)], t);
  }

  model::DenseKvCache dense_fork(dense_root);  // deep copy
  auto pooled_fork = pool.fork(*pooled_root, 2);
  EXPECT_GT(pool.blocks_in_use(), 0u);
  pool.check_invariants();

  // Divergent suffixes: parent and fork write different tokens into the
  // same positions; each pooled branch must match its dense twin.
  const int t0 = static_cast<int>(history.size());
  for (int k = 0; k < 4; ++k) {
    step_pair(dense_root, *pooled_root, 20 + k, t0 + k);
    step_pair(dense_fork, *pooled_fork, 30 + k, t0 + k);
  }
  EXPECT_GT(pool.cow_copies(), 0u);
  pool.check_invariants();

  pooled_fork.reset();
  pooled_root.reset();
  EXPECT_EQ(pool.stats().current_device_bytes, 0u);
}

// ---------------------------------------------------------------------------
// GenerationScheduler invariants
// ---------------------------------------------------------------------------

TEST(GenerationScheduler, RespectsMaxActiveAndServesEveryoneOnce) {
  GenServerOptions options;
  options.pool = small_pool();
  options.scheduler.max_active = 2;
  GenerationServer server(tiny(), options, 29);

  Rng rng(3);
  const int n = 6;
  for (int i = 0; i < n; ++i) {
    server.submit(make_request(rng, i, 3 + i, 6));
  }

  int max_seen_active = 0;
  server.set_step_observer([&](const StepStats& s) {
    max_seen_active = std::max(max_seen_active, s.active);
  });
  const auto responses = server.run_to_completion();

  EXPECT_LE(max_seen_active, 2);
  EXPECT_EQ(responses.size(), static_cast<size_t>(n));
  std::vector<int64_t> ids;
  for (const auto& r : responses) ids.push_back(r.request_id);
  std::sort(ids.begin(), ids.end());
  for (int i = 0; i < n; ++i) EXPECT_EQ(ids[static_cast<size_t>(i)], i);
  EXPECT_EQ(server.scheduler().total_enqueued(), static_cast<size_t>(n));
  EXPECT_EQ(server.scheduler().total_admitted(), static_cast<size_t>(n));
  EXPECT_EQ(server.scheduler().total_retired(), static_cast<size_t>(n));
  EXPECT_TRUE(server.idle());
  EXPECT_EQ(server.pool().active_sequences(), 0);
  EXPECT_EQ(server.pool().stats().current_device_bytes, 0u);
}

TEST(GenerationScheduler, PoolCapacityStagesAdmission) {
  GenServerOptions options;
  options.pool = small_pool();
  // One slab: exactly one (s_src<=4 ? cross 1 : 2, max_new 8) sequence.
  {
    KvCachePool probe(tiny(), small_pool());
    options.pool.max_bytes = 8 * probe.block_bytes();
  }
  options.scheduler.max_active = 4;
  GenerationServer server(tiny(), options, 29);

  Rng rng(4);
  for (int i = 0; i < 3; ++i) server.submit(make_request(rng, i, 6, 8));

  int max_seen_active = 0;
  size_t max_device_bytes = 0;
  server.set_step_observer([&](const StepStats& s) {
    max_seen_active = std::max(max_seen_active, s.active);
    max_device_bytes = std::max(max_device_bytes, s.kv_device_bytes);
  });
  const auto responses = server.run_to_completion();
  EXPECT_EQ(responses.size(), 3u);
  EXPECT_EQ(max_seen_active, 1);  // capacity admits one at a time
  EXPECT_LE(max_device_bytes, options.pool.max_bytes);
}

// ---------------------------------------------------------------------------
// Iteration-level batching must not change any sequence's output
// ---------------------------------------------------------------------------

TEST(GenerationServer, BatchedResultsMatchSoloRuns) {
  const auto config = tiny();
  Rng rng(5);
  std::vector<serving::GenerationRequest> requests;
  for (int i = 0; i < 5; ++i) {
    requests.push_back(make_request(rng, i, 3 + 2 * i, 8));
  }

  // Solo: one server per request.
  std::map<int64_t, std::vector<int>> solo;
  for (const auto& r : requests) {
    GenServerOptions options;
    options.pool = small_pool();
    GenerationServer server(config, options, 29);
    server.submit(r);
    const auto responses = server.run_to_completion();
    ASSERT_EQ(responses.size(), 1u);
    solo[r.id] = responses[0].tokens;
  }

  // Batched: all through one server with iteration-level batching.
  GenServerOptions options;
  options.pool = small_pool();
  options.scheduler.max_active = 3;
  GenerationServer server(config, options, 29);
  for (const auto& r : requests) server.submit(r);
  const auto responses = server.run_to_completion();
  ASSERT_EQ(responses.size(), requests.size());
  for (const auto& resp : responses) {
    EXPECT_EQ(resp.tokens, solo[resp.request_id])
        << "request " << resp.request_id;
  }
}

TEST(GenerationServer, PrefixSharingDoesNotChangeOutputs) {
  // Requests repeating the same prompt take the sharing fast path (mapped
  // cross blocks, encoder skipped); their tokens must match a server with
  // sharing disabled exactly.
  const auto config = tiny();
  Rng rng(19);
  std::vector<serving::GenerationRequest> requests;
  const auto shared_src = rng.token_ids(9, 50);
  for (int i = 0; i < 6; ++i) {
    auto r = make_request(rng, i, 3 + i, 6);
    if (i % 2 == 0) r.src_tokens = shared_src;  // ids 0, 2, 4 share a prompt
    requests.push_back(std::move(r));
  }

  std::map<int64_t, std::vector<int>> reference;
  {
    GenServerOptions options;
    options.pool = small_pool();
    options.pool.enable_prefix_sharing = false;
    options.scheduler.max_active = 6;
    GenerationServer server(config, options, 29);
    for (const auto& r : requests) server.submit(r);
    for (const auto& resp : server.run_to_completion()) {
      reference[resp.request_id] = resp.tokens;
    }
    EXPECT_EQ(server.pool().prefix_hits(), 0u);
  }

  GenServerOptions options;
  options.pool = small_pool();
  options.scheduler.max_active = 6;
  GenerationServer server(config, options, 29);
  int shared_admits = 0;
  server.set_step_observer(
      [&](const StepStats& s) { shared_admits += s.admitted_shared; });
  for (const auto& r : requests) server.submit(r);
  const auto responses = server.run_to_completion();
  ASSERT_EQ(responses.size(), requests.size());
  for (const auto& resp : responses) {
    EXPECT_EQ(resp.tokens, reference[resp.request_id])
        << "request " << resp.request_id;
  }
  EXPECT_EQ(server.pool().prefix_hits(), 2u);  // requests 2 and 4
  EXPECT_EQ(shared_admits, 2);
  server.pool().check_invariants();
  EXPECT_EQ(server.pool().stats().current_device_bytes, 0u);
}

// ---------------------------------------------------------------------------
// AsyncGenerationServer end-to-end streaming
// ---------------------------------------------------------------------------

TEST(AsyncGenerationServer, StreamsAndResolvesConcurrentRequests) {
  GenServerOptions options;
  options.pool = small_pool();
  options.scheduler.max_active = 8;
  auto engine = std::make_unique<GenerationServer>(tiny(), options, 29);
  AsyncGenerationServer server(std::move(engine));

  struct Stream {
    std::vector<int> tokens;  // streamed content tokens (EOS excluded)
    std::vector<int> steps;
    int last_count = 0;
  };
  std::mutex stream_mutex;
  std::map<int64_t, Stream> streams;

  Rng rng(6);
  const int n = 10;
  std::vector<serving::GenerationRequest> requests;
  std::vector<std::future<serving::GenerationResponse>> futures;
  for (int i = 0; i < n; ++i) {
    requests.push_back(make_request(rng, i, 3 + (i % 5) * 2, 5 + (i % 3) * 3));
  }
  for (const auto& r : requests) {
    futures.push_back(server.submit(
        r, [&, eos = r.eos_id](int64_t id, int token, int step, bool last) {
          std::lock_guard<std::mutex> lock(stream_mutex);
          auto& s = streams[id];
          if (token != eos) s.tokens.push_back(token);
          s.steps.push_back(step);
          if (last) ++s.last_count;
        }));
  }

  for (int i = 0; i < n; ++i) {
    const auto resp = futures[static_cast<size_t>(i)].get();
    EXPECT_EQ(resp.request_id, i);
    EXPECT_GE(resp.steps, 1);
    EXPECT_LE(static_cast<int>(resp.tokens.size()),
              requests[static_cast<size_t>(i)].max_new_tokens);
    std::lock_guard<std::mutex> lock(stream_mutex);
    const auto& s = streams[i];
    // Streamed content tokens match the final response, in order, with
    // exactly one is_last and strictly increasing step indices.
    EXPECT_EQ(s.tokens, resp.tokens);
    EXPECT_EQ(s.last_count, 1);
    for (size_t k = 1; k < s.steps.size(); ++k) {
      EXPECT_EQ(s.steps[k], s.steps[k - 1] + 1);
    }
  }
  server.shutdown();
  EXPECT_EQ(server.served(), static_cast<size_t>(n));
  const auto snapshot = server.pool_snapshot();
  EXPECT_EQ(snapshot.active_sequences, 0);
  EXPECT_EQ(snapshot.device_bytes, 0u);
  EXPECT_GT(snapshot.peak_device_bytes, 0u);
}

TEST(AsyncGenerationServer, RejectsSubmitAfterShutdownAndDuplicateIds) {
  GenServerOptions options;
  options.pool = small_pool();
  auto engine = std::make_unique<GenerationServer>(tiny(), options, 29);
  AsyncGenerationServer server(std::move(engine));
  Rng rng(7);

  // Hold request 1 open (its first token callback blocks the worker) so
  // the duplicate submit below cannot race with its completion.
  std::promise<void> gate;
  std::shared_future<void> gate_future = gate.get_future().share();
  std::atomic<bool> gated{false};
  auto f1 = server.submit(make_request(rng, 1, 4, 4),
                          [&, gate_future](int64_t, int, int, bool) {
                            if (!gated.exchange(true)) gate_future.wait();
                          });
  EXPECT_THROW(server.submit(make_request(rng, 1, 4, 4)), CheckError);
  gate.set_value();
  f1.get();
  server.shutdown();
  EXPECT_THROW(server.submit(make_request(rng, 2, 4, 4)), CheckError);
}

TEST(AsyncGenerationServer, RejectsNeverAdmittableRequestAtSubmit) {
  GenServerOptions options;
  options.pool = small_pool();
  {
    KvCachePool probe(tiny(), small_pool());
    options.pool.max_bytes = 8 * probe.block_bytes();  // one slab = 8 blocks
  }
  auto engine = std::make_unique<GenerationServer>(tiny(), options, 29);
  AsyncGenerationServer server(std::move(engine));
  Rng rng(8);

  // Worst case 2*(2+10) = 24 blocks > 8: impossible ever to admit. Must
  // throw on the client thread instead of wedging the queue forever.
  EXPECT_THROW(server.submit(make_request(rng, 1, 6, 40)), CheckError);
  // Out-of-vocab source tokens must also fail at submit, not crash the
  // worker mid-serving.
  auto bad = make_request(rng, 3, 4, 4);
  bad.src_tokens[0] = 9999;
  EXPECT_THROW(server.submit(std::move(bad)), CheckError);
  // A feasible request behind it still gets served.
  auto f = server.submit(make_request(rng, 2, 6, 8));
  EXPECT_EQ(f.get().request_id, 2);
  server.shutdown();
}

TEST(AsyncGenerationServer, OversubscribedPoolPreemptsWithoutGapsOrDuplicates) {
  // Concurrent submitters against a pool ~2x oversubscribed by worst-case
  // demand: the worker must preempt and requeue under load, yet every
  // request completes and every stream is gapless and duplicate-free.
  GenServerOptions options;
  options.pool = small_pool();
  {
    KvCachePool probe(tiny(), small_pool());
    options.pool.max_bytes = 3 * 8 * probe.block_bytes();  // 24 blocks
  }
  options.scheduler.max_active = 8;
  options.scheduler.optimistic_admission = true;
  auto engine = std::make_unique<GenerationServer>(tiny(), options, 29);
  AsyncGenerationServer server(std::move(engine));

  struct Stream {
    std::vector<int> tokens;
    std::vector<int> steps;
    int last_count = 0;
  };
  std::mutex stream_mutex;
  std::map<int64_t, Stream> streams;

  Rng rng(23);
  const int threads = 4;
  const int per_thread = 4;
  std::vector<serving::GenerationRequest> requests;
  for (int i = 0; i < threads * per_thread; ++i) {
    // Worst case 10 blocks each (cross 4 + self 6): any 3 in flight
    // oversubscribe the 24-block pool.
    requests.push_back(make_request(rng, i, 5 + (i % 4), 9 + (i % 3)));
  }

  std::vector<std::future<serving::GenerationResponse>> futures(
      requests.size());
  std::vector<std::thread> submitters;
  for (int tid = 0; tid < threads; ++tid) {
    submitters.emplace_back([&, tid] {
      for (int k = 0; k < per_thread; ++k) {
        const size_t idx = static_cast<size_t>(tid * per_thread + k);
        futures[idx] = server.submit(
            requests[idx], [&, eos = requests[idx].eos_id](
                               int64_t id, int token, int step, bool last) {
              std::lock_guard<std::mutex> lock(stream_mutex);
              auto& s = streams[id];
              if (token != eos) s.tokens.push_back(token);
              s.steps.push_back(step);
              if (last) ++s.last_count;
            });
      }
    });
  }
  for (auto& t : submitters) t.join();

  for (size_t i = 0; i < futures.size(); ++i) {
    const auto resp = futures[i].get();  // every request completes
    EXPECT_EQ(resp.request_id, static_cast<int64_t>(i));
    std::lock_guard<std::mutex> lock(stream_mutex);
    const auto& s = streams[static_cast<int64_t>(i)];
    // No duplicates, no gaps across preemptions: step indices are exactly
    // 0,1,2,... and the streamed tokens equal the final response.
    EXPECT_EQ(s.tokens, resp.tokens);
    EXPECT_EQ(s.last_count, 1);
    for (size_t k = 0; k < s.steps.size(); ++k) {
      EXPECT_EQ(s.steps[k], static_cast<int>(k)) << "request " << i;
    }
  }
  server.shutdown();
  EXPECT_EQ(server.served(), requests.size());
  const auto snapshot = server.pool_snapshot();
  EXPECT_EQ(snapshot.active_sequences, 0);
  EXPECT_EQ(snapshot.device_bytes, 0u);
  EXPECT_GT(snapshot.preemptions, 0u)
      << "pool was not tight enough to force preemption";
  EXPECT_EQ(snapshot.preemptions, snapshot.resumes);
}

TEST(GenerationServer, ObservedCostsOverrideAnalyticAdmission) {
  // The admission gate must switch from the analytic warm-up to measured
  // costs: an optimistic table predicts everything fits the budget; after
  // synthetic observe() measurements report ~100x slower steps, the same
  // budget admits smaller batches.
  const double budget_ms = 1.0;
  auto run_burst = [&](bool warm) {
    GenServerOptions options;
    options.pool = small_pool();
    options.scheduler.max_active = 6;
    options.scheduler.max_step_cost_ms = budget_ms;
    // Analytic stand-in: ~0.1 ms per step at any batch — far under budget.
    options.cost_table = serving::CostTable::warmup(
        [](int len, int batch) {
          return 0.05 + 0.001 * batch + 0.0001 * len;
        },
        /*max_len=*/64, /*max_batch=*/8, /*len_step=*/8);
    // The server's own steps run in microseconds and would drag the table
    // back down; freeze it so the synthetic measurements decide alone.
    options.observe_step_costs = false;
    GenerationServer server(tiny(), options, 29);
    if (warm) {
      // Synthetic fused-step measurements: big batches measured ~0.9 ms
      // per extra sequence. Repeated observations converge the EMA.
      for (int rep = 0; rep < 64; ++rep) {
        for (int batch = 1; batch <= 8; ++batch) {
          for (int len = 8; len <= 24; len += 8) {
            server.mutable_cost_table().observe(len, batch,
                                                0.2 + 0.9 * (batch - 1));
          }
        }
      }
    }
    Rng rng(12);
    for (int i = 0; i < 6; ++i) server.submit(make_request(rng, i, 4, 6));
    int max_seen_active = 0;
    server.set_step_observer([&](const StepStats& s) {
      max_seen_active = std::max(max_seen_active, s.active);
    });
    EXPECT_EQ(server.run_to_completion().size(), 6u);
    return max_seen_active;
  };

  const int analytic_batch = run_burst(/*warm=*/false);
  const int warmed_batch = run_burst(/*warm=*/true);
  EXPECT_EQ(analytic_batch, 6);  // analytic table: budget never binds
  // Warmed table: 0.2 + 0.9*(b-1) <= 1.0 ms admits at most batch 1.
  EXPECT_LT(warmed_batch, analytic_batch);
  EXPECT_EQ(warmed_batch, 1);
}

TEST(GenerationServer, StepLatencyFeedsCostTableObserve) {
  // With observe_step_costs on (the default), serving mutates the table:
  // real fused-step latencies replace the analytic stand-in.
  GenServerOptions options;
  options.pool = small_pool();
  options.scheduler.max_active = 4;
  // Absurd analytic warm-up (1 second per step) that measurements must
  // pull toward reality (microseconds).
  options.cost_table = serving::CostTable::warmup(
      [](int, int) { return 1000.0; }, /*max_len=*/64, /*max_batch=*/8,
      /*len_step=*/8);
  GenerationServer server(tiny(), options, 29);
  const double before = server.cost_table().batch_cost_ms(16, 4);
  Rng rng(13);
  for (int i = 0; i < 8; ++i) server.submit(make_request(rng, i, 6, 8));
  server.run_to_completion();
  const double after = server.cost_table().batch_cost_ms(16, 4);
  EXPECT_EQ(before, 1000.0);
  EXPECT_LT(after, before);
}

TEST(GenerationScheduler, CostTableSmallerThanMaxActiveDoesNotAbort) {
  GenServerOptions options;
  options.pool = small_pool();
  options.scheduler.max_active = 4;
  options.scheduler.max_step_cost_ms = 1e9;  // budget on, never binding
  // Warm-up grid caps at batch 2 < max_active: admission must clamp the
  // lookup, not crash.
  options.cost_table = serving::CostTable::warmup(
      [](int len, int batch) { return 0.1 + 0.01 * len * batch; }, 64, 2, 8);
  GenerationServer server(tiny(), options, 29);
  Rng rng(9);
  for (int i = 0; i < 6; ++i) server.submit(make_request(rng, i, 4, 4));
  int max_seen_active = 0;
  server.set_step_observer([&](const StepStats& s) {
    max_seen_active = std::max(max_seen_active, s.active);
  });
  EXPECT_EQ(server.run_to_completion().size(), 6u);
  EXPECT_EQ(max_seen_active, 4);
}

// ---------------------------------------------------------------------------
// Decoder-only serving over the radix tier
// ---------------------------------------------------------------------------

TEST(GenerationServer, DecoderOnlyRadixSharingDoesNotChangeOutputs) {
  // Causal requests sharing a block-aligned prompt prefix: the second wave
  // (after the first wave's retirements donated their rows) adopts cached
  // prefixes and skips their prefill steps — tokens must match a radix-off
  // server bit-exactly.
  const auto config = model::ModelConfig::tiny_causal(2, 32, 2, 64, 50);
  Rng rng(23);
  const auto system_prompt = rng.token_ids(12, 50);  // 3 blocks of 4
  std::vector<serving::GenerationRequest> wave1, wave2;
  for (int i = 0; i < 4; ++i) {
    serving::GenerationRequest r;
    r.id = i;
    r.src_tokens = system_prompt;
    const auto user = rng.token_ids(2 + i, 50);
    r.src_tokens.insert(r.src_tokens.end(), user.begin(), user.end());
    r.max_new_tokens = 5;
    r.bos_id = 1;
    r.eos_id = 2;
    wave1.push_back(r);
    r.id = 10 + i;
    wave2.push_back(std::move(r));
  }

  auto run = [&](bool radix) {
    GenServerOptions options;
    options.pool = small_pool();
    options.pool.enable_radix_tree = radix;
    options.scheduler.max_active = 4;
    GenerationServer server(config, options, 29);
    std::map<int64_t, std::vector<int>> out;
    int prefilled = 0;
    server.set_step_observer(
        [&](const StepStats& s) { prefilled += s.prefilled; });
    for (const auto& r : wave1) server.submit(r);
    for (const auto& resp : server.run_to_completion()) {
      out[resp.request_id] = resp.tokens;
    }
    for (const auto& r : wave2) server.submit(r);
    for (const auto& resp : server.run_to_completion()) {
      out[resp.request_id] = resp.tokens;
    }
    if (radix) {
      // Wave 2 repeats wave-1 prompts exactly: each request adopts the
      // donated prefix instead of re-prefilling it.
      EXPECT_GE(server.pool().radix_hits(), wave2.size());
      EXPECT_GT(server.pool().radix_hit_rows(), 0u);
      // Only the donated cache tier is left, all of it evictable.
      EXPECT_EQ(server.pool().charged_blocks(), 0u);
      EXPECT_EQ(server.pool().blocks_in_use(),
                server.pool().radix_cached_blocks());
    } else {
      EXPECT_EQ(server.pool().radix_hits(), 0u);
      EXPECT_EQ(server.pool().stats().current_device_bytes, 0u);
    }
    server.pool().check_invariants();
    return std::make_pair(out, prefilled);
  };

  const auto off = run(false);
  const auto on = run(true);
  EXPECT_EQ(on.first, off.first);  // bit-identical token streams
  EXPECT_LT(on.second, off.second);  // adopted rows skipped prefill steps
}

// ---------------------------------------------------------------------------
// Chunked prefill bit-identity (token-quantum stepping vs legacy)
// ---------------------------------------------------------------------------

TEST(GenerationServer, ChunkedPrefillBitIdenticalSeq2Seq) {
  // Quantum stepping reorders work — deferred whole-prompt encode jobs,
  // mixed decode batches, preempt-and-requeue under an oversubscribed
  // pool — but every request's token stream must match the legacy
  // encode-at-admission path bit-exactly. Two requests share a prompt so
  // the follower waits on the creator's deferred encode (cross_ready).
  const auto config = tiny();
  Rng rng(47);
  std::vector<serving::GenerationRequest> requests;
  const auto shared_src = rng.token_ids(7, 50);
  for (int i = 0; i < 6; ++i) {
    auto r = make_request(rng, i, 3 + i, 10);
    if (i == 1 || i == 4) r.src_tokens = shared_src;
    requests.push_back(std::move(r));
  }

  auto run = [&](int quantum) {
    GenServerOptions options;
    options.pool = small_pool();
    {
      KvCachePool probe(tiny(), small_pool());
      options.pool.max_bytes = 16 * probe.block_bytes();  // 2 slabs
    }
    options.scheduler.max_active = 6;
    options.scheduler.optimistic_admission = true;
    options.scheduler.step_token_quantum = quantum;
    GenerationServer server(config, options, 29);
    for (const auto& r : requests) server.submit(r);
    std::map<int64_t, std::vector<int>> out;
    for (auto& resp : server.run_to_completion()) {
      out[resp.request_id] = std::move(resp.tokens);
    }
    server.pool().check_invariants();
    EXPECT_EQ(server.pool().stats().current_device_bytes, 0u);
    return std::make_pair(std::move(out), server.pool_snapshot().preemptions);
  };

  const auto off = run(0);
  const auto on = run(4);
  ASSERT_EQ(on.first.size(), requests.size());
  EXPECT_EQ(on.first, off.first);
  EXPECT_GT(on.second, 0u) << "pool was not tight enough to preempt";
}

TEST(GenerationServer, ChunkedPrefillBitIdenticalCausalWithMidPrefillPreempt) {
  // Decoder-only: four 16-token prompts against a 16-block pool under
  // optimistic admission. Chunked prefill races all four prompts through
  // the pool at once, so at least one sequence is preempted before its
  // prompt finishes feeding (a kPreempt event with zero parked tokens)
  // and must resume mid-prefill — outputs still match the legacy
  // one-prompt-token-per-step path bit-exactly.
  const auto config = model::ModelConfig::tiny_causal(2, 32, 2, 64, 50);
  Rng rng(53);
  std::vector<serving::GenerationRequest> requests;
  for (int i = 0; i < 4; ++i) {
    requests.push_back(make_request(rng, i, 16, 6));
  }

  auto run = [&](int quantum) {
    GenServerOptions options;
    options.pool = small_pool();
    {
      KvCachePool probe(config, small_pool());
      options.pool.max_bytes = 16 * probe.block_bytes();
    }
    options.scheduler.max_active = 4;
    options.scheduler.optimistic_admission = true;
    options.scheduler.step_token_quantum = quantum;
    options.trace.enabled = true;
    GenerationServer server(config, options, 29);
    for (const auto& r : requests) server.submit(r);
    std::map<int64_t, std::vector<int>> out;
    for (auto& resp : server.run_to_completion()) {
      out[resp.request_id] = std::move(resp.tokens);
    }
    bool mid_prefill_preempt = false;
    for (const auto& span : server.trace_spans()) {
      if (span.kind == obs::SpanKind::kPreempt && span.tokens == 0) {
        mid_prefill_preempt = true;
      }
    }
    server.pool().check_invariants();
    return std::make_pair(std::move(out), mid_prefill_preempt);
  };

  const auto off = run(0);
  const auto on = run(6);
  ASSERT_EQ(on.first.size(), requests.size());
  EXPECT_EQ(on.first, off.first);
  EXPECT_TRUE(on.second) << "no sequence was preempted mid-prefill";
}

TEST(KvCachePool, PromptHashCollisionsNeverShare) {
  // Force every prompt onto one hash bucket: sharing decisions must fall
  // back to full token equality, so distinct prompts stay unshared and
  // identical prompts still share.
  const auto config = tiny();
  auto opts = small_pool();
  opts.prompt_hash_override = [](const std::vector<int>&) -> uint64_t {
    return 7;
  };
  KvCachePool pool(config, opts);
  Rng rng(31);
  const auto prompt_a = rng.token_ids(8, 50);
  auto prompt_b = prompt_a;
  prompt_b.back() += 1;  // same length, same forced hash, different tokens

  auto a = pool.admit(1, prompt_a, 4);
  EXPECT_TRUE(a->needs_cross_init());
  auto b = pool.admit(2, prompt_b, 4);
  EXPECT_TRUE(b->needs_cross_init()) << "collision must not map b onto a's "
                                        "cross blocks";
  EXPECT_EQ(pool.prefix_hits(), 0u);
  EXPECT_NE(a->cross_k(0, 0), b->cross_k(0, 0));
  a->mark_cross_ready();
  b->mark_cross_ready();

  auto c = pool.admit(3, prompt_a, 4);  // true repeat still shares
  EXPECT_FALSE(c->needs_cross_init());
  EXPECT_EQ(pool.prefix_hits(), 1u);
  EXPECT_EQ(a->cross_k(0, 0), c->cross_k(0, 0));
  pool.check_invariants();
}

TEST(GenerationScheduler, RejectsNegativeRequestIds) {
  // Negative sequence ids are the pooled-beam namespace; server requests
  // must stay non-negative so the two can never collide in the pool.
  GenServerOptions options;
  options.pool = small_pool();
  GenerationServer server(tiny(), options, 29);
  Rng rng(3);
  auto r = make_request(rng, -1, 4, 4);
  EXPECT_THROW(server.submit(r), CheckError);
}

TEST(PooledBeamDecode, BeamRootIdsMustBeNegative) {
  const auto config = tiny();
  KvCachePool pool(config, small_pool());
  EXPECT_THROW(PooledBeamKv(&pool, 0), CheckError);
  EXPECT_THROW(PooledBeamKv(&pool, 7), CheckError);
  PooledBeamKv beams(&pool, -1);  // the reserved namespace is fine
  (void)beams;
}

}  // namespace
}  // namespace turbo::genserve
