#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "common/check.h"
#include "common/rng.h"
#include "gpukernels/block_reduce.h"
#include "gpukernels/reduction_sim.h"
#include "gpusim/block.h"
#include "kernels/reduction.h"

namespace turbo::gpukernels {
namespace {

using gpusim::BlockSim;
using gpusim::DeviceSpec;
using gpusim::ReduceOp;
using gpusim::WarpVec;

std::vector<float> random_vec(Rng& rng, size_t n, float lo = -2.0f,
                              float hi = 2.0f) {
  std::vector<float> v(n);
  rng.fill_uniform(v.data(), n, lo, hi);
  return v;
}

// ----------------------------------------------------- block_reduce_xelem --

class BlockReduceParam : public ::testing::TestWithParam<int> {};

TEST_P(BlockReduceParam, SumMatchesDirectReduction) {
  const int x = GetParam();
  const auto spec = DeviceSpec::rtx2060();
  BlockSim block(spec, 128, 4096);
  Rng rng(static_cast<uint64_t>(x));

  std::vector<RowPartials> rows;
  std::vector<double> expected;
  for (int r = 0; r < x; ++r) {
    RowPartials partials(4, WarpVec::filled(0.0f));
    double sum = 0;
    for (auto& warp : partials) {
      for (int l = 0; l < gpusim::kWarpSize; ++l) {
        const float v = static_cast<float>(rng.uniform(-1, 1));
        warp[l] = v;
        sum += v;
      }
    }
    rows.push_back(std::move(partials));
    expected.push_back(sum);
  }
  const auto result = block_reduce_xelem(block, rows, ReduceOp::kSum, 0.0f);
  ASSERT_EQ(result.size(), static_cast<size_t>(x));
  for (int r = 0; r < x; ++r) {
    EXPECT_NEAR(result[static_cast<size_t>(r)],
                expected[static_cast<size_t>(r)], 1e-3);
  }
}

INSTANTIATE_TEST_SUITE_P(XWidths, BlockReduceParam,
                         ::testing::Values(1, 2, 4, 8));

TEST(BlockReduce, XElemBatchingCutsSynchronization) {
  // The paper's core claim: reducing X rows together costs far less than X
  // separate block reductions.
  const auto spec = DeviceSpec::rtx2060();
  auto cost_of = [&](int x, int repeats) {
    BlockSim block(spec, 128, 4096);
    for (int rep = 0; rep < repeats; ++rep) {
      std::vector<RowPartials> rows(
          static_cast<size_t>(x), RowPartials(4, WarpVec::filled(1.0f)));
      block_reduce_xelem(block, rows, ReduceOp::kSum, 0.0f);
    }
    return block.cycles().cycles();
  };
  const double batched = cost_of(4, 1);    // 4 rows in one call
  const double serial = cost_of(1, 4);     // 4 separate calls
  EXPECT_LT(batched, 0.55 * serial);
}

TEST(BlockReduce, MaxUsesIdentityPadding) {
  const auto spec = DeviceSpec::rtx2060();
  BlockSim block(spec, 64, 4096);
  std::vector<RowPartials> rows(1, RowPartials(2, WarpVec::filled(-3.0f)));
  rows[0][1][5] = 7.0f;
  const auto result = block_reduce_xelem(
      block, rows, ReduceOp::kMax, -std::numeric_limits<float>::infinity());
  EXPECT_EQ(result[0], 7.0f);
}

// ------------------------------------------------------------ softmax sim --

class SoftmaxSimParam
    : public ::testing::TestWithParam<std::tuple<long, long, ReductionImpl>> {
};

TEST_P(SoftmaxSimParam, NumericsMatchCpuReference) {
  const auto [rows, cols, impl] = GetParam();
  const auto spec = DeviceSpec::rtx2060();
  Rng rng(static_cast<uint64_t>(rows * 7 + cols));
  auto data = random_vec(rng, static_cast<size_t>(rows * cols), -4, 4);
  auto expected = data;
  kernels::softmax_rows(expected.data(), rows, cols, 0.125f);

  // softmax_sim internally cross-checks the lane-accurate first group
  // against the bulk result and throws on divergence.
  const auto result = softmax_sim(data.data(), rows, cols, 0.125f, impl,
                                  spec);
  EXPECT_GT(result.time_us, 0.0);
  for (size_t i = 0; i < data.size(); ++i) {
    ASSERT_NEAR(data[i], expected[i], 1e-5f);
  }
}

INSTANTIATE_TEST_SUITE_P(
    ShapesAndImpls, SoftmaxSimParam,
    ::testing::Combine(::testing::Values<long>(1, 13, 240),
                       ::testing::Values<long>(10, 100, 500),
                       ::testing::Values(ReductionImpl::kBaseline,
                                         ReductionImpl::kCudnn,
                                         ReductionImpl::kTurbo)));

TEST(SoftmaxSim, CostOnlyMatchesWithDataTiming) {
  const auto spec = DeviceSpec::rtx2060();
  Rng rng(5);
  auto data = random_vec(rng, 240 * 128);
  const auto with_data =
      softmax_sim(data.data(), 240, 128, 1.0f, ReductionImpl::kTurbo, spec);
  const auto cost_only =
      softmax_sim(nullptr, 240, 128, 1.0f, ReductionImpl::kTurbo, spec);
  EXPECT_DOUBLE_EQ(with_data.time_us, cost_only.time_us);
}

TEST(SoftmaxSim, TurboBeatsBaselineOnLargeBatches) {
  // Fig. 5: at (batch 20, seq 128) -> rows = 20*12*128, the XElem kernel
  // should be clearly ahead.
  const auto spec = DeviceSpec::v100();
  const long rows = 20L * 12 * 128, cols = 128;
  const double base =
      softmax_sim(nullptr, rows, cols, 1.0f, ReductionImpl::kBaseline, spec)
          .time_us;
  const double turbo =
      softmax_sim(nullptr, rows, cols, 1.0f, ReductionImpl::kTurbo, spec)
          .time_us;
  EXPECT_GT(base / turbo, 1.5);
}

TEST(SoftmaxSim, SmallShapesLaunchBound) {
  // Fig. 5 leftmost points: for (1, 10) everything is launch-dominated and
  // speedups hover near 1.
  const auto spec = DeviceSpec::v100();
  const long rows = 1 * 12 * 10, cols = 10;
  const double base =
      softmax_sim(nullptr, rows, cols, 1.0f, ReductionImpl::kBaseline, spec)
          .time_us;
  const double turbo =
      softmax_sim(nullptr, rows, cols, 1.0f, ReductionImpl::kTurbo, spec)
          .time_us;
  EXPECT_GT(base / turbo, 0.9);
  EXPECT_LT(base / turbo, 2.0);
}

TEST(SoftmaxSim, XElemAblationImprovesThenSaturates) {
  const auto spec = DeviceSpec::v100();
  const long rows = 4096, cols = 128;
  std::vector<double> times;
  for (int x : {1, 2, 4, 8}) {
    times.push_back(softmax_sim(nullptr, rows, cols, 1.0f,
                                ReductionImpl::kTurbo, spec, x)
                        .time_us);
  }
  EXPECT_GT(times[0], times[1]);  // X=2 beats X=1
  EXPECT_GE(times[1] * 1.05, times[3]);  // diminishing returns beyond
}

TEST(SoftmaxSim, RejectsBadShapes) {
  const auto spec = DeviceSpec::rtx2060();
  EXPECT_THROW(
      softmax_sim(nullptr, 0, 10, 1.0f, ReductionImpl::kTurbo, spec),
      CheckError);
  EXPECT_THROW(
      softmax_sim(nullptr, 10, 0, 1.0f, ReductionImpl::kTurbo, spec),
      CheckError);
}

// ---------------------------------------------------------- layernorm sim --

class LayerNormSimParam
    : public ::testing::TestWithParam<std::tuple<long, long, ReductionImpl>> {
};

TEST_P(LayerNormSimParam, NumericsMatchCpuReference) {
  const auto [rows, cols, impl] = GetParam();
  const auto spec = DeviceSpec::rtx2060();
  Rng rng(static_cast<uint64_t>(rows * 3 + cols));
  auto in = random_vec(rng, static_cast<size_t>(rows * cols));
  auto gamma = random_vec(rng, static_cast<size_t>(cols), 0.5f, 1.5f);
  auto beta = random_vec(rng, static_cast<size_t>(cols), -0.5f, 0.5f);
  std::vector<float> out(in.size()), expected(in.size());
  kernels::layernorm(expected.data(), in.data(), gamma.data(), beta.data(),
                     rows, cols);
  const auto result = layernorm_sim(out.data(), in.data(), gamma.data(),
                                    beta.data(), rows, cols, impl, spec);
  EXPECT_GT(result.time_us, 0.0);
  for (size_t i = 0; i < out.size(); ++i) {
    ASSERT_NEAR(out[i], expected[i], 1e-4f);
  }
}

INSTANTIATE_TEST_SUITE_P(
    ShapesAndImpls, LayerNormSimParam,
    ::testing::Combine(::testing::Values<long>(1, 20, 160),
                       ::testing::Values<long>(64, 768, 1000),
                       ::testing::Values(ReductionImpl::kBaseline,
                                         ReductionImpl::kTurbo)));

TEST(LayerNormSim, CudnnUnavailable) {
  const auto spec = DeviceSpec::rtx2060();
  EXPECT_THROW(layernorm_sim(nullptr, nullptr, nullptr, nullptr, 10, 64,
                             ReductionImpl::kCudnn, spec),
               CheckError);
}

TEST(LayerNormSim, TurboAheadAtLargeRowCounts) {
  // Fig. 5 bottom: modest (1.1-1.2x) but consistent gains at batch 20.
  const auto spec = DeviceSpec::v100();
  const long rows = 20 * 128, cols = 768;
  const double base = layernorm_sim(nullptr, nullptr, nullptr, nullptr, rows,
                                    cols, ReductionImpl::kBaseline, spec)
                          .time_us;
  const double turbo = layernorm_sim(nullptr, nullptr, nullptr, nullptr,
                                     rows, cols, ReductionImpl::kTurbo, spec)
                           .time_us;
  EXPECT_GT(base / turbo, 1.02);
  EXPECT_LT(base / turbo, 2.0);
}

TEST(LayerNormSim, SinglePassVarTrickHelps) {
  // Equation 1 ablation: one fused (x, x^2) reduction vs two passes.
  const auto spec = DeviceSpec::v100();
  const long rows = 2048, cols = 768;
  const double fused =
      layernorm_sim(nullptr, nullptr, nullptr, nullptr, rows, cols,
                    ReductionImpl::kTurbo, spec, 2, /*single_pass_var=*/true)
          .time_us;
  const double two_pass =
      layernorm_sim(nullptr, nullptr, nullptr, nullptr, rows, cols,
                    ReductionImpl::kTurbo, spec, 2, /*single_pass_var=*/false)
          .time_us;
  EXPECT_LT(fused, two_pass);
}

TEST(LayerNormSim, EquationOneNumericsAgreeWithTwoPass) {
  // Var(x) = E(x^2) - E^2(x) must give the same normalized output as the
  // classical two-reduction form.
  const auto spec = DeviceSpec::rtx2060();
  Rng rng(44);
  const long rows = 4, cols = 256;
  auto in = random_vec(rng, static_cast<size_t>(rows * cols));
  std::vector<float> gamma(static_cast<size_t>(cols), 1.0f);
  std::vector<float> beta(static_cast<size_t>(cols), 0.0f);
  std::vector<float> a(in.size()), b(in.size());
  layernorm_sim(a.data(), in.data(), gamma.data(), beta.data(), rows, cols,
                ReductionImpl::kTurbo, spec, 2, true);
  layernorm_sim(b.data(), in.data(), gamma.data(), beta.data(), rows, cols,
                ReductionImpl::kBaseline, spec);
  for (size_t i = 0; i < a.size(); ++i) ASSERT_NEAR(a[i], b[i], 1e-4f);
}

// --------------------------------------------------------- device scaling --

TEST(DeviceScaling, V100BeatsRtx2060OnLargeReductions) {
  const long rows = 20L * 12 * 256, cols = 256;
  for (auto impl : {ReductionImpl::kBaseline, ReductionImpl::kTurbo}) {
    const double rtx =
        softmax_sim(nullptr, rows, cols, 1.0f, impl,
                    DeviceSpec::rtx2060())
            .time_us;
    const double v100 =
        softmax_sim(nullptr, rows, cols, 1.0f, impl, DeviceSpec::v100())
            .time_us;
    EXPECT_LT(v100, rtx);
  }
}

TEST(DeviceScaling, TinyKernelsLaunchBoundOnBothDevices) {
  for (const auto& spec : {DeviceSpec::rtx2060(), DeviceSpec::v100()}) {
    const double t =
        softmax_sim(nullptr, 4, 8, 1.0f, ReductionImpl::kTurbo, spec)
            .time_us;
    EXPECT_GT(spec.kernel_launch_us / t, 0.5);
  }
}

TEST(SoftmaxSim, TimeScalesSublinearlyUntilDeviceFills) {
  // Doubling rows below full occupancy costs (almost) nothing; past the
  // concurrency limit it scales linearly — the wave model.
  const auto spec = DeviceSpec::rtx2060();
  const double small =
      softmax_sim(nullptr, 60, 128, 1.0f, ReductionImpl::kTurbo, spec)
          .time_us;
  const double fills =
      softmax_sim(nullptr, 240, 128, 1.0f, ReductionImpl::kTurbo, spec)
          .time_us;
  EXPECT_LT(fills / small, 1.2);
  const double beyond =
      softmax_sim(nullptr, 240 * 64, 128, 1.0f, ReductionImpl::kTurbo, spec)
          .time_us;
  EXPECT_GT(beyond / fills, 4.0);
}

}  // namespace
}  // namespace turbo::gpukernels
