#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <set>

#include "common/check.h"
#include "common/rng.h"
#include "serving/cost_table.h"
#include "serving/response_cache.h"
#include "serving/scheduler.h"
#include "serving/simulator.h"
#include "serving/workload.h"

namespace turbo::serving {
namespace {

// A synthetic but realistic cost function: latency grows superlinearly in
// length and sublinearly in batch (batching amortizes fixed overheads) —
// the qualitative shape of paper Fig. 7.
double synthetic_cost_ms(int len, int batch) {
  const double work = 0.004 * len + 0.000009 * len * len;
  return 0.8 + work * batch * (0.35 + 0.65 / batch) * 4.0;
}

CostTable make_table(int max_len = 512, int max_batch = 20) {
  return CostTable::warmup(synthetic_cost_ms, max_len, max_batch, 8);
}

std::vector<Request> make_requests(std::initializer_list<int> lengths) {
  std::vector<Request> rs;
  int64_t id = 0;
  for (int len : lengths) {
    Request r;
    r.id = id++;
    r.length = len;
    rs.push_back(std::move(r));
  }
  return rs;
}

// -------------------------------------------------------------- cost table --

TEST(CostTable, ExactAtGridPoints) {
  const auto t = make_table();
  EXPECT_NEAR(t.batch_cost_ms(8, 1), synthetic_cost_ms(8, 1), 1e-9);
  EXPECT_NEAR(t.batch_cost_ms(64, 20), synthetic_cost_ms(64, 20), 1e-9);
  EXPECT_NEAR(t.batch_cost_ms(1, 5), synthetic_cost_ms(1, 5), 1e-9);
}

TEST(CostTable, InterpolatesBetweenGridPoints) {
  const auto t = make_table();
  const double lo = t.batch_cost_ms(8, 4);
  const double hi = t.batch_cost_ms(16, 4);
  const double mid = t.batch_cost_ms(12, 4);
  EXPECT_GT(mid, lo);
  EXPECT_LT(mid, hi);
  EXPECT_NEAR(mid, (lo + hi) / 2, 1e-9);  // linear interpolation
}

TEST(CostTable, MonotoneInLengthAndBatch) {
  const auto t = make_table();
  double prev = 0;
  for (int len = 1; len <= 512; len += 13) {
    const double c = t.batch_cost_ms(len, 4);
    EXPECT_GE(c, prev);
    prev = c;
  }
  for (int b = 2; b <= 20; ++b) {
    EXPECT_GT(t.batch_cost_ms(100, b), t.batch_cost_ms(100, b - 1));
  }
}

TEST(CostTable, AmortizedCostFallsWithBatch) {
  const auto t = make_table();
  EXPECT_LT(t.amortized_cost_ms(50, 10), t.amortized_cost_ms(50, 1));
}

TEST(CostTable, AmortizedTimesBatchRecoversBatchCost) {
  // The identity Equation 2 relies on.
  const auto t = make_table();
  for (int len : {3, 77, 300}) {
    for (int b : {1, 7, 20}) {
      EXPECT_NEAR(t.amortized_cost_ms(len, b) * b, t.batch_cost_ms(len, b),
                  1e-9);
    }
  }
}

TEST(NaiveBatch, PreservesQueueOrder) {
  const auto table = make_table();
  const auto reqs = make_requests({30, 10, 50, 20});
  const auto batches = NaiveBatchScheduler(20).schedule(reqs, table);
  ASSERT_EQ(batches.size(), 1u);
  EXPECT_EQ(batches[0].request_indices, (std::vector<size_t>{0, 1, 2, 3}));
}

TEST(CostTable, ClampsBeyondMaxLen) {
  const auto t = make_table(128, 8);
  EXPECT_DOUBLE_EQ(t.batch_cost_ms(10000, 4), t.batch_cost_ms(128, 4));
}

TEST(CostTable, RejectsBadQueries) {
  const auto t = make_table(128, 8);
  EXPECT_THROW(t.batch_cost_ms(0, 1), CheckError);
  EXPECT_THROW(t.batch_cost_ms(10, 0), CheckError);
  EXPECT_THROW(t.batch_cost_ms(10, 9), CheckError);  // > max batch
}

TEST(CostTable, ObserveMovesPredictionTowardMeasurement) {
  auto t = make_table();
  const int len = 50, batch = 4;  // off-grid length
  const double before = t.batch_cost_ms(len, batch);
  const double measured = before * 2.0;
  t.observe(len, batch, measured);
  const double after = t.batch_cost_ms(len, batch);
  EXPECT_GT(after, before);
  EXPECT_LT(after, measured);
}

TEST(CostTable, RepeatedObservationsConverge) {
  auto t = make_table();
  const int len = 123, batch = 7;
  const double target = 42.0;
  for (int i = 0; i < 100; ++i) t.observe(len, batch, target);
  EXPECT_NEAR(t.batch_cost_ms(len, batch), target, 0.5);
}

TEST(CostTable, ObserveLeavesOtherBatchColumnsAlone) {
  auto t = make_table();
  const double other_before = t.batch_cost_ms(64, 9);
  t.observe(64, 3, 100.0);
  EXPECT_DOUBLE_EQ(t.batch_cost_ms(64, 9), other_before);
}

TEST(CostTable, ObserveRejectsBadInputs) {
  auto t = make_table(128, 8);
  EXPECT_THROW(t.observe(0, 1, 1.0), CheckError);
  EXPECT_THROW(t.observe(10, 0, 1.0), CheckError);
  EXPECT_THROW(t.observe(10, 9, 1.0), CheckError);
  EXPECT_THROW(t.observe(10, 1, -1.0), CheckError);
  EXPECT_THROW(t.observe(10, 1, 1.0, 0.0), CheckError);
}

TEST(CostTable, CsvRoundTrip) {
  const auto t = make_table(100, 6);
  const std::string path = "/tmp/turbo_cost_table_test.csv";
  t.save_csv(path);
  const auto loaded = CostTable::load_csv(path);
  for (int len : {1, 7, 50, 99, 100}) {
    for (int b = 1; b <= 6; ++b) {
      EXPECT_NEAR(loaded.batch_cost_ms(len, b), t.batch_cost_ms(len, b),
                  1e-9);
    }
  }
  std::remove(path.c_str());
}

// -------------------------------------------------------------- schedulers --

void expect_valid_partition(const std::vector<Batch>& batches, size_t n) {
  std::set<size_t> seen;
  for (const auto& b : batches) {
    EXPECT_GT(b.size(), 0);
    for (size_t idx : b.request_indices) {
      EXPECT_TRUE(seen.insert(idx).second) << "request scheduled twice";
    }
  }
  EXPECT_EQ(seen.size(), n);
}

TEST(NoBatch, OneRequestPerBatch) {
  const auto table = make_table();
  const auto reqs = make_requests({10, 20, 30});
  const auto batches = NoBatchScheduler().schedule(reqs, table);
  ASSERT_EQ(batches.size(), 3u);
  expect_valid_partition(batches, 3);
  for (const auto& b : batches) EXPECT_EQ(b.size(), 1);
}

TEST(NaiveBatch, PacksEverythingUpToCap) {
  const auto table = make_table();
  const auto reqs = make_requests({10, 20, 30, 40, 50});
  const auto batches = NaiveBatchScheduler(3).schedule(reqs, table);
  ASSERT_EQ(batches.size(), 2u);
  EXPECT_EQ(batches[0].size(), 3);
  EXPECT_EQ(batches[1].size(), 2);
  expect_valid_partition(batches, 5);
  EXPECT_EQ(batches[0].padded_length, 30);
  EXPECT_EQ(batches[1].padded_length, 50);
}

TEST(DpBatch, PaperExampleBeatsOneBigBatchAndNoBatch) {
  // The paper's example (§5): lengths {17, 18, 52, 63, 77}; the optimal
  // scheme packs three batches and beats both extremes.
  const auto table = make_table();
  const auto reqs = make_requests({17, 18, 52, 63, 77});
  const auto dp = DpBatchScheduler(20).schedule(reqs, table);
  const auto naive = NaiveBatchScheduler(20).schedule(reqs, table);
  const auto nobatch = NoBatchScheduler().schedule(reqs, table);
  expect_valid_partition(dp, 5);
  EXPECT_LE(scheme_cost_ms(dp), scheme_cost_ms(naive));
  EXPECT_LE(scheme_cost_ms(dp), scheme_cost_ms(nobatch));
}

TEST(DpBatch, GroupsSimilarLengthsTogether) {
  const auto table = make_table();
  const auto reqs = make_requests({100, 11, 99, 10, 101, 12});
  const auto dp = DpBatchScheduler(20).schedule(reqs, table);
  expect_valid_partition(dp, 6);
  // Short and long requests should not share a batch under this cost
  // function: padding 3 short requests to length ~100 is wasteful.
  for (const auto& b : dp) {
    int min_len = 1 << 30, max_len = 0;
    for (size_t idx : b.request_indices) {
      min_len = std::min(min_len, reqs[idx].length);
      max_len = std::max(max_len, reqs[idx].length);
    }
    EXPECT_LT(max_len - min_len, 90);
  }
}

TEST(DpBatch, RespectsMaxBatchCap) {
  const auto table = make_table();
  std::vector<Request> reqs;
  for (int i = 0; i < 50; ++i) {
    Request r;
    r.id = i;
    r.length = 20;
    reqs.push_back(r);
  }
  const auto dp = DpBatchScheduler(8).schedule(reqs, table);
  expect_valid_partition(dp, 50);
  for (const auto& b : dp) EXPECT_LE(b.size(), 8);
}

TEST(DpBatch, EmptyQueueYieldsNoBatches) {
  const auto table = make_table();
  EXPECT_TRUE(DpBatchScheduler(8).schedule({}, table).empty());
}

// Brute-force optimality: the DP must match exhaustive search over all
// contiguous partitions of the sorted request list.
class DpOptimality : public ::testing::TestWithParam<uint64_t> {};

TEST_P(DpOptimality, MatchesBruteForceOnSmallInstances) {
  Rng rng(GetParam());
  const auto table = make_table();
  const int n = 8;
  std::vector<Request> reqs;
  for (int i = 0; i < n; ++i) {
    Request r;
    r.id = i;
    r.length = static_cast<int>(rng.uniform_int(2, 500));
    reqs.push_back(r);
  }
  std::vector<int> lens;
  for (const auto& r : reqs) lens.push_back(r.length);
  std::sort(lens.begin(), lens.end());

  // Enumerate all 2^(n-1) contiguous partitions of the sorted lengths.
  double best = std::numeric_limits<double>::infinity();
  for (int mask = 0; mask < (1 << (n - 1)); ++mask) {
    double cost = 0;
    int start = 0;
    for (int i = 0; i < n; ++i) {
      const bool boundary = i == n - 1 || (mask >> i) & 1;
      if (boundary) {
        const int bs = i - start + 1;
        if (bs > 20) {
          cost = std::numeric_limits<double>::infinity();
          break;
        }
        cost += table.batch_cost_ms(lens[static_cast<size_t>(i)], bs);
        start = i + 1;
      }
    }
    best = std::min(best, cost);
  }

  const auto dp = DpBatchScheduler(20).schedule(reqs, table);
  EXPECT_NEAR(scheme_cost_ms(dp), best, best * 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Seeds, DpOptimality,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8, 9, 10));

// --------------------------------------------------------------- workload --

TEST(Workload, PoissonArrivalsSortedAndInRange) {
  WorkloadSpec spec;
  spec.rate_per_s = 200;
  spec.horizon_s = 5;
  spec.min_len = 2;
  spec.max_len = 100;
  const auto reqs = generate_poisson_workload(spec);
  EXPECT_GT(reqs.size(), 500u);  // ~1000 expected
  EXPECT_LT(reqs.size(), 1500u);
  for (size_t i = 0; i < reqs.size(); ++i) {
    EXPECT_GE(reqs[i].length, 2);
    EXPECT_LE(reqs[i].length, 100);
    if (i) {
      EXPECT_GE(reqs[i].arrival_s, reqs[i - 1].arrival_s);
    }
  }
}

TEST(Workload, DeterministicPerSeed) {
  WorkloadSpec spec;
  const auto a = generate_poisson_workload(spec);
  const auto b = generate_poisson_workload(spec);
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].arrival_s, b[i].arrival_s);
    EXPECT_EQ(a[i].length, b[i].length);
  }
}

// -------------------------------------------------------------- simulator --

TEST(Simulator, LowLoadUnsaturatedAndLatencyNearServiceTime) {
  const auto table = make_table(100, 20);
  WorkloadSpec wspec;
  wspec.rate_per_s = 20;
  wspec.horizon_s = 10;
  wspec.min_len = 2;
  wspec.max_len = 100;
  const auto arrivals = generate_poisson_workload(wspec);
  const auto result = simulate_serving(arrivals, NoBatchScheduler(), table,
                                       SimOptions{});
  EXPECT_FALSE(result.saturated);
  EXPECT_EQ(result.completed, result.arrived);
  // At 20 req/s the server idles; latency should be close to bare service.
  EXPECT_LT(result.latency_ms.mean, 4 * table.batch_cost_ms(50, 1));
}

TEST(Simulator, OverloadSaturates) {
  const auto table = make_table(100, 20);
  WorkloadSpec wspec;
  wspec.rate_per_s = 2000;
  wspec.horizon_s = 5;
  const auto arrivals = generate_poisson_workload(wspec);
  const auto result = simulate_serving(arrivals, NoBatchScheduler(), table,
                                       SimOptions{});
  EXPECT_TRUE(result.saturated);
  EXPECT_LT(result.response_rate, 0.5 * result.request_rate);
}

TEST(Simulator, DpSustainsHigherLoadThanNaiveThanNoBatch) {
  // Fig. 15 ordering at a rate past NoBatch's critical point.
  const auto table = make_table(512, 20);
  WorkloadSpec wspec;
  wspec.rate_per_s = 400;
  wspec.horizon_s = 8;
  wspec.min_len = 2;
  wspec.max_len = 100;
  const auto arrivals = generate_poisson_workload(wspec);
  SimOptions options;
  const auto nobatch =
      simulate_serving(arrivals, NoBatchScheduler(), table, options);
  const auto naive =
      simulate_serving(arrivals, NaiveBatchScheduler(20), table, options);
  const auto dp =
      simulate_serving(arrivals, DpBatchScheduler(20), table, options);
  EXPECT_GE(naive.response_rate, nobatch.response_rate);
  EXPECT_GE(dp.response_rate, naive.response_rate * 0.98);
}

TEST(Simulator, WideLengthRangeNaivePaysPaddingTax) {
  // Fig. 16: with lengths 5-500 the naive scheduler's padding overhead is
  // large; DP keeps it small.
  const auto table = make_table(512, 20);
  WorkloadSpec wspec;
  wspec.rate_per_s = 150;
  wspec.horizon_s = 8;
  wspec.min_len = 5;
  wspec.max_len = 500;
  const auto arrivals = generate_poisson_workload(wspec);
  SimOptions options;
  const auto naive =
      simulate_serving(arrivals, NaiveBatchScheduler(20), table, options);
  const auto dp =
      simulate_serving(arrivals, DpBatchScheduler(20), table, options);
  EXPECT_GT(naive.padding_overhead_frac, dp.padding_overhead_frac);
}

TEST(Simulator, LazyPolicyDelaysButStillCompletes) {
  const auto table = make_table(100, 20);
  WorkloadSpec wspec;
  wspec.rate_per_s = 50;
  wspec.horizon_s = 5;
  const auto arrivals = generate_poisson_workload(wspec);
  SimOptions hungry;
  SimOptions lazy;
  lazy.trigger = TriggerPolicy::kLazy;
  lazy.lazy_timeout_ms = 20.0;
  const auto h =
      simulate_serving(arrivals, DpBatchScheduler(20), table, hungry);
  const auto l = simulate_serving(arrivals, DpBatchScheduler(20), table, lazy);
  EXPECT_FALSE(l.saturated);
  EXPECT_EQ(l.completed, l.arrived);
  // Lazy waits to form batches, so its mean latency is at least hungry's.
  EXPECT_GE(l.latency_ms.mean, h.latency_ms.mean * 0.9);
}

TEST(Simulator, DropTimeoutShedsLoadUnderOverload) {
  const auto table = make_table(100, 20);
  WorkloadSpec wspec;
  wspec.rate_per_s = 2000;  // far past capacity
  wspec.horizon_s = 4;
  const auto arrivals = generate_poisson_workload(wspec);

  SimOptions no_drop;
  SimOptions with_drop;
  with_drop.drop_timeout_ms = 50.0;
  const auto a =
      simulate_serving(arrivals, NoBatchScheduler(), table, no_drop);
  const auto b =
      simulate_serving(arrivals, NoBatchScheduler(), table, with_drop);

  EXPECT_EQ(a.dropped, 0u);
  EXPECT_GT(b.dropped, 0u);
  // Shedding keeps served latency bounded (drops happen at scheduling time,
  // so requests admitted into a long snapshot can still overshoot, but the
  // unbounded queue growth is gone)...
  EXPECT_LT(b.latency_ms.max, a.latency_ms.max / 2);
  EXPECT_LT(b.latency_ms.mean, a.latency_ms.mean / 2);
  // ...and both runs are still (correctly) reported as saturated.
  EXPECT_TRUE(a.saturated);
  EXPECT_TRUE(b.saturated);
}

TEST(Simulator, NoDropsBelowCapacity) {
  const auto table = make_table(100, 20);
  WorkloadSpec wspec;
  wspec.rate_per_s = 30;
  wspec.horizon_s = 4;
  const auto arrivals = generate_poisson_workload(wspec);
  SimOptions options;
  options.drop_timeout_ms = 200.0;
  const auto r =
      simulate_serving(arrivals, DpBatchScheduler(20), table, options);
  EXPECT_EQ(r.dropped, 0u);
  EXPECT_EQ(r.completed, r.arrived);
}

// --------------------------------------------------------- response cache --

TEST(ResponseCache, HitAfterInsert) {
  ResponseCache cache(4);
  const std::vector<int> tokens{1, 2, 3};
  const auto key = ResponseCache::key_of(tokens);
  EXPECT_FALSE(cache.lookup(key).has_value());
  cache.insert(key, {0.5f, 0.5f});
  const auto hit = cache.lookup(key);
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ((*hit)[0], 0.5f);
  EXPECT_EQ(cache.hits(), 1u);
  EXPECT_EQ(cache.misses(), 1u);
}

TEST(ResponseCache, EvictsLeastRecentlyUsed) {
  ResponseCache cache(2);
  cache.insert(1, {1.0f});
  cache.insert(2, {2.0f});
  cache.lookup(1);         // 1 becomes most recent
  cache.insert(3, {3.0f}); // evicts 2
  EXPECT_TRUE(cache.lookup(1).has_value());
  EXPECT_FALSE(cache.lookup(2).has_value());
  EXPECT_TRUE(cache.lookup(3).has_value());
}

TEST(ResponseCache, DistinctTokenStreamsDistinctKeys) {
  EXPECT_NE(ResponseCache::key_of({1, 2, 3}), ResponseCache::key_of({3, 2, 1}));
  EXPECT_NE(ResponseCache::key_of({1}), ResponseCache::key_of({1, 1}));
}

}  // namespace
}  // namespace turbo::serving
