// Multi-model generation serving: registry-routed engines over per-model
// KV pools charging one shared slab budget.
#include <gtest/gtest.h>

#include <algorithm>
#include <future>
#include <map>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "common/check.h"
#include "common/rng.h"
#include "genserve/generation_server.h"
#include "genserve/model_bundle.h"
#include "genserve/multi_model_server.h"
#include "memory/slab_budget.h"

namespace turbo::genserve {
namespace {

model::ModelConfig tiny() { return model::ModelConfig::tiny(2, 32, 2, 64, 50); }

GenServerOptions small_engine() {
  GenServerOptions o;
  o.pool.block_tokens = 4;
  o.pool.blocks_per_slab = 4;
  o.scheduler.max_active = 4;
  return o;
}

serving::GenerationRequest make_request(Rng& rng, int64_t id, int src_len,
                                        int max_new,
                                        const std::string& model = "",
                                        int version = 0) {
  serving::GenerationRequest r;
  r.id = id;
  r.src_tokens = rng.token_ids(src_len, 50);
  r.max_new_tokens = max_new;
  r.bos_id = 1;
  r.eos_id = 2;
  r.model = model;
  r.model_version = version;
  return r;
}

// Uncontended single-model baseline over the same bundle: unbounded pool,
// worst-case admission, never a preemption.
std::map<int64_t, std::vector<int>> dedicated_reference(
    const std::shared_ptr<ModelBundle>& bundle,
    const std::vector<serving::GenerationRequest>& requests) {
  GenerationServer server(bundle, small_engine());
  for (const auto& r : requests) server.submit(r);
  std::map<int64_t, std::vector<int>> tokens;
  for (auto& resp : server.run_to_completion()) {
    tokens[resp.request_id] = std::move(resp.tokens);
  }
  return tokens;
}

// ---------------------------------------------------------------- routing --

TEST(MultiModelServer, RoutesDefaultLatestAndPinnedVersions) {
  MultiModelGenerationServer server;
  auto a1 = make_bundle("a", 1, tiny(), /*seed=*/11);
  auto a2 = make_bundle("a", 2, tiny(), /*seed=*/22);
  auto b1 = make_bundle("b", 1, tiny(), /*seed=*/33);
  server.register_bundle(a1, 0, small_engine());
  server.register_bundle(a2, 0, small_engine());
  server.register_bundle(b1, 0, small_engine());
  EXPECT_EQ(server.default_model(), "a");
  EXPECT_EQ(server.registry().size(), 3u);

  Rng rng(5);
  const auto src = rng.token_ids(7, 50);
  const auto request_for = [&](int64_t id, const std::string& model,
                               int version) {
    serving::GenerationRequest r;
    r.id = id;
    r.src_tokens = src;
    r.max_new_tokens = 6;
    r.model = model;
    r.model_version = version;
    return r;
  };
  server.submit(request_for(0, "", 0));    // default model, latest -> a:v2
  server.submit(request_for(1, "a", 1));   // pinned          -> a:v1
  server.submit(request_for(2, "a", 0));   // latest          -> a:v2
  server.submit(request_for(3, "b", 0));   // other name      -> b:v1
  std::map<int64_t, std::vector<int>> tokens;
  for (auto& resp : server.run_to_completion()) {
    tokens[resp.request_id] = std::move(resp.tokens);
  }
  ASSERT_EQ(tokens.size(), 4u);

  const auto ref_a1 = dedicated_reference(a1, {request_for(1, "", 0)});
  const auto ref_a2 = dedicated_reference(a2, {request_for(0, "", 0)});
  const auto ref_b1 = dedicated_reference(b1, {request_for(3, "", 0)});
  EXPECT_EQ(tokens.at(0), ref_a2.at(0));
  EXPECT_EQ(tokens.at(2), ref_a2.at(0));
  EXPECT_EQ(tokens.at(1), ref_a1.at(1));
  EXPECT_EQ(tokens.at(3), ref_b1.at(3));
  // Different seeds really are different models, or the checks above
  // proved nothing.
  EXPECT_NE(tokens.at(0), tokens.at(1));
}

TEST(MultiModelServer, UnknownRoutesAndDuplicateIdsThrow) {
  MultiModelGenerationServer server;
  server.register_bundle(make_bundle("a", 1, tiny(), 1), 0, small_engine());
  Rng rng(6);
  EXPECT_THROW(server.submit(make_request(rng, 0, 5, 4, "nope")), CheckError);
  EXPECT_THROW(server.submit(make_request(rng, 0, 5, 4, "a", 7)), CheckError);
  server.submit(make_request(rng, 1, 5, 4));
  EXPECT_THROW(server.submit(make_request(rng, 1, 5, 4)), CheckError);
  // The failed submits left no trace: exactly one response comes out.
  EXPECT_EQ(server.run_to_completion().size(), 1u);
}

TEST(MultiModelServer, HotRegistrationMovesTheLatestRoute) {
  MultiModelGenerationServer server;
  auto v1 = make_bundle("m", 1, tiny(), /*seed=*/101);
  server.register_bundle(v1, 0, small_engine());
  Rng rng(7);
  const auto req_v1 = make_request(rng, 0, 9, 8, "m");
  server.submit(req_v1);
  server.step();  // v1's sequence is mid-flight

  auto v2 = make_bundle("m", 2, tiny(), /*seed=*/202);
  server.register_bundle(v2, 0, small_engine());
  serving::GenerationRequest req_v2 = req_v1;
  req_v2.id = 1;
  server.submit(req_v2);  // latest is now v2; the in-flight one stays on v1

  std::map<int64_t, std::vector<int>> tokens;
  for (auto& resp : server.run_to_completion()) {
    tokens[resp.request_id] = std::move(resp.tokens);
  }
  serving::GenerationRequest probe = req_v1;
  EXPECT_EQ(tokens.at(0), dedicated_reference(v1, {probe}).at(0));
  EXPECT_EQ(tokens.at(1), dedicated_reference(v2, {probe}).at(0));
}

// ----------------------------------------------- shared budget + isolation --

TEST(MultiModelServer, CrossModelIsolationBitIdenticalUnderBudgetContention) {
  auto bundle_a = make_bundle("a", 1, tiny(), /*seed=*/71);
  auto bundle_b = make_bundle("b", 1, tiny(), /*seed=*/72);

  Rng rng(0xB07);
  std::vector<serving::GenerationRequest> reqs_a, reqs_b;
  for (int i = 0; i < 6; ++i) {
    reqs_a.push_back(make_request(rng, i, 6 + i, 12, "a"));
    reqs_b.push_back(make_request(rng, 100 + i, 5 + i, 12, "b"));
  }
  const auto ref_a = dedicated_reference(bundle_a, reqs_a);
  const auto ref_b = dedicated_reference(bundle_b, reqs_b);

  // Budget of 6 slabs (24 blocks) across both models: twelve sequences
  // whose joint demand grows far past it, so cross-model contention and
  // preemption are guaranteed.
  MultiModelOptions options;
  options.engine = small_engine();
  const size_t slab = 4ull * 2 * 4 * 32 * sizeof(float);
  options.total_kv_bytes = 6 * slab;
  MultiModelGenerationServer server(options);
  server.register_bundle(bundle_a, 3 * slab);
  server.register_bundle(bundle_b, 3 * slab);

  size_t budget_over_cap = 0;
  server.set_step_observer([&](const std::string&, int, const StepStats&) {
    if (server.budget().used_bytes() > server.budget().total_bytes()) {
      ++budget_over_cap;
    }
  });
  for (const auto& r : reqs_a) server.submit(r);
  for (const auto& r : reqs_b) server.submit(r);

  std::map<int64_t, std::vector<int>> tokens;
  for (auto& resp : server.run_to_completion()) {
    tokens[resp.request_id] = std::move(resp.tokens);
  }
  ASSERT_EQ(tokens.size(), reqs_a.size() + reqs_b.size());
  // Outputs under the shared budget — preemptions, replays, reclaims and
  // all — are bit-identical to each model's dedicated uncontended run.
  for (const auto& [id, toks] : ref_a) EXPECT_EQ(tokens.at(id), toks);
  for (const auto& [id, toks] : ref_b) EXPECT_EQ(tokens.at(id), toks);

  size_t preemptions = 0;
  for (const auto& s : server.stats()) preemptions += s.pool.preemptions;
  EXPECT_GT(preemptions, 0u) << "budget never actually contended";
  EXPECT_EQ(budget_over_cap, 0u);
  EXPECT_EQ(server.budget().used_bytes(), 0u);  // drained pools release all
  EXPECT_LE(server.budget().snapshot().peak_used_bytes,
            options.total_kv_bytes);
}

TEST(MultiModelServer, QuantumEnginesBitIdenticalUnderBudgetContention) {
  // Token-quantum engines (chunked prefill + deferred encode jobs) behind
  // the shared budget: cross-model reclaim may shed sequences mid-prefill,
  // and sequences whose deferred encode has not run yet are unpreemptible
  // — the reclaim path must tolerate partial sheds. Outputs still match
  // each model's dedicated legacy (quantum-off) run bit-exactly.
  auto bundle_a = make_bundle("a", 1, tiny(), /*seed=*/91);
  auto bundle_b = make_bundle("b", 1, tiny(), /*seed=*/92);

  Rng rng(0xC47);
  std::vector<serving::GenerationRequest> reqs_a, reqs_b;
  for (int i = 0; i < 6; ++i) {
    reqs_a.push_back(make_request(rng, i, 6 + i, 12, "a"));
    reqs_b.push_back(make_request(rng, 100 + i, 5 + i, 12, "b"));
  }
  const auto ref_a = dedicated_reference(bundle_a, reqs_a);
  const auto ref_b = dedicated_reference(bundle_b, reqs_b);

  MultiModelOptions options;
  options.engine = small_engine();
  options.engine.scheduler.step_token_quantum = 6;
  const size_t slab = 4ull * 2 * 4 * 32 * sizeof(float);
  options.total_kv_bytes = 6 * slab;
  MultiModelGenerationServer server(options);
  server.register_bundle(bundle_a, 3 * slab);
  server.register_bundle(bundle_b, 3 * slab);

  int max_charged = 0;
  server.set_step_observer(
      [&](const std::string&, int, const StepStats& s) {
        if (!s.quantum_overflow) {
          max_charged = std::max(max_charged, s.quantum_charged);
        }
      });
  for (const auto& r : reqs_a) server.submit(r);
  for (const auto& r : reqs_b) server.submit(r);

  std::map<int64_t, std::vector<int>> tokens;
  for (auto& resp : server.run_to_completion()) {
    tokens[resp.request_id] = std::move(resp.tokens);
  }
  ASSERT_EQ(tokens.size(), reqs_a.size() + reqs_b.size());
  for (const auto& [id, toks] : ref_a) EXPECT_EQ(tokens.at(id), toks);
  for (const auto& [id, toks] : ref_b) EXPECT_EQ(tokens.at(id), toks);

  size_t preemptions = 0;
  for (const auto& s : server.stats()) preemptions += s.pool.preemptions;
  EXPECT_GT(preemptions, 0u) << "budget never actually contended";
  // Per-engine quantum held on every non-overflow step.
  EXPECT_LE(max_charged, 6);
  EXPECT_GT(max_charged, 0);
  EXPECT_EQ(server.budget().used_bytes(), 0u);
}

TEST(MultiModelServer, IdleHeadroomIsBorrowedAndReclaimedByItsOwner) {
  auto bundle_a = make_bundle("a", 1, tiny(), /*seed=*/81);
  auto bundle_b = make_bundle("b", 1, tiny(), /*seed=*/82);

  MultiModelOptions options;
  options.engine = small_engine();
  options.engine.scheduler.max_active = 6;
  const size_t slab = 4ull * 2 * 4 * 32 * sizeof(float);
  options.total_kv_bytes = 8 * slab;
  MultiModelGenerationServer server(options);
  server.register_bundle(bundle_a, 4 * slab);
  server.register_bundle(bundle_b, 4 * slab);

  // Phase 1: only model a has traffic; with b idle it borrows past its
  // 4-slab guarantee.
  Rng rng(0xB0B);
  std::vector<serving::GenerationRequest> reqs_a;
  for (int i = 0; i < 10; ++i) {
    reqs_a.push_back(make_request(rng, i, 8 + (i % 4), 16, "a"));
  }
  for (const auto& r : reqs_a) server.submit(r);
  size_t a_peak = 0;
  for (int i = 0; i < 64 && !server.idle(); ++i) {
    server.step();
    a_peak = std::max(a_peak, server.stats()[0].budget_used_bytes);
    if (a_peak > 4 * slab && server.budget().available_bytes() < slab) break;
  }
  EXPECT_GT(a_peak, 4 * slab) << "model a never borrowed b's headroom";

  // Phase 2: the owner shows up. b's admissions find the budget borrowed
  // away; the server reclaims slabs from a through the preemption path and
  // every request of both models still completes, bit-identically.
  std::vector<serving::GenerationRequest> reqs_b;
  for (int i = 0; i < 4; ++i) {
    reqs_b.push_back(make_request(rng, 100 + i, 6 + i, 12, "b"));
  }
  for (const auto& r : reqs_b) server.submit(r);
  std::map<int64_t, std::vector<int>> tokens;
  for (auto& resp : server.run_to_completion()) {
    tokens[resp.request_id] = std::move(resp.tokens);
  }
  ASSERT_EQ(tokens.size(), reqs_a.size() + reqs_b.size());
  EXPECT_GT(server.total_reclaims(), 0u)
      << "b regained its guarantee without a reclaim";

  const auto ref_a = dedicated_reference(bundle_a, reqs_a);
  const auto ref_b = dedicated_reference(bundle_b, reqs_b);
  for (const auto& [id, toks] : ref_a) EXPECT_EQ(tokens.at(id), toks);
  for (const auto& [id, toks] : ref_b) EXPECT_EQ(tokens.at(id), toks);
  EXPECT_EQ(server.budget().used_bytes(), 0u);
}

TEST(MultiModelServer, ReplicatedModelBitIdenticalWithPerReplicaStats) {
  // replicas=2 behind the router: same bundle, same budget discipline —
  // outputs match the dedicated single-engine run bit-exactly, and stats()
  // reports one row per replica with the guarantee split between them.
  auto bundle = make_bundle("m", 1, tiny(), /*seed=*/41);
  Rng rng(0x2E9);
  std::vector<serving::GenerationRequest> requests;
  for (int i = 0; i < 10; ++i) {
    auto r = make_request(rng, i, 5 + i % 4, 12, "m");
    r.priority = i % 3 == 0 ? 2 : (i % 3 == 1 ? 0 : -1);
    requests.push_back(std::move(r));
  }
  const auto ref = dedicated_reference(bundle, requests);

  MultiModelOptions options;
  options.engine = small_engine();
  const size_t slab = 4ull * 2 * 4 * 32 * sizeof(float);
  options.total_kv_bytes = 4 * slab;
  options.router.use_observed_cost = false;
  MultiModelGenerationServer server(options);
  server.register_bundle(bundle, 4 * slab, /*overrides=*/{}, /*replicas=*/2);
  ASSERT_NE(server.replica_set("m", 1), nullptr);
  EXPECT_EQ(server.replica_set("m", 1)->size(), 2u);

  for (const auto& r : requests) server.submit(r);
  std::map<int64_t, std::vector<int>> tokens;
  for (auto& resp : server.run_to_completion()) {
    tokens[resp.request_id] = std::move(resp.tokens);
  }
  ASSERT_EQ(tokens.size(), requests.size());
  for (const auto& [id, toks] : ref) EXPECT_EQ(tokens.at(id), toks);

  const auto stats = server.stats();
  ASSERT_EQ(stats.size(), 2u);
  EXPECT_EQ(stats[0].label, "m:v1");
  EXPECT_EQ(stats[0].replica, 0);
  EXPECT_EQ(stats[1].label, "m:v1#1");
  EXPECT_EQ(stats[1].replica, 1);
  EXPECT_EQ(stats[0].budget_guarantee_bytes, 2 * slab);
  EXPECT_EQ(stats[1].budget_guarantee_bytes, 2 * slab);
  EXPECT_EQ(stats[0].served + stats[1].served, requests.size());
  // Both replicas actually took traffic (the router spread the load).
  EXPECT_GT(stats[0].served, 0u);
  EXPECT_GT(stats[1].served, 0u);
  EXPECT_EQ(server.budget().used_bytes(), 0u);
}

TEST(MultiModelServer, PerModelStatsBreakdown) {
  MultiModelGenerationServer server;
  server.register_bundle(make_bundle("a", 1, tiny(), 1), 0, small_engine());
  server.register_bundle(make_bundle("b", 1, tiny(), 2), 0, small_engine());
  Rng rng(9);
  server.submit(make_request(rng, 0, 6, 4, "a"));
  server.submit(make_request(rng, 1, 6, 4, "a"));
  server.submit(make_request(rng, 2, 6, 4, "b"));
  server.step();

  const auto stats = server.stats();
  ASSERT_EQ(stats.size(), 2u);
  EXPECT_EQ(stats[0].name, "a");
  EXPECT_EQ(stats[0].active, 2u);
  EXPECT_EQ(stats[0].last_step.active, 2);
  EXPECT_GT(stats[0].pool.bytes_in_use, 0u);
  EXPECT_EQ(stats[1].name, "b");
  EXPECT_EQ(stats[1].active, 1u);
  server.run_to_completion();
  const auto drained = server.stats();
  EXPECT_EQ(drained[0].served, 2u);
  EXPECT_EQ(drained[1].served, 1u);
  EXPECT_EQ(drained[0].pool.bytes_in_use, 0u);
}

// ----------------------------------------------------- decoder-only route --

TEST(MultiModelServer, DecoderOnlyBundleServesAlongsideSeq2Seq) {
  // A GPT-style bundle and a seq2seq bundle behind one router: requests
  // route by name, the causal engine runs prefill through the step loop
  // (with radix prefix sharing on repeats), and each model's outputs match
  // a dedicated single-model server over the same bundle bit-exactly.
  const auto causal_config = model::ModelConfig::tiny_causal(2, 32, 2, 64, 50);
  auto seq2seq = make_bundle("a", 1, tiny(), /*seed=*/11);
  auto gpt = make_decoder_only_bundle("g", 1, causal_config, /*seed=*/13);
  EXPECT_FALSE(seq2seq->decoder_only());
  EXPECT_TRUE(gpt->decoder_only());

  MultiModelGenerationServer server;
  server.register_bundle(seq2seq, 0, small_engine());
  server.register_bundle(gpt, 0, small_engine());

  Rng rng(17);
  const auto shared_prompt = rng.token_ids(9, 50);
  std::vector<serving::GenerationRequest> gpt_requests;
  for (int i = 0; i < 4; ++i) {
    auto r = make_request(rng, i, 6, 5, "g");
    if (i >= 2) r.src_tokens = shared_prompt;  // repeats hit the radix tier
    gpt_requests.push_back(std::move(r));
  }
  std::vector<serving::GenerationRequest> seq_requests;
  for (int i = 0; i < 2; ++i) {
    seq_requests.push_back(make_request(rng, 10 + i, 6, 5, "a"));
  }

  const auto gpt_ref = dedicated_reference(gpt, gpt_requests);
  const auto seq_ref = dedicated_reference(seq2seq, seq_requests);

  for (const auto& r : gpt_requests) server.submit(r);
  for (const auto& r : seq_requests) server.submit(r);
  std::map<int64_t, std::vector<int>> tokens;
  for (auto& resp : server.run_to_completion()) {
    tokens[resp.request_id] = std::move(resp.tokens);
  }
  ASSERT_EQ(tokens.size(), gpt_requests.size() + seq_requests.size());
  for (const auto& [id, expect] : gpt_ref) {
    EXPECT_EQ(tokens.at(id), expect) << "gpt request " << id;
  }
  for (const auto& [id, expect] : seq_ref) {
    EXPECT_EQ(tokens.at(id), expect) << "seq2seq request " << id;
  }

  const auto stats = server.stats();
  ASSERT_EQ(stats.size(), 2u);
  EXPECT_EQ(stats[0].name, "a");
  EXPECT_EQ(stats[0].served, seq_requests.size());
  EXPECT_EQ(stats[1].name, "g");
  EXPECT_EQ(stats[1].served, gpt_requests.size());
}

// ------------------------------------------------------------ async shell --

TEST(AsyncMultiModelServer, RoutesStreamsAndHotRegisters) {
  AsyncMultiModelGenerationServer server;
  auto a1 = make_bundle("a", 1, tiny(), /*seed=*/51);
  auto b1 = make_bundle("b", 1, tiny(), /*seed=*/52);
  server.register_bundle(a1, 0, small_engine()).get();
  server.register_bundle(b1, 0, small_engine()).get();

  Rng rng(10);
  std::mutex stream_mutex;
  std::map<int64_t, std::vector<int>> streamed;
  std::vector<std::future<serving::GenerationResponse>> futures;
  std::vector<serving::GenerationRequest> requests;
  for (int i = 0; i < 8; ++i) {
    requests.push_back(
        make_request(rng, i, 5 + i % 3, 6, i % 2 == 0 ? "a" : "b"));
  }
  for (const auto& r : requests) {
    futures.push_back(server.submit(
        r, [&](int64_t id, int token, int step, bool last) {
          std::lock_guard<std::mutex> lock(stream_mutex);
          auto& toks = streamed[id];
          EXPECT_EQ(static_cast<int>(toks.size()), step);
          toks.push_back(token);
          (void)last;
        }));
  }
  std::map<int64_t, std::vector<int>> tokens;
  for (auto& f : futures) {
    auto resp = f.get();
    tokens[resp.request_id] = std::move(resp.tokens);
  }
  // Hot-register a:v2 while the server is live; subsequent latest-routed
  // traffic lands on it.
  auto a2 = make_bundle("a", 2, tiny(), /*seed=*/53);
  server.register_bundle(a2, 0, small_engine()).get();
  auto late = make_request(rng, 100, 6, 5, "a");
  const auto resp_late = server.submit(late).get();
  EXPECT_EQ(resp_late.tokens, dedicated_reference(a2, {late}).at(100));

  // Unknown routes reject their future, not the process.
  auto bad = server.submit(make_request(rng, 101, 5, 4, "nope"));
  EXPECT_THROW(bad.get(), CheckError);

  server.shutdown();
  EXPECT_EQ(server.served(), requests.size() + 1);
  const auto stats = server.model_stats();
  ASSERT_EQ(stats.size(), 3u);
  size_t served = 0;
  for (const auto& s : stats) served += s.served;
  EXPECT_EQ(served, requests.size() + 1);

  // Streamed tokens match the final responses (a trailing EOS token is
  // streamed but excluded from the response).
  for (const auto& [id, toks] : tokens) {
    const auto& st = streamed.at(id);
    ASSERT_GE(st.size(), toks.size());
    EXPECT_TRUE(std::equal(toks.begin(), toks.end(), st.begin()));
  }
  for (const auto& r : requests) {
    auto bundle = r.model == "a" ? a1 : b1;
    EXPECT_EQ(tokens.at(r.id), dedicated_reference(bundle, {r}).at(r.id));
  }
}

TEST(AsyncMultiModelServer, UnregisterDrainsThenUnpins) {
  AsyncMultiModelGenerationServer server;
  auto bundle = make_bundle("m", 1, tiny(), /*seed=*/61);
  std::weak_ptr<ModelBundle> weak = bundle;
  server.register_bundle(bundle, 0, small_engine()).get();

  Rng rng(11);
  const auto request = make_request(rng, 0, 8, 10, "m");
  // Gate the unregistration on the first streamed token, so the sequence
  // is demonstrably mid-decode (admitted, not merely queued) when the
  // route disappears — that is the pin this test is about.
  std::promise<void> first_token;
  auto started = first_token.get_future();
  bool signalled = false;
  auto fut = server.submit(
      request, [&](int64_t, int, int, bool) {
        if (!signalled) {
          signalled = true;
          first_token.set_value();
        }
      });
  started.wait();
  EXPECT_TRUE(server.unregister_bundle("m", 1).get());
  EXPECT_FALSE(server.unregister_bundle("m", 1).get());
  // New traffic cannot route to the unregistered model...
  auto rejected = server.submit(make_request(rng, 1, 5, 4, "m"));
  EXPECT_THROW(rejected.get(), CheckError);
  // ...but the in-flight sequence finishes on the pinned bundle,
  // bit-identical to a dedicated run over the same weights.
  const auto resp = fut.get();
  EXPECT_GE(resp.steps, 1);
  EXPECT_EQ(resp.tokens, dedicated_reference(bundle, {request}).at(0));
  server.shutdown();
  bundle.reset();
  EXPECT_TRUE(weak.expired()) << "drained engine failed to unpin its bundle";
}

// ---------------------------------------------------------- observability --

TEST(MultiModelServer, SharedTraceRingAndRegistryAcrossEngines) {
  MultiModelOptions options;
  options.engine = small_engine();
  options.engine.trace.enabled = true;
  MultiModelGenerationServer server(options);
  server.register_bundle(make_bundle("a", 1, tiny(), /*seed=*/11), 0,
                         options.engine);
  server.register_bundle(make_bundle("b", 1, tiny(), /*seed=*/22), 0,
                         options.engine);
  ASSERT_NE(server.trace_ring(), nullptr);

  Rng rng(9);
  const int per_model = 3;
  for (int i = 0; i < per_model; ++i) {
    server.submit(make_request(rng, i, 5, 4, "a"));
    server.submit(make_request(rng, 100 + i, 5, 4, "b"));
  }
  const auto responses = server.run_to_completion();
  EXPECT_EQ(responses.size(), 2u * per_model);

  // Both engines share one ring, so the drained timeline interleaves the
  // two models' phase spans on one clock.
  bool saw_a = false, saw_b = false;
  for (const auto& s : server.trace_spans()) {
    if (std::string_view(s.model) == "a:v1") saw_a = true;
    if (std::string_view(s.model) == "b:v1") saw_b = true;
  }
  EXPECT_TRUE(saw_a);
  EXPECT_TRUE(saw_b);

  // One registry too: per-engine counters plus server-level totals, and
  // stats() is a view over it rather than a separately-maintained count.
  const auto& reg = *server.metrics();
  EXPECT_EQ(server.served_total(), 2u * per_model);
  EXPECT_EQ(reg.counter_value("gen.server.requests_completed"),
            2u * per_model);
  EXPECT_EQ(reg.counter_value("gen.a:v1.requests_completed"),
            static_cast<uint64_t>(per_model));
  EXPECT_EQ(reg.counter_value("gen.b:v1.requests_completed"),
            static_cast<uint64_t>(per_model));
  size_t served_from_stats = 0;
  for (const auto& s : server.stats()) served_from_stats += s.served;
  EXPECT_EQ(served_from_stats, 2u * per_model);
}

}  // namespace
}  // namespace turbo::genserve
