// Paged (block-iterating) attention: extent geometry, and bit-identity of
// the span path against the row-pointer path across cache backends,
// fragmented pools, CoW forks, and beam search.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstring>
#include <vector>

#include "common/check.h"
#include "common/rng.h"
#include "genserve/kv_cache_pool.h"
#include "model/decoder.h"
#include "tensor/tensor.h"

namespace turbo::genserve {
namespace {

using AttnPath = model::Seq2SeqDecoder::AttentionPath;

model::ModelConfig tiny() { return model::ModelConfig::tiny(2, 32, 2, 64, 50); }

KvPoolOptions small_pool() {
  KvPoolOptions o;
  o.block_tokens = 4;
  o.blocks_per_slab = 8;
  return o;
}

Tensor random_memory(const model::ModelConfig& config, int s_src,
                     uint64_t seed) {
  Rng rng(seed);
  Tensor memory = Tensor::owned(Shape{s_src, config.hidden});
  rng.fill_normal(memory.data<float>(), static_cast<size_t>(memory.numel()),
                  0.0f, 1.0f);
  return memory;
}

// ---------------------------------------------------------------------------
// Extent geometry
// ---------------------------------------------------------------------------

TEST(KvExtents, DenseIsOneSpanPooledIsOnePerBlock) {
  const auto config = tiny();
  const int H = config.hidden;

  model::DenseKvCache dense(config, /*max_len=*/10, /*s_src=*/6);
  std::vector<model::KvSpan> spans;
  ASSERT_TRUE(dense.self_extents(0, 7, spans));
  ASSERT_EQ(spans.size(), 1u);
  EXPECT_EQ(spans[0].rows, 7);
  EXPECT_EQ(spans[0].k, dense.self_k(0, 0));
  EXPECT_EQ(spans[0].v, dense.self_v(0, 0));
  ASSERT_TRUE(dense.cross_extents(1, spans));
  ASSERT_EQ(spans.size(), 1u);
  EXPECT_EQ(spans[0].rows, 6);
  EXPECT_EQ(spans[0].k, dense.cross_k(1, 0));

  // bt=4: 7 self rows -> spans of 4 + 3; every row lands where the row
  // accessors say it does.
  KvCachePool pool(config, small_pool());
  auto seq = pool.admit(1, /*s_src=*/6, /*max_new_tokens=*/10);
  for (int t = 0; t < 7; ++t) pool.ensure_token(*seq, t);
  ASSERT_TRUE(seq->self_extents(0, 7, spans));
  ASSERT_EQ(spans.size(), 2u);
  EXPECT_EQ(spans[0].rows, 4);
  EXPECT_EQ(spans[1].rows, 3);
  for (int t = 0; t < 7; ++t) {
    const auto& span = spans[static_cast<size_t>(t / 4)];
    EXPECT_EQ(span.k + static_cast<size_t>(t % 4) * H, seq->self_k(0, t));
    EXPECT_EQ(span.v + static_cast<size_t>(t % 4) * H, seq->self_v(0, t));
  }
  ASSERT_TRUE(seq->cross_extents(1, spans));
  ASSERT_EQ(spans.size(), 2u);
  EXPECT_EQ(spans[0].k, seq->cross_k(1, 0));
  EXPECT_EQ(spans[1].v, seq->cross_v(1, 4));
}

// ---------------------------------------------------------------------------
// Step bit-identity: {dense, pooled} x {paged, rows}
// ---------------------------------------------------------------------------

TEST(PagedAttention, StepLogitsBitIdenticalAcrossPathsAndBackends) {
  const auto config = tiny();
  model::Seq2SeqDecoder decoder(config, 29);
  const int s_src = 7;  // crosses the bt=4 cross-block boundary
  const int max_new = 10;
  const int vocab = config.vocab;
  Tensor memory = random_memory(config, s_src, 11);

  model::DenseKvCache dense(config, max_new, s_src);
  KvCachePool pool(config, small_pool());
  auto pooled = pool.admit(1, s_src, max_new);
  decoder.init_cross_attention(memory, dense);
  decoder.init_cross_attention(memory, *pooled);

  std::vector<float> ref(static_cast<size_t>(vocab));
  std::vector<float> got(static_cast<size_t>(vocab));
  int token = 1;
  for (int t = 0; t < max_new; ++t) {
    pool.ensure_token(*pooled, t);
    // Reference: dense cache through the row-pointer path.
    decoder.set_attention_path(AttnPath::kRows);
    decoder.step({{token, t, &dense}}, ref.data());
    decoder.step({{token, t, pooled.get()}}, got.data());
    EXPECT_EQ(std::memcmp(got.data(), ref.data(),
                          static_cast<size_t>(vocab) * sizeof(float)),
              0)
        << "rows/pooled vs rows/dense at step " << t;
    decoder.set_attention_path(AttnPath::kPaged);
    decoder.step({{token, t, &dense}}, got.data());
    EXPECT_EQ(std::memcmp(got.data(), ref.data(),
                          static_cast<size_t>(vocab) * sizeof(float)),
              0)
        << "paged/dense vs rows/dense at step " << t;
    decoder.step({{token, t, pooled.get()}}, got.data());
    EXPECT_EQ(std::memcmp(got.data(), ref.data(),
                          static_cast<size_t>(vocab) * sizeof(float)),
              0)
        << "paged/pooled vs rows/dense at step " << t;
    token = static_cast<int>(
        std::max_element(ref.begin(), ref.end()) - ref.begin());
  }
}

// ---------------------------------------------------------------------------
// Fragmented pool: release/re-admit scrambles physical block order
// ---------------------------------------------------------------------------

TEST(PagedAttention, FragmentedPoolBitIdenticalToDense) {
  const auto config = tiny();
  model::Seq2SeqDecoder decoder(config, 31);
  const int s_src = 5;
  const int max_new = 16;  // 4 self blocks per layer at bt=4
  const int vocab = config.vocab;
  Tensor memory = random_memory(config, s_src, 13);

  KvCachePool pool(config, small_pool());
  // Fragment: fully grow a filler sequence, then release it. Its blocks
  // return to the LIFO free list, so the next admit draws them in reversed
  // (non-monotonic) physical order.
  {
    auto filler = pool.admit(100, s_src, max_new);
    for (int t = 0; t < max_new; ++t) pool.ensure_token(*filler, t);
  }
  auto pooled = pool.admit(1, s_src, max_new);
  // Interleave growth with a second live sequence so the target's later
  // blocks scatter further.
  auto neighbor = pool.admit(2, s_src, max_new);

  decoder.init_cross_attention(memory, *pooled);
  model::DenseKvCache dense(config, max_new, s_src);
  decoder.init_cross_attention(memory, dense);

  std::vector<float> ref(static_cast<size_t>(vocab));
  std::vector<float> got(static_cast<size_t>(vocab));
  std::vector<int> pooled_tokens, dense_tokens;
  int ptoken = 1, dtoken = 1;
  for (int t = 0; t < max_new; ++t) {
    pool.ensure_token(*pooled, t);
    pool.ensure_token(*neighbor, t);
    decoder.set_attention_path(AttnPath::kPaged);
    decoder.step({{ptoken, t, pooled.get()}}, got.data());
    decoder.set_attention_path(AttnPath::kRows);
    decoder.step({{dtoken, t, &dense}}, ref.data());
    ASSERT_EQ(std::memcmp(got.data(), ref.data(),
                          static_cast<size_t>(vocab) * sizeof(float)),
              0)
        << "fragmented pooled/paged diverged from dense/rows at step " << t;
    ptoken = static_cast<int>(
        std::max_element(got.begin(), got.end()) - got.begin());
    dtoken = static_cast<int>(
        std::max_element(ref.begin(), ref.end()) - ref.begin());
    pooled_tokens.push_back(ptoken);
    dense_tokens.push_back(dtoken);
  }
  EXPECT_EQ(pooled_tokens, dense_tokens);

  // The fragmentation actually happened: the target's self spans are not
  // in ascending physical order.
  std::vector<model::KvSpan> spans;
  ASSERT_TRUE(pooled->self_extents(0, max_new, spans));
  ASSERT_EQ(spans.size(), 4u);
  bool monotonic = true;
  for (size_t i = 1; i < spans.size(); ++i) {
    if (spans[i].k < spans[i - 1].k) monotonic = false;
  }
  EXPECT_FALSE(monotonic) << "free-list reuse should scramble block order";
  pool.check_invariants();
}

// ---------------------------------------------------------------------------
// CoW forks: paged reads through shared and privately copied blocks
// ---------------------------------------------------------------------------

TEST(PagedAttention, CowForkBitIdenticalToDenseDeepCopy) {
  const auto config = tiny();
  model::Seq2SeqDecoder decoder(config, 37);
  const int s_src = 6;
  const int max_new = 10;
  const int vocab = config.vocab;
  Tensor memory = random_memory(config, s_src, 17);

  model::DenseKvCache dense_root(config, max_new, s_src);
  KvCachePool pool(config, small_pool());
  auto pooled_root = pool.admit(1, s_src, max_new);
  decoder.init_cross_attention(memory, dense_root);
  decoder.init_cross_attention(memory, *pooled_root);

  std::vector<float> ref(static_cast<size_t>(vocab));
  std::vector<float> got(static_cast<size_t>(vocab));
  auto step_pair = [&](model::KvCacheView& dense, SequenceKv& pooled,
                       int token, int t) {
    pool.ensure_token(pooled, t);
    decoder.set_attention_path(AttnPath::kRows);
    decoder.step({{token, t, &dense}}, ref.data());
    decoder.set_attention_path(AttnPath::kPaged);
    decoder.step({{token, t, &pooled}}, got.data());
    ASSERT_EQ(std::memcmp(got.data(), ref.data(),
                          static_cast<size_t>(vocab) * sizeof(float)),
              0)
        << "paged/pooled diverged from rows/dense at step " << t;
  };

  // Shared history crossing a block boundary, then fork and diverge: the
  // parent CoW-copies the tail block, the child keeps reading the shared
  // prefix through its extents.
  const std::vector<int> history = {1, 5, 9, 13, 17};
  for (int t = 0; t < static_cast<int>(history.size()); ++t) {
    step_pair(dense_root, *pooled_root, history[static_cast<size_t>(t)], t);
  }
  model::DenseKvCache dense_fork(dense_root);
  auto pooled_fork = pool.fork(*pooled_root, 2);
  const int t0 = static_cast<int>(history.size());
  for (int k = 0; k < 4; ++k) {
    step_pair(dense_root, *pooled_root, 20 + k, t0 + k);
    step_pair(dense_fork, *pooled_fork, 30 + k, t0 + k);
  }
  EXPECT_GT(pool.cow_copies(), 0u);
  pool.check_invariants();
}

// ---------------------------------------------------------------------------
// Whole decodes: greedy and beam, all four backend/path combinations
// ---------------------------------------------------------------------------

TEST(PagedAttention, GreedyAndBeamDecodeIdenticalAcrossPathsAndBackends) {
  const auto config = tiny();
  model::Seq2SeqDecoder decoder(config, 29);
  const int s_src = 7;
  const int max_len = 12;
  Tensor memory = random_memory(config, s_src, 19);

  for (const int beam : {1, 3}) {
    decoder.set_attention_path(AttnPath::kRows);
    const auto reference = decoder.decode(memory, max_len, 1, 2, beam);
    struct Variant {
      const char* name;
      AttnPath path;
      bool pooled;
    };
    const Variant variants[] = {
        {"dense/paged", AttnPath::kPaged, false},
        {"pooled/rows", AttnPath::kRows, true},
        {"pooled/paged", AttnPath::kPaged, true},
    };
    for (const auto& v : variants) {
      decoder.set_attention_path(v.path);
      KvCachePool pool(config, small_pool());
      PooledBeamKv factory(&pool);
      const auto got = decoder.decode(memory, max_len, 1, 2, beam,
                                      v.pooled ? &factory : nullptr);
      EXPECT_EQ(got.tokens, reference.tokens) << v.name << " beam " << beam;
      EXPECT_EQ(got.log_prob, reference.log_prob)
          << v.name << " beam " << beam;
      EXPECT_EQ(pool.active_sequences(), 0);
    }
    decoder.set_attention_path(AttnPath::kPaged);
  }
}

}  // namespace
}  // namespace turbo::genserve
