// Iteration-level batch scheduler for generation serving.
//
// The paper's DP scheduler (§5) partitions a queue snapshot into whole
// batches: every member enters and leaves together, so a short sequence
// waits for the longest one in its batch. Generation makes that untenable —
// output lengths differ and are unknown up front. This scheduler re-forms
// the active batch every decode step instead: finished sequences retire
// (their KV blocks return to the pool immediately) and queued sequences are
// admitted into the freed capacity, keeping the step batch full.
//
// Admission is gated on two resources:
//  * KV pool capacity — under the default worst-case policy a sequence
//    joins only if its worst-case block demand fits the pool's reservation
//    budget, so decode can never deadlock on memory. The demand is
//    marginal: a request whose prompt is already resident shares those
//    cross blocks (charged once for the whole group), so only its unshared
//    self-block budget counts. Under optimistic admission
//    (GenSchedulerOptions::optimistic_admission) a sequence joins when its
//    *current* demand fits — worst cases may oversubscribe the pool, and
//    when a running sequence's growth finds the pool exhausted the
//    scheduler preempts a victim (pluggable policy): the victim's unshared
//    blocks return to the pool, its generated tokens are parked, and it is
//    requeued to resume by replaying those tokens from its still-resident
//    cross blocks (no re-encode). Preemption only ever flows down the
//    priority order, so the strongest sequence always runs to completion —
//    no livelock;
//  * the cost table — the predicted fused-step latency at the grown batch
//    size must stay under `max_step_cost_ms` (the same cached_cost
//    dictionary the §5 DP consults, applied per iteration instead of per
//    queue snapshot; the server feeds measured fused-step latencies back
//    through CostTable::observe, so the gate and the victim policy's
//    recompute estimates track real costs instead of the analytic warm-up).
#pragma once

#include <cstddef>
#include <deque>
#include <functional>
#include <memory>
#include <vector>

#include "genserve/kv_cache_pool.h"
#include "obs/trace.h"
#include "serving/cost_table.h"
#include "serving/request.h"

namespace turbo::genserve {

// One admitted, still-decoding sequence.
struct ActiveSequence {
  serving::GenerationRequest request;
  std::unique_ptr<SequenceKv> kv;  // null while evicted (cross share dropped)
  std::vector<int> tokens;   // generated so far (excluding BOS/EOS)
  int last_token = 0;        // token to feed at the next step
  int step = 0;              // next decode position
  // Steps [0, replay) after a resume re-derive already-parked tokens: the
  // decoder rebuilds the self K/V rows bit-identically (cross K/V never
  // changed), the server asserts each replayed argmax matches the parked
  // token and must not stream it again.
  int replay = 0;
  bool finished = false;
  bool hit_max_len = false;
  double admit_s = 0.0;      // first admission (latency includes requeues)
  int64_t admit_order = 0;   // first-admission stamp, stable across requeues
  int preempt_count = 0;     // times this sequence was preempted
  uint64_t park_ticks = 0;   // when last parked (tracing only; 0 = never)
  // Rows this sequence runs in the next fused step: rows [step, step +
  // step_tokens), each fed an already-known token. 1 for a decode-ready
  // sequence; larger while a prefill or replay chunk is scheduled under
  // the token quantum. Written by prepare_step, consumed by the server.
  int step_tokens = 1;
  // Iteration stamp of the last step that ran this sequence: the quantum
  // allocator serves least-recently-stepped first, which is what bounds
  // decode starvation under long prefills.
  int64_t last_step_iter = -1;
};

struct GenSchedulerOptions {
  // How the pool-exhausted victim is chosen among sequences the requester
  // outranks (preemption never flows up the priority order).
  enum class VictimPolicy {
    kMostRecentlyAdmitted,  // LIFO: newest admission loses first
    kLowestPriority,        // request.priority, ties by admission order
    // Cheapest predicted re-derivation: fewest parked tokens weighted by
    // the cost table's per-step latency at the victim's context — measured
    // costs once the server has fed observe().
    kCheapestRecompute,
  };
  // Custom victim choice; receives the eligible candidates (every active
  // sequence the requester outranks) and returns one of them, or nullptr
  // to defer to victim_policy. Eligibility is not negotiable — it is what
  // guarantees forward progress.
  using VictimSelector =
      std::function<ActiveSequence*(const std::vector<ActiveSequence*>&)>;

  int max_active = 8;             // step-batch size cap
  double max_step_cost_ms = 0.0;  // predicted step latency cap; 0 = off
  // Token-quantum budget of one fused step (0 = legacy one-row-per-
  // sequence stepping). When set, prepare_step assembles a mixed batch of
  // decode rows plus as many pending prefill/replay chunk rows as fit the
  // quantum: every active sequence in rotation order first gets one row
  // (decode progress), then sequences with known-but-unfed tokens (causal
  // prompts mid-prefill, parked tokens replaying after a resume) are
  // deepened chunk-wise until the budget — or the cost gate — runs out.
  // Seq2seq prompt encodes cannot be split numerically (the encoder is
  // bidirectional), so they are scheduled as whole deferred jobs charged
  // src_len tokens against the same quantum; one may overflow the budget
  // only when the step would otherwise be empty (progress guarantee),
  // flagged in StepPlan::quantum_overflow.
  int step_token_quantum = 0;
  // Max rows one sequence's prefill/replay advances per extension round
  // (0 = the pool's block_tokens). Bounds how much of the quantum a single
  // long prompt can claim before the round-robin moves on.
  int prefill_chunk_tokens = 0;
  // Admit on current marginal demand instead of the worst case, absorbing
  // the oversubscription with preempt-and-requeue.
  bool optimistic_admission = false;
  // Decoder-only serving: requests are causal-LM prompts prefilled through
  // the decode loop. Admission goes through the pool's radix-aware causal
  // path (admit_causal / resume_causal), a (re)admitted sequence starts at
  // step kv->prefix_rows() instead of 0, and retiring sequences donate
  // their block-aligned fed history to the radix cache tier.
  bool causal_lm = false;
  VictimPolicy victim_policy = VictimPolicy::kMostRecentlyAdmitted;
  VictimSelector victim_selector;
};

// Ownership: borrows the pool and cost table (both must outlive it); owns
// the pending queue, the requeue queue and every ActiveSequence — including
// each sequence's SequenceKv, which it releases back to the pool on retire.
// Thread-safety: externally synchronized, same single consumer as the
// pool (the server's step loop). validate() is the exception: it reads
// only immutable pool geometry and request fields, so any thread may call
// it (AsyncGenerationServer does, from client threads).
// Invariants: every enqueued request is admitted exactly once, FIFO, and
// retired exactly once (requeues resume, they do not re-admit);
// active() <= max_active; under worst-case admission the pool reservation
// of the active set never exceeds capacity; under optimistic admission
// blocks_in_use never exceeds capacity (prepare_step preempts instead);
// once idle(), total_enqueued == total_admitted == total_retired.
class GenerationScheduler {
 public:
  // `pool` and `costs` are borrowed; both must outlive the scheduler.
  GenerationScheduler(KvCachePool* pool, const serving::CostTable* costs,
                      GenSchedulerOptions options = {});

  // Throws CheckError if the request is malformed or its worst-case KV
  // demand exceeds the whole pool (it could never be admitted — and under
  // optimistic admission this cap is also what guarantees the strongest
  // sequence can always preempt its way to completion). Reads only
  // immutable pool geometry, so it is safe from any thread.
  void validate(const serving::GenerationRequest& request) const;

  void enqueue(serving::GenerationRequest request);

  // Borrowed recording handle (the owning server's; may be disabled). The
  // scheduler emits the sequence-lifecycle events only it can see: preempt
  // (victim parked), resume (parked -> re-admitted, with the replay bill),
  // evict (parked cross share dropped).
  void set_tracer(obs::Tracer* tracer) { tracer_ = tracer; }

  size_t pending() const { return queue_.size(); }
  size_t active() const { return active_.size(); }
  size_t requeued() const { return requeued_.size(); }
  bool idle() const {
    return queue_.empty() && active_.empty() && requeued_.empty();
  }

  // Iteration-level batch formation. Requeued (preempted) sequences resume
  // first — they are older than anything pending, and their cross blocks
  // are already resident — then queued requests join in FIFO order, while
  // the pool admits (worst case or current demand, by policy), max_active
  // allows, and the cost table predicts the grown step under budget.
  // Returns every sequence that (re)joined: the server must encode the
  // sources of those with kv->needs_cross_init() before the next step;
  // resumed ones carry replay > 0 and re-derive instead of streaming.
  std::vector<ActiveSequence*> admit(double now_s);

  // One iteration's worth of work, as assembled by prepare_step.
  struct StepPlan {
    // Sequences that run decoder rows this step; each runs rows
    // [seq->step, seq->step + seq->step_tokens), every row backed by a
    // pool block (CoW barrier included).
    std::vector<ActiveSequence*> stepping;
    // Deferred seq2seq encode jobs: run the encoder over each sequence's
    // source (one forward per sequence — padding-free) and
    // mark_cross_ready before the decode rows of the NEXT step may touch
    // it. Empty in legacy mode (the server encodes at admission).
    std::vector<ActiveSequence*> encode;
    // Token rows charged against the quantum this step: one per decode /
    // prefill / replay row plus src_len per encode job. In legacy mode,
    // the step batch size.
    int quantum_charged = 0;
    // True when a whole-prompt encode job exceeded the remaining budget
    // but ran anyway because the step would otherwise have been empty.
    bool quantum_overflow = false;
    bool empty() const { return stepping.empty() && encode.empty(); }
  };

  // Growth phase of one iteration: back the self rows every scheduled
  // sequence will write (CoW barrier included), preempting victims when
  // the pool is exhausted. In legacy mode (step_token_quantum == 0) every
  // active sequence gets exactly one row — a sequence may instead have
  // been parked this call, either as a victim or by yielding to a
  // higher-priority grower; at least one survives whenever any was
  // active. In quantum mode the plan additionally packs prefill/replay
  // chunks and deferred encode jobs under the token budget (see
  // GenSchedulerOptions::step_token_quantum).
  StepPlan prepare_step();

  const std::vector<std::unique_ptr<ActiveSequence>>& active_set() const {
    return active_;
  }

  // Remove sequences marked finished from the active set, releasing their
  // KV blocks back to the pool. Returns them for response assembly.
  std::vector<std::unique_ptr<ActiveSequence>> retire_finished();

  // True when admission is currently blocked on pool capacity: work is
  // waiting (requeued or queued) and the pool cannot take the next
  // candidate even at its current marginal demand. The multi-model budget
  // owner polls this to decide when to reclaim borrowed bytes from sibling
  // pools; false when the only brake is max_active or the cost gate.
  bool admission_blocked() const;

  // Forced preemption for cross-pool budget reclaim: park lowest-ranked
  // active sequences (then evict parked cross shares, last resort) until
  // the pool's footprint has dropped by at least `bytes`, or nothing
  // preemptible remains. The parked sequences take the ordinary
  // preempt-and-requeue path — they resume and replay bit-identically once
  // capacity returns. Returns the bytes actually freed — quantized to the
  // pool's reclaim grain (whole slabs under kSlab, block spans under
  // kTlsf), so possibly more than asked.
  size_t shed(size_t bytes);

  // Blocks the front waiting candidate needs materialized to (re)join
  // right now, growth headroom included; 0 when nothing waits. The budget
  // owner sizes reclaims with this, so a lightly loaded model claws back
  // only what its demand justifies, not its whole guarantee.
  size_t admission_demand_blocks() const;
  // The same demand in bytes — what the multi-model reclaim path consumes
  // (it quantizes to the pool's reclaim grain, not to slabs).
  size_t admission_demand_bytes() const;

  // Lifetime counters (scheduler invariants: admitted == retired once
  // idle, and every enqueued request is admitted exactly once).
  size_t total_enqueued() const { return total_enqueued_; }
  size_t total_admitted() const { return total_admitted_; }
  size_t total_retired() const { return total_retired_; }
  // Preemption activity: preemptions park a victim's tokens and requeue
  // it; resumes re-admit from the requeue queue; evictions additionally
  // dropped a parked sequence's cross share (it must re-encode on resume).
  size_t total_preempted() const { return total_preempted_; }
  size_t total_resumed() const { return total_resumed_; }
  size_t total_evicted() const { return total_evicted_; }

 private:
  // Predicted fused-step cost at batch size `batch` with `max_ctx` the
  // longest active context (source + generated tokens).
  double predicted_step_cost_ms(int max_ctx, int batch) const;
  // Strict total order for preemption: true when `a` is safer than `b`.
  bool outranks(const ActiveSequence& a, const ActiveSequence& b) const;
  // Predicted cost of re-deriving `s`'s parked tokens after a preemption.
  double replay_cost_ms(const ActiveSequence& s) const;
  // Victim among active sequences the requester outranks; null when none.
  // Sequences still owing their share a deferred encoder pass are never
  // eligible (the pool cannot park them without wedging the share).
  ActiveSequence* pick_victim(const ActiveSequence& requester);
  // Preempt `seq`: park its tokens, move it to the requeue queue, and drop
  // it from `plan` if it had already been scheduled this iteration.
  void park(ActiveSequence* seq, StepPlan* plan);
  // Drop the cross share of the most recently preempted parked sequence
  // (it will re-encode on resume). Last-resort capacity relief.
  bool evict_one_parked();

  // True when a tracer is attached and recording (one-branch gate).
  bool tracing() const { return tracer_ != nullptr && tracer_->enabled(); }

  // Fed-token history of a causal sequence: prompt then generated tokens —
  // the radix planning/donation key.
  static std::vector<int> fed_tokens(const ActiveSequence& seq);

  // Rows of `seq` whose fed token is already known, counted from
  // seq.step: 1 for a decode-ready sequence (the freshly sampled token),
  // more while a causal prompt is still prefilling or parked tokens are
  // replaying after a resume. The quantum allocator may schedule up to
  // this many rows in one step without sampling anything.
  int known_rows(const ActiveSequence& seq) const;
  // Quantum-mode batch formation (see prepare_step).
  StepPlan prepare_step_quantum();

  KvCachePool* pool_;
  const serving::CostTable* costs_;
  GenSchedulerOptions options_;
  obs::Tracer* tracer_ = nullptr;  // borrowed from the owning server
  std::deque<serving::GenerationRequest> queue_;
  std::vector<std::unique_ptr<ActiveSequence>> active_;
  // Preempted sequences awaiting re-admission, oldest first.
  std::deque<std::unique_ptr<ActiveSequence>> requeued_;
  int64_t admit_stamp_ = 0;
  int64_t step_iter_ = 0;  // prepare_step invocations (rotation clock)
  size_t total_enqueued_ = 0;
  size_t total_admitted_ = 0;
  size_t total_retired_ = 0;
  size_t total_preempted_ = 0;
  size_t total_resumed_ = 0;
  size_t total_evicted_ = 0;
};

}  // namespace turbo::genserve
