// Iteration-level batch scheduler for generation serving.
//
// The paper's DP scheduler (§5) partitions a queue snapshot into whole
// batches: every member enters and leaves together, so a short sequence
// waits for the longest one in its batch. Generation makes that untenable —
// output lengths differ and are unknown up front. This scheduler re-forms
// the active batch every decode step instead: finished sequences retire
// (their KV blocks return to the pool immediately) and queued sequences are
// admitted into the freed capacity, keeping the step batch full.
//
// Admission is gated on two resources:
//  * KV pool capacity — a sequence joins only if its worst-case block
//    demand fits the pool's reservation budget, so decode can never
//    deadlock on memory. The demand is marginal: a request whose prompt is
//    already resident shares those cross blocks (charged once for the whole
//    group), so only its unshared self-block budget counts;
//  * the cost table — the predicted fused-step latency at the grown batch
//    size must stay under `max_step_cost_ms` (the same cached_cost
//    dictionary the §5 DP consults, applied per iteration instead of per
//    queue snapshot).
#pragma once

#include <cstddef>
#include <deque>
#include <memory>
#include <vector>

#include "genserve/kv_cache_pool.h"
#include "serving/cost_table.h"
#include "serving/request.h"

namespace turbo::genserve {

// One admitted, still-decoding sequence.
struct ActiveSequence {
  serving::GenerationRequest request;
  std::unique_ptr<SequenceKv> kv;
  std::vector<int> tokens;   // generated so far (excluding BOS/EOS)
  int last_token = 0;        // token to feed at the next step
  int step = 0;              // next decode position
  bool finished = false;
  bool hit_max_len = false;
  double admit_s = 0.0;
};

struct GenSchedulerOptions {
  int max_active = 8;             // step-batch size cap
  double max_step_cost_ms = 0.0;  // predicted step latency cap; 0 = off
};

// Ownership: borrows the pool and cost table (both must outlive it); owns
// the pending queue and every ActiveSequence — including each sequence's
// SequenceKv, which it releases back to the pool on retire.
// Thread-safety: externally synchronized, same single consumer as the
// pool (the server's step loop). validate() is the exception: it reads
// only immutable pool geometry and request fields, so any thread may call
// it (AsyncGenerationServer does, from client threads).
// Invariants: every enqueued request is admitted exactly once, FIFO;
// active() <= max_active; the pool reservation of the active set never
// exceeds capacity (admission is charged at marginal worst case before a
// sequence joins); once idle(), total_enqueued == total_admitted ==
// total_retired.
class GenerationScheduler {
 public:
  // `pool` and `costs` are borrowed; both must outlive the scheduler.
  GenerationScheduler(KvCachePool* pool, const serving::CostTable* costs,
                      GenSchedulerOptions options = {});

  // Throws CheckError if the request is malformed or its worst-case KV
  // demand exceeds the whole pool (it could never be admitted). Reads only
  // immutable pool geometry, so it is safe from any thread.
  void validate(const serving::GenerationRequest& request) const;

  void enqueue(serving::GenerationRequest request);

  size_t pending() const { return queue_.size(); }
  size_t active() const { return active_.size(); }
  bool idle() const { return queue_.empty() && active_.empty(); }

  // Iteration-level batch formation: admit queued sequences in FIFO order
  // while the pool can reserve their worst case, max_active allows, and
  // the cost table predicts the grown step still fits the budget. Returns
  // the newly admitted sequences (the server must encode their source and
  // init cross-attention before the next step).
  std::vector<ActiveSequence*> admit(double now_s);

  const std::vector<std::unique_ptr<ActiveSequence>>& active_set() const {
    return active_;
  }

  // Remove sequences marked finished from the active set, releasing their
  // KV blocks back to the pool. Returns them for response assembly.
  std::vector<std::unique_ptr<ActiveSequence>> retire_finished();

  // Lifetime counters (scheduler invariants: admitted == retired once
  // idle, and every enqueued request is admitted exactly once).
  size_t total_enqueued() const { return total_enqueued_; }
  size_t total_admitted() const { return total_admitted_; }
  size_t total_retired() const { return total_retired_; }

 private:
  // Predicted fused-step cost at batch size `batch` with `max_ctx` the
  // longest active context (source + generated tokens).
  double predicted_step_cost_ms(int max_ctx, int batch) const;

  KvCachePool* pool_;
  const serving::CostTable* costs_;
  GenSchedulerOptions options_;
  std::deque<serving::GenerationRequest> queue_;
  std::vector<std::unique_ptr<ActiveSequence>> active_;
  size_t total_enqueued_ = 0;
  size_t total_admitted_ = 0;
  size_t total_retired_ = 0;
};

}  // namespace turbo::genserve
