#include "genserve/generation_scheduler.h"

#include <algorithm>

#include "common/check.h"

namespace turbo::genserve {

GenerationScheduler::GenerationScheduler(KvCachePool* pool,
                                         const serving::CostTable* costs,
                                         GenSchedulerOptions options)
    : pool_(pool), costs_(costs), options_(std::move(options)) {
  TT_CHECK(pool_ != nullptr);
  TT_CHECK(costs_ != nullptr);
  TT_CHECK_GE(options_.max_active, 1);
  TT_CHECK_GE(options_.step_token_quantum, 0);
  TT_CHECK_GE(options_.prefill_chunk_tokens, 0);
}

void GenerationScheduler::validate(
    const serving::GenerationRequest& request) const {
  TT_CHECK_MSG(!request.src_tokens.empty(),
               "generation request " << request.id << " has no source");
  TT_CHECK_GE(request.max_new_tokens, 1);
  // Negative ids are the PooledBeamKv id space: a beam search sharing this
  // pool draws sequence ids downward from -1, and the pool keys live
  // sequences by id. A request arriving with a negative id would collide
  // with beam roots, so the partition is enforced at both ends.
  TT_CHECK_MSG(request.id >= 0,
               "generation request ids must be non-negative (got "
                   << request.id
                   << "); negative ids are reserved for pooled beam roots");
  // A request whose worst case exceeds the whole pool could never be
  // admitted; accepting it would wedge the FIFO queue forever. Under
  // optimistic admission this cap doubles as the progress guarantee: the
  // highest-ranked sequence can always preempt everything else and still
  // fit alone.
  // The cap is the lifetime ceiling, not max_blocks(): a budget-attached
  // pool's momentary capacity fluctuates with sibling borrowing, and
  // validate() must stay immutable-read (client threads call it).
  const size_t need =
      options_.causal_lm
          ? pool_->blocks_for_causal(
                static_cast<int>(request.src_tokens.size()),
                request.max_new_tokens)
          : pool_->blocks_for(static_cast<int>(request.src_tokens.size()),
                              request.max_new_tokens);
  TT_CHECK_MSG(need <= pool_->max_blocks_ceiling(),
               "generation request " << request.id << " needs " << need
                                     << " KV blocks but the pool caps at "
                                     << pool_->max_blocks_ceiling());
}

std::vector<int> GenerationScheduler::fed_tokens(const ActiveSequence& seq) {
  std::vector<int> fed = seq.request.src_tokens;
  fed.insert(fed.end(), seq.tokens.begin(), seq.tokens.end());
  return fed;
}

void GenerationScheduler::enqueue(serving::GenerationRequest request) {
  validate(request);
  ++total_enqueued_;
  queue_.push_back(std::move(request));
}

double GenerationScheduler::predicted_step_cost_ms(int max_ctx,
                                                   int batch) const {
  // The cached_cost dictionary is keyed (padded length, batch); a fused
  // decode step attends over the longest active context, so that length is
  // the conservative key. CostTable clamps length itself but rejects
  // batches beyond its warm-up grid, so clamp here: a table smaller than
  // max_active must not abort admission.
  return costs_->batch_cost_ms(std::max(max_ctx, 1),
                               std::min(batch, costs_->max_batch()));
}

std::vector<ActiveSequence*> GenerationScheduler::admit(double now_s) {
  std::vector<ActiveSequence*> admitted;
  // Worst-case context (source + full output budget) of every active
  // sequence, matching the candidate term below: the step-cost cap is a
  // lifetime guarantee for the batch, not a snapshot of current lengths —
  // a gate on current context would be silently violated as sequences
  // grow. (Preemption under optimistic admission is triggered by pool
  // exhaustion, never by the cost gate, so the lifetime view stays right.)
  int max_ctx = 0;
  for (const auto& seq : active_) {
    max_ctx = std::max(max_ctx,
                       static_cast<int>(seq->request.src_tokens.size()) +
                           seq->request.max_new_tokens);
  }
  const auto cost_blocks = [&](const serving::GenerationRequest& r) {
    if (options_.max_step_cost_ms <= 0.0) return false;
    const int ctx = std::max(
        max_ctx, static_cast<int>(r.src_tokens.size()) + r.max_new_tokens);
    // A lone over-budget sequence still runs (batch of one) so the queue
    // can never wedge.
    return predicted_step_cost_ms(ctx, static_cast<int>(active_.size()) + 1) >
               options_.max_step_cost_ms &&
           !active_.empty();
  };

  // Admission keeps one boundary-crossing of growth headroom per running
  // sequence uncommitted: packing the pool to the last block would only
  // buy a sequence that the very next grow preempts again (and whose
  // parked tokens must then be replayed — pure waste).
  const auto headroom = [&] {
    return pool_->blocks_per_boundary() * active_.size();
  };

  for (;;) {
    // Requeued (preempted) sequences resume first: they are older than
    // anything still pending and their cross blocks are usually resident.
    while (!requeued_.empty() &&
           static_cast<int>(active_.size()) < options_.max_active) {
      ActiveSequence* seq = requeued_.front().get();
      if (cost_blocks(seq->request)) break;
      // Resuming is only worth it when the whole replay fits: coming back
      // with less space thrashes the sequence straight back out.
      const int replay_rows = static_cast<int>(seq->tokens.size()) + 1;
      if (options_.causal_lm) {
        // Causal resume: re-plan the radix prefix over the full fed history
        // (prompt + parked tokens) — a resume may adopt *more* cached rows
        // than the original admission, and adopted rows never replay.
        const std::vector<int> fed = fed_tokens(*seq);
        const int fed_rows = static_cast<int>(fed.size()) + 1;
        const auto plan = pool_->plan_causal(fed);
        if (seq->kv) {
          if (!pool_->can_resume_causal(*seq->kv, plan, fed_rows,
                                        headroom())) {
            break;
          }
          pool_->resume_causal(*seq->kv, plan);
        } else {
          if (!pool_->can_readmit_causal_now(plan, fed_rows, headroom())) {
            break;
          }
          seq->kv = pool_->admit_causal(seq->request.id,
                                        seq->request.src_tokens,
                                        seq->request.max_new_tokens, plan);
        }
        // Restart the decode cursor behind the adopted prefix; replayed
        // steps re-derive only the parked tokens the prefix does not back.
        seq->step = seq->kv->prefix_rows();
        seq->last_token = fed[seq->step];
        seq->replay = static_cast<int>(seq->tokens.size());
        if (tracing() && seq->kv->prefix_rows() > 0) {
          tracer_->instant(obs::SpanKind::kRadixHit, seq->request.id,
                           seq->kv->prefix_rows());
        }
      } else {
        if (seq->kv) {
          if (!pool_->can_resume(*seq->kv, replay_rows, headroom())) break;
          pool_->resume(*seq->kv);
        } else {
          // Evicted while parked: the cross share was dropped, so this is a
          // full re-admission (the server re-encodes unless the prompt is
          // resident again through another sequence). The replay must fit
          // here too, or the paid-for encoder pass just thrashes out.
          if (!pool_->can_readmit_now(seq->request.src_tokens, replay_rows,
                                      headroom())) {
            break;
          }
          seq->kv = pool_->admit_optimistic(seq->request.id,
                                            seq->request.src_tokens,
                                            seq->request.max_new_tokens);
        }
        // Restart the decode cursor; steps [0, replay) re-derive the parked
        // tokens bit-identically and are not streamed again.
        seq->step = 0;
        seq->last_token = seq->request.bos_id;
        seq->replay = static_cast<int>(seq->tokens.size());
      }
      ++total_resumed_;
      if (tracing() && seq->park_ticks != 0) {
        // The resume span covers the whole parked interval; its token count
        // is the replay bill the preemption incurred.
        tracer_->span(obs::SpanKind::kResume, seq->park_ticks,
                      obs::now_ticks(), seq->request.id, /*batch=*/0,
                      seq->replay);
        seq->park_ticks = 0;
      }
      max_ctx = std::max(max_ctx,
                         static_cast<int>(seq->request.src_tokens.size()) +
                             seq->request.max_new_tokens);
      admitted.push_back(seq);
      active_.push_back(std::move(requeued_.front()));
      requeued_.pop_front();
    }

    // Fresh FIFO admissions — only once nothing older is waiting to
    // resume, so requeued sequences cannot be starved by new arrivals.
    while (requeued_.empty() && !queue_.empty() &&
           static_cast<int>(active_.size()) < options_.max_active) {
      const serving::GenerationRequest& head = queue_.front();
      // Charge only the request's *unshared* demand: when its prompt is
      // already resident in the pool, the cross blocks are mapped to the
      // live share (counted once however many sequences read them).
      // Worst-case policy reserves the full output budget; optimistic
      // admission needs only today's blocks to fit. Causal admission plans
      // the radix prefix once and threads the plan into admit_causal —
      // plan and gate see the same snapshot, and the tree is walked once.
      KvCachePool::CausalPlan causal_plan;
      KvCachePool::SharePlan share_plan;
      bool fits;
      if (options_.causal_lm) {
        causal_plan = pool_->plan_causal(head.src_tokens);
        fits = options_.optimistic_admission
                   ? pool_->can_admit_causal_now(causal_plan, headroom())
                   : pool_->can_admit_causal(
                         static_cast<int>(head.src_tokens.size()),
                         head.max_new_tokens);
      } else {
        // Resolve the prompt-share lookup once per admission and thread it
        // through the gate and the admit (each used to redo find_share).
        share_plan = pool_->plan_share(head.src_tokens);
        fits = options_.optimistic_admission
                   ? pool_->can_admit_now(head.src_tokens, share_plan,
                                          headroom())
                   : pool_->can_admit_prompt(head.src_tokens,
                                             head.max_new_tokens, share_plan);
      }
      if (!fits) break;
      if (cost_blocks(head)) break;

      auto seq = std::make_unique<ActiveSequence>();
      seq->request = std::move(queue_.front());
      queue_.pop_front();
      if (options_.causal_lm) {
        seq->kv = pool_->admit_causal(seq->request.id, seq->request.src_tokens,
                                      seq->request.max_new_tokens, causal_plan);
        // Prefill cursor: start behind the adopted radix prefix, feeding
        // the first prompt token the cache does not already back.
        seq->step = seq->kv->prefix_rows();
        seq->last_token = seq->request.src_tokens[seq->step];
        if (tracing() && seq->kv->prefix_rows() > 0) {
          tracer_->instant(obs::SpanKind::kRadixHit, seq->request.id,
                           seq->kv->prefix_rows());
        }
      } else {
        // Prompt-keyed admission: identical prompts share cross blocks, and
        // the server skips re-encoding when kv->needs_cross_init() is false.
        seq->kv = options_.optimistic_admission
                      ? pool_->admit_optimistic(seq->request.id,
                                                seq->request.src_tokens,
                                                seq->request.max_new_tokens,
                                                share_plan)
                      : pool_->admit(seq->request.id, seq->request.src_tokens,
                                     seq->request.max_new_tokens, share_plan);
        seq->last_token = seq->request.bos_id;
      }
      seq->admit_s = now_s;
      seq->admit_order = admit_stamp_++;
      ++total_admitted_;
      max_ctx = std::max(max_ctx,
                         static_cast<int>(seq->request.src_tokens.size()) +
                             seq->request.max_new_tokens);
      admitted.push_back(seq.get());
      active_.push_back(std::move(seq));
    }

    // Progress guard: nothing is running, work remains, and the loops
    // above admitted no one — parked cross shares are hogging the pool.
    // Evict one and retry; validate() guarantees this converges.
    if (active_.empty() && !idle()) {
      if (evict_one_parked()) continue;
      // Nothing left to free locally. If sibling pools' borrowing has
      // shrunk this pool below its ceiling, the refusal is external
      // starvation, not a wedge: stall this iteration and let the shared
      // budget's owner reclaim (MultiModelGenerationServer sees
      // admission_blocked() and sheds a borrower).
      if (pool_->capacity_borrowed_elsewhere()) break;
      TT_CHECK_MSG(false, "generation scheduler wedged: empty pool refuses "
                          "every admission");
    }
    break;
  }
  return admitted;
}

bool GenerationScheduler::outranks(const ActiveSequence& a,
                                   const ActiveSequence& b) const {
  if (options_.victim_policy ==
          GenSchedulerOptions::VictimPolicy::kLowestPriority &&
      a.request.priority != b.request.priority) {
    return a.request.priority > b.request.priority;
  }
  // Admission order breaks every remaining tie, making the order strict
  // and total — the progress guarantee needs exactly that.
  return a.admit_order < b.admit_order;
}

double GenerationScheduler::replay_cost_ms(const ActiveSequence& s) const {
  // Re-deriving a preempted sequence replays its parked tokens one fused
  // step at a time. The cost table supplies the per-step latency at the
  // victim's context — measured values once the server has fed observe().
  const int ctx =
      static_cast<int>(s.request.src_tokens.size()) + std::max(s.step, 1);
  return static_cast<double>(s.tokens.size()) * predicted_step_cost_ms(ctx, 1);
}

ActiveSequence* GenerationScheduler::pick_victim(
    const ActiveSequence& requester) {
  std::vector<ActiveSequence*> eligible;
  for (const auto& seq : active_) {
    if (seq.get() == &requester) continue;
    // A sequence whose deferred encode has not run yet cannot park: the
    // pool's preempt() would wedge its cross share (no one left to
    // encode). It becomes eligible once the encode job completes.
    if (seq->kv && seq->kv->needs_cross_init()) continue;
    if (outranks(requester, *seq)) eligible.push_back(seq.get());
  }
  if (eligible.empty()) return nullptr;
  if (options_.victim_selector) {
    if (ActiveSequence* chosen = options_.victim_selector(eligible)) {
      TT_CHECK_MSG(std::find(eligible.begin(), eligible.end(), chosen) !=
                       eligible.end(),
                   "victim_selector returned a non-eligible sequence");
      return chosen;
    }
  }
  ActiveSequence* best = eligible.front();
  for (ActiveSequence* cand : eligible) {
    if (options_.victim_policy ==
        GenSchedulerOptions::VictimPolicy::kCheapestRecompute) {
      const double c = replay_cost_ms(*cand);
      const double b = replay_cost_ms(*best);
      if (c < b || (c == b && outranks(*best, *cand))) best = cand;
    } else {
      // Lowest-ranked candidate loses (for kMostRecentlyAdmitted that is
      // the newest admission; for kLowestPriority the weakest priority).
      if (outranks(*best, *cand)) best = cand;
    }
  }
  return best;
}

void GenerationScheduler::park(ActiveSequence* seq, StepPlan* plan) {
  pool_->preempt(*seq->kv);
  ++seq->preempt_count;
  ++total_preempted_;
  if (tracing()) {
    seq->park_ticks = obs::now_ticks();
    tracer_->instant(obs::SpanKind::kPreempt, seq->request.id,
                     static_cast<int32_t>(seq->tokens.size()));
  }
  if (plan) {
    auto& stepping = plan->stepping;
    stepping.erase(std::remove(stepping.begin(), stepping.end(), seq),
                   stepping.end());
    auto& encode = plan->encode;
    encode.erase(std::remove(encode.begin(), encode.end(), seq),
                 encode.end());
  }
  for (auto it = active_.begin(); it != active_.end(); ++it) {
    if (it->get() == seq) {
      requeued_.push_back(std::move(*it));
      active_.erase(it);
      return;
    }
  }
  TT_CHECK_MSG(false, "parked sequence " << seq->request.id
                                         << " not in the active set");
}

bool GenerationScheduler::evict_one_parked() {
  // Evict back-to-front: the most recently preempted sequence resumes
  // last, so it has the longest to wait for a fresh encoder pass anyway.
  // Prefer a handle whose cross share is not co-held — releasing a shared
  // one frees nothing while still costing that sequence a re-encode.
  for (const bool require_exclusive : {true, false}) {
    for (auto it = requeued_.rbegin(); it != requeued_.rend(); ++it) {
      if (!(*it)->kv) continue;
      if (require_exclusive && (*it)->kv->cross_shared()) continue;
      (*it)->kv.reset();  // releases the cross share back to the pool
      ++total_evicted_;
      if (tracing()) {
        tracer_->instant(obs::SpanKind::kEvict, (*it)->request.id);
      }
      return true;
    }
  }
  return false;
}

int GenerationScheduler::known_rows(const ActiveSequence& seq) const {
  // Fed tokens already determined: a causal sequence feeds its whole
  // prompt then every generated token; a seq2seq sequence feeds BOS then
  // every generated token. Rows [0, seq.step) are written, so the
  // remainder can run without sampling. Decode-ready sequences are
  // exactly the known_rows == 1 case (the freshly sampled last_token).
  const size_t total = options_.causal_lm
                           ? seq.request.src_tokens.size() + seq.tokens.size()
                           : 1 + seq.tokens.size();
  return static_cast<int>(total) - seq.step;
}

GenerationScheduler::StepPlan GenerationScheduler::prepare_step() {
  ++step_iter_;
  if (options_.step_token_quantum > 0) return prepare_step_quantum();
  StepPlan plan;
  // Growth mutates active_ (victims move to the requeue queue), so walk a
  // snapshot; anything parked by an earlier grower is skipped when its
  // turn comes.
  std::vector<ActiveSequence*> order;
  order.reserve(active_.size());
  for (const auto& seq : active_) order.push_back(seq.get());
  for (ActiveSequence* seq : order) {
    if (!seq->kv || seq->kv->parked()) continue;  // victimized this call
    for (;;) {
      if (pool_->try_ensure_token(*seq->kv, seq->step)) {
        seq->step_tokens = 1;
        seq->last_step_iter = step_iter_;
        plan.stepping.push_back(seq);
        ++plan.quantum_charged;
        break;
      }
      // Pool exhausted mid-decode: preempt downward. A victim this grower
      // outranks goes first; then parked cross shares; and when neither
      // exists the grower itself yields to the sequences above it.
      if (ActiveSequence* victim = pick_victim(*seq)) {
        park(victim, &plan);
        continue;
      }
      if (evict_one_parked()) continue;
      park(seq, &plan);
      break;
    }
  }
  return plan;
}

GenerationScheduler::StepPlan GenerationScheduler::prepare_step_quantum() {
  StepPlan plan;
  const int quantum = options_.step_token_quantum;
  const int chunk = options_.prefill_chunk_tokens > 0
                        ? options_.prefill_chunk_tokens
                        : pool_->options().block_tokens;
  int budget = quantum;

  // Rotation order: least recently stepped first (admission order breaks
  // ties). A sequence passed over keeps its old stamp and moves to the
  // front next step, so every active sequence gets a pass-0 row at least
  // once every ceil(active / quantum) steps — the decode starvation
  // bound.
  std::vector<ActiveSequence*> order;
  order.reserve(active_.size());
  for (const auto& seq : active_) order.push_back(seq.get());
  std::sort(order.begin(), order.end(),
            [](const ActiveSequence* a, const ActiveSequence* b) {
              if (a->last_step_iter != b->last_step_iter) {
                return a->last_step_iter < b->last_step_iter;
              }
              return a->admit_order < b->admit_order;
            });

  // Pass 0: whole-prompt encode jobs and one row per sequence. The first
  // row keeps the legacy grow-or-preempt ladder (decode progress is worth
  // preempting for); chunk extensions below never preempt.
  for (ActiveSequence* seq : order) {
    if (budget <= 0) break;
    if (!seq->kv || seq->kv->parked()) continue;  // victimized this call
    if (seq->kv->needs_cross_init()) {
      // Deferred seq2seq encode: indivisible (the encoder is
      // bidirectional), charged at its source length. When it cannot fit
      // the remaining budget it runs anyway if the step would otherwise
      // be empty — a prompt longer than the whole quantum must still
      // encode exactly once (progress), flagged as overflow.
      const int src = seq->kv->src_len();
      if (src <= budget) {
        budget -= src;
      } else if (plan.empty()) {
        budget = 0;
        plan.quantum_overflow = true;
      } else {
        continue;  // retry next step, from the front of the rotation
      }
      plan.encode.push_back(seq);
      plan.quantum_charged += src;
      seq->last_step_iter = step_iter_;
      continue;  // decode rows start the step after the encode ran
    }
    // A follower of a share whose creator has not encoded yet has no
    // cross K/V to read; it joins once the pending encode job completes.
    if (!seq->kv->cross_ready()) continue;
    bool backed = false;
    for (;;) {
      if (pool_->try_ensure_token(*seq->kv, seq->step)) {
        backed = true;
        break;
      }
      if (ActiveSequence* victim = pick_victim(*seq)) {
        park(victim, &plan);
        continue;
      }
      if (evict_one_parked()) continue;
      park(seq, &plan);
      break;
    }
    if (!backed) continue;
    seq->step_tokens = 1;
    seq->last_step_iter = step_iter_;
    plan.stepping.push_back(seq);
    --budget;
    ++plan.quantum_charged;
  }

  // Extension rounds: deepen prefill/replay chunks round-robin while the
  // budget lasts, up to `chunk` rows per sequence per round so one long
  // prompt cannot monopolize the quantum. Each extra row goes through the
  // CoW barrier individually (a chunk may span several blocks, and only
  // the block receiving a row is copied); on exhaustion the chunk simply
  // stays short — extensions are opportunistic and never preempt. The
  // cost gate prices the fused step at its grown row count and stops
  // extending once the predicted latency would exceed max_step_cost_ms.
  const auto cost_capped = [&](int rows_after, int ctx_after) {
    if (options_.max_step_cost_ms <= 0.0) return false;
    return predicted_step_cost_ms(ctx_after, rows_after) >
           options_.max_step_cost_ms;
  };
  const auto seq_ctx = [&](const ActiveSequence& seq) {
    return static_cast<int>(options_.causal_lm
                                ? 0
                                : seq.request.src_tokens.size()) +
           seq.step + seq.step_tokens;
  };
  int max_ctx = 1;
  for (const ActiveSequence* seq : plan.stepping) {
    max_ctx = std::max(max_ctx, seq_ctx(*seq));
  }
  bool extended = true;
  bool capped = false;
  while (budget > 0 && extended && !capped) {
    extended = false;
    for (ActiveSequence* seq : plan.stepping) {
      if (budget <= 0 || capped) break;
      const int pending = known_rows(*seq) - seq->step_tokens;
      const int take = std::min({chunk, pending, budget});
      for (int i = 0; i < take; ++i) {
        const int ctx_after = std::max(max_ctx, seq_ctx(*seq) + 1);
        if (cost_capped(plan.quantum_charged + 1, ctx_after)) {
          capped = true;
          break;
        }
        if (!pool_->try_ensure_token(*seq->kv, seq->step + seq->step_tokens)) {
          break;  // shrink on exhaustion; pass-0 rows already made progress
        }
        ++seq->step_tokens;
        --budget;
        ++plan.quantum_charged;
        max_ctx = ctx_after;
        extended = true;
      }
    }
  }
  return plan;
}

bool GenerationScheduler::admission_blocked() const {
  if (static_cast<int>(active_.size()) >= options_.max_active) return false;
  const size_t headroom = pool_->blocks_per_boundary() * active_.size();
  if (!requeued_.empty()) {
    // Mirror admit()'s resume gate: the front of the requeue queue goes
    // first, replay-sized.
    const ActiveSequence& seq = *requeued_.front();
    const int replay_rows = static_cast<int>(seq.tokens.size()) + 1;
    if (options_.causal_lm) {
      const std::vector<int> fed = fed_tokens(seq);
      const int fed_rows = static_cast<int>(fed.size()) + 1;
      const auto plan = pool_->plan_causal(fed);
      if (seq.kv) {
        return !pool_->can_resume_causal(*seq.kv, plan, fed_rows, headroom);
      }
      return !pool_->can_readmit_causal_now(plan, fed_rows, headroom);
    }
    if (seq.kv) return !pool_->can_resume(*seq.kv, replay_rows, headroom);
    return !pool_->can_readmit_now(seq.request.src_tokens, replay_rows,
                                   headroom);
  }
  if (!queue_.empty()) {
    const serving::GenerationRequest& head = queue_.front();
    if (options_.causal_lm) {
      const auto plan = pool_->plan_causal(head.src_tokens);
      return options_.optimistic_admission
                 ? !pool_->can_admit_causal_now(plan, headroom)
                 : !pool_->can_admit_causal(
                       static_cast<int>(head.src_tokens.size()),
                       head.max_new_tokens);
    }
    return options_.optimistic_admission
               ? !pool_->can_admit_now(head.src_tokens, headroom)
               : !pool_->can_admit_prompt(head.src_tokens,
                                          head.max_new_tokens);
  }
  return false;
}

size_t GenerationScheduler::admission_demand_blocks() const {
  const size_t headroom = pool_->blocks_per_boundary() * active_.size();
  const size_t bt = static_cast<size_t>(pool_->options().block_tokens);
  if (!requeued_.empty()) {
    const ActiveSequence& seq = *requeued_.front();
    if (options_.causal_lm) {
      // Rows the resume must materialize beyond the adopted radix prefix,
      // plus the chain blocks adoption moves out of the evictable tier.
      const std::vector<int> fed = fed_tokens(seq);
      const auto plan = pool_->plan_causal(fed);
      const size_t rows = fed.size() + 1 - static_cast<size_t>(plan.prefix_rows);
      return pool_->blocks_for_causal_now(plan) +
             pool_->blocks_per_boundary() * ((rows + bt - 1) / bt - 1) +
             headroom;
    }
    const size_t rows = seq.tokens.size() + 1;
    const size_t replay = pool_->blocks_per_boundary() * ((rows + bt - 1) / bt);
    if (seq.kv) return replay + headroom;  // cross share still resident
    // Evicted: a full re-admission plus the replay rows beyond the first
    // self block blocks_for_admit_now already counts.
    return pool_->blocks_for_admit_now(seq.request.src_tokens) + replay -
           pool_->blocks_per_boundary() + headroom;
  }
  if (!queue_.empty()) {
    if (options_.causal_lm) {
      const auto plan = pool_->plan_causal(queue_.front().src_tokens);
      return pool_->blocks_for_causal_now(plan) + headroom;
    }
    return pool_->blocks_for_admit_now(queue_.front().src_tokens) + headroom;
  }
  return 0;
}

size_t GenerationScheduler::admission_demand_bytes() const {
  return admission_demand_blocks() * pool_->block_bytes();
}

size_t GenerationScheduler::shed(size_t bytes) {
  const size_t before = pool_->stats().current_device_bytes;
  const auto freed = [&] {
    return before - pool_->stats().current_device_bytes;
  };
  // The radix cache tier goes first: it is exactly the memory that costs
  // no running sequence anything to lose (only future prefix hits).
  if (freed() < bytes) pool_->drop_radix_cache();
  while (freed() < bytes) {
    // Lowest-ranked preemptible sequence loses, same strict order the
    // internal grow-or-preempt path uses. A sequence that still owes its
    // cross share the encoder pass cannot park (the share would wedge);
    // the server encodes admits within the same iteration, so by the time
    // a sibling model's reclaim runs there is normally nothing pending.
    ActiveSequence* victim = nullptr;
    for (const auto& seq : active_) {
      if (!seq->kv || seq->kv->parked() || seq->kv->needs_cross_init()) {
        continue;
      }
      if (victim == nullptr || outranks(*victim, *seq)) victim = seq.get();
    }
    if (victim != nullptr) {
      park(victim, nullptr);
      continue;
    }
    if (evict_one_parked()) continue;
    break;
  }
  return freed();
}

std::vector<std::unique_ptr<ActiveSequence>>
GenerationScheduler::retire_finished() {
  std::vector<std::unique_ptr<ActiveSequence>> retired;
  for (auto& seq : active_) {
    if (seq->finished) {
      if (options_.causal_lm && seq->kv && !seq->kv->parked()) {
        // Donate the retiring sequence's materialized self rows to the
        // radix tier: whole blocks of fed tokens it actually wrote (steps
        // executed = rows [0, step)), so later turns of this conversation —
        // and siblings sharing its prompt prefix — skip the recompute.
        std::vector<int> fed = fed_tokens(*seq);
        if (static_cast<size_t>(seq->step) < fed.size()) {
          fed.resize(static_cast<size_t>(seq->step));
        }
        pool_->donate_radix(*seq->kv, fed);
      }
      seq->kv.reset();  // KV blocks return to the pool immediately
      ++total_retired_;
      retired.push_back(std::move(seq));
    }
  }
  std::erase_if(active_,
                [](const std::unique_ptr<ActiveSequence>& s) { return !s; });
  return retired;
}

}  // namespace turbo::genserve
