#include "genserve/generation_scheduler.h"

#include <algorithm>

#include "common/check.h"

namespace turbo::genserve {

GenerationScheduler::GenerationScheduler(KvCachePool* pool,
                                         const serving::CostTable* costs,
                                         GenSchedulerOptions options)
    : pool_(pool), costs_(costs), options_(options) {
  TT_CHECK(pool_ != nullptr);
  TT_CHECK(costs_ != nullptr);
  TT_CHECK_GE(options_.max_active, 1);
}

void GenerationScheduler::validate(
    const serving::GenerationRequest& request) const {
  TT_CHECK_MSG(!request.src_tokens.empty(),
               "generation request " << request.id << " has no source");
  TT_CHECK_GE(request.max_new_tokens, 1);
  // A request whose worst case exceeds the whole pool could never be
  // admitted; accepting it would wedge the FIFO queue forever.
  const size_t need =
      pool_->blocks_for(static_cast<int>(request.src_tokens.size()),
                        request.max_new_tokens);
  TT_CHECK_MSG(need <= pool_->max_blocks(),
               "generation request " << request.id << " needs " << need
                                     << " KV blocks but the pool caps at "
                                     << pool_->max_blocks());
}

void GenerationScheduler::enqueue(serving::GenerationRequest request) {
  validate(request);
  ++total_enqueued_;
  queue_.push_back(std::move(request));
}

double GenerationScheduler::predicted_step_cost_ms(int max_ctx,
                                                   int batch) const {
  // The cached_cost dictionary is keyed (padded length, batch); a fused
  // decode step attends over the longest active context, so that length is
  // the conservative key. CostTable clamps length itself but rejects
  // batches beyond its warm-up grid, so clamp here: a table smaller than
  // max_active must not abort admission.
  return costs_->batch_cost_ms(std::max(max_ctx, 1),
                               std::min(batch, costs_->max_batch()));
}

std::vector<ActiveSequence*> GenerationScheduler::admit(double now_s) {
  std::vector<ActiveSequence*> admitted;
  // Worst-case context (source + full output budget) of every active
  // sequence, matching the candidate term below: the step-cost cap is a
  // lifetime guarantee for the batch, not a snapshot of current lengths —
  // admitted sequences are never preempted, so a gate on current context
  // would be silently violated as they grow.
  int max_ctx = 0;
  for (const auto& seq : active_) {
    max_ctx = std::max(max_ctx,
                       static_cast<int>(seq->request.src_tokens.size()) +
                           seq->request.max_new_tokens);
  }
  while (!queue_.empty() &&
         static_cast<int>(active_.size()) < options_.max_active) {
    const serving::GenerationRequest& head = queue_.front();
    const int s_src = static_cast<int>(head.src_tokens.size());
    // Charge only the request's *unshared* worst case: when its prompt is
    // already resident in the pool, the cross blocks are mapped to the live
    // share (counted once however many sequences read them) and only the
    // self-block budget is marginal.
    if (!pool_->can_admit_prompt(head.src_tokens, head.max_new_tokens)) break;
    if (options_.max_step_cost_ms > 0.0) {
      const int ctx = std::max(max_ctx, s_src + head.max_new_tokens);
      if (predicted_step_cost_ms(ctx, static_cast<int>(active_.size()) + 1) >
              options_.max_step_cost_ms &&
          !active_.empty()) {
        // A lone over-budget sequence still runs (batch of one) so the
        // queue can never wedge.
        break;
      }
    }

    auto seq = std::make_unique<ActiveSequence>();
    seq->request = std::move(queue_.front());
    queue_.pop_front();
    // Prompt-keyed admission: identical prompts share cross blocks, and the
    // server skips re-encoding when kv->needs_cross_init() is false.
    seq->kv = pool_->admit(seq->request.id, seq->request.src_tokens,
                           seq->request.max_new_tokens);
    seq->last_token = seq->request.bos_id;
    seq->admit_s = now_s;
    ++total_admitted_;
    max_ctx = std::max(max_ctx, s_src + seq->request.max_new_tokens);
    admitted.push_back(seq.get());
    active_.push_back(std::move(seq));
  }
  return admitted;
}

std::vector<std::unique_ptr<ActiveSequence>>
GenerationScheduler::retire_finished() {
  std::vector<std::unique_ptr<ActiveSequence>> retired;
  for (auto& seq : active_) {
    if (seq->finished) {
      seq->kv.reset();  // KV blocks return to the pool immediately
      ++total_retired_;
      retired.push_back(std::move(seq));
    }
  }
  std::erase_if(active_,
                [](const std::unique_ptr<ActiveSequence>& s) { return !s; });
  return retired;
}

}  // namespace turbo::genserve
