#include "genserve/kv_cache_pool.h"

#include <algorithm>
#include <limits>

#include "common/check.h"

namespace turbo::genserve {

namespace {

size_t ceil_div(size_t a, size_t b) { return (a + b - 1) / b; }

}  // namespace

// ---------------------------------------------------------------------------
// SequenceKv
// ---------------------------------------------------------------------------

SequenceKv::SequenceKv(KvCachePool* pool, int64_t id, int s_src,
                       int max_new_tokens)
    : pool_(pool), id_(id), s_src_(s_src), max_new_(max_new_tokens) {}

SequenceKv::~SequenceKv() {
  if (!released_) pool_->release(*this);
}

int SequenceKv::capacity_tokens() const {
  if (self_blocks_.empty()) return 0;
  return static_cast<int>(self_blocks_[0].size()) *
         pool_->options_.block_tokens;
}

size_t SequenceKv::blocks_held() const {
  size_t n = 0;
  for (const auto& layer : self_blocks_) n += layer.size();
  for (const auto& layer : cross_blocks_) n += layer.size();
  return n;
}

float* SequenceKv::self_k(int layer, int t) {
  const int bt = pool_->options_.block_tokens;
  const auto& blocks = self_blocks_[static_cast<size_t>(layer)];
  TT_CHECK_LT(static_cast<size_t>(t / bt), blocks.size());
  float* base = pool_->block_ptr(blocks[static_cast<size_t>(t / bt)]);
  return base + static_cast<size_t>(t % bt) * pool_->hidden_;
}

float* SequenceKv::self_v(int layer, int t) {
  const int bt = pool_->options_.block_tokens;
  const auto& blocks = self_blocks_[static_cast<size_t>(layer)];
  TT_CHECK_LT(static_cast<size_t>(t / bt), blocks.size());
  float* base = pool_->block_ptr(blocks[static_cast<size_t>(t / bt)]);
  return base + static_cast<size_t>(bt + t % bt) * pool_->hidden_;
}

float* SequenceKv::cross_k(int layer, int s) {
  const int bt = pool_->options_.block_tokens;
  const auto& blocks = cross_blocks_[static_cast<size_t>(layer)];
  TT_CHECK_LT(static_cast<size_t>(s / bt), blocks.size());
  float* base = pool_->block_ptr(blocks[static_cast<size_t>(s / bt)]);
  return base + static_cast<size_t>(s % bt) * pool_->hidden_;
}

float* SequenceKv::cross_v(int layer, int s) {
  const int bt = pool_->options_.block_tokens;
  const auto& blocks = cross_blocks_[static_cast<size_t>(layer)];
  TT_CHECK_LT(static_cast<size_t>(s / bt), blocks.size());
  float* base = pool_->block_ptr(blocks[static_cast<size_t>(s / bt)]);
  return base + static_cast<size_t>(bt + s % bt) * pool_->hidden_;
}

// ---------------------------------------------------------------------------
// KvCachePool
// ---------------------------------------------------------------------------

KvCachePool::KvCachePool(const model::ModelConfig& config,
                         KvPoolOptions options)
    : hidden_(config.hidden),
      num_layers_(config.num_layers),
      options_(options),
      block_floats_(static_cast<size_t>(2) * options.block_tokens *
                    config.hidden) {
  TT_CHECK_GE(options_.block_tokens, 1);
  TT_CHECK_GE(options_.blocks_per_slab, 1);
  if (options_.max_bytes > 0) {
    TT_CHECK_MSG(options_.max_bytes >= slab_bytes(),
                 "max_bytes below one slab: " << options_.max_bytes);
  }
}

KvCachePool::~KvCachePool() {
  // Sequences must not outlive the pool; a live one here would dangle.
  TT_CHECK_EQ(active_, 0);
}

size_t KvCachePool::blocks_for(int s_src, int max_new_tokens) const {
  TT_CHECK_GE(s_src, 1);
  TT_CHECK_GE(max_new_tokens, 1);
  const size_t bt = static_cast<size_t>(options_.block_tokens);
  const size_t cross = ceil_div(static_cast<size_t>(s_src), bt);
  const size_t self = ceil_div(static_cast<size_t>(max_new_tokens), bt);
  return static_cast<size_t>(num_layers_) * (cross + self);
}

size_t KvCachePool::max_blocks() const {
  if (options_.max_bytes == 0) return std::numeric_limits<size_t>::max();
  return options_.max_bytes / slab_bytes() *
         static_cast<size_t>(options_.blocks_per_slab);
}

bool KvCachePool::can_admit(int s_src, int max_new_tokens) const {
  return blocks_reserved_ + blocks_for(s_src, max_new_tokens) <= max_blocks();
}

std::unique_ptr<SequenceKv> KvCachePool::admit(int64_t seq_id, int s_src,
                                               int max_new_tokens) {
  TT_CHECK_MSG(can_admit(s_src, max_new_tokens),
               "KV pool over capacity admitting sequence " << seq_id);
  std::unique_ptr<SequenceKv> seq(
      new SequenceKv(this, seq_id, s_src, max_new_tokens));
  seq->reserved_blocks_ = blocks_for(s_src, max_new_tokens);
  blocks_reserved_ += seq->reserved_blocks_;
  ++active_;

  const size_t bt = static_cast<size_t>(options_.block_tokens);
  const size_t cross_per_layer = ceil_div(static_cast<size_t>(s_src), bt);
  seq->cross_blocks_.resize(static_cast<size_t>(num_layers_));
  seq->self_blocks_.resize(static_cast<size_t>(num_layers_));
  for (int layer = 0; layer < num_layers_; ++layer) {
    auto& cross = seq->cross_blocks_[static_cast<size_t>(layer)];
    for (size_t i = 0; i < cross_per_layer; ++i) cross.push_back(alloc_block());
    seq->self_blocks_[static_cast<size_t>(layer)].push_back(alloc_block());
  }
  blocks_in_use_ += seq->blocks_held();
  TT_CHECK_LE(blocks_in_use_, blocks_reserved_);
  return seq;
}

void KvCachePool::ensure_token(SequenceKv& seq, int t) {
  TT_CHECK(!seq.released_);
  TT_CHECK_LT(t, seq.max_new_);
  const int bt = options_.block_tokens;
  const size_t need = static_cast<size_t>(t / bt) + 1;
  auto& first = seq.self_blocks_[0];
  if (first.size() >= need) return;
  for (int layer = 0; layer < num_layers_; ++layer) {
    auto& blocks = seq.self_blocks_[static_cast<size_t>(layer)];
    while (blocks.size() < need) {
      blocks.push_back(alloc_block());
      ++blocks_in_use_;
    }
  }
  // The admission reservation covers the worst case, so growth can never
  // push usage past it.
  TT_CHECK_LE(blocks_in_use_, blocks_reserved_);
}

void KvCachePool::release(SequenceKv& seq) {
  TT_CHECK(!seq.released_);
  const size_t held = seq.blocks_held();
  for (auto& layer : seq.self_blocks_) {
    for (int b : layer) free_block(b);
    layer.clear();
  }
  for (auto& layer : seq.cross_blocks_) {
    for (int b : layer) free_block(b);
    layer.clear();
  }
  blocks_in_use_ -= held;
  blocks_reserved_ -= seq.reserved_blocks_;
  --active_;
  seq.released_ = true;
  sweep_empty_slabs();
}

int KvCachePool::alloc_block() {
  if (free_blocks_.empty()) {
    // Reuse a swept slab slot if one exists, else append a new slab.
    size_t slab_idx = slabs_.size();
    for (size_t i = 0; i < slabs_.size(); ++i) {
      if (slabs_[i].buffer.empty()) {
        slab_idx = i;
        break;
      }
    }
    if (slab_idx == slabs_.size()) slabs_.emplace_back();
    Slab& slab = slabs_[slab_idx];
    slab.buffer = AlignedBuffer(slab_bytes());
    slab.live_blocks = 0;
    tracker_.on_malloc(slab_bytes());
    if (options_.max_bytes > 0) {
      TT_CHECK_LE(tracker_.stats().current_device_bytes, options_.max_bytes);
    }
    for (int i = 0; i < options_.blocks_per_slab; ++i) {
      free_blocks_.push_back(static_cast<int>(slab_idx) *
                                 options_.blocks_per_slab +
                             i);
    }
  }
  const int block_id = free_blocks_.back();
  free_blocks_.pop_back();
  ++slabs_[static_cast<size_t>(block_id / options_.blocks_per_slab)]
        .live_blocks;
  return block_id;
}

void KvCachePool::free_block(int block_id) {
  Slab& slab = slabs_[static_cast<size_t>(block_id / options_.blocks_per_slab)];
  TT_CHECK_GT(slab.live_blocks, 0);
  --slab.live_blocks;
  free_blocks_.push_back(block_id);
}

float* KvCachePool::block_ptr(int block_id) {
  Slab& slab = slabs_[static_cast<size_t>(block_id / options_.blocks_per_slab)];
  TT_CHECK(!slab.buffer.empty());
  return reinterpret_cast<float*>(slab.buffer.data()) +
         static_cast<size_t>(block_id % options_.blocks_per_slab) *
             block_floats_;
}

void KvCachePool::sweep_empty_slabs() {
  bool swept = false;
  std::vector<bool> freed(slabs_.size(), false);
  for (size_t i = 0; i < slabs_.size(); ++i) {
    Slab& slab = slabs_[i];
    if (!slab.buffer.empty() && slab.live_blocks == 0) {
      slab.buffer = AlignedBuffer();
      tracker_.on_free(slab_bytes());
      freed[i] = true;
      swept = true;
    }
  }
  if (!swept) return;
  std::erase_if(free_blocks_, [&](int b) {
    return freed[static_cast<size_t>(b / options_.blocks_per_slab)];
  });
}

int KvCachePool::num_slabs() const {
  int n = 0;
  for (const auto& slab : slabs_) {
    if (!slab.buffer.empty()) ++n;
  }
  return n;
}

}  // namespace turbo::genserve
