#include "genserve/kv_cache_pool.h"

#include <algorithm>
#include <limits>
#include <utility>

#include "common/check.h"
#include "common/hash.h"

namespace turbo::genserve {

namespace {

size_t ceil_div(size_t a, size_t b) { return (a + b - 1) / b; }

}  // namespace

// ---------------------------------------------------------------------------
// SequenceKv
// ---------------------------------------------------------------------------

SequenceKv::SequenceKv(KvCachePool* pool, int64_t id, int s_src,
                       int max_new_tokens)
    : pool_(pool), id_(id), s_src_(s_src), max_new_(max_new_tokens) {}

SequenceKv::~SequenceKv() {
  if (!released_) pool_->release(*this);
}

int SequenceKv::capacity_tokens() const {
  if (self_blocks_.empty()) return 0;
  return static_cast<int>(self_blocks_[0].size()) *
         pool_->options_.block_tokens;
}

size_t SequenceKv::blocks_held() const {
  size_t n = 0;
  for (const auto& layer : self_blocks_) n += layer.size();
  const auto& share = pool_->shares_.at(share_id_);
  for (const auto& layer : share.blocks) n += layer.size();
  return n;
}

bool SequenceKv::needs_cross_init() const {
  if (!cross_creator_) return false;
  return !pool_->shares_.at(share_id_).ready;
}

bool SequenceKv::cross_shared() const {
  return pool_->shares_.at(share_id_).refs > 1;
}

bool SequenceKv::cross_ready() const {
  return pool_->shares_.at(share_id_).ready;
}

void SequenceKv::mark_cross_ready() {
  TT_CHECK(cross_creator_);
  pool_->shares_.at(share_id_).ready = true;
}

float* SequenceKv::self_k(int layer, int t) {
  const int bt = pool_->options_.block_tokens;
  const auto& blocks = self_blocks_[static_cast<size_t>(layer)];
  TT_CHECK_LT(static_cast<size_t>(t / bt), blocks.size());
  float* base = pool_->block_ptr(blocks[static_cast<size_t>(t / bt)]);
  return base + static_cast<size_t>(t % bt) * pool_->hidden_;
}

float* SequenceKv::self_v(int layer, int t) {
  const int bt = pool_->options_.block_tokens;
  const auto& blocks = self_blocks_[static_cast<size_t>(layer)];
  TT_CHECK_LT(static_cast<size_t>(t / bt), blocks.size());
  float* base = pool_->block_ptr(blocks[static_cast<size_t>(t / bt)]);
  return base + static_cast<size_t>(bt + t % bt) * pool_->hidden_;
}

float* SequenceKv::cross_k(int layer, int s) {
  const int bt = pool_->options_.block_tokens;
  const auto& blocks =
      pool_->shares_.at(share_id_).blocks[static_cast<size_t>(layer)];
  TT_CHECK_LT(static_cast<size_t>(s / bt), blocks.size());
  float* base = pool_->block_ptr(blocks[static_cast<size_t>(s / bt)]);
  return base + static_cast<size_t>(s % bt) * pool_->hidden_;
}

float* SequenceKv::cross_v(int layer, int s) {
  const int bt = pool_->options_.block_tokens;
  const auto& blocks =
      pool_->shares_.at(share_id_).blocks[static_cast<size_t>(layer)];
  TT_CHECK_LT(static_cast<size_t>(s / bt), blocks.size());
  float* base = pool_->block_ptr(blocks[static_cast<size_t>(s / bt)]);
  return base + static_cast<size_t>(bt + s % bt) * pool_->hidden_;
}

// Shared extents walk: a block holds `bt` K rows followed by `bt` V rows,
// so block b contributes one span {base, base + bt * hidden, rows}.
void SequenceKv::block_extents(const std::vector<int>& blocks, int count,
                               std::vector<model::KvSpan>& out) const {
  const int bt = pool_->options_.block_tokens;
  const int hidden = pool_->hidden_;
  out.clear();
  for (int first = 0; first < count; first += bt) {
    const size_t idx = static_cast<size_t>(first / bt);
    TT_CHECK_LT(idx, blocks.size());
    const float* base = pool_->block_ptr(blocks[idx]);
    out.push_back(model::KvSpan{base,
                                base + static_cast<size_t>(bt) * hidden,
                                std::min(bt, count - first)});
  }
}

bool SequenceKv::self_extents(int layer, int count,
                              std::vector<model::KvSpan>& out) {
  block_extents(self_blocks_[static_cast<size_t>(layer)], count, out);
  return true;
}

bool SequenceKv::cross_extents(int layer, std::vector<model::KvSpan>& out) {
  block_extents(pool_->shares_.at(share_id_).blocks[static_cast<size_t>(layer)],
                s_src_, out);
  return true;
}

// ---------------------------------------------------------------------------
// KvCachePool
// ---------------------------------------------------------------------------

KvCachePool::KvCachePool(const model::ModelConfig& config,
                         KvPoolOptions options)
    : hidden_(config.hidden),
      num_layers_(config.num_layers),
      options_(options),
      block_floats_(static_cast<size_t>(2) * options.block_tokens *
                    config.hidden) {
  TT_CHECK_GE(options_.block_tokens, 1);
  TT_CHECK_GE(options_.blocks_per_slab, 1);
  // The capacity floor is one reclaim grain: a slab under kSlab, one
  // class-rounded block span under kTlsf.
  const size_t grain = options_.arena == KvArenaKind::kTlsf
                           ? memory::TlsfArena::good_size(block_bytes())
                           : slab_bytes();
  if (options_.max_bytes > 0) {
    TT_CHECK_MSG(options_.max_bytes >= grain,
                 "max_bytes below one allocation grain: "
                     << options_.max_bytes);
  }
  if (options_.slab_budget != nullptr) {
    if (options_.slab_budget->total_bytes() > 0) {
      TT_CHECK_MSG(options_.slab_budget->total_bytes() >= grain,
                   "shared budget below one allocation grain: "
                       << options_.slab_budget->total_bytes());
    }
    budget_client_ = options_.slab_budget->register_client(
        options_.budget_client_name.empty() ? "kv-pool"
                                            : options_.budget_client_name,
        options_.budget_guarantee_bytes);
  }
  if (options_.arena == KvArenaKind::kTlsf) {
    // Charging the class-rounded span (not raw block_bytes) keeps every
    // free hole a multiple of the pool's single allocation size, so the
    // byte gates below are exact: the arena can never refuse while the
    // budget math says a block fits.
    tlsf_unit_ = grain;
    size_t cap = options_.tlsf_initial_bytes;
    if (cap == 0) {
      const size_t ceiling = max_blocks_ceiling();
      cap = ceiling != std::numeric_limits<size_t>::max()
                ? ceiling * tlsf_unit_   // bounded: reserve the ceiling once
                : 64 * tlsf_unit_;       // unbounded: start small, double
    }
    cap = std::max(cap, tlsf_unit_);
    tlsf_ = std::make_unique<memory::TlsfArena>(cap);
    tlsf_buffer_ = AlignedBuffer(tlsf_->capacity_bytes());
  }
  radix_ = std::make_unique<BlockRadixTree>(options_.block_tokens, num_layers_,
                                            options_.chunk_hash_override);
}

KvCachePool::~KvCachePool() {
  // Sequences must not outlive the pool; a live one here would dangle.
  TT_CHECK_EQ(active_, 0);
  TT_CHECK(shares_.empty());
  // With no live sequence every radix node is unpinned, so the cache tier
  // drains completely and the footprint returns to zero.
  drop_radix_cache();
  TT_CHECK_EQ(blocks_in_use_, 0u);
  if (options_.slab_budget != nullptr) {
    // All sequences released -> every slab swept -> zero bytes charged.
    options_.slab_budget->unregister_client(budget_client_);
  }
}

size_t KvCachePool::self_blocks_for(int max_new_tokens) const {
  TT_CHECK_GE(max_new_tokens, 1);
  return static_cast<size_t>(num_layers_) *
         ceil_div(static_cast<size_t>(max_new_tokens),
                  static_cast<size_t>(options_.block_tokens));
}

size_t KvCachePool::cross_blocks_for(int s_src) const {
  // s_src == 0 is the causal (decoder-only) case: no encoder, no cross
  // blocks.
  TT_CHECK_GE(s_src, 0);
  return static_cast<size_t>(num_layers_) *
         ceil_div(static_cast<size_t>(s_src),
                  static_cast<size_t>(options_.block_tokens));
}

size_t KvCachePool::blocks_for(int s_src, int max_new_tokens) const {
  return cross_blocks_for(s_src) + self_blocks_for(max_new_tokens);
}

KvCachePool::SharePlan KvCachePool::plan_share(
    const std::vector<int>& prompt_tokens) const {
  SharePlan plan;
  if (options_.enable_prefix_sharing) plan.share_id = find_share(prompt_tokens);
  return plan;
}

size_t KvCachePool::blocks_for_prompt(const std::vector<int>& prompt_tokens,
                                      int max_new_tokens) const {
  return blocks_for_prompt(prompt_tokens, max_new_tokens,
                           plan_share(prompt_tokens));
}

size_t KvCachePool::blocks_for_prompt(const std::vector<int>& prompt_tokens,
                                      int max_new_tokens,
                                      const SharePlan& plan) const {
  if (plan.share_id >= 0) {
    // The prompt is resident: its cross blocks (and their reservation) are
    // already charged to the live share, so only the self side is marginal.
    return self_blocks_for(max_new_tokens);
  }
  return blocks_for(static_cast<int>(prompt_tokens.size()), max_new_tokens);
}

size_t KvCachePool::max_blocks() const {
  if (options_.arena == KvArenaKind::kTlsf) {
    // Byte-granular: blocks come one span at a time, so every charged byte
    // of headroom converts to capacity — no whole-slab rounding.
    size_t cap = std::numeric_limits<size_t>::max();
    if (options_.max_bytes > 0) cap = options_.max_bytes / tlsf_unit_;
    if (options_.slab_budget != nullptr) {
      const size_t avail = options_.slab_budget->available_bytes();
      if (avail != std::numeric_limits<size_t>::max()) {
        const size_t mine = tracker_.stats().current_device_bytes;
        cap = std::min(cap, (mine + avail) / tlsf_unit_);
      }
    }
    return cap;
  }
  size_t cap = std::numeric_limits<size_t>::max();
  if (options_.max_bytes > 0) {
    cap = options_.max_bytes / slab_bytes() *
          static_cast<size_t>(options_.blocks_per_slab);
  }
  if (options_.slab_budget != nullptr) {
    const size_t avail = options_.slab_budget->available_bytes();
    if (avail != std::numeric_limits<size_t>::max()) {
      // What this pool could hold right now: its own slabs (already
      // charged) plus whole slabs the budget's free headroom still backs.
      // Only whole slabs count — blocks come from slabs, so a fractional
      // remainder buys nothing.
      const size_t mine = tracker_.stats().current_device_bytes;
      cap = std::min(cap, (mine + avail) / slab_bytes() *
                              static_cast<size_t>(options_.blocks_per_slab));
    }
  }
  return cap;
}

size_t KvCachePool::max_blocks_ceiling() const {
  if (options_.arena == KvArenaKind::kTlsf) {
    size_t cap = std::numeric_limits<size_t>::max();
    if (options_.max_bytes > 0) cap = options_.max_bytes / tlsf_unit_;
    if (options_.slab_budget != nullptr) {
      const size_t total = options_.slab_budget->total_bytes();
      if (total > 0) cap = std::min(cap, total / tlsf_unit_);
    }
    return cap;
  }
  size_t cap = std::numeric_limits<size_t>::max();
  if (options_.max_bytes > 0) {
    cap = options_.max_bytes / slab_bytes() *
          static_cast<size_t>(options_.blocks_per_slab);
  }
  if (options_.slab_budget != nullptr) {
    const size_t total = options_.slab_budget->total_bytes();
    if (total > 0) {
      cap = std::min(cap, total / slab_bytes() *
                              static_cast<size_t>(options_.blocks_per_slab));
    }
  }
  return cap;
}

size_t KvCachePool::reclaim_grain_bytes() const {
  return options_.arena == KvArenaKind::kTlsf ? tlsf_unit_ : slab_bytes();
}

std::optional<memory::TlsfArenaStats> KvCachePool::tlsf_stats() const {
  if (tlsf_ == nullptr) return std::nullopt;
  return tlsf_->stats();
}

bool KvCachePool::can_admit(int s_src, int max_new_tokens) const {
  return blocks_reserved_ + blocks_for(s_src, max_new_tokens) <= max_blocks();
}

bool KvCachePool::can_admit_prompt(const std::vector<int>& prompt_tokens,
                                   int max_new_tokens) const {
  return can_admit_prompt(prompt_tokens, max_new_tokens,
                          plan_share(prompt_tokens));
}

bool KvCachePool::can_admit_prompt(const std::vector<int>& prompt_tokens,
                                   int max_new_tokens,
                                   const SharePlan& plan) const {
  return blocks_reserved_ +
             blocks_for_prompt(prompt_tokens, max_new_tokens, plan) <=
         max_blocks();
}

uint64_t KvCachePool::prompt_hash(const std::vector<int>& prompt_tokens) const {
  // Exact-match confirmation happens against the stored prompt, so
  // collisions cost a compare, never correctness (the override exists so
  // tests can force that path deterministically).
  if (options_.prompt_hash_override) {
    return options_.prompt_hash_override(prompt_tokens);
  }
  return fnv1a_tokens(prompt_tokens);
}

int64_t KvCachePool::find_share(const std::vector<int>& prompt_tokens) const {
  const uint64_t key = prompt_hash(prompt_tokens);
  const auto [begin, end] = prompt_index_.equal_range(key);
  for (auto it = begin; it != end; ++it) {
    const CrossShare& share = shares_.at(it->second);
    if (share.prompt == prompt_tokens) return it->second;
  }
  return -1;
}

int64_t KvCachePool::create_share(std::vector<int> prompt_tokens, int s_src) {
  const int64_t id = next_share_id_++;
  CrossShare share;
  share.key = prompt_hash(prompt_tokens);
  // A causal share owns no cross blocks and nothing to encode: born ready,
  // so needs_cross_init() is always false for decoder-only sequences.
  share.ready = (s_src == 0);
  share.reserved_blocks = cross_blocks_for(s_src);
  blocks_reserved_ += share.reserved_blocks;
  const size_t per_layer =
      share.reserved_blocks / static_cast<size_t>(num_layers_);
  share.blocks.resize(static_cast<size_t>(num_layers_));
  for (auto& layer : share.blocks) {
    for (size_t i = 0; i < per_layer; ++i) layer.push_back(alloc_block());
  }
  if (options_.enable_prefix_sharing && !prompt_tokens.empty()) {
    prompt_index_.emplace(share.key, id);
  }
  share.prompt = std::move(prompt_tokens);
  shares_.emplace(id, std::move(share));
  return id;
}

void KvCachePool::unref_share(int64_t share_id) {
  CrossShare& share = shares_.at(share_id);
  TT_CHECK_GT(share.refs, 0);
  if (--share.refs > 0) return;
  for (const auto& layer : share.blocks) {
    for (const int b : layer) unref_block(b);
  }
  blocks_reserved_ -= share.reserved_blocks;
  const auto [begin, end] = prompt_index_.equal_range(share.key);
  for (auto it = begin; it != end; ++it) {
    if (it->second == share_id) {
      prompt_index_.erase(it);
      break;
    }
  }
  shares_.erase(share_id);
}

std::unique_ptr<SequenceKv> KvCachePool::admit_with_share(int64_t seq_id,
                                                          int s_src,
                                                          int max_new_tokens,
                                                          int64_t share_id,
                                                          bool created_share) {
  CrossShare& share = shares_.at(share_id);
  std::unique_ptr<SequenceKv> seq(
      new SequenceKv(this, seq_id, s_src, max_new_tokens));
  seq->share_id_ = share_id;
  ++share.refs;
  if (!share.ready && !share.creator_live) {
    // First live admit of this prompt (or the previous creator released
    // before projecting cross K/V): this sequence owes the init.
    share.creator_live = true;
    seq->cross_creator_ = true;
  }
  if (!created_share) ++prefix_hits_;

  seq->reserved_blocks_ = self_blocks_for(max_new_tokens);
  blocks_reserved_ += seq->reserved_blocks_;
  ++active_;

  seq->self_blocks_.resize(static_cast<size_t>(num_layers_));
  make_room(static_cast<size_t>(num_layers_));
  for (auto& layer : seq->self_blocks_) layer.push_back(alloc_block());
  TT_CHECK_LE(blocks_in_use_, blocks_reserved_ + radix_cached_blocks());
  live_.insert(seq.get());
  return seq;
}

std::unique_ptr<SequenceKv> KvCachePool::admit(
    int64_t seq_id, const std::vector<int>& prompt_tokens,
    int max_new_tokens) {
  // Resolve the share once: the same lookup decides both the marginal
  // demand (shared prompts cost no cross blocks) and the mapping.
  return admit(seq_id, prompt_tokens, max_new_tokens,
               plan_share(prompt_tokens));
}

std::unique_ptr<SequenceKv> KvCachePool::admit(
    int64_t seq_id, const std::vector<int>& prompt_tokens, int max_new_tokens,
    const SharePlan& plan) {
  const int s_src = static_cast<int>(prompt_tokens.size());
  const bool created = plan.share_id < 0;
  const size_t marginal =
      blocks_for_prompt(prompt_tokens, max_new_tokens, plan);
  TT_CHECK_MSG(blocks_reserved_ + marginal <= max_blocks(),
               "KV pool over capacity admitting sequence " << seq_id);
  const int64_t share_id =
      created ? create_share(prompt_tokens, s_src) : plan.share_id;
  return admit_with_share(seq_id, s_src, max_new_tokens, share_id, created);
}

std::unique_ptr<SequenceKv> KvCachePool::admit(int64_t seq_id, int s_src,
                                               int max_new_tokens) {
  TT_CHECK_MSG(can_admit(s_src, max_new_tokens),
               "KV pool over capacity admitting sequence " << seq_id);
  // No prompt key: the share is anonymous (never matched), but still owns
  // the cross blocks so forks of this sequence share them refcounted.
  const int64_t share_id = create_share({}, s_src);
  return admit_with_share(seq_id, s_src, max_new_tokens, share_id,
                          /*created_share=*/true);
}

size_t KvCachePool::blocks_for_admit_now(
    const std::vector<int>& prompt_tokens) const {
  return blocks_for_admit_now(prompt_tokens, plan_share(prompt_tokens));
}

size_t KvCachePool::blocks_for_admit_now(const std::vector<int>& prompt_tokens,
                                         const SharePlan& plan) const {
  // What admit() materializes immediately: cross blocks unless the prompt
  // is resident, plus the first self block of every layer.
  size_t now = static_cast<size_t>(num_layers_);
  if (plan.share_id < 0) {
    now += cross_blocks_for(static_cast<int>(prompt_tokens.size()));
  }
  return now;
}

bool KvCachePool::can_admit_now(const std::vector<int>& prompt_tokens,
                                size_t headroom_blocks) const {
  return can_admit_now(prompt_tokens, plan_share(prompt_tokens),
                       headroom_blocks);
}

bool KvCachePool::can_admit_now(const std::vector<int>& prompt_tokens,
                                const SharePlan& plan,
                                size_t headroom_blocks) const {
  return charged_blocks() + blocks_for_admit_now(prompt_tokens, plan) +
             headroom_blocks <=
         max_blocks();
}

bool KvCachePool::can_readmit_now(const std::vector<int>& prompt_tokens,
                                  int token_rows,
                                  size_t headroom_blocks) const {
  return can_readmit_now(prompt_tokens, plan_share(prompt_tokens), token_rows,
                         headroom_blocks);
}

bool KvCachePool::can_readmit_now(const std::vector<int>& prompt_tokens,
                                  const SharePlan& plan, int token_rows,
                                  size_t headroom_blocks) const {
  // blocks_for_admit_now already counts the first self block per layer;
  // the remaining replay rows add the blocks beyond it.
  const size_t rows = static_cast<size_t>(std::max(token_rows, 1));
  const size_t replay_extra =
      static_cast<size_t>(num_layers_) *
      (ceil_div(rows, static_cast<size_t>(options_.block_tokens)) - 1);
  return can_admit_now(prompt_tokens, plan, headroom_blocks + replay_extra);
}

std::unique_ptr<SequenceKv> KvCachePool::admit_optimistic(
    int64_t seq_id, const std::vector<int>& prompt_tokens,
    int max_new_tokens) {
  return admit_optimistic(seq_id, prompt_tokens, max_new_tokens,
                          plan_share(prompt_tokens));
}

std::unique_ptr<SequenceKv> KvCachePool::admit_optimistic(
    int64_t seq_id, const std::vector<int>& prompt_tokens, int max_new_tokens,
    const SharePlan& plan) {
  TT_CHECK_MSG(can_admit_now(prompt_tokens, plan, 0),
               "KV pool out of blocks optimistically admitting sequence "
                   << seq_id);
  const bool created = plan.share_id < 0;
  const int64_t share_id =
      created ? create_share(prompt_tokens,
                             static_cast<int>(prompt_tokens.size()))
              : plan.share_id;
  // The worst case still lands in blocks_reserved_ (inside
  // admit_with_share); under optimistic admission that sum may exceed
  // max_blocks() — the overshoot is exactly the oversubscription that
  // preempt-and-requeue absorbs.
  return admit_with_share(seq_id, static_cast<int>(prompt_tokens.size()),
                          max_new_tokens, share_id, created);
}

// ---------------------------------------------------------------------------
// Causal (decoder-only) admission over the radix tier
// ---------------------------------------------------------------------------

KvCachePool::CausalPlan KvCachePool::plan_causal(
    const std::vector<int>& fed_tokens) const {
  CausalPlan plan;
  if (!options_.enable_radix_tree || fed_tokens.empty()) return plan;
  // Cap at size - 1: the final fed token's step must run live (its logits
  // seed the next token), so a fully cached history still replays one row.
  const auto match = radix_->match(fed_tokens,
                                   static_cast<int>(fed_tokens.size()) - 1);
  plan.prefix_rows = match.rows;
  plan.chain = match.chain;
  return plan;
}

size_t KvCachePool::blocks_for_causal(int prompt_len,
                                      int max_new_tokens) const {
  TT_CHECK_GE(prompt_len, 1);
  return self_blocks_for(prompt_len + max_new_tokens);
}

bool KvCachePool::can_admit_causal(int prompt_len, int max_new_tokens) const {
  return blocks_reserved_ + blocks_for_causal(prompt_len, max_new_tokens) <=
         max_blocks();
}

size_t KvCachePool::blocks_for_causal_now(const CausalPlan& plan) const {
  // One fresh self block per layer for the first live row, plus the chain
  // nodes whose bytes currently sit in the evictable tier: adopting those
  // pins them, moving them into the charged set.
  size_t now = static_cast<size_t>(num_layers_);
  for (const auto* node : plan.chain) {
    if (node->pins == 0) now += static_cast<size_t>(num_layers_);
  }
  return now;
}

bool KvCachePool::can_admit_causal_now(const CausalPlan& plan,
                                       size_t headroom_blocks) const {
  return charged_blocks() + blocks_for_causal_now(plan) + headroom_blocks <=
         max_blocks();
}

bool KvCachePool::can_readmit_causal_now(const CausalPlan& plan,
                                         int token_rows,
                                         size_t headroom_blocks) const {
  // blocks_for_causal_now covers the first block past the prefix; replay
  // rows beyond it add the rest.
  const size_t rows = std::max(static_cast<size_t>(std::max(token_rows, 1)),
                               static_cast<size_t>(plan.prefix_rows) + 1);
  const size_t replay_extra =
      static_cast<size_t>(num_layers_) *
      (ceil_div(rows, static_cast<size_t>(options_.block_tokens)) -
       static_cast<size_t>(plan.chain.size()) - 1);
  return can_admit_causal_now(plan, headroom_blocks + replay_extra);
}

std::unique_ptr<SequenceKv> KvCachePool::admit_causal(
    int64_t seq_id, const std::vector<int>& prompt_tokens, int max_new_tokens,
    const CausalPlan& plan) {
  TT_CHECK_GE(prompt_tokens.size(), 1u);
  TT_CHECK_MSG(can_admit_causal_now(plan),
               "KV pool out of blocks admitting causal sequence " << seq_id);
  const int total_rows =
      static_cast<int>(prompt_tokens.size()) + max_new_tokens;
  // The share is empty (s_src 0): nothing to encode, no cross blocks, but
  // keeping the share object lets causal sequences reuse the whole
  // seq2seq lifecycle (fork refcounts, release, invariants) unchanged.
  const int64_t share_id = create_share({}, /*s_src=*/0);
  std::unique_ptr<SequenceKv> seq(
      new SequenceKv(this, seq_id, /*s_src=*/0, total_rows));
  seq->causal_ = true;
  seq->share_id_ = share_id;
  ++shares_.at(share_id).refs;
  seq->reserved_blocks_ = self_blocks_for(total_rows);
  blocks_reserved_ += seq->reserved_blocks_;
  ++active_;
  seq->self_blocks_.resize(static_cast<size_t>(num_layers_));
  // Pin before making room: the chain must never be evicted out from
  // under the admit that is adopting it.
  attach_radix(*seq, plan);
  make_room(static_cast<size_t>(num_layers_));
  for (auto& layer : seq->self_blocks_) layer.push_back(alloc_block());
  TT_CHECK_LE(blocks_in_use_, blocks_reserved_ + radix_cached_blocks());
  live_.insert(seq.get());
  return seq;
}

bool KvCachePool::can_resume_causal(const SequenceKv& seq,
                                    const CausalPlan& plan, int token_rows,
                                    size_t headroom_blocks) const {
  TT_CHECK(seq.parked_);
  TT_CHECK(seq.causal_);
  const size_t rows = std::max(static_cast<size_t>(std::max(token_rows, 1)),
                               static_cast<size_t>(plan.prefix_rows) + 1);
  size_t demand =
      static_cast<size_t>(num_layers_) *
      (ceil_div(rows, static_cast<size_t>(options_.block_tokens)) -
       static_cast<size_t>(plan.chain.size()));
  for (const auto* node : plan.chain) {
    if (node->pins == 0) demand += static_cast<size_t>(num_layers_);
  }
  return charged_blocks() + demand + headroom_blocks <= max_blocks();
}

void KvCachePool::resume_causal(SequenceKv& seq, const CausalPlan& plan) {
  TT_CHECK(!seq.released_);
  TT_CHECK(seq.causal_);
  TT_CHECK_MSG(can_resume_causal(seq, plan, plan.prefix_rows + 1),
               "KV pool out of blocks resuming causal sequence " << seq.id_);
  seq.parked_ = false;
  --parked_;
  seq.reserved_blocks_ = self_blocks_for(seq.max_new_);
  blocks_reserved_ += seq.reserved_blocks_;
  attach_radix(seq, plan);
  make_room(static_cast<size_t>(num_layers_));
  for (auto& layer : seq.self_blocks_) layer.push_back(alloc_block());
  tracker_.on_resume();
  TT_CHECK_LE(blocks_in_use_, blocks_reserved_ + radix_cached_blocks());
}

void KvCachePool::attach_radix(SequenceKv& seq, const CausalPlan& plan) {
  TT_CHECK(seq.radix_chain_.empty());
  TT_CHECK_EQ(seq.prefix_rows_, 0);
  if (plan.chain.empty()) return;
  TT_CHECK_EQ(static_cast<size_t>(plan.prefix_rows),
              plan.chain.size() * static_cast<size_t>(options_.block_tokens));
  radix_->pin_chain(plan.chain);
  seq.radix_chain_ = plan.chain;
  seq.prefix_rows_ = plan.prefix_rows;
  for (int layer = 0; layer < num_layers_; ++layer) {
    auto& blocks = seq.self_blocks_[static_cast<size_t>(layer)];
    for (const auto* node : plan.chain) {
      const int b = node->blocks[static_cast<size_t>(layer)];
      ref_block(b);
      blocks.push_back(b);
    }
  }
  ++radix_hits_;
  radix_hit_rows_ += static_cast<size_t>(plan.prefix_rows);
}

void KvCachePool::detach_radix(SequenceKv& seq) {
  if (!seq.radix_chain_.empty()) radix_->unpin_chain(seq.radix_chain_);
  seq.radix_chain_.clear();
  seq.prefix_rows_ = 0;
}

void KvCachePool::donate_radix(const SequenceKv& seq,
                               const std::vector<int>& fed_tokens) {
  if (!options_.enable_radix_tree) return;
  TT_CHECK(seq.causal_);
  TT_CHECK(!seq.parked_);
  const int bt = options_.block_tokens;
  const int full_rows =
      std::min(static_cast<int>(fed_tokens.size()), seq.capacity_tokens());
  BlockRadixTree::Node* node = nullptr;
  for (int first = 0; first + bt <= full_rows; first += bt) {
    const int* chunk = fed_tokens.data() + first;
    BlockRadixTree::Node* child = radix_->find_child(node, chunk);
    if (child == nullptr) {
      // New chunk: the tree takes its own reference on the sequence's
      // blocks, so they survive the sequence's release as evictable cache.
      std::vector<int> layer_blocks(static_cast<size_t>(num_layers_));
      const size_t idx = static_cast<size_t>(first / bt);
      for (int layer = 0; layer < num_layers_; ++layer) {
        const int b = seq.self_blocks_[static_cast<size_t>(layer)][idx];
        ref_block(b);
        layer_blocks[static_cast<size_t>(layer)] = b;
      }
      child = radix_->insert_child(node, chunk, std::move(layer_blocks));
    }
    node = child;
  }
}

void KvCachePool::drop_radix_cache() {
  std::vector<int> freed;
  while (radix_ && radix_->evict_lru(&freed)) ++radix_evictions_;
  for (const int b : freed) unref_block(b);
  sweep_empty_slabs();
}

size_t KvCachePool::charged_blocks() const {
  if (radix_ == nullptr) return blocks_in_use_;
  // Discount only tier bytes that eviction would actually hand back to the
  // free list: blocks of unpinned nodes held by nothing but the tree. A
  // donated block still CoW-shared with a live sequence (a fork of the
  // donor, or another adopter's chain) frees nothing when its node is
  // evicted — counting it as headroom would let admission gates pass and
  // then blow the byte cap when make_room runs dry. Unpinned nodes never
  // have pinned descendants (chains pin root-first), so every block
  // counted here is genuinely reachable by LRU leaf eviction.
  size_t reclaimable = 0;
  radix_->for_each([&](const BlockRadixTree::Node& n) {
    if (n.pins > 0) return;
    for (const int b : n.blocks) {
      if (block_refs_[static_cast<size_t>(b)] == 1) ++reclaimable;
    }
  });
  return blocks_in_use_ - std::min(blocks_in_use_, reclaimable);
}

void KvCachePool::make_room(size_t fresh) {
  if (radix_ == nullptr) return;
  // Freed blocks go back on the free list (not swept): the allocation this
  // call is making room for reuses them directly, without slab churn.
  std::vector<int> freed;
  while (blocks_in_use_ + fresh > max_blocks() && radix_->evict_lru(&freed)) {
    for (const int b : freed) unref_block(b);
    freed.clear();
    ++radix_evictions_;
  }
}

void KvCachePool::preempt(SequenceKv& seq) {
  TT_CHECK(!seq.released_);
  TT_CHECK_MSG(!seq.parked_, "double preempt of sequence " << seq.id_);
  TT_CHECK_MSG(!seq.needs_cross_init(),
               "preempting sequence " << seq.id_ << " before cross init");
  const size_t before = blocks_in_use_;
  // Drop every self reference. A block CoW-shared with a fork stays live
  // through the other holders — only the victim's unshared storage frees.
  // An adopted radix prefix is surrendered too (unpinned back into the
  // evictable tier); resume re-plans against the tree, so a prefix that
  // survives eviction until then is re-adopted instead of replayed.
  detach_radix(seq);
  for (auto& layer : seq.self_blocks_) {
    for (const int b : layer) unref_block(b);
    layer.clear();
  }
  blocks_reserved_ -= seq.reserved_blocks_;
  seq.reserved_blocks_ = 0;
  seq.parked_ = true;
  ++parked_;
  tracker_.on_preempt((before - blocks_in_use_) * block_bytes());
  sweep_empty_slabs();
}

bool KvCachePool::can_resume(const SequenceKv& seq, int token_rows,
                             size_t headroom_blocks) const {
  TT_CHECK(seq.parked_);
  const size_t rows = static_cast<size_t>(std::max(token_rows, 1));
  const size_t replay_blocks =
      static_cast<size_t>(num_layers_) *
      ceil_div(rows, static_cast<size_t>(options_.block_tokens));
  return charged_blocks() + replay_blocks + headroom_blocks <= max_blocks();
}

void KvCachePool::resume(SequenceKv& seq) {
  TT_CHECK(!seq.released_);
  TT_CHECK_MSG(can_resume(seq),
               "KV pool out of blocks resuming sequence " << seq.id_);
  seq.parked_ = false;
  --parked_;
  seq.reserved_blocks_ = self_blocks_for(seq.max_new_);
  blocks_reserved_ += seq.reserved_blocks_;
  make_room(static_cast<size_t>(num_layers_));
  for (auto& layer : seq.self_blocks_) layer.push_back(alloc_block());
  tracker_.on_resume();
  TT_CHECK_LE(blocks_in_use_, blocks_reserved_ + radix_cached_blocks());
}

bool KvCachePool::can_fork(const SequenceKv& parent) const {
  return blocks_reserved_ + self_blocks_for(parent.max_new_) <= max_blocks();
}

std::unique_ptr<SequenceKv> KvCachePool::fork(const SequenceKv& parent,
                                              int64_t child_id) {
  TT_CHECK(!parent.released_);
  TT_CHECK_MSG(can_fork(parent),
               "KV pool over capacity forking sequence " << parent.id_);
  std::unique_ptr<SequenceKv> child(
      new SequenceKv(this, child_id, parent.s_src_, parent.max_new_));
  child->share_id_ = parent.share_id_;
  ++shares_.at(parent.share_id_).refs;
  // Share every materialized self block; the child copies one only when it
  // first writes into it (ensure_token's CoW barrier).
  child->self_blocks_ = parent.self_blocks_;
  for (const auto& layer : child->self_blocks_) {
    for (const int b : layer) ref_block(b);
  }
  // A causal child inherits the parent's pinned radix prefix — pinning it
  // again keeps the invariant that every sequence-held tree block belongs
  // to a pinned node (so the evictable tier is always genuinely freeable).
  child->causal_ = parent.causal_;
  child->prefix_rows_ = parent.prefix_rows_;
  child->radix_chain_ = parent.radix_chain_;
  if (!child->radix_chain_.empty()) radix_->pin_chain(child->radix_chain_);
  child->reserved_blocks_ = self_blocks_for(parent.max_new_);
  blocks_reserved_ += child->reserved_blocks_;
  ++active_;
  ++forks_;
  live_.insert(child.get());
  TT_CHECK_LE(blocks_in_use_, blocks_reserved_ + radix_cached_blocks());
  return child;
}

void KvCachePool::ensure_token(SequenceKv& seq, int t) {
  // Worst-case admits reserved every block this call could materialize, so
  // exhaustion here means the caller admitted optimistically but did not
  // route growth through try_ensure_token + preemption.
  TT_CHECK_MSG(try_ensure_token(seq, t),
               "KV pool exhausted growing sequence " << seq.id_
                                                     << " to token " << t);
}

bool KvCachePool::try_ensure_token(SequenceKv& seq, int t) {
  TT_CHECK(!seq.released_);
  TT_CHECK_MSG(!seq.parked_,
               "growing preempted sequence " << seq.id_ << " before resume");
  TT_CHECK_GE(t, 0);
  TT_CHECK_LT(t, seq.max_new_);
  // Adopted radix rows are shared history: rewriting one would corrupt
  // every other adopter. The caller decodes from prefix_rows() onward.
  if (seq.causal_) TT_CHECK_GE(t, seq.prefix_rows_);
  const int bt = options_.block_tokens;
  const size_t need = static_cast<size_t>(t / bt) + 1;
  // Count the new blocks this grow would materialize — growth to cover t
  // plus a CoW copy when the receiving block is shared (copying frees
  // nothing: the shared original stays live through its other holders) —
  // so exhaustion is detected before any state changes.
  size_t fresh = 0;
  for (int layer = 0; layer < num_layers_; ++layer) {
    const auto& blocks = seq.self_blocks_[static_cast<size_t>(layer)];
    if (blocks.size() < need) {
      fresh += need - blocks.size();
    } else if (block_refs_[static_cast<size_t>(blocks[need - 1])] > 1) {
      ++fresh;
    }
  }
  if (fresh > 0 && blocks_in_use_ + fresh > max_blocks()) {
    // Reclaim evictable radix nodes before giving up: cached bytes are a
    // lower tier than live growth.
    make_room(fresh);
    if (blocks_in_use_ + fresh > max_blocks()) return false;
  }
  for (int layer = 0; layer < num_layers_; ++layer) {
    auto& blocks = seq.self_blocks_[static_cast<size_t>(layer)];
    while (blocks.size() < need) blocks.push_back(alloc_block());
    // Copy-on-write barrier: row t is about to be written, so the block
    // receiving it must be exclusively owned. Shared history before this
    // block stays shared.
    int& target = blocks[need - 1];
    if (block_refs_[static_cast<size_t>(target)] > 1) {
      const int fresh_block = alloc_block();
      std::copy_n(block_ptr(target), block_floats_, block_ptr(fresh_block));
      unref_block(target);
      target = fresh_block;
      ++cow_copies_;
    }
  }
  // Every holder's reservation covers its worst case (every self block
  // uniquely owned), so growth and CoW never push usage past the summed
  // reservations plus the tree-held cache tier — even when reservations
  // oversubscribe capacity.
  TT_CHECK_LE(blocks_in_use_, blocks_reserved_ + radix_cached_blocks());
  return true;
}

void KvCachePool::release(SequenceKv& seq) {
  TT_CHECK(!seq.released_);
  detach_radix(seq);
  for (auto& layer : seq.self_blocks_) {
    for (const int b : layer) unref_block(b);
    layer.clear();
  }
  if (seq.cross_creator_ && !shares_.at(seq.share_id_).ready) {
    // The creator died before projecting cross K/V; let a later admit of
    // the same prompt claim the init instead of decoding garbage.
    shares_.at(seq.share_id_).creator_live = false;
  }
  unref_share(seq.share_id_);
  blocks_reserved_ -= seq.reserved_blocks_;
  --active_;
  if (seq.parked_) --parked_;
  live_.erase(&seq);
  seq.released_ = true;
  sweep_empty_slabs();
}

void KvCachePool::grow_arena(size_t min_extra) {
  const size_t old_cap = tlsf_->capacity_bytes();
  // Double to amortize the stand-in copy; a device-resident arena would
  // extend the reservation instead (grow keeps offsets stable either way).
  tlsf_->grow(std::max(old_cap, min_extra));
  AlignedBuffer bigger(tlsf_->capacity_bytes());
  if (!tlsf_buffer_.empty()) {
    std::copy_n(tlsf_buffer_.data(), old_cap, bigger.data());
  }
  tlsf_buffer_ = std::move(bigger);
}

void KvCachePool::note_waste() {
  // Resident footprint: arena frontier under kTlsf (live spans plus the
  // holes below the highest one), tracked slab/span mallocs under kSlab.
  const size_t resident = tlsf_ != nullptr
                              ? tlsf_->resident_bytes()
                              : tracker_.stats().current_device_bytes;
  const size_t live = tlsf_ != nullptr ? tlsf_->live_bytes()
                                       : blocks_in_use_ * block_bytes();
  if (resident > live) {
    peak_waste_bytes_ = std::max(peak_waste_bytes_, resident - live);
  }
}

int KvCachePool::alloc_block() {
  if (options_.arena == KvArenaKind::kTlsf) {
    if (options_.slab_budget != nullptr) {
      // As in the slab path below, gated callers cannot trip this: the
      // byte-granular max_blocks() already counted the budget headroom.
      TT_CHECK_MSG(
          options_.slab_budget->try_acquire(budget_client_, tlsf_unit_),
          "shared slab budget exhausted under an ungated allocation");
    }
    size_t offset = tlsf_->malloc(tlsf_unit_);
    if (offset == memory::TlsfArena::kNoSpace) {
      // Address space (not the byte gates) ran out: only possible for an
      // unbounded pool, whose arena starts small — bounded arenas reserve
      // their whole ceiling at construction.
      grow_arena(tlsf_unit_);
      offset = tlsf_->malloc(tlsf_unit_);
      TT_CHECK_NE(offset, memory::TlsfArena::kNoSpace);
    }
    tracker_.on_malloc(tlsf_unit_);
    if (options_.max_bytes > 0) {
      TT_CHECK_LE(tracker_.stats().current_device_bytes, options_.max_bytes);
    }
    int block_id;
    if (!free_ids_.empty()) {
      block_id = free_ids_.back();
      free_ids_.pop_back();
    } else {
      block_id = static_cast<int>(block_offsets_.size());
      block_offsets_.push_back(kNoOffset);
      block_refs_.push_back(0);
    }
    TT_CHECK_EQ(block_offsets_[static_cast<size_t>(block_id)], kNoOffset);
    TT_CHECK_EQ(block_refs_[static_cast<size_t>(block_id)], 0);
    block_offsets_[static_cast<size_t>(block_id)] = offset;
    block_refs_[static_cast<size_t>(block_id)] = 1;
    ++blocks_in_use_;
    peak_blocks_in_use_ = std::max(peak_blocks_in_use_, blocks_in_use_);
    note_waste();
    return block_id;
  }
  if (free_blocks_.empty()) {
    // Reuse a swept slab slot if one exists, else append a new slab.
    size_t slab_idx = slabs_.size();
    for (size_t i = 0; i < slabs_.size(); ++i) {
      if (slabs_[i].buffer.empty()) {
        slab_idx = i;
        break;
      }
    }
    if (slab_idx == slabs_.size()) {
      slabs_.emplace_back();
      block_refs_.resize(slabs_.size() *
                             static_cast<size_t>(options_.blocks_per_slab),
                         0);
    }
    Slab& slab = slabs_[slab_idx];
    if (options_.slab_budget != nullptr) {
      // Never fires for callers that respected the capacity gates: every
      // admission/growth check runs against max_blocks(), which already
      // counts the budget's free headroom in whole slabs, and nothing else
      // runs between that check and this charge (pools sharing a budget
      // are driven from one worker at a time).
      TT_CHECK_MSG(
          options_.slab_budget->try_acquire(budget_client_, slab_bytes()),
          "shared slab budget exhausted under an ungated allocation");
    }
    slab.buffer = AlignedBuffer(slab_bytes());
    slab.live_blocks = 0;
    tracker_.on_malloc(slab_bytes());
    if (options_.max_bytes > 0) {
      TT_CHECK_LE(tracker_.stats().current_device_bytes, options_.max_bytes);
    }
    for (int i = 0; i < options_.blocks_per_slab; ++i) {
      free_blocks_.push_back(static_cast<int>(slab_idx) *
                                 options_.blocks_per_slab +
                             i);
    }
  }
  const int block_id = free_blocks_.back();
  free_blocks_.pop_back();
  TT_CHECK_EQ(block_refs_[static_cast<size_t>(block_id)], 0);
  block_refs_[static_cast<size_t>(block_id)] = 1;
  ++blocks_in_use_;
  peak_blocks_in_use_ = std::max(peak_blocks_in_use_, blocks_in_use_);
  ++slabs_[static_cast<size_t>(block_id / options_.blocks_per_slab)]
        .live_blocks;
  note_waste();
  return block_id;
}

void KvCachePool::ref_block(int block_id) {
  TT_CHECK_GT(block_refs_[static_cast<size_t>(block_id)], 0);
  ++block_refs_[static_cast<size_t>(block_id)];
}

void KvCachePool::unref_block(int block_id) {
  int& refs = block_refs_[static_cast<size_t>(block_id)];
  TT_CHECK_GT(refs, 0);
  if (--refs > 0) return;
  if (options_.arena == KvArenaKind::kTlsf) {
    // The span goes straight back to the arena (coalescing with free
    // neighbors) and the budget is credited immediately — kTlsf has no
    // swept-later limbo between "block free" and "bytes returned".
    size_t& offset = block_offsets_[static_cast<size_t>(block_id)];
    tlsf_->free(offset);
    offset = kNoOffset;
    tracker_.on_free(tlsf_unit_);
    if (options_.slab_budget != nullptr) {
      options_.slab_budget->release(budget_client_, tlsf_unit_);
    }
    free_ids_.push_back(block_id);
    --blocks_in_use_;
    note_waste();
    return;
  }
  Slab& slab = slabs_[static_cast<size_t>(block_id / options_.blocks_per_slab)];
  TT_CHECK_GT(slab.live_blocks, 0);
  --slab.live_blocks;
  --blocks_in_use_;
  free_blocks_.push_back(block_id);
  note_waste();
}

float* KvCachePool::block_ptr(int block_id) {
  if (options_.arena == KvArenaKind::kTlsf) {
    const size_t offset = block_offsets_[static_cast<size_t>(block_id)];
    TT_CHECK_NE(offset, kNoOffset);
    return reinterpret_cast<float*>(tlsf_buffer_.data() + offset);
  }
  Slab& slab = slabs_[static_cast<size_t>(block_id / options_.blocks_per_slab)];
  TT_CHECK(!slab.buffer.empty());
  return reinterpret_cast<float*>(slab.buffer.data()) +
         static_cast<size_t>(block_id % options_.blocks_per_slab) *
             block_floats_;
}

const float* KvCachePool::block_ptr(int block_id) const {
  return const_cast<KvCachePool*>(this)->block_ptr(block_id);
}

void KvCachePool::sweep_empty_slabs() {
  if (options_.arena == KvArenaKind::kTlsf) return;
  bool swept = false;
  std::vector<bool> freed(slabs_.size(), false);
  for (size_t i = 0; i < slabs_.size(); ++i) {
    Slab& slab = slabs_[i];
    if (!slab.buffer.empty() && slab.live_blocks == 0) {
      slab.buffer = AlignedBuffer();
      tracker_.on_free(slab_bytes());
      if (options_.slab_budget != nullptr) {
        options_.slab_budget->release(budget_client_, slab_bytes());
      }
      freed[i] = true;
      swept = true;
    }
  }
  if (!swept) return;
  std::erase_if(free_blocks_, [&](int b) {
    return freed[static_cast<size_t>(b / options_.blocks_per_slab)];
  });
  note_waste();
}

int KvCachePool::num_slabs() const {
  if (options_.arena == KvArenaKind::kTlsf) return 0;
  int n = 0;
  for (const auto& slab : slabs_) {
    if (!slab.buffer.empty()) ++n;
  }
  return n;
}

void KvCachePool::check_invariants() const {
  // Reconstruct every block's expected refcount from first principles: one
  // reference per holding sequence (self) plus one per share (cross).
  std::vector<int> expected(block_refs_.size(), 0);
  std::unordered_map<const BlockRadixTree::Node*, int> expected_pins;
  size_t reserved = 0;
  int parked = 0;
  for (const SequenceKv* seq : live_) {
    TT_CHECK(!seq->released_);
    TT_CHECK(shares_.find(seq->share_id_) != shares_.end());
    if (seq->parked_) {
      // A parked sequence surrendered its self blocks, its reservation and
      // its radix chain; it holds only its cross share until resume.
      ++parked;
      TT_CHECK_EQ(seq->reserved_blocks_, 0u);
      for (const auto& layer : seq->self_blocks_) TT_CHECK(layer.empty());
      TT_CHECK(seq->radix_chain_.empty());
      TT_CHECK_EQ(seq->prefix_rows_, 0);
    }
    for (const auto& layer : seq->self_blocks_) {
      for (const int b : layer) ++expected[static_cast<size_t>(b)];
    }
    // An adopted chain is pinned once per holder, block-aligned, and its
    // node blocks are exactly the sequence's leading self blocks.
    TT_CHECK_EQ(static_cast<size_t>(seq->prefix_rows_),
                seq->radix_chain_.size() *
                    static_cast<size_t>(options_.block_tokens));
    for (size_t i = 0; i < seq->radix_chain_.size(); ++i) {
      const BlockRadixTree::Node* node = seq->radix_chain_[i];
      ++expected_pins[node];
      for (int layer = 0; layer < num_layers_; ++layer) {
        TT_CHECK_EQ(node->blocks[static_cast<size_t>(layer)],
                    seq->self_blocks_[static_cast<size_t>(layer)][i]);
      }
    }
    reserved += seq->reserved_blocks_;
  }
  TT_CHECK_EQ(parked, parked_);
  if (radix_ != nullptr) {
    radix_->check_invariants();
    radix_->for_each([&](const BlockRadixTree::Node& node) {
      const auto it = expected_pins.find(&node);
      TT_CHECK_EQ(node.pins, it == expected_pins.end() ? 0 : it->second);
      for (const int b : node.blocks) ++expected[static_cast<size_t>(b)];
    });
  }
  size_t share_refs = 0;
  for (const auto& [id, share] : shares_) {
    TT_CHECK_GT(share.refs, 0);
    share_refs += static_cast<size_t>(share.refs);
    for (const auto& layer : share.blocks) {
      for (const int b : layer) ++expected[static_cast<size_t>(b)];
    }
    reserved += share.reserved_blocks;
  }
  TT_CHECK_EQ(share_refs, live_.size());
  TT_CHECK_EQ(reserved, blocks_reserved_);
  TT_CHECK_EQ(static_cast<size_t>(active_), live_.size());

  size_t unique = 0;
  for (size_t b = 0; b < expected.size(); ++b) {
    TT_CHECK_MSG(expected[b] == block_refs_[b],
                 "block " << b << " refcount " << block_refs_[b]
                          << " != held references " << expected[b]);
    if (expected[b] > 0) ++unique;
  }
  TT_CHECK_EQ(unique, blocks_in_use_);
  TT_CHECK_LE(blocks_in_use_, blocks_reserved_ + radix_cached_blocks());

  if (options_.arena == KvArenaKind::kTlsf) {
    // Arena-side structure, then the id table against it: live ids map to
    // distinct live spans of exactly one unit; dead ids sit on free_ids_
    // exactly once; the arena, the tracker and the budget charge all agree
    // on the live byte count.
    tlsf_->check_invariants();
    TT_CHECK_EQ(tlsf_->live_allocations(), blocks_in_use_);
    TT_CHECK_EQ(tlsf_->live_bytes(), blocks_in_use_ * tlsf_unit_);
    TT_CHECK_EQ(tracker_.stats().current_device_bytes,
                blocks_in_use_ * tlsf_unit_);
    std::unordered_set<size_t> offsets;
    for (size_t b = 0; b < block_refs_.size(); ++b) {
      const size_t offset = block_offsets_[b];
      if (block_refs_[b] > 0) {
        TT_CHECK_NE(offset, kNoOffset);
        TT_CHECK_MSG(offsets.insert(offset).second,
                     "blocks sharing arena offset " << offset);
        TT_CHECK_EQ(tlsf_->span_bytes(offset), tlsf_unit_);
      } else {
        TT_CHECK_EQ(offset, kNoOffset);
      }
    }
    std::vector<bool> in_free(block_refs_.size(), false);
    for (const int b : free_ids_) {
      const size_t idx = static_cast<size_t>(b);
      TT_CHECK_MSG(!in_free[idx], "id " << b << " on free_ids_ twice");
      in_free[idx] = true;
      TT_CHECK_EQ(block_refs_[idx], 0);
    }
    for (size_t b = 0; b < block_refs_.size(); ++b) {
      if (block_refs_[b] == 0) {
        TT_CHECK_MSG(in_free[b], "free id " << b << " leaked off free_ids_");
      }
    }
  } else {
    const size_t per_slab = static_cast<size_t>(options_.blocks_per_slab);
    std::vector<int> slab_live(slabs_.size(), 0);
    for (size_t b = 0; b < expected.size(); ++b) {
      if (expected[b] > 0) ++slab_live[b / per_slab];
    }
    for (size_t i = 0; i < slabs_.size(); ++i) {
      TT_CHECK_EQ(slab_live[i], slabs_[i].live_blocks);
      if (slabs_[i].buffer.empty()) TT_CHECK_EQ(slab_live[i], 0);
    }

    std::vector<bool> in_free(block_refs_.size(), false);
    for (const int b : free_blocks_) {
      const size_t idx = static_cast<size_t>(b);
      TT_CHECK_MSG(!in_free[idx], "block " << b << " on the free list twice");
      in_free[idx] = true;
      TT_CHECK_EQ(block_refs_[idx], 0);
      TT_CHECK(!slabs_[idx / per_slab].buffer.empty());
    }
    for (size_t b = 0; b < block_refs_.size(); ++b) {
      if (block_refs_[b] == 0 && !slabs_[b / per_slab].buffer.empty()) {
        TT_CHECK_MSG(in_free[b], "free block " << b << " leaked off the list");
      }
    }
  }
  for (const auto& [key, id] : prompt_index_) {
    const auto it = shares_.find(id);
    TT_CHECK(it != shares_.end());
    TT_CHECK_EQ(it->second.key, key);
  }
}

// ---------------------------------------------------------------------------
// PooledBeamKv
// ---------------------------------------------------------------------------

PooledBeamKv::PooledBeamKv(KvCachePool* pool, int64_t first_id)
    : pool_(pool), next_id_(first_id) {
  TT_CHECK(pool_ != nullptr);
  // Beam ids descend from first_id while server request ids ascend from 0;
  // a non-negative start would eventually collide with a served sequence
  // in a shared pool.
  TT_CHECK_MSG(first_id < 0, "PooledBeamKv first_id must be negative, got "
                                 << first_id);
}

std::unique_ptr<model::KvCacheView> PooledBeamKv::create(int s_src,
                                                         int max_len) {
  return pool_->admit(next_id_--, s_src, max_len);
}

std::unique_ptr<model::KvCacheView> PooledBeamKv::fork(
    model::KvCacheView& parent) {
  return pool_->fork(static_cast<SequenceKv&>(parent), next_id_--);
}

void PooledBeamKv::prepare_token(model::KvCacheView& cache, int t) {
  pool_->ensure_token(static_cast<SequenceKv&>(cache), t);
}

}  // namespace turbo::genserve
