#include "genserve/radix_tree.h"

#include <algorithm>
#include <cstring>
#include <limits>
#include <utility>

#include "common/check.h"
#include "common/hash.h"

namespace turbo::genserve {

BlockRadixTree::BlockRadixTree(
    int block_tokens, int num_layers,
    std::function<uint64_t(const int*, int)> chunk_hash)
    : block_tokens_(block_tokens),
      num_layers_(num_layers),
      hash_override_(std::move(chunk_hash)) {
  TT_CHECK_GE(block_tokens_, 1);
  TT_CHECK_GE(num_layers_, 1);
}

uint64_t BlockRadixTree::chunk_hash(const int* chunk) const {
  if (hash_override_) return hash_override_(chunk, block_tokens_);
  return fnv1a_range(chunk, block_tokens_);
}

BlockRadixTree::Node* BlockRadixTree::find_child(const Node* parent,
                                                 const int* chunk) const {
  const Node* node = parent == nullptr ? &root_ : parent;
  const uint64_t key = chunk_hash(chunk);
  const auto [begin, end] = node->children.equal_range(key);
  for (auto it = begin; it != end; ++it) {
    // Exact per-node token comparison: a hash collision must never map a
    // sequence onto another prefix's KV blocks.
    if (std::equal(it->second->tokens.begin(), it->second->tokens.end(),
                   chunk)) {
      return it->second.get();
    }
  }
  return nullptr;
}

BlockRadixTree::Match BlockRadixTree::match(const std::vector<int>& tokens,
                                            int max_rows) const {
  Match m;
  const int bt = block_tokens_;
  const int limit =
      std::min(static_cast<int>(tokens.size()), std::max(max_rows, 0));
  const Node* node = nullptr;  // root
  for (int first = 0; first + bt <= limit; first += bt) {
    Node* child = find_child(node, tokens.data() + first);
    if (child == nullptr) break;
    m.chain.push_back(child);
    m.rows += bt;
    node = child;
  }
  return m;
}

BlockRadixTree::Node* BlockRadixTree::insert_child(
    Node* parent, const int* chunk, std::vector<int> layer_blocks) {
  TT_CHECK_EQ(layer_blocks.size(), static_cast<size_t>(num_layers_));
  TT_CHECK_MSG(find_child(parent, chunk) == nullptr,
               "duplicate radix chunk insert");
  auto node = std::make_unique<Node>();
  node->parent = parent;
  node->tokens.assign(chunk, chunk + block_tokens_);
  node->blocks = std::move(layer_blocks);
  node->hash = chunk_hash(chunk);
  node->stamp = ++clock_;
  Node* raw = node.get();
  Node* owner = parent == nullptr ? &root_ : parent;
  owner->children.emplace(raw->hash, std::move(node));
  ++node_count_;
  ++evictable_nodes_;  // born unpinned
  return raw;
}

void BlockRadixTree::pin_chain(const std::vector<Node*>& chain) {
  for (Node* node : chain) {
    if (node->pins++ == 0) {
      TT_CHECK_GT(evictable_nodes_, 0u);
      --evictable_nodes_;
    }
    node->stamp = ++clock_;
  }
}

void BlockRadixTree::unpin_chain(const std::vector<Node*>& chain) {
  for (Node* node : chain) {
    TT_CHECK_GT(node->pins, 0);
    if (--node->pins == 0) ++evictable_nodes_;
  }
}

bool BlockRadixTree::evict_lru(std::vector<int>* freed_blocks) {
  // Leaf-first LRU: an interior node only becomes a candidate once its
  // subtree has drained, so every cached node stays reachable from the
  // root (its whole prefix chain is still present).
  Node* victim = nullptr;
  std::function<void(Node&)> walk = [&](Node& node) {
    for (auto& [key, child] : node.children) {
      if (child->pins == 0 && child->children.empty() &&
          (victim == nullptr || child->stamp < victim->stamp)) {
        victim = child.get();
      }
      walk(*child);
    }
  };
  walk(root_);
  if (victim == nullptr) return false;
  if (freed_blocks != nullptr) {
    freed_blocks->insert(freed_blocks->end(), victim->blocks.begin(),
                         victim->blocks.end());
  }
  Node* owner = victim->parent == nullptr ? &root_ : victim->parent;
  const auto [begin, end] = owner->children.equal_range(victim->hash);
  for (auto it = begin; it != end; ++it) {
    if (it->second.get() == victim) {
      owner->children.erase(it);
      --node_count_;
      TT_CHECK_GT(evictable_nodes_, 0u);
      --evictable_nodes_;
      return true;
    }
  }
  TT_CHECK_MSG(false, "radix victim missing from its parent's children");
  return false;
}

void BlockRadixTree::for_each(
    const std::function<void(const Node&)>& fn) const {
  std::function<void(const Node&)> walk = [&](const Node& node) {
    for (const auto& [key, child] : node.children) {
      fn(*child);
      walk(*child);
    }
  };
  walk(root_);
}

void BlockRadixTree::check_invariants() const {
  size_t nodes = 0;
  size_t evictable = 0;
  std::function<void(const Node&, const Node*)> walk = [&](const Node& node,
                                                           const Node* parent) {
    for (const auto& [key, child] : node.children) {
      ++nodes;
      TT_CHECK_EQ(child->hash, key);
      TT_CHECK(child->parent == parent);
      TT_CHECK_EQ(child->tokens.size(), static_cast<size_t>(block_tokens_));
      TT_CHECK_EQ(child->blocks.size(), static_cast<size_t>(num_layers_));
      TT_CHECK_GE(child->pins, 0);
      if (child->pins == 0) ++evictable;
      if (child->pins > 0 && parent != nullptr) {
        // A pinned node's whole prefix chain is pinned (pin_chain pins
        // root-first), so eviction can never orphan a live reference.
        TT_CHECK_GT(parent->pins, 0);
      }
      walk(*child, child.get());
    }
  };
  walk(root_, nullptr);
  TT_CHECK_EQ(nodes, node_count_);
  TT_CHECK_EQ(evictable, evictable_nodes_);
}

}  // namespace turbo::genserve
