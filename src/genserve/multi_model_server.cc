#include "genserve/multi_model_server.h"

#include <algorithm>
#include <utility>

#include "common/check.h"

namespace turbo::genserve {

// ---------------------------------------------------------------------------
// MultiModelGenerationServer
// ---------------------------------------------------------------------------

MultiModelGenerationServer::MultiModelGenerationServer(
    MultiModelOptions options)
    : options_(std::move(options)), budget_(options_.total_kv_bytes) {
  metrics_ = options_.engine.metrics ? options_.engine.metrics
                                     : std::make_shared<obs::Registry>();
  if (options_.engine.trace.ring != nullptr) {
    trace_ring_ = options_.engine.trace.ring;
  } else if (options_.engine.trace.enabled) {
    trace_ring_ = std::make_shared<obs::TraceRing>(
        options_.engine.trace.capacity);
  }
  m_completed_total_ = &metrics_->counter("gen.server.requests_completed");
  m_iterations_ = &metrics_->counter("gen.server.iterations");
  m_reclaims_ = &metrics_->counter("gen.server.reclaims");
  m_reclaimed_bytes_ = &metrics_->counter("gen.server.reclaimed_bytes");
}

MultiModelGenerationServer::~MultiModelGenerationServer() {
  // Engines (and their pools, which unregister from budget_) are destroyed
  // by member order before budget_ — nothing to do, but the order matters.
}

MultiModelGenerationServer::Engine* MultiModelGenerationServer::find_engine(
    const std::string& name, int version) {
  for (const auto& e : engines_) {
    if (e->bundle->name == name && e->bundle->version == version) {
      return e.get();
    }
  }
  return nullptr;
}

const MultiModelGenerationServer::Engine*
MultiModelGenerationServer::find_engine(const std::string& name,
                                        int version) const {
  return const_cast<MultiModelGenerationServer*>(this)->find_engine(name,
                                                                    version);
}

void MultiModelGenerationServer::register_bundle(
    std::shared_ptr<ModelBundle> bundle, size_t guarantee_bytes,
    std::optional<GenServerOptions> overrides, int replicas) {
  TT_CHECK(bundle != nullptr);
  TT_CHECK_MSG(find_engine(bundle->name, bundle->version) == nullptr,
               bundle->label() << " already registered (or still draining)");

  GenServerOptions eopts =
      overrides ? std::move(*overrides) : options_.engine;
  // The pool's budget attachment is the server's to manage, never the
  // caller's: every pool charges the one shared arbiter. Per-replica
  // client names and guarantee splits are the ReplicaSet's job.
  eopts.pool.slab_budget = &budget_;
  // Observability attachments are the server's to manage too: one shared
  // registry (counters outlive drained engines) and, when tracing, one
  // shared ring — a global timeline the offline passes can correlate
  // across models and replicas.
  eopts.metrics = metrics_;
  if (trace_ring_ != nullptr) {
    eopts.trace.ring = trace_ring_;
    eopts.trace.enabled = true;
  }
  if (options_.total_kv_bytes > 0) {
    // Shared capacity can shrink between a sequence's admission and its
    // growth (a sibling borrows the headroom); only optimistic admission's
    // try_ensure_token + preemption path absorbs that, so it is mandatory
    // under a bounded budget.
    eopts.scheduler.optimistic_admission = true;
  }

  turbo::router::ReplicaSetOptions sopts;
  sopts.replicas =
      replicas > 0 ? replicas : std::max(1, options_.replicas_per_model);
  sopts.pinned_workers = options_.pinned_replica_workers;

  auto engine = std::make_unique<Engine>();
  engine->bundle = bundle;
  engine->guarantee_bytes = guarantee_bytes;
  engine->set = std::make_unique<turbo::router::ReplicaSet>(
      bundle, std::move(eopts), guarantee_bytes, sopts);
  engine->router = std::make_unique<turbo::router::Router>(*engine->set,
                                                           options_.router);
  engine->set->set_step_observer(
      [this, eng = engine.get()](size_t, const StepStats& s) {
        if (observer_) {
          observer_(eng->bundle->name, eng->bundle->version, s);
        }
      });
  registry_.register_model(bundle->name, bundle->version, bundle);
  if (default_model_.empty()) default_model_ = bundle->name;
  engines_.push_back(std::move(engine));
}

bool MultiModelGenerationServer::unregister_bundle(const std::string& name,
                                                   int version) {
  Engine* engine = find_engine(name, version);
  if (engine == nullptr || engine->draining) return false;
  registry_.unregister_model(name, version);
  engine->draining = true;
  // Already idle: tear down now — nothing pins the bundle past this call.
  collect_completed(*engine);
  std::erase_if(engines_, [](const std::unique_ptr<Engine>& e) {
    return e->draining && e->set->idle();
  });
  return true;
}

void MultiModelGenerationServer::set_default_model(const std::string& name) {
  TT_CHECK_MSG(!registry_.versions(name).empty(),
               "default model '" << name << "' is not registered");
  default_model_ = name;
}

const MultiModelGenerationServer::Engine* MultiModelGenerationServer::route(
    const serving::GenerationRequest& request) const {
  const std::string& name =
      request.model.empty() ? default_model_ : request.model;
  if (name.empty()) return nullptr;
  const Engine* best = nullptr;
  for (const auto& e : engines_) {
    if (e->draining || e->bundle->name != name) continue;
    if (request.model_version > 0) {
      if (e->bundle->version == request.model_version) return e.get();
    } else if (best == nullptr ||
               e->bundle->version > best->bundle->version) {
      best = e.get();  // latest live version wins
    }
  }
  return request.model_version > 0 ? nullptr : best;
}

MultiModelGenerationServer::Engine* MultiModelGenerationServer::route(
    const serving::GenerationRequest& request) {
  return const_cast<Engine*>(
      static_cast<const MultiModelGenerationServer*>(this)->route(request));
}

void MultiModelGenerationServer::validate(
    const serving::GenerationRequest& request) const {
  const Engine* engine = route(request);
  TT_CHECK_MSG(engine != nullptr,
               "generation request " << request.id << " routes to unknown "
                                     << "model '" << request.model << "' v"
                                     << request.model_version);
  // Geometry and vocab are identical across a set's replicas: replica 0
  // validates for all.
  engine->set->replica(0).validate(request);
}

void MultiModelGenerationServer::submit(serving::GenerationRequest request,
                                        serving::TokenCallback on_token) {
  Engine* engine = route(request);
  TT_CHECK_MSG(engine != nullptr,
               "generation request " << request.id << " routes to unknown "
                                     << "model '" << request.model << "' v"
                                     << request.model_version);
  const int64_t id = request.id;
  TT_CHECK_MSG(ids_in_flight_.insert(id).second,
               "duplicate in-flight generation request id " << id);
  // The Router fixes the replica at submit time (kRoute span + counters);
  // the sequence is served entirely by that replica.
  const turbo::router::RouteDecision d =
      engine->router->place(request, static_cast<double>(iteration_));
  try {
    engine->set->replica(d.replica).submit(std::move(request),
                                           std::move(on_token));
  } catch (...) {
    // Validation failed on the routed engine: the id never went in flight.
    ids_in_flight_.erase(id);
    throw;
  }
}

std::vector<size_t> MultiModelGenerationServer::step_order() const {
  std::vector<size_t> order(engines_.size());
  for (size_t i = 0; i < order.size(); ++i) order[i] = i;
  if (engines_.empty()) return order;
  if (options_.policy == MultiModelOptions::Policy::kWeightedQueueDepth) {
    // Deepest backlog first: a congested model admits into free budget
    // before light ones nibble it. Stable tie-break on registration order.
    std::stable_sort(order.begin(), order.end(), [&](size_t a, size_t b) {
      return engines_[a]->set->pending_total() >
             engines_[b]->set->pending_total();
    });
  } else {
    std::rotate(order.begin(),
                order.begin() +
                    static_cast<long>(rr_cursor_ % engines_.size()),
                order.end());
  }
  // Admission-blocked models step first regardless of policy: slabs that
  // last iteration's reclaim freed for them must not be re-borrowed by a
  // sibling that happens to come earlier in the rotation — that ordering
  // race starves the owner forever. Among the blocked, under-guarantee
  // ones lead: a reclaim was performed on their behalf, and a blocked
  // at-floor borrower stepping first would take the freed bytes right
  // back (the same starvation with one extra hop).
  std::stable_partition(order.begin(), order.end(), [&](size_t i) {
    return engines_[i]->set->any_admission_blocked();
  });
  std::stable_partition(order.begin(), order.end(), [&](size_t i) {
    return engines_[i]->set->any_starved_under_guarantee();
  });
  return order;
}

void MultiModelGenerationServer::collect_completed(Engine& engine) {
  for (auto& resp : engine.set->take_completed()) {
    ids_in_flight_.erase(resp.request_id);
    m_completed_total_->add(1);
    completed_.push_back(std::move(resp));
  }
}

size_t MultiModelGenerationServer::reclaim_for_starved_models() {
  // Arbitration units are (model, replica) pools in registration x replica
  // order: every replica has its own pool, guarantee split, and admission
  // state, and sibling replicas of one model borrow from and donate to
  // each other exactly like distinct models do — the budget does not care
  // where a pool lives. One replica per model reduces to the original
  // per-model loop.
  struct Unit {
    Engine* engine;
    size_t replica;
  };
  std::vector<Unit> units;
  for (const auto& e : engines_) {
    for (size_t r = 0; r < e->set->size(); ++r) units.push_back({e.get(), r});
  }
  size_t freed_total = 0;
  for (const Unit& su : units) {
    GenerationServer& m = su.engine->set->replica(su.replica);
    if (!m.scheduler().admission_blocked()) continue;
    const KvCachePool& pool = m.pool();
    // Demand and targets quantize to the pool's reclaim grain: a whole
    // slab under kSlab (bit-identical legacy sizing), one block span under
    // kTlsf — where a model starved for one small block no longer forces a
    // donor to surrender a whole slab.
    const size_t grain = pool.reclaim_grain_bytes();
    const size_t used = pool.stats().current_device_bytes;
    // Guarantees are reclaim floors: the owner only claws back up to its
    // declared share. Above it, this replica is itself a borrower and
    // waits for siblings to drain naturally.
    const size_t floor = su.engine->set->replica_guarantee_bytes(su.replica);
    if (used + grain > floor) continue;
    // Reclaim what the blocked demand justifies (cross blocks of a cold
    // prompt + first self blocks + headroom, in whole grains) — an
    // undersized reclaim frees bytes a sibling re-borrows before they add
    // up to an admission, an entitlement-sized one would gut a busy
    // borrower for a model that wants two grains. The guarantee stays the
    // hard cap on what the owner may claw back.
    const size_t entitled = floor - used;
    const size_t demand_bytes = m.scheduler().admission_demand_bytes();
    const size_t demand_rounded = (demand_bytes + grain - 1) / grain * grain;
    const size_t want = std::max(demand_rounded, grain);
    const size_t avail = budget_.available_bytes();
    if (avail >= want) continue;  // budget is not the blocker
    size_t needed = want - avail;
    // All-or-nothing: when even a full clawback of the entitlement cannot
    // reach the head-of-queue demand, or the donors' borrowed bytes sum to
    // less than the shortfall, shedding is pure churn — the freed bytes
    // sit short of an admission until a sibling re-borrows them, and a
    // donor shed every iteration never finishes its replay (observed as a
    // reclaim-per-step livelock). Wait for natural drain instead.
    if (needed > entitled) continue;
    size_t borrowable = 0;
    for (const Unit& du : units) {
      if (du.engine == su.engine && du.replica == su.replica) continue;
      const size_t d_floor =
          du.engine->set->replica_guarantee_bytes(du.replica);
      const size_t d_used = du.engine->set->replica(du.replica)
                                .pool()
                                .stats()
                                .current_device_bytes;
      if (d_used > d_floor) borrowable += d_used - d_floor;
    }
    if (borrowable < needed) continue;
    for (const Unit& du : units) {
      if ((du.engine == su.engine && du.replica == su.replica) ||
          needed == 0) {
        continue;
      }
      GenerationServer& d = du.engine->set->replica(du.replica);
      const size_t d_floor =
          du.engine->set->replica_guarantee_bytes(du.replica);
      const size_t d_used = d.pool().stats().current_device_bytes;
      if (d_used <= d_floor) continue;  // nothing borrowed
      const size_t borrowed = d_used - d_floor;
      const size_t got = d.shed_kv(std::min(needed, borrowed));
      if (got > 0) {
        ++total_reclaims_;
        m_reclaims_->add(1);
        m_reclaimed_bytes_->add(got);
        freed_total += got;
        needed = got >= needed ? 0 : needed - got;
        if (trace_ring_ != nullptr) {
          // Cross-pool reclaim event: starved replica in `model`, donor in
          // `peer` (replica labels; replica 0 is the plain bundle label) —
          // the borrow/reclaim timeline pass keys on exactly this pair.
          obs::TraceSpan span;
          span.kind = obs::SpanKind::kReclaim;
          span.model_version = su.engine->bundle->version;
          span.seq = -1;
          span.iteration = iteration_ + 1;
          span.bytes = got;
          span.start_ticks = obs::now_ticks();
          span.end_ticks = span.start_ticks;
          obs::copy_name(span.model,
                         su.engine->set->replica_label(su.replica));
          obs::copy_name(span.peer,
                         du.engine->set->replica_label(du.replica));
          trace_ring_->record(span);
        }
      }
    }
  }
  return freed_total;
}

int MultiModelGenerationServer::step() {
  int stepped = 0;
  for (const size_t idx : step_order()) {
    Engine& engine = *engines_[idx];
    stepped += engine.set->step();
    collect_completed(engine);
  }
  // Cross-pool arbitration: give admission-blocked under-guarantee
  // replicas their slabs back before the next iteration admits anyone.
  // Replicated single-model servers arbitrate too — sibling replicas
  // contend on the one budget just like distinct models.
  const size_t pools =
      engines_.empty() ? 0
                       : engines_.size() > 1 ? 2 : engines_[0]->set->size();
  if (budget_.total_bytes() > 0 && pools > 1) {
    reclaim_for_starved_models();
  }
  // Drained unregistered engines die here — the last pin on their bundle.
  std::erase_if(engines_, [](const std::unique_ptr<Engine>& e) {
    return e->draining && e->set->idle();
  });
  if (!engines_.empty()) rr_cursor_ = (rr_cursor_ + 1) % engines_.size();
  if (stepped > 0) {
    ++iteration_;
    m_iterations_->add(1);
  }
  return stepped;
}

bool MultiModelGenerationServer::idle() const {
  for (const auto& e : engines_) {
    if (!e->set->idle()) return false;
  }
  return true;
}

const turbo::router::ReplicaSet* MultiModelGenerationServer::replica_set(
    const std::string& name, int version) const {
  const Engine* engine = find_engine(name, version);
  return engine != nullptr ? engine->set.get() : nullptr;
}

bool MultiModelGenerationServer::serving(const std::string& name,
                                         int version) const {
  return find_engine(name, version) != nullptr;
}

std::vector<serving::GenerationResponse>
MultiModelGenerationServer::take_completed() {
  return std::exchange(completed_, {});
}

std::vector<serving::GenerationResponse>
MultiModelGenerationServer::run_to_completion() {
  while (!idle()) step();
  return take_completed();
}

std::vector<ModelServingStats> MultiModelGenerationServer::stats() const {
  std::vector<ModelServingStats> out;
  out.reserve(engines_.size());
  for (const auto& e : engines_) {
    for (size_t r = 0; r < e->set->size(); ++r) {
      const GenerationServer& server = e->set->replica(r);
      ModelServingStats s;
      s.name = e->bundle->name;
      s.version = e->bundle->version;
      s.replica = static_cast<int>(r);
      s.label = e->set->replica_label(r);
      s.draining = e->draining;
      const GenerationScheduler& sched = server.scheduler();
      s.pending = sched.pending() + sched.requeued();
      s.active = sched.active();
      s.served = server.completed_total();
      s.last_step = e->set->last_step(r);
      s.pool = server.pool_snapshot();
      s.budget_guarantee_bytes = e->set->replica_guarantee_bytes(r);
      s.budget_used_bytes = s.pool.device_bytes;
      out.push_back(std::move(s));
    }
  }
  return out;
}

// ---------------------------------------------------------------------------
// AsyncMultiModelGenerationServer
// ---------------------------------------------------------------------------

AsyncMultiModelGenerationServer::AsyncMultiModelGenerationServer(
    MultiModelOptions options)
    : server_(std::make_unique<MultiModelGenerationServer>(
          std::move(options))) {
  worker_ = std::thread([this] { worker_loop(); });
}

AsyncMultiModelGenerationServer::~AsyncMultiModelGenerationServer() {
  shutdown();
}

std::future<void> AsyncMultiModelGenerationServer::register_bundle(
    std::shared_ptr<ModelBundle> bundle, size_t guarantee_bytes,
    std::optional<GenServerOptions> overrides, int replicas) {
  auto promise = std::make_shared<std::promise<void>>();
  std::future<void> future = promise->get_future();
  {
    std::lock_guard<std::mutex> lock(mutex_);
    TT_CHECK_MSG(!shutdown_, "register_bundle after shutdown");
    Event e;
    e.control = [this, promise, bundle = std::move(bundle), guarantee_bytes,
                 overrides = std::move(overrides), replicas]() mutable {
      try {
        server_->register_bundle(std::move(bundle), guarantee_bytes,
                                 std::move(overrides), replicas);
        promise->set_value();
      } catch (...) {
        promise->set_exception(std::current_exception());
      }
    };
    incoming_.push_back(std::move(e));
  }
  cv_.notify_one();
  return future;
}

std::future<bool> AsyncMultiModelGenerationServer::unregister_bundle(
    std::string name, int version) {
  auto promise = std::make_shared<std::promise<bool>>();
  std::future<bool> future = promise->get_future();
  {
    std::lock_guard<std::mutex> lock(mutex_);
    TT_CHECK_MSG(!shutdown_, "unregister_bundle after shutdown");
    Event e;
    e.control = [this, promise, name = std::move(name), version] {
      try {
        promise->set_value(server_->unregister_bundle(name, version));
      } catch (...) {
        promise->set_exception(std::current_exception());
      }
    };
    incoming_.push_back(std::move(e));
  }
  cv_.notify_one();
  return future;
}

std::future<serving::GenerationResponse>
AsyncMultiModelGenerationServer::submit(serving::GenerationRequest request,
                                        serving::TokenCallback on_token) {
  // Routing and validation happen on the worker — the route table is the
  // worker's to mutate (hot registration), so a stale read here could
  // mis-route. A bad request therefore rejects its future, never the call.
  std::future<serving::GenerationResponse> future;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    TT_CHECK_MSG(!shutdown_, "submit after shutdown");
    TT_CHECK_MSG(ids_in_flight_.insert(request.id).second,
                 "duplicate in-flight generation request id " << request.id);
    Submission s;
    s.request = std::move(request);
    s.on_token = std::move(on_token);
    future = s.promise.get_future();
    Event e;
    e.submission = std::move(s);
    incoming_.push_back(std::move(e));
  }
  cv_.notify_one();
  return future;
}

void AsyncMultiModelGenerationServer::shutdown() {
  std::lock_guard<std::mutex> join_lock(join_mutex_);
  {
    std::lock_guard<std::mutex> lock(mutex_);
    shutdown_ = true;
  }
  cv_.notify_all();
  if (worker_.joinable()) worker_.join();
}

size_t AsyncMultiModelGenerationServer::served() const {
  // Registry-backed: the shared registry is lock-free to read and keeps
  // counting across engine drains, so there is no cached copy to reset.
  return server_->served_total();
}

int64_t AsyncMultiModelGenerationServer::iterations() const {
  return static_cast<int64_t>(
      server_->metrics()->counter_value("gen.server.iterations"));
}

std::vector<ModelServingStats> AsyncMultiModelGenerationServer::model_stats()
    const {
  std::lock_guard<std::mutex> lock(mutex_);
  return model_stats_;
}

memory::SlabBudgetSnapshot AsyncMultiModelGenerationServer::budget_snapshot()
    const {
  std::lock_guard<std::mutex> lock(mutex_);
  return budget_snapshot_;
}

void AsyncMultiModelGenerationServer::worker_loop() {
  for (;;) {
    std::vector<Event> events;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      if (incoming_.empty() && server_->idle()) {
        cv_.wait(lock, [this] { return shutdown_ || !incoming_.empty(); });
        if (incoming_.empty() && shutdown_) return;
      }
      events = std::exchange(incoming_, {});
    }

    // Engine failures must not escape the worker (std::terminate); they
    // fail every waiting client instead. Per-request routing/validation
    // errors are not engine failures — they reject just their own future.
    std::vector<serving::GenerationResponse> done;
    try {
      // Strictly in enqueue order: a submit that preceded an unregister
      // (or a register of a newer version) resolves against the routes
      // live when the client issued it.
      for (Event& e : events) {
        if (e.control) {
          e.control();  // resolves its own promise
          continue;
        }
        Submission& s = *e.submission;
        const int64_t id = s.request.id;
        try {
          server_->submit(std::move(s.request), std::move(s.on_token));
          in_flight_[id] = std::move(s.promise);
        } catch (...) {
          s.promise.set_exception(std::current_exception());
          std::lock_guard<std::mutex> lock(mutex_);
          ids_in_flight_.erase(id);
        }
      }
      server_->step();
      done = server_->take_completed();
    } catch (...) {
      std::vector<Event> orphaned;
      {
        std::lock_guard<std::mutex> lock(mutex_);
        shutdown_ = true;
        orphaned = std::exchange(incoming_, {});
        for (auto& [id, promise] : in_flight_) {
          promise.set_exception(std::current_exception());
          ids_in_flight_.erase(id);
        }
        in_flight_.clear();
        for (const auto& e : orphaned) {
          if (e.submission) ids_in_flight_.erase(e.submission->request.id);
        }
      }
      for (auto& e : orphaned) {
        if (e.submission) {
          e.submission->promise.set_exception(std::current_exception());
        } else if (e.control) {
          // Control ops self-contain their error handling; running them
          // (even against a broken server) resolves their promises
          // instead of wedging their callers.
          e.control();
        }
      }
      return;
    }
    {
      std::lock_guard<std::mutex> lock(mutex_);
      model_stats_ = server_->stats();
      budget_snapshot_ = server_->budget().snapshot();
      for (const auto& resp : done) ids_in_flight_.erase(resp.request_id);
    }
    for (auto& resp : done) {
      const auto it = in_flight_.find(resp.request_id);
      TT_CHECK(it != in_flight_.end());
      std::promise<serving::GenerationResponse> promise =
          std::move(it->second);
      in_flight_.erase(it);
      promise.set_value(std::move(resp));
    }
  }
}

}  // namespace turbo::genserve
