// One servable seq2seq model: the unit the multi-model generation server
// registers, routes to, and pins.
//
// A bundle packages everything one decoder configuration needs to serve —
// encoder, step-batched decoder, config, and its per-model admission
// CostTable — under a (name, version) identity. Bundles live in a
// BundleRegistry (the generation-side instantiation of the paper's §2.2
// model version management) and are handed around by shared_ptr: an engine
// serving a bundle pins it, so hot unregistration never pulls weights out
// from under in-flight sequences — the bundle dies when the last engine
// drains.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>

#include "model/config.h"
#include "model/decoder.h"
#include "model/encoder.h"
#include "serving/cost_table.h"
#include "serving/model_registry.h"

namespace turbo::genserve {

// Ownership: owns its encoder/decoder via shared_ptr (several engines of
// the same bundle may share them). Thread-safety: immutable after
// construction by convention. The decoder is safe to share across
// concurrently stepping engines (step() is const over a caller-owned
// workspace), but one EncoderModel must only be driven from one worker at
// a time (forward() replans its allocator and ping-pongs private hidden
// buffers) — sequential serving guarantees this by stepping every engine
// from one thread, and router::ReplicaSet's pinned-worker mode gives each
// concurrent replica its own encoder over the shared weight storage.
struct ModelBundle {
  std::string name;
  int version = 1;
  model::ModelConfig config;
  // Null for decoder-only bundles: a causal LM has no encoder, its prompt
  // is prefilled through the decoder's step loop.
  std::shared_ptr<model::EncoderModel> encoder;
  std::shared_ptr<model::Seq2SeqDecoder> decoder;
  // Per-model admission dictionary. Engines *copy* it at attach time so
  // each engine's observe() feedback (measured fused-step latencies)
  // converges against its own traffic, not a sibling's.
  std::optional<serving::CostTable> cost_table;

  bool decoder_only() const { return config.decoder_only; }

  std::string label() const {
    return name + ":v" + std::to_string(version);
  }
};

// Builds a bundle with freshly initialized encoder/decoder weights drawn
// from `seed` (the same construction path GenerationServer's single-model
// constructor uses, so a bundle-backed engine with the same seed is
// bit-identical to it).
std::shared_ptr<ModelBundle> make_bundle(std::string name, int version,
                                         const model::ModelConfig& config,
                                         uint64_t seed = 42);

// Decoder-only (GPT-style) bundle: forces config.decoder_only and builds no
// encoder. Engines serving it run the causal-LM path — radix prefix
// sharing over the KV pool, prompt prefill through the fused step loop.
std::shared_ptr<ModelBundle> make_decoder_only_bundle(
    std::string name, int version, model::ModelConfig config,
    uint64_t seed = 42);

// name -> version -> bundle; resolve() implements the request-routing
// convention (model_version <= 0 = latest, positive = pinned).
using BundleRegistry = serving::VersionedRegistry<ModelBundle>;

}  // namespace turbo::genserve
