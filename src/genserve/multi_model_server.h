// Multi-model generation serving: one front end, several decoder
// configurations, one KV memory budget.
//
// The paper (§2.2) counts model version management among the serving
// framework's core duties; DeepSpeed-Inference and Orca show that the win
// when co-hosting models is shared-resource arbitration, not N isolated
// servers each reserving worst-case memory. This layer provides both:
//
//  * MultiModelGenerationServer owns one router::ReplicaSet (N live
//    GenerationServer engines over one bundle — KV pool + scheduler +
//    the bundle's encoder/decoder each) per registered ModelBundle, with
//    a router::Router placing requests within each set on live signals
//    (KV pressure, queue depth, observed step cost; SLO classes from
//    GenerationRequest::priority). replicas_per_model = 1 (the default)
//    degenerates to exactly the old one-engine-per-bundle server.
//    Requests route by (GenerationRequest::model, model_version): empty
//    model = the default route, version <= 0 = the latest live version,
//    positive = pinned; the replica within the set is the Router's call.
//  * Every engine's pool charges its slab mallocs against a single shared
//    memory::SlabBudget. An idle model's unused headroom is borrowable —
//    a busy pool simply allocates it — and reclaimed through the existing
//    preempt-and-requeue path when the owner needs it back: when a model
//    under its guarantee cannot admit, the server sheds slabs from
//    over-guarantee borrowers (their victims park, resume, and replay
//    bit-identically later).
//  * step() interleaves one fused decode step per model per iteration; the
//    cross-model order is pluggable (round-robin rotation by default,
//    deepest-queue-first under kWeightedQueueDepth) — iteration-level
//    batching across models, not just within one.
//  * Registration is hot: bundles can be added or removed while serving.
//    Removal takes the route out immediately; the engine keeps the bundle
//    pinned via shared_ptr and drains its in-flight sequences, then both
//    are torn down.
//
// AsyncMultiModelGenerationServer is the concurrent shell: futures +
// streaming callbacks like AsyncGenerationServer, plus thread-safe hot
// registration (control operations are applied by the worker between
// iterations, so the single-threaded engine contract holds).
#pragma once

#include <condition_variable>
#include <cstdint>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "genserve/generation_server.h"
#include "genserve/model_bundle.h"
#include "memory/slab_budget.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "router/replica_set.h"
#include "router/router.h"
#include "serving/request.h"

namespace turbo::genserve {

struct MultiModelOptions {
  // Shared slab budget across every model's KV pool, in bytes; 0 =
  // unbounded (usage still attributed per model). With a bounded budget
  // every engine is forced onto optimistic admission — capacity under a
  // shared budget can shrink between admission and growth, which only the
  // preemption path absorbs.
  size_t total_kv_bytes = 0;
  // Per-engine defaults (pool geometry, scheduler, cost observation).
  // register_bundle() may override per model; the pool's budget fields are
  // always overwritten by the server, and so are the observability
  // attachments — every engine publishes into the server's one registry,
  // and engine.trace.enabled stands up ONE shared ring all engines record
  // into (a global timeline; cross-model reclaims land on it too).
  GenServerOptions engine;
  // Cross-model step order within one iteration. Order matters under
  // contention: earlier models admit into free budget first.
  enum class Policy {
    kRoundRobin,          // rotate the starting model every iteration
    kWeightedQueueDepth,  // deepest backlog (queued + requeued) steps first
  };
  Policy policy = Policy::kRoundRobin;
  // Live engine replicas per registered bundle (register_bundle may
  // override per model). 1 = the classic one-engine-per-bundle server,
  // preserved bit-identically; > 1 shards each model across a
  // router::ReplicaSet with `router` deciding per-request placement.
  int replicas_per_model = 1;
  // Placement policy within each replica set (SLO-aware by default).
  turbo::router::RouterOptions router;
  // One pinned worker thread per replica (ReplicaSetOptions). Only legal
  // with an unbounded budget (total_kv_bytes == 0): bounded shared
  // budgets must be stepped from one thread (see router/replica_set.h).
  bool pinned_replica_workers = false;
};

// Per-replica serving breakdown, assembled by stats(): one entry per
// (model, replica) in registration x replica order, so single-replica
// servers keep one entry per model at the same index as before.
struct ModelServingStats {
  std::string name;
  int version = 1;
  int replica = 0;          // replica index within the model's set
  std::string label;        // engine identity ("name:vN", "name:vN#r")
  bool draining = false;    // unregistered, finishing in-flight sequences
  size_t pending = 0;       // queued + requeued (preempted awaiting resume)
  size_t active = 0;        // sequences in the step batch
  size_t served = 0;        // responses completed through this engine (a
                            // snapshot view over the shared obs::Registry)
  StepStats last_step;      // engine's most recent iteration snapshot
  PoolSnapshot pool;        // pool pressure + preemption activity
  size_t budget_guarantee_bytes = 0;
  size_t budget_used_bytes = 0;  // slab footprint charged to the budget
};

// Ownership: owns the BundleRegistry, the SlabBudget and every engine;
// engines pin their bundles, so a registry entry may die while its engine
// drains. Thread-safety: single-threaded like GenerationServer — all
// mutating calls from one thread (the async shell's worker). validate()
// and registry() reads are safe from any thread (registry locks itself;
// engine validation reads immutable geometry), provided registration is
// not concurrently mutating the route table — the async shell serializes
// that through the worker.
// Invariants: every accepted submit() produces exactly one response from
// exactly one engine, chosen at submit time (a sequence never migrates
// models); the sum of pool slab footprints never exceeds the budget;
// request ids are unique across all in-flight sequences of all models;
// once idle(), draining engines have been destroyed and their bundles
// unpinned.
class MultiModelGenerationServer {
 public:
  using StepObserver =
      std::function<void(const std::string& name, int version,
                         const StepStats&)>;

  explicit MultiModelGenerationServer(MultiModelOptions options = {});
  ~MultiModelGenerationServer();

  MultiModelGenerationServer(const MultiModelGenerationServer&) = delete;
  MultiModelGenerationServer& operator=(const MultiModelGenerationServer&) =
      delete;

  // Registers `bundle` and stands up its replica set (every replica's
  // pool registered with the shared budget, the model's `guarantee_bytes`
  // reclaim floor split across replicas; pass the model's worst-case
  // single request at minimum if it must never starve). The first
  // registered name becomes the default route. `overrides` replaces the
  // per-engine defaults for this model only; `replicas` overrides
  // options.replicas_per_model for this model (0 = use the default).
  // Throws on duplicate (name, version) — including one still draining.
  void register_bundle(std::shared_ptr<ModelBundle> bundle,
                       size_t guarantee_bytes = 0,
                       std::optional<GenServerOptions> overrides = {},
                       int replicas = 0);
  // Hot removal: the route disappears immediately (new submits cannot
  // resolve to it); in-flight sequences keep the engine + bundle alive
  // until they retire. Returns false if (name, version) is not registered.
  bool unregister_bundle(const std::string& name, int version);

  // Default route for requests with an empty model field. Must name a
  // registered model.
  void set_default_model(const std::string& name);
  const std::string& default_model() const { return default_model_; }

  // Resolves the request's route and runs the target engine's validation.
  // Throws CheckError when the route does not exist or the request is
  // malformed for that model.
  void validate(const serving::GenerationRequest& request) const;

  // Queue a request on its routed model's replica set; the set's Router
  // picks the replica (kRoute span + router.* counters record the
  // decision). The route is fixed here: a later registration of a newer
  // version does not migrate it, and a sequence never migrates replicas.
  void submit(serving::GenerationRequest request,
              serving::TokenCallback on_token = nullptr);

  // One interleaved iteration: each live engine takes one scheduler
  // iteration + fused decode step (policy order), then cross-model budget
  // reclaim runs for admission-blocked under-guarantee models, then idle
  // draining engines are torn down. Returns sequences stepped across all
  // models (0 = server idle).
  int step();

  std::vector<serving::GenerationResponse> run_to_completion();
  std::vector<serving::GenerationResponse> take_completed();

  bool idle() const;
  int64_t iterations() const { return iteration_; }
  // Engines currently alive, including draining ones.
  size_t live_engines() const { return engines_.size(); }
  // True while an engine (serving or draining) exists for (name, version).
  bool serving(const std::string& name, int version) const;
  // Cross-model reclaims performed (shed calls that freed bytes).
  size_t total_reclaims() const { return total_reclaims_; }

  const BundleRegistry& registry() const { return registry_; }
  const memory::SlabBudget& budget() const { return budget_; }
  std::vector<ModelServingStats> stats() const;
  // The live replica set serving (name, version); nullptr when absent.
  const turbo::router::ReplicaSet* replica_set(const std::string& name,
                                               int version) const;

  // The shared metrics registry (never null; safe from any thread). Every
  // engine publishes under "gen.<name:vN>."; server-level totals live
  // under "gen.server.". Counters survive engine teardown — draining a
  // model does not zero its history.
  const std::shared_ptr<obs::Registry>& metrics() const { return metrics_; }
  // Responses completed across all engines, living and drained.
  size_t served_total() const {
    return metrics_->counter_value("gen.server.requests_completed");
  }
  // The shared trace ring (null when options.engine.trace is off) and a
  // consistent snapshot of the global timeline.
  const std::shared_ptr<obs::TraceRing>& trace_ring() const {
    return trace_ring_;
  }
  std::vector<obs::TraceSpan> trace_spans() const {
    return trace_ring_ ? trace_ring_->snapshot()
                       : std::vector<obs::TraceSpan>{};
  }

  void set_step_observer(StepObserver observer) {
    observer_ = std::move(observer);
  }

 private:
  struct Engine {
    std::shared_ptr<ModelBundle> bundle;  // pin (registry may drop its ref)
    std::unique_ptr<turbo::router::ReplicaSet> set;
    std::unique_ptr<turbo::router::Router> router;
    size_t guarantee_bytes = 0;  // whole-model floor (split across replicas)
    bool draining = false;
  };

  Engine* find_engine(const std::string& name, int version);
  const Engine* find_engine(const std::string& name, int version) const;
  // Routing: empty name -> default model; version <= 0 -> latest
  // non-draining engine of the name; positive -> exact. nullptr when the
  // route cannot be resolved.
  const Engine* route(const serving::GenerationRequest& request) const;
  Engine* route(const serving::GenerationRequest& request);
  // Iteration order of engine indices under the configured policy.
  std::vector<size_t> step_order() const;
  // Cross-model budget reclaim, now per (model, replica) unit (see class
  // comment). Returns bytes freed.
  size_t reclaim_for_starved_models();
  void collect_completed(Engine& engine);

  MultiModelOptions options_;
  memory::SlabBudget budget_;  // declared before engines_: pools borrow it
  std::shared_ptr<obs::Registry> metrics_;    // shared by every engine
  std::shared_ptr<obs::TraceRing> trace_ring_;  // null = tracing off
  obs::Counter* m_completed_total_ = nullptr;   // gen.server.requests_completed
  obs::Counter* m_iterations_ = nullptr;        // gen.server.iterations
  obs::Counter* m_reclaims_ = nullptr;          // gen.server.reclaims
  obs::Counter* m_reclaimed_bytes_ = nullptr;   // gen.server.reclaimed_bytes
  BundleRegistry registry_;
  std::vector<std::unique_ptr<Engine>> engines_;  // registration order
  std::string default_model_;
  std::unordered_set<int64_t> ids_in_flight_;  // across all models
  std::vector<serving::GenerationResponse> completed_;
  StepObserver observer_;
  size_t rr_cursor_ = 0;  // round-robin rotation
  int64_t iteration_ = 0;
  size_t total_reclaims_ = 0;
};

// Concurrent shell over MultiModelGenerationServer, mirroring
// AsyncGenerationServer: submit() returns a future per request, a worker
// thread runs the interleaved step loop, token callbacks stream from the
// worker.
//
// Hot registration from any thread: register_bundle()/unregister_bundle()
// enqueue control operations the worker applies between iterations (the
// returned future resolves once applied), so the single-threaded engine
// contract holds without a stop-the-world. Control operations and
// submissions drain through ONE queue in enqueue order: a client that
// submits and then unregisters (or registers a new version) observes
// those effects in exactly that order — "latest version" is latest as of
// the submit, as request.h documents.
//
// Ownership: owns the sync server and the worker thread; shutdown()
// (idempotent, also run by the destructor) drains everything pending and
// joins the worker. Thread-safety: every public method is safe from any
// thread. Invariants: every accepted submit() resolves its future exactly
// once — with a response, or with the routing/validation error (bad routes
// surface through the future, not the submit call: the authoritative route
// table lives on the worker), or with the engine's exception if the engine
// fails. Duplicate in-flight ids and submits after shutdown throw.
class AsyncMultiModelGenerationServer {
 public:
  explicit AsyncMultiModelGenerationServer(MultiModelOptions options = {});
  ~AsyncMultiModelGenerationServer();

  AsyncMultiModelGenerationServer(const AsyncMultiModelGenerationServer&) =
      delete;
  AsyncMultiModelGenerationServer& operator=(
      const AsyncMultiModelGenerationServer&) = delete;

  // The future resolves once the worker has applied the registration (or
  // faulted trying — duplicate version, oversubscribed guarantee).
  std::future<void> register_bundle(
      std::shared_ptr<ModelBundle> bundle, size_t guarantee_bytes = 0,
      std::optional<GenServerOptions> overrides = {}, int replicas = 0);
  // Resolves to unregister_bundle()'s result once applied.
  std::future<bool> unregister_bundle(std::string name, int version);

  // Enqueue one generation request; the future resolves when its sequence
  // finishes. `on_token` streams tokens from the worker thread. Routing
  // and validation run on the worker: a request that cannot route (or is
  // malformed for its model) rejects the future instead of throwing here.
  std::future<serving::GenerationResponse> submit(
      serving::GenerationRequest request,
      serving::TokenCallback on_token = nullptr);

  // Serve everything pending to completion, then stop the worker.
  void shutdown();

  // Lifetime totals, read straight from the shared metrics registry (no
  // cached copies; they survive engine drains and this shell's teardown
  // when the registry is read afterwards).
  size_t served() const;
  int64_t iterations() const;
  // Per-model breakdowns + budget snapshot, refreshed after every worker
  // iteration.
  std::vector<ModelServingStats> model_stats() const;
  memory::SlabBudgetSnapshot budget_snapshot() const;
  // Shared registry / global trace timeline; safe from any thread.
  const std::shared_ptr<obs::Registry>& metrics() const {
    return server_->metrics();
  }
  std::vector<obs::TraceSpan> trace_spans() const {
    return server_->trace_spans();
  }

 private:
  struct Submission {
    serving::GenerationRequest request;
    serving::TokenCallback on_token;
    std::promise<serving::GenerationResponse> promise;
  };
  // Exactly one member is set: a control operation (register/unregister,
  // resolves its own promise) or a submission. One queue keeps the
  // client-observed order.
  struct Event {
    std::function<void()> control;
    std::optional<Submission> submission;
  };

  void worker_loop();

  std::unique_ptr<MultiModelGenerationServer> server_;
  std::mutex join_mutex_;  // serializes shutdown/join
  mutable std::mutex mutex_;
  std::condition_variable cv_;
  std::vector<Event> incoming_;  // control + submissions, enqueue order
  std::unordered_set<int64_t> ids_in_flight_;  // duplicate-id guard
  // Promises by request id; touched only by the worker after handoff.
  std::unordered_map<int64_t, std::promise<serving::GenerationResponse>>
      in_flight_;
  bool shutdown_ = false;
  std::vector<ModelServingStats> model_stats_;
  memory::SlabBudgetSnapshot budget_snapshot_;
  std::thread worker_;
};

}  // namespace turbo::genserve
