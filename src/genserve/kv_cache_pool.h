// Slab-based K/V block pool for generation serving.
//
// The paper's model-aware allocator (§4.2) plans tensors whose lifetimes
// close within one inference. Decoder K/V caches break that assumption:
// they are born when a sequence is admitted, grow by one token row per
// decode step, and die at EOS — lifetimes spanning many inferences, unknown
// in advance. This pool extends the paper's chunked design to that regime:
//
//  * Storage is carved from slabs (AlignedBuffer chunks, the same device-
//    allocation stand-in the §4.2 allocator uses) split into fixed-size
//    blocks. A block holds `block_tokens` K rows followed by `block_tokens`
//    V rows of one layer ([heads * head_dim] floats each).
//  * A sequence is admitted with a worst-case block reservation (cross-
//    attention rows for its source length + `max_new_tokens` self rows per
//    layer), so admission control is exact and a mid-decode grow can never
//    fail: capacity is never exceeded by construction.
//  * Cross blocks are allocated eagerly on admit; self blocks materialize
//    lazily as decode steps consume token positions.
//  * Release returns every block to the free list and frees slabs that
//    became empty, so the device footprint tracks the active working set —
//    the decoder-side analogue of the paper's Fig. 11 behaviour.
//
// Footprint accounting reuses memory::DeviceTracker, making pool stats
// directly comparable with the ModelAwareAllocator's.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

#include "common/aligned_buffer.h"
#include "memory/allocator.h"
#include "model/config.h"
#include "model/decoder.h"

namespace turbo::genserve {

struct KvPoolOptions {
  int block_tokens = 16;    // token rows per block (per layer, K + V)
  int blocks_per_slab = 32; // blocks per device slab
  size_t max_bytes = 0;     // cap on slab footprint; 0 = unbounded
};

class KvCachePool;

// Per-sequence K/V handle; implements the decoder's cache interface over
// pool blocks. Created by KvCachePool::admit, auto-released on destruction
// (the pool must outlive its sequences).
class SequenceKv final : public model::KvCacheView {
 public:
  ~SequenceKv() override;
  SequenceKv(const SequenceKv&) = delete;
  SequenceKv& operator=(const SequenceKv&) = delete;

  int64_t id() const { return id_; }
  int src_len() const override { return s_src_; }
  int max_new_tokens() const { return max_new_; }
  // Self token positions currently backed by blocks.
  int capacity_tokens() const;
  size_t blocks_held() const;

  float* self_k(int layer, int t) override;
  float* self_v(int layer, int t) override;
  float* cross_k(int layer, int s) override;
  float* cross_v(int layer, int s) override;

 private:
  friend class KvCachePool;
  SequenceKv(KvCachePool* pool, int64_t id, int s_src, int max_new_tokens);

  KvCachePool* pool_;
  int64_t id_;
  int s_src_;
  int max_new_;
  size_t reserved_blocks_ = 0;
  bool released_ = false;
  // [layer][i] -> global block id backing token rows [i*bt, (i+1)*bt).
  std::vector<std::vector<int>> self_blocks_;
  std::vector<std::vector<int>> cross_blocks_;
};

class KvCachePool {
 public:
  explicit KvCachePool(const model::ModelConfig& config,
                       KvPoolOptions options = {});
  ~KvCachePool();

  KvCachePool(const KvCachePool&) = delete;
  KvCachePool& operator=(const KvCachePool&) = delete;

  size_t block_bytes() const { return block_floats_ * sizeof(float); }
  // Worst-case block demand of one sequence.
  size_t blocks_for(int s_src, int max_new_tokens) const;
  // Pool capacity in blocks (SIZE_MAX when max_bytes == 0).
  size_t max_blocks() const;
  bool can_admit(int s_src, int max_new_tokens) const;

  // Begin a sequence lifetime: reserve its worst case, allocate the cross
  // blocks and the first self block per layer. Throws CheckError if
  // can_admit is false.
  std::unique_ptr<SequenceKv> admit(int64_t seq_id, int s_src,
                                    int max_new_tokens);

  // Grow `seq` so self token position t is backed (per decode step; no-op
  // when the current blocks already cover t). Never exceeds the admission
  // reservation.
  void ensure_token(SequenceKv& seq, int t);

  // Device-activity stats (slab mallocs/frees, current + peak footprint),
  // comparable with ModelAwareAllocator::stats().
  const memory::AllocatorStats& stats() const { return tracker_.stats(); }
  // Bytes in blocks held by live sequences (the true working set).
  size_t bytes_in_use() const { return blocks_in_use_ * block_bytes(); }
  // Bytes reserved for admitted sequences' worst case (admission control).
  size_t bytes_reserved() const { return blocks_reserved_ * block_bytes(); }
  size_t blocks_in_use() const { return blocks_in_use_; }
  size_t blocks_reserved() const { return blocks_reserved_; }
  int active_sequences() const { return active_; }
  int num_slabs() const;

  const KvPoolOptions& options() const { return options_; }

 private:
  friend class SequenceKv;

  struct Slab {
    AlignedBuffer buffer;  // empty when the slab is currently freed
    int live_blocks = 0;
  };

  size_t slab_bytes() const {
    return static_cast<size_t>(options_.blocks_per_slab) * block_bytes();
  }
  int alloc_block();
  void free_block(int block_id);
  float* block_ptr(int block_id);
  void release(SequenceKv& seq);  // called by ~SequenceKv
  // Drop freed-slab block ids from the free list and release the buffers
  // of slabs that no longer hold any live block.
  void sweep_empty_slabs();

  int hidden_;
  int num_layers_;
  KvPoolOptions options_;
  size_t block_floats_;

  std::vector<Slab> slabs_;
  std::vector<int> free_blocks_;
  size_t blocks_in_use_ = 0;
  size_t blocks_reserved_ = 0;
  int active_ = 0;
  memory::DeviceTracker tracker_;
};

}  // namespace turbo::genserve
