// Slab-based K/V block pool for generation serving, with refcounted blocks,
// prompt-prefix sharing and copy-on-write forking.
//
// The paper's model-aware allocator (§4.2) plans tensors whose lifetimes
// close within one inference. Decoder K/V caches break that assumption:
// they are born when a sequence is admitted, grow by one token row per
// decode step, and die at EOS — lifetimes spanning many inferences, unknown
// in advance. This pool extends the paper's chunked design to that regime:
//
//  * Storage is carved from slabs (AlignedBuffer chunks, the same device-
//    allocation stand-in the §4.2 allocator uses) split into fixed-size
//    blocks. A block holds `block_tokens` K rows followed by `block_tokens`
//    V rows of one layer ([heads * head_dim] floats each).
//  * Every block carries a refcount. The generation-side analogue of the
//    allocator's cross-tensor chunk sharing is cross-*sequence* block
//    sharing: token histories that overlap map to the same physical blocks.
//  * Prefix sharing: admit() takes the prompt token ids as the sharing key.
//    A sequence whose prompt matches a live admitted prompt maps its
//    cross-attention blocks to the existing physical blocks (refcount++
//    instead of allocate) and skips re-encoding — the server asks
//    needs_cross_init() before running the encoder. The match is on the
//    *full* prompt: the encoder is bidirectional, so the cross K/V of every
//    source position depends on the whole sentence; sharing a shorter
//    common prefix would change numerics. Block-granular prefix reuse is
//    what fork() provides on the self side, where causal masking makes it
//    exact.
//  * fork() (pooled beam search): a forked sequence shares *all* of its
//    parent's blocks. Self blocks are copy-on-write — a block is copied
//    only when a sequence is about to write a token row into a block it
//    does not exclusively own (ensure_token is the write barrier; the hot
//    row accessors stay branch-free). Beams therefore share their common
//    history physically and diverge one block at a time.
//  * A sequence is admitted with a worst-case reservation of the blocks it
//    may come to own *uniquely*: self rows for `max_new_tokens` per layer,
//    plus — only when its prompt is not already resident — cross rows for
//    its source length. The cross reservation is charged once per live
//    prompt (it lives with the share, not the sequence), so admission
//    control charges shared prefix blocks a single time. A mid-decode grow
//    or CoW copy can never fail: capacity is never exceeded by
//    construction.
//  * Optimistic admission (admit_optimistic) drops that guarantee for
//    utilization: a sequence joins when its *current* marginal demand fits
//    (cold cross blocks + one self block per layer), while its worst case
//    is still tallied into blocks_reserved() as the oversubscription
//    measure. Growth then goes through try_ensure_token(), which reports
//    exhaustion instead of allocating past capacity; the scheduler reacts
//    by preempting a victim — preempt() releases the victim's unshared
//    self blocks back to the free list but keeps its cross share resident
//    (parked), so resume() re-admits without re-encoding and the victim
//    re-derives its self rows by replaying its own generated tokens.
//  * Release drops refcounts; a block returns to the free list only when
//    its last owner releases, and slabs that became empty free their
//    buffers, so the device footprint tracks the unique working set — the
//    decoder-side analogue of the paper's Fig. 11 behaviour.
//
// Footprint accounting reuses memory::DeviceTracker, making pool stats
// directly comparable with the ModelAwareAllocator's.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "common/aligned_buffer.h"
#include "genserve/radix_tree.h"
#include "memory/allocator.h"
#include "memory/slab_budget.h"
#include "memory/tlsf_arena.h"
#include "model/config.h"
#include "model/decoder.h"

namespace turbo::genserve {

// Storage backend for the pool's block arena.
//  * kSlab (default): blocks are carved from fixed-size slabs; the budget
//    is charged a whole slab at slab-malloc time and credited when an empty
//    slab is swept. Bit-identical to the pre-arena pool.
//  * kTlsf: blocks are variable-size ranges from one contiguous
//    memory::TlsfArena; the budget is charged the block's exact span at
//    allocation and credited the moment its last reference drops. Capacity,
//    borrow and reclaim all become byte-granular — co-hosted pools with
//    different block geometries stop rounding each other up to whole slabs.
enum class KvArenaKind { kSlab, kTlsf };

struct KvPoolOptions {
  int block_tokens = 16;    // token rows per block (per layer, K + V)
  int blocks_per_slab = 32; // blocks per device slab (kSlab only)
  size_t max_bytes = 0;     // cap on slab footprint; 0 = unbounded
  // Block storage backend (see KvArenaKind).
  KvArenaKind arena = KvArenaKind::kSlab;
  // kTlsf: initial arena reservation in bytes. 0 derives it — the byte
  // ceiling (max_bytes / bounded budget total) when one exists, else a
  // small default that grows by doubling on demand. Offsets are stable
  // across growth; only the backing stand-in buffer reallocates.
  size_t tlsf_initial_bytes = 0;
  // When false, admit() never matches prompts: every sequence gets private
  // cross blocks (fork()'s CoW still works). The A/B switch for the
  // prefix-sharing benchmark.
  bool enable_prefix_sharing = true;
  // When false, plan_causal() never matches and retiring causal sequences
  // donate nothing: causal admits behave like exact-match-only sharing
  // (i.e. no sharing at all, since every turn's prompt differs). The A/B
  // switch for the radix-prefix benchmark. Seq2seq paths ignore it.
  bool enable_radix_tree = true;
  // Test hooks: override the prompt hash (find_share collision regression)
  // and the radix chunk hash (forced-collision tree tests). Empty = FNV-1a.
  std::function<uint64_t(const std::vector<int>&)> prompt_hash_override;
  std::function<uint64_t(const int*, int)> chunk_hash_override;
  // Shared cross-pool byte budget (multi-model serving). When set, every
  // slab malloc/free is charged against it, and the pool's effective
  // capacity becomes dynamic: max_blocks() counts the budget's free
  // headroom as this pool's, so a busy model borrows slabs an idle one is
  // not using. Borrowed pointer; must outlive the pool. The pool registers
  // itself as a budget client on construction (under `budget_client_name`,
  // with `budget_guarantee_bytes` as its reclaim floor) and unregisters on
  // destruction.
  //
  // Capacity under a shared budget can shrink *between* a sequence's
  // admission and its growth (another pool borrows the headroom), so
  // worst-case admission's never-fails guarantee does not hold across
  // pools: schedulers over budget-attached pools must run optimistic
  // admission and route growth through try_ensure_token + preemption
  // (MultiModelGenerationServer enforces this).
  memory::SlabBudget* slab_budget = nullptr;
  std::string budget_client_name;
  size_t budget_guarantee_bytes = 0;
};

class KvCachePool;

// Per-sequence K/V handle; implements the decoder's cache interface over
// pool blocks. Created by KvCachePool::admit or fork, auto-released on
// destruction.
//
// Ownership: move-only handle returned by the pool; destroying it releases
// every block reference it holds. The pool must outlive all of its
// SequenceKv handles (the pool destructor checks this).
// Thread-safety: not thread-safe; a sequence belongs to whichever single
// thread is decoding it, and all of a pool's sequences must be driven from
// the pool's owning thread (see KvCachePool).
// Invariants: row accessors and extents only cover positions already
// materialized — cross rows exist from admit, self row t after
// ensure_token(t). Writing a self row without the preceding ensure_token
// call breaks CoW isolation; the accessors themselves stay branch-free by
// contract.
class SequenceKv final : public model::KvCacheView {
 public:
  ~SequenceKv() override;
  SequenceKv(const SequenceKv&) = delete;
  SequenceKv& operator=(const SequenceKv&) = delete;

  int64_t id() const { return id_; }
  int src_len() const override { return s_src_; }
  int max_new_tokens() const { return max_new_; }
  // Decoder-only sequence (admit_causal): s_src == 0, no cross K/V, and
  // max_new_tokens() counts *total* self rows (prompt + generation).
  bool causal() const { return causal_; }
  // Self rows [0, prefix_rows) adopted from the radix tier at admit or
  // resume — already materialized, must never be rewritten; the caller
  // starts decoding at step prefix_rows(). Always block-aligned.
  int prefix_rows() const { return prefix_rows_; }
  // True between KvCachePool::preempt and resume: the self blocks are
  // surrendered (row accessors must not be used) while the cross share
  // stays resident, so resume skips the encoder.
  bool parked() const { return parked_; }
  // Self token positions currently backed by blocks.
  int capacity_tokens() const;
  // Block references this sequence holds (self + cross); shared blocks are
  // counted by every holder, so this is not a unique-footprint measure.
  size_t blocks_held() const;

  // True for the sequence that must run the encoder and project cross K/V
  // (the first admit of its prompt); false when the blocks were shared from
  // a prompt whose creator already did or will do it this iteration.
  bool needs_cross_init() const;
  // True while another live sequence references the same cross share —
  // releasing this handle would then free no cross blocks. (The
  // scheduler's last-resort eviction prefers handles whose release
  // actually returns storage.)
  bool cross_shared() const;
  // True once the cross K/V this sequence reads are materialized: causal
  // sequences always (no cross side), sharing followers only after the
  // share's creator ran init_cross_attention + mark_cross_ready. With
  // deferred (quantum-scheduled) encoding a follower can be admitted before
  // its creator encoded; it must not step until this turns true.
  bool cross_ready() const;
  // Cross-block share this sequence references (-1 for promptless admits).
  // Two sequences with the same share id read the same cross K/V, so a
  // scheduler can tell whether a pending encode job unblocks a follower.
  int64_t share_id() const { return share_id_; }
  // The creator calls this after init_cross_attention so later admits of
  // the same prompt can skip straight to decoding.
  void mark_cross_ready();

  float* self_k(int layer, int t) override;
  float* self_v(int layer, int t) override;
  float* cross_k(int layer, int s) override;
  float* cross_v(int layer, int s) override;

  // Paged-attention geometry: one KvSpan per backing block, in token-
  // position order (block i covers rows [i*bt, (i+1)*bt); the last span is
  // truncated to `count` / src_len()). Works identically on CoW-shared
  // blocks — sharing only affects writes (ensure_token's barrier), never
  // where reads live. Self extents require ensure_token(count - 1) to have
  // run; physical order of spans tracks however the free list fragmented,
  // which is invisible to the decoder.
  bool self_extents(int layer, int count,
                    std::vector<model::KvSpan>& out) override;
  bool cross_extents(int layer, std::vector<model::KvSpan>& out) override;

 private:
  friend class KvCachePool;
  SequenceKv(KvCachePool* pool, int64_t id, int s_src, int max_new_tokens);
  void block_extents(const std::vector<int>& blocks, int count,
                     std::vector<model::KvSpan>& out) const;

  KvCachePool* pool_;
  int64_t id_;
  int s_src_;
  int max_new_;
  size_t reserved_blocks_ = 0;  // self worst case (cross lives in the share)
  bool released_ = false;
  bool parked_ = false;   // preempted: self blocks surrendered, share kept
  bool cross_creator_ = false;  // this admit owes the share its cross init
  bool causal_ = false;   // decoder-only: empty share, radix-shareable self
  int prefix_rows_ = 0;   // self rows adopted from the radix tier
  int64_t share_id_ = -1;  // cross-block share this sequence references
  // Pinned radix nodes backing self rows [0, prefix_rows_); node i's blocks
  // are this sequence's self blocks i (additionally refcounted per holder).
  std::vector<BlockRadixTree::Node*> radix_chain_;
  // [layer][i] -> global block id backing self rows [i*bt, (i+1)*bt).
  std::vector<std::vector<int>> self_blocks_;
};

// Ownership: owns all slabs, blocks and cross shares; hands out SequenceKv
// handles that reference (never own) block storage. Borrowed by
// GenerationScheduler and GenerationServer; must outlive every handle and
// borrower.
// Thread-safety: externally synchronized. All mutating calls (admit, fork,
// ensure_token, sequence destruction) must come from one thread at a time
// — in the serving stack that is AsyncGenerationServer's worker. Only the
// immutable-geometry readers (block_bytes, blocks_for, max_blocks) are
// safe to call concurrently with mutation; they are what validate() uses
// from client threads.
// Invariants (enforced by check_invariants(), fuzzed in
// tests/kv_pool_property_test.cc):
//  * every live block's refcount equals the references actually held by
//    sequences (self), shares (cross) and radix nodes; blocks_in_use_
//    counts unique live blocks; a parked sequence holds no self blocks and
//    no radix chain;
//  * blocks_in_use() <= blocks_reserved() + radix_cached_blocks() at every
//    point between public calls (tree-only blocks are the slack; every
//    other block is covered by a holder's reservation). Worst-case
//    admission additionally keeps blocks_reserved() <= max_blocks(), so
//    grow and CoW can never fail mid-decode — the radix tier preserves
//    this because unpinned nodes are always evictable down to zero;
//    optimistic admission lets reservations oversubscribe capacity and
//    instead keeps blocks_in_use() <= max_blocks() by failing
//    try_ensure_token;
//  * a freed block is on the free list of a live slab; empty slabs hold no
//    buffer; the device footprint returns to exactly zero when the last
//    sequence releases.
class KvCachePool {
 public:
  explicit KvCachePool(const model::ModelConfig& config,
                       KvPoolOptions options = {});
  ~KvCachePool();

  KvCachePool(const KvCachePool&) = delete;
  KvCachePool& operator=(const KvCachePool&) = delete;

  size_t block_bytes() const { return block_floats_ * sizeof(float); }
  // Worst-case block demand of one sequence with a cold (unshared) prompt.
  size_t blocks_for(int s_src, int max_new_tokens) const;
  // Marginal worst-case demand of admitting `prompt_tokens` right now:
  // drops the cross-block term when the prompt is already resident, so
  // shared prefix blocks are charged against capacity exactly once.
  size_t blocks_for_prompt(const std::vector<int>& prompt_tokens,
                           int max_new_tokens) const;
  // Pool capacity in blocks right now. For a budget-attached pool this is
  // dynamic: the pool's own slabs plus whatever whole slabs the shared
  // budget could still back (shrinks as sibling pools borrow, grows back
  // as they drain). SIZE_MAX when neither max_bytes nor a bounded budget
  // caps the pool.
  size_t max_blocks() const;
  // Hard ceiling on max_blocks() over the pool's lifetime: own max_bytes
  // and the *full* shared budget, as if no sibling pool held anything.
  // Immutable after construction (what request validation checks against —
  // safe from any thread).
  size_t max_blocks_ceiling() const;
  // True while sibling pools' borrowing is currently reducing this pool's
  // capacity below its ceiling — admission failures in that state are
  // external starvation the budget owner can fix by reclaiming, not a
  // wedge.
  bool capacity_borrowed_elsewhere() const {
    return max_blocks() < max_blocks_ceiling();
  }
  bool can_admit(int s_src, int max_new_tokens) const;
  bool can_admit_prompt(const std::vector<int>& prompt_tokens,
                        int max_new_tokens) const;

  // Resolved share lookup, computed once per admission attempt. The admit
  // paths used to re-run find_share() (a full prompt re-hash + compare) up
  // to three times per admission — once in can_admit_prompt, once in
  // blocks_for_prompt, once in admit; planning first and passing the plan
  // through does the lookup exactly once. A plan is a point-in-time
  // snapshot: use it for one admission on the same thread, before any
  // other pool mutation, then replan.
  struct SharePlan {
    int64_t share_id = -1;  // live share with this exact prompt, or -1
  };
  SharePlan plan_share(const std::vector<int>& prompt_tokens) const;

  size_t blocks_for_prompt(const std::vector<int>& prompt_tokens,
                           int max_new_tokens, const SharePlan& plan) const;
  bool can_admit_prompt(const std::vector<int>& prompt_tokens,
                        int max_new_tokens, const SharePlan& plan) const;

  // Begin a sequence lifetime keyed by its prompt tokens: reserve the
  // marginal worst case, map cross blocks to an existing live prompt match
  // (refcount++) or allocate them, and allocate the first self block per
  // layer. Throws CheckError if can_admit_prompt is false.
  std::unique_ptr<SequenceKv> admit(int64_t seq_id,
                                    const std::vector<int>& prompt_tokens,
                                    int max_new_tokens);
  std::unique_ptr<SequenceKv> admit(int64_t seq_id,
                                    const std::vector<int>& prompt_tokens,
                                    int max_new_tokens, const SharePlan& plan);
  // Promptless admission (no sharing key): private cross blocks, reserved
  // like blocks_for. Used by pooled beam roots over raw encoder memory.
  std::unique_ptr<SequenceKv> admit(int64_t seq_id, int s_src,
                                    int max_new_tokens);

  // --- Optimistic admission + preempt-and-requeue ---------------------
  // Marginal blocks an admit of `prompt_tokens` would materialize *right
  // now*: cross blocks when the prompt is cold, plus one self block per
  // layer. This is what optimistic admission gates on, instead of the
  // worst case. `headroom_blocks` keeps capacity uncommitted for the
  // near-term growth of sequences already running (the scheduler passes
  // one boundary-crossing per active sequence), damping admit-then-
  // immediately-preempt thrash.
  size_t blocks_for_admit_now(const std::vector<int>& prompt_tokens) const;
  size_t blocks_for_admit_now(const std::vector<int>& prompt_tokens,
                              const SharePlan& plan) const;
  bool can_admit_now(const std::vector<int>& prompt_tokens,
                     size_t headroom_blocks = 0) const;
  bool can_admit_now(const std::vector<int>& prompt_tokens,
                     const SharePlan& plan, size_t headroom_blocks) const;
  // can_admit_now for a sequence that will immediately re-materialize
  // `token_rows` self rows (an evicted sequence re-admitting to replay its
  // parked tokens): the rows' blocks are part of the demand, mirroring
  // can_resume for parked handles.
  bool can_readmit_now(const std::vector<int>& prompt_tokens, int token_rows,
                       size_t headroom_blocks = 0) const;
  bool can_readmit_now(const std::vector<int>& prompt_tokens,
                       const SharePlan& plan, int token_rows,
                       size_t headroom_blocks) const;
  // Blocks one sequence materializes when it crosses a block-tokens
  // boundary (one per layer) — the unit of growth headroom.
  size_t blocks_per_boundary() const {
    return static_cast<size_t>(num_layers_);
  }
  // Admit when the *current* marginal demand fits. The worst case is still
  // added to blocks_reserved() — with optimistic admission that total may
  // exceed max_blocks(); the overshoot is the pool's oversubscription.
  // Growth for optimistic sequences must go through try_ensure_token, and
  // the caller must be prepared to preempt() a victim when it fails.
  std::unique_ptr<SequenceKv> admit_optimistic(
      int64_t seq_id, const std::vector<int>& prompt_tokens,
      int max_new_tokens);
  std::unique_ptr<SequenceKv> admit_optimistic(
      int64_t seq_id, const std::vector<int>& prompt_tokens,
      int max_new_tokens, const SharePlan& plan);

  // --- Causal (decoder-only) admission over the radix tier --------------
  // A causal sequence has no encoder: its prompt is prefilled through the
  // decoder one token per step, so every self row t is a pure function of
  // fed tokens [0, t] and any *block-aligned prefix* of fed tokens cached
  // in the radix tree can be adopted bit-identically instead of recomputed.
  // The tree is a cache tier below the active pool: unpinned (evictable)
  // node bytes do not count against the admission gates — charged_blocks()
  // is what competes for capacity — and are reclaimed LRU-first on demand.
  //
  // Plan-then-admit, like SharePlan: plan_causal() resolves the longest
  // cached prefix once; the admit/resume call adopts exactly that chain.
  // The match is capped at tokens.size() - 1 rows: the final fed token's
  // step must always run live, because its logits seed the next token.
  struct CausalPlan {
    int prefix_rows = 0;  // block-aligned; chain.size() * block_tokens
    std::vector<BlockRadixTree::Node*> chain;
  };
  CausalPlan plan_causal(const std::vector<int>& fed_tokens) const;

  // Worst-case block demand of one causal sequence: self rows for the
  // whole prompt plus `max_new_tokens` generated rows, shared prefix
  // included (the reservation must cover full divergence, so worst-case
  // admission keeps its never-fails guarantee; the concurrency win comes
  // from optimistic admission gating on charged_blocks()).
  size_t blocks_for_causal(int prompt_len, int max_new_tokens) const;
  bool can_admit_causal(int prompt_len, int max_new_tokens) const;
  // Blocks an admit with this plan materializes-or-charges right now: one
  // fresh self block per layer, plus the chain nodes not currently pinned
  // (adopting them moves their bytes from the evictable tier into the
  // charged set).
  size_t blocks_for_causal_now(const CausalPlan& plan) const;
  bool can_admit_causal_now(const CausalPlan& plan,
                            size_t headroom_blocks = 0) const;
  // As can_admit_causal_now for an evicted causal sequence re-admitting to
  // replay `token_rows` total self rows (fed history + next step); the
  // rows beyond the plan's prefix are part of the immediate demand.
  bool can_readmit_causal_now(const CausalPlan& plan, int token_rows,
                              size_t headroom_blocks = 0) const;
  // Admit a decoder-only sequence: empty cross share (never encoded),
  // reservation for prompt + max_new self rows, prefix chain adopted from
  // `plan` (pinned + refcounted into the sequence), first fresh self block
  // allocated. Throws CheckError unless can_admit_causal_now(plan). The
  // caller prefills from step prefix_rows(). Under worst-case admission
  // gate on can_admit_causal first; the reservation may oversubscribe
  // capacity otherwise, exactly like admit_optimistic.
  std::unique_ptr<SequenceKv> admit_causal(
      int64_t seq_id, const std::vector<int>& prompt_tokens,
      int max_new_tokens, const CausalPlan& plan);

  // Causal analogues of can_resume/resume: a parked causal sequence
  // re-plans against its full fed history (prompt + generated so far), so
  // a resume can adopt *more* cached rows than it was admitted with.
  bool can_resume_causal(const SequenceKv& seq, const CausalPlan& plan,
                         int token_rows, size_t headroom_blocks = 0) const;
  void resume_causal(SequenceKv& seq, const CausalPlan& plan);

  // Donate `seq`'s materialized self rows to the radix tier, covering the
  // fed tokens it actually wrote (the caller truncates to rows decoded).
  // Whole blocks only; chunks already cached dedup against the existing
  // nodes. Called right before the handle is released (retire), so the
  // donated rows outlive the sequence as evictable cache. No-op when the
  // radix tier is disabled.
  void donate_radix(const SequenceKv& seq, const std::vector<int>& fed_tokens);

  // Evict every unpinned radix node, returning its bytes to the free pool
  // (memory-pressure shedding, pool teardown, A/B resets).
  void drop_radix_cache();

  // Blocks competing for admission capacity: unique blocks in use minus
  // the evictable radix tier (those bytes are reclaimable on demand, so
  // optimistic gates see them as free).
  size_t charged_blocks() const;

  // Preempt `seq`: drop every self-block reference it holds (physical
  // blocks it shared CoW with a fork stay live through the other holders)
  // and zero its reservation, but keep its cross share referenced so a
  // later resume() skips the encoder. The handle stays live in a parked
  // state; row accessors and growth are invalid until resume. Requires
  // cross init to have completed (preempting a sequence that still owes
  // its share the encoder pass would wedge the share).
  void preempt(SequenceKv& seq);
  // Can `seq` rejoin right now? `token_rows` is how many self rows it will
  // re-materialize immediately (its parked tokens plus the next step) —
  // resuming into less space than the replay needs would just thrash the
  // sequence straight back out. `headroom_blocks` as in can_admit_now.
  bool can_resume(const SequenceKv& seq, int token_rows = 1,
                  size_t headroom_blocks = 0) const;
  // Re-admit a parked sequence: recharge its self reservation and give it
  // its first self block per layer again. The caller re-derives the self
  // rows by replaying the sequence's generated tokens through the decoder
  // (bit-identical: the cross K/V never left the pool).
  void resume(SequenceKv& seq);

  // Fork `parent` copy-on-write: the child shares every cross and self
  // block (refcount++ only) and reserves its own self worst case, so it
  // can later diverge completely without allocation failure. Throws
  // CheckError when that reservation does not fit — on a bounded pool,
  // budget one extra self reservation per fork held while the parent is
  // still live (decode()'s beam reorder forks only parents surviving into
  // multiple hypotheses; the last child takes the parent's cache over, so
  // its transient demand is at most beam_size - 1 extra reservations).
  std::unique_ptr<SequenceKv> fork(const SequenceKv& parent, int64_t child_id);
  bool can_fork(const SequenceKv& parent) const;

  // Grow `seq` so self token position t is backed (per decode step; no-op
  // when the current blocks already cover t), and copy-on-write the block
  // that will receive row t if it is not exclusively owned. Must be called
  // before the decode step that writes row t. Never exceeds the admission
  // reservation. Throws CheckError on pool exhaustion — impossible for
  // worst-case admits, so only optimistic callers need try_ensure_token.
  void ensure_token(SequenceKv& seq, int t);
  // Like ensure_token, but returns false (mutating nothing) when backing
  // row t would push blocks_in_use() past max_blocks(). The optimistic
  // scheduler's growth path: a false return triggers preemption.
  bool try_ensure_token(SequenceKv& seq, int t);

  // Device-activity stats (slab mallocs/frees, current + peak footprint),
  // comparable with ModelAwareAllocator::stats(). Under kTlsf the tracker
  // counts per-block spans, so current_device_bytes equals the budget
  // charge exactly (no slab rounding).
  const memory::AllocatorStats& stats() const { return tracker_.stats(); }
  KvArenaKind arena_kind() const { return options_.arena; }
  // Byte granularity of this pool's budget traffic: what one reclaimed
  // unit returns to the shared budget — a whole slab under kSlab, one
  // block span under kTlsf. Reclaim/demand sizing in the multi-model
  // server quantizes to this instead of hard-coding slab math.
  size_t reclaim_grain_bytes() const;
  // Arena counters when arena_kind() == kTlsf; nullopt under kSlab.
  std::optional<memory::TlsfArenaStats> tlsf_stats() const;
  // Bytes in unique physical blocks held by live sequences (the true
  // working set; a block shared by N sequences counts once).
  size_t bytes_in_use() const { return blocks_in_use_ * block_bytes(); }
  // Bytes reserved for admitted sequences' worst case (admission control).
  size_t bytes_reserved() const { return blocks_reserved_ * block_bytes(); }
  size_t blocks_in_use() const { return blocks_in_use_; }
  // High-water mark of blocks_in_use over the pool lifetime (the peak
  // unique working set, independent of slab-granular footprint).
  size_t peak_blocks_in_use() const { return peak_blocks_in_use_; }
  // High-water mark of the INSTANTANEOUS overshoot of device footprint
  // over the live working set (resident bytes minus live block bytes,
  // sampled at every allocation-state change). This is the fragmentation
  // number: whole-slab pools pay partial slabs and not-yet-swept empties
  // here; TLSF pools pay only the holes below the arena frontier. Unlike
  // comparing the separate peaks of resident and live bytes (which both
  // saturate under load and cancel), this stays time-correlated.
  size_t peak_waste_bytes() const { return peak_waste_bytes_; }
  size_t blocks_reserved() const { return blocks_reserved_; }
  int active_sequences() const { return active_; }
  int num_slabs() const;

  // Sharing-activity counters (monotonic over the pool lifetime).
  size_t prefix_hits() const { return prefix_hits_; }   // admits that shared
  size_t cow_copies() const { return cow_copies_; }     // CoW block copies
  size_t forks() const { return forks_; }
  // Radix-tier counters (monotonic) and gauges.
  size_t radix_hits() const { return radix_hits_; }       // admits/resumes
  size_t radix_hit_rows() const { return radix_hit_rows_; }  // rows skipped
  size_t radix_evictions() const { return radix_evictions_; }  // nodes
  size_t radix_nodes() const { return radix_ ? radix_->nodes() : 0; }
  size_t radix_cached_blocks() const {
    return radix_ ? radix_->cached_blocks() : 0;
  }
  size_t radix_evictable_blocks() const {
    return radix_ ? radix_->evictable_blocks() : 0;
  }
  // Preemption counters (also folded into stats() via DeviceTracker).
  size_t preemptions() const { return stats().preempt_count; }
  size_t resumes() const { return stats().resume_count; }
  int parked_sequences() const { return parked_; }

  // Cross-checks every pool invariant against the live sequence registry:
  // per-block refcounts equal the references actually held by sequences
  // and shares, blocks_in_use_ equals the number of unique live blocks,
  // per-slab live counts and the free list are consistent, and usage never
  // exceeds reservation. Throws CheckError on violation. O(pool size);
  // meant for tests.
  void check_invariants() const;

  const KvPoolOptions& options() const { return options_; }

 private:
  friend class SequenceKv;

  struct Slab {
    AlignedBuffer buffer;  // empty when the slab is currently freed
    int live_blocks = 0;   // unique live blocks resident in this slab
  };

  // Cross-attention blocks for one live prompt, shared by every sequence
  // (and fork) decoding from it. The cross worst-case reservation lives
  // here so it is charged once however many sequences share the prompt,
  // and released only when the last of them does.
  struct CrossShare {
    std::vector<int> prompt;  // empty for promptless (unshareable) admits
    uint64_t key = 0;
    std::vector<std::vector<int>> blocks;  // [layer][i]
    int refs = 0;
    size_t reserved_blocks = 0;
    bool ready = false;           // init_cross_attention has run
    bool creator_live = false;    // a live sequence owns initialization
  };

  size_t slab_bytes() const {
    return static_cast<size_t>(options_.blocks_per_slab) * block_bytes();
  }
  size_t self_blocks_for(int max_new_tokens) const;
  size_t cross_blocks_for(int s_src) const;
  uint64_t prompt_hash(const std::vector<int>& prompt_tokens) const;
  // Live share with this exact prompt, or -1.
  int64_t find_share(const std::vector<int>& prompt_tokens) const;
  int64_t create_share(std::vector<int> prompt_tokens, int s_src);
  void unref_share(int64_t share_id);
  std::unique_ptr<SequenceKv> admit_with_share(int64_t seq_id, int s_src,
                                               int max_new_tokens,
                                               int64_t share_id,
                                               bool created_share);
  // Pin `plan`'s chain into `seq`: one block reference per node per layer,
  // prefix_rows set; bumps the radix hit counters when the chain is
  // non-empty.
  void attach_radix(SequenceKv& seq, const CausalPlan& plan);
  // Unpin and forget the chain (preempt/release); block unrefs are the
  // caller's (they walk self_blocks_, which includes the chain blocks).
  void detach_radix(SequenceKv& seq);
  // Evict unpinned radix nodes LRU-first until `fresh` more blocks fit
  // under max_blocks(), or the evictable tier is dry.
  void make_room(size_t fresh);

  int alloc_block();
  void ref_block(int block_id);
  void unref_block(int block_id);
  float* block_ptr(int block_id);
  const float* block_ptr(int block_id) const;
  void release(SequenceKv& seq);  // called by ~SequenceKv
  // Drop freed-slab block ids from the free list and release the buffers
  // of slabs that no longer hold any live block. No-op under kTlsf (spans
  // return to the arena the moment their refcount hits zero).
  void sweep_empty_slabs();
  // kTlsf: extend the arena (and its backing stand-in buffer) by at least
  // `min_extra` bytes, doubling to amortize. Unbounded pools only — a
  // bounded arena reserves its ceiling up front.
  void grow_arena(size_t min_extra);
  // Sample resident - live into peak_waste_bytes_; called after every
  // allocation-state change (block alloc/free, slab sweep).
  void note_waste();

  int hidden_;
  int num_layers_;
  KvPoolOptions options_;
  size_t block_floats_;

  std::vector<Slab> slabs_;
  std::vector<int> free_blocks_;
  std::vector<int> block_refs_;  // per global block id; 0 = free
  // kTlsf state (unused under kSlab). Block ids stay dense ints — the
  // SequenceKv/share/radix layers are arena-agnostic — but each id maps to
  // an arena span instead of a slab slot. tlsf_unit_ is block_bytes()
  // rounded up to a TLSF size-class boundary; charging the rounded span
  // keeps every free hole a multiple of the only allocation size, so the
  // byte gates (max_blocks) imply the class-rounded search cannot fail.
  std::unique_ptr<memory::TlsfArena> tlsf_;
  AlignedBuffer tlsf_buffer_;        // host stand-in backing arena offsets
  size_t tlsf_unit_ = 0;             // charged bytes per block
  std::vector<size_t> block_offsets_;  // id -> arena offset; kNoOffset free
  std::vector<int> free_ids_;          // recycled kTlsf block ids
  static constexpr size_t kNoOffset = ~static_cast<size_t>(0);
  size_t blocks_in_use_ = 0;
  size_t peak_blocks_in_use_ = 0;
  size_t peak_waste_bytes_ = 0;
  size_t blocks_reserved_ = 0;
  int active_ = 0;
  int parked_ = 0;
  memory::DeviceTracker tracker_;
  // Shared-budget registration (slab_budget set): charged at slab malloc,
  // released when empty slabs free their buffers.
  memory::SlabBudget::ClientId budget_client_ = -1;

  std::unordered_map<int64_t, CrossShare> shares_;
  std::unordered_multimap<uint64_t, int64_t> prompt_index_;  // hash -> share
  int64_t next_share_id_ = 0;
  std::unordered_set<const SequenceKv*> live_;  // invariant-check registry

  // Radix cache tier over causal self blocks (always constructed; only
  // consulted when options_.enable_radix_tree).
  std::unique_ptr<BlockRadixTree> radix_;

  size_t prefix_hits_ = 0;
  size_t cow_copies_ = 0;
  size_t forks_ = 0;
  size_t radix_hits_ = 0;
  size_t radix_hit_rows_ = 0;
  size_t radix_evictions_ = 0;
};

// model::BeamKvFactory over a KvCachePool: decode()'s beam search allocates
// its root cache with admit() and reorders beams with fork(), so unchanged
// history is shared copy-on-write instead of deep-copied per beam.
class PooledBeamKv final : public model::BeamKvFactory {
 public:
  // Sequence ids are drawn from `first_id` downward (negative), keeping
  // them clear of server-issued request ids in shared pools: servers issue
  // ids >= 0 growing upward, beam roots take < 0 growing downward, so the
  // two spaces can never collide. The constructor enforces first_id < 0
  // (a non-negative start would march straight into server id territory).
  explicit PooledBeamKv(KvCachePool* pool, int64_t first_id = -1);

  std::unique_ptr<model::KvCacheView> create(int s_src, int max_len) override;
  std::unique_ptr<model::KvCacheView> fork(model::KvCacheView& parent) override;
  void prepare_token(model::KvCacheView& cache, int t) override;

 private:
  KvCachePool* pool_;
  int64_t next_id_;
};

}  // namespace turbo::genserve
