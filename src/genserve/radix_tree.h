// Token-radix tree over block-aligned KV prefixes (SGLang/vLLM lineage).
//
// PR 2's prefix sharing keys on the *full* prompt, so a multi-turn
// conversation whose history grows by one user turn shares nothing with
// its previous turn. This tree fixes that for self-attention KV, where
// causal masking makes partial reuse exact: row t depends only on rows
// [0, t], so any common *prefix* of fed tokens produces bit-identical K/V
// rows. (Cross-attention KV stays exact-match in KvCachePool — the encoder
// is bidirectional, every cross row depends on the whole sentence.)
//
// Granularity is one pool block: a node covers exactly `block_tokens` fed
// tokens and owns one physical block id per decoder layer. Matching walks
// chunk-by-chunk from the root, so only block-aligned prefixes are shared
// — a partial block is never split, which keeps the mapping onto
// KvCachePool's fixed-size blocks trivial (node i of a chain backs self
// rows [i*bt, (i+1)*bt) in every layer).
//
// The tree is a *cache tier below the active pool*:
//  * A live sequence that adopted a chain pins it (pin_chain); pinned
//    nodes are never evicted, so a sequence's shared prefix cannot be
//    pulled out from under it.
//  * Unpinned nodes are evictable in LRU order (leaf-first, so a chain
//    drains bottom-up and the tree never orphans a reachable suffix).
//    The pool treats their blocks as free capacity: evictable bytes do
//    not count against admission, they are reclaimed on demand.
//
// Children are keyed by a chunk hash but verified by full token-sequence
// comparison — a hash collision costs a compare, never a wrong match. The
// hash is injectable so tests can force colliding chunks deterministically.
//
// Ownership: the tree owns its nodes; physical block ids are opaque here —
// KvCachePool refs a block once per tree node holding it and unrefs on
// eviction, so block lifetime stays with the pool's refcounts.
// Thread-safety: externally synchronized, same single-consumer rule as the
// owning pool.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <unordered_map>
#include <vector>

namespace turbo::genserve {

class BlockRadixTree {
 public:
  struct Node {
    Node* parent = nullptr;     // null for children of the root
    std::vector<int> tokens;    // exactly block_tokens fed-token ids
    std::vector<int> blocks;    // [num_layers] physical block ids
    uint64_t hash = 0;          // chunk hash (children-map key)
    uint64_t stamp = 0;         // LRU clock, bumped on pin and insert
    int pins = 0;               // live sequences holding this node
    // hash -> child; collisions resolved by exact token compare.
    std::unordered_multimap<uint64_t, std::unique_ptr<Node>> children;
  };

  // Root-first chain of matched nodes; rows == chain.size() * block_tokens.
  struct Match {
    std::vector<Node*> chain;
    int rows = 0;
  };

  // `chunk_hash` overrides the FNV-1a chunk hash (tests force collisions
  // with it); default-constructed means the real hash.
  BlockRadixTree(int block_tokens, int num_layers,
                 std::function<uint64_t(const int*, int)> chunk_hash = {});

  BlockRadixTree(const BlockRadixTree&) = delete;
  BlockRadixTree& operator=(const BlockRadixTree&) = delete;

  // Longest cached block-aligned prefix of `tokens`, capped at `max_rows`
  // rows. Read-only (LRU stamps move on pin_chain, not on lookup, so const
  // capacity queries can plan without mutating).
  Match match(const std::vector<int>& tokens, int max_rows) const;

  // Child of `parent` (null = root) holding exactly `chunk[0, block_tokens)`,
  // or null. Exact token compare on every hash hit.
  Node* find_child(const Node* parent, const int* chunk) const;

  // Insert a child of `parent` covering `chunk` backed by `layer_blocks`
  // (one block id per layer). The caller must have checked find_child ==
  // null (duplicate chunks are a bug) and owns the blocks' refcounts.
  Node* insert_child(Node* parent, const int* chunk,
                     std::vector<int> layer_blocks);

  // Pin/unpin every node of a matched chain (a live sequence adopting or
  // surrendering it). Pinning bumps the LRU stamps.
  void pin_chain(const std::vector<Node*>& chain);
  void unpin_chain(const std::vector<Node*>& chain);

  // Evict the least-recently-stamped unpinned *leaf*, appending its
  // per-layer block ids to `freed_blocks` for the pool to unref. Returns
  // false when nothing is evictable. Whenever any unpinned node exists an
  // unpinned leaf exists (a pinned child implies a pinned parent), so
  // repeated calls drain the whole evictable tier.
  bool evict_lru(std::vector<int>* freed_blocks);

  size_t nodes() const { return node_count_; }
  // Blocks the tree holds a reference to (num_layers per node).
  size_t cached_blocks() const {
    return node_count_ * static_cast<size_t>(num_layers_);
  }
  // Blocks in unpinned nodes — reclaimable without touching live work.
  size_t evictable_blocks() const {
    return evictable_nodes_ * static_cast<size_t>(num_layers_);
  }
  int block_tokens() const { return block_tokens_; }

  // Visit every node (pre-order). For invariant checks and tests.
  void for_each(const std::function<void(const Node&)>& fn) const;

  // Structural self-check: parent links, per-node geometry (token count,
  // one block per layer), child-map keys, pin nonnegativity, and the
  // evictable-node count. Throws CheckError on violation.
  void check_invariants() const;

 private:
  uint64_t chunk_hash(const int* chunk) const;

  int block_tokens_;
  int num_layers_;
  std::function<uint64_t(const int*, int)> hash_override_;
  Node root_;  // sentinel: empty tokens/blocks, never matched or evicted
  size_t node_count_ = 0;
  size_t evictable_nodes_ = 0;
  uint64_t clock_ = 0;
};

}  // namespace turbo::genserve
