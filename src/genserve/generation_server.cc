#include "genserve/generation_server.h"

#include <algorithm>
#include <limits>
#include <utility>

#include "common/check.h"
#include "tensor/tensor.h"

namespace turbo::genserve {

namespace {

// Coarse analytic cached_cost stand-in for admission control when no
// profiled table is supplied: step latency grows with context length and
// batch size. Benchmarks pass a table profiled on the real runtime.
serving::CostTable default_cost_table(const GenSchedulerOptions& scheduler) {
  const int max_batch = std::max(scheduler.max_active, 16);
  return serving::CostTable::warmup(
      [](int len, int batch) {
        return 0.1 + 0.05 * batch + 0.0005 * static_cast<double>(len) * batch;
      },
      /*max_len=*/512, max_batch, /*len_step=*/16);
}

// Admission-cost preference: explicit engine option, then the bundle's
// profiled per-model table, then the coarse analytic warm-up.
serving::CostTable resolve_cost_table(const ModelBundle& bundle,
                                      const GenServerOptions& options) {
  if (options.cost_table) return *options.cost_table;
  if (bundle.cost_table) return *bundle.cost_table;
  return default_cost_table(options.scheduler);
}

// The member-init list dereferences the bundle (config copy, cost-table
// resolution), so the null check must run before initialization starts.
std::shared_ptr<ModelBundle> require_bundle(
    std::shared_ptr<ModelBundle> bundle) {
  TT_CHECK_MSG(bundle != nullptr, "GenerationServer needs a model bundle");
  TT_CHECK_MSG(bundle->decoder_only() || bundle->encoder != nullptr,
               "seq2seq bundle " << bundle->label() << " has no encoder");
  TT_CHECK(bundle->decoder != nullptr);
  return bundle;
}

// The serving mode follows the bundle, not the caller: a decoder-only
// bundle always runs the scheduler's causal-LM path (radix prefix
// admission, prompt prefill through the decode loop).
GenSchedulerOptions resolve_scheduler_options(const ModelBundle& bundle,
                                              const GenServerOptions& options) {
  GenSchedulerOptions scheduler = options.scheduler;
  scheduler.causal_lm = bundle.decoder_only();
  return scheduler;
}

// Admission headroom in blocks: what the pool could still charge right
// now. SIZE_MAX when the pool is unbounded (no cap, no shared budget cap).
size_t pool_free_blocks(const KvCachePool& pool) {
  const size_t cap = pool.max_blocks();
  if (cap == std::numeric_limits<size_t>::max()) return cap;
  const size_t charged = pool.charged_blocks();
  return cap > charged ? cap - charged : 0;
}

// Monotonic time_point -> the obs tick domain (both are steady_clock, so
// the conversion is exact and spans line up with obs::now_ticks stamps).
uint64_t to_ticks(std::chrono::steady_clock::time_point tp) {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          tp.time_since_epoch())
          .count());
}

}  // namespace

// ---------------------------------------------------------------------------
// GenerationServer
// ---------------------------------------------------------------------------

GenerationServer::GenerationServer(model::ModelConfig config,
                                   GenServerOptions options, uint64_t seed)
    : GenerationServer(make_bundle(config.name.empty() ? "model" : config.name,
                                   /*version=*/1, config, seed),
                       std::move(options)) {}

GenerationServer::GenerationServer(std::shared_ptr<ModelBundle> bundle,
                                   GenServerOptions options)
    : bundle_(require_bundle(std::move(bundle))),
      config_(bundle_->config),
      costs_(resolve_cost_table(*bundle_, options)),
      pool_(config_, options.pool),
      scheduler_(&pool_, &costs_, resolve_scheduler_options(*bundle_, options)),
      causal_(bundle_->decoder_only()),
      quantum_on_(options.scheduler.step_token_quantum > 0),
      observe_costs_(options.observe_step_costs),
      observe_alpha_(options.cost_observe_alpha),
      epoch_(std::chrono::steady_clock::now()) {
  std::shared_ptr<obs::TraceRing> ring = options.trace.ring;
  if (ring == nullptr && options.trace.enabled) {
    ring = std::make_shared<obs::TraceRing>(options.trace.capacity);
  }
  const std::string label =
      options.instance_label.empty() ? bundle_->label()
                                     : options.instance_label;
  tracer_ = obs::Tracer(std::move(ring), label, bundle_->version);
  scheduler_.set_tracer(&tracer_);
  metrics_ =
      options.metrics ? options.metrics : std::make_shared<obs::Registry>();
  metric_prefix_ = "gen." + label + ".";
  bind_metrics();
}

void GenerationServer::bind_metrics() {
  const std::string& p = metric_prefix_;
  m_steps_ = &metrics_->counter(p + "steps");
  m_submitted_ = &metrics_->counter(p + "requests_submitted");
  m_completed_ = &metrics_->counter(p + "requests_completed");
  m_tokens_ = &metrics_->counter(p + "tokens_streamed");
  m_admitted_ = &metrics_->counter(p + "admitted");
  m_preempted_ = &metrics_->counter(p + "preemptions");
  m_resumed_ = &metrics_->counter(p + "resumes");
  m_evicted_ = &metrics_->counter(p + "evictions");
  m_replayed_ = &metrics_->counter(p + "replayed_tokens");
  m_prefilled_ = &metrics_->counter(p + "prefill_tokens");
  m_prefill_chunks_ = &metrics_->counter(p + "prefill_chunks");
  m_radix_hits_ = &metrics_->counter(p + "radix_hits");
  m_radix_hit_rows_ = &metrics_->counter(p + "radix_hit_rows");
  m_radix_evictions_ = &metrics_->counter(p + "radix_evictions");
  g_radix_cached_blocks_ = &metrics_->gauge(p + "radix_cached_blocks");
  g_radix_evictable_blocks_ = &metrics_->gauge(p + "radix_evictable_blocks");
  g_active_ = &metrics_->gauge(p + "active_sequences");
  g_kv_bytes_ = &metrics_->gauge(p + "kv_bytes_in_use");
  g_device_bytes_ = &metrics_->gauge(p + "kv_device_bytes");
  g_kv_free_blocks_ = &metrics_->gauge(p + "kv_free_blocks");
  g_kv_charged_bytes_ = &metrics_->gauge(p + "kv_charged_bytes");
  if (pool_.arena_kind() == KvArenaKind::kTlsf) {
    // Arena health for TLSF-backed pools, prefixed by engine label so
    // co-hosted models' arenas (and replicas) stay distinguishable in a
    // shared registry. The label is whatever identity the metric prefix
    // carries ("gen.<label>.").
    const std::string t =
        "mem.tlsf." + p.substr(4, p.size() - 5) + ".";
    g_tlsf_live_bytes_ = &metrics_->gauge(t + "live_bytes");
    g_tlsf_resident_bytes_ = &metrics_->gauge(t + "resident_bytes");
    g_tlsf_splits_ = &metrics_->gauge(t + "splits");
    g_tlsf_coalesces_ = &metrics_->gauge(t + "coalesces");
    g_tlsf_failed_allocs_ = &metrics_->gauge(t + "failed_allocs");
  }
  h_step_ms_ = &metrics_->histogram(p + "step_ms");
  h_batch_ = &metrics_->histogram(p + "batch_size");
  h_latency_ms_ = &metrics_->histogram(p + "request_latency_ms");
}

double GenerationServer::now_s() const {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       epoch_)
      .count();
}

void GenerationServer::validate(
    const serving::GenerationRequest& request) const {
  // Model-bound checks the scheduler cannot see: an out-of-vocab token
  // would otherwise TT_CHECK deep inside the encoder/decoder on the worker
  // thread and take the whole async server down with it.
  TT_CHECK_GE(request.bos_id, 0);
  TT_CHECK_LT(request.bos_id, config_.vocab);
  TT_CHECK_GE(request.eos_id, 0);
  TT_CHECK_LT(request.eos_id, config_.vocab);
  for (const int tok : request.src_tokens) {
    TT_CHECK_MSG(tok >= 0 && tok < config_.vocab,
                 "generation request " << request.id
                                       << " has out-of-vocab token " << tok);
  }
  scheduler_.validate(request);
}

void GenerationServer::submit(serving::GenerationRequest request,
                              serving::TokenCallback on_token) {
  validate(request);
  TT_CHECK_MSG(callbacks_.find(request.id) == callbacks_.end(),
               "duplicate in-flight generation request id " << request.id);
  m_submitted_->add(1);
  if (tracer_.enabled()) arrivals_[request.id] = obs::now_ticks();
  callbacks_[request.id] = std::move(on_token);
  scheduler_.enqueue(std::move(request));
}

int GenerationServer::step() {
  const bool tracing = tracer_.enabled();
  if (tracing) tracer_.set_iteration(iteration_ + 1);
  const double now = now_s();
  const size_t admitted_before = scheduler_.total_admitted();
  const size_t preempted_before = scheduler_.total_preempted();
  const size_t resumed_before = scheduler_.total_resumed();
  const size_t evicted_before = scheduler_.total_evicted();
  const size_t radix_hits_before = pool_.radix_hits();
  const size_t radix_hit_rows_before = pool_.radix_hit_rows();
  const size_t radix_evictions_before = pool_.radix_evictions();

  // Iteration-level batch formation: newly admitted sequences run the
  // encoder as one zero-padded variable-length batch (the §4.2 allocator +
  // masking path) and get their cross-attention K/V projected into pool
  // blocks once. Sequences whose prompt matched a resident share skip the
  // encoder entirely — their cross blocks are (or are being) filled by the
  // share's creator, the prefix-sharing fast path. Resumed (previously
  // preempted) sequences rejoin here too; their cross blocks are still
  // resident unless the share was evicted, in which case they re-encode
  // like a cold admit.
  const uint64_t t_admit0 = tracing ? obs::now_ticks() : 0;
  const std::vector<ActiveSequence*> admitted = scheduler_.admit(now);
  if (tracing) {
    const uint64_t t_admit1 = obs::now_ticks();
    tracer_.span(obs::SpanKind::kAdmit, t_admit0, t_admit1, /*seq=*/-1,
                 static_cast<int32_t>(admitted.size()));
    // Per-sequence admit spans cover arrival -> admitted (the queue wait
    // the offline queueing pass decomposes); only first admissions carry
    // one — resumes already have their resume span.
    for (const ActiveSequence* seq : admitted) {
      const auto it = arrivals_.find(seq->request.id);
      if (it != arrivals_.end()) {
        tracer_.span(obs::SpanKind::kAdmit, it->second, t_admit1,
                     seq->request.id);
        arrivals_.erase(it);
      }
    }
  }
  std::vector<ActiveSequence*> to_encode;
  // First admits that owe the encoder a pass this iteration, counted
  // before prepare_step can preempt one of them (which would bump its
  // preempt_count and make it indistinguishable from a resume later).
  // Causal sequences never encode (empty share, born ready); the sharing
  // count for them is first admits that adopted a radix prefix.
  int fresh_encoded = 0;
  int radix_admits = 0;
  int prefilled_now = 0;  // prompt tokens prefilled this step (encoder
                          // source rows + causal prompt-feeding rows)
  for (ActiveSequence* seq : admitted) {
    if (causal_) {
      if (seq->preempt_count == 0 && seq->kv->prefix_rows() > 0) {
        ++radix_admits;
      }
      continue;
    }
    if (seq->kv->needs_cross_init()) {
      if (seq->preempt_count == 0) ++fresh_encoded;
      // Quantum mode defers the encode: the scheduler charges it against
      // a step's token budget and hands it back in StepPlan::encode.
      if (!quantum_on_) to_encode.push_back(seq);
    }
  }
  if (!to_encode.empty()) {
    const uint64_t t_enc0 = tracing ? obs::now_ticks() : 0;
    const int nb_enc = static_cast<int>(to_encode.size());
    int max_src = 0;
    std::vector<int> valid_lens(static_cast<size_t>(nb_enc));
    for (int b = 0; b < nb_enc; ++b) {
      const int len = static_cast<int>(
          to_encode[static_cast<size_t>(b)]->request.src_tokens.size());
      valid_lens[static_cast<size_t>(b)] = len;
      max_src = std::max(max_src, len);
    }
    Tensor ids = Tensor::zeros(Shape{nb_enc, max_src}, DType::kI32);
    for (int b = 0; b < nb_enc; ++b) {
      const auto& src = to_encode[static_cast<size_t>(b)]->request.src_tokens;
      std::copy(src.begin(), src.end(),
                ids.data<int32_t>() + static_cast<long>(b) * max_src);
    }
    Tensor memory =
        bundle_->encoder->forward(ids, &valid_lens);  // [nb, max_src, H]
    for (int b = 0; b < nb_enc; ++b) {
      ActiveSequence* seq = to_encode[static_cast<size_t>(b)];
      Tensor view = Tensor::view(
          memory.data<float>() +
              static_cast<long>(b) * max_src * config_.hidden,
          Shape{valid_lens[static_cast<size_t>(b)], config_.hidden});
      bundle_->decoder->init_cross_attention(view, *seq->kv);
      seq->kv->mark_cross_ready();
      prefilled_now += valid_lens[static_cast<size_t>(b)];
    }
    if (tracing) {
      int prefill_tokens = 0;
      for (const int len : valid_lens) prefill_tokens += len;
      tracer_.span(obs::SpanKind::kEncodePrefill, t_enc0, obs::now_ticks(),
                   /*seq=*/-1, nb_enc, prefill_tokens);
    }
  }

  // Growth phase: back the self rows every scheduled sequence will write.
  // Under optimistic admission this is where pool exhaustion surfaces and
  // the scheduler preempts — only the survivors step. In quantum mode the
  // plan is a mixed batch: decode rows plus prefill/replay chunk rows,
  // plus deferred whole-prompt encode jobs, together priced under the
  // step token quantum.
  const uint64_t t_sched0 = tracing ? obs::now_ticks() : 0;
  const GenerationScheduler::StepPlan plan = scheduler_.prepare_step();
  if (tracing) {
    tracer_.span(obs::SpanKind::kSchedule, t_sched0, obs::now_ticks(),
                 /*seq=*/-1, static_cast<int32_t>(plan.stepping.size()));
  }
  if (plan.empty()) return 0;
  const int nb_seqs = static_cast<int>(plan.stepping.size());

  // Deferred encode jobs (quantum mode): one encoder forward per sequence
  // — exactly the source length, zero padding — then the cross K/V
  // projection into the share's pool blocks. Decode rows of this sequence
  // start next step at the earliest (the scheduler never mixes a
  // sequence's encode and decode in one plan).
  for (ActiveSequence* seq : plan.encode) {
    const uint64_t t_enc0 = tracing ? obs::now_ticks() : 0;
    const auto& src = seq->request.src_tokens;
    const int len = static_cast<int>(src.size());
    Tensor ids = Tensor::zeros(Shape{1, len}, DType::kI32);
    std::copy(src.begin(), src.end(), ids.data<int32_t>());
    std::vector<int> valid_lens{len};
    Tensor memory = bundle_->encoder->forward(ids, &valid_lens);
    Tensor view =
        Tensor::view(memory.data<float>(), Shape{len, config_.hidden});
    bundle_->decoder->init_cross_attention(view, *seq->kv);
    seq->kv->mark_cross_ready();
    prefilled_now += len;
    if (tracing) {
      tracer_.span(obs::SpanKind::kEncodePrefill, t_enc0, obs::now_ticks(),
                   seq->request.id, /*batch=*/1, len);
    }
  }

  // One fused decode step over every surviving sequence: one StepSlot per
  // scheduled row. A chunked sequence contributes step_tokens consecutive
  // rows at ascending positions; every fed token is already known (prompt
  // tokens mid-prefill, parked tokens mid-replay, the sampled last token
  // on the frontier row), and the slot order within the batch matches the
  // per-token path's row order, so the fused chunk is bit-identical to
  // feeding the rows one step at a time. Rows whose logits nobody reads
  // (causal prompt rows short of the frontier) skip the vocabulary
  // projection via need_logits.
  std::vector<model::Seq2SeqDecoder::StepSlot> slots;
  slots.reserve(static_cast<size_t>(
      std::max(plan.quantum_charged, nb_seqs)));
  int max_ctx_now = 1;
  int chunked_now = 0;
  for (ActiveSequence* sp : plan.stepping) {
    const ActiveSequence& seq = *sp;
    const auto& src = seq.request.src_tokens;
    const int src_len = static_cast<int>(src.size());
    const int prompt_len = causal_ ? src_len : 0;
    if (seq.step_tokens > 1) {
      ++chunked_now;
      if (tracing) {
        tracer_.instant(obs::SpanKind::kPrefillChunk, seq.request.id,
                        seq.step_tokens);
      }
    }
    for (int i = 0; i < seq.step_tokens; ++i) {
      const int p = seq.step + i;
      model::Seq2SeqDecoder::StepSlot slot;
      if (causal_) {
        slot.prev_token = p < prompt_len
                              ? src[static_cast<size_t>(p)]
                              : seq.tokens[static_cast<size_t>(p - prompt_len)];
      } else {
        slot.prev_token = p == 0 ? seq.request.bos_id
                                 : seq.tokens[static_cast<size_t>(p - 1)];
      }
      slot.step = p;
      slot.cache = seq.kv.get();
      // Causal rows still inside the prompt predict a position whose
      // token is already known — their logits are never read.
      slot.need_logits = (causal_ ? p + 1 - prompt_len : p) >= 0;
      slots.push_back(slot);
      // Causal context is the self rows alone (the prompt lives in them);
      // seq2seq attends source + generated.
      max_ctx_now =
          std::max(max_ctx_now, causal_ ? p + 1 : src_len + p + 1);
    }
  }
  const int nb_rows = static_cast<int>(slots.size());
  const int vocab = config_.vocab;
  double step_ms = 0.0;
  if (nb_rows > 0) {
    logits_.resize(static_cast<size_t>(nb_rows) * vocab);
    const auto step_t0 = std::chrono::steady_clock::now();
    bundle_->decoder->step(slots, logits_.data(), workspace_);
    const auto step_t1 = std::chrono::steady_clock::now();
    step_ms =
        std::chrono::duration<double, std::milli>(step_t1 - step_t0).count();
    if (tracing) {
      // The decode span reuses the cost-observation timestamps — no extra
      // clock reads bracket the fused step.
      tracer_.span(obs::SpanKind::kDecodeStep, to_ticks(step_t0),
                   to_ticks(step_t1), /*seq=*/-1, nb_rows, /*tokens=*/nb_rows);
    }
    // Lazy-evaluation feedback (§6.3): the admission gate and the
    // cheapest-recompute victim policy predict from this table, so feed it
    // what the step actually cost at the batch's real context length. A
    // batch wider than the table's grid is dropped — folding an 8-wide
    // latency into the widest cell would inflate its EMA forever.
    if (observe_costs_ && step_ms > 0.0 && nb_rows <= costs_.max_batch()) {
      costs_.observe(max_ctx_now, nb_rows, step_ms, observe_alpha_);
    }
  }

  // Greedy expansion + streaming, row by row in slot order. Replayed
  // positions (emit_idx < replay after a resume) re-derive parked tokens:
  // the argmax is asserted identical to the parked token and is NOT
  // streamed again — clients already saw it — so the stream stays gapless
  // and duplicate-free across preemptions. Causal prompt rows short of
  // the frontier discard their (never-projected) prediction; a chunk that
  // does not reach the frontier samples nothing this step. At most the
  // final row of a sequence's chunk can stream — chunks never extend past
  // the known-token frontier.
  const uint64_t t_stream0 = tracing ? obs::now_ticks() : 0;
  int finished_now = 0;
  int replayed_now = 0;
  int streamed_now = 0;
  size_t si = 0;
  for (ActiveSequence* sp : plan.stepping) {
    ActiveSequence& seq = *sp;
    const int rows = seq.step_tokens;
    for (int i = 0; i < rows; ++i, ++si) {
      const int step_idx = slots[si].step;
      TT_CHECK_EQ(step_idx, seq.step);
      ++seq.step;
      // Causal prefill: feeding prompt row step_idx produces logits for
      // position step_idx + 1; while that position is still inside the
      // prompt the prediction is discarded and the real prompt token is
      // fed next — nothing streams. emit_idx is the generated-token index
      // this row produced (seq2seq prefills through the encoder, so there
      // the row index is already it).
      const int prompt_len =
          causal_ ? static_cast<int>(seq.request.src_tokens.size()) : 0;
      const int emit_idx = causal_ ? step_idx + 1 - prompt_len : step_idx;
      if (emit_idx < 0) {
        seq.last_token =
            seq.request.src_tokens[static_cast<size_t>(step_idx) + 1];
        ++prefilled_now;
        continue;
      }
      const float* row = logits_.data() + si * static_cast<size_t>(vocab);
      const int token =
          static_cast<int>(std::max_element(row, row + vocab) - row);
      if (emit_idx < seq.replay) {
        TT_CHECK_MSG(token == seq.tokens[static_cast<size_t>(emit_idx)],
                     "preemption replay diverged for request "
                         << seq.request.id << " at step " << step_idx << ": "
                         << token << " != "
                         << seq.tokens[static_cast<size_t>(emit_idx)]);
        seq.last_token = token;
        ++replayed_now;
        continue;
      }
      // Frontier row: the one freshly sampled token this sequence gets
      // this step (necessarily its last scheduled row).
      TT_CHECK_EQ(i, rows - 1);
      ++streamed_now;
      if (token == seq.request.eos_id) {
        seq.finished = true;
      } else {
        seq.tokens.push_back(token);
        seq.last_token = token;
        if (static_cast<int>(seq.tokens.size()) >=
            seq.request.max_new_tokens) {
          seq.finished = true;
          seq.hit_max_len = true;
        }
      }
      if (seq.finished) ++finished_now;
      if (tracing && emit_idx == 0) {
        // First streamed token of the sequence (replayed and prefill
        // positions never get here, so this fires exactly once per
        // request): the queueing pass anchors time-to-first-token on it.
        tracer_.instant(obs::SpanKind::kStream, seq.request.id);
      }
      const auto cb = callbacks_.find(seq.request.id);
      if (cb != callbacks_.end() && cb->second) {
        cb->second(seq.request.id, token, step_idx, seq.finished);
      }
    }
  }
  TT_CHECK_EQ(si, slots.size());

  // Retire: KV blocks return to the pool before the next admit round.
  std::vector<std::unique_ptr<ActiveSequence>> retired =
      scheduler_.retire_finished();
  const double done = now_s();
  for (auto& seq : retired) {
    serving::GenerationResponse resp;
    resp.request_id = seq->request.id;
    resp.tokens = std::move(seq->tokens);
    resp.steps = seq->step;
    resp.src_len = static_cast<int>(seq->request.src_tokens.size());
    resp.hit_max_len = seq->hit_max_len;
    resp.latency_ms = (done - seq->admit_s) * 1000.0;
    h_latency_ms_->record(resp.latency_ms);
    callbacks_.erase(resp.request_id);
    arrivals_.erase(resp.request_id);
    completed_.push_back(std::move(resp));
  }
  if (tracing) {
    tracer_.span(obs::SpanKind::kStream, t_stream0, obs::now_ticks(),
                 /*seq=*/-1, nb_rows, streamed_now);
    const size_t radix_evicted_now =
        pool_.radix_evictions() - radix_evictions_before;
    if (radix_evicted_now > 0) {
      tracer_.instant(obs::SpanKind::kRadixEvict, /*seq=*/-1,
                      static_cast<int32_t>(radix_evicted_now));
    }
  }

  ++iteration_;
  m_steps_->add(1);
  m_admitted_->add(scheduler_.total_admitted() - admitted_before);
  m_preempted_->add(scheduler_.total_preempted() - preempted_before);
  m_resumed_->add(scheduler_.total_resumed() - resumed_before);
  m_evicted_->add(scheduler_.total_evicted() - evicted_before);
  m_replayed_->add(static_cast<uint64_t>(replayed_now));
  m_prefilled_->add(static_cast<uint64_t>(prefilled_now));
  m_prefill_chunks_->add(static_cast<uint64_t>(chunked_now));
  m_tokens_->add(static_cast<uint64_t>(streamed_now));
  m_completed_->add(retired.size());
  m_radix_hits_->add(pool_.radix_hits() - radix_hits_before);
  m_radix_hit_rows_->add(pool_.radix_hit_rows() - radix_hit_rows_before);
  m_radix_evictions_->add(pool_.radix_evictions() - radix_evictions_before);
  g_radix_cached_blocks_->set(
      static_cast<double>(pool_.radix_cached_blocks()));
  g_radix_evictable_blocks_->set(
      static_cast<double>(pool_.radix_evictable_blocks()));
  if (nb_rows > 0) {
    h_step_ms_->record(step_ms);
    h_batch_->record(static_cast<double>(nb_rows));
  }
  g_active_->set(static_cast<double>(pool_.active_sequences()));
  g_kv_bytes_->set(static_cast<double>(pool_.bytes_in_use()));
  g_device_bytes_->set(
      static_cast<double>(pool_.stats().current_device_bytes));
  g_kv_free_blocks_->set(static_cast<double>(pool_free_blocks(pool_)));
  g_kv_charged_bytes_->set(
      static_cast<double>(pool_.charged_blocks() * pool_.block_bytes()));
  if (g_tlsf_live_bytes_ != nullptr) {
    const memory::TlsfArenaStats ts = *pool_.tlsf_stats();
    g_tlsf_live_bytes_->set(static_cast<double>(ts.live_bytes));
    g_tlsf_resident_bytes_->set(static_cast<double>(ts.resident_bytes));
    g_tlsf_splits_->set(static_cast<double>(ts.splits));
    g_tlsf_coalesces_->set(static_cast<double>(ts.coalesces));
    g_tlsf_failed_allocs_->set(static_cast<double>(ts.failed_allocs));
  }
  if (observer_) {
    StepStats stats;
    stats.iteration = iteration_;
    stats.active = nb_seqs;
    stats.step_rows = nb_rows;
    stats.admitted =
        static_cast<int>(scheduler_.total_admitted() - admitted_before);
    // First admits that skipped work via sharing: a prompt match for
    // seq2seq (encoder skipped), a radix prefix hit for causal (prompt
    // rows adopted). Resumed sequences are excluded from both counts.
    stats.admitted_shared =
        causal_ ? radix_admits : stats.admitted - fresh_encoded;
    stats.retired = static_cast<int>(retired.size());
    stats.preempted =
        static_cast<int>(scheduler_.total_preempted() - preempted_before);
    stats.resumed =
        static_cast<int>(scheduler_.total_resumed() - resumed_before);
    stats.evicted =
        static_cast<int>(scheduler_.total_evicted() - evicted_before);
    stats.replayed = replayed_now;
    stats.prefilled = prefilled_now;
    stats.prefill_chunks = chunked_now;
    stats.quantum_charged = plan.quantum_charged;
    stats.quantum_overflow = plan.quantum_overflow;
    stats.kv_bytes_in_use = pool_.bytes_in_use();
    stats.kv_device_bytes = pool_.stats().current_device_bytes;
    stats.kv_blocks_in_use = pool_.blocks_in_use();
    stats.kv_blocks_reserved = pool_.blocks_reserved();
    observer_(stats);
  }
  return nb_seqs + static_cast<int>(plan.encode.size());
}

std::vector<serving::GenerationResponse> GenerationServer::take_completed() {
  return std::exchange(completed_, {});
}

PoolSnapshot GenerationServer::pool_snapshot() const {
  PoolSnapshot s;
  s.bytes_in_use = pool_.bytes_in_use();
  s.device_bytes = pool_.stats().current_device_bytes;
  s.peak_device_bytes = pool_.stats().peak_device_bytes;
  if (const auto ts = pool_.tlsf_stats()) {
    s.peak_live_bytes = ts->peak_live_bytes;
    s.peak_resident_bytes = ts->peak_resident_bytes;
  } else {
    s.peak_live_bytes = pool_.peak_blocks_in_use() * pool_.block_bytes();
    s.peak_resident_bytes = pool_.stats().peak_device_bytes;
  }
  s.peak_waste_bytes = pool_.peak_waste_bytes();
  s.free_blocks = pool_free_blocks(pool_);
  s.charged_bytes = pool_.charged_blocks() * pool_.block_bytes();
  s.active_sequences = pool_.active_sequences();
  s.preemptions = scheduler_.total_preempted();
  s.resumes = scheduler_.total_resumed();
  s.evictions = scheduler_.total_evicted();
  return s;
}

std::vector<serving::GenerationResponse> GenerationServer::run_to_completion() {
  while (!idle()) step();
  return take_completed();
}

// ---------------------------------------------------------------------------
// AsyncGenerationServer
// ---------------------------------------------------------------------------

AsyncGenerationServer::AsyncGenerationServer(
    std::unique_ptr<GenerationServer> server)
    : server_(std::move(server)) {
  TT_CHECK(server_ != nullptr);
  worker_ = std::thread([this] { worker_loop(); });
}

AsyncGenerationServer::~AsyncGenerationServer() { shutdown(); }

std::future<serving::GenerationResponse> AsyncGenerationServer::submit(
    serving::GenerationRequest request, serving::TokenCallback on_token) {
  // Validate on the client thread: a malformed request must throw here,
  // not on the worker (where it could take the whole process down).
  server_->validate(request);
  std::future<serving::GenerationResponse> future;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    TT_CHECK_MSG(!shutdown_, "submit after shutdown");
    TT_CHECK_MSG(ids_in_flight_.insert(request.id).second,
                 "duplicate in-flight generation request id " << request.id);
    Submission s;
    s.request = std::move(request);
    s.on_token = std::move(on_token);
    future = s.promise.get_future();
    incoming_.push_back(std::move(s));
  }
  cv_.notify_one();
  return future;
}

void AsyncGenerationServer::shutdown() {
  std::lock_guard<std::mutex> join_lock(join_mutex_);
  {
    std::lock_guard<std::mutex> lock(mutex_);
    shutdown_ = true;
  }
  cv_.notify_all();
  if (worker_.joinable()) worker_.join();
}

size_t AsyncGenerationServer::served() const {
  // Registry-backed (no cached copy): the registry is lock-free to read
  // and — when shared — outlives this shell, so the totals survive a
  // worker teardown instead of resetting with it.
  return server_->completed_total();
}

int64_t AsyncGenerationServer::iterations() const {
  return static_cast<int64_t>(server_->metrics()->counter_value(
      server_->metric_prefix() + "steps"));
}

PoolSnapshot AsyncGenerationServer::pool_snapshot() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return pool_snapshot_;
}

void AsyncGenerationServer::worker_loop() {
  for (;;) {
    std::vector<Submission> newly;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      if (incoming_.empty() && server_->idle()) {
        cv_.wait(lock, [this] { return shutdown_ || !incoming_.empty(); });
        if (incoming_.empty() && shutdown_) return;
      }
      newly = std::exchange(incoming_, {});
    }

    // A failure inside the engine (scheduler/pool invariant, model error)
    // must not escape the worker thread — that would std::terminate the
    // process. Surface it to every waiting client instead.
    std::vector<serving::GenerationResponse> done;
    try {
      for (Submission& s : newly) {
        in_flight_[s.request.id] = std::move(s.promise);
        server_->submit(std::move(s.request), std::move(s.on_token));
      }
      // One scheduler iteration; completed sequences resolve their futures.
      server_->step();
      done = server_->take_completed();
    } catch (...) {
      std::vector<Submission> orphaned;
      {
        std::lock_guard<std::mutex> lock(mutex_);
        shutdown_ = true;
        orphaned = std::exchange(incoming_, {});
        for (auto& [id, promise] : in_flight_) {
          promise.set_exception(std::current_exception());
          ids_in_flight_.erase(id);
        }
        in_flight_.clear();
        for (const auto& s : orphaned) ids_in_flight_.erase(s.request.id);
      }
      // Submissions that raced into the queue must fail too, or their
      // clients' future.get() would block forever.
      for (auto& s : orphaned) {
        s.promise.set_exception(std::current_exception());
      }
      return;
    }
    {
      std::lock_guard<std::mutex> lock(mutex_);
      pool_snapshot_ = server_->pool_snapshot();
      for (const auto& resp : done) ids_in_flight_.erase(resp.request_id);
    }
    for (auto& resp : done) {
      const auto it = in_flight_.find(resp.request_id);
      TT_CHECK(it != in_flight_.end());
      std::promise<serving::GenerationResponse> promise =
          std::move(it->second);
      in_flight_.erase(it);
      promise.set_value(std::move(resp));
    }
  }
}

}  // namespace turbo::genserve
