// Generation serving front ends.
//
// GenerationServer is the synchronous engine: it owns the encoder (source
// sentences run through the §4.2 model-aware allocator as usual), the
// step-batched Seq2SeqDecoder, the KvCachePool and the iteration-level
// GenerationScheduler. Each step() call is one scheduler iteration: admit,
// one fused decode step over every active sequence (greedy, one token
// each), stream tokens to per-request callbacks, retire finished
// sequences.
//
// AsyncGenerationServer is the concurrent shell, mirroring
// serving::AsyncServer: clients submit() generation requests and receive
// futures; a worker thread runs the step loop, streaming per-token
// callbacks from the serving thread and fulfilling each future when its
// sequence retires.
#pragma once

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <optional>
#include <thread>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "genserve/generation_scheduler.h"
#include "genserve/kv_cache_pool.h"
#include "genserve/model_bundle.h"
#include "model/decoder.h"
#include "model/encoder.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "serving/cost_table.h"
#include "serving/request.h"

namespace turbo::genserve {

struct GenServerOptions {
  KvPoolOptions pool;
  GenSchedulerOptions scheduler;
  // Admission cost dictionary; when unset, a coarse analytic warm-up is
  // built (benchmarks pass a profiled table instead).
  std::optional<serving::CostTable> cost_table;
  // Fold each fused step's measured latency back into the cost table
  // (CostTable::observe, §6.3 lazy evaluation): the analytic warm-up is
  // only the starting point, admission and victim-choice predictions
  // converge to real costs as the server runs.
  bool observe_step_costs = true;
  double cost_observe_alpha = 0.25;
  // Step-level tracing (obs/trace.h). Off by default: the step loop then
  // reads no clock and takes one never-true branch per recording site.
  // Enabled, each step emits one span per phase plus per-sequence
  // lifecycle events into the ring (private, or shared via trace.ring).
  obs::TraceConfig trace;
  // Metrics registry the engine publishes into (obs/metrics.h). When null
  // the engine creates a private one; the multi-model server and the async
  // shells pass a shared registry so counters survive engine teardown
  // (draining a model no longer zeroes its totals).
  std::shared_ptr<obs::Registry> metrics;
  // Identity this engine publishes under — the metric prefix becomes
  // "gen.<instance_label>." and trace spans carry it as their model label.
  // Empty (default) = the bundle's label ("name:vN"). Replica serving
  // (router::ReplicaSet) sets "name:vN#r" on replicas r >= 1 so co-hosted
  // replicas of one bundle keep distinguishable counters/gauges in the
  // shared registry; replica 0 keeps the plain label, preserving the
  // single-engine metric names bit-for-bit.
  std::string instance_label;
};

// Per-iteration snapshot handed to the step observer (benchmark hook for
// the Fig. 11-style footprint-vs-working-set trace).
struct StepStats {
  int64_t iteration = 0;
  int active = 0;                   // sequences in this fused step
  int step_rows = 0;                // decoder rows in this fused step (==
                                    // active in legacy mode; more while
                                    // prefill/replay chunks are scheduled)
  int admitted = 0;                 // joined this iteration (first admits)
  int admitted_shared = 0;          // of those, joined via a prompt match
                                    // (cross blocks shared, encoder skipped;
                                    // causal: adopted a radix prefix)
  int retired = 0;                  // finished this iteration
  int preempted = 0;                // victims parked this iteration
  int resumed = 0;                  // requeued sequences re-admitted
  int evicted = 0;                  // parked cross shares dropped
  int replayed = 0;                 // decoder rows re-deriving parked tokens
  int prefilled = 0;                // prompt TOKENS prefilled this step:
                                    // causal rows still feeding the prompt
                                    // (nothing streamed) plus seq2seq source
                                    // tokens run through the encoder —
                                    // comparable across the chunked and
                                    // per-token paths
  int prefill_chunks = 0;           // sequences that ran a multi-row
                                    // prefill/replay chunk this step
  int quantum_charged = 0;          // token rows charged against the step
                                    // quantum (StepPlan::quantum_charged)
  bool quantum_overflow = false;    // a whole-prompt encode overran the
                                    // budget to keep the step non-empty
  size_t kv_bytes_in_use = 0;       // live sequences' blocks
  size_t kv_device_bytes = 0;       // slab footprint (device reservation)
  size_t kv_blocks_in_use = 0;      // unique live blocks
  size_t kv_blocks_reserved = 0;    // worst-case reservations (can exceed
                                    // capacity under optimistic admission)
};

// Snapshot of pool pressure plus preemption activity, assembled by
// GenerationServer::pool_snapshot(); safe for the async shells to cache
// and serve while the worker runs.
struct PoolSnapshot {
  size_t bytes_in_use = 0;
  size_t device_bytes = 0;
  size_t peak_device_bytes = 0;
  // Fragmentation pair: peak bytes in unique live blocks vs peak bytes the
  // device must back to hold them (slab footprint under kSlab, arena
  // frontier under kTlsf). resident/live = 1.0 means zero overhead.
  size_t peak_live_bytes = 0;
  size_t peak_resident_bytes = 0;
  // Peak instantaneous resident-minus-live overshoot (time-correlated,
  // unlike the pair above whose separate peaks both saturate under load):
  // partial slabs + unswept empties under kSlab, frontier holes under
  // kTlsf. See KvCachePool::peak_waste_bytes().
  size_t peak_waste_bytes = 0;
  // Admission headroom, the router's KV-pressure signals: blocks the pool
  // could still charge right now (max_blocks - charged, saturating at 0 —
  // SIZE_MAX when unbounded) and the bytes currently charged against the
  // admission gate (charged blocks x block size; excludes the evictable
  // radix tier, which reclaims on demand).
  size_t free_blocks = 0;
  size_t charged_bytes = 0;
  int active_sequences = 0;
  // Preempt-and-requeue activity (optimistic admission).
  size_t preemptions = 0;
  size_t resumes = 0;
  size_t evictions = 0;
};

// Ownership: owns the whole sync engine — the model bundle is pinned by
// shared_ptr (private to this engine via the config constructor, or a
// registry-shared bundle via the bundle constructor); cost table, KV pool
// and scheduler construct and destruct together, so their borrow
// relationships (scheduler -> pool, scheduler -> costs) are safe by
// construction. Callbacks registered at submit() are owned until their
// sequence retires.
// Thread-safety: single-threaded by design. submit()/step()/
// run_to_completion()/take_completed() must all come from one thread
// (AsyncGenerationServer's worker, in the async stack). validate() reads
// only immutable configuration and pool geometry and may be called from
// any thread. Token callbacks run synchronously inside step().
// Invariants: one step() == one scheduler iteration — admit (resuming
// preempted sequences first), encode the cold-prompt admits as one batch,
// grow-or-preempt, one fused decode step over the surviving active set,
// stream, retire; a retired sequence's blocks are back in the pool before
// the next admit round; every submitted request produces exactly one
// GenerationResponse. Preemption is invisible to clients: a resumed
// sequence re-derives its parked tokens (asserted bit-identical) without
// re-streaming them, so the token stream has no gaps and no duplicates.
class GenerationServer {
 public:
  using StepObserver = std::function<void(const StepStats&)>;

  // Single-model construction: builds a private bundle from config + seed
  // (bit-identical to make_bundle(..., seed) routed through the bundle
  // constructor).
  explicit GenerationServer(model::ModelConfig config,
                            GenServerOptions options = {}, uint64_t seed = 42);
  // Serve a registered bundle. The engine pins it for its own lifetime —
  // the multi-model server's hot-unregistration path relies on exactly
  // this pin. When options carry no cost table, the bundle's (if any) is
  // copied in, so per-model profiled tables follow the bundle.
  explicit GenerationServer(std::shared_ptr<ModelBundle> bundle,
                            GenServerOptions options = {});

  // Throws CheckError if the request is malformed (empty source,
  // max_new_tokens < 1) or could never fit the KV pool. Thread-safe: reads
  // only immutable pool geometry. AsyncGenerationServer calls this on the
  // client thread so bad requests fail at submit, not on the worker.
  void validate(const serving::GenerationRequest& request) const;

  // Queue a request. `on_token` (optional) streams each generated token.
  void submit(serving::GenerationRequest request,
              serving::TokenCallback on_token = nullptr);

  // One scheduler iteration + one fused decode step. Returns the number of
  // sequences stepped (0 = server idle).
  int step();

  // Step until idle, then hand over everything completed so far.
  std::vector<serving::GenerationResponse> run_to_completion();
  // Completed responses accumulated since the last take (completion order).
  std::vector<serving::GenerationResponse> take_completed();

  bool idle() const { return scheduler_.idle(); }
  const KvCachePool& pool() const { return pool_; }
  const GenerationScheduler& scheduler() const { return scheduler_; }
  const std::shared_ptr<ModelBundle>& bundle() const { return bundle_; }
  // Current pool pressure + preemption totals, one assembly shared by the
  // async shell and the multi-model breakdown. Worker-thread only (reads
  // mutable pool state).
  PoolSnapshot pool_snapshot() const;
  // Cross-pool budget reclaim entry point (multi-model serving): preempt
  // this engine's lowest-ranked sequences until `bytes` of slab footprint
  // freed (see GenerationScheduler::shed). Worker-thread only.
  size_t shed_kv(size_t bytes) { return scheduler_.shed(bytes); }
  const serving::CostTable& cost_table() const { return costs_; }
  // The live admission dictionary (tests feed synthetic observe()
  // measurements through this; the step loop feeds real ones).
  serving::CostTable& mutable_cost_table() { return costs_; }
  int64_t iterations() const { return iteration_; }

  // The registry this engine publishes into (never null) and the name
  // prefix of its metrics ("gen.<name:vN>."). Registry reads are safe from
  // any thread.
  const std::shared_ptr<obs::Registry>& metrics() const { return metrics_; }
  const std::string& metric_prefix() const { return metric_prefix_; }
  // Lifetime totals, read back from the registry (the single home for
  // these counts — the async shell and the multi-model stats view read the
  // same numbers). Safe from any thread.
  size_t completed_total() const {
    return metrics_->counter_value(metric_prefix_ + "requests_completed");
  }
  // The trace ring (null when tracing is off) and a consistent snapshot of
  // its spans. Snapshot is safe concurrently with the step loop.
  const std::shared_ptr<obs::TraceRing>& trace_ring() const {
    return tracer_.ring();
  }
  std::vector<obs::TraceSpan> trace_spans() const {
    return tracer_.ring() ? tracer_.ring()->snapshot()
                          : std::vector<obs::TraceSpan>{};
  }

  void set_step_observer(StepObserver observer) {
    observer_ = std::move(observer);
  }

 private:
  double now_s() const;
  // Resolves the cached metric handles out of metrics_ (constructor tail).
  void bind_metrics();

  std::shared_ptr<ModelBundle> bundle_;  // pinned until the engine dies
  model::ModelConfig config_;            // copy of bundle_->config
  serving::CostTable costs_;
  KvCachePool pool_;
  GenerationScheduler scheduler_;
  bool causal_ = false;  // decoder-only bundle: causal-LM serving path
  // Token-quantum stepping (scheduler.step_token_quantum > 0): admits are
  // NOT encoded at admission — the scheduler schedules whole-prompt
  // encode jobs against the quantum, and the server runs each as its own
  // padding-free encoder forward.
  bool quantum_on_ = false;
  std::unordered_map<int64_t, serving::TokenCallback> callbacks_;
  std::vector<serving::GenerationResponse> completed_;
  std::vector<float> logits_;  // step scratch [max_active, vocab]
  model::DecodeWorkspace workspace_;  // reused across decode steps
  StepObserver observer_;
  bool observe_costs_ = true;
  double observe_alpha_ = 0.25;
  int64_t iteration_ = 0;
  std::chrono::steady_clock::time_point epoch_;

  // Observability. The tracer is disabled unless options.trace asked for a
  // ring; the registry always exists (a disabled registry would make every
  // publish site conditional for no win — relaxed counter adds are cheaper
  // than the branch is worth).
  obs::Tracer tracer_;
  std::shared_ptr<obs::Registry> metrics_;
  std::string metric_prefix_;  // "gen.<name:vN>."
  // Arrival ticks by request id while tracing (drained into the per-seq
  // admit span at first admission).
  std::unordered_map<int64_t, uint64_t> arrivals_;
  // Cached handles into metrics_ (hot path publishes without name lookups).
  obs::Counter* m_steps_ = nullptr;
  obs::Counter* m_submitted_ = nullptr;
  obs::Counter* m_completed_ = nullptr;
  obs::Counter* m_tokens_ = nullptr;
  obs::Counter* m_admitted_ = nullptr;
  obs::Counter* m_preempted_ = nullptr;
  obs::Counter* m_resumed_ = nullptr;
  obs::Counter* m_evicted_ = nullptr;
  obs::Counter* m_replayed_ = nullptr;
  obs::Counter* m_prefilled_ = nullptr;
  obs::Counter* m_prefill_chunks_ = nullptr;
  obs::Counter* m_radix_hits_ = nullptr;
  obs::Counter* m_radix_hit_rows_ = nullptr;
  obs::Counter* m_radix_evictions_ = nullptr;
  obs::Gauge* g_radix_cached_blocks_ = nullptr;
  obs::Gauge* g_radix_evictable_blocks_ = nullptr;
  obs::Gauge* g_active_ = nullptr;
  obs::Gauge* g_kv_bytes_ = nullptr;
  obs::Gauge* g_device_bytes_ = nullptr;
  // KV-pressure pair the replica router reads ("kv_free_blocks",
  // "kv_charged_bytes"): admission headroom in blocks and bytes charged
  // against the admission gate.
  obs::Gauge* g_kv_free_blocks_ = nullptr;
  obs::Gauge* g_kv_charged_bytes_ = nullptr;
  // TLSF arena gauges ("mem.tlsf.<label>.*"); bound only when the pool
  // runs under KvArenaKind::kTlsf, null (and never published) under kSlab.
  obs::Gauge* g_tlsf_live_bytes_ = nullptr;
  obs::Gauge* g_tlsf_resident_bytes_ = nullptr;
  obs::Gauge* g_tlsf_splits_ = nullptr;
  obs::Gauge* g_tlsf_coalesces_ = nullptr;
  obs::Gauge* g_tlsf_failed_allocs_ = nullptr;
  obs::Histogram* h_step_ms_ = nullptr;
  obs::Histogram* h_batch_ = nullptr;
  obs::Histogram* h_latency_ms_ = nullptr;
};

// Ownership: takes the engine by unique_ptr and owns it plus the worker
// thread; shutdown() (also run by the destructor) drains pending work and
// joins the worker.
// Thread-safety: submit(), served(), iterations(), pool_snapshot() and
// shutdown() are safe from any thread. The engine itself is touched only
// by the worker; request validation runs on the submitting thread so
// malformed requests throw at the call site. on_token callbacks fire on
// the worker thread — they must not call back into this server.
// Invariants: every accepted submit() resolves its future exactly once —
// with a response, or with the engine's exception if the engine fails
// (the failure also rejects queued submissions rather than wedging their
// clients). Duplicate in-flight ids and submits after shutdown throw.
class AsyncGenerationServer {
 public:
  explicit AsyncGenerationServer(std::unique_ptr<GenerationServer> server);
  ~AsyncGenerationServer();

  AsyncGenerationServer(const AsyncGenerationServer&) = delete;
  AsyncGenerationServer& operator=(const AsyncGenerationServer&) = delete;

  // Enqueue one generation request; the future resolves when the sequence
  // finishes. `on_token` streams tokens from the worker thread. Request
  // ids must be unique among in-flight requests. Throws CheckError after
  // shutdown().
  std::future<serving::GenerationResponse> submit(
      serving::GenerationRequest request,
      serving::TokenCallback on_token = nullptr);

  // Serve everything pending to completion, then stop the worker.
  // Idempotent; also called by the destructor.
  void shutdown();

  // Lifetime totals, read straight from the engine's metrics registry (no
  // cached copies to fall out of sync — and with a shared registry the
  // counts survive this shell, so a replacement server resumes them
  // instead of restarting from zero).
  size_t served() const;
  int64_t iterations() const;
  PoolSnapshot pool_snapshot() const;
  // The engine's registry; safe from any thread.
  const std::shared_ptr<obs::Registry>& metrics() const {
    return server_->metrics();
  }
  std::vector<obs::TraceSpan> trace_spans() const {
    return server_->trace_spans();
  }

 private:
  struct Submission {
    serving::GenerationRequest request;
    serving::TokenCallback on_token;
    std::promise<serving::GenerationResponse> promise;
  };

  void worker_loop();

  std::unique_ptr<GenerationServer> server_;
  std::mutex join_mutex_;  // serializes shutdown/join
  mutable std::mutex mutex_;
  std::condition_variable cv_;
  std::vector<Submission> incoming_;
  std::unordered_set<int64_t> ids_in_flight_;  // duplicate-id guard
  // Promises by request id; touched only by the worker after handoff.
  std::unordered_map<int64_t, std::promise<serving::GenerationResponse>>
      in_flight_;
  bool shutdown_ = false;
  PoolSnapshot pool_snapshot_;
  std::thread worker_;
};

}  // namespace turbo::genserve
