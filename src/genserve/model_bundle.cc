#include "genserve/model_bundle.h"

#include <utility>

#include "common/check.h"

namespace turbo::genserve {

std::shared_ptr<ModelBundle> make_bundle(std::string name, int version,
                                         const model::ModelConfig& config,
                                         uint64_t seed) {
  TT_CHECK_MSG(!name.empty(), "bundle needs a non-empty name");
  TT_CHECK_GE(version, 1);
  auto bundle = std::make_shared<ModelBundle>();
  bundle->name = std::move(name);
  bundle->version = version;
  bundle->config = config;
  if (!config.decoder_only) {
    bundle->encoder = std::make_shared<model::EncoderModel>(config, seed);
  }
  bundle->decoder = std::make_shared<model::Seq2SeqDecoder>(config, seed);
  return bundle;
}

std::shared_ptr<ModelBundle> make_decoder_only_bundle(
    std::string name, int version, model::ModelConfig config, uint64_t seed) {
  config.decoder_only = true;
  return make_bundle(std::move(name), version, config, seed);
}

}  // namespace turbo::genserve
