#include "tensor/tensor.h"

#include <cstring>
#include <sstream>

namespace turbo {

std::string Shape::str() const {
  std::ostringstream os;
  os << "[";
  for (size_t i = 0; i < dims_.size(); ++i) {
    if (i) os << ", ";
    os << dims_[i];
  }
  os << "]";
  return os.str();
}

Tensor Tensor::owned(Shape shape, DType dtype) {
  Tensor t;
  t.shape_ = std::move(shape);
  t.dtype_ = dtype;
  t.storage_ = std::make_shared<AlignedBuffer>(
      static_cast<size_t>(t.shape_.numel()) * dtype_size(dtype));
  t.data_ = t.storage_->data();
  return t;
}

Tensor Tensor::zeros(Shape shape, DType dtype) {
  Tensor t = owned(std::move(shape), dtype);
  t.zero();
  return t;
}

Tensor Tensor::view(void* data, Shape shape, DType dtype) {
  TT_CHECK(data != nullptr || shape.numel() == 0);
  Tensor t;
  t.shape_ = std::move(shape);
  t.dtype_ = dtype;
  t.data_ = data;
  return t;
}

void Tensor::zero() {
  if (data_ != nullptr) std::memset(data_, 0, bytes());
}

size_t Tensor::flat_index(std::initializer_list<int64_t> idx) const {
  TT_CHECK_EQ(static_cast<int>(idx.size()), shape_.ndim());
  size_t flat = 0;
  int d = 0;
  for (int64_t i : idx) {
    TT_CHECK_GE(i, 0);
    TT_CHECK_LT(i, shape_.dim(d));
    flat = flat * static_cast<size_t>(shape_.dim(d)) + static_cast<size_t>(i);
    ++d;
  }
  return flat;
}

float& Tensor::at(std::initializer_list<int64_t> idx) {
  TT_CHECK(dtype_ == DType::kF32);
  return static_cast<float*>(data_)[flat_index(idx)];
}

float Tensor::at(std::initializer_list<int64_t> idx) const {
  TT_CHECK(dtype_ == DType::kF32);
  return static_cast<const float*>(data_)[flat_index(idx)];
}

}  // namespace turbo
