// Dense row-major tensors.
//
// A Tensor is a shape plus a pointer. It either owns its storage (weights,
// inputs) or is a view into allocator-managed memory (intermediate
// activations placed by src/memory). Only the dtypes the runtime needs are
// supported: f32 activations/weights and i32 token ids.
#pragma once

#include <cstdint>
#include <initializer_list>
#include <memory>
#include <numeric>
#include <string>
#include <vector>

#include "common/aligned_buffer.h"
#include "common/check.h"

namespace turbo {

enum class DType { kF32, kI32 };

inline size_t dtype_size(DType t) {
  return t == DType::kF32 ? sizeof(float) : sizeof(int32_t);
}

class Shape {
 public:
  Shape() = default;
  Shape(std::initializer_list<int64_t> dims) : dims_(dims) { check(); }
  explicit Shape(std::vector<int64_t> dims) : dims_(std::move(dims)) {
    check();
  }

  int ndim() const { return static_cast<int>(dims_.size()); }
  int64_t dim(int i) const {
    TT_CHECK_GE(i, 0);
    TT_CHECK_LT(i, ndim());
    return dims_[static_cast<size_t>(i)];
  }
  int64_t operator[](int i) const { return dim(i); }
  const std::vector<int64_t>& dims() const { return dims_; }

  int64_t numel() const {
    int64_t n = 1;
    for (auto d : dims_) n *= d;
    return n;
  }

  bool operator==(const Shape& other) const { return dims_ == other.dims_; }

  std::string str() const;

 private:
  void check() const {
    for (auto d : dims_) TT_CHECK_GE(d, 0);
  }
  std::vector<int64_t> dims_;
};

class Tensor {
 public:
  Tensor() = default;

  // Owning tensor, uninitialized contents.
  static Tensor owned(Shape shape, DType dtype = DType::kF32);

  // Owning tensor, zero-filled.
  static Tensor zeros(Shape shape, DType dtype = DType::kF32);

  // Non-owning view over external storage (e.g. an allocator placement).
  // The caller guarantees `data` outlives the view and holds at least
  // shape.numel() * dtype_size bytes.
  static Tensor view(void* data, Shape shape, DType dtype = DType::kF32);

  const Shape& shape() const { return shape_; }
  DType dtype() const { return dtype_; }
  int64_t numel() const { return shape_.numel(); }
  size_t bytes() const { return static_cast<size_t>(numel()) * dtype_size(dtype_); }
  bool defined() const { return data_ != nullptr; }

  template <typename T>
  T* data() {
    check_type<T>();
    return static_cast<T*>(data_);
  }
  template <typename T>
  const T* data() const {
    check_type<T>();
    return static_cast<const T*>(data_);
  }

  // Bounds-checked element access for tests and small code paths.
  float& at(std::initializer_list<int64_t> idx);
  float at(std::initializer_list<int64_t> idx) const;

  void zero();

 private:
  template <typename T>
  void check_type() const {
    if constexpr (std::is_same_v<T, float>) {
      TT_CHECK(dtype_ == DType::kF32);
    } else {
      static_assert(std::is_same_v<T, int32_t>, "unsupported dtype");
      TT_CHECK(dtype_ == DType::kI32);
    }
  }
  size_t flat_index(std::initializer_list<int64_t> idx) const;

  Shape shape_;
  DType dtype_ = DType::kF32;
  void* data_ = nullptr;
  std::shared_ptr<AlignedBuffer> storage_;  // null for views
};

}  // namespace turbo
