// Kernel-fusion pass (paper §4.1.1, Figure 3).
//
// Rewrites a training-framework-style op stream into TurboTransformers'
// fused form by collapsing every non-GEMM chain between two GEMMs into a
// single kernel:
//
//   1. three GEMMs sharing an input, each followed by add-bias + transpose
//        -> FusedGemm012 + SplitAddBiasTranspose          (QKV projection)
//   2. add-bias then activation, in place on one tensor
//        -> AddBiasAct
//   3. add-bias, residual-add, layernorm
//        -> AddBiasLayerNorm
//   4. the attention-output transpose
//        -> TransposeForScore
//
// Fused-op costs are synthesized from the constituents: FLOPs add up, and
// each eliminated kernel boundary saves one write + one read of the carrier
// tensor (fusion's whole point: data stays in registers between the
// original kernels).
#pragma once

#include "graph/graph.h"

namespace turbo::graph {

// Returns the fused graph. The input graph is not modified.
Graph fuse(const Graph& g);

}  // namespace turbo::graph
