#include "graph/fusion.h"

#include <algorithm>
#include <optional>

namespace turbo::graph {

namespace {

// Mutable working representation of an op during rewriting.
struct WorkOp {
  OpKind kind;
  std::string name;
  std::vector<int> inputs;
  std::vector<int> outputs;
  std::function<OpCost(int, int)> cost_fn;
  bool removed = false;
};

bool touches(const WorkOp& op, int tensor) {
  return std::find(op.inputs.begin(), op.inputs.end(), tensor) !=
             op.inputs.end() ||
         std::find(op.outputs.begin(), op.outputs.end(), tensor) !=
             op.outputs.end();
}

// Combines child costs, crediting back `saved_bytes_fn` bytes of eliminated
// intermediate traffic. Reduction dims (if any child reduces) survive.
std::function<OpCost(int, int)> combine_costs(
    std::vector<std::function<OpCost(int, int)>> children,
    std::function<double(int, int)> saved_bytes_fn, CostClass cls) {
  return [children = std::move(children),
          saved_bytes_fn = std::move(saved_bytes_fn), cls](int b, int s) {
    OpCost out;
    out.cls = cls;
    for (const auto& child : children) {
      const OpCost c = child(b, s);
      out.flops += c.flops;
      out.bytes += c.bytes;
      if (c.cls == CostClass::kReduction) {
        out.reduce_rows = c.reduce_rows;
        out.reduce_cols = c.reduce_cols;
      }
    }
    out.bytes = std::max(0.0, out.bytes - saved_bytes_fn(b, s));
    return out;
  };
}

// The next not-removed op at or after `i` that touches `tensor`;
// nullopt if none.
std::optional<size_t> next_touching(const std::vector<WorkOp>& ops, size_t i,
                                    int tensor) {
  for (size_t j = i; j < ops.size(); ++j) {
    if (!ops[j].removed && touches(ops[j], tensor)) return j;
  }
  return std::nullopt;
}

}  // namespace

Graph fuse(const Graph& g) {
  std::vector<WorkOp> ops;
  ops.reserve(static_cast<size_t>(g.num_ops()));
  for (const auto& node : g.ops()) {
    ops.push_back(WorkOp{node.kind, node.name, node.inputs, node.outputs,
                         node.cost_fn, false});
  }

  // Tensor table starts as a copy; QKV fusion appends a packed tensor.
  struct WorkTensor {
    std::string name;
    std::function<size_t(int, int)> size_fn;
    bool is_input, is_output;
  };
  std::vector<WorkTensor> tensors;
  tensors.reserve(static_cast<size_t>(g.num_tensors()));
  for (const auto& t : g.tensors()) {
    tensors.push_back(WorkTensor{t.name, t.size_fn, t.is_graph_input,
                                 t.is_graph_output});
  }
  auto tensor_bytes = [&tensors](int id) {
    return [size_fn = tensors[static_cast<size_t>(id)].size_fn](int b, int s) {
      return static_cast<double>(size_fn(b, s));
    };
  };

  // ---- Rule 1: QKV projection fusion -----------------------------------
  // Three Gemms consuming the same tensor, each followed by an in-place
  // AddBias on its output and a Transpose of that output.
  for (size_t gi = 0; gi + 1 < ops.size(); ++gi) {
    if (ops[gi].removed || ops[gi].kind != OpKind::kGemm) continue;
    const int shared_in = ops[gi].inputs.at(0);

    struct Branch {
      size_t gemm, bias, transpose;
      int raw, headed;
    };
    std::vector<Branch> branches;
    for (size_t j = gi; j < ops.size() && branches.size() < 3; ++j) {
      if (ops[j].removed || ops[j].kind != OpKind::kGemm) continue;
      if (ops[j].inputs.size() != 1 || ops[j].inputs[0] != shared_in) continue;
      if (ops[j].outputs.size() != 1) continue;
      const int raw = ops[j].outputs[0];
      auto bias_idx = next_touching(ops, j + 1, raw);
      if (!bias_idx || ops[*bias_idx].kind != OpKind::kAddBias ||
          !ops[*bias_idx].outputs.empty()) {
        continue;
      }
      auto tr_idx = next_touching(ops, *bias_idx + 1, raw);
      if (!tr_idx || ops[*tr_idx].kind != OpKind::kTranspose ||
          ops[*tr_idx].outputs.size() != 1) {
        continue;
      }
      // raw must die at the transpose for the pattern to be sound.
      if (next_touching(ops, *tr_idx + 1, raw).has_value()) continue;
      branches.push_back(Branch{j, *bias_idx, *tr_idx, raw,
                                ops[*tr_idx].outputs[0]});
    }
    if (branches.size() != 3) continue;

    // New packed-QKV tensor: 3x the size of one projection output.
    const int raw0 = branches[0].raw;
    const int qkv = static_cast<int>(tensors.size());
    tensors.push_back(WorkTensor{
        "qkv_out",
        [inner = tensors[static_cast<size_t>(raw0)].size_fn](int b, int s) {
          return 3 * inner(b, s);
        },
        false, false});

    // Fused GEMM: three weight reads stay, two redundant input reads go.
    std::vector<std::function<OpCost(int, int)>> gemm_children;
    for (const auto& br : branches) gemm_children.push_back(ops[br.gemm].cost_fn);
    auto saved_input = [in_bytes = tensor_bytes(shared_in)](int b, int s) {
      return 2.0 * in_bytes(b, s);
    };
    WorkOp fused_gemm{OpKind::kFusedGemm012,
                      "Gemm012Fused",
                      {shared_in},
                      {qkv},
                      combine_costs(std::move(gemm_children), saved_input,
                                    CostClass::kGemm),
                      false};

    // Fused split: six passes over BSH-sized data collapse the separate
    // bias (2 passes each) + transpose (2 passes each) round trips.
    std::vector<std::function<OpCost(int, int)>> split_children;
    for (const auto& br : branches) {
      split_children.push_back(ops[br.bias].cost_fn);
      split_children.push_back(ops[br.transpose].cost_fn);
    }
    auto saved_split = [raw_bytes = tensor_bytes(raw0)](int b, int s) {
      return 3.0 * 2.0 * raw_bytes(b, s);
    };
    WorkOp fused_split{OpKind::kSplitAddBiasTranspose,
                       "SplitAddBiasTransposeForScore",
                       {qkv},
                       {branches[0].headed, branches[1].headed,
                        branches[2].headed},
                       combine_costs(std::move(split_children), saved_split,
                                     CostClass::kElementwise),
                       false};

    for (const auto& br : branches) {
      ops[br.gemm].removed = true;
      ops[br.bias].removed = true;
      ops[br.transpose].removed = true;
    }
    // Insert at the first branch's position to preserve topological order.
    ops[branches[0].gemm] = std::move(fused_gemm);
    ops[branches[0].gemm].removed = false;
    ops[branches[0].bias] = std::move(fused_split);
    ops[branches[0].bias].removed = false;
    break;  // one QKV block per encoder layer
  }

  // ---- Rule 3: AddBias + AddResidual + LayerNorm ------------------------
  // (run before rule 2 so bias+act chains that are part of a norm pattern
  // are never mis-folded; in transformer graphs they are distinct anyway).
  for (size_t i = 0; i < ops.size(); ++i) {
    if (ops[i].removed || ops[i].kind != OpKind::kAddBias) continue;
    if (!ops[i].outputs.empty() || ops[i].inputs.size() != 1) continue;
    const int t = ops[i].inputs[0];
    auto res_idx = next_touching(ops, i + 1, t);
    if (!res_idx || ops[*res_idx].kind != OpKind::kAddResidual) continue;
    if (ops[*res_idx].inputs.size() != 2 || ops[*res_idx].inputs[0] != t) {
      continue;
    }
    const int residual = ops[*res_idx].inputs[1];
    auto ln_idx = next_touching(ops, *res_idx + 1, t);
    if (!ln_idx || ops[*ln_idx].kind != OpKind::kLayerNorm) continue;
    if (ops[*ln_idx].inputs.size() != 1 || ops[*ln_idx].inputs[0] != t ||
        ops[*ln_idx].outputs.size() != 1) {
      continue;
    }
    const int out = ops[*ln_idx].outputs[0];

    // Three kernels -> one: t no longer round-trips twice between them.
    auto saved = [t_bytes = tensor_bytes(t)](int b, int s) {
      return 2.0 * 2.0 * t_bytes(b, s);
    };
    WorkOp fused{OpKind::kAddBiasLayerNorm,
                 "AddBiasLayerNorm",
                 {t, residual},
                 {out},
                 combine_costs({ops[i].cost_fn, ops[*res_idx].cost_fn,
                                ops[*ln_idx].cost_fn},
                               saved, CostClass::kReduction),
                 false};
    ops[*res_idx].removed = true;
    ops[*ln_idx].removed = true;
    ops[i] = std::move(fused);
  }

  // ---- Rule 2: AddBias + Activation --------------------------------------
  for (size_t i = 0; i < ops.size(); ++i) {
    if (ops[i].removed || ops[i].kind != OpKind::kAddBias) continue;
    if (!ops[i].outputs.empty() || ops[i].inputs.size() != 1) continue;
    const int t = ops[i].inputs[0];
    auto act_idx = next_touching(ops, i + 1, t);
    if (!act_idx || ops[*act_idx].kind != OpKind::kActivation) continue;
    if (!ops[*act_idx].outputs.empty()) continue;

    auto saved = [t_bytes = tensor_bytes(t)](int b, int s) {
      return 2.0 * t_bytes(b, s);
    };
    WorkOp fused{OpKind::kAddBiasAct,
                 "AddBiasAct",
                 {t},
                 {},
                 combine_costs({ops[i].cost_fn, ops[*act_idx].cost_fn}, saved,
                               CostClass::kElementwise),
                 false};
    ops[*act_idx].removed = true;
    ops[i] = std::move(fused);
  }

  // ---- Rule 4: the attention-context transpose ---------------------------
  // A Transpose whose input is produced by a BatchedGemm is the
  // [B,h,S,d] -> [B,S,H] re-layout; Turbo implements it as one kernel.
  for (size_t i = 0; i < ops.size(); ++i) {
    if (ops[i].removed || ops[i].kind != OpKind::kTranspose) continue;
    const int in = ops[i].inputs.at(0);
    bool from_batched_gemm = false;
    for (size_t j = 0; j < i; ++j) {
      if (ops[j].removed) continue;
      if (ops[j].kind == OpKind::kBatchedGemm &&
          std::find(ops[j].outputs.begin(), ops[j].outputs.end(), in) !=
              ops[j].outputs.end()) {
        from_batched_gemm = true;
        break;
      }
    }
    if (from_batched_gemm) {
      ops[i].kind = OpKind::kTransposeForScore;
      ops[i].name = "TransposeForScore";
    }
  }

  // ---- Rebuild ------------------------------------------------------------
  Graph fused;
  for (const auto& t : tensors) {
    fused.add_tensor(t.name, t.size_fn, t.is_input, t.is_output);
  }
  for (auto& op : ops) {
    if (op.removed) continue;
    fused.add_op(op.kind, op.name, op.inputs, op.outputs, op.cost_fn);
  }
  fused.validate();
  return fused;
}

}  // namespace turbo::graph
