#include "graph/graph.h"

#include <algorithm>

namespace turbo::graph {

const char* op_kind_name(OpKind kind) {
  switch (kind) {
    case OpKind::kGemm: return "Gemm";
    case OpKind::kBatchedGemm: return "BatchedGemm";
    case OpKind::kAddBias: return "AddBias";
    case OpKind::kTranspose: return "Transpose";
    case OpKind::kSoftmax: return "Softmax";
    case OpKind::kLayerNorm: return "LayerNorm";
    case OpKind::kActivation: return "Activation";
    case OpKind::kAddResidual: return "AddResidual";
    case OpKind::kFusedGemm012: return "FusedGemm012";
    case OpKind::kSplitAddBiasTranspose: return "SplitAddBiasTranspose";
    case OpKind::kSoftmaxBatchedGemm: return "SoftmaxBatchedGemm";
    case OpKind::kTransposeForScore: return "TransposeForScore";
    case OpKind::kAddBiasLayerNorm: return "AddBiasLayerNorm";
    case OpKind::kAddBiasAct: return "AddBiasAct";
    case OpKind::kGemmAddBiasLayerNorm: return "GemmAddBiasLayerNorm";
    case OpKind::kEmbeddingLookup: return "EmbeddingLookup";
  }
  return "Unknown";
}

bool is_fused_kind(OpKind kind) {
  switch (kind) {
    case OpKind::kFusedGemm012:
    case OpKind::kSplitAddBiasTranspose:
    case OpKind::kSoftmaxBatchedGemm:
    case OpKind::kTransposeForScore:
    case OpKind::kAddBiasLayerNorm:
    case OpKind::kAddBiasAct:
    case OpKind::kGemmAddBiasLayerNorm:
      return true;
    default:
      return false;
  }
}

int Graph::add_tensor(std::string name,
                      std::function<size_t(int, int)> size_fn,
                      bool graph_input, bool graph_output) {
  TensorSpec spec;
  spec.id = static_cast<int>(tensors_.size());
  spec.name = std::move(name);
  spec.size_fn = std::move(size_fn);
  spec.is_graph_input = graph_input;
  spec.is_graph_output = graph_output;
  tensors_.push_back(std::move(spec));
  return tensors_.back().id;
}

int Graph::add_op(OpKind kind, std::string name, std::vector<int> inputs,
                  std::vector<int> outputs,
                  std::function<OpCost(int, int)> cost_fn) {
  OpNode node;
  node.id = static_cast<int>(ops_.size());
  node.kind = kind;
  node.name = std::move(name);
  node.inputs = std::move(inputs);
  node.outputs = std::move(outputs);
  node.cost_fn = std::move(cost_fn);
  for (int t : node.inputs) {
    TT_CHECK_GE(t, 0);
    TT_CHECK_LT(t, num_tensors());
  }
  for (int t : node.outputs) {
    TT_CHECK_GE(t, 0);
    TT_CHECK_LT(t, num_tensors());
  }
  ops_.push_back(std::move(node));
  return ops_.back().id;
}

const TensorSpec& Graph::tensor(int id) const {
  TT_CHECK_GE(id, 0);
  TT_CHECK_LT(id, num_tensors());
  return tensors_[static_cast<size_t>(id)];
}

const OpNode& Graph::op(int id) const {
  TT_CHECK_GE(id, 0);
  TT_CHECK_LT(id, num_ops());
  return ops_[static_cast<size_t>(id)];
}

void Graph::validate() const {
  // Tensors referenced by no op at all are permitted: rewrite passes (e.g.
  // fusion) may orphan tensors of the original graph; lifetime extraction
  // skips them.
  std::vector<int> producer(tensors_.size(), -1);
  for (const auto& node : ops_) {
    for (int t : node.inputs) {
      const auto& spec = tensors_[static_cast<size_t>(t)];
      TT_CHECK_MSG(spec.is_graph_input || producer[static_cast<size_t>(t)] >= 0,
                   "op " << node.name << " consumes tensor " << spec.name
                         << " before it is produced");
    }
    for (int t : node.outputs) {
      TT_CHECK_MSG(producer[static_cast<size_t>(t)] < 0,
                   "tensor " << tensors_[static_cast<size_t>(t)].name
                             << " produced twice");
      producer[static_cast<size_t>(t)] = node.id;
    }
  }
}

std::vector<memory::TensorUsage> Graph::tensor_usages(int batch,
                                                      int seq) const {
  TT_CHECK_GT(batch, 0);
  TT_CHECK_GT(seq, 0);
  std::vector<int> first(tensors_.size(), -1), last(tensors_.size(), -1);
  for (const auto& node : ops_) {
    for (int t : node.outputs) {
      if (first[static_cast<size_t>(t)] < 0) first[static_cast<size_t>(t)] = node.id;
      last[static_cast<size_t>(t)] =
          std::max(last[static_cast<size_t>(t)], node.id);
    }
    for (int t : node.inputs) {
      if (first[static_cast<size_t>(t)] < 0) first[static_cast<size_t>(t)] = node.id;
      last[static_cast<size_t>(t)] =
          std::max(last[static_cast<size_t>(t)], node.id);
    }
  }
  std::vector<memory::TensorUsage> usages;
  usages.reserve(tensors_.size());
  for (const auto& spec : tensors_) {
    const auto idx = static_cast<size_t>(spec.id);
    memory::TensorUsage u;
    u.tensor_id = spec.id;
    u.name = spec.name;
    u.first_op = spec.is_graph_input ? 0 : first[idx];
    u.last_op = spec.is_graph_output ? num_ops() - 1 : last[idx];
    if (u.first_op < 0) continue;  // dead tensor: never touched by any op
    u.size = spec.size_fn(batch, seq);
    if (u.size == 0) continue;
    usages.push_back(std::move(u));
  }
  return usages;
}

size_t Graph::peak_live_bytes(int batch, int seq) const {
  const auto usages = tensor_usages(batch, seq);
  size_t peak = 0;
  for (int op = 0; op < num_ops(); ++op) {
    size_t live = 0;
    for (const auto& u : usages) {
      if (u.first_op <= op && op <= u.last_op) live += u.size;
    }
    peak = std::max(peak, live);
  }
  return peak;
}

}  // namespace turbo::graph
