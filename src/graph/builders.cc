#include "graph/builders.h"

namespace turbo::graph {

namespace {

constexpr double kF = sizeof(float);

// Activation sizes as functions of (batch, seq).
std::function<size_t(int, int)> bsh_bytes(int hidden) {
  return [hidden](int b, int s) {
    return static_cast<size_t>(b) * s * hidden * sizeof(float);
  };
}

std::function<size_t(int, int)> score_bytes(int heads) {
  return [heads](int b, int s) {
    return static_cast<size_t>(b) * heads * s * s * sizeof(float);
  };
}

}  // namespace

Graph build_encoder_layer_fused(const LayerDims& dims) {
  Graph g;
  const int H = dims.hidden;
  const int h = dims.heads;
  const int I = dims.intermediate;

  const int layer_in = g.add_tensor("layer_in", bsh_bytes(H), /*input=*/true);
  const int qkv_out = g.add_tensor("qkv_out", [H](int b, int s) {
    return static_cast<size_t>(3) * b * s * H * sizeof(float);
  });
  const int q = g.add_tensor("Q", bsh_bytes(H));
  const int k = g.add_tensor("K", bsh_bytes(H));
  const int v = g.add_tensor("V", bsh_bytes(H));
  const int attn_score = g.add_tensor("attn_score", score_bytes(h));
  const int ctx_layer = g.add_tensor("ctx_layer", bsh_bytes(H));
  const int trans_out = g.add_tensor("trans_out", bsh_bytes(H));
  const int attn_out = g.add_tensor("attn_out", bsh_bytes(H));
  const int attn_ln_out = g.add_tensor("attn_ln_out", bsh_bytes(H));
  const int intermediate_out = g.add_tensor("intermediate_out",
                                            [I](int b, int s) {
    return static_cast<size_t>(b) * s * I * sizeof(float);
  });
  const int layer_out_raw = g.add_tensor("layer_out_raw", bsh_bytes(H));
  const int layer_out = g.add_tensor("layer_out", bsh_bytes(H),
                                     /*input=*/false, /*output=*/true);

  g.add_op(OpKind::kFusedGemm012, "Gemm012Fused", {layer_in}, {qkv_out},
           [H](int b, int s) {
             OpCost c;
             c.cls = CostClass::kGemm;
             c.flops = 2.0 * b * s * H * (3.0 * H);
             c.bytes = (1.0 * b * s * H + 3.0 * H * H + 3.0 * b * s * H) * kF;
             return c;
           });
  g.add_op(OpKind::kSplitAddBiasTranspose, "SplitAddBiasTransposeForScore",
           {qkv_out}, {q, k, v}, [H](int b, int s) {
             OpCost c;
             c.cls = CostClass::kElementwise;
             c.bytes = 6.0 * b * s * H * kF;
             return c;
           });
  g.add_op(OpKind::kBatchedGemm, "BatchGemm3", {q, k}, {attn_score},
           [H, h](int b, int s) {
             OpCost c;
             c.cls = CostClass::kGemm;
             c.flops = 2.0 * b * s * static_cast<double>(s) * H;
             c.bytes = (2.0 * b * s * H +
                        1.0 * b * h * s * static_cast<double>(s)) * kF;
             return c;
           });
  // In-place masked softmax over attn_score rows.
  g.add_op(OpKind::kSoftmax, "ApplyMaskAndSoftmax", {attn_score}, {},
           [h](int b, int s) {
             OpCost c;
             c.cls = CostClass::kReduction;
             c.reduce_rows = static_cast<long>(b) * h * s;
             c.reduce_cols = s;
             c.bytes = 2.0 * b * h * s * static_cast<double>(s) * kF;
             return c;
           });
  g.add_op(OpKind::kBatchedGemm, "BatchGemm4", {attn_score, v}, {ctx_layer},
           [H, h](int b, int s) {
             OpCost c;
             c.cls = CostClass::kGemm;
             c.flops = 2.0 * b * s * static_cast<double>(s) * H;
             c.bytes = (1.0 * b * h * s * static_cast<double>(s) +
                        2.0 * b * s * H) * kF;
             return c;
           });
  g.add_op(OpKind::kTransposeForScore, "TransposeForScore", {ctx_layer},
           {trans_out}, [H](int b, int s) {
             OpCost c;
             c.cls = CostClass::kElementwise;
             c.bytes = 2.0 * b * s * H * kF;
             return c;
           });
  g.add_op(OpKind::kGemm, "Gemm5", {trans_out}, {attn_out},
           [H](int b, int s) {
             OpCost c;
             c.cls = CostClass::kGemm;
             c.flops = 2.0 * b * s * H * static_cast<double>(H);
             c.bytes = (2.0 * b * s * H + 1.0 * H * H) * kF;
             return c;
           });
  g.add_op(OpKind::kAddBiasLayerNorm, "AddBiasLayerNorm",
           {attn_out, layer_in}, {attn_ln_out}, [H](int b, int s) {
             OpCost c;
             c.cls = CostClass::kReduction;
             c.reduce_rows = static_cast<long>(b) * s;
             c.reduce_cols = H;
             c.bytes = 3.0 * b * s * H * kF;
             return c;
           });
  g.add_op(OpKind::kGemm, "BertIntermediate/gemm", {attn_ln_out},
           {intermediate_out}, [H, I](int b, int s) {
             OpCost c;
             c.cls = CostClass::kGemm;
             c.flops = 2.0 * b * s * H * static_cast<double>(I);
             c.bytes = (1.0 * b * s * H + 1.0 * H * I + 1.0 * b * s * I) * kF;
             return c;
           });
  g.add_op(OpKind::kAddBiasAct, "BertIntermediate/AddBiasAct",
           {intermediate_out}, {}, [I](int b, int s) {
             OpCost c;
             c.cls = CostClass::kElementwise;
             c.bytes = 2.0 * b * s * I * kF;
             return c;
           });
  g.add_op(OpKind::kGemm, "BertOutput/gemm", {intermediate_out},
           {layer_out_raw}, [H, I](int b, int s) {
             OpCost c;
             c.cls = CostClass::kGemm;
             c.flops = 2.0 * b * s * I * static_cast<double>(H);
             c.bytes = (1.0 * b * s * I + 1.0 * H * I + 1.0 * b * s * H) * kF;
             return c;
           });
  g.add_op(OpKind::kAddBiasLayerNorm, "BertOutput/AddBiasLayerNorm",
           {layer_out_raw, attn_ln_out}, {layer_out}, [H](int b, int s) {
             OpCost c;
             c.cls = CostClass::kReduction;
             c.reduce_rows = static_cast<long>(b) * s;
             c.reduce_cols = H;
             c.bytes = 3.0 * b * s * H * kF;
             return c;
           });

  g.validate();
  return g;
}

Graph build_encoder_layer_unfused(const LayerDims& dims) {
  Graph g;
  const int H = dims.hidden;
  const int h = dims.heads;
  const int I = dims.intermediate;

  auto gemm_cost = [H](double n_mult) {
    return [H, n_mult](int b, int s) {
      OpCost c;
      c.cls = CostClass::kGemm;
      c.flops = 2.0 * b * s * H * (n_mult * H);
      c.bytes = (1.0 * b * s * H + n_mult * H * H +
                 n_mult * b * s * H) * kF;
      return c;
    };
  };
  auto elementwise_bsh = [H](double passes) {
    return [H, passes](int b, int s) {
      OpCost c;
      c.cls = CostClass::kElementwise;
      c.bytes = passes * b * s * H * kF;
      return c;
    };
  };

  const int layer_in2 = g.add_tensor("layer_in", bsh_bytes(H), true);

  // --- Q/K/V projections, each gemm -> add-bias -> transpose ---
  int raw[3], headed[3];
  const char* raw_names[3] = {"q_raw", "k_raw", "v_raw"};
  const char* head_names[3] = {"Q", "K", "V"};
  for (int i = 0; i < 3; ++i) {
    raw[i] = g.add_tensor(raw_names[i], bsh_bytes(H));
    headed[i] = g.add_tensor(head_names[i], bsh_bytes(H));
  }
  const int q = headed[0];
  const int k = headed[1];
  const int v = headed[2];
  const int attn_score = g.add_tensor("attn_score", score_bytes(h));
  const int ctx_layer = g.add_tensor("ctx_layer", bsh_bytes(H));
  const int trans_out = g.add_tensor("trans_out", bsh_bytes(H));
  const int attn_out = g.add_tensor("attn_out", bsh_bytes(H));
  const int attn_ln_out = g.add_tensor("attn_ln_out", bsh_bytes(H));
  const int intermediate_out = g.add_tensor("intermediate_out",
                                            [I](int b, int s) {
    return static_cast<size_t>(b) * s * I * sizeof(float);
  });
  const int ffn_out = g.add_tensor("ffn_out", bsh_bytes(H));
  const int layer_out = g.add_tensor("layer_out", bsh_bytes(H), false, true);

  const char* gemm_names[3] = {"gemm0", "gemm1", "gemm2"};
  const char* bias_names[3] = {"bias0", "bias1", "bias2"};
  const char* tr_names[3] = {"transpose0", "transpose1", "transpose2"};
  for (int i = 0; i < 3; ++i) {
    g.add_op(OpKind::kGemm, gemm_names[i], {layer_in2}, {raw[i]},
             gemm_cost(1.0));
    g.add_op(OpKind::kAddBias, bias_names[i], {raw[i]}, {},
             elementwise_bsh(2.0));
    g.add_op(OpKind::kTranspose, tr_names[i], {raw[i]}, {headed[i]},
             elementwise_bsh(2.0));
  }
  g.add_op(OpKind::kBatchedGemm, "batchgemm3", {q, k}, {attn_score},
           [H, h](int b, int s) {
             OpCost c;
             c.cls = CostClass::kGemm;
             c.flops = 2.0 * b * s * static_cast<double>(s) * H;
             c.bytes = (2.0 * b * s * H +
                        1.0 * b * h * s * static_cast<double>(s)) * kF;
             return c;
           });
  g.add_op(OpKind::kSoftmax, "softmax", {attn_score}, {},
           [h](int b, int s) {
             OpCost c;
             c.cls = CostClass::kReduction;
             c.reduce_rows = static_cast<long>(b) * h * s;
             c.reduce_cols = s;
             c.bytes = 2.0 * b * h * s * static_cast<double>(s) * kF;
             return c;
           });
  g.add_op(OpKind::kBatchedGemm, "batchgemm4", {attn_score, v}, {ctx_layer},
           [H, h](int b, int s) {
             OpCost c;
             c.cls = CostClass::kGemm;
             c.flops = 2.0 * b * s * static_cast<double>(s) * H;
             c.bytes = (1.0 * b * h * s * static_cast<double>(s) +
                        2.0 * b * s * H) * kF;
             return c;
           });
  g.add_op(OpKind::kTranspose, "transpose_ctx", {ctx_layer}, {trans_out},
           elementwise_bsh(2.0));
  g.add_op(OpKind::kGemm, "gemm5", {trans_out}, {attn_out}, gemm_cost(1.0));
  g.add_op(OpKind::kAddBias, "bias5", {attn_out}, {}, elementwise_bsh(2.0));
  g.add_op(OpKind::kAddResidual, "residual1", {attn_out, layer_in2}, {},
           elementwise_bsh(3.0));
  g.add_op(OpKind::kLayerNorm, "layernorm1", {attn_out}, {attn_ln_out},
           [H](int b, int s) {
             OpCost c;
             c.cls = CostClass::kReduction;
             c.reduce_rows = static_cast<long>(b) * s;
             c.reduce_cols = H;
             c.bytes = 2.0 * b * s * H * kF;
             return c;
           });
  g.add_op(OpKind::kGemm, "gemm6", {attn_ln_out}, {intermediate_out},
           [H, I](int b, int s) {
             OpCost c;
             c.cls = CostClass::kGemm;
             c.flops = 2.0 * b * s * H * static_cast<double>(I);
             c.bytes = (1.0 * b * s * H + 1.0 * H * I + 1.0 * b * s * I) * kF;
             return c;
           });
  g.add_op(OpKind::kAddBias, "bias6", {intermediate_out}, {},
           [I](int b, int s) {
             OpCost c;
             c.cls = CostClass::kElementwise;
             c.bytes = 2.0 * b * s * I * kF;
             return c;
           });
  g.add_op(OpKind::kActivation, "gelu", {intermediate_out}, {},
           [I](int b, int s) {
             OpCost c;
             c.cls = CostClass::kElementwise;
             c.bytes = 2.0 * b * s * I * kF;
             return c;
           });
  g.add_op(OpKind::kGemm, "gemm7", {intermediate_out}, {ffn_out},
           [H, I](int b, int s) {
             OpCost c;
             c.cls = CostClass::kGemm;
             c.flops = 2.0 * b * s * I * static_cast<double>(H);
             c.bytes = (1.0 * b * s * I + 1.0 * H * I + 1.0 * b * s * H) * kF;
             return c;
           });
  g.add_op(OpKind::kAddBias, "bias7", {ffn_out}, {}, elementwise_bsh(2.0));
  g.add_op(OpKind::kAddResidual, "residual2", {ffn_out, attn_ln_out}, {},
           elementwise_bsh(3.0));
  g.add_op(OpKind::kLayerNorm, "layernorm2", {ffn_out}, {layer_out},
           [H](int b, int s) {
             OpCost c;
             c.cls = CostClass::kReduction;
             c.reduce_rows = static_cast<long>(b) * s;
             c.reduce_cols = H;
             c.bytes = 2.0 * b * s * H * kF;
             return c;
           });

  g.validate();
  return g;
}

Graph build_decoder_step_fused(const LayerDims& dims, int src_len) {
  Graph g;
  const int H = dims.hidden;
  const int h = dims.heads;
  const int I = dims.intermediate;
  // In this graph `batch` = beam width and `seq` = self-attention cache
  // length t. Per-step activations are [beam, H]; only the attention-score
  // rows grow with t.
  auto beam_h = [H](int beam, int) {
    return static_cast<size_t>(beam) * H * sizeof(float);
  };
  auto beam_i = [I](int beam, int) {
    return static_cast<size_t>(beam) * I * sizeof(float);
  };
  auto self_score_bytes = [h](int beam, int t) {
    return static_cast<size_t>(beam) * h * t * sizeof(float);
  };
  auto cross_score_bytes = [h, src_len](int beam, int) {
    return static_cast<size_t>(beam) * h * src_len * sizeof(float);
  };

  auto gemm_cost = [](double m_scale, double n, double k) {
    return [m_scale, n, k](int beam, int) {
      OpCost c;
      c.cls = CostClass::kGemm;
      c.flops = 2.0 * beam * m_scale * n * k;
      c.bytes = (beam * m_scale * k + k * n + beam * m_scale * n) * kF;
      return c;
    };
  };
  auto ln_cost = [H](int beam, int) {
    OpCost c;
    c.cls = CostClass::kReduction;
    c.reduce_rows = beam;
    c.reduce_cols = H;
    c.bytes = 3.0 * beam * H * kF;
    return c;
  };

  const int x_in = g.add_tensor("x_in", beam_h, /*input=*/true);
  const int qkv_out = g.add_tensor("self_qkv_out", [H](int beam, int) {
    return static_cast<size_t>(3) * beam * H * sizeof(float);
  });
  const int self_score = g.add_tensor("self_score", self_score_bytes);
  const int self_ctx = g.add_tensor("self_ctx", beam_h);
  const int self_proj = g.add_tensor("self_proj", beam_h);
  const int x1 = g.add_tensor("x1", beam_h);
  const int cross_q = g.add_tensor("cross_q", beam_h);
  const int cross_score = g.add_tensor("cross_score", cross_score_bytes);
  const int cross_ctx = g.add_tensor("cross_ctx", beam_h);
  const int cross_proj = g.add_tensor("cross_proj", beam_h);
  const int x2 = g.add_tensor("x2", beam_h);
  const int inter = g.add_tensor("ffn_inter", beam_i);
  const int ffn_out = g.add_tensor("ffn_out", beam_h);
  const int x_out = g.add_tensor("x_out", beam_h, false, /*output=*/true);

  // --- cached causal self-attention ---
  g.add_op(OpKind::kFusedGemm012, "SelfQkvGemm", {x_in}, {qkv_out},
           gemm_cost(1.0, 3.0 * H, H));
  // Scores over the cache: [beam*h, 1, d] x [beam*h, t, d]^T.
  g.add_op(OpKind::kBatchedGemm, "SelfScoreGemm", {qkv_out}, {self_score},
           [H, h](int beam, int t) {
             OpCost c;
             c.cls = CostClass::kGemm;
             c.flops = 2.0 * beam * t * H;
             c.bytes = (2.0 * beam * H * t / h + 1.0 * beam * h * t) * kF;
             return c;
           });
  g.add_op(OpKind::kSoftmax, "SelfSoftmax", {self_score}, {},
           [h](int beam, int t) {
             OpCost c;
             c.cls = CostClass::kReduction;
             c.reduce_rows = static_cast<long>(beam) * h;
             c.reduce_cols = t;
             c.bytes = 2.0 * beam * h * t * kF;
             return c;
           });
  g.add_op(OpKind::kBatchedGemm, "SelfContextGemm", {self_score},
           {self_ctx}, [H, h](int beam, int t) {
             OpCost c;
             c.cls = CostClass::kGemm;
             c.flops = 2.0 * beam * t * H;
             c.bytes = (1.0 * beam * h * t + 2.0 * beam * H) * kF;
             return c;
           });
  g.add_op(OpKind::kGemm, "SelfOutProj", {self_ctx}, {self_proj},
           gemm_cost(1.0, H, H));
  g.add_op(OpKind::kAddBiasLayerNorm, "SelfAddBiasLN", {self_proj, x_in},
           {x1}, ln_cost);

  // --- cross-attention over the (precomputed) encoder memory ---
  g.add_op(OpKind::kGemm, "CrossQProj", {x1}, {cross_q},
           gemm_cost(1.0, H, H));
  g.add_op(OpKind::kBatchedGemm, "CrossScoreGemm", {cross_q}, {cross_score},
           [H, h, src_len](int beam, int) {
             OpCost c;
             c.cls = CostClass::kGemm;
             c.flops = 2.0 * beam * src_len * H;
             c.bytes = (1.0 * beam * H + 1.0 * src_len * H +
                        1.0 * beam * h * src_len) * kF;
             return c;
           });
  g.add_op(OpKind::kSoftmax, "CrossSoftmax", {cross_score}, {},
           [h, src_len](int beam, int) {
             OpCost c;
             c.cls = CostClass::kReduction;
             c.reduce_rows = static_cast<long>(beam) * h;
             c.reduce_cols = src_len;
             c.bytes = 2.0 * beam * h * src_len * kF;
             return c;
           });
  g.add_op(OpKind::kBatchedGemm, "CrossContextGemm", {cross_score},
           {cross_ctx}, [H, h, src_len](int beam, int) {
             OpCost c;
             c.cls = CostClass::kGemm;
             c.flops = 2.0 * beam * src_len * H;
             c.bytes = (1.0 * beam * h * src_len + 1.0 * src_len * H +
                        1.0 * beam * H) * kF;
             return c;
           });
  g.add_op(OpKind::kGemm, "CrossOutProj", {cross_ctx}, {cross_proj},
           gemm_cost(1.0, H, H));
  g.add_op(OpKind::kAddBiasLayerNorm, "CrossAddBiasLN", {cross_proj, x1},
           {x2}, ln_cost);

  // --- feed-forward ---
  g.add_op(OpKind::kGemm, "FfnInterGemm", {x2}, {inter},
           gemm_cost(1.0, I, H));
  g.add_op(OpKind::kAddBiasAct, "FfnAddBiasAct", {inter}, {},
           [I](int beam, int) {
             OpCost c;
             c.cls = CostClass::kElementwise;
             c.bytes = 2.0 * beam * I * kF;
             return c;
           });
  g.add_op(OpKind::kGemm, "FfnOutGemm", {inter}, {ffn_out},
           gemm_cost(1.0, H, I));
  g.add_op(OpKind::kAddBiasLayerNorm, "FfnAddBiasLN", {ffn_out, x2},
           {x_out}, ln_cost);

  g.validate();
  return g;
}

}  // namespace turbo::graph
