// Computation-graph IR.
//
// Nodes are operators, edges are intermediate tensors (paper §4.1.1). The
// graph is symbolic over (batch, seq_len): tensor sizes and per-op workloads
// are functions of the request's dimensions, evaluated when a request of a
// concrete length arrives. Two consumers use this:
//   * src/memory — tensor_usages() yields {first_op, last_op, size} records
//     (the input to allocator Algorithm 1 and to the GSOC baseline);
//   * src/perfmodel — op_cost() yields the analytic workload of each op.
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "common/check.h"
#include "memory/allocator.h"

namespace turbo::graph {

enum class OpKind {
  // unfused (training-framework style, Fig. 3a)
  kGemm,
  kBatchedGemm,
  kAddBias,
  kTranspose,
  kSoftmax,
  kLayerNorm,
  kActivation,  // GELU
  kAddResidual,
  // fused (TurboTransformers, Fig. 3b)
  kFusedGemm012,            // one GEMM producing packed QKV
  kSplitAddBiasTranspose,   // split QKV + bias + [B,S,H]->[B,h,S,d]
  kSoftmaxBatchedGemm,      // masked softmax fused into the PV GEMM
  kTransposeForScore,       // [B,h,S,d]->[B,S,H]
  kAddBiasLayerNorm,        // bias + residual + layernorm
  kAddBiasAct,              // bias + GELU
  kGemmAddBiasLayerNorm,    // output GEMM + bias + residual + layernorm
  // embedding front-end
  kEmbeddingLookup,
};

const char* op_kind_name(OpKind kind);

// True for kinds produced by the fusion pass (not expressible with
// stock cuDNN/cuBLAS building blocks).
bool is_fused_kind(OpKind kind);

// Class of an op for the performance model.
enum class CostClass {
  kGemm,        // compute-bound, roofline on FLOPs
  kReduction,   // softmax / layernorm: costed by the gpusim batch-reduction
  kElementwise, // bandwidth-bound
};

struct OpCost {
  CostClass cls = CostClass::kElementwise;
  double flops = 0;       // for kGemm
  double bytes = 0;       // gmem traffic (all classes)
  long reduce_rows = 0;   // for kReduction
  long reduce_cols = 0;
  bool fused_with_gemm = false;  // reduction fused into a GEMM epilogue
};

struct TensorSpec {
  int id = -1;
  std::string name;
  // bytes as a function of (batch, seq_len)
  std::function<size_t(int, int)> size_fn;
  bool is_graph_input = false;   // alive from op 0
  bool is_graph_output = false;  // alive through the last op
};

struct OpNode {
  int id = -1;  // position in topological order
  OpKind kind;
  std::string name;
  std::vector<int> inputs;   // tensor ids
  std::vector<int> outputs;  // tensor ids
  std::function<OpCost(int, int)> cost_fn;
};

class Graph {
 public:
  // Returns the tensor id.
  int add_tensor(std::string name, std::function<size_t(int, int)> size_fn,
                 bool graph_input = false, bool graph_output = false);

  // Appends an op (construction order == topological order). Returns op id.
  int add_op(OpKind kind, std::string name, std::vector<int> inputs,
             std::vector<int> outputs,
             std::function<OpCost(int, int)> cost_fn);

  int num_tensors() const { return static_cast<int>(tensors_.size()); }
  int num_ops() const { return static_cast<int>(ops_.size()); }
  const TensorSpec& tensor(int id) const;
  const OpNode& op(int id) const;
  const std::vector<OpNode>& ops() const { return ops_; }
  const std::vector<TensorSpec>& tensors() const { return tensors_; }

  // Checks structural sanity: every tensor referenced exists, every
  // non-input tensor has exactly one producer, which precedes all consumers.
  void validate() const;

  // Lifetime records for one request: first_op = producer (0 for graph
  // inputs), last_op = last consumer (last op for graph outputs). The input
  // to memory allocator planning.
  std::vector<memory::TensorUsage> tensor_usages(int batch, int seq) const;

  // Sum of all tensor sizes alive at the given op — used to compute the
  // footprint lower bound max_op(live_bytes).
  size_t peak_live_bytes(int batch, int seq) const;

 private:
  std::vector<TensorSpec> tensors_;
  std::vector<OpNode> ops_;
};

}  // namespace turbo::graph
