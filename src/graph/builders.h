// Builders for transformer encoder-layer computation graphs.
//
// Two variants of the same math (paper Fig. 3):
//   * unfused — the op stream a training framework (PyTorch) executes:
//     separate bias / transpose / residual / norm kernels, 24 kernel
//     launches per layer;
//   * fused — TurboTransformers' rewritten graph: everything between two
//     GEMMs collapsed into one kernel, 12 launches per layer, matching the
//     kernel inventory of the paper's Figure 10.
//
// The builders are the ground truth the fusion pass (fusion.h) is tested
// against: fuse(unfused) must be structurally identical to fused.
#pragma once

#include "graph/graph.h"

namespace turbo::graph {

struct LayerDims {
  int hidden = 768;
  int heads = 12;
  int intermediate = 3072;

  int head_dim() const { return hidden / heads; }
};

// One encoder layer. The graph's single input is the previous layer's
// output [B, S, H]; its single output feeds the next layer.
Graph build_encoder_layer_unfused(const LayerDims& dims);
Graph build_encoder_layer_fused(const LayerDims& dims);

// One decoder layer at one generation step (fused form): cached causal
// self-attention + cross-attention over an encoder memory of fixed length
// `src_len` + feed-forward. The graph is symbolic over (beam, cache_len):
// tensor_usages(beam, t) yields the step's intermediate lifetimes, so the
// model-aware allocator re-plans as the KV cache grows — the decoder-side
// variable-length workload of Fig. 9. The K/V caches themselves are
// persistent state, not intermediates, and are not part of this graph.
Graph build_decoder_step_fused(const LayerDims& dims, int src_len);

}  // namespace turbo::graph
