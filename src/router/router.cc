#include "router/router.h"

#include <algorithm>
#include <limits>

#include "common/check.h"

namespace turbo::router {

namespace {

// Index of the replica whose backlog clears first (lowest index on ties,
// so placement is deterministic).
size_t argmin_ready(const serving::BacklogModel& backlog, double now) {
  size_t best = 0;
  double best_ready = backlog.ready_at(0, now);
  for (size_t i = 1; i < backlog.targets(); ++i) {
    const double r = backlog.ready_at(i, now);
    if (r < best_ready) {
      best_ready = r;
      best = i;
    }
  }
  return best;
}

}  // namespace

Router::Router(ReplicaSet& set, RouterOptions options)
    : set_(set), options_(options), backlog_(set.size()) {
  TT_CHECK_GE(set_.size(), 1u);
  auto& metrics = *set_.replica(0).metrics();
  ring_ = set_.replica(0).trace_ring();
  c_routed_ = &metrics.counter("router.routed_total");
  c_fallbacks_ = &metrics.counter("router.denial_fallbacks");
  c_class_[0] = &metrics.counter("router.routed_tight");
  c_class_[1] = &metrics.counter("router.routed_standard");
  c_class_[2] = &metrics.counter("router.routed_batch");
  per_replica_.resize(set_.size());
  for (size_t i = 0; i < set_.size(); ++i) {
    const std::string p = "router." + set_.replica_label(i) + ".";
    per_replica_[i].routed = &metrics.counter(p + "routed");
    per_replica_[i].backlog = &metrics.gauge(p + "backlog");
  }
}

size_t Router::pick_slo_aware(const serving::GenerationRequest& request,
                              serving::SloClass klass,
                              const std::vector<ReplicaSignals>& signals,
                              double now, bool* fallback) const {
  const size_t n = set_.size();

  if (klass == serving::SloClass::kBatch) {
    // Backfill by consolidation: pile batch work onto the replica already
    // carrying the deepest backlog (ties: most free KV blocks, then
    // lowest index), keeping the lightly-loaded replicas clear as fast
    // lanes for the tight/standard classes. Batch deadlines are loose by
    // definition; spreading batch evenly would poison every lane at once.
    // Admission-starved replicas are skipped while any sibling can still
    // admit — piling more work on a starved lane only buys preemption
    // churn.
    size_t best = n;
    for (size_t i = 0; i < n; ++i) {
      if (signals[i].admission_blocked) continue;
      if (best == n) {
        best = i;
        continue;
      }
      const double ri = backlog_.ready_at(i, now);
      const double rb = backlog_.ready_at(best, now);
      if (ri > rb || (ri == rb && signals[i].kv_free_blocks >
                                      signals[best].kv_free_blocks)) {
        best = i;
      }
    }
    if (best < n) return best;
    // Everyone starved: deepest backlog (it was absorbing batch anyway).
    best = 0;
    for (size_t i = 1; i < n; ++i) {
      if (backlog_.ready_at(i, now) > backlog_.ready_at(best, now)) best = i;
    }
    return best;
  }

  const size_t least = argmin_ready(backlog_, now);
  if (klass != serving::SloClass::kTight) return least;

  // Tight SLO: rank by backlog, skip replicas that would deny or queue
  // the admission (KV-starved head of queue, a waiting queue the request
  // would sit behind, or fewer free blocks than its worst-case demand).
  const size_t demand = set_.demand_blocks(request);
  std::vector<size_t> ranked(n);
  for (size_t i = 0; i < n; ++i) ranked[i] = i;
  std::sort(ranked.begin(), ranked.end(), [&](size_t a, size_t b) {
    const double ra = backlog_.ready_at(a, now);
    const double rb = backlog_.ready_at(b, now);
    return ra != rb ? ra < rb : a < b;
  });
  for (size_t i : ranked) {
    if (signals[i].admission_blocked) continue;
    if (signals[i].queue_depth > 0) continue;
    if (signals[i].kv_free_blocks < demand) continue;
    *fallback = i != least;
    return i;
  }
  // Everyone is starved: least backlog takes it (no fallback credit —
  // nothing was dodged).
  return least;
}

RouteDecision Router::place(const serving::GenerationRequest& request,
                            double now) {
  const size_t n = set_.size();
  std::vector<ReplicaSignals> signals(n);
  for (size_t i = 0; i < n; ++i) signals[i] = set_.signals(i);

  RouteDecision d;
  d.slo = serving::slo_class_of(request.priority, options_.slo);

  switch (options_.policy) {
    case serving::DispatchPolicy::kRoundRobin:
      d.replica = rr_cursor_++ % n;
      break;
    case serving::DispatchPolicy::kLeastLoaded:
      d.replica = argmin_ready(backlog_, now);
      break;
    case serving::DispatchPolicy::kSloAware:
      d.replica = pick_slo_aware(request, d.slo, signals, now, &d.fallback);
      break;
  }
  TT_CHECK_LT(d.replica, n);

  // Charge predicted work: total rows, scaled by the chosen replica's
  // observed per-row cost relative to the cheapest replica (no
  // observations yet -> everyone costs 1x).
  double min_row_cost = std::numeric_limits<double>::max();
  for (const ReplicaSignals& s : signals) {
    if (s.row_cost_ms > 0.0) min_row_cost = std::min(min_row_cost, s.row_cost_ms);
  }
  const double rows = static_cast<double>(request.src_tokens.size()) +
                      static_cast<double>(request.max_new_tokens);
  const double rel =
      options_.use_observed_cost && signals[d.replica].row_cost_ms > 0.0
          ? signals[d.replica].row_cost_ms / min_row_cost
          : 1.0;
  d.exec = rows * rel;
  d.ready_at = backlog_.ready_at(d.replica, now);
  backlog_.charge(d.replica, now, d.exec);

  c_routed_->add(1);
  c_class_[static_cast<int>(d.slo)]->add(1);
  if (d.fallback) c_fallbacks_->add(1);
  per_replica_[d.replica].routed->add(1);
  for (size_t i = 0; i < n; ++i) {
    per_replica_[i].backlog->set(backlog_.outstanding(i, now));
  }

  if (ring_ != nullptr) {
    obs::TraceSpan span;
    span.kind = obs::SpanKind::kRoute;
    span.model_version = set_.bundle()->version;
    span.seq = request.id;
    span.iteration = static_cast<int64_t>(now);
    span.batch = static_cast<int32_t>(d.replica);
    span.tokens = static_cast<int32_t>(d.slo);
    span.bytes = d.fallback ? 1 : 0;
    span.start_ticks = obs::now_ticks();
    span.end_ticks = span.start_ticks;
    obs::copy_name(span.model, set_.bundle()->label());
    obs::copy_name(span.peer, set_.replica_label(d.replica));
    ring_->record(span);
  }
  return d;
}

}  // namespace turbo::router
