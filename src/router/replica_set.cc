#include "router/replica_set.h"

#include <algorithm>
#include <limits>
#include <numeric>
#include <utility>

#ifdef __linux__
#include <pthread.h>
#include <sched.h>
#endif

#include "common/check.h"
#include "memory/slab_budget.h"
#include "model/encoder.h"

namespace turbo::router {

namespace {

size_t free_blocks_of(const genserve::KvCachePool& pool) {
  const size_t cap = pool.max_blocks();
  if (cap == std::numeric_limits<size_t>::max()) return cap;
  const size_t charged = pool.charged_blocks();
  return cap > charged ? cap - charged : 0;
}

// Best-effort: pin the calling thread to one CPU so a replica's fused
// steps stop migrating (cache residency for its slice of the weights'
// activations). Failure is fine — pinning is a performance hint.
void pin_to_cpu(size_t index) {
#ifdef __linux__
  const unsigned hw = std::max(1u, std::thread::hardware_concurrency());
  cpu_set_t set;
  CPU_ZERO(&set);
  CPU_SET(static_cast<int>(index % hw), &set);
  pthread_setaffinity_np(pthread_self(), sizeof(set), &set);
#else
  (void)index;
#endif
}

}  // namespace

ReplicaSet::ReplicaSet(std::shared_ptr<genserve::ModelBundle> bundle,
                       genserve::GenServerOptions engine_options,
                       size_t guarantee_bytes, ReplicaSetOptions options)
    : bundle_(std::move(bundle)) {
  TT_CHECK(bundle_ != nullptr);
  TT_CHECK_GE(options.replicas, 1);
  const size_t n = static_cast<size_t>(options.replicas);

  if (options.pinned_workers && n > 0) {
    // Concurrent stepping is only legal when the replicas' pools do not
    // contend on a bounded shared budget: each pool's capacity gate and
    // charge are two separate budget calls, so two pools admitting into
    // the same bounded budget concurrently can both pass the gate for the
    // last bytes (see memory/slab_budget.h). An unbounded budget (or none)
    // only tracks attribution and is internally locked.
    const memory::SlabBudget* budget = engine_options.pool.slab_budget;
    // Bounded budgets must be stepped from one thread; see the file
    // comment in replica_set.h.
    TT_CHECK(budget == nullptr || budget->total_bytes() == 0);
  }

  // One registry and (when tracing) one ring across the whole set: the
  // replicas are one serving identity, and the Router reads replica 0's
  // attachments as the set's. Callers that pass their own keep them.
  if (engine_options.metrics == nullptr) {
    engine_options.metrics = std::make_shared<obs::Registry>();
  }
  if (engine_options.trace.enabled && engine_options.trace.ring == nullptr) {
    engine_options.trace.ring =
        std::make_shared<obs::TraceRing>(engine_options.trace.capacity);
  }

  const std::string base_label = engine_options.instance_label.empty()
                                     ? bundle_->label()
                                     : engine_options.instance_label;
  const size_t per = guarantee_bytes / n;
  const size_t rem = guarantee_bytes % n;

  replicas_.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    Replica r;
    r.label = i == 0 ? base_label : base_label + "#" + std::to_string(i);
    r.guarantee_bytes = per + (i == 0 ? rem : 0);

    genserve::GenServerOptions opts = engine_options;
    opts.instance_label = r.label;
    if (opts.pool.slab_budget != nullptr) {
      opts.pool.budget_client_name = r.label;
      opts.pool.budget_guarantee_bytes = r.guarantee_bytes;
    }
    // EncoderModel::forward replans its allocator and ping-pongs private
    // hidden buffers, so one encoder instance must not be driven from two
    // workers at once (the bundle contract). Concurrent replicas therefore
    // get their own encoder over the SAME weight storage — EncoderWeights
    // copies share tensors — while the decoder stays shared: step() is
    // const over a caller-owned workspace. Replica 0 keeps the original
    // bundle, so single-worker identity (and hot-unregister pinning
    // through it) is untouched.
    std::shared_ptr<genserve::ModelBundle> replica_bundle = bundle_;
    if (options.pinned_workers && i > 0 && bundle_->encoder != nullptr) {
      auto shadow = std::make_shared<genserve::ModelBundle>(*bundle_);
      shadow->encoder = std::make_shared<model::EncoderModel>(
          bundle_->config, bundle_->encoder->weights());
      replica_bundle = std::move(shadow);
    }
    r.server =
        std::make_unique<genserve::GenerationServer>(replica_bundle, opts);

    // Create-or-get the engine's own latency/batch histograms: the
    // router's observed-cost signal reads the same series the engine
    // publishes.
    const std::string& p = r.server->metric_prefix();
    r.step_ms = &r.server->metrics()->histogram(p + "step_ms");
    r.batch_rows = &r.server->metrics()->histogram(p + "batch_size");
    replicas_.push_back(std::move(r));
  }
  for (size_t i = 0; i < n; ++i) {
    replicas_[i].server->set_step_observer(
        [this, i](const genserve::StepStats& stats) {
          replicas_[i].last_step = stats;
          if (observer_) observer_(i, stats);
        });
  }

  if (options.pinned_workers) {
    workers_.reserve(n);
    for (size_t i = 0; i < n; ++i) {
      workers_.emplace_back([this, i] { worker_loop(i); });
    }
  }
}

ReplicaSet::~ReplicaSet() {
  if (!workers_.empty()) {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      stop_ = true;
    }
    cv_work_.notify_all();
    for (auto& w : workers_) w.join();
  }
}

genserve::GenerationServer& ReplicaSet::replica(size_t i) {
  TT_CHECK_LT(i, replicas_.size());
  return *replicas_[i].server;
}

const genserve::GenerationServer& ReplicaSet::replica(size_t i) const {
  TT_CHECK_LT(i, replicas_.size());
  return *replicas_[i].server;
}

const std::string& ReplicaSet::replica_label(size_t i) const {
  TT_CHECK_LT(i, replicas_.size());
  return replicas_[i].label;
}

size_t ReplicaSet::replica_guarantee_bytes(size_t i) const {
  TT_CHECK_LT(i, replicas_.size());
  return replicas_[i].guarantee_bytes;
}

std::vector<size_t> ReplicaSet::step_order() const {
  std::vector<size_t> order(replicas_.size());
  std::iota(order.begin(), order.end(), size_t{0});
  if (order.size() > 1) {
    std::rotate(order.begin(), order.begin() + (rr_cursor_ % order.size()),
                order.end());
    // Starved replicas step first so budget freed by a sibling's retires
    // this iteration is not re-borrowed before they admit, and among them
    // the under-guarantee ones lead — reclaimed bytes belong to the owner
    // (mirrors the cross-model step-order policy).
    std::stable_partition(order.begin(), order.end(), [this](size_t i) {
      return replicas_[i].server->scheduler().admission_blocked();
    });
    std::stable_partition(order.begin(), order.end(), [this](size_t i) {
      const Replica& r = replicas_[i];
      return r.server->scheduler().admission_blocked() &&
             r.server->pool().stats().current_device_bytes < r.guarantee_bytes;
    });
  }
  return order;
}

int ReplicaSet::step() {
  if (workers_.empty()) {
    // Single replica: no ordering to compute — keep the legacy server's
    // per-step cost (this path sits inside the multi-model hot loop).
    if (replicas_.size() == 1) {
      replicas_[0].stepped = replicas_[0].server->step();
      return replicas_[0].stepped;
    }
    const std::vector<size_t> order = step_order();
    ++rr_cursor_;
    int total = 0;
    for (size_t i : order) {
      replicas_[i].stepped = replicas_[i].server->step();
      total += replicas_[i].stepped;
    }
    return total;
  }

  // Barrier round: release every worker for one fused step, wait for all.
  {
    std::lock_guard<std::mutex> lock(mutex_);
    ++epoch_;
    done_ = 0;
  }
  cv_work_.notify_all();
  std::unique_lock<std::mutex> lock(mutex_);
  cv_done_.wait(lock, [this] { return done_ == workers_.size(); });
  int total = 0;
  for (const Replica& r : replicas_) total += r.stepped;
  return total;
}

void ReplicaSet::worker_loop(size_t i) {
  pin_to_cpu(i);
  uint64_t seen = 0;
  for (;;) {
    {
      std::unique_lock<std::mutex> lock(mutex_);
      cv_work_.wait(lock, [&] { return stop_ || epoch_ != seen; });
      if (stop_) return;
      seen = epoch_;
    }
    const int stepped = replicas_[i].server->step();
    {
      std::lock_guard<std::mutex> lock(mutex_);
      replicas_[i].stepped = stepped;
      if (++done_ == workers_.size()) cv_done_.notify_one();
    }
  }
}

bool ReplicaSet::idle() const {
  for (const Replica& r : replicas_) {
    if (!r.server->idle()) return false;
  }
  return true;
}

size_t ReplicaSet::pending_total() const {
  size_t total = 0;
  for (const Replica& r : replicas_) {
    const auto& sched = r.server->scheduler();
    total += sched.pending() + sched.requeued();
  }
  return total;
}

bool ReplicaSet::any_admission_blocked() const {
  for (const Replica& r : replicas_) {
    if (r.server->scheduler().admission_blocked()) return true;
  }
  return false;
}

bool ReplicaSet::any_starved_under_guarantee() const {
  for (const Replica& r : replicas_) {
    if (r.server->scheduler().admission_blocked() &&
        r.server->pool().stats().current_device_bytes < r.guarantee_bytes) {
      return true;
    }
  }
  return false;
}

ReplicaSignals ReplicaSet::signals(size_t i) const {
  TT_CHECK_LT(i, replicas_.size());
  const Replica& r = replicas_[i];
  const auto& sched = r.server->scheduler();
  const auto& pool = r.server->pool();

  ReplicaSignals s;
  s.queue_depth = sched.pending() + sched.requeued();
  s.active = sched.active();
  s.kv_free_blocks = free_blocks_of(pool);
  s.kv_charged_bytes = pool.charged_blocks() * pool.block_bytes();
  s.admission_blocked = sched.admission_blocked();
  if (r.step_ms->count() > 0) {
    s.step_cost_ms = r.step_ms->mean();
    const double rows =
        r.batch_rows->count() > 0 ? std::max(1.0, r.batch_rows->mean()) : 1.0;
    s.row_cost_ms = s.step_cost_ms / rows;
  }
  return s;
}

const genserve::StepStats& ReplicaSet::last_step(size_t i) const {
  TT_CHECK_LT(i, replicas_.size());
  return replicas_[i].last_step;
}

size_t ReplicaSet::demand_blocks(
    const serving::GenerationRequest& request) const {
  const auto& pool = replicas_[0].server->pool();
  const int src = static_cast<int>(request.src_tokens.size());
  if (bundle_->decoder_only()) {
    return pool.blocks_for_causal(src, request.max_new_tokens);
  }
  return pool.blocks_for(src, request.max_new_tokens);
}

std::vector<serving::GenerationResponse> ReplicaSet::take_completed() {
  std::vector<serving::GenerationResponse> out;
  for (Replica& r : replicas_) {
    auto done = r.server->take_completed();
    out.insert(out.end(), std::make_move_iterator(done.begin()),
               std::make_move_iterator(done.end()));
  }
  return out;
}

void ReplicaSet::set_step_observer(StepObserver observer) {
  observer_ = std::move(observer);
}

}  // namespace turbo::router
