// N live generation-engine replicas of one ModelBundle behind one front
// door — the unit the sharded serving layer (src/router/) scales out.
//
// One GenerationServer saturates one worker; the paper's §5 and the
// ROADMAP's "millions of users" north star both call for more engines per
// model behind an upper-level balancer. A ReplicaSet stands up `replicas`
// engines over the SAME bundle (weights shared via shared_ptr, so fan-out
// costs KV memory, not model memory): each replica gets its own
// KvCachePool — all charged against whatever shared memory::SlabBudget the
// caller wired into the base engine options, with the set's byte guarantee
// split evenly across replicas — its own scheduler, and its own identity
// in the shared metrics registry / trace ring ("name:vN" for replica 0,
// "name:vN#r" for r >= 1, so single-replica sets keep today's metric
// names bit-for-bit).
//
// Placement is not this class's job: the Router (router/router.h) decides
// which replica a request lands on; ReplicaSet only exposes the live
// signals the decision needs (queue depth, KV pressure, observed per-step
// cost) and steps every replica each iteration.
//
// Stepping modes:
//  * Sequential (default): step() runs one fused step per replica on the
//    calling thread — admission-blocked replicas first (freshly reclaimed
//    budget must not be re-borrowed by a sibling earlier in the rotation),
//    then rotation order. Replica count 1 reduces to exactly one
//    GenerationServer::step() call: bit-identical to the pre-replica
//    server.
//  * Pinned workers (options.pinned_workers): one persistent worker thread
//    per replica, best-effort pinned to a distinct CPU; step() releases
//    all workers for one fused step each and waits on the barrier.
//    Requires the pools to share no *bounded* SlabBudget (the pools'
//    capacity-gate-then-charge sequence is not atomic across pools — see
//    slab_budget.h; per-replica pool.max_bytes caps are fine, and an
//    unbounded budget only tracks attribution under its own mutex).
//
// Ownership: owns every replica engine and pins the bundle. Thread-safety:
// like GenerationServer, all mutating calls from one thread; under pinned
// workers the engines themselves are only ever touched by their own worker
// during step(), and every accessor is safe between step() calls (the
// barrier orders worker writes before the caller's reads). Step observers
// fire on the stepping thread — the replica's worker in pinned mode.
// Invariants: a submitted request is served entirely by the replica it was
// placed on (sequences never migrate replicas); every replica steps at
// most once per step() call; signals(i) reflects the state after the last
// completed step().
#pragma once

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "genserve/generation_server.h"
#include "genserve/model_bundle.h"
#include "serving/request.h"

namespace turbo::router {

// Live placement signals for one replica, assembled by ReplicaSet::signals.
struct ReplicaSignals {
  size_t queue_depth = 0;      // queued + requeued (awaiting (re)admission)
  size_t active = 0;           // sequences in the fused step batch
  size_t kv_free_blocks = 0;   // admission headroom (SIZE_MAX = unbounded)
  size_t kv_charged_bytes = 0; // bytes charged against the admission gate
  bool admission_blocked = false;  // head-of-queue admission is starved
  double step_cost_ms = 0.0;   // observed mean fused-step latency (0 = no
                               // observation yet)
  double row_cost_ms = 0.0;    // step_cost_ms per observed batch row
};

struct ReplicaSetOptions {
  int replicas = 1;
  // One persistent, CPU-pinned step worker per replica (see file comment
  // for the budget restriction this implies).
  bool pinned_workers = false;
};

class ReplicaSet {
 public:
  // `replica`: which replica produced the stats.
  using StepObserver =
      std::function<void(size_t replica, const genserve::StepStats&)>;

  // `engine_options` is the per-replica template: the caller has already
  // wired budget/metrics/trace attachments into it (as
  // MultiModelGenerationServer::register_bundle does); the set overrides
  // per-replica identity (instance_label, budget_client_name) and splits
  // `guarantee_bytes` evenly (remainder to replica 0).
  ReplicaSet(std::shared_ptr<genserve::ModelBundle> bundle,
             genserve::GenServerOptions engine_options,
             size_t guarantee_bytes, ReplicaSetOptions options = {});
  ~ReplicaSet();

  ReplicaSet(const ReplicaSet&) = delete;
  ReplicaSet& operator=(const ReplicaSet&) = delete;

  size_t size() const { return replicas_.size(); }
  const std::shared_ptr<genserve::ModelBundle>& bundle() const {
    return bundle_;
  }
  genserve::GenerationServer& replica(size_t i);
  const genserve::GenerationServer& replica(size_t i) const;
  // "name:vN" for replica 0, "name:vN#i" beyond — the engine's metric /
  // trace / budget-client identity.
  const std::string& replica_label(size_t i) const;
  size_t replica_guarantee_bytes(size_t i) const;

  // One fused step per replica (see file comment for ordering / threading).
  // Returns total sequences stepped across replicas.
  int step();

  bool idle() const;
  // Aggregates over replicas (the cross-model step-order policy consumes
  // these).
  size_t pending_total() const;   // queued + requeued, all replicas
  bool any_admission_blocked() const;
  // A replica is admission-blocked while holding less than its guarantee:
  // cross-pool reclaim runs on its behalf, and the freed bytes must reach
  // it before at-floor borrowers re-admit (the step-order signal).
  bool any_starved_under_guarantee() const;

  ReplicaSignals signals(size_t i) const;
  const genserve::StepStats& last_step(size_t i) const;

  // Worst-case KV-block demand of `request` on this set's pool geometry
  // (identical across replicas) — the router's admission-denial signal.
  size_t demand_blocks(const serving::GenerationRequest& request) const;

  // Completed responses from every replica since the last take, replica
  // order then completion order.
  std::vector<serving::GenerationResponse> take_completed();

  void set_step_observer(StepObserver observer);

 private:
  struct Replica {
    std::unique_ptr<genserve::GenerationServer> server;
    std::string label;
    size_t guarantee_bytes = 0;
    genserve::StepStats last_step;
    // Cached handles into the shared registry for the observed-cost
    // signal (created by the engine itself; same defaults).
    obs::Histogram* step_ms = nullptr;
    obs::Histogram* batch_rows = nullptr;
    int stepped = 0;  // sequences stepped in the last step() round
  };

  // Step order: admission-blocked replicas first, then rotation.
  std::vector<size_t> step_order() const;
  void worker_loop(size_t i);

  std::shared_ptr<genserve::ModelBundle> bundle_;
  std::vector<Replica> replicas_;
  StepObserver observer_;
  size_t rr_cursor_ = 0;

  // Pinned-worker barrier state (empty workers_ = sequential mode).
  std::vector<std::thread> workers_;
  std::mutex mutex_;
  std::condition_variable cv_work_;
  std::condition_variable cv_done_;
  uint64_t epoch_ = 0;
  size_t done_ = 0;
  bool stop_ = false;
};

}  // namespace turbo::router
