// SLO-aware request placement over a ReplicaSet's live signals.
//
// The Router is the decision half of the sharded serving layer: given one
// GenerationRequest and the current state of the set's replicas, pick the
// replica the request is served on. The decision consumes only live
// engine signals — KV pressure (free/charged blocks straight from each
// replica's pool), queue depth, and observed per-step cost (the engines'
// own step_ms/batch_size histograms) — plus a Nexus-style backlog model
// (serving::BacklogModel, shared vocabulary with the offline
// serving::LoadBalancer) that tracks the predicted work already placed on
// each replica in virtual time.
//
// Virtual time: `now` is the caller's iteration count (the multi-model
// step loop passes its own iteration; a bench passes its step counter),
// NOT wall clock — placement is a pure function of submitted load and
// observed costs, so routed runs replay deterministically. A request's
// charged work is its total row count (prompt + max_new) scaled by the
// chosen replica's observed per-row cost relative to the cheapest
// replica, i.e. a slower replica's backlog clears later.
//
// SLO classes come from GenerationRequest::priority via
// serving::slo_class_of:
//  * kTight    — latency-critical. Placed on the replica whose backlog
//    clears first; replicas that cannot admit the request right now
//    (head-of-queue admission starved, or fewer free KV blocks than the
//    request's worst-case demand) are skipped — the *routing-denial
//    fallback* — so a tight request never queues behind a KV-starved
//    replica while a sibling has headroom. If no replica has headroom the
//    least-loaded one takes it anyway.
//  * kStandard — least predicted backlog, no denial screening.
//  * kBatch    — throughput filler: consolidates onto the replica already
//    carrying the deepest predicted backlog (ties: most free KV blocks),
//    so batch work soaks one lane instead of poisoning every lane the
//    tight classes need.
// DispatchPolicy::kRoundRobin and kLeastLoaded ignore the class (the
// bench's baselines); kSloAware is the default.
//
// Every decision is first-class observability: router.* counters
// (routed_total, per-class routed, denial_fallbacks), per-replica routed
// counters and backlog gauges, and one kRoute instant span per placement
// (model = bundle, peer = chosen replica, batch = replica index,
// tokens = SloClass, bytes = 1 iff the denial fallback was taken) on the
// same ring as the engines' phase spans — tools/trace_report can
// attribute any request's queueing to the placement that caused it.
//
// Ownership: borrows the ReplicaSet (caller keeps it alive; the
// multi-model engine owns both). Thread-safety: single-threaded like the
// engines — place() from the serving thread only. Invariants: place()
// always returns a replica index < set.size(); the backlog model is
// charged exactly once per placement; counters and spans are emitted for
// every placement, including fallbacks.
#pragma once

#include <cstddef>
#include <memory>
#include <vector>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "router/replica_set.h"
#include "serving/request.h"
#include "serving/routing_policy.h"

namespace turbo::router {

struct RouterOptions {
  serving::DispatchPolicy policy = serving::DispatchPolicy::kSloAware;
  serving::SloPolicy slo;
  // Weigh charged work by each replica's observed per-row step cost (a
  // slower replica's backlog clears later). The observation is wall
  // clock, so placements can differ run to run on homogeneous replicas
  // whose means jitter; benches that assert placement determinism turn
  // this off (every replica then costs 1x and placement is a pure
  // function of the trace).
  bool use_observed_cost = true;
};

// One placement outcome (also what the property tests assert on).
struct RouteDecision {
  size_t replica = 0;
  serving::SloClass slo = serving::SloClass::kStandard;
  bool fallback = false;  // tight-SLO denial fallback rerouted the request
  double ready_at = 0.0;  // chosen replica's backlog-clear instant at `now`
  double exec = 0.0;      // predicted work charged to the replica
};

class Router {
 public:
  // Metrics handles come from the set's shared registry (replica 0's);
  // spans go to the engines' ring when tracing is on.
  Router(ReplicaSet& set, RouterOptions options = {});

  const RouterOptions& options() const { return options_; }

  // Decide the replica for `request` at virtual time `now` and charge its
  // predicted work to that replica's backlog. Does NOT submit — the
  // caller owns submission (and its completion callback) so the decision
  // stays usable from both the multi-model server and benches.
  RouteDecision place(const serving::GenerationRequest& request, double now);

  // Predicted outstanding work on replica `i` at `now` (bench/test view).
  double backlog(size_t i, double now) const {
    return backlog_.outstanding(i, now);
  }

 private:
  size_t pick_slo_aware(const serving::GenerationRequest& request,
                        serving::SloClass klass,
                        const std::vector<ReplicaSignals>& signals,
                        double now, bool* fallback) const;

  ReplicaSet& set_;
  RouterOptions options_;
  serving::BacklogModel backlog_;
  size_t rr_cursor_ = 0;

  std::shared_ptr<obs::TraceRing> ring_;
  obs::Counter* c_routed_ = nullptr;
  obs::Counter* c_fallbacks_ = nullptr;
  obs::Counter* c_class_[3] = {nullptr, nullptr, nullptr};
  struct ReplicaMetrics {
    obs::Counter* routed = nullptr;
    obs::Gauge* backlog = nullptr;
  };
  std::vector<ReplicaMetrics> per_replica_;
};

}  // namespace turbo::router
