// Metrics registry: named counters, gauges and log-bucketed latency
// histograms, publishable from the serving hot path.
//
// The serving stack previously grew one-off counters in every layer
// (scheduler lifetime totals, async-shell served/iteration caches,
// per-engine served counts) with inconsistent lifetimes — a draining
// engine took its counts down with it. The registry is the single,
// process-lifetime home: engines publish into it with relaxed atomics,
// any thread reads it without coordination, and exports (JSON,
// Prometheus text) serialize one coherent view.
//
// Histograms are log-bucketed: bucket upper bounds grow geometrically, so
// 96 buckets span sub-microsecond to ~half an hour (in µs) with bounded
// relative error, and p50/p90/p99/p999 come from linear interpolation
// inside the owning bucket — no sample retention, O(1) record.
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace turbo::obs {

// Monotonic counter. add() is a relaxed atomic increment — safe from any
// thread, cheap enough for per-step publishing.
class Counter {
 public:
  void add(uint64_t n = 1) { value_.fetch_add(n, std::memory_order_relaxed); }
  uint64_t value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> value_{0};
};

// Last-write-wins instantaneous value (pool pressure, batch size).
class Gauge {
 public:
  void set(double v) { value_.store(v, std::memory_order_relaxed); }
  double value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<double> value_{0.0};
};

// Log-bucketed histogram. Values are non-negative (latencies in µs, sizes
// in blocks); negatives clamp to zero. Thread-safe: record() touches only
// relaxed atomics; quantile()/count()/sum() read a live (momentarily
// inconsistent across buckets, individually exact) view.
class Histogram {
 public:
  struct Options {
    double first_bound = 1.0;  // upper bound of the first finite bucket
    double growth = 1.25;      // geometric bucket growth factor (> 1)
    int buckets = 96;          // finite buckets (+ implicit overflow)
  };

  // Two constructors instead of one defaulted argument: a `= {}` default
  // would need Options' member initializers before the enclosing class is
  // complete, which GCC rejects.
  Histogram();
  explicit Histogram(Options options);

  void record(double value);

  uint64_t count() const { return count_.load(std::memory_order_relaxed); }
  double sum() const { return sum_.load(std::memory_order_relaxed); }
  double mean() const;
  double min() const;  // 0 when empty
  double max() const;  // 0 when empty

  // Quantile estimate by linear interpolation inside the bucket holding
  // rank q * count: error is bounded by the bucket width (growth - 1
  // relative), and the result is clamped to the observed [min, max].
  // q in [0, 1]; returns 0 when empty.
  double quantile(double q) const;

  // Bucket upper bound / count views, for exports and tests.
  const std::vector<double>& bounds() const { return bounds_; }
  uint64_t bucket_count(size_t i) const {
    return counts_[i].load(std::memory_order_relaxed);
  }

 private:
  size_t bucket_index(double value) const;

  Options options_;
  std::vector<double> bounds_;  // bounds_[i] = upper bound of bucket i
  // counts_ has bounds_.size() + 1 entries; the last is the overflow
  // bucket [bounds_.back(), inf).
  std::vector<std::atomic<uint64_t>> counts_;
  std::atomic<uint64_t> count_{0};
  std::atomic<double> sum_{0.0};
  std::atomic<double> min_{0.0};
  std::atomic<double> max_{0.0};
};

// Point-in-time histogram summary (export helper).
struct HistogramSnapshot {
  uint64_t count = 0;
  double sum = 0, mean = 0, min = 0, max = 0;
  double p50 = 0, p90 = 0, p99 = 0, p999 = 0;
};
HistogramSnapshot summarize(const Histogram& h);

// Ownership: owns every metric it creates; returned references stay valid
// for the registry's lifetime (metrics are never removed).
// Thread-safety: creation (counter()/gauge()/histogram()) takes a mutex;
// the returned metric objects are lock-free to use. Callers on hot paths
// resolve names once and cache the references. Exports are safe from any
// thread and serialize a live view.
// Invariants: one metric per name — re-requesting a name returns the same
// object; requesting it as a different type throws CheckError.
class Registry {
 public:
  Counter& counter(const std::string& name);
  Gauge& gauge(const std::string& name);
  Histogram& histogram(const std::string& name,
                       Histogram::Options options = {});

  // Value reads by name; zero when the metric does not exist (snapshot
  // convenience for views over the registry).
  uint64_t counter_value(const std::string& name) const;
  double gauge_value(const std::string& name) const;

  // {"counters": {...}, "gauges": {...}, "histograms": {name: {count,
  // sum, mean, min, max, p50, p90, p99, p999}}}, keys sorted.
  std::string to_json() const;
  // Prometheus text exposition: names sanitized ([^a-zA-Z0-9_:] -> '_'),
  // histograms exported as summaries (quantile-labelled gauges + _sum +
  // _count).
  std::string to_prometheus() const;

 private:
  mutable std::mutex mutex_;
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
};

}  // namespace turbo::obs
