// Step-level tracing: typed spans in a lock-free, fixed-capacity ring.
//
// The serving stack now has five interacting mechanisms (iteration-level
// scheduling, CoW prefix sharing, paged decode, preempt-and-requeue,
// multi-model slab borrowing); a p99 regression cannot be attributed to
// queueing vs. prefill vs. preemption churn from coarse aggregates alone.
// Following PerFlow's pass-based bottleneck analysis and Orca's
// iteration-level view, the engines record one span per *phase per step*
// (plus per-sequence lifecycle events) and the analysis happens offline
// over a drained span stream (obs/passes.h) — no sampling, no wall-clock
// guessing.
//
// Design constraints, in order:
//  1. The fused-step hot path must not notice tracing when it is off: the
//     recording sites are gated on one branch (Tracer::enabled), and no
//     clock is read on the disabled path.
//  2. Recording must never block serving when it is on: TraceRing is
//     lock-free (writers claim slots by CAS and publish with a per-slot
//     seqlock), overwrites oldest spans when full, and drops a span
//     outright in the rare case two writers lap onto one slot mid-write —
//     tracing sheds load, serving never does.
//  3. Draining must be safe while writers run: snapshot() validates every
//     slot's seqlock stamp before and after the copy, so a drained span is
//     never torn; spans being overwritten concurrently are skipped. The
//     payload copy itself goes through relaxed word-sized atomics, keeping
//     the race-free contract literal (and the ring TSan-clean) rather than
//     "benign".
#pragma once

#include <array>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstring>
#include <memory>
#include <string_view>
#include <vector>

namespace turbo::obs {

// Span taxonomy. Engine-level phase spans (seq == -1) tile one scheduler
// iteration; sequence-level spans (seq >= 0) mark lifecycle transitions.
enum class SpanKind : uint8_t {
  kAdmit = 0,        // phase: batch formation | seq: enqueue -> admitted
  kEncodePrefill,    // phase: encoder pass over this step's cold admits
  kSchedule,         // phase: growth + grow-or-preempt (prepare_step)
  kDecodeStep,       // phase: the fused decode step (batch, tokens)
  kPreempt,          // seq event: victim parked (tokens = parked so far)
  kResume,           // seq span: parked -> re-admitted (tokens = replayed)
  kEvict,            // seq event: parked cross share dropped
  kReclaim,          // cross-model: budget shed (bytes; model = starved,
                     // peer = donor)
  kStream,           // phase: argmax + callbacks + retire | seq: first token
  kRadixHit,         // seq event: admit/resume adopted a cached radix
                     // prefix (tokens = prefix rows skipped)
  kRadixEvict,       // pool event: radix-tier LRU eviction(s) reclaimed
                     // blocks (tokens = evictions this step)
  kPrefillChunk,     // seq event: a multi-row prefill/replay chunk ran in
                     // the fused step (tokens = rows in the chunk)
  kRoute,            // seq event: router placed the request on a replica
                     // (model = bundle, peer = chosen replica label,
                     // batch = replica index, tokens = SloClass,
                     // bytes = 1 when the denial fallback was taken)
  kCount,            // number of kinds (not a span)
};

inline constexpr int kSpanKinds = static_cast<int>(SpanKind::kCount);

// Stable short name ("admit", "prefill", "schedule", "decode", ...).
const char* span_kind_name(SpanKind kind);
// Inverse of span_kind_name; returns false on an unknown name.
bool span_kind_from_name(std::string_view name, SpanKind* out);

inline constexpr size_t kTraceNameLen = 24;  // truncated model labels

// One recorded span. Trivially copyable by design: the ring publishes and
// drains spans through word-sized atomic copies.
struct TraceSpan {
  SpanKind kind = SpanKind::kAdmit;
  int32_t model_version = 0;
  int64_t seq = -1;          // sequence (request) id; -1 = engine phase span
  int64_t iteration = 0;     // engine iteration the span belongs to
  int32_t batch = 0;         // decode/schedule: batch size; admit: admitted
  int32_t tokens = 0;        // decode: tokens emitted; resume: replayed; ...
  uint64_t bytes = 0;        // reclaim: slab bytes freed
  uint64_t start_ticks = 0;  // monotonic ns (obs::now_ticks clock)
  uint64_t end_ticks = 0;    // == start_ticks for instant events
  char model[kTraceNameLen] = {};  // owning model label ("name:vN")
  char peer[kTraceNameLen] = {};   // reclaim: donor model label
};
static_assert(std::is_trivially_copyable_v<TraceSpan>);

inline double span_ms(const TraceSpan& s) {
  return static_cast<double>(s.end_ticks - s.start_ticks) * 1e-6;
}

// Monotonic timestamp in nanoseconds. One clock for every engine of a
// process, so multi-model timelines line up without translation.
inline uint64_t now_ticks() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

// Copy a label into a fixed span name field, truncating to fit.
void copy_name(char (&dst)[kTraceNameLen], std::string_view src);

// Ownership: owns its slot array; shared by engines via shared_ptr (the
// multi-model server hands one ring to every engine so the timeline is
// global).
// Thread-safety: record() is lock-free and safe from any number of
// threads; snapshot() is safe concurrently with record() from any thread
// and never returns a torn span. capacity()/total_recorded()/dropped()
// are safe anywhere.
// Invariants: at most capacity() spans are resident; record() never
// blocks and never waits — when the ring laps a slot another writer is
// still filling, the newer span is dropped and counted instead;
// snapshot() returns fully-published spans in record order (oldest
// first).
class TraceRing {
 public:
  // `capacity` is rounded up to a power of two, minimum 2.
  explicit TraceRing(size_t capacity = 1 << 15);

  TraceRing(const TraceRing&) = delete;
  TraceRing& operator=(const TraceRing&) = delete;

  // Lock-free append with overwrite-oldest semantics.
  void record(const TraceSpan& span);

  // Consistent drain: every returned span was fully published and is
  // returned exactly as written, oldest ticket first. Spans concurrently
  // being overwritten are skipped, not torn. Non-destructive.
  std::vector<TraceSpan> snapshot() const;

  size_t capacity() const { return slots_.size(); }
  // Tickets issued over the ring's lifetime (recorded + dropped).
  uint64_t total_recorded() const {
    return head_.load(std::memory_order_relaxed);
  }
  // Spans abandoned because the ring lapped onto a slot mid-write.
  uint64_t dropped() const { return dropped_.load(std::memory_order_relaxed); }

 private:
  // Slot seqlock encoding: 0 = never written; 2t+1 = ticket t mid-write;
  // 2t+2 = ticket t published. A reader accepts a slot only when it
  // observes 2t+2 for the ticket it expects, before and after the copy.
  static constexpr size_t kSpanWords = (sizeof(TraceSpan) + 7) / 8;
  struct Slot {
    std::atomic<uint64_t> stamp{0};
    std::array<std::atomic<uint64_t>, kSpanWords> words{};
  };

  std::vector<Slot> slots_;
  size_t mask_;
  std::atomic<uint64_t> head_{0};
  std::atomic<uint64_t> dropped_{0};
};

// Per-engine recording handle: a ring reference plus the engine's model
// identity, stamped onto every span. Default-constructed tracers are
// disabled; every recording site is one `if (tracer)` branch away from
// free when tracing is off.
//
// Thread-safety: span()/instant() are as safe as TraceRing::record (the
// identity fields are immutable after construction); set_iteration is
// owner-thread only, like the engine step loop that calls it.
class Tracer {
 public:
  Tracer() = default;
  Tracer(std::shared_ptr<TraceRing> ring, std::string_view model,
         int32_t version);

  bool enabled() const { return ring_ != nullptr; }
  explicit operator bool() const { return enabled(); }

  // The iteration stamped on subsequent spans (the server sets it once per
  // step; scheduler-side events inherit it).
  void set_iteration(int64_t iteration) { iteration_ = iteration; }
  int64_t iteration() const { return iteration_; }

  void span(SpanKind kind, uint64_t start_ticks, uint64_t end_ticks,
            int64_t seq = -1, int32_t batch = 0, int32_t tokens = 0,
            uint64_t bytes = 0);
  void instant(SpanKind kind, int64_t seq, int32_t tokens = 0);

  const std::shared_ptr<TraceRing>& ring() const { return ring_; }

 private:
  std::shared_ptr<TraceRing> ring_;
  int64_t iteration_ = 0;
  int32_t version_ = 0;
  char model_[kTraceNameLen] = {};
};

// Engine tracing configuration (GenServerOptions::trace).
struct TraceConfig {
  // Master switch: when false (default) no ring exists and every recording
  // site reduces to one never-taken branch.
  bool enabled = false;
  // Ring capacity when the engine creates its own ring.
  size_t capacity = 1 << 15;
  // Share an existing ring instead (multi-model serving: one ring, global
  // timeline). Implies enabled.
  std::shared_ptr<TraceRing> ring;
};

}  // namespace turbo::obs
