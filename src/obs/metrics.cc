#include "obs/metrics.h"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "common/check.h"

namespace turbo::obs {

// ---------------------------------------------------------------------------
// Histogram
// ---------------------------------------------------------------------------

Histogram::Histogram() : Histogram(Options{}) {}

Histogram::Histogram(Options options) : options_(options) {
  TT_CHECK_GT(options_.first_bound, 0.0);
  TT_CHECK_GT(options_.growth, 1.0);
  TT_CHECK_GE(options_.buckets, 2);
  bounds_.resize(static_cast<size_t>(options_.buckets));
  double b = options_.first_bound;
  for (auto& bound : bounds_) {
    bound = b;
    b *= options_.growth;
  }
  counts_ = std::vector<std::atomic<uint64_t>>(bounds_.size() + 1);
}

size_t Histogram::bucket_index(double value) const {
  // Buckets are half-open: bucket i covers [bounds_[i-1], bounds_[i]),
  // bucket 0 covers [0, first_bound), the extra last bucket overflows.
  const auto it = std::upper_bound(bounds_.begin(), bounds_.end(), value);
  return static_cast<size_t>(it - bounds_.begin());
}

void Histogram::record(double value) {
  if (!(value > 0.0)) value = 0.0;  // clamp negatives and NaN
  counts_[bucket_index(value)].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  sum_.fetch_add(value, std::memory_order_relaxed);
  double seen = min_.load(std::memory_order_relaxed);
  // First record initializes min; afterwards standard CAS-min. count_ was
  // bumped above, so "empty" is keyed on the pre-update counter.
  if (count_.load(std::memory_order_relaxed) == 1) {
    min_.store(value, std::memory_order_relaxed);
  } else {
    while (value < seen &&
           !min_.compare_exchange_weak(seen, value,
                                       std::memory_order_relaxed)) {
    }
  }
  double high = max_.load(std::memory_order_relaxed);
  while (value > high && !max_.compare_exchange_weak(
                             high, value, std::memory_order_relaxed)) {
  }
}

double Histogram::mean() const {
  const uint64_t n = count();
  return n == 0 ? 0.0 : sum() / static_cast<double>(n);
}

double Histogram::min() const { return min_.load(std::memory_order_relaxed); }
double Histogram::max() const { return max_.load(std::memory_order_relaxed); }

double Histogram::quantile(double q) const {
  q = std::clamp(q, 0.0, 1.0);
  const uint64_t total = count();
  if (total == 0) return 0.0;
  // Rank in [1, total]; walk buckets until the cumulative count covers it,
  // then interpolate linearly inside the owning bucket.
  const double rank = std::max(1.0, q * static_cast<double>(total));
  double cum = 0.0;
  for (size_t i = 0; i < counts_.size(); ++i) {
    const double c = static_cast<double>(bucket_count(i));
    if (c == 0.0) continue;
    if (cum + c >= rank) {
      const double lower = i == 0 ? 0.0 : bounds_[i - 1];
      // The overflow bucket has no finite upper bound; the observed max
      // is the tightest honest one.
      const double upper = i < bounds_.size() ? bounds_[i] : max();
      const double frac = (rank - cum) / c;
      const double v = lower + frac * (std::max(upper, lower) - lower);
      return std::clamp(v, min(), max());
    }
    cum += c;
  }
  return max();
}

HistogramSnapshot summarize(const Histogram& h) {
  HistogramSnapshot s;
  s.count = h.count();
  s.sum = h.sum();
  s.mean = h.mean();
  s.min = h.min();
  s.max = h.max();
  s.p50 = h.quantile(0.50);
  s.p90 = h.quantile(0.90);
  s.p99 = h.quantile(0.99);
  s.p999 = h.quantile(0.999);
  return s;
}

// ---------------------------------------------------------------------------
// Registry
// ---------------------------------------------------------------------------

Counter& Registry::counter(const std::string& name) {
  std::lock_guard<std::mutex> lock(mutex_);
  TT_CHECK_MSG(gauges_.find(name) == gauges_.end() &&
                   histograms_.find(name) == histograms_.end(),
               "metric '" << name << "' already registered as another type");
  auto& slot = counters_[name];
  if (!slot) slot = std::make_unique<Counter>();
  return *slot;
}

Gauge& Registry::gauge(const std::string& name) {
  std::lock_guard<std::mutex> lock(mutex_);
  TT_CHECK_MSG(counters_.find(name) == counters_.end() &&
                   histograms_.find(name) == histograms_.end(),
               "metric '" << name << "' already registered as another type");
  auto& slot = gauges_[name];
  if (!slot) slot = std::make_unique<Gauge>();
  return *slot;
}

Histogram& Registry::histogram(const std::string& name,
                               Histogram::Options options) {
  std::lock_guard<std::mutex> lock(mutex_);
  TT_CHECK_MSG(counters_.find(name) == counters_.end() &&
                   gauges_.find(name) == gauges_.end(),
               "metric '" << name << "' already registered as another type");
  auto& slot = histograms_[name];
  if (!slot) slot = std::make_unique<Histogram>(options);
  return *slot;
}

uint64_t Registry::counter_value(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = counters_.find(name);
  return it == counters_.end() ? 0 : it->second->value();
}

double Registry::gauge_value(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = gauges_.find(name);
  return it == gauges_.end() ? 0.0 : it->second->value();
}

namespace {

void json_escape(std::ostringstream& os, const std::string& s) {
  os << '"';
  for (const char c : s) {
    if (c == '"' || c == '\\') os << '\\';
    os << c;
  }
  os << '"';
}

std::string prom_name(const std::string& name) {
  std::string out = name;
  for (char& c : out) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_' || c == ':';
    if (!ok) c = '_';
  }
  if (!out.empty() && out[0] >= '0' && out[0] <= '9') out.insert(0, 1, '_');
  return out;
}

}  // namespace

std::string Registry::to_json() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::ostringstream os;
  os.precision(6);
  os << std::fixed;
  os << "{\"counters\":{";
  bool first = true;
  for (const auto& [name, c] : counters_) {
    if (!first) os << ',';
    first = false;
    json_escape(os, name);
    os << ':' << c->value();
  }
  os << "},\"gauges\":{";
  first = true;
  for (const auto& [name, g] : gauges_) {
    if (!first) os << ',';
    first = false;
    json_escape(os, name);
    os << ':' << g->value();
  }
  os << "},\"histograms\":{";
  first = true;
  for (const auto& [name, h] : histograms_) {
    if (!first) os << ',';
    first = false;
    const HistogramSnapshot s = summarize(*h);
    json_escape(os, name);
    os << ":{\"count\":" << s.count << ",\"sum\":" << s.sum
       << ",\"mean\":" << s.mean << ",\"min\":" << s.min
       << ",\"max\":" << s.max << ",\"p50\":" << s.p50 << ",\"p90\":" << s.p90
       << ",\"p99\":" << s.p99 << ",\"p999\":" << s.p999 << '}';
  }
  os << "}}";
  return os.str();
}

std::string Registry::to_prometheus() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::ostringstream os;
  os.precision(6);
  os << std::fixed;
  for (const auto& [name, c] : counters_) {
    const std::string n = prom_name(name);
    os << "# TYPE " << n << " counter\n" << n << ' ' << c->value() << '\n';
  }
  for (const auto& [name, g] : gauges_) {
    const std::string n = prom_name(name);
    os << "# TYPE " << n << " gauge\n" << n << ' ' << g->value() << '\n';
  }
  for (const auto& [name, h] : histograms_) {
    const std::string n = prom_name(name);
    const HistogramSnapshot s = summarize(*h);
    os << "# TYPE " << n << " summary\n";
    os << n << "{quantile=\"0.5\"} " << s.p50 << '\n';
    os << n << "{quantile=\"0.9\"} " << s.p90 << '\n';
    os << n << "{quantile=\"0.99\"} " << s.p99 << '\n';
    os << n << "{quantile=\"0.999\"} " << s.p999 << '\n';
    os << n << "_sum " << s.sum << '\n';
    os << n << "_count " << s.count << '\n';
  }
  return os.str();
}

}  // namespace turbo::obs
