// Offline analysis passes over a drained trace.
//
// PerFlow-style: the runtime records raw spans (obs/trace.h), and
// attribution happens after the fact as passes over the span stream —
// each pass answers one "where did the time go" question the aggregate
// counters cannot:
//
//  * attribute_phases — which phase (admit / prefill / schedule / decode /
//    stream) each step's wall-time went to, overall and in the p99 tail.
//  * queueing_breakdown — arrival -> admit -> first-token decomposition of
//    time-to-first-token, per sequence.
//  * detect_cascades — preemption cascades: runs of consecutive iterations
//    that kept parking victims, their victim chains, and what the replays
//    cost.
//  * reclaim_timeline — cross-model budget sheds (who was starved, who
//    donated, how many bytes), in timeline order.
//
// Passes are pure functions of the span vector: they read a snapshot (or
// a trace file via obs/trace_io.h) and never touch the live ring.
#pragma once

#include <string>
#include <vector>

#include "obs/trace.h"

namespace turbo::obs {

// Per-phase share of step wall-time.
struct PhaseStat {
  SpanKind kind = SpanKind::kAdmit;
  size_t count = 0;       // spans of this kind
  double total_ms = 0;    // summed duration
  double p50_ms = 0;      // per-span duration quantiles
  double p99_ms = 0;
  double fraction = 0;      // share of summed step wall-time
  double tail_fraction = 0; // share of wall-time inside p99-tail iterations
};

struct PhaseAttribution {
  size_t iterations = 0;    // distinct (model, iteration) steps seen
  double step_wall_ms = 0;  // sum over steps of (last phase end - first
                            // phase start)
  double covered_ms = 0;    // sum of top-level phase durations
  double coverage = 0;      // covered_ms / step_wall_ms (gap = glue code)
  double iter_p50_ms = 0;   // per-step wall-time quantiles
  double iter_p99_ms = 0;
  // The phase holding the largest share of tail-step time (the "what do I
  // fix for p99" answer). kCount when the trace had no phase spans.
  SpanKind dominant_tail_phase = SpanKind::kCount;
  std::vector<PhaseStat> phases;  // every kind present, by total_ms desc
};

// Attribution over engine-level phase spans (seq == -1). Sequence-level
// spans contribute event counts to `phases` but never to coverage — they
// nest inside the phases and would double-count.
PhaseAttribution attribute_phases(const std::vector<TraceSpan>& spans);

// Arrival -> admit -> first-token decomposition, over sequences for which
// the trace holds both a per-seq admit span and a first-token event.
struct QueueingBreakdown {
  size_t sequences = 0;
  double queue_p50_ms = 0;        // arrival -> admitted (queue wait)
  double queue_p99_ms = 0;
  double admit_to_first_p50_ms = 0;  // admitted -> first streamed token
  double admit_to_first_p99_ms = 0;
  double first_token_p50_ms = 0;  // arrival -> first token (the SLO number)
  double first_token_p99_ms = 0;
};
QueueingBreakdown queueing_breakdown(const std::vector<TraceSpan>& spans);

// A run of consecutive iterations (per model) in which victims kept being
// parked; the chain and its replay bill.
struct PreemptionCascade {
  std::string model;
  int64_t first_iteration = 0;
  int64_t last_iteration = 0;
  std::vector<int64_t> victims;  // sequence ids in park order (repeats =
                                 // re-preempted while resuming)
  size_t preemptions = 0;
  size_t evictions = 0;          // parked cross shares dropped in the run
  int64_t replayed_tokens = 0;   // tokens re-derived by the victims' resumes
  double parked_ms = 0;          // summed parked time across those resumes
};
// Cascades sorted by replay cost (replayed_tokens desc). `max_gap` joins
// preemption iterations no further than that many iterations apart.
std::vector<PreemptionCascade> detect_cascades(
    const std::vector<TraceSpan>& spans, int64_t max_gap = 1);

// One cross-model budget shed.
struct ReclaimEvent {
  double at_ms = 0;  // offset from the first span in the trace
  std::string starved;  // model whose guarantee forced the reclaim
  std::string donor;    // model that shed borrowed slabs
  uint64_t bytes = 0;
  int64_t iteration = 0;
};
std::vector<ReclaimEvent> reclaim_timeline(const std::vector<TraceSpan>& spans);

// Human-readable summary of all passes (phase table, queueing breakdown,
// top cascades, reclaim totals) — what the demo prints at end of run and
// tools/trace_report builds on.
std::string render_trace_summary(const std::vector<TraceSpan>& spans);

}  // namespace turbo::obs
