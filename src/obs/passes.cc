#include "obs/passes.h"

#include <algorithm>
#include <cstdio>
#include <map>
#include <sstream>
#include <unordered_map>

namespace turbo::obs {

namespace {

// Kinds that tile a step when recorded at engine level (seq == -1).
bool is_phase_kind(SpanKind kind) {
  switch (kind) {
    case SpanKind::kAdmit:
    case SpanKind::kEncodePrefill:
    case SpanKind::kSchedule:
    case SpanKind::kDecodeStep:
    case SpanKind::kStream:
      return true;
    default:
      return false;
  }
}

// Engine-level phase spans tile one step; everything else is an event or
// a sequence-lifecycle span.
bool is_phase_span(const TraceSpan& s) {
  return s.seq < 0 && is_phase_kind(s.kind);
}

double quantile_sorted(const std::vector<double>& sorted, double q) {
  if (sorted.empty()) return 0.0;
  const double rank = q * static_cast<double>(sorted.size() - 1);
  const size_t lo = static_cast<size_t>(rank);
  const size_t hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return sorted[lo] + frac * (sorted[hi] - sorted[lo]);
}

struct StepKey {
  std::string model;
  int32_t version;
  int64_t iteration;
  bool operator<(const StepKey& o) const {
    if (model != o.model) return model < o.model;
    if (version != o.version) return version < o.version;
    return iteration < o.iteration;
  }
};

}  // namespace

PhaseAttribution attribute_phases(const std::vector<TraceSpan>& spans) {
  PhaseAttribution out;

  struct Step {
    uint64_t start = UINT64_MAX;
    uint64_t end = 0;
    double covered_ms = 0;
    double by_kind_ms[kSpanKinds] = {};
  };
  std::map<StepKey, Step> steps;
  struct Kind {
    size_t count = 0;
    double total_ms = 0;
    std::vector<double> durations_ms;
  };
  Kind kinds[kSpanKinds];

  for (const TraceSpan& s : spans) {
    const bool phase = is_phase_span(s);
    // Sequence-level spans of phase kinds (per-seq admit = queue wait,
    // per-seq stream = first token) belong to the queueing pass; folding
    // their durations into the phase table would swamp it with wait time
    // that is not step work. Lifecycle kinds (preempt/resume/evict/
    // reclaim) are inherently sequence-level and stay.
    if (!phase && is_phase_kind(s.kind)) continue;
    Kind& k = kinds[static_cast<int>(s.kind)];
    ++k.count;
    const double ms = span_ms(s);
    k.total_ms += ms;
    k.durations_ms.push_back(ms);
    if (!phase) continue;
    Step& step = steps[StepKey{s.model, s.model_version, s.iteration}];
    step.start = std::min(step.start, s.start_ticks);
    step.end = std::max(step.end, s.end_ticks);
    step.covered_ms += ms;
    step.by_kind_ms[static_cast<int>(s.kind)] += ms;
  }

  std::vector<double> walls;
  walls.reserve(steps.size());
  for (const auto& [key, step] : steps) {
    const double wall =
        static_cast<double>(step.end - step.start) * 1e-6;
    walls.push_back(wall);
    out.step_wall_ms += wall;
    out.covered_ms += step.covered_ms;
  }
  out.iterations = steps.size();
  out.coverage = out.step_wall_ms > 0 ? out.covered_ms / out.step_wall_ms : 0;
  std::sort(walls.begin(), walls.end());
  out.iter_p50_ms = quantile_sorted(walls, 0.50);
  out.iter_p99_ms = quantile_sorted(walls, 0.99);

  // Tail attribution: the steps at or beyond the p99 wall-time are the
  // tail; their per-phase time answers "which phase dominates tail
  // latency".
  double tail_by_kind[kSpanKinds] = {};
  double tail_total = 0;
  for (const auto& [key, step] : steps) {
    const double wall = static_cast<double>(step.end - step.start) * 1e-6;
    if (wall < out.iter_p99_ms) continue;
    tail_total += step.covered_ms;
    for (int k = 0; k < kSpanKinds; ++k) tail_by_kind[k] += step.by_kind_ms[k];
  }

  double best_tail = -1.0;
  for (int k = 0; k < kSpanKinds; ++k) {
    if (kinds[k].count == 0) continue;
    PhaseStat stat;
    stat.kind = static_cast<SpanKind>(k);
    stat.count = kinds[k].count;
    stat.total_ms = kinds[k].total_ms;
    std::sort(kinds[k].durations_ms.begin(), kinds[k].durations_ms.end());
    stat.p50_ms = quantile_sorted(kinds[k].durations_ms, 0.50);
    stat.p99_ms = quantile_sorted(kinds[k].durations_ms, 0.99);
    stat.fraction = out.step_wall_ms > 0 && is_phase_kind(stat.kind)
                        ? stat.total_ms / out.step_wall_ms
                        : 0;
    stat.tail_fraction = tail_total > 0 ? tail_by_kind[k] / tail_total : 0;
    if (tail_by_kind[k] > best_tail) {
      best_tail = tail_by_kind[k];
      out.dominant_tail_phase = stat.kind;
    }
    out.phases.push_back(stat);
  }
  std::sort(out.phases.begin(), out.phases.end(),
            [](const PhaseStat& a, const PhaseStat& b) {
              return a.total_ms > b.total_ms;
            });
  if (best_tail <= 0.0 && !out.phases.empty()) {
    out.dominant_tail_phase = out.phases.front().kind;
  }
  return out;
}

QueueingBreakdown queueing_breakdown(const std::vector<TraceSpan>& spans) {
  QueueingBreakdown out;
  struct Seq {
    uint64_t arrival = 0, admitted = 0, first_token = 0;
    bool has_admit = false, has_first = false;
  };
  std::unordered_map<int64_t, Seq> seqs;
  for (const TraceSpan& s : spans) {
    if (s.seq < 0) continue;
    Seq& q = seqs[s.seq];
    if (s.kind == SpanKind::kAdmit && !q.has_admit) {
      q.arrival = s.start_ticks;
      q.admitted = s.end_ticks;
      q.has_admit = true;
    } else if (s.kind == SpanKind::kStream && !q.has_first) {
      q.first_token = s.start_ticks;
      q.has_first = true;
    }
  }
  std::vector<double> queue_ms, admit_first_ms, ttft_ms;
  for (const auto& [id, q] : seqs) {
    if (!q.has_admit || !q.has_first) continue;
    queue_ms.push_back(static_cast<double>(q.admitted - q.arrival) * 1e-6);
    admit_first_ms.push_back(
        q.first_token >= q.admitted
            ? static_cast<double>(q.first_token - q.admitted) * 1e-6
            : 0.0);
    ttft_ms.push_back(static_cast<double>(q.first_token - q.arrival) * 1e-6);
  }
  out.sequences = queue_ms.size();
  std::sort(queue_ms.begin(), queue_ms.end());
  std::sort(admit_first_ms.begin(), admit_first_ms.end());
  std::sort(ttft_ms.begin(), ttft_ms.end());
  out.queue_p50_ms = quantile_sorted(queue_ms, 0.50);
  out.queue_p99_ms = quantile_sorted(queue_ms, 0.99);
  out.admit_to_first_p50_ms = quantile_sorted(admit_first_ms, 0.50);
  out.admit_to_first_p99_ms = quantile_sorted(admit_first_ms, 0.99);
  out.first_token_p50_ms = quantile_sorted(ttft_ms, 0.50);
  out.first_token_p99_ms = quantile_sorted(ttft_ms, 0.99);
  return out;
}

std::vector<PreemptionCascade> detect_cascades(
    const std::vector<TraceSpan>& spans, int64_t max_gap) {
  // Preempt/evict events grouped per model, then joined into runs of
  // nearby iterations; each run's replay bill comes from the resume spans
  // of its victims (a resume records how many tokens it re-derived and
  // how long the victim sat parked).
  struct Event {
    int64_t iteration;
    int64_t seq;
    SpanKind kind;
  };
  std::map<std::string, std::vector<Event>> by_model;
  struct Replay {
    int64_t tokens = 0;
    double parked_ms = 0;
    size_t resumes = 0;
  };
  std::unordered_map<int64_t, Replay> replays;  // by victim seq id
  for (const TraceSpan& s : spans) {
    if (s.kind == SpanKind::kPreempt || s.kind == SpanKind::kEvict) {
      by_model[s.model].push_back(Event{s.iteration, s.seq, s.kind});
    } else if (s.kind == SpanKind::kResume) {
      Replay& r = replays[s.seq];
      r.tokens += s.tokens;
      r.parked_ms += span_ms(s);
      ++r.resumes;
    }
  }

  std::vector<PreemptionCascade> out;
  for (auto& [model, events] : by_model) {
    std::stable_sort(events.begin(), events.end(),
                     [](const Event& a, const Event& b) {
                       return a.iteration < b.iteration;
                     });
    PreemptionCascade cur;
    const auto flush = [&] {
      if (cur.preemptions == 0 && cur.evictions == 0) return;
      // Replay accounting: every victim's resumes, averaged over how many
      // cascades preempted it so repeated victims are not double-billed.
      for (const int64_t v : cur.victims) {
        const auto it = replays.find(v);
        if (it == replays.end() || it->second.resumes == 0) continue;
        cur.replayed_tokens +=
            it->second.tokens / static_cast<int64_t>(it->second.resumes);
        cur.parked_ms +=
            it->second.parked_ms / static_cast<double>(it->second.resumes);
      }
      out.push_back(std::move(cur));
      cur = PreemptionCascade{};
    };
    for (const Event& e : events) {
      if (cur.preemptions + cur.evictions > 0 &&
          e.iteration - cur.last_iteration > max_gap) {
        flush();
      }
      if (cur.preemptions + cur.evictions == 0) {
        cur.model = model;
        cur.first_iteration = e.iteration;
      }
      cur.last_iteration = e.iteration;
      if (e.kind == SpanKind::kPreempt) {
        ++cur.preemptions;
        cur.victims.push_back(e.seq);
      } else {
        ++cur.evictions;
      }
    }
    flush();
  }
  std::sort(out.begin(), out.end(),
            [](const PreemptionCascade& a, const PreemptionCascade& b) {
              if (a.replayed_tokens != b.replayed_tokens) {
                return a.replayed_tokens > b.replayed_tokens;
              }
              return a.preemptions > b.preemptions;
            });
  return out;
}

std::vector<ReclaimEvent> reclaim_timeline(
    const std::vector<TraceSpan>& spans) {
  uint64_t t0 = UINT64_MAX;
  for (const TraceSpan& s : spans) t0 = std::min(t0, s.start_ticks);
  std::vector<ReclaimEvent> out;
  for (const TraceSpan& s : spans) {
    if (s.kind != SpanKind::kReclaim) continue;
    ReclaimEvent e;
    e.at_ms = static_cast<double>(s.start_ticks - t0) * 1e-6;
    e.starved = s.model;
    e.donor = s.peer;
    e.bytes = s.bytes;
    e.iteration = s.iteration;
    out.push_back(std::move(e));
  }
  std::sort(out.begin(), out.end(),
            [](const ReclaimEvent& a, const ReclaimEvent& b) {
              return a.at_ms < b.at_ms;
            });
  return out;
}

std::string render_trace_summary(const std::vector<TraceSpan>& spans) {
  std::ostringstream os;
  char line[256];

  const PhaseAttribution attr = attribute_phases(spans);
  os << "trace summary: " << spans.size() << " spans, " << attr.iterations
     << " steps\n";
  std::snprintf(line, sizeof(line),
                "step wall: p50 %.3f ms, p99 %.3f ms; phase coverage %.1f%%\n",
                attr.iter_p50_ms, attr.iter_p99_ms, 100.0 * attr.coverage);
  os << line;
  std::snprintf(line, sizeof(line), "%-10s %8s %10s %10s %10s %7s %7s\n",
                "phase", "count", "total ms", "p50 ms", "p99 ms", "share",
                "tail");
  os << line;
  for (const PhaseStat& p : attr.phases) {
    std::snprintf(line, sizeof(line),
                  "%-10s %8zu %10.3f %10.4f %10.4f %6.1f%% %6.1f%%\n",
                  span_kind_name(p.kind), p.count, p.total_ms, p.p50_ms,
                  p.p99_ms, 100.0 * p.fraction, 100.0 * p.tail_fraction);
    os << line;
  }
  if (attr.dominant_tail_phase != SpanKind::kCount) {
    os << "tail latency (p99 steps) dominated by: "
       << span_kind_name(attr.dominant_tail_phase) << '\n';
  }

  const QueueingBreakdown q = queueing_breakdown(spans);
  if (q.sequences > 0) {
    std::snprintf(
        line, sizeof(line),
        "queueing (%zu seqs): wait p50/p99 %.3f/%.3f ms, admit->first "
        "%.3f/%.3f ms, ttft %.3f/%.3f ms\n",
        q.sequences, q.queue_p50_ms, q.queue_p99_ms, q.admit_to_first_p50_ms,
        q.admit_to_first_p99_ms, q.first_token_p50_ms, q.first_token_p99_ms);
    os << line;
  }

  const auto cascades = detect_cascades(spans);
  if (!cascades.empty()) {
    size_t preempts = 0;
    for (const auto& c : cascades) preempts += c.preemptions;
    os << "preemption cascades: " << cascades.size() << " (" << preempts
       << " preemptions total)\n";
    const PreemptionCascade& top = cascades.front();
    std::snprintf(line, sizeof(line),
                  "top cascade [%s iter %lld-%lld]: %zu victims, %lld "
                  "replayed tokens, %.3f ms parked\n",
                  top.model.c_str(),
                  static_cast<long long>(top.first_iteration),
                  static_cast<long long>(top.last_iteration),
                  top.preemptions,
                  static_cast<long long>(top.replayed_tokens), top.parked_ms);
    os << line;
    os << "  victim chain:";
    for (size_t i = 0; i < top.victims.size() && i < 16; ++i) {
      os << ' ' << top.victims[i];
    }
    if (top.victims.size() > 16) os << " ...";
    os << '\n';
  }

  const auto reclaims = reclaim_timeline(spans);
  if (!reclaims.empty()) {
    uint64_t bytes = 0;
    for (const auto& r : reclaims) bytes += r.bytes;
    std::snprintf(line, sizeof(line),
                  "cross-model reclaims: %zu sheds, %.1f KB moved\n",
                  reclaims.size(), static_cast<double>(bytes) / 1024.0);
    os << line;
  }
  return os.str();
}

}  // namespace turbo::obs
