#include "obs/trace.h"

#include <algorithm>

#include "common/check.h"

namespace turbo::obs {

namespace {

constexpr const char* kKindNames[kSpanKinds] = {
    "admit",   "prefill", "schedule", "decode",    "preempt",
    "resume",  "evict",   "reclaim",  "stream",    "radix_hit",
    "radix_evict", "prefill_chunk", "route",
};

size_t round_up_pow2(size_t n) {
  size_t p = 2;
  while (p < n) p <<= 1;
  return p;
}

}  // namespace

const char* span_kind_name(SpanKind kind) {
  const int i = static_cast<int>(kind);
  TT_CHECK_LT(i, kSpanKinds);
  return kKindNames[i];
}

bool span_kind_from_name(std::string_view name, SpanKind* out) {
  for (int i = 0; i < kSpanKinds; ++i) {
    if (name == kKindNames[i]) {
      *out = static_cast<SpanKind>(i);
      return true;
    }
  }
  return false;
}

void copy_name(char (&dst)[kTraceNameLen], std::string_view src) {
  const size_t n = std::min(src.size(), kTraceNameLen - 1);
  std::memcpy(dst, src.data(), n);
  dst[n] = '\0';
}

// ---------------------------------------------------------------------------
// TraceRing
// ---------------------------------------------------------------------------

TraceRing::TraceRing(size_t capacity)
    : slots_(round_up_pow2(std::max<size_t>(capacity, 2))),
      mask_(slots_.size() - 1) {}

void TraceRing::record(const TraceSpan& span) {
  const uint64_t t = head_.fetch_add(1, std::memory_order_relaxed);
  Slot& slot = slots_[t & mask_];

  // Claim the slot. A well-sized ring makes contention here essentially
  // impossible (a writer must lap the whole ring while another writer is
  // inside its two-store window), but when it happens the newer span is
  // dropped rather than torn into the older one: `cur` odd means a writer
  // is mid-publish, `cur > 2t` means a younger ticket already owns the
  // slot, and a failed CAS means we lost the claim race.
  uint64_t cur = slot.stamp.load(std::memory_order_relaxed);
  if (cur % 2 == 1 || cur > 2 * t ||
      !slot.stamp.compare_exchange_strong(cur, 2 * t + 1,
                                          std::memory_order_acquire,
                                          std::memory_order_relaxed)) {
    dropped_.fetch_add(1, std::memory_order_relaxed);
    return;
  }

  // Publish the payload word by word. Relaxed is enough for the words
  // themselves; the release store of the stamp orders them for readers.
  uint64_t words[kSpanWords] = {};
  std::memcpy(words, &span, sizeof(TraceSpan));
  for (size_t w = 0; w < kSpanWords; ++w) {
    slot.words[w].store(words[w], std::memory_order_relaxed);
  }
  slot.stamp.store(2 * t + 2, std::memory_order_release);
}

std::vector<TraceSpan> TraceRing::snapshot() const {
  std::vector<TraceSpan> out;
  const uint64_t head = head_.load(std::memory_order_acquire);
  const uint64_t n = std::min<uint64_t>(head, slots_.size());
  out.reserve(n);
  for (uint64_t t = head - n; t < head; ++t) {
    const Slot& slot = slots_[t & mask_];
    if (slot.stamp.load(std::memory_order_acquire) != 2 * t + 2) {
      continue;  // dropped, mid-write, or already overwritten
    }
    uint64_t words[kSpanWords];
    for (size_t w = 0; w < kSpanWords; ++w) {
      words[w] = slot.words[w].load(std::memory_order_relaxed);
    }
    // Seqlock validation: the acquire re-read pairs with the writer's
    // release publish — if the stamp still names our ticket, no writer
    // touched the words between the two loads and the copy is whole.
    if (slot.stamp.load(std::memory_order_acquire) != 2 * t + 2) continue;
    TraceSpan span;
    std::memcpy(&span, words, sizeof(TraceSpan));
    out.push_back(span);
  }
  return out;
}

// ---------------------------------------------------------------------------
// Tracer
// ---------------------------------------------------------------------------

Tracer::Tracer(std::shared_ptr<TraceRing> ring, std::string_view model,
               int32_t version)
    : ring_(std::move(ring)), version_(version) {
  copy_name(model_, model);
}

void Tracer::span(SpanKind kind, uint64_t start_ticks, uint64_t end_ticks,
                  int64_t seq, int32_t batch, int32_t tokens, uint64_t bytes) {
  if (!ring_) return;
  TraceSpan s;
  s.kind = kind;
  s.model_version = version_;
  s.seq = seq;
  s.iteration = iteration_;
  s.batch = batch;
  s.tokens = tokens;
  s.bytes = bytes;
  s.start_ticks = start_ticks;
  s.end_ticks = end_ticks;
  std::memcpy(s.model, model_, kTraceNameLen);
  ring_->record(s);
}

void Tracer::instant(SpanKind kind, int64_t seq, int32_t tokens) {
  if (!ring_) return;
  const uint64_t t = now_ticks();
  span(kind, t, t, seq, /*batch=*/0, tokens);
}

}  // namespace turbo::obs
