// Trace serialization: a line-oriented trace file format (what benches
// dump and tools/trace_report reads back) and a Chrome-tracing JSON
// export (load in chrome://tracing or ui.perfetto.dev).
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "obs/trace.h"

namespace turbo::obs {

// One span per line, tab-separated:
//   kind model version seq iteration batch tokens bytes start end peer
// preceded by a "# turbo-trace v1" header. Empty model/peer serialize as
// "-". Deterministic, diff-friendly, and append-safe.
void write_trace(std::ostream& os, const std::vector<TraceSpan>& spans);
// Throws CheckError on a malformed line or missing header.
std::vector<TraceSpan> read_trace(std::istream& is);

// Convenience file wrappers; throw CheckError when the file cannot be
// opened.
void write_trace_file(const std::string& path,
                      const std::vector<TraceSpan>& spans);
std::vector<TraceSpan> read_trace_file(const std::string& path);

// Chrome-tracing ("Trace Event Format") JSON. Engine phase spans render
// as complete events ("X") on one track per model; sequence-lifecycle
// spans render as async events ("b"/"e") keyed by sequence id, so
// overlapping sequences stack instead of colliding; instants render as
// "i". Timestamps are microseconds relative to the earliest span.
std::string chrome_trace_json(const std::vector<TraceSpan>& spans);

}  // namespace turbo::obs
