#include "obs/trace_io.h"

#include <fstream>
#include <map>
#include <sstream>
#include <string>

#include "common/check.h"

namespace turbo::obs {

namespace {

constexpr const char* kHeader = "# turbo-trace v1";

std::string field_or_dash(const char* s) {
  return s[0] == '\0' ? std::string("-") : std::string(s);
}

}  // namespace

void write_trace(std::ostream& os, const std::vector<TraceSpan>& spans) {
  os << kHeader << '\n';
  for (const TraceSpan& s : spans) {
    os << span_kind_name(s.kind) << '\t' << field_or_dash(s.model) << '\t'
       << s.model_version << '\t' << s.seq << '\t' << s.iteration << '\t'
       << s.batch << '\t' << s.tokens << '\t' << s.bytes << '\t'
       << s.start_ticks << '\t' << s.end_ticks << '\t'
       << field_or_dash(s.peer) << '\n';
  }
}

std::vector<TraceSpan> read_trace(std::istream& is) {
  std::string line;
  TT_CHECK_MSG(std::getline(is, line) && line == kHeader,
               "not a turbo-trace v1 file");
  std::vector<TraceSpan> out;
  while (std::getline(is, line)) {
    if (line.empty() || line[0] == '#') continue;
    std::istringstream ls(line);
    std::string kind, model, peer;
    TraceSpan s;
    ls >> kind >> model >> s.model_version >> s.seq >> s.iteration >>
        s.batch >> s.tokens >> s.bytes >> s.start_ticks >> s.end_ticks >>
        peer;
    TT_CHECK_MSG(!ls.fail(), "malformed trace line: " << line);
    TT_CHECK_MSG(span_kind_from_name(kind, &s.kind),
                 "unknown span kind '" << kind << "'");
    copy_name(s.model, model == "-" ? "" : model);
    copy_name(s.peer, peer == "-" ? "" : peer);
    out.push_back(s);
  }
  return out;
}

void write_trace_file(const std::string& path,
                      const std::vector<TraceSpan>& spans) {
  std::ofstream os(path);
  TT_CHECK_MSG(os.good(), "cannot open trace file for writing: " << path);
  write_trace(os, spans);
  TT_CHECK_MSG(os.good(), "failed writing trace file: " << path);
}

std::vector<TraceSpan> read_trace_file(const std::string& path) {
  std::ifstream is(path);
  TT_CHECK_MSG(is.good(), "cannot open trace file: " << path);
  return read_trace(is);
}

std::string chrome_trace_json(const std::vector<TraceSpan>& spans) {
  uint64_t t0 = UINT64_MAX;
  for (const TraceSpan& s : spans) t0 = std::min(t0, s.start_ticks);
  if (spans.empty()) t0 = 0;

  // One track (tid) per model label; named via metadata events so the
  // viewer shows "base:v1" instead of a bare number.
  std::map<std::string, int> tracks;
  for (const TraceSpan& s : spans) {
    const std::string label = s.model[0] ? s.model : "engine";
    tracks.emplace(label, static_cast<int>(tracks.size()) + 1);
  }

  std::ostringstream os;
  os.precision(3);
  os << std::fixed;
  os << "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  bool first = true;
  const auto emit = [&](const std::string& ev) {
    if (!first) os << ',';
    first = false;
    os << ev;
  };
  for (const auto& [label, tid] : tracks) {
    std::ostringstream ev;
    ev << "{\"ph\":\"M\",\"pid\":1,\"tid\":" << tid
       << ",\"name\":\"thread_name\",\"args\":{\"name\":\"" << label
       << "\"}}";
    emit(ev.str());
  }
  for (const TraceSpan& s : spans) {
    const std::string label = s.model[0] ? s.model : "engine";
    const int tid = tracks[label];
    const double ts = static_cast<double>(s.start_ticks - t0) * 1e-3;  // us
    const double dur = static_cast<double>(s.end_ticks - s.start_ticks) * 1e-3;
    std::ostringstream ev;
    ev.precision(3);
    ev << std::fixed;
    const char* name = span_kind_name(s.kind);
    const std::string args =
        [&] {
          std::ostringstream a;
          a << "{\"seq\":" << s.seq << ",\"iteration\":" << s.iteration
            << ",\"batch\":" << s.batch << ",\"tokens\":" << s.tokens
            << ",\"bytes\":" << s.bytes;
          if (s.peer[0]) a << ",\"peer\":\"" << s.peer << '"';
          a << '}';
          return a.str();
        }();
    if (s.seq < 0) {
      // Engine phase span: complete event on the model's track. Chrome
      // nests same-track X events by duration, which matches how phases
      // tile a step.
      ev << "{\"ph\":\"X\",\"pid\":1,\"tid\":" << tid << ",\"name\":\""
         << name << "\",\"ts\":" << ts << ",\"dur\":" << dur
         << ",\"args\":" << args << '}';
      emit(ev.str());
    } else if (s.end_ticks > s.start_ticks) {
      // Sequence span: async begin/end pair keyed by the sequence id, so
      // concurrent sequences land on separate async rows.
      ev << "{\"ph\":\"b\",\"cat\":\"seq\",\"pid\":1,\"tid\":" << tid
         << ",\"id\":" << s.seq << ",\"name\":\"" << name
         << "\",\"ts\":" << ts << ",\"args\":" << args << '}';
      emit(ev.str());
      std::ostringstream ev2;
      ev2.precision(3);
      ev2 << std::fixed;
      ev2 << "{\"ph\":\"e\",\"cat\":\"seq\",\"pid\":1,\"tid\":" << tid
          << ",\"id\":" << s.seq << ",\"name\":\"" << name
          << "\",\"ts\":" << ts + dur << '}';
      emit(ev2.str());
    } else {
      ev << "{\"ph\":\"i\",\"s\":\"t\",\"pid\":1,\"tid\":" << tid
         << ",\"name\":\"" << name << "\",\"ts\":" << ts
         << ",\"args\":" << args << '}';
      emit(ev.str());
    }
  }
  os << "]}";
  return os.str();
}

}  // namespace turbo::obs
