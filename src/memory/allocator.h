// Allocator interfaces for intermediate (activation) tensors.
//
// The paper compares four strategies for variable-length inference
// (§4.2, Figs. 11-13):
//   * cudaMalloc/cudaFree per tensor              -> NaiveAllocator
//   * caching allocator (PyTorch / NVlabs cub)    -> CubCachingAllocator
//   * BFC arena (onnxruntime)                     -> BfcArenaAllocator
//   * greedy-by-size offset planning (GSOC [24])  -> GsocPlanner
//   * TurboTransformers' chunked, graph-aware,
//     per-request re-planning allocator (Alg. 1)  -> ModelAwareAllocator
//
// All of them implement IntermediateAllocator: once per inference they
// receive the request's tensor usage records (sizes already resolved for the
// sequence length, lifetimes from the computation graph topological order)
// and return real host placements standing in for device addresses.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

namespace turbo::memory {

// Lifetime + size of one intermediate tensor within one inference.
// first_op/last_op are indices into the topological order of the graph:
// the tensor must be resident for the closed interval [first_op, last_op].
struct TensorUsage {
  int tensor_id = 0;
  int first_op = 0;
  int last_op = 0;
  size_t size = 0;
  std::string name;
};

// True if two usages are simultaneously alive at some op.
inline bool lifetimes_overlap(const TensorUsage& a, const TensorUsage& b) {
  return std::max(a.first_op, b.first_op) <= std::min(a.last_op, b.last_op);
}

// Where a tensor landed.
struct Placement {
  std::byte* ptr = nullptr;
  int chunk_id = -1;    // -1 for allocators without chunk structure
  size_t offset = 0;
};

// Cumulative device-memory activity of an allocator.
struct AllocatorStats {
  size_t device_malloc_count = 0;
  size_t device_free_count = 0;
  size_t device_malloc_bytes = 0;
  size_t device_free_bytes = 0;
  size_t current_device_bytes = 0;  // reserved right now
  size_t peak_device_bytes = 0;
  // Preemption activity (generation serving: a victim sequence surrenders
  // its unshared KV blocks mid-decode and is requeued). Zero for the
  // encoder-side allocators, whose tensors never live across inferences.
  size_t preempt_count = 0;
  size_t preempt_freed_bytes = 0;  // unique bytes released by preemptions
  size_t resume_count = 0;         // preempted owners re-admitted
};

// Result of planning one inference.
struct InferencePlan {
  std::unordered_map<int, Placement> placements;
  size_t footprint_bytes = 0;        // device bytes reserved after planning
  size_t inference_malloc_bytes = 0; // device malloc traffic this inference
  size_t inference_free_bytes = 0;   // device free traffic this inference
  size_t inference_malloc_count = 0;
  size_t inference_free_count = 0;
  double planning_us = 0.0;          // measured wall time of the planner

  size_t traffic_bytes() const {
    return inference_malloc_bytes + inference_free_bytes;
  }
};

class IntermediateAllocator {
 public:
  virtual ~IntermediateAllocator() = default;

  virtual std::string name() const = 0;

  // Plan (and back with real storage) all intermediate tensors of one
  // inference. Placements stay valid until the next begin_inference call.
  virtual InferencePlan begin_inference(
      const std::vector<TensorUsage>& usages) = 0;

  virtual const AllocatorStats& stats() const = 0;
};

// Device malloc/free bookkeeping shared by the concrete allocators. Models
// cudaMalloc/cudaFree: tracks counts, bytes, peak, and exposes a modeled
// stall cost (cudaMalloc/cudaFree synchronize the device).
class DeviceTracker {
 public:
  void on_malloc(size_t bytes);
  void on_free(size_t bytes);
  // A preemption released `bytes` of unique storage back to its owner's
  // pool (no device free happens — blocks return to the free list).
  void on_preempt(size_t bytes);
  void on_resume();
  const AllocatorStats& stats() const { return stats_; }

  // Modeled wall-time cost of the device calls made so far (used by the
  // performance model to charge allocator stalls).
  static constexpr double kMallocStallUs = 150.0;
  static constexpr double kFreeStallUs = 80.0;
  double total_stall_us() const;

 private:
  AllocatorStats stats_;
};

// Validates that a plan places every usage and that tensors with
// overlapping lifetimes never overlap in memory. Throws CheckError on
// violation. Shared by tests and by debug assertions in the allocators.
void validate_plan(const std::vector<TensorUsage>& usages,
                   const InferencePlan& plan);

}  // namespace turbo::memory
