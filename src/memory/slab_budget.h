// Shared slab-byte budget arbitrated across several KV-cache pools
// (multi-model generation serving).
//
// The paper's serving framework manages one model's memory; serving several
// decoder configurations from one host raises a resource-arbitration
// question the per-pool `max_bytes` cap cannot answer: statically
// partitioning device memory reserves worst-case headroom per model, so an
// idle model's share sits unusable exactly when a busy one needs it. A
// SlabBudget instead caps the *sum* of every registered pool's slab
// footprint:
//
//  * Pools charge try_acquire(client, bytes) at slab-malloc time and
//    release() when an empty slab frees its buffer. An acquire succeeds
//    whenever the total fits — which bytes belong to whom is not enforced
//    here, so a busy pool freely borrows headroom an idle one is not using.
//  * Each client may declare a guarantee: a byte floor it is entitled to
//    reclaim. Guarantees are not enforced at acquire time (that would be
//    static partitioning again); they inform the *reclaim* decision made by
//    the pools' owner — MultiModelGenerationServer preempts sequences of
//    over-guarantee pools (the existing preempt-and-requeue path frees
//    their slabs) when an under-guarantee pool's admission is blocked.
//
// Thread-safety: every method is mutex-guarded, so concurrent calls are
// safe in isolation — but the KV pools' capacity-gate-then-charge
// sequence is not atomic across pools, so pools *sharing* one budget must
// all be driven from a single worker at a time (as
// MultiModelGenerationServer does). Pools on separate workers need
// separate budgets; a lost gate/charge race would otherwise surface as a
// fatal check in the pool's slab allocation.
// Invariants: used() never exceeds total_bytes() (denied acquires are
// counted, never partially applied); per-client usage sums to the total;
// a client must drain to zero bytes before unregistering; dead client
// slots are reused, so the table stays bounded by the live-client peak.
#pragma once

#include <cstddef>
#include <string>
#include <mutex>
#include <vector>

namespace turbo::memory {

// Per-client view inside a SlabBudgetSnapshot.
struct SlabBudgetClientStats {
  std::string name;
  size_t guarantee_bytes = 0;  // reclaim floor (0 = pure borrower)
  size_t used_bytes = 0;       // slab bytes currently charged
  size_t peak_used_bytes = 0;
  size_t denials = 0;          // acquires refused for this client
};

struct SlabBudgetSnapshot {
  size_t total_bytes = 0;  // 0 = unbounded
  size_t used_bytes = 0;
  size_t peak_used_bytes = 0;
  size_t denials = 0;
  std::vector<SlabBudgetClientStats> clients;  // registration order
};

class SlabBudget {
 public:
  using ClientId = int;

  // total_bytes == 0 means unbounded: every acquire succeeds but usage is
  // still tracked per client (footprint attribution without a cap).
  explicit SlabBudget(size_t total_bytes);

  SlabBudget(const SlabBudget&) = delete;
  SlabBudget& operator=(const SlabBudget&) = delete;
  ~SlabBudget();

  // Registers a charging client. `guarantee_bytes` is its reclaim floor;
  // the sum of guarantees must fit the (bounded) total. Throws CheckError
  // otherwise.
  ClientId register_client(std::string name, size_t guarantee_bytes = 0);
  // The client must have released everything it acquired.
  void unregister_client(ClientId id);

  // Charge `bytes` to `id` if the total still fits; false (and a denial
  // tick) otherwise. Nothing is partially applied.
  bool try_acquire(ClientId id, size_t bytes);
  void release(ClientId id, size_t bytes);

  size_t total_bytes() const;
  size_t used_bytes() const;
  // Uncommitted bytes any client could still claim (SIZE_MAX when
  // unbounded).
  size_t available_bytes() const;
  size_t used_bytes(ClientId id) const;
  size_t guarantee_bytes(ClientId id) const;
  // Usage above the client's guarantee — what a reclaim may take back.
  size_t borrowed_bytes(ClientId id) const;

  SlabBudgetSnapshot snapshot() const;

 private:
  struct Client {
    std::string name;
    size_t guarantee = 0;
    size_t used = 0;
    size_t peak_used = 0;
    size_t denials = 0;
    bool live = false;
  };

  const Client& client(ClientId id) const;

  mutable std::mutex mutex_;
  size_t total_ = 0;
  size_t used_ = 0;
  size_t peak_used_ = 0;
  size_t guaranteed_ = 0;  // sum of live clients' guarantees
  size_t denials_ = 0;
  std::vector<Client> clients_;
};

}  // namespace turbo::memory
