#include "memory/tlsf_arena.h"

#include <algorithm>
#include <bit>

#include "common/check.h"

namespace turbo::memory {

namespace {

size_t ceil_div(size_t a, size_t b) { return (a + b - 1) / b; }

int floor_log2(size_t v) {
  return 63 - std::countl_zero(static_cast<uint64_t>(v));
}

}  // namespace

TlsfArena::TlsfArena(size_t capacity_bytes, size_t granule_bytes)
    : granule_(granule_bytes) {
  TT_CHECK_GT(granule_, 0u);
  TT_CHECK_MSG(std::has_single_bit(static_cast<uint64_t>(granule_)),
               "granule must be a power of two, got " << granule_);
  for (auto& fl : heads_) {
    for (int& head : fl) head = -1;
  }
  if (capacity_bytes > 0) grow(capacity_bytes);
  grows_ = 0;  // the constructor's reservation is not a grow event
}

// ---------------------------------------------------------------------------
// Size-class mapping
// ---------------------------------------------------------------------------

void TlsfArena::mapping_insert(size_t size_g, int* fl, int* sl) {
  if (size_g < static_cast<size_t>(kSlBuckets)) {
    // Small blocks get exact-size lists in first level 0: one bucket per
    // granule count below the subdivision threshold.
    *fl = 0;
    *sl = static_cast<int>(size_g);
  } else {
    const int f = floor_log2(size_g);
    *fl = f - kSlLog2 + 1;
    *sl = static_cast<int>((size_g >> (f - kSlLog2)) ^
                           (static_cast<size_t>(1) << kSlLog2));
  }
}

size_t TlsfArena::search_size(size_t size_g) {
  if (size_g < static_cast<size_t>(kSlBuckets)) return size_g;
  // Round up to the next subdivision boundary: any block stored in the
  // class this maps to is >= the original request.
  return size_g +
         (static_cast<size_t>(1) << (floor_log2(size_g) - kSlLog2)) - 1;
}

// ---------------------------------------------------------------------------
// Node pool + free lists
// ---------------------------------------------------------------------------

int TlsfArena::new_node() {
  if (!free_nodes_.empty()) {
    const int node = free_nodes_.back();
    free_nodes_.pop_back();
    blocks_[static_cast<size_t>(node)] = Block{};
    return node;
  }
  blocks_.emplace_back();
  return static_cast<int>(blocks_.size()) - 1;
}

void TlsfArena::recycle_node(int node) { free_nodes_.push_back(node); }

void TlsfArena::insert_free(int node) {
  Block& b = blocks_[static_cast<size_t>(node)];
  int fl = 0, sl = 0;
  mapping_insert(b.size, &fl, &sl);
  TT_CHECK_LT(fl, kFlBuckets);
  b.free = true;
  b.prev_free = -1;
  b.next_free = heads_[fl][sl];
  if (b.next_free >= 0) blocks_[static_cast<size_t>(b.next_free)].prev_free = node;
  heads_[fl][sl] = node;
  sl_bitmap_[fl] |= 1u << sl;
  fl_bitmap_ |= static_cast<uint64_t>(1) << fl;
}

void TlsfArena::remove_free(int node) {
  Block& b = blocks_[static_cast<size_t>(node)];
  int fl = 0, sl = 0;
  mapping_insert(b.size, &fl, &sl);
  if (b.prev_free >= 0) {
    blocks_[static_cast<size_t>(b.prev_free)].next_free = b.next_free;
  } else {
    TT_CHECK_EQ(heads_[fl][sl], node);
    heads_[fl][sl] = b.next_free;
  }
  if (b.next_free >= 0) {
    blocks_[static_cast<size_t>(b.next_free)].prev_free = b.prev_free;
  }
  b.prev_free = b.next_free = -1;
  if (heads_[fl][sl] < 0) {
    sl_bitmap_[fl] &= ~(1u << sl);
    if (sl_bitmap_[fl] == 0) fl_bitmap_ &= ~(static_cast<uint64_t>(1) << fl);
  }
}

int TlsfArena::find_suitable(int fl, int sl) const {
  // Non-empty list in the requested first level at >= sl?
  uint32_t sl_map = sl_bitmap_[fl] & (~0u << sl);
  if (sl_map == 0) {
    // No: take the lowest non-empty first level above.
    const uint64_t fl_map =
        fl_bitmap_ & (~static_cast<uint64_t>(0) << (fl + 1));
    if (fl_map == 0) return -1;
    fl = std::countr_zero(fl_map);
    sl_map = sl_bitmap_[fl];
  }
  return heads_[fl][std::countr_zero(sl_map)];
}

// ---------------------------------------------------------------------------
// malloc / free / grow
// ---------------------------------------------------------------------------

size_t TlsfArena::malloc(size_t bytes) {
  TT_CHECK_GT(bytes, 0u);
  const size_t need = ceil_div(bytes, granule_);
  int fl = 0, sl = 0;
  mapping_insert(search_size(need), &fl, &sl);
  const int node = fl < kFlBuckets ? find_suitable(fl, sl) : -1;
  if (node < 0) {
    ++failed_allocs_;
    return kNoSpace;
  }
  remove_free(node);
  Block& b = blocks_[static_cast<size_t>(node)];
  TT_CHECK_GE(b.size, need);
  if (b.size > need) {
    // Split: the remainder stays free at the top of the span.
    const int rest = new_node();
    Block& r = blocks_[static_cast<size_t>(rest)];
    Block& bb = blocks_[static_cast<size_t>(node)];  // new_node may realloc
    r.offset = bb.offset + need;
    r.size = bb.size - need;
    r.prev_phys = node;
    r.next_phys = bb.next_phys;
    if (r.next_phys >= 0) blocks_[static_cast<size_t>(r.next_phys)].prev_phys = rest;
    if (last_phys_ == node) last_phys_ = rest;
    bb.next_phys = rest;
    bb.size = need;
    insert_free(rest);
    ++splits_;
  }
  Block& bb = blocks_[static_cast<size_t>(node)];
  bb.free = false;
  used_.emplace(bb.offset, node);
  live_g_ += bb.size;
  peak_live_g_ = std::max(peak_live_g_, live_g_);
  frontier_g_ = std::max(frontier_g_, bb.offset + bb.size);
  peak_frontier_g_ = std::max(peak_frontier_g_, frontier_g_);
  ++allocs_;
  return bb.offset * granule_;
}

void TlsfArena::free(size_t offset) {
  TT_CHECK_MSG(offset % granule_ == 0,
               "misaligned free at offset " << offset);
  const auto it = used_.find(offset / granule_);
  TT_CHECK_MSG(it != used_.end(),
               "free of unknown or already-freed offset " << offset);
  int node = it->second;
  used_.erase(it);
  Block* b = &blocks_[static_cast<size_t>(node)];
  const bool was_frontier = b->offset + b->size == frontier_g_;
  live_g_ -= b->size;
  ++frees_;
  // Boundary-tag coalescing: merge a free successor into this block, then
  // this block into a free predecessor.
  if (b->next_phys >= 0 && blocks_[static_cast<size_t>(b->next_phys)].free) {
    const int next = b->next_phys;
    Block& n = blocks_[static_cast<size_t>(next)];
    remove_free(next);
    b->size += n.size;
    b->next_phys = n.next_phys;
    if (b->next_phys >= 0) blocks_[static_cast<size_t>(b->next_phys)].prev_phys = node;
    if (last_phys_ == next) last_phys_ = node;
    recycle_node(next);
    ++coalesces_;
  }
  if (b->prev_phys >= 0 && blocks_[static_cast<size_t>(b->prev_phys)].free) {
    const int prev = b->prev_phys;
    Block& p = blocks_[static_cast<size_t>(prev)];
    remove_free(prev);
    p.size += b->size;
    p.next_phys = b->next_phys;
    if (p.next_phys >= 0) blocks_[static_cast<size_t>(p.next_phys)].prev_phys = prev;
    if (last_phys_ == node) last_phys_ = prev;
    recycle_node(node);
    node = prev;
    b = &p;
    ++coalesces_;
  }
  insert_free(node);
  if (was_frontier) refresh_frontier();
}

void TlsfArena::grow(size_t extra_bytes) {
  TT_CHECK_GT(extra_bytes, 0u);
  const size_t extra_g = ceil_div(extra_bytes, granule_);
  ++grows_;
  if (last_phys_ >= 0 && blocks_[static_cast<size_t>(last_phys_)].free) {
    // Extend the trailing free block in place (its size class may change).
    const int node = last_phys_;
    remove_free(node);
    blocks_[static_cast<size_t>(node)].size += extra_g;
    insert_free(node);
  } else {
    const int node = new_node();
    Block& b = blocks_[static_cast<size_t>(node)];
    b.offset = capacity_g_;
    b.size = extra_g;
    b.prev_phys = last_phys_;
    if (last_phys_ >= 0) {
      blocks_[static_cast<size_t>(last_phys_)].next_phys = node;
    } else {
      first_phys_ = node;
    }
    last_phys_ = node;
    insert_free(node);
  }
  capacity_g_ += extra_g;
}

size_t TlsfArena::good_size(size_t bytes, size_t granule_bytes) {
  TT_CHECK_GT(bytes, 0u);
  size_t g = ceil_div(bytes, granule_bytes);
  if (g >= static_cast<size_t>(kSlBuckets)) {
    // Round up to the subdivision step of g's first level. Landing on the
    // next power of two is fine: that is a boundary of the next level.
    const size_t step = static_cast<size_t>(1) << (floor_log2(g) - kSlLog2);
    g = ceil_div(g, step) * step;
  }
  return g * granule_bytes;
}

size_t TlsfArena::span_bytes(size_t offset) const {
  TT_CHECK_EQ(offset % granule_, 0u);
  const auto it = used_.find(offset / granule_);
  TT_CHECK_MSG(it != used_.end(), "span_bytes of dead offset " << offset);
  return blocks_[static_cast<size_t>(it->second)].size * granule_;
}

void TlsfArena::refresh_frontier() {
  // The topmost used block was just freed; the new frontier is the end of
  // the highest used block below it. Free blocks above it are coalesced, so
  // this walks at most a handful of nodes.
  int node = last_phys_;
  while (node >= 0 && blocks_[static_cast<size_t>(node)].free) {
    node = blocks_[static_cast<size_t>(node)].prev_phys;
  }
  frontier_g_ =
      node < 0 ? 0
               : blocks_[static_cast<size_t>(node)].offset +
                     blocks_[static_cast<size_t>(node)].size;
}

TlsfArenaStats TlsfArena::stats() const {
  TlsfArenaStats s;
  s.capacity_bytes = capacity_bytes();
  s.live_bytes = live_bytes();
  s.peak_live_bytes = peak_live_g_ * granule_;
  s.resident_bytes = resident_bytes();
  s.peak_resident_bytes = peak_frontier_g_ * granule_;
  s.allocs = allocs_;
  s.frees = frees_;
  s.splits = splits_;
  s.coalesces = coalesces_;
  s.failed_allocs = failed_allocs_;
  s.grows = grows_;
  return s;
}

void TlsfArena::check_invariants() const {
  // Physical walk: blocks tile [0, capacity) exactly, free neighbors are
  // always coalesced, and used blocks match the offset map.
  size_t cursor = 0;
  size_t live = 0;
  size_t frontier = 0;
  size_t free_count = 0;
  bool prev_free = false;
  int prev = -1;
  for (int node = first_phys_; node >= 0;
       node = blocks_[static_cast<size_t>(node)].next_phys) {
    const Block& b = blocks_[static_cast<size_t>(node)];
    TT_CHECK_EQ(b.offset, cursor);
    TT_CHECK_GT(b.size, 0u);
    TT_CHECK_EQ(b.prev_phys, prev);
    TT_CHECK_MSG(!(prev_free && b.free),
                 "adjacent free blocks at offset " << b.offset);
    if (b.free) {
      ++free_count;
    } else {
      const auto it = used_.find(b.offset);
      TT_CHECK_MSG(it != used_.end(),
                   "used block at " << b.offset << " missing from map");
      TT_CHECK_EQ(it->second, node);
      live += b.size;
      frontier = b.offset + b.size;
    }
    cursor = b.offset + b.size;
    prev_free = b.free;
    prev = node;
  }
  TT_CHECK_EQ(cursor, capacity_g_);
  TT_CHECK_EQ(prev, last_phys_);
  TT_CHECK_EQ(live, live_g_);
  TT_CHECK_EQ(frontier, frontier_g_);
  TT_CHECK_EQ(used_.size() + free_count,
              [&] {
                size_t n = 0;
                for (int node = first_phys_; node >= 0;
                     node = blocks_[static_cast<size_t>(node)].next_phys) {
                  ++n;
                }
                return n;
              }());

  // Free-list walk: every listed block is free, physically linked, in the
  // right class; bitmap bits mirror list occupancy exactly.
  size_t listed = 0;
  for (int fl = 0; fl < kFlBuckets; ++fl) {
    TT_CHECK_EQ((fl_bitmap_ >> fl) & 1, sl_bitmap_[fl] != 0 ? 1u : 0u);
    for (int sl = 0; sl < kSlBuckets; ++sl) {
      const int head = heads_[fl][sl];
      TT_CHECK_EQ((sl_bitmap_[fl] >> sl) & 1, head >= 0 ? 1u : 0u);
      int prev_node = -1;
      for (int node = head; node >= 0;
           node = blocks_[static_cast<size_t>(node)].next_free) {
        const Block& b = blocks_[static_cast<size_t>(node)];
        TT_CHECK(b.free);
        TT_CHECK_EQ(b.prev_free, prev_node);
        int efl = 0, esl = 0;
        mapping_insert(b.size, &efl, &esl);
        TT_CHECK_EQ(efl, fl);
        TT_CHECK_EQ(esl, sl);
        ++listed;
        prev_node = node;
      }
    }
  }
  TT_CHECK_MSG(listed == free_count,
               "free list holds " << listed << " blocks, physical list "
                                  << free_count);
}

}  // namespace turbo::memory
