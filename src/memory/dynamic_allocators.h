// Framework-style dynamic allocators: the baselines that do NOT see the
// computation graph. They serve an alloc/free call stream; the
// IntermediateAllocator adapter below replays a request's tensor lifetimes
// op-by-op against them, which is exactly the stream a training framework's
// executor would issue.
//
//   NaiveDeviceAllocator   — cudaMalloc / cudaFree per tensor.
//   CubCachingAllocator    — power-of-two binned cache, never returns memory
//                            to the device (PyTorch / NVlabs-cub behaviour:
//                            footprint ratchets up to the largest request).
//   BfcArenaAllocator      — best-fit-with-coalescing arena that grows by
//                            doubling regions (onnxruntime behaviour).
#pragma once

#include <cstddef>
#include <list>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/aligned_buffer.h"
#include "memory/allocator.h"

namespace turbo::memory {

// Abstract malloc/free-style device allocator.
class DynamicAllocator {
 public:
  virtual ~DynamicAllocator() = default;
  virtual std::string name() const = 0;
  virtual std::byte* alloc(size_t bytes) = 0;
  virtual void free(std::byte* ptr) = 0;
  virtual const AllocatorStats& stats() const = 0;
  virtual double total_stall_us() const = 0;
};

class NaiveDeviceAllocator final : public DynamicAllocator {
 public:
  std::string name() const override { return "cudaMalloc"; }
  std::byte* alloc(size_t bytes) override;
  void free(std::byte* ptr) override;
  const AllocatorStats& stats() const override { return tracker_.stats(); }
  double total_stall_us() const override { return tracker_.total_stall_us(); }

 private:
  struct Block {
    AlignedBuffer buffer;
  };
  std::map<std::byte*, Block> live_;
  DeviceTracker tracker_;
};

class CubCachingAllocator final : public DynamicAllocator {
 public:
  // min_bin_bytes: smallest bin; sizes round up to the next power of two.
  explicit CubCachingAllocator(size_t min_bin_bytes = 512);

  std::string name() const override { return "PyTorch"; }
  std::byte* alloc(size_t bytes) override;
  void free(std::byte* ptr) override;
  const AllocatorStats& stats() const override { return tracker_.stats(); }
  double total_stall_us() const override { return tracker_.total_stall_us(); }

  // cudaFree everything cached (torch.cuda.empty_cache()).
  void empty_cache();

  size_t cached_bytes() const;

 private:
  struct Block {
    AlignedBuffer buffer;
    size_t bin_size;
  };
  size_t bin_for(size_t bytes) const;

  size_t min_bin_bytes_;
  // bin size -> cached free blocks of exactly that size.
  std::map<size_t, std::vector<Block>> cache_;
  std::map<std::byte*, Block> live_;
  DeviceTracker tracker_;
};

class BfcArenaAllocator final : public DynamicAllocator {
 public:
  explicit BfcArenaAllocator(size_t initial_region_bytes = 1 << 20);

  std::string name() const override { return "onnxrt"; }
  std::byte* alloc(size_t bytes) override;
  void free(std::byte* ptr) override;
  const AllocatorStats& stats() const override { return tracker_.stats(); }
  double total_stall_us() const override { return tracker_.total_stall_us(); }

  size_t num_regions() const { return regions_.size(); }

 private:
  static constexpr size_t kGranularity = 256;

  struct Chunk {
    size_t region;
    size_t offset;
    size_t size;
    bool free;
  };
  struct Region {
    AlignedBuffer buffer;
    // Chunks sorted by offset; adjacent free chunks are coalesced on free.
    std::list<Chunk> chunks;
  };

  std::byte* chunk_ptr(const Chunk& c) {
    return regions_[c.region].buffer.data() + c.offset;
  }
  void add_region(size_t bytes);

  size_t next_region_bytes_;
  std::vector<Region> regions_;
  std::map<std::byte*, std::pair<size_t, std::list<Chunk>::iterator>> live_;
  DeviceTracker tracker_;
};

// Adapts a DynamicAllocator to the per-inference planning interface by
// replaying tensor lifetimes in topological-op order: at op i every tensor
// with first_op == i is allocated; after op i every tensor with
// last_op == i is freed. This is the allocation stream a graph executor
// without lifetime planning produces.
class ReplayAdapter final : public IntermediateAllocator {
 public:
  explicit ReplayAdapter(std::unique_ptr<DynamicAllocator> inner);

  std::string name() const override { return inner_->name(); }
  InferencePlan begin_inference(
      const std::vector<TensorUsage>& usages) override;
  const AllocatorStats& stats() const override { return inner_->stats(); }
  DynamicAllocator& inner() { return *inner_; }

 private:
  std::unique_ptr<DynamicAllocator> inner_;
  std::vector<std::byte*> held_;  // from the previous inference, freed lazily
};

}  // namespace turbo::memory
