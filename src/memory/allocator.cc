#include "memory/allocator.h"

#include <algorithm>

#include "common/check.h"

namespace turbo::memory {

void DeviceTracker::on_malloc(size_t bytes) {
  ++stats_.device_malloc_count;
  stats_.device_malloc_bytes += bytes;
  stats_.current_device_bytes += bytes;
  stats_.peak_device_bytes =
      std::max(stats_.peak_device_bytes, stats_.current_device_bytes);
}

void DeviceTracker::on_free(size_t bytes) {
  ++stats_.device_free_count;
  stats_.device_free_bytes += bytes;
  TT_CHECK_GE(stats_.current_device_bytes, bytes);
  stats_.current_device_bytes -= bytes;
}

void DeviceTracker::on_preempt(size_t bytes) {
  ++stats_.preempt_count;
  stats_.preempt_freed_bytes += bytes;
}

void DeviceTracker::on_resume() { ++stats_.resume_count; }

double DeviceTracker::total_stall_us() const {
  return static_cast<double>(stats_.device_malloc_count) * kMallocStallUs +
         static_cast<double>(stats_.device_free_count) * kFreeStallUs;
}

void validate_plan(const std::vector<TensorUsage>& usages,
                   const InferencePlan& plan) {
  for (const auto& u : usages) {
    auto it = plan.placements.find(u.tensor_id);
    TT_CHECK_MSG(it != plan.placements.end(),
                 "tensor " << u.tensor_id << " (" << u.name
                           << ") not placed");
    TT_CHECK_MSG(it->second.ptr != nullptr,
                 "tensor " << u.tensor_id << " has null placement");
  }
  // Overlapping lifetimes must occupy disjoint address ranges.
  for (size_t i = 0; i < usages.size(); ++i) {
    const auto& a = usages[i];
    const auto pa = plan.placements.at(a.tensor_id);
    for (size_t j = i + 1; j < usages.size(); ++j) {
      const auto& b = usages[j];
      if (!lifetimes_overlap(a, b)) continue;
      const auto pb = plan.placements.at(b.tensor_id);
      const auto* a_begin = pa.ptr;
      const auto* a_end = pa.ptr + a.size;
      const auto* b_begin = pb.ptr;
      const auto* b_end = pb.ptr + b.size;
      const bool disjoint = a_end <= b_begin || b_end <= a_begin;
      TT_CHECK_MSG(disjoint, "live tensors overlap: " << a.name << " and "
                                                      << b.name);
    }
  }
}

}  // namespace turbo::memory
