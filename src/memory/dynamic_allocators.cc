#include "memory/dynamic_allocators.h"

#include <algorithm>
#include <chrono>

#include "common/check.h"

namespace turbo::memory {

// --------------------------- NaiveDeviceAllocator ---------------------------

std::byte* NaiveDeviceAllocator::alloc(size_t bytes) {
  TT_CHECK_GT(bytes, 0u);
  Block block{AlignedBuffer(bytes)};
  std::byte* ptr = block.buffer.data();
  tracker_.on_malloc(bytes);
  live_.emplace(ptr, std::move(block));
  return ptr;
}

void NaiveDeviceAllocator::free(std::byte* ptr) {
  auto it = live_.find(ptr);
  TT_CHECK_MSG(it != live_.end(), "free of unknown pointer");
  tracker_.on_free(it->second.buffer.size());
  live_.erase(it);
}

// --------------------------- CubCachingAllocator ----------------------------

CubCachingAllocator::CubCachingAllocator(size_t min_bin_bytes)
    : min_bin_bytes_(min_bin_bytes) {
  TT_CHECK_GT(min_bin_bytes, 0u);
}

size_t CubCachingAllocator::bin_for(size_t bytes) const {
  size_t bin = min_bin_bytes_;
  while (bin < bytes) bin <<= 1;
  return bin;
}

std::byte* CubCachingAllocator::alloc(size_t bytes) {
  TT_CHECK_GT(bytes, 0u);
  const size_t bin = bin_for(bytes);
  auto it = cache_.find(bin);
  if (it != cache_.end() && !it->second.empty()) {
    Block block = std::move(it->second.back());
    it->second.pop_back();
    std::byte* ptr = block.buffer.data();
    live_.emplace(ptr, std::move(block));
    return ptr;  // cache hit: no device call
  }
  Block block{AlignedBuffer(bin), bin};
  tracker_.on_malloc(bin);
  std::byte* ptr = block.buffer.data();
  live_.emplace(ptr, std::move(block));
  return ptr;
}

void CubCachingAllocator::free(std::byte* ptr) {
  auto it = live_.find(ptr);
  TT_CHECK_MSG(it != live_.end(), "free of unknown pointer");
  Block block = std::move(it->second);
  live_.erase(it);
  // Returned to the cache, not the device: the footprint ratchet.
  cache_[block.bin_size].push_back(std::move(block));
}

void CubCachingAllocator::empty_cache() {
  for (auto& [bin, blocks] : cache_) {
    for (auto& b : blocks) tracker_.on_free(b.bin_size);
    blocks.clear();
  }
  cache_.clear();
}

size_t CubCachingAllocator::cached_bytes() const {
  size_t total = 0;
  for (const auto& [bin, blocks] : cache_) total += bin * blocks.size();
  return total;
}

// ---------------------------- BfcArenaAllocator -----------------------------

BfcArenaAllocator::BfcArenaAllocator(size_t initial_region_bytes)
    : next_region_bytes_(initial_region_bytes) {
  TT_CHECK_GT(initial_region_bytes, 0u);
}

void BfcArenaAllocator::add_region(size_t bytes) {
  Region region;
  region.buffer = AlignedBuffer(bytes);
  region.chunks.push_back(Chunk{regions_.size(), 0, bytes, true});
  tracker_.on_malloc(bytes);
  regions_.push_back(std::move(region));
}

std::byte* BfcArenaAllocator::alloc(size_t bytes) {
  TT_CHECK_GT(bytes, 0u);
  const size_t need = (bytes + kGranularity - 1) / kGranularity * kGranularity;

  // Best-fit over all regions' free chunks.
  size_t best_region = 0;
  std::list<Chunk>::iterator best_it;
  size_t best_size = std::numeric_limits<size_t>::max();
  bool found = false;
  for (size_t r = 0; r < regions_.size(); ++r) {
    for (auto it = regions_[r].chunks.begin(); it != regions_[r].chunks.end();
         ++it) {
      if (it->free && it->size >= need && it->size < best_size) {
        best_region = r;
        best_it = it;
        best_size = it->size;
        found = true;
      }
    }
  }
  if (!found) {
    // Grow: onnxruntime's BFC arena extends by doubling regions.
    while (next_region_bytes_ < need) next_region_bytes_ <<= 1;
    add_region(next_region_bytes_);
    next_region_bytes_ <<= 1;
    best_region = regions_.size() - 1;
    best_it = regions_.back().chunks.begin();
  }

  Region& region = regions_[best_region];
  // Split the remainder back into the free list.
  if (best_it->size > need) {
    Chunk rest{best_region, best_it->offset + need, best_it->size - need,
               true};
    auto next = std::next(best_it);
    region.chunks.insert(next, rest);
    best_it->size = need;
  }
  best_it->free = false;
  std::byte* ptr = chunk_ptr(*best_it);
  live_[ptr] = {best_region, best_it};
  return ptr;
}

void BfcArenaAllocator::free(std::byte* ptr) {
  auto it = live_.find(ptr);
  TT_CHECK_MSG(it != live_.end(), "free of unknown pointer");
  auto [region_idx, chunk_it] = it->second;
  live_.erase(it);

  Region& region = regions_[region_idx];
  chunk_it->free = true;
  // Coalesce with the next chunk, then with the previous one.
  auto next = std::next(chunk_it);
  if (next != region.chunks.end() && next->free) {
    chunk_it->size += next->size;
    region.chunks.erase(next);
  }
  if (chunk_it != region.chunks.begin()) {
    auto prev = std::prev(chunk_it);
    if (prev->free) {
      prev->size += chunk_it->size;
      region.chunks.erase(chunk_it);
    }
  }
}

// ------------------------------ ReplayAdapter -------------------------------

ReplayAdapter::ReplayAdapter(std::unique_ptr<DynamicAllocator> inner)
    : inner_(std::move(inner)) {}

InferencePlan ReplayAdapter::begin_inference(
    const std::vector<TensorUsage>& usages) {
  const auto t0 = std::chrono::steady_clock::now();
  InferencePlan plan;

  const AllocatorStats before = inner_->stats();

  int max_op = 0;
  for (const auto& u : usages) max_op = std::max(max_op, u.last_op);

  // Bucket tensors by first/last op once (usages are small lists).
  std::vector<std::vector<const TensorUsage*>> starts(
      static_cast<size_t>(max_op) + 1),
      ends(static_cast<size_t>(max_op) + 1);
  for (const auto& u : usages) {
    TT_CHECK_LE(u.first_op, u.last_op);
    starts[static_cast<size_t>(u.first_op)].push_back(&u);
    ends[static_cast<size_t>(u.last_op)].push_back(&u);
  }

  std::vector<std::byte*> to_free;
  for (int op = 0; op <= max_op; ++op) {
    for (const TensorUsage* u : starts[static_cast<size_t>(op)]) {
      std::byte* ptr = inner_->alloc(u->size);
      plan.placements[u->tensor_id] = Placement{ptr, -1, 0};
    }
    for (const TensorUsage* u : ends[static_cast<size_t>(op)]) {
      inner_->free(plan.placements.at(u->tensor_id).ptr);
    }
  }

  const AllocatorStats after = inner_->stats();
  plan.inference_malloc_bytes =
      after.device_malloc_bytes - before.device_malloc_bytes;
  plan.inference_free_bytes =
      after.device_free_bytes - before.device_free_bytes;
  plan.inference_malloc_count =
      after.device_malloc_count - before.device_malloc_count;
  plan.inference_free_count =
      after.device_free_count - before.device_free_count;
  plan.footprint_bytes = after.current_device_bytes;
  plan.planning_us =
      std::chrono::duration<double, std::micro>(
          std::chrono::steady_clock::now() - t0)
          .count();
  return plan;
}

}  // namespace turbo::memory
