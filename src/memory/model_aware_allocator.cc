#include "memory/model_aware_allocator.h"

#include <algorithm>

#include "common/check.h"

namespace turbo::memory {

ModelAwareAllocator::ModelAwareAllocator(ModelAwareOptions options)
    : options_(options) {
  TT_CHECK_GT(options_.default_chunk_size, 0u);
  TT_CHECK_GE(options_.k_scale, 1.0);
  TT_CHECK_GE(options_.max_idle_inferences, 0);
}

std::optional<size_t> ModelAwareAllocator::find_gap_from_chunk(
    const TensorUsage& t, const Chunk& chunk) {
  const size_t chunk_size = chunk.buffer.size();
  size_t smallest_gap = std::numeric_limits<size_t>::max();
  size_t prev_offset = 0;
  std::optional<size_t> best_offset;

  // Records are kept sorted by offset, so prev_offset tracks the high-water
  // mark of lifetime-overlapping records scanned so far; the space between
  // it and the next overlapping record is a candidate gap (Alg. 1 L4-L14).
  for (const Record& x : chunk.records) {
    const int max_first = std::max(t.first_op, x.first_op);
    const int min_last = std::min(t.last_op, x.last_op);
    if (max_first <= min_last) {
      if (x.offset >= prev_offset) {
        const size_t gap = x.offset - prev_offset;
        if (gap >= t.size && gap < smallest_gap) {
          smallest_gap = gap;
          best_offset = prev_offset;
        }
      }
      prev_offset = std::max(prev_offset, x.offset + x.size);
    }
  }
  // Tail space after the last overlapping record (Alg. 1 L15-L17).
  if (!best_offset.has_value() && chunk_size >= prev_offset &&
      chunk_size - prev_offset >= t.size) {
    best_offset = prev_offset;
  }
  return best_offset;
}

InferencePlan ModelAwareAllocator::begin_inference(
    const std::vector<TensorUsage>& usages) {
  const auto t0 = std::chrono::steady_clock::now();

  InferencePlan plan;

  // Placements from the previous inference are dead; chunks persist.
  for (auto& chunk : chunks_) chunk.records.clear();

  // Alg. 1 L24: decreasing size (ties broken by id for determinism).
  std::vector<TensorUsage> sorted = usages;
  std::sort(sorted.begin(), sorted.end(),
            [](const TensorUsage& a, const TensorUsage& b) {
              if (a.size != b.size) return a.size > b.size;
              return a.tensor_id < b.tensor_id;
            });

  // Chunk visit order per ChunkSelection. Recomputed per tensor (chunk
  // counts are tiny): used chunks largest-first, then empty chunks
  // smallest-first.
  auto visit_order = [this]() {
    std::vector<size_t> order(chunks_.size());
    for (size_t i = 0; i < chunks_.size(); ++i) order[i] = i;
    if (options_.chunk_selection == ChunkSelection::kPacked) {
      std::stable_sort(order.begin(), order.end(),
                       [this](size_t a, size_t b) {
                         const bool used_a = !chunks_[a].records.empty();
                         const bool used_b = !chunks_[b].records.empty();
                         if (used_a != used_b) return used_a;
                         const size_t sa = chunks_[a].buffer.size();
                         const size_t sb = chunks_[b].buffer.size();
                         return used_a ? sa > sb : sa < sb;
                       });
    }
    return order;
  };

  for (const TensorUsage& t : sorted) {
    TT_CHECK_GT(t.size, 0u);
    TT_CHECK_LE(t.first_op, t.last_op);
    bool assigned = false;
    for (size_t ci : visit_order()) {
      auto offset = find_gap_from_chunk(t, chunks_[ci]);
      if (offset.has_value()) {
        Chunk& chunk = chunks_[ci];
        Record rec{t.tensor_id, *offset, t.size, t.first_op, t.last_op};
        auto pos = std::lower_bound(
            chunk.records.begin(), chunk.records.end(), rec,
            [](const Record& a, const Record& b) { return a.offset < b.offset; });
        chunk.records.insert(pos, rec);
        plan.placements[t.tensor_id] =
            Placement{chunk.buffer.data() + *offset, static_cast<int>(ci),
                      *offset};
        assigned = true;
        break;
      }
    }
    if (!assigned) {
      // Alg. 1 L35-L39: append a new chunk.
      const size_t scaled =
          static_cast<size_t>(static_cast<double>(t.size) * options_.k_scale);
      const size_t new_size = std::max(options_.default_chunk_size, scaled);
      Chunk chunk;
      chunk.buffer = AlignedBuffer(new_size);
      chunk.records.push_back(Record{t.tensor_id, 0, t.size, t.first_op,
                                     t.last_op});
      tracker_.on_malloc(new_size);
      plan.inference_malloc_bytes += new_size;
      ++plan.inference_malloc_count;
      plan.placements[t.tensor_id] =
          Placement{chunk.buffer.data(), static_cast<int>(chunks_.size()), 0};
      chunks_.push_back(std::move(chunk));
    }
  }

  // Alg. 1 L41: release chunks not used by this inference. Because later
  // chunks' ids must stay stable for the placements we just handed out, we
  // only release and compact after recording placements by chunk pointer
  // (Placement.ptr stays valid; chunk_id is informational).
  std::vector<Chunk> kept;
  kept.reserve(chunks_.size());
  for (auto& chunk : chunks_) {
    if (chunk.records.empty()) {
      ++chunk.idle_inferences;
      if (chunk.idle_inferences > options_.max_idle_inferences) {
        const size_t bytes = chunk.buffer.size();
        tracker_.on_free(bytes);
        plan.inference_free_bytes += bytes;
        ++plan.inference_free_count;
        continue;  // dropped
      }
    } else {
      chunk.idle_inferences = 0;
    }
    kept.push_back(std::move(chunk));
  }
  chunks_ = std::move(kept);

  plan.footprint_bytes = tracker_.stats().current_device_bytes;
  plan.planning_us =
      std::chrono::duration<double, std::micro>(
          std::chrono::steady_clock::now() - t0)
          .count();
  return plan;
}

}  // namespace turbo::memory
