#include "memory/gsoc_planner.h"

#include <algorithm>
#include <chrono>
#include <limits>

#include "common/check.h"

namespace turbo::memory {

GsocPlanResult gsoc_plan(const std::vector<TensorUsage>& usages) {
  GsocPlanResult result;

  std::vector<TensorUsage> sorted = usages;
  std::sort(sorted.begin(), sorted.end(),
            [](const TensorUsage& a, const TensorUsage& b) {
              if (a.size != b.size) return a.size > b.size;
              return a.tensor_id < b.tensor_id;
            });

  struct Placed {
    size_t offset;
    size_t size;
    int first_op;
    int last_op;
  };
  std::vector<Placed> placed;  // kept sorted by offset
  placed.reserve(sorted.size());

  for (const TensorUsage& t : sorted) {
    TT_CHECK_GT(t.size, 0u);
    // Lowest offset where t fits between lifetime-overlapping neighbours.
    size_t best_offset = std::numeric_limits<size_t>::max();
    size_t prev_end = 0;
    size_t smallest_gap = std::numeric_limits<size_t>::max();
    for (const Placed& x : placed) {
      const bool overlap = std::max(t.first_op, x.first_op) <=
                           std::min(t.last_op, x.last_op);
      if (!overlap) continue;
      if (x.offset >= prev_end) {
        const size_t gap = x.offset - prev_end;
        if (gap >= t.size && gap < smallest_gap) {
          smallest_gap = gap;
          best_offset = prev_end;
        }
      }
      prev_end = std::max(prev_end, x.offset + x.size);
    }
    if (best_offset == std::numeric_limits<size_t>::max()) {
      best_offset = prev_end;  // append after the last overlapping tensor
    }
    auto pos = std::lower_bound(placed.begin(), placed.end(), best_offset,
                                [](const Placed& p, size_t off) {
                                  return p.offset < off;
                                });
    placed.insert(pos,
                  Placed{best_offset, t.size, t.first_op, t.last_op});
    result.offsets.emplace_back(t.tensor_id, best_offset);
    result.arena_size = std::max(result.arena_size, best_offset + t.size);
  }
  return result;
}

InferencePlan GsocPlanner::begin_inference(
    const std::vector<TensorUsage>& usages) {
  const auto t0 = std::chrono::steady_clock::now();
  InferencePlan plan;

  GsocPlanResult packing = gsoc_plan(usages);

  // The arena is a single device allocation sized to this plan. Any size
  // change forces a full free + malloc — the per-inference traffic the
  // paper's Figure 12 charges to GSOC under variable-length input.
  if (arena_.size() != packing.arena_size) {
    if (!arena_.empty()) {
      tracker_.on_free(arena_.size());
      plan.inference_free_bytes += arena_.size();
      ++plan.inference_free_count;
    }
    arena_ = AlignedBuffer(packing.arena_size);
    tracker_.on_malloc(packing.arena_size);
    plan.inference_malloc_bytes += packing.arena_size;
    ++plan.inference_malloc_count;
  }

  for (const auto& [tensor_id, offset] : packing.offsets) {
    plan.placements[tensor_id] = Placement{arena_.data() + offset, 0, offset};
  }

  plan.footprint_bytes = tracker_.stats().current_device_bytes;
  plan.planning_us =
      std::chrono::duration<double, std::micro>(
          std::chrono::steady_clock::now() - t0)
          .count();
  return plan;
}

}  // namespace turbo::memory
