// TurboTransformers' sequence-length-aware allocator (paper §4.2, Alg. 1).
//
// Memory is organized as a list of chunks (default 2 MB). At the start of
// every inference, once the request's sequence length (and hence every
// intermediate tensor's size) is known, the allocator re-plans: tensors are
// sorted by decreasing size and each is placed into the smallest lifetime-
// compatible gap of an existing chunk (FindGapFromChunk, the O(n^2)
// modified Greedy-by-Size of [24]); if no chunk fits, a new chunk of
// max(DEFAULT_CHUNK_SIZE, size * K_SCALE) is appended. Chunks that end an
// inference without any resident tensor are released (optionally after a
// configurable number of consecutive idle inferences).
//
// Compared to caching allocators this bounds the footprint near the true
// per-request working set; compared to a monolithic GSOC arena it avoids
// re-allocating everything when the length changes — only marginal chunks
// are added or released.
#pragma once

#include <chrono>
#include <memory>
#include <optional>
#include <vector>

#include "common/aligned_buffer.h"
#include "memory/allocator.h"

namespace turbo::memory {

enum class ChunkSelection {
  // Visit chunks already holding tensors of this request first (largest
  // first, for dense packing), then empty chunks smallest-first. Long
  // requests pack densely into few large chunks; short requests settle in a
  // default-sized chunk and leave oversized leftovers idle, so they are
  // released — this is what makes the footprint track the request size
  // (paper Fig. 11).
  kPacked,
  // Scan chunks in list order (Algorithm 1 as printed). Retains large
  // chunks longer; kept for the ablation benchmark.
  kFirstFit,
};

struct ModelAwareOptions {
  size_t default_chunk_size = 2 * 1024 * 1024;  // paper: 2 MB
  double k_scale = 1.2;                         // paper: 1.2
  // Release a chunk after it has been idle for this many consecutive
  // inferences. 0 = release immediately (the paper's base algorithm).
  int max_idle_inferences = 0;
  ChunkSelection chunk_selection = ChunkSelection::kPacked;
};

class ModelAwareAllocator final : public IntermediateAllocator {
 public:
  explicit ModelAwareAllocator(ModelAwareOptions options = {});

  std::string name() const override { return "Turbo"; }
  InferencePlan begin_inference(
      const std::vector<TensorUsage>& usages) override;
  const AllocatorStats& stats() const override { return tracker_.stats(); }

  double total_stall_us() const { return tracker_.total_stall_us(); }
  int num_chunks() const { return static_cast<int>(chunks_.size()); }
  size_t chunk_bytes(int i) const { return chunks_[size_t(i)].buffer.size(); }

 private:
  // One placed tensor inside a chunk, kept sorted by offset.
  struct Record {
    int tensor_id;
    size_t offset;
    size_t size;
    int first_op;
    int last_op;
  };

  struct Chunk {
    AlignedBuffer buffer;
    std::vector<Record> records;  // sorted by offset
    int idle_inferences = 0;
  };

  // Algorithm 1, FindGapFromChunk: best-fit gap among records whose
  // lifetime overlaps `t`. Returns the offset or nullopt.
  static std::optional<size_t> find_gap_from_chunk(const TensorUsage& t,
                                                   const Chunk& chunk);

  ModelAwareOptions options_;
  std::vector<Chunk> chunks_;
  DeviceTracker tracker_;
};

}  // namespace turbo::memory
