// Greedy-by-Size Offset Calculation planner (Pisarchyk & Lee [24]).
//
// The near-optimal fixed-length planner the paper compares against: all
// intermediate tensors are packed by decreasing size into ONE arena, each at
// the lowest offset compatible with every already-placed tensor whose
// lifetime overlaps. For fixed-length models the arena is computed once; for
// variable-length serving the plan must be recomputed per request and the
// arena re-allocated whenever its size changes — which is exactly the extra
// alloc/free traffic visible in the paper's Figure 12.
#pragma once

#include <vector>

#include "common/aligned_buffer.h"
#include "memory/allocator.h"

namespace turbo::memory {

// Pure planning result, independent of backing storage.
struct GsocPlanResult {
  std::vector<std::pair<int, size_t>> offsets;  // tensor_id -> offset
  size_t arena_size = 0;
};

// Plans offsets for the given usages; exposed separately so tests can check
// the packing quality against a lower bound.
GsocPlanResult gsoc_plan(const std::vector<TensorUsage>& usages);

class GsocPlanner final : public IntermediateAllocator {
 public:
  std::string name() const override { return "GSOC"; }
  InferencePlan begin_inference(
      const std::vector<TensorUsage>& usages) override;
  const AllocatorStats& stats() const override { return tracker_.stats(); }
  double total_stall_us() const { return tracker_.total_stall_us(); }

 private:
  AlignedBuffer arena_;
  DeviceTracker tracker_;
};

}  // namespace turbo::memory
