// Two-level segregated fit (TLSF) allocator over one contiguous byte arena,
// handing out offset-addressed variable-size ranges in O(1).
//
// The KV pool's original slab layer moves memory between co-hosted models in
// whole fixed-size slabs: every borrow/reclaim is slab-granular, and pools
// with different block geometries fragment the shared budget (a model wanting
// one 1.5 KiB block still pins a 32 KiB slab). TLSF (Masmano et al., ECRTS
// 2004) is the classic O(1) answer for variable-size real-time allocation:
//
//  * Free ranges are segregated by a first-level log2 size class and a
//    second-level linear subdivision of each class (kSlBuckets lists per
//    power of two). Two bitmaps — one over first levels, one per first level
//    over its subdivisions — turn "smallest class guaranteed to fit" into
//    two find-first-set instructions, so malloc and free never scan.
//  * Physical neighbors carry boundary tags (here: a doubly-linked physical
//    block list kept out-of-band, since the arena addresses device-resident
//    storage the host never dereferences). A freed range coalesces with
//    free neighbors immediately, so free space recovers maximal extents and
//    a drained arena collapses back to one block.
//  * Ranges are identified by byte offset, not pointer: the owner maps
//    offsets onto whatever backing it manages (a device reservation, a host
//    stand-in buffer), and the arena itself touches no memory. grow()
//    extends the managed range in place, coalescing with a trailing free
//    block — the owner can start small and extend the reservation.
//
// Known TLSF behavior kept intentionally: malloc rounds the request up to
// the next size-class boundary before searching, so it can report kNoSpace
// even though a free range in the request's own (unsearched) class would
// fit. That is the price of O(1); the differential test mirrors exactly
// this predicate (tests/tlsf_arena_test.cc).
//
// Thread-safety: none — externally synchronized like KvCachePool, whose
// single-owner discipline it inherits.
// Invariants (enforced by check_invariants(), fuzzed differentially):
//  * the physical list tiles [0, capacity) exactly: blocks are adjacent,
//    non-overlapping, sized in whole granules;
//  * no two physically adjacent blocks are both free (full coalescing);
//  * every free block sits on exactly the free list of its size class, and
//    a bitmap bit is set iff its list is non-empty (free-list subset of and
//    consistent with the physical list);
//  * live_bytes() equals the sum of allocated block spans, and
//    resident_bytes() is the end of the highest allocated span.
#pragma once

#include <cstddef>
#include <cstdint>
#include <unordered_map>
#include <vector>

namespace turbo::memory {

// Point-in-time counters; splits/coalesces/failed_allocs are monotonic over
// the arena lifetime (the mem.tlsf.* metrics are set from these).
struct TlsfArenaStats {
  size_t capacity_bytes = 0;
  size_t live_bytes = 0;           // sum of allocated spans (granule-rounded)
  size_t peak_live_bytes = 0;
  size_t resident_bytes = 0;       // end of the highest allocated span —
                                   // what a device reservation must back
  size_t peak_resident_bytes = 0;
  size_t allocs = 0;
  size_t frees = 0;
  size_t splits = 0;               // free block split to serve a request
  size_t coalesces = 0;            // neighbor merges on free
  size_t failed_allocs = 0;        // malloc returned kNoSpace
  size_t grows = 0;                // grow() calls
};

class TlsfArena {
 public:
  // Sentinel returned by malloc when no class-guaranteed fit exists.
  static constexpr size_t kNoSpace = ~static_cast<size_t>(0);

  // `capacity_bytes` may be 0 (grow() later). `granule_bytes` is the
  // allocation granularity and alignment: every span is a whole multiple of
  // it and every returned offset is aligned to it. Must be a power of two.
  explicit TlsfArena(size_t capacity_bytes, size_t granule_bytes = 64);

  TlsfArena(const TlsfArena&) = delete;
  TlsfArena& operator=(const TlsfArena&) = delete;

  // O(1): byte offset of a granule-aligned span covering `bytes`, or
  // kNoSpace. bytes must be > 0.
  size_t malloc(size_t bytes);
  // O(1) + immediate boundary-tag coalescing. `offset` must be a live
  // allocation's offset (throws CheckError otherwise).
  void free(size_t offset);

  // Extend the managed range by `extra_bytes` (rounded up to a granule),
  // appending a free block at the top that coalesces with a trailing free
  // block. Existing offsets are unaffected.
  void grow(size_t extra_bytes);

  // Span backing the live allocation at `offset` (granule-rounded, >= the
  // requested bytes). Throws CheckError for a dead or unknown offset.
  size_t span_bytes(size_t offset) const;

  // Smallest byte span >= `bytes` sitting exactly on a size-class boundary.
  // A caller that always allocates good_size-rounded spans opts out of the
  // class-rounding failure mode documented above: the search class equals
  // the span's exact class, so malloc succeeds whenever any free range of
  // at least that span exists. KvCachePool charges this span per block,
  // which makes its byte-count admission gates exact predictors of arena
  // success.
  static size_t good_size(size_t bytes, size_t granule_bytes = 64);

  size_t capacity_bytes() const { return capacity_g_ * granule_; }
  size_t granule_bytes() const { return granule_; }
  size_t live_bytes() const { return live_g_ * granule_; }
  size_t resident_bytes() const { return frontier_g_ * granule_; }
  size_t free_bytes() const { return (capacity_g_ - live_g_) * granule_; }
  size_t live_allocations() const { return used_.size(); }

  TlsfArenaStats stats() const;

  // Walks the physical block list and every free list; throws CheckError on
  // any violated invariant. O(blocks); meant for tests.
  void check_invariants() const;

 private:
  // Second-level subdivisions per first-level class: 2^4 = 16 lists per
  // power of two, the paper's recommended configuration.
  static constexpr int kSlLog2 = 4;
  static constexpr int kSlBuckets = 1 << kSlLog2;
  // First levels cover granule counts up to 2^47 — far past any budget.
  static constexpr int kFlBuckets = 48;

  // All offsets/sizes below are in granules.
  struct Block {
    size_t offset = 0;
    size_t size = 0;
    bool free = false;
    int prev_phys = -1;
    int next_phys = -1;
    int prev_free = -1;
    int next_free = -1;
  };

  // Size class a free block of `size_g` granules is stored under.
  static void mapping_insert(size_t size_g, int* fl, int* sl);
  // Request rounded up so any block in the class found by the bitmap
  // search is guaranteed to fit (the TLSF "good fit" rounding).
  static size_t search_size(size_t size_g);

  int new_node();
  void recycle_node(int node);
  void insert_free(int node);
  void remove_free(int node);
  // First free block in the lowest class >= (fl, sl), or -1.
  int find_suitable(int fl, int sl) const;
  // Recompute frontier_g_ after the topmost used block was freed.
  void refresh_frontier();

  size_t granule_;
  size_t capacity_g_ = 0;
  size_t live_g_ = 0;
  size_t peak_live_g_ = 0;
  size_t frontier_g_ = 0;       // end of the highest used block
  size_t peak_frontier_g_ = 0;

  uint64_t fl_bitmap_ = 0;
  uint32_t sl_bitmap_[kFlBuckets] = {};
  int heads_[kFlBuckets][kSlBuckets];

  std::vector<Block> blocks_;
  std::vector<int> free_nodes_;  // recycled node-pool slots
  int first_phys_ = -1;
  int last_phys_ = -1;
  std::unordered_map<size_t, int> used_;  // offset (granules) -> node

  size_t allocs_ = 0;
  size_t frees_ = 0;
  size_t splits_ = 0;
  size_t coalesces_ = 0;
  size_t failed_allocs_ = 0;
  size_t grows_ = 0;
};

}  // namespace turbo::memory
