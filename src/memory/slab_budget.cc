#include "memory/slab_budget.h"

#include <limits>

#include "common/check.h"

namespace turbo::memory {

SlabBudget::SlabBudget(size_t total_bytes) : total_(total_bytes) {}

SlabBudget::~SlabBudget() {
  // Every registered pool must have drained and unregistered; a live
  // client here would keep charging a dead arbiter.
  for (const Client& c : clients_) {
    TT_CHECK_MSG(!c.live, "budget client '" << c.name
                                            << "' outlives the SlabBudget");
  }
  TT_CHECK_EQ(used_, 0u);
}

SlabBudget::ClientId SlabBudget::register_client(std::string name,
                                                 size_t guarantee_bytes) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (total_ > 0) {
    TT_CHECK_MSG(guaranteed_ + guarantee_bytes <= total_,
                 "budget guarantees oversubscribed registering '"
                     << name << "': " << guaranteed_ << " + "
                     << guarantee_bytes << " > " << total_);
  }
  Client c;
  c.name = std::move(name);
  c.guarantee = guarantee_bytes;
  c.live = true;
  guaranteed_ += guarantee_bytes;
  // Reuse a dead slot (ids are vector indices, so entries can never be
  // erased): hot register/unregister churn — the multi-model server does
  // one registration per bundle — must not grow the table forever.
  for (size_t i = 0; i < clients_.size(); ++i) {
    if (!clients_[i].live) {
      clients_[i] = std::move(c);
      return static_cast<ClientId>(i);
    }
  }
  clients_.push_back(std::move(c));
  return static_cast<ClientId>(clients_.size()) - 1;
}

void SlabBudget::unregister_client(ClientId id) {
  std::lock_guard<std::mutex> lock(mutex_);
  Client& c = clients_.at(static_cast<size_t>(id));
  TT_CHECK_MSG(c.live, "budget client " << id << " already unregistered");
  TT_CHECK_MSG(c.used == 0,
               "budget client '" << c.name << "' unregistering with "
                                 << c.used << " bytes still charged");
  guaranteed_ -= c.guarantee;
  c.live = false;
}

bool SlabBudget::try_acquire(ClientId id, size_t bytes) {
  std::lock_guard<std::mutex> lock(mutex_);
  Client& c = clients_.at(static_cast<size_t>(id));
  TT_CHECK(c.live);
  if (total_ > 0 && used_ + bytes > total_) {
    ++c.denials;
    ++denials_;
    return false;
  }
  used_ += bytes;
  peak_used_ = std::max(peak_used_, used_);
  c.used += bytes;
  c.peak_used = std::max(c.peak_used, c.used);
  return true;
}

void SlabBudget::release(ClientId id, size_t bytes) {
  std::lock_guard<std::mutex> lock(mutex_);
  Client& c = clients_.at(static_cast<size_t>(id));
  TT_CHECK(c.live);
  TT_CHECK_GE(c.used, bytes);
  c.used -= bytes;
  used_ -= bytes;
}

const SlabBudget::Client& SlabBudget::client(ClientId id) const {
  const Client& c = clients_.at(static_cast<size_t>(id));
  TT_CHECK(c.live);
  return c;
}

size_t SlabBudget::total_bytes() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return total_;
}

size_t SlabBudget::used_bytes() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return used_;
}

size_t SlabBudget::available_bytes() const {
  std::lock_guard<std::mutex> lock(mutex_);
  if (total_ == 0) return std::numeric_limits<size_t>::max();
  return total_ - used_;
}

size_t SlabBudget::used_bytes(ClientId id) const {
  std::lock_guard<std::mutex> lock(mutex_);
  return client(id).used;
}

size_t SlabBudget::guarantee_bytes(ClientId id) const {
  std::lock_guard<std::mutex> lock(mutex_);
  return client(id).guarantee;
}

size_t SlabBudget::borrowed_bytes(ClientId id) const {
  std::lock_guard<std::mutex> lock(mutex_);
  const Client& c = client(id);
  return c.used > c.guarantee ? c.used - c.guarantee : 0;
}

SlabBudgetSnapshot SlabBudget::snapshot() const {
  std::lock_guard<std::mutex> lock(mutex_);
  SlabBudgetSnapshot s;
  s.total_bytes = total_;
  s.used_bytes = used_;
  s.peak_used_bytes = peak_used_;
  s.denials = denials_;
  for (const Client& c : clients_) {
    if (!c.live) continue;
    SlabBudgetClientStats cs;
    cs.name = c.name;
    cs.guarantee_bytes = c.guarantee;
    cs.used_bytes = c.used;
    cs.peak_used_bytes = c.peak_used;
    cs.denials = c.denials;
    s.clients.push_back(std::move(cs));
  }
  return s;
}

}  // namespace turbo::memory
