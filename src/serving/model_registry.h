// Model version management and ensembles (paper §2.2: "the advanced
// functionalities of the serving framework include ... model version
// management, and model ensembles").
//
// A registry maps model name -> versioned encoder checkpoints. Serving code
// resolves either the latest version or a pinned one; an Ensemble averages
// the hidden-state outputs (or classifier logits) of several registered
// models. Registration and resolution are thread-safe.
#pragma once

#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "model/encoder.h"

namespace turbo::serving {

class ModelRegistry {
 public:
  // Registers a model under (name, version). Throws if the exact pair is
  // already present.
  void register_model(const std::string& name, int version,
                      std::shared_ptr<model::EncoderModel> model);

  // Removes one version; returns false if absent.
  bool unregister_model(const std::string& name, int version);

  // Latest (highest-version) model for the name; nullptr if none.
  std::shared_ptr<model::EncoderModel> latest(const std::string& name) const;

  // Exact version; nullptr if absent.
  std::shared_ptr<model::EncoderModel> version(const std::string& name,
                                               int v) const;

  // All registered versions of a model, ascending.
  std::vector<int> versions(const std::string& name) const;

  size_t size() const;

 private:
  mutable std::mutex mutex_;
  // name -> version -> model
  std::map<std::string, std::map<int, std::shared_ptr<model::EncoderModel>>>
      models_;
};

// Averages the forward outputs of several models with identical output
// shapes (same hidden size). Standard serving-side ensembling.
class EncoderEnsemble {
 public:
  explicit EncoderEnsemble(
      std::vector<std::shared_ptr<model::EncoderModel>> members);

  // Mean of members' hidden states [B, S, H].
  Tensor forward(const Tensor& ids,
                 const std::vector<int>* valid_lens = nullptr);

  size_t size() const { return members_.size(); }

 private:
  std::vector<std::shared_ptr<model::EncoderModel>> members_;
};

}  // namespace turbo::serving
