// Model version management and ensembles (paper §2.2: "the advanced
// functionalities of the serving framework include ... model version
// management, and model ensembles").
//
// VersionedRegistry maps model name -> version -> shared_ptr<ModelT>.
// Serving code resolves either the latest version or a pinned one; holders
// keep resolved models alive through the shared_ptr even after
// unregistration (hot model replacement: in-flight work pins its model
// until it retires). Registration and resolution are thread-safe.
//
// Two instantiations matter today: ModelRegistry (encoder checkpoints, the
// paper's classifier-serving path) and genserve::BundleRegistry (seq2seq
// bundles behind the multi-model generation server).
#pragma once

#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/check.h"
#include "model/encoder.h"

namespace turbo::serving {

template <typename ModelT>
class VersionedRegistry {
 public:
  // Registers a model under (name, version). Throws if the exact pair is
  // already present.
  void register_model(const std::string& name, int version,
                      std::shared_ptr<ModelT> model) {
    TT_CHECK(model != nullptr);
    std::lock_guard<std::mutex> lock(mutex_);
    auto& versions = models_[name];
    TT_CHECK_MSG(versions.find(version) == versions.end(),
                 name << " v" << version << " already registered");
    versions[version] = std::move(model);
  }

  // Removes one version; returns false if absent. Holders of the removed
  // shared_ptr keep the model alive until they drop it.
  bool unregister_model(const std::string& name, int version) {
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = models_.find(name);
    if (it == models_.end()) return false;
    const bool erased = it->second.erase(version) > 0;
    if (it->second.empty()) models_.erase(it);
    return erased;
  }

  // Latest (highest-version) model for the name; nullptr if none.
  std::shared_ptr<ModelT> latest(const std::string& name) const {
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = models_.find(name);
    if (it == models_.end() || it->second.empty()) return nullptr;
    return it->second.rbegin()->second;
  }

  // Exact version; nullptr if absent.
  std::shared_ptr<ModelT> version(const std::string& name, int v) const {
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = models_.find(name);
    if (it == models_.end()) return nullptr;
    auto vit = it->second.find(v);
    return vit == it->second.end() ? nullptr : vit->second;
  }

  // Routing convention shared by every serving front end: version <= 0
  // means "the latest live right now", positive pins an exact version.
  // nullptr when the name (or pinned version) is absent.
  std::shared_ptr<ModelT> resolve(const std::string& name,
                                  int v = 0) const {
    return v <= 0 ? latest(name) : version(name, v);
  }

  // All registered versions of a model, ascending.
  std::vector<int> versions(const std::string& name) const {
    std::lock_guard<std::mutex> lock(mutex_);
    std::vector<int> out;
    auto it = models_.find(name);
    if (it != models_.end()) {
      for (const auto& [v, m] : it->second) out.push_back(v);
    }
    return out;
  }

  // Registered model names, ascending.
  std::vector<std::string> names() const {
    std::lock_guard<std::mutex> lock(mutex_);
    std::vector<std::string> out;
    for (const auto& [name, versions] : models_) out.push_back(name);
    return out;
  }

  size_t size() const {
    std::lock_guard<std::mutex> lock(mutex_);
    size_t n = 0;
    for (const auto& [name, versions] : models_) n += versions.size();
    return n;
  }

 private:
  mutable std::mutex mutex_;
  // name -> version -> model
  std::map<std::string, std::map<int, std::shared_ptr<ModelT>>> models_;
};

// The paper's encoder-checkpoint registry.
using ModelRegistry = VersionedRegistry<model::EncoderModel>;

// Averages the forward outputs of several models with identical output
// shapes (same hidden size). Standard serving-side ensembling.
class EncoderEnsemble {
 public:
  explicit EncoderEnsemble(
      std::vector<std::shared_ptr<model::EncoderModel>> members);

  // Mean of members' hidden states [B, S, H].
  Tensor forward(const Tensor& ids,
                 const std::vector<int>* valid_lens = nullptr);

  size_t size() const { return members_.size(); }

 private:
  std::vector<std::shared_ptr<model::EncoderModel>> members_;
};

}  // namespace turbo::serving
