#include "serving/cost_table.h"

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <sstream>

#include "common/check.h"

namespace turbo::serving {

CostTable CostTable::warmup(const LatencyFn& latency_ms, int max_len,
                            int max_batch, int len_step) {
  TT_CHECK_GT(max_len, 0);
  TT_CHECK_GT(max_batch, 0);
  TT_CHECK_GT(len_step, 0);

  CostTable t;
  t.max_len_ = max_len;
  t.max_batch_ = max_batch;
  t.len_step_ = len_step;
  t.len_grid_.push_back(1);
  for (int len = len_step; len <= max_len; len += len_step) {
    t.len_grid_.push_back(len);
  }
  if (t.len_grid_.back() != max_len) t.len_grid_.push_back(max_len);

  t.grid_.resize(t.len_grid_.size() * static_cast<size_t>(max_batch));
  for (size_t li = 0; li < t.len_grid_.size(); ++li) {
    for (int b = 1; b <= max_batch; ++b) {
      const double ms = latency_ms(t.len_grid_[li], b);
      TT_CHECK_GT(ms, 0.0);
      t.grid_[li * static_cast<size_t>(max_batch) +
              static_cast<size_t>(b - 1)] = ms;
    }
  }
  return t;
}

double CostTable::batch_cost_ms(int len, int batch) const {
  TT_CHECK_GT(len, 0);
  TT_CHECK_GT(batch, 0);
  TT_CHECK_LE(batch, max_batch_);
  len = std::min(len, max_len_);

  // Bracket len in the grid and interpolate linearly.
  auto hi_it = std::lower_bound(len_grid_.begin(), len_grid_.end(), len);
  const size_t hi = static_cast<size_t>(hi_it - len_grid_.begin());
  const size_t bcol = static_cast<size_t>(batch - 1);
  const size_t stride = static_cast<size_t>(max_batch_);
  if (len_grid_[hi] == len || hi == 0) {
    return grid_[hi * stride + bcol];
  }
  const size_t lo = hi - 1;
  const double frac = static_cast<double>(len - len_grid_[lo]) /
                      static_cast<double>(len_grid_[hi] - len_grid_[lo]);
  const double lo_ms = grid_[lo * stride + bcol];
  const double hi_ms = grid_[hi * stride + bcol];
  return lo_ms + frac * (hi_ms - lo_ms);
}

void CostTable::observe(int len, int batch, double measured_ms,
                        double alpha) {
  TT_CHECK_GT(len, 0);
  TT_CHECK_GT(batch, 0);
  TT_CHECK_LE(batch, max_batch_);
  TT_CHECK_GT(measured_ms, 0.0);
  TT_CHECK_GT(alpha, 0.0);
  TT_CHECK_LE(alpha, 1.0);
  len = std::min(len, max_len_);

  auto hi_it = std::lower_bound(len_grid_.begin(), len_grid_.end(), len);
  const size_t hi = static_cast<size_t>(hi_it - len_grid_.begin());
  const size_t bcol = static_cast<size_t>(batch - 1);
  const size_t stride = static_cast<size_t>(max_batch_);

  auto nudge = [&](size_t li, double weight) {
    double& cell = grid_[li * stride + bcol];
    // Move the cell so that the *interpolated* value approaches the
    // observation: adjust by the interpolation residual scaled by this
    // cell's share of the interpolation weight.
    const double predicted = batch_cost_ms(len, batch);
    cell = std::max(1e-9, cell + alpha * weight * (measured_ms - predicted));
  };

  if (len_grid_[hi] == len || hi == 0) {
    nudge(hi, 1.0);
    return;
  }
  const size_t lo = hi - 1;
  const double frac = static_cast<double>(len - len_grid_[lo]) /
                      static_cast<double>(len_grid_[hi] - len_grid_[lo]);
  nudge(lo, 1.0 - frac);
  nudge(hi, frac);
}

void CostTable::save_csv(const std::string& path) const {
  std::ofstream out(path);
  TT_CHECK_MSG(out.good(), "cannot open " << path);
  out.precision(17);  // round-trip doubles exactly
  out << "max_len," << max_len_ << ",max_batch," << max_batch_ << ",len_step,"
      << len_step_ << "\n";
  for (size_t li = 0; li < len_grid_.size(); ++li) {
    out << len_grid_[li];
    for (int b = 1; b <= max_batch_; ++b) {
      out << "," << grid_[li * static_cast<size_t>(max_batch_) +
                          static_cast<size_t>(b - 1)];
    }
    out << "\n";
  }
}

CostTable CostTable::load_csv(const std::string& path) {
  std::ifstream in(path);
  TT_CHECK_MSG(in.good(), "cannot open " << path);
  CostTable t;
  std::string line;
  TT_CHECK(static_cast<bool>(std::getline(in, line)));
  std::sscanf(line.c_str(), "max_len,%d,max_batch,%d,len_step,%d",
              &t.max_len_, &t.max_batch_, &t.len_step_);
  TT_CHECK_GT(t.max_len_, 0);
  TT_CHECK_GT(t.max_batch_, 0);
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    std::istringstream ss(line);
    std::string field;
    TT_CHECK(static_cast<bool>(std::getline(ss, field, ',')));
    t.len_grid_.push_back(std::stoi(field));
    for (int b = 1; b <= t.max_batch_; ++b) {
      TT_CHECK(static_cast<bool>(std::getline(ss, field, ',')));
      t.grid_.push_back(std::stod(field));
    }
  }
  TT_CHECK_EQ(t.grid_.size(),
              t.len_grid_.size() * static_cast<size_t>(t.max_batch_));
  return t;
}

}  // namespace turbo::serving
