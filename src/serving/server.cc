#include "serving/server.h"

#include <algorithm>

#include "common/check.h"

namespace turbo::serving {

Server::Server(std::unique_ptr<model::SequenceClassifier> classifier,
               std::unique_ptr<BatchScheduler> scheduler, CostTable costs,
               size_t cache_capacity)
    : classifier_(std::move(classifier)),
      scheduler_(std::move(scheduler)),
      costs_(std::move(costs)) {
  TT_CHECK(classifier_ != nullptr);
  TT_CHECK(scheduler_ != nullptr);
  if (cache_capacity > 0) {
    cache_ = std::make_unique<ResponseCache>(cache_capacity);
  }
}

std::vector<ServedResult> Server::serve(const std::vector<Request>& requests) {
  std::vector<ServedResult> results(requests.size());
  std::vector<Request> to_run;
  std::vector<size_t> run_slots;  // index into `results`

  // Response-cache pass.
  for (size_t i = 0; i < requests.size(); ++i) {
    const Request& r = requests[i];
    TT_CHECK_MSG(!r.tokens.empty(), "request " << r.id << " has no payload");
    TT_CHECK_EQ(r.length, static_cast<int>(r.tokens.size()));
    results[i].request_id = r.id;
    if (cache_ != nullptr) {
      if (auto hit = cache_->lookup(ResponseCache::key_of(r.tokens))) {
        results[i].logits = std::move(*hit);
        results[i].from_cache = true;
        results[i].label = static_cast<int>(
            std::max_element(results[i].logits.begin(),
                             results[i].logits.end()) -
            results[i].logits.begin());
        continue;
      }
    }
    run_slots.push_back(i);
    to_run.push_back(r);
  }

  const int num_classes = classifier_->num_classes();
  const std::vector<Batch> batches = scheduler_->schedule(to_run, costs_);
  for (const auto& batch : batches) {
    const int bs = batch.size();
    const int padded = batch.padded_length;
    TT_CHECK_GT(padded, 0);

    // Zero-pad the batch and record true lengths for attention masking.
    Tensor ids = Tensor::zeros(Shape{bs, padded}, DType::kI32);
    std::vector<int> valid_lens(static_cast<size_t>(bs));
    for (int b = 0; b < bs; ++b) {
      const Request& r = to_run[batch.request_indices[static_cast<size_t>(b)]];
      std::copy(r.tokens.begin(), r.tokens.end(),
                ids.data<int32_t>() + static_cast<long>(b) * padded);
      valid_lens[static_cast<size_t>(b)] = r.length;
    }

    Tensor logits = classifier_->classify(ids, &valid_lens);
    for (int b = 0; b < bs; ++b) {
      const size_t slot =
          run_slots[batch.request_indices[static_cast<size_t>(b)]];
      const float* row =
          logits.data<float>() + static_cast<long>(b) * num_classes;
      auto& out = results[slot];
      out.logits.assign(row, row + num_classes);
      out.label = static_cast<int>(
          std::max_element(out.logits.begin(), out.logits.end()) -
          out.logits.begin());
      if (cache_ != nullptr) {
        const Request& r =
            to_run[batch.request_indices[static_cast<size_t>(b)]];
        cache_->insert(ResponseCache::key_of(r.tokens), out.logits);
      }
    }
  }
  return results;
}

}  // namespace turbo::serving
