// Multi-server load balancing (paper §5: "In a multi-server environment,
// an upper-level load balancer as the one in Nexus can ensure that the
// requests assigned to each server will not be overloaded").
//
// Dispatches an arrival trace across N simulated servers (each a
// scheduler + cost table, possibly heterogeneous), then runs the per-server
// discrete-event simulation on its assigned sub-trace.
//
//   kRoundRobin   — arrival i -> server i mod N.
//   kLeastLoaded  — each request goes to the server with the least
//                   outstanding predicted work at its arrival instant
//                   (Nexus-style backlog awareness, serving::BacklogModel).
//
// The policy vocabulary lives in serving/routing_policy.h, shared with the
// live replica router (src/router/): the simulator and the router place
// requests with the same enums and the same least-loaded arithmetic.
// kSloAware degrades to kLeastLoaded here — the offline Request carries no
// priority, so every simulated request is standard-class.
#pragma once

#include <string>
#include <vector>

#include "serving/routing_policy.h"
#include "serving/simulator.h"

namespace turbo::serving {

struct ClusterServer {
  std::string name;
  const BatchScheduler* scheduler = nullptr;
  const CostTable* costs = nullptr;
  // Relative speed: 1.0 = nominal; a 0.5 server takes 2x the table cost.
  double speed = 1.0;
};

struct ClusterResult {
  DispatchPolicy policy;
  std::vector<SimResult> per_server;
  double total_response_rate = 0.0;
  bool any_saturated = false;
  // Over all completed requests in the cluster.
  SampleSummary latency_ms;
};

ClusterResult simulate_cluster(const std::vector<Request>& arrivals,
                               const std::vector<ClusterServer>& servers,
                               DispatchPolicy policy,
                               const SimOptions& options);

}  // namespace turbo::serving
