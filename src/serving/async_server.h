// Asynchronous serving front end — the paper's Figure 2 pipeline as a real
// concurrent component: clients submit requests into a message queue and
// receive futures; a worker thread drains the queue with the hungry policy
// (schedule whatever is queued the moment the runtime goes idle), runs the
// batch scheduler, executes batches through the model, and fulfills the
// futures.
#pragma once

#include <condition_variable>
#include <deque>
#include <future>
#include <memory>
#include <mutex>
#include <thread>

#include "serving/server.h"

namespace turbo::serving {

class AsyncServer {
 public:
  // Takes ownership of a configured synchronous Server (model + scheduler +
  // cost table + optional cache) and starts the worker.
  explicit AsyncServer(std::unique_ptr<Server> server);
  ~AsyncServer();

  AsyncServer(const AsyncServer&) = delete;
  AsyncServer& operator=(const AsyncServer&) = delete;

  // Enqueue one request; the future resolves when its batch completes.
  // Rejects (throws CheckError) after shutdown() was called.
  std::future<ServedResult> submit(Request request);

  // Drain the queue and stop the worker. Idempotent; also called by the
  // destructor. Pending requests are still served before returning.
  void shutdown();

  // Requests served so far and the number of scheduler invocations
  // (GPU-idle trigger firings).
  size_t served() const;
  size_t scheduler_runs() const;

 private:
  struct Pending {
    Request request;
    std::promise<ServedResult> promise;
  };

  void worker_loop();

  std::unique_ptr<Server> server_;
  std::mutex join_mutex_;  // serializes shutdown/join
  mutable std::mutex mutex_;
  std::condition_variable cv_;
  std::deque<Pending> queue_;
  bool shutdown_ = false;
  size_t served_ = 0;
  size_t scheduler_runs_ = 0;
  std::thread worker_;
};

}  // namespace turbo::serving
