#include "serving/async_server.h"

#include <vector>

#include "common/check.h"

namespace turbo::serving {

AsyncServer::AsyncServer(std::unique_ptr<Server> server)
    : server_(std::move(server)) {
  TT_CHECK(server_ != nullptr);
  worker_ = std::thread([this] { worker_loop(); });
}

AsyncServer::~AsyncServer() { shutdown(); }

std::future<ServedResult> AsyncServer::submit(Request request) {
  std::future<ServedResult> future;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    TT_CHECK_MSG(!shutdown_, "submit after shutdown");
    Pending p;
    p.request = std::move(request);
    future = p.promise.get_future();
    queue_.push_back(std::move(p));
  }
  cv_.notify_one();
  return future;
}

void AsyncServer::shutdown() {
  // Serialize concurrent shutdown() calls (including the destructor's):
  // only one caller may join the worker.
  std::lock_guard<std::mutex> join_lock(join_mutex_);
  {
    std::lock_guard<std::mutex> lock(mutex_);
    shutdown_ = true;
  }
  cv_.notify_all();
  if (worker_.joinable()) worker_.join();
}

size_t AsyncServer::served() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return served_;
}

size_t AsyncServer::scheduler_runs() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return scheduler_runs_;
}

void AsyncServer::worker_loop() {
  for (;;) {
    // Hungry trigger: grab everything queued the moment we are idle.
    std::vector<Pending> batch;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      cv_.wait(lock, [this] { return shutdown_ || !queue_.empty(); });
      if (queue_.empty() && shutdown_) return;
      while (!queue_.empty()) {
        batch.push_back(std::move(queue_.front()));
        queue_.pop_front();
      }
      ++scheduler_runs_;
    }

    std::vector<Request> requests;
    requests.reserve(batch.size());
    for (auto& p : batch) requests.push_back(p.request);

    try {
      std::vector<ServedResult> results = server_->serve(requests);
      TT_CHECK_EQ(results.size(), batch.size());
      for (size_t i = 0; i < batch.size(); ++i) {
        batch[i].promise.set_value(std::move(results[i]));
      }
      std::lock_guard<std::mutex> lock(mutex_);
      served_ += batch.size();
    } catch (...) {
      // One bad request (e.g. empty payload) fails its whole snapshot —
      // surface the error to every waiting client rather than wedging them.
      for (auto& p : batch) {
        p.promise.set_exception(std::current_exception());
      }
    }
  }
}

}  // namespace turbo::serving
