// Response cache (the "Resp Cache" box of paper Fig. 2): an LRU map from
// request content to a previously computed response, answering frequent
// requests without evaluating the model (as in Clipper). The paper's
// experiments run with caching off; the component is provided (and
// exercised by examples/tests) for completeness of the serving framework.
#pragma once

#include <cstdint>
#include <list>
#include <optional>
#include <unordered_map>
#include <vector>

namespace turbo::serving {

class ResponseCache {
 public:
  explicit ResponseCache(size_t capacity) : capacity_(capacity) {}

  // Content key for a token sequence.
  static uint64_t key_of(const std::vector<int>& tokens);

  std::optional<std::vector<float>> lookup(uint64_t key);
  void insert(uint64_t key, std::vector<float> response);

  size_t size() const { return map_.size(); }
  size_t hits() const { return hits_; }
  size_t misses() const { return misses_; }

 private:
  struct Entry {
    uint64_t key;
    std::vector<float> response;
  };

  size_t capacity_;
  std::list<Entry> lru_;  // front = most recent
  std::unordered_map<uint64_t, std::list<Entry>::iterator> map_;
  size_t hits_ = 0;
  size_t misses_ = 0;
};

}  // namespace turbo::serving
