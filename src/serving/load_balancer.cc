#include "serving/load_balancer.h"

#include <algorithm>
#include <limits>

#include "common/check.h"

namespace turbo::serving {

namespace {

// Scales a cost table's predictions by 1/speed for heterogeneous servers.
CostTable scaled_table(const CostTable& base, double speed) {
  return CostTable::warmup(
      [&](int len, int batch) { return base.batch_cost_ms(len, batch) / speed; },
      base.max_len(), base.max_batch(), /*len_step=*/8);
}

}  // namespace

ClusterResult simulate_cluster(const std::vector<Request>& arrivals,
                               const std::vector<ClusterServer>& servers,
                               DispatchPolicy policy,
                               const SimOptions& options) {
  TT_CHECK(!servers.empty());
  TT_CHECK(!arrivals.empty());
  const size_t n = servers.size();
  for (const auto& s : servers) {
    TT_CHECK(s.scheduler != nullptr);
    TT_CHECK(s.costs != nullptr);
    TT_CHECK_GT(s.speed, 0.0);
  }

  // Dispatch: split the trace into per-server sub-traces.
  std::vector<std::vector<Request>> assigned(n);
  if (policy == DispatchPolicy::kRoundRobin) {
    for (size_t i = 0; i < arrivals.size(); ++i) {
      assigned[i % n].push_back(arrivals[i]);
    }
  } else {
    // Least-loaded (kSloAware degrades to it here: offline Requests carry
    // no priority): each server's outstanding predicted work is a virtual
    // backlog draining in real time — the shared BacklogModel heuristic.
    BacklogModel backlog(n);
    for (const auto& r : arrivals) {
      const size_t best = backlog.pick(r.arrival_s);
      const double exec_s =
          servers[best].costs->batch_cost_ms(r.length, 1) /
          servers[best].speed / 1e3;
      backlog.charge(best, r.arrival_s, exec_s);
      assigned[best].push_back(r);
    }
  }

  ClusterResult result;
  result.policy = policy;
  std::vector<double> all_latencies;
  for (size_t s = 0; s < n; ++s) {
    if (assigned[s].empty()) {
      result.per_server.push_back(SimResult{});
      continue;
    }
    const CostTable table = servers[s].speed == 1.0
                                ? *servers[s].costs
                                : scaled_table(*servers[s].costs,
                                               servers[s].speed);
    SimResult r = simulate_serving(assigned[s], *servers[s].scheduler, table,
                                   options);
    r.scheduler = servers[s].name;
    result.total_response_rate += r.response_rate;
    result.any_saturated = result.any_saturated || r.saturated;
    // Re-expand latency summary inputs approximately: we only have the
    // summary, so accumulate weighted means and extremes.
    all_latencies.push_back(r.latency_ms.mean);
    result.per_server.push_back(std::move(r));
  }

  // Cluster latency: count-weighted mean of per-server means; min/max over
  // per-server extremes.
  double weighted = 0;
  size_t total = 0;
  double min_l = std::numeric_limits<double>::max(), max_l = 0;
  for (const auto& r : result.per_server) {
    if (r.completed == 0) continue;
    weighted += r.latency_ms.mean * static_cast<double>(r.completed);
    total += r.completed;
    min_l = std::min(min_l, r.latency_ms.min);
    max_l = std::max(max_l, r.latency_ms.max);
  }
  if (total > 0) {
    result.latency_ms.count = total;
    result.latency_ms.mean = weighted / static_cast<double>(total);
    result.latency_ms.min = min_l;
    result.latency_ms.max = max_l;
  }
  return result;
}

}  // namespace turbo::serving
