#include "serving/response_cache.h"

#include "common/hash.h"

namespace turbo::serving {

uint64_t ResponseCache::key_of(const std::vector<int>& tokens) {
  return fnv1a_tokens(tokens);
}

std::optional<std::vector<float>> ResponseCache::lookup(uint64_t key) {
  auto it = map_.find(key);
  if (it == map_.end()) {
    ++misses_;
    return std::nullopt;
  }
  ++hits_;
  lru_.splice(lru_.begin(), lru_, it->second);
  return it->second->response;
}

void ResponseCache::insert(uint64_t key, std::vector<float> response) {
  auto it = map_.find(key);
  if (it != map_.end()) {
    it->second->response = std::move(response);
    lru_.splice(lru_.begin(), lru_, it->second);
    return;
  }
  lru_.push_front(Entry{key, std::move(response)});
  map_[key] = lru_.begin();
  if (map_.size() > capacity_) {
    map_.erase(lru_.back().key);
    lru_.pop_back();
  }
}

}  // namespace turbo::serving
