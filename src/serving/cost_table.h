// cached_cost: the (sequence length, batch size) -> latency dictionary that
// drives the DP batch scheduler (paper §5, §6.3).
//
// Built by a warm-up phase that evaluates the runtime's latency over a grid
// of lengths x batch sizes; off-grid queries bilinearly interpolate (the
// paper's second strategy for large parameter spaces). Tables can be saved
// to / loaded from a CSV file, standing in for the paper's database reload
// on service restart.
#pragma once

#include <functional>
#include <string>
#include <vector>

namespace turbo::serving {

class CostTable {
 public:
  // latency_ms(length, batch) -> full-batch latency in milliseconds.
  using LatencyFn = std::function<double(int, int)>;

  // Warm-up: evaluates `latency_ms` on a grid of lengths {len_step, 2 *
  // len_step, ... max_len} (plus length 1) x batches {1..max_batch}.
  static CostTable warmup(const LatencyFn& latency_ms, int max_len,
                          int max_batch, int len_step = 8);

  // Full-batch latency (ms) for serving `batch` requests padded to `len`,
  // bilinearly interpolated between grid points.
  double batch_cost_ms(int len, int batch) const;

  // Per-request amortized cost — the paper's cached_cost[len][batch] as it
  // appears in Equation 2 (multiplied back by batch size inside the DP).
  double amortized_cost_ms(int len, int batch) const {
    return batch_cost_ms(len, batch) / batch;
  }

  int max_len() const { return max_len_; }
  int max_batch() const { return max_batch_; }

  // Lazy-evaluation update (paper §6.3): fold a real measured batch latency
  // back into the dictionary. The surrounding grid cells move toward the
  // observation with an exponential moving average (weight `alpha`, split
  // by interpolation distance), so serving gradually corrects a coarse or
  // stale warm-up without a re-warm-up pause.
  void observe(int len, int batch, double measured_ms, double alpha = 0.25);

  void save_csv(const std::string& path) const;
  static CostTable load_csv(const std::string& path);

 private:
  CostTable() = default;

  int max_len_ = 0;
  int max_batch_ = 0;
  int len_step_ = 0;
  std::vector<int> len_grid_;
  // grid_[li * max_batch + (b-1)] = latency for len_grid_[li], batch b.
  std::vector<double> grid_;
};

}  // namespace turbo::serving
