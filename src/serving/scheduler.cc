#include "serving/scheduler.h"

#include <algorithm>
#include <limits>
#include <numeric>

#include "common/check.h"

namespace turbo::serving {

std::vector<Batch> NoBatchScheduler::schedule(
    const std::vector<Request>& requests, const CostTable& costs) const {
  std::vector<Batch> batches;
  batches.reserve(requests.size());
  for (size_t i = 0; i < requests.size(); ++i) {
    Batch b;
    b.request_indices = {i};
    b.padded_length = requests[i].length;
    b.predicted_cost_ms = costs.batch_cost_ms(requests[i].length, 1);
    batches.push_back(std::move(b));
  }
  return batches;
}

std::vector<Batch> NaiveBatchScheduler::schedule(
    const std::vector<Request>& requests, const CostTable& costs) const {
  std::vector<Batch> batches;
  for (size_t begin = 0; begin < requests.size();
       begin += static_cast<size_t>(max_batch_)) {
    const size_t end =
        std::min(requests.size(), begin + static_cast<size_t>(max_batch_));
    Batch b;
    int max_len = 0;
    for (size_t i = begin; i < end; ++i) {
      b.request_indices.push_back(i);
      max_len = std::max(max_len, requests[i].length);
    }
    b.padded_length = max_len;
    b.predicted_cost_ms = costs.batch_cost_ms(max_len, b.size());
    batches.push_back(std::move(b));
  }
  return batches;
}

std::vector<Batch> DpBatchScheduler::schedule(
    const std::vector<Request>& requests, const CostTable& costs) const {
  const int n = static_cast<int>(requests.size());
  if (n == 0) return {};

  // Algorithm 2 L1: sort (indices) by increasing sequence length.
  std::vector<size_t> order(requests.size());
  std::iota(order.begin(), order.end(), size_t{0});
  std::stable_sort(order.begin(), order.end(), [&](size_t a, size_t b) {
    return requests[a].length < requests[b].length;
  });

  // states[i]: minimum time to serve the first i sorted requests;
  // start_idx[i]: first sorted position (0-based) of the batch ending at i.
  constexpr double kInf = std::numeric_limits<double>::infinity();
  std::vector<double> states(static_cast<size_t>(n) + 1, kInf);
  std::vector<int> start_idx(static_cast<size_t>(n) + 1, 0);
  states[0] = 0.0;

  for (int i = 1; i <= n; ++i) {
    const int cur_length = requests[order[static_cast<size_t>(i - 1)]].length;
    // Batch [j..i] (1-based over sorted positions): since the list is
    // sorted, request i has the max length, so the whole batch pads to it.
    double min_cost = kInf;
    int best_start = i - 1;
    const int j_low = std::max(1, i - max_batch_ + 1);
    for (int j = i; j >= j_low; --j) {
      const int bs = i - j + 1;
      const double tmp = states[static_cast<size_t>(j - 1)] +
                         costs.amortized_cost_ms(cur_length, bs) * bs;
      if (tmp < min_cost) {
        min_cost = tmp;
        best_start = j - 1;
      }
    }
    states[static_cast<size_t>(i)] = min_cost;
    start_idx[static_cast<size_t>(i)] = best_start;
  }

  // Backtrack (Algorithm 2 L19-L24).
  std::vector<Batch> batches;
  int i = n;
  while (i > 0) {
    const int start = start_idx[static_cast<size_t>(i)];
    Batch b;
    int max_len = 0;
    for (int p = start; p < i; ++p) {
      const size_t idx = order[static_cast<size_t>(p)];
      b.request_indices.push_back(idx);
      max_len = std::max(max_len, requests[idx].length);
    }
    b.padded_length = max_len;
    b.predicted_cost_ms = costs.batch_cost_ms(max_len, b.size());
    batches.push_back(std::move(b));
    i = start;
  }
  // Shortest-length batches first (they were emitted in reverse).
  std::reverse(batches.begin(), batches.end());
  return batches;
}

double scheme_cost_ms(const std::vector<Batch>& batches) {
  double total = 0.0;
  for (const auto& b : batches) total += b.predicted_cost_ms;
  return total;
}

}  // namespace turbo::serving
