// Request-dispatch vocabulary shared by the offline cluster simulator
// (serving::simulate_cluster) and the live replica router (router::Router).
//
// The paper's §5 calls for "an upper-level load balancer as the one in
// Nexus" once a single engine saturates. The repo grew that idea twice —
// first as a discrete-event simulation (load_balancer.h), then as a live
// front end over engine replicas (src/router/) — and both must speak the
// same policy vocabulary or benchmark results stop being comparable with
// simulated predictions. This header is the single home for:
//
//  * DispatchPolicy — which replica/server a request is placed on.
//  * SloClass / SloPolicy — the latency-SLO class a request belongs to,
//    derived from GenerationRequest::priority (the same field preemption
//    victim choice already keys on, so "tight SLO" requests are both
//    routed first and preempted last).
//  * BacklogModel — the Nexus-style least-loaded heuristic: per-target
//    outstanding predicted work, modelled as a virtual backlog that drains
//    in (real or virtual) time. The simulator feeds it arrival seconds and
//    cost-table predictions; the live router feeds it engine iterations
//    and observed per-step costs. Same arithmetic, one implementation.
#pragma once

#include <cstddef>
#include <vector>

namespace turbo::serving {

// How a dispatcher places one request among N targets.
//  kRoundRobin  — arrival i -> target i mod N. The control baseline.
//  kLeastLoaded — the target whose predicted backlog clears earliest at
//                 the request's arrival instant (BacklogModel::pick).
//  kSloAware    — class-dependent (live router only; the offline
//                 simulator's Request carries no priority, so
//                 simulate_cluster treats it as kLeastLoaded): tight-SLO
//                 requests take the least-loaded replica with a
//                 routing-denial fallback past KV-exhausted replicas,
//                 batch-class requests backfill the replica with the most
//                 free KV, standard requests go least-loaded.
enum class DispatchPolicy { kRoundRobin, kLeastLoaded, kSloAware };

// Stable short name ("round_robin", "least_loaded", "slo_aware").
const char* dispatch_policy_name(DispatchPolicy policy);

// Latency-SLO class of one request. Ordering is meaningful: lower enum
// value = tighter deadline.
enum class SloClass { kTight = 0, kStandard = 1, kBatch = 2 };

const char* slo_class_name(SloClass slo);

// priority -> SloClass mapping. GenerationRequest::priority is already the
// preemption weight (higher survives longer); the router reuses it as the
// SLO signal so one field expresses both "don't preempt me" and "route me
// onto the least-loaded replica".
struct SloPolicy {
  int tight_min_priority = 2;   // priority >= this  -> kTight
  int batch_max_priority = -1;  // priority <= this  -> kBatch
};

inline SloClass slo_class_of(int priority, const SloPolicy& policy = {}) {
  if (priority >= policy.tight_min_priority) return SloClass::kTight;
  if (priority <= policy.batch_max_priority) return SloClass::kBatch;
  return SloClass::kStandard;
}

// Nexus-style least-loaded backlog heuristic. Each target carries the
// instant its outstanding predicted work clears; placing a request charges
// its predicted execution span onto the chosen target. Time is whatever
// monotonic unit the caller uses consistently — the simulator passes
// arrival seconds and cost-table milliseconds/1e3, the live router passes
// engine iterations and predicted step counts.
//
// Ownership/thread-safety: a plain value type owned by one dispatcher;
// not thread-safe (dispatch decisions are serialized by design in both
// consumers).
// Invariants: ready_at(t, now) never runs backwards (a drained target
// reports `now`); charge() only moves a target's clear-instant forward.
class BacklogModel {
 public:
  explicit BacklogModel(size_t targets) : backlog_until_(targets, 0.0) {}

  size_t targets() const { return backlog_until_.size(); }

  // Instant target `i`'s backlog clears for a request arriving at `now`:
  // max(backlog, now) — an idle target is ready immediately, a busy one
  // when its outstanding work drains.
  double ready_at(size_t i, double now) const;

  // Target whose backlog clears earliest at `now` (lowest index on ties —
  // deterministic, matches the simulator's historical behaviour).
  size_t pick(double now) const;

  // Charge `exec` units of predicted work to target `i` for a request
  // arriving at `now`.
  void charge(size_t i, double now, double exec);

  // Outstanding predicted work on target `i` at `now` (0 when drained).
  double outstanding(size_t i, double now) const;

 private:
  std::vector<double> backlog_until_;  // instant each target's work clears
};

}  // namespace turbo::serving
