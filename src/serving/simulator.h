// Discrete-event serving simulator (paper §6.3 experimental substrate).
//
// Replays a pre-generated arrival trace against one simulated GPU whose
// batch service times come from the CostTable. The trigger policy decides
// when the batch scheduler fires:
//
//   hungry — the moment the runtime goes idle, schedule whatever is in the
//            message queue (the policy the paper's experiments use);
//   lazy   — wait for max_batch queued requests or a timeout, and fire
//            early if the oldest waiting request risks its SLO (§5).
//
// Saturation semantics follow the paper: when the arrival rate exceeds the
// critical point, the queue grows without bound and latency tends to
// infinity — reported here as saturated=true with the achieved response
// throughput.
#pragma once

#include <memory>
#include <string>

#include "common/stats.h"
#include "serving/cost_table.h"
#include "serving/request.h"
#include "serving/scheduler.h"

namespace turbo::serving {

enum class TriggerPolicy { kHungry, kLazy };

struct SimOptions {
  TriggerPolicy trigger = TriggerPolicy::kHungry;
  // Lazy-policy knobs (§5): fire on queue >= max_batch or timeout, or when
  // the head-of-queue wait plus estimated execution exceeds half the SLO.
  double lazy_timeout_ms = 5.0;
  double latency_slo_ms = 100.0;
  int max_batch = 20;
  // Backlog fraction above which the run is declared saturated.
  double saturation_backlog_frac = 0.05;
  // Admission control: requests that have waited longer than this when the
  // scheduler fires are dropped instead of served (paper §6.3: past the
  // critical point "the service system has to drop some requests").
  // 0 disables dropping.
  double drop_timeout_ms = 0.0;
};

struct SimResult {
  std::string scheduler;
  double request_rate = 0.0;    // offered load (req/s)
  double response_rate = 0.0;   // achieved throughput (resp/s)
  bool saturated = false;
  SampleSummary latency_ms;     // over completed requests
  size_t arrived = 0;
  size_t completed = 0;
  size_t dropped = 0;  // admission-control drops (drop_timeout_ms)
  double gpu_busy_frac = 0.0;
  double padding_overhead_frac = 0.0;  // padded tokens / real tokens - 1
};

SimResult simulate_serving(const std::vector<Request>& arrivals,
                           const BatchScheduler& scheduler,
                           const CostTable& costs, const SimOptions& options);

}  // namespace turbo::serving
