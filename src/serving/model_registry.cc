#include "serving/model_registry.h"

#include "common/check.h"

namespace turbo::serving {

void ModelRegistry::register_model(
    const std::string& name, int version,
    std::shared_ptr<model::EncoderModel> model) {
  TT_CHECK(model != nullptr);
  std::lock_guard<std::mutex> lock(mutex_);
  auto& versions = models_[name];
  TT_CHECK_MSG(versions.find(version) == versions.end(),
               name << " v" << version << " already registered");
  versions[version] = std::move(model);
}

bool ModelRegistry::unregister_model(const std::string& name, int version) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = models_.find(name);
  if (it == models_.end()) return false;
  const bool erased = it->second.erase(version) > 0;
  if (it->second.empty()) models_.erase(it);
  return erased;
}

std::shared_ptr<model::EncoderModel> ModelRegistry::latest(
    const std::string& name) const {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = models_.find(name);
  if (it == models_.end() || it->second.empty()) return nullptr;
  return it->second.rbegin()->second;
}

std::shared_ptr<model::EncoderModel> ModelRegistry::version(
    const std::string& name, int v) const {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = models_.find(name);
  if (it == models_.end()) return nullptr;
  auto vit = it->second.find(v);
  return vit == it->second.end() ? nullptr : vit->second;
}

std::vector<int> ModelRegistry::versions(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<int> out;
  auto it = models_.find(name);
  if (it != models_.end()) {
    for (const auto& [v, m] : it->second) out.push_back(v);
  }
  return out;
}

size_t ModelRegistry::size() const {
  std::lock_guard<std::mutex> lock(mutex_);
  size_t n = 0;
  for (const auto& [name, versions] : models_) n += versions.size();
  return n;
}

EncoderEnsemble::EncoderEnsemble(
    std::vector<std::shared_ptr<model::EncoderModel>> members)
    : members_(std::move(members)) {
  TT_CHECK(!members_.empty());
  const int hidden = members_.front()->config().hidden;
  for (const auto& m : members_) {
    TT_CHECK(m != nullptr);
    TT_CHECK_EQ(m->config().hidden, hidden);
  }
}

Tensor EncoderEnsemble::forward(const Tensor& ids,
                                const std::vector<int>* valid_lens) {
  Tensor sum = members_.front()->forward(ids, valid_lens);
  float* acc = sum.data<float>();
  for (size_t i = 1; i < members_.size(); ++i) {
    Tensor out = members_[i]->forward(ids, valid_lens);
    const float* other = out.data<float>();
    for (int64_t j = 0; j < sum.numel(); ++j) acc[j] += other[j];
  }
  const float inv = 1.0f / static_cast<float>(members_.size());
  for (int64_t j = 0; j < sum.numel(); ++j) acc[j] *= inv;
  return sum;
}

}  // namespace turbo::serving
