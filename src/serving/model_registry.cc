#include "serving/model_registry.h"

#include "common/check.h"

namespace turbo::serving {

EncoderEnsemble::EncoderEnsemble(
    std::vector<std::shared_ptr<model::EncoderModel>> members)
    : members_(std::move(members)) {
  TT_CHECK(!members_.empty());
  const int hidden = members_.front()->config().hidden;
  for (const auto& m : members_) {
    TT_CHECK(m != nullptr);
    TT_CHECK_EQ(m->config().hidden, hidden);
  }
}

Tensor EncoderEnsemble::forward(const Tensor& ids,
                                const std::vector<int>* valid_lens) {
  Tensor sum = members_.front()->forward(ids, valid_lens);
  float* acc = sum.data<float>();
  for (size_t i = 1; i < members_.size(); ++i) {
    Tensor out = members_[i]->forward(ids, valid_lens);
    const float* other = out.data<float>();
    for (int64_t j = 0; j < sum.numel(); ++j) acc[j] += other[j];
  }
  const float inv = 1.0f / static_cast<float>(members_.size());
  for (int64_t j = 0; j < sum.numel(); ++j) acc[j] *= inv;
  return sum;
}

}  // namespace turbo::serving
