// Workload generation for the serving experiments (§6.3): requests with
// uniformly distributed sequence lengths arriving with Poisson
// inter-arrival times.
#pragma once

#include <vector>

#include "common/rng.h"
#include "serving/request.h"

namespace turbo::serving {

struct WorkloadSpec {
  double rate_per_s = 100.0;  // Poisson arrival rate
  double horizon_s = 10.0;    // generate arrivals in [0, horizon)
  int min_len = 2;
  int max_len = 100;
  uint64_t seed = 0x5eed;
};

// Requests sorted by arrival time.
std::vector<Request> generate_poisson_workload(const WorkloadSpec& spec);

}  // namespace turbo::serving
