// In-process serving front end: the paper's Figure 2 pipeline (message
// queue -> response cache -> batch scheduler -> runtime) wired to a real
// model. Requests carry token payloads; scheduled batches are zero-padded,
// executed through the classifier with attention masking, and unpacked
// into per-request responses.
//
// This is the real-execution counterpart of the discrete-event simulator:
// the simulator measures scheduling policies at datacenter rates, this
// class actually serves.
#pragma once

#include <memory>
#include <vector>

#include "model/classifier.h"
#include "serving/response_cache.h"
#include "serving/scheduler.h"

namespace turbo::serving {

struct ServedResult {
  int64_t request_id = 0;
  std::vector<float> logits;
  int label = 0;
  bool from_cache = false;
};

class Server {
 public:
  Server(std::unique_ptr<model::SequenceClassifier> classifier,
         std::unique_ptr<BatchScheduler> scheduler, CostTable costs,
         size_t cache_capacity = 0);

  // Serves every request in the queue snapshot; results are returned in
  // request order.
  std::vector<ServedResult> serve(const std::vector<Request>& requests);

  const ResponseCache* cache() const { return cache_.get(); }
  model::SequenceClassifier& classifier() { return *classifier_; }

 private:
  std::unique_ptr<model::SequenceClassifier> classifier_;
  std::unique_ptr<BatchScheduler> scheduler_;
  CostTable costs_;
  std::unique_ptr<ResponseCache> cache_;
};

}  // namespace turbo::serving
