#include "serving/routing_policy.h"

#include <algorithm>
#include <limits>

#include "common/check.h"

namespace turbo::serving {

const char* dispatch_policy_name(DispatchPolicy policy) {
  switch (policy) {
    case DispatchPolicy::kRoundRobin:
      return "round_robin";
    case DispatchPolicy::kLeastLoaded:
      return "least_loaded";
    case DispatchPolicy::kSloAware:
      return "slo_aware";
  }
  TT_CHECK_MSG(false, "unknown DispatchPolicy");
  return "?";
}

const char* slo_class_name(SloClass slo) {
  switch (slo) {
    case SloClass::kTight:
      return "tight";
    case SloClass::kStandard:
      return "standard";
    case SloClass::kBatch:
      return "batch";
  }
  TT_CHECK_MSG(false, "unknown SloClass");
  return "?";
}

double BacklogModel::ready_at(size_t i, double now) const {
  TT_CHECK_LT(i, backlog_until_.size());
  return std::max(backlog_until_[i], now);
}

size_t BacklogModel::pick(double now) const {
  TT_CHECK(!backlog_until_.empty());
  size_t best = 0;
  double best_ready = std::numeric_limits<double>::max();
  for (size_t i = 0; i < backlog_until_.size(); ++i) {
    const double ready = ready_at(i, now);
    if (ready < best_ready) {
      best_ready = ready;
      best = i;
    }
  }
  return best;
}

void BacklogModel::charge(size_t i, double now, double exec) {
  TT_CHECK_LT(i, backlog_until_.size());
  TT_CHECK_GE(exec, 0.0);
  backlog_until_[i] = ready_at(i, now) + exec;
}

double BacklogModel::outstanding(size_t i, double now) const {
  return ready_at(i, now) - now;
}

}  // namespace turbo::serving
