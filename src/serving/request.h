// Serving-framework request/response records.
#pragma once

#include <cstdint>
#include <vector>

namespace turbo::serving {

struct Request {
  int64_t id = 0;
  int length = 0;            // sequence length (tokens)
  double arrival_s = 0.0;    // arrival time at the message queue
  std::vector<int> tokens;   // optional payload (real-execution paths)
};

struct Response {
  int64_t request_id = 0;
  double finish_s = 0.0;
  double latency_ms = 0.0;
  int batch_size = 0;        // batch the request was served in
  int padded_length = 0;     // padded length of that batch
};

}  // namespace turbo::serving
