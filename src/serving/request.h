// Serving-framework request/response records.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

namespace turbo::serving {

struct Request {
  int64_t id = 0;
  int length = 0;            // sequence length (tokens)
  double arrival_s = 0.0;    // arrival time at the message queue
  std::vector<int> tokens;   // optional payload (real-execution paths)
};

struct Response {
  int64_t request_id = 0;
  double finish_s = 0.0;
  double latency_ms = 0.0;
  int batch_size = 0;        // batch the request was served in
  int padded_length = 0;     // padded length of that batch
};

// One generation (seq2seq decode) request for the iteration-level serving
// path in src/genserve: encode `src_tokens`, then decode autoregressively
// until EOS or `max_new_tokens`.
struct GenerationRequest {
  int64_t id = 0;
  std::vector<int> src_tokens;
  int max_new_tokens = 32;
  int bos_id = 1;
  int eos_id = 2;
  // Preemption weight under optimistic admission: when the KV pool runs
  // out mid-decode, lower-priority sequences are preempted first (see
  // GenSchedulerOptions::victim_policy). Ignored by worst-case admission,
  // which never preempts.
  int priority = 0;
  // Multi-model routing (genserve::MultiModelGenerationServer). `model`
  // names the registered bundle to decode with; empty routes to the
  // server's default model (the first registered name unless overridden).
  // `model_version` pins an exact registered version; <= 0 resolves to the
  // latest version live at submit time — later registrations move the
  // "latest" route, but a sequence never migrates once admitted. The
  // single-model GenerationServer ignores both fields.
  std::string model;
  int model_version = 0;
};

struct GenerationResponse {
  int64_t request_id = 0;
  std::vector<int> tokens;   // generated tokens, excluding BOS and EOS
  int steps = 0;             // decode steps consumed (== tokens fed)
  int src_len = 0;
  bool hit_max_len = false;  // stopped by max_new_tokens, not EOS
  double latency_ms = 0.0;   // admission -> completion, server clock
};

// Streaming hook: invoked once per decoded token, in decode order, from
// the serving thread. Every decoded token is streamed, including a
// terminating EOS (whose call carries is_last = true); a sequence stopped
// by max_new_tokens instead carries is_last on its final content token.
using TokenCallback =
    std::function<void(int64_t request_id, int token, int step, bool is_last)>;

}  // namespace turbo::serving
