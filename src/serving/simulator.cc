#include "serving/simulator.h"

#include <algorithm>
#include <deque>

#include "common/check.h"

namespace turbo::serving {

SimResult simulate_serving(const std::vector<Request>& arrivals,
                           const BatchScheduler& scheduler,
                           const CostTable& costs,
                           const SimOptions& options) {
  TT_CHECK(!arrivals.empty());
  for (size_t i = 1; i < arrivals.size(); ++i) {
    TT_CHECK_GE(arrivals[i].arrival_s, arrivals[i - 1].arrival_s);
  }
  const double horizon_end = arrivals.back().arrival_s;
  // Give the server up to one extra horizon to drain; anything left after
  // that is a growing backlog, i.e. the system is past its critical point.
  const double deadline = 2.0 * horizon_end + 1.0;

  std::deque<Request> queue;
  size_t next_arrival = 0;
  size_t total_dropped = 0;
  double now = 0.0;
  double busy_s = 0.0;
  double last_finish = 0.0;
  double padded_tokens = 0.0, real_tokens = 0.0;
  std::vector<double> latencies;

  auto admit_until = [&](double t) {
    while (next_arrival < arrivals.size() &&
           arrivals[next_arrival].arrival_s <= t) {
      queue.push_back(arrivals[next_arrival]);
      ++next_arrival;
    }
  };

  while (now <= deadline) {
    admit_until(now);
    if (queue.empty()) {
      if (next_arrival >= arrivals.size()) break;  // drained everything
      now = arrivals[next_arrival].arrival_s;
      continue;
    }

    if (options.trigger == TriggerPolicy::kLazy) {
      // Fire when the queue fills, the head request has waited out the
      // timeout, or its wait plus estimated execution threatens the SLO.
      const double oldest = queue.front().arrival_s;
      const double est_exec_ms =
          costs.batch_cost_ms(queue.front().length,
                              std::min<int>(options.max_batch,
                                            static_cast<int>(queue.size())));
      const bool fire =
          static_cast<int>(queue.size()) >= options.max_batch ||
          (now - oldest) * 1e3 >= options.lazy_timeout_ms ||
          (now - oldest) * 1e3 + est_exec_ms >= options.latency_slo_ms / 2;
      if (!fire) {
        double next_event = oldest + options.lazy_timeout_ms / 1e3;
        if (next_arrival < arrivals.size()) {
          next_event = std::min(next_event, arrivals[next_arrival].arrival_s);
        }
        // Rounding can leave next_event == now when the timeout boundary is
        // hit exactly; fall through and fire rather than spin.
        if (next_event > now) {
          now = next_event;
          continue;
        }
      }
    }

    // Admission control: shed requests that already blew their deadline.
    size_t dropped_now = 0;
    if (options.drop_timeout_ms > 0) {
      std::deque<Request> kept;
      for (auto& r : queue) {
        if ((now - r.arrival_s) * 1e3 > options.drop_timeout_ms) {
          ++dropped_now;
        } else {
          kept.push_back(std::move(r));
        }
      }
      queue = std::move(kept);
      total_dropped += dropped_now;
      if (queue.empty()) continue;
    }

    // Snapshot the MQ and schedule it.
    std::vector<Request> snapshot(queue.begin(), queue.end());
    queue.clear();
    const std::vector<Batch> batches = scheduler.schedule(snapshot, costs);
    size_t scheduled = 0;
    for (const auto& b : batches) scheduled += b.request_indices.size();
    TT_CHECK_EQ(scheduled, snapshot.size());

    for (const auto& b : batches) {
      const double start = now;
      const double exec_s = b.predicted_cost_ms / 1e3;
      const double end = start + exec_s;
      busy_s += exec_s;
      for (size_t idx : b.request_indices) {
        const Request& r = snapshot[idx];
        latencies.push_back((end - r.arrival_s) * 1e3);
        padded_tokens += b.padded_length;
        real_tokens += r.length;
      }
      last_finish = end;
      now = end;
      if (now > deadline) break;
    }
  }

  SimResult result;
  result.scheduler = scheduler.name();
  result.arrived = arrivals.size();
  result.completed = latencies.size();
  result.request_rate =
      static_cast<double>(arrivals.size()) / std::max(horizon_end, 1e-9);
  const double elapsed = std::max(horizon_end, last_finish);
  result.response_rate = static_cast<double>(result.completed) / elapsed;
  result.dropped = total_dropped;
  const size_t backlog = result.arrived - result.completed - total_dropped;
  result.saturated =
      static_cast<double>(backlog + total_dropped) >
      options.saturation_backlog_frac * static_cast<double>(result.arrived);
  result.latency_ms = summarize(latencies);
  result.gpu_busy_frac = busy_s / std::max(elapsed, 1e-9);
  result.padding_overhead_frac =
      real_tokens > 0 ? padded_tokens / real_tokens - 1.0 : 0.0;
  return result;
}

}  // namespace turbo::serving
