#include "serving/workload.h"

#include "common/check.h"

namespace turbo::serving {

std::vector<Request> generate_poisson_workload(const WorkloadSpec& spec) {
  TT_CHECK_GT(spec.rate_per_s, 0.0);
  TT_CHECK_GT(spec.horizon_s, 0.0);
  TT_CHECK_GE(spec.max_len, spec.min_len);
  TT_CHECK_GE(spec.min_len, 1);

  Rng rng(spec.seed);
  std::vector<Request> requests;
  double t = 0.0;
  int64_t id = 0;
  for (;;) {
    t += rng.exponential(spec.rate_per_s);
    if (t >= spec.horizon_s) break;
    Request r;
    r.id = id++;
    r.arrival_s = t;
    r.length = static_cast<int>(rng.uniform_int(spec.min_len, spec.max_len));
    requests.push_back(std::move(r));
  }
  return requests;
}

}  // namespace turbo::serving
