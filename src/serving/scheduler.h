// Batch schedulers (paper §5).
//
// Given the requests currently in the message queue, a scheduler partitions
// them into batches; each batch is zero-padded to its longest member.
//
//   NoBatchScheduler    — every request alone (PyTorch-NoBatch and
//                         Turbo-NoBatch baselines).
//   NaiveBatchScheduler — everything in the queue in one batch (chunked
//                         only by the max batch size); pays full padding.
//   DpBatchScheduler    — Algorithm 2: sort by length, dynamic program over
//                         split points with Equation 2, O(n^2) (O(n * max
//                         batch) with the batch-size cap), maximizing
//                         response throughput.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "serving/cost_table.h"
#include "serving/request.h"

namespace turbo::serving {

struct Batch {
  std::vector<size_t> request_indices;  // into the scheduler's input list
  int padded_length = 0;
  double predicted_cost_ms = 0.0;

  int size() const { return static_cast<int>(request_indices.size()); }
};

class BatchScheduler {
 public:
  virtual ~BatchScheduler() = default;
  virtual std::string name() const = 0;

  // Partition `requests` into batches. Every index appears exactly once.
  virtual std::vector<Batch> schedule(const std::vector<Request>& requests,
                                      const CostTable& costs) const = 0;
};

class NoBatchScheduler final : public BatchScheduler {
 public:
  std::string name() const override { return "NoBatch"; }
  std::vector<Batch> schedule(const std::vector<Request>& requests,
                              const CostTable& costs) const override;
};

class NaiveBatchScheduler final : public BatchScheduler {
 public:
  explicit NaiveBatchScheduler(int max_batch) : max_batch_(max_batch) {}
  std::string name() const override { return "Naive-Batch"; }
  std::vector<Batch> schedule(const std::vector<Request>& requests,
                              const CostTable& costs) const override;

 private:
  int max_batch_;
};

class DpBatchScheduler final : public BatchScheduler {
 public:
  explicit DpBatchScheduler(int max_batch) : max_batch_(max_batch) {}
  std::string name() const override { return "DP-Batch"; }
  std::vector<Batch> schedule(const std::vector<Request>& requests,
                              const CostTable& costs) const override;

 private:
  int max_batch_;
};

// Total predicted time of a batching scheme — the DP's objective, exposed
// so tests can assert optimality against brute force.
double scheme_cost_ms(const std::vector<Batch>& batches);

}  // namespace turbo::serving
