// Model configurations (paper Table 3).
//
// Note on Table 3 as printed: it lists hidden_size=4096 for the "base"
// BERT, which contradicts the paper's own 6.9 Gflops / 40-token figure and
// the stated "base configuration" (hidden 768, inter 3072). We encode the
// standard base/distil configs (768) and keep ALBERT as printed
// (12 layers, 64 heads, hidden 4096, inter 16384 — the xxlarge layout,
// consistent with "large configuration" driving up its GEMM share, §6.2.1).
#pragma once

#include <string>

#include "graph/builders.h"
#include "perfmodel/model_latency.h"

namespace turbo::model {

struct ModelConfig {
  std::string name;
  int num_layers = 12;
  int hidden = 768;
  int heads = 12;
  int intermediate = 3072;
  int vocab = 30522;
  int max_pos = 512;
  bool share_layer_weights = false;  // ALBERT
  // Run GEMMs under the tensor-core numeric contract (operands rounded to
  // fp16, fp32 accumulation) — the Turbo-TC configuration. The paper calls
  // its accuracy impact "minimal and acceptable"; tests quantify it.
  bool tensor_core_gemm = false;
  // Decoder-only (GPT-style causal LM): no encoder, and the decoder skips
  // its cross-attention sublayer entirely. Prompts are prefilled through
  // the decode loop one token per step, which is what makes block-aligned
  // radix prefix sharing of the self K/V exact.
  bool decoder_only = false;

  int head_dim() const { return hidden / heads; }

  // K + V bytes one cached token row costs across all decoder layers —
  // the unit multi-model budget sizing is done in (a KV block holds
  // block_tokens of these per layer).
  size_t kv_bytes_per_token() const {
    return static_cast<size_t>(2) * hidden * num_layers * sizeof(float);
  }

  graph::LayerDims layer_dims() const {
    return graph::LayerDims{hidden, heads, intermediate};
  }
  perfmodel::EncoderModelDesc perf_desc() const {
    perfmodel::EncoderModelDesc d;
    d.name = name;
    d.dims = layer_dims();
    d.num_layers = num_layers;
    d.vocab = vocab;
    return d;
  }

  static ModelConfig bert_base() {
    ModelConfig c;
    c.name = "Bert";
    return c;
  }
  static ModelConfig albert() {
    ModelConfig c;
    c.name = "Albert";
    c.num_layers = 12;
    c.hidden = 4096;
    c.heads = 64;
    c.intermediate = 16384;
    c.share_layer_weights = true;
    return c;
  }
  static ModelConfig distilbert() {
    ModelConfig c;
    c.name = "DistilBert";
    c.num_layers = 6;
    return c;
  }
  // Small configuration for tests and examples that execute real numerics.
  static ModelConfig tiny(int layers = 2, int hidden = 64, int heads = 4,
                          int inter = 128, int vocab = 100) {
    ModelConfig c;
    c.name = "Tiny";
    c.num_layers = layers;
    c.hidden = hidden;
    c.heads = heads;
    c.intermediate = inter;
    c.vocab = vocab;
    c.max_pos = 512;
    return c;
  }
  // Tiny causal-LM variant (decoder-only GPT layout) for the radix-prefix
  // serving paths.
  static ModelConfig tiny_causal(int layers = 2, int hidden = 64,
                                 int heads = 4, int inter = 128,
                                 int vocab = 100) {
    ModelConfig c = tiny(layers, hidden, heads, inter, vocab);
    c.name = "TinyCausal";
    c.decoder_only = true;
    return c;
  }
};

}  // namespace turbo::model
