#include "model/encoder.h"

#include <cmath>

#include "kernels/elementwise.h"
#include "kernels/embedding.h"
#include "kernels/fp16.h"
#include "kernels/gemm.h"
#include "kernels/reduction.h"

namespace turbo::model {

EncoderModel::EncoderModel(ModelConfig config, uint64_t seed)
    : EncoderModel(config, EncoderWeights::random(config, seed)) {}

EncoderModel::EncoderModel(ModelConfig config, EncoderWeights weights)
    : config_(std::move(config)),
      weights_(std::move(weights)),
      layer_graph_(graph::build_encoder_layer_fused(config_.layer_dims())) {
  TT_CHECK_EQ(weights_.layers.size(),
              static_cast<size_t>(config_.share_layer_weights
                                      ? 1
                                      : config_.num_layers));
  for (const auto& t : layer_graph_.tensors()) {
    tensor_id_by_name_[t.name] = t.id;
  }
}

Tensor EncoderModel::forward(const Tensor& ids,
                             const std::vector<int>* valid_lens) {
  TT_CHECK_EQ(ids.shape().ndim(), 2);
  TT_CHECK(ids.dtype() == DType::kI32);
  const int B = static_cast<int>(ids.shape()[0]);
  const int S = static_cast<int>(ids.shape()[1]);
  const int H = config_.hidden;
  const int heads = config_.heads;
  const int d = config_.head_dim();
  const int I = config_.intermediate;
  const long BS = static_cast<long>(B) * S;
  if (valid_lens) TT_CHECK_EQ(static_cast<int>(valid_lens->size()), B);

  // Hidden-state ping-pong buffers live outside the per-layer plan: the
  // layer output must survive into the next layer's op 0, which the
  // single-layer lifetime plan cannot express.
  if (!hidden_a_.defined() || hidden_a_.numel() < BS * H) {
    hidden_a_ = Tensor::owned(Shape{BS, H});
    hidden_b_ = Tensor::owned(Shape{BS, H});
  }

  // Plan this request's intermediates (Algorithm 1) once; reuse per layer.
  std::vector<memory::TensorUsage> usages;
  for (auto& u : layer_graph_.tensor_usages(B, S)) {
    const auto& spec = layer_graph_.tensor(u.tensor_id);
    if (spec.is_graph_input || spec.is_graph_output) continue;
    usages.push_back(std::move(u));
  }
  const memory::InferencePlan plan = allocator_.begin_inference(usages);
  last_planning_us_ = plan.planning_us;
  auto buf = [&](const char* name) -> float* {
    return reinterpret_cast<float*>(
        plan.placements.at(tensor_id_by_name_.at(name)).ptr);
  };

  float* qkv_out = buf("qkv_out");
  float* q = buf("Q");
  float* k = buf("K");
  float* v = buf("V");
  float* attn_score = buf("attn_score");
  float* ctx_layer = buf("ctx_layer");
  float* trans_out = buf("trans_out");
  float* attn_out = buf("attn_out");
  float* attn_ln_out = buf("attn_ln_out");
  float* intermediate_out = buf("intermediate_out");
  float* layer_out_raw = buf("layer_out_raw");

  // Embedding front-end.
  float* cur = hidden_a_.data<float>();
  float* nxt = hidden_b_.data<float>();
  kernels::embedding_lookup_layernorm(
      cur, ids.data<int32_t>(), weights_.embedding.word.data<float>(),
      weights_.embedding.position.data<float>(), nullptr, nullptr,
      weights_.embedding.ln_gamma.data<float>(),
      weights_.embedding.ln_beta.data<float>(), B, S, H, config_.vocab,
      config_.max_pos);

  const float scale = 1.0f / std::sqrt(static_cast<float>(d));
  const int* lens = valid_lens ? valid_lens->data() : nullptr;

  // GEMM dispatch: fp32 cuBLAS path or the Turbo-TC tensor-core numeric
  // contract (fp16 operands, fp32 accumulation).
  const bool tc = config_.tensor_core_gemm;
  auto run_gemm = [tc](const float* a, const float* b, float* c, int m,
                       int n, int k) {
    if (tc) {
      kernels::gemm_fp16(a, b, c, m, n, k);
    } else {
      kernels::gemm(a, b, c, m, n, k);
    }
  };
  auto run_batched = [tc](const float* a, const float* b, float* c,
                          int batch, int m, int n, int k, long sa, long sb,
                          long sc, bool trans_b) {
    if (tc) {
      for (int i = 0; i < batch; ++i) {
        kernels::gemm_fp16(a + static_cast<long>(i) * sa,
                           b + static_cast<long>(i) * sb,
                           c + static_cast<long>(i) * sc, m, n, k, trans_b);
      }
    } else {
      kernels::batched_gemm(a, b, c, batch, m, n, k, sa, sb, sc, trans_b);
    }
  };

  for (int layer = 0; layer < config_.num_layers; ++layer) {
    const EncoderLayerWeights& w = layer_weights(layer);

    // Gemm012Fused: [BS, H] x [H, 3H] -> packed QKV.
    run_gemm(cur, w.qkv_weight.data<float>(), qkv_out,
             static_cast<int>(BS), 3 * H, H);
    // SplitAddBiasTransposeForScore.
    kernels::split_add_bias_transpose(qkv_out, w.qkv_bias.data<float>(), q, k,
                                      v, B, S, heads, d);
    // BatchGemm3: scores = Q x K^T per (batch, head).
    run_batched(q, k, attn_score, B * heads, S, S, d,
                static_cast<long>(S) * d, static_cast<long>(S) * d,
                static_cast<long>(S) * S, /*trans_b=*/true);
    // ApplyMaskAndSoftmax (in place, padded keys masked).
    kernels::attention_softmax(attn_score, B, heads, S, S, scale, lens);
    // BatchGemm4: context = softmax(scores) x V.
    run_batched(attn_score, v, ctx_layer, B * heads, S, d, S,
                static_cast<long>(S) * S, static_cast<long>(S) * d,
                static_cast<long>(S) * d, /*trans_b=*/false);
    // TransposeForScore: [B, h, S, d] -> [B, S, H].
    kernels::transpose_for_score(ctx_layer, trans_out, B, S, heads, d);
    // Gemm5: attention output projection.
    run_gemm(trans_out, w.attn_out_weight.data<float>(), attn_out,
             static_cast<int>(BS), H, H);
    // AddBiasLayerNorm with the layer input as residual.
    kernels::add_bias_layernorm(attn_ln_out, attn_out, cur,
                                w.attn_out_bias.data<float>(),
                                w.ln1_gamma.data<float>(),
                                w.ln1_beta.data<float>(), BS, H);
    // BertIntermediate/gemm + AddBiasAct.
    run_gemm(attn_ln_out, w.inter_weight.data<float>(), intermediate_out,
             static_cast<int>(BS), I, H);
    kernels::add_bias_gelu(intermediate_out, w.inter_bias.data<float>(), BS,
                           I);
    // BertOutput/gemm + AddBiasLayerNorm.
    run_gemm(intermediate_out, w.out_weight.data<float>(), layer_out_raw,
             static_cast<int>(BS), H, I);
    kernels::add_bias_layernorm(nxt, layer_out_raw, attn_ln_out,
                                w.out_bias.data<float>(),
                                w.ln2_gamma.data<float>(),
                                w.ln2_beta.data<float>(), BS, H);
    std::swap(cur, nxt);
  }

  Tensor out = Tensor::owned(Shape{B, S, H});
  std::copy(cur, cur + BS * H, out.data<float>());
  return out;
}

Tensor EncoderModel::forward_reference(const Tensor& ids,
                                       const std::vector<int>* valid_lens) {
  const int B = static_cast<int>(ids.shape()[0]);
  const int S = static_cast<int>(ids.shape()[1]);
  const int H = config_.hidden;
  const int heads = config_.heads;
  const int d = config_.head_dim();
  const int I = config_.intermediate;
  const long BS = static_cast<long>(B) * S;
  const float scale = 1.0f / std::sqrt(static_cast<float>(d));
  const int* lens = valid_lens ? valid_lens->data() : nullptr;

  Tensor hidden = Tensor::owned(Shape{BS, H});
  kernels::embedding_lookup_layernorm(
      hidden.data<float>(), ids.data<int32_t>(),
      weights_.embedding.word.data<float>(),
      weights_.embedding.position.data<float>(), nullptr, nullptr,
      weights_.embedding.ln_gamma.data<float>(),
      weights_.embedding.ln_beta.data<float>(), B, S, H, config_.vocab,
      config_.max_pos);

  for (int layer = 0; layer < config_.num_layers; ++layer) {
    const EncoderLayerWeights& w = layer_weights(layer);
    // Unfused path: separate projections, biases and transposes, each in
    // its own freshly owned buffer.
    Tensor qkv = Tensor::owned(Shape{BS, 3 * H});
    kernels::gemm_ref(hidden.data<float>(), w.qkv_weight.data<float>(),
                      qkv.data<float>(), static_cast<int>(BS), 3 * H, H);
    kernels::add_bias(qkv.data<float>(), w.qkv_bias.data<float>(), BS, 3 * H);

    Tensor q = Tensor::owned(Shape{static_cast<long>(B) * heads, S, d});
    Tensor k = Tensor::owned(Shape{static_cast<long>(B) * heads, S, d});
    Tensor v = Tensor::owned(Shape{static_cast<long>(B) * heads, S, d});
    // Unpack [BS, 3, H] planes, then per-tensor head transpose.
    Tensor plane = Tensor::owned(Shape{BS, H});
    Tensor* outs[3] = {&q, &k, &v};
    for (int which = 0; which < 3; ++which) {
      for (long r = 0; r < BS; ++r) {
        const float* src = qkv.data<float>() + (r * 3 + which) * H;
        std::copy(src, src + H, plane.data<float>() + r * H);
      }
      kernels::transpose_to_heads(plane.data<float>(), outs[which]->data<float>(),
                                  B, S, heads, d);
    }

    Tensor scores =
        Tensor::owned(Shape{static_cast<long>(B) * heads, S, S});
    for (int bh = 0; bh < B * heads; ++bh) {
      kernels::gemm_ref(q.data<float>() + static_cast<long>(bh) * S * d,
                        k.data<float>() + static_cast<long>(bh) * S * d,
                        scores.data<float>() + static_cast<long>(bh) * S * S,
                        S, S, d, /*trans_b=*/true);
    }
    kernels::attention_softmax(scores.data<float>(), B, heads, S, S, scale,
                               lens);
    Tensor ctx = Tensor::owned(Shape{static_cast<long>(B) * heads, S, d});
    for (int bh = 0; bh < B * heads; ++bh) {
      kernels::gemm_ref(scores.data<float>() + static_cast<long>(bh) * S * S,
                        v.data<float>() + static_cast<long>(bh) * S * d,
                        ctx.data<float>() + static_cast<long>(bh) * S * d, S,
                        d, S);
    }
    Tensor merged = Tensor::owned(Shape{BS, H});
    kernels::transpose_for_score(ctx.data<float>(), merged.data<float>(), B,
                                 S, heads, d);

    Tensor attn = Tensor::owned(Shape{BS, H});
    kernels::gemm_ref(merged.data<float>(), w.attn_out_weight.data<float>(),
                      attn.data<float>(), static_cast<int>(BS), H, H);
    kernels::add_bias(attn.data<float>(), w.attn_out_bias.data<float>(), BS,
                      H);
    kernels::add_residual(attn.data<float>(), hidden.data<float>(), BS * H);
    Tensor attn_ln = Tensor::owned(Shape{BS, H});
    kernels::layernorm(attn_ln.data<float>(), attn.data<float>(),
                       w.ln1_gamma.data<float>(), w.ln1_beta.data<float>(),
                       BS, H);

    Tensor inter = Tensor::owned(Shape{BS, I});
    kernels::gemm_ref(attn_ln.data<float>(), w.inter_weight.data<float>(),
                      inter.data<float>(), static_cast<int>(BS), I, H);
    kernels::add_bias(inter.data<float>(), w.inter_bias.data<float>(), BS, I);
    kernels::gelu(inter.data<float>(), BS * I);

    Tensor ffn = Tensor::owned(Shape{BS, H});
    kernels::gemm_ref(inter.data<float>(), w.out_weight.data<float>(),
                      ffn.data<float>(), static_cast<int>(BS), H, I);
    kernels::add_bias(ffn.data<float>(), w.out_bias.data<float>(), BS, H);
    kernels::add_residual(ffn.data<float>(), attn_ln.data<float>(), BS * H);
    kernels::layernorm(hidden.data<float>(), ffn.data<float>(),
                       w.ln2_gamma.data<float>(), w.ln2_beta.data<float>(),
                       BS, H);
  }

  Tensor out = Tensor::owned(Shape{B, S, H});
  std::copy(hidden.data<float>(), hidden.data<float>() + BS * H,
            out.data<float>());
  return out;
}

}  // namespace turbo::model
