#include "model/serialization.h"

#include <cstdint>
#include <fstream>

#include "common/check.h"

namespace turbo::model {

namespace {

constexpr uint32_t kMagic = 0x54555242;  // "TURB"
constexpr uint32_t kFormatVersion = 1;

void write_u32(std::ostream& out, uint32_t v) {
  out.write(reinterpret_cast<const char*>(&v), sizeof(v));
}
void write_i32(std::ostream& out, int32_t v) {
  out.write(reinterpret_cast<const char*>(&v), sizeof(v));
}
uint32_t read_u32(std::istream& in) {
  uint32_t v = 0;
  in.read(reinterpret_cast<char*>(&v), sizeof(v));
  TT_CHECK_MSG(in.good(), "truncated checkpoint");
  return v;
}
int32_t read_i32(std::istream& in) {
  int32_t v = 0;
  in.read(reinterpret_cast<char*>(&v), sizeof(v));
  TT_CHECK_MSG(in.good(), "truncated checkpoint");
  return v;
}

void write_string(std::ostream& out, const std::string& s) {
  write_u32(out, static_cast<uint32_t>(s.size()));
  out.write(s.data(), static_cast<long>(s.size()));
}
std::string read_string(std::istream& in) {
  const uint32_t n = read_u32(in);
  TT_CHECK_LE(n, 1u << 20);
  std::string s(n, '\0');
  in.read(s.data(), n);
  TT_CHECK_MSG(in.good(), "truncated checkpoint");
  return s;
}

void write_tensor(std::ostream& out, const std::string& name,
                  const Tensor& t) {
  write_string(out, name);
  write_u32(out, static_cast<uint32_t>(t.shape().ndim()));
  for (int i = 0; i < t.shape().ndim(); ++i) {
    write_i32(out, static_cast<int32_t>(t.shape()[i]));
  }
  out.write(reinterpret_cast<const char*>(t.data<float>()),
            static_cast<long>(t.bytes()));
}

Tensor read_tensor(std::istream& in, const std::string& expected_name) {
  const std::string name = read_string(in);
  TT_CHECK_MSG(name == expected_name, "checkpoint tensor order mismatch: got "
                                          << name << ", expected "
                                          << expected_name);
  const uint32_t ndim = read_u32(in);
  TT_CHECK_LE(ndim, 8u);
  std::vector<int64_t> dims;
  for (uint32_t i = 0; i < ndim; ++i) dims.push_back(read_i32(in));
  Tensor t = Tensor::owned(Shape(dims));
  in.read(reinterpret_cast<char*>(t.data<float>()),
          static_cast<long>(t.bytes()));
  TT_CHECK_MSG(in.good(), "truncated tensor data for " << expected_name);
  return t;
}

// Name/tensor pairs of one encoder layer, in a fixed order shared by the
// writer and the reader.
template <typename Fn>
void for_each_layer_tensor(EncoderLayerWeights& w, Fn&& fn) {
  fn("qkv_weight", w.qkv_weight);
  fn("qkv_bias", w.qkv_bias);
  fn("attn_out_weight", w.attn_out_weight);
  fn("attn_out_bias", w.attn_out_bias);
  fn("ln1_gamma", w.ln1_gamma);
  fn("ln1_beta", w.ln1_beta);
  fn("inter_weight", w.inter_weight);
  fn("inter_bias", w.inter_bias);
  fn("out_weight", w.out_weight);
  fn("out_bias", w.out_bias);
  fn("ln2_gamma", w.ln2_gamma);
  fn("ln2_beta", w.ln2_beta);
}

}  // namespace

void save_encoder(const std::string& path, const ModelConfig& config,
                  const EncoderWeights& weights) {
  std::ofstream out(path, std::ios::binary);
  TT_CHECK_MSG(out.good(), "cannot open " << path << " for writing");
  write_u32(out, kMagic);
  write_u32(out, kFormatVersion);
  write_string(out, config.name);
  write_i32(out, config.num_layers);
  write_i32(out, config.hidden);
  write_i32(out, config.heads);
  write_i32(out, config.intermediate);
  write_i32(out, config.vocab);
  write_i32(out, config.max_pos);
  write_i32(out, config.share_layer_weights ? 1 : 0);
  write_i32(out, config.tensor_core_gemm ? 1 : 0);

  // Embedding block.
  auto& emb = const_cast<EmbeddingWeights&>(weights.embedding);
  write_tensor(out, "word", emb.word);
  write_tensor(out, "position", emb.position);
  write_tensor(out, "emb_ln_gamma", emb.ln_gamma);
  write_tensor(out, "emb_ln_beta", emb.ln_beta);

  write_u32(out, static_cast<uint32_t>(weights.layers.size()));
  for (auto& layer : const_cast<std::vector<EncoderLayerWeights>&>(
           weights.layers)) {
    for_each_layer_tensor(layer, [&](const char* name, Tensor& t) {
      write_tensor(out, name, t);
    });
  }
  TT_CHECK_MSG(out.good(), "write failure on " << path);
}

LoadedEncoder load_encoder(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  TT_CHECK_MSG(in.good(), "cannot open " << path);
  TT_CHECK_MSG(read_u32(in) == kMagic, "bad checkpoint magic in " << path);
  TT_CHECK_MSG(read_u32(in) == kFormatVersion,
               "unsupported checkpoint version in " << path);

  LoadedEncoder loaded;
  loaded.config.name = read_string(in);
  loaded.config.num_layers = read_i32(in);
  loaded.config.hidden = read_i32(in);
  loaded.config.heads = read_i32(in);
  loaded.config.intermediate = read_i32(in);
  loaded.config.vocab = read_i32(in);
  loaded.config.max_pos = read_i32(in);
  loaded.config.share_layer_weights = read_i32(in) != 0;
  loaded.config.tensor_core_gemm = read_i32(in) != 0;

  loaded.weights.embedding.word = read_tensor(in, "word");
  loaded.weights.embedding.position = read_tensor(in, "position");
  loaded.weights.embedding.ln_gamma = read_tensor(in, "emb_ln_gamma");
  loaded.weights.embedding.ln_beta = read_tensor(in, "emb_ln_beta");

  const uint32_t num_layer_sets = read_u32(in);
  TT_CHECK_LE(num_layer_sets, 1000u);
  loaded.weights.layers.resize(num_layer_sets);
  for (auto& layer : loaded.weights.layers) {
    for_each_layer_tensor(layer, [&](const char* name, Tensor& t) {
      t = read_tensor(in, name);
    });
  }
  return loaded;
}

}  // namespace turbo::model
