// Binary model checkpoints.
//
// The serving framework's model-version management (paper §2.2) needs
// durable weights: this module writes/reads a self-describing little-endian
// container — magic, format version, the ModelConfig, then named tensors.
// Round-trips are bit-exact.
#pragma once

#include <string>

#include "model/weights.h"

namespace turbo::model {

// Serialize config + weights. Throws CheckError on I/O failure.
void save_encoder(const std::string& path, const ModelConfig& config,
                  const EncoderWeights& weights);

struct LoadedEncoder {
  ModelConfig config;
  EncoderWeights weights;
};

// Load a checkpoint written by save_encoder. Throws CheckError on a
// missing file, bad magic, or truncated tensor data.
LoadedEncoder load_encoder(const std::string& path);

}  // namespace turbo::model
