#include "model/weights.h"

#include <cmath>

namespace turbo::model {

namespace {

Tensor random_matrix(Rng& rng, int64_t rows, int64_t cols) {
  Tensor t = Tensor::owned(Shape{rows, cols});
  // Scaled init keeps activations O(1) through deep stacks.
  const float stddev = 0.02f;
  rng.fill_normal(t.data<float>(), static_cast<size_t>(t.numel()), 0.0f,
                  stddev);
  return t;
}

Tensor random_bias(Rng& rng, int64_t n) {
  Tensor t = Tensor::owned(Shape{n});
  rng.fill_normal(t.data<float>(), static_cast<size_t>(t.numel()), 0.0f,
                  0.01f);
  return t;
}

Tensor ones(int64_t n) {
  Tensor t = Tensor::owned(Shape{n});
  float* d = t.data<float>();
  for (int64_t i = 0; i < n; ++i) d[i] = 1.0f;
  return t;
}

}  // namespace

EncoderLayerWeights EncoderLayerWeights::random(const ModelConfig& config,
                                                Rng& rng) {
  const int H = config.hidden;
  const int I = config.intermediate;
  EncoderLayerWeights w;
  w.qkv_weight = random_matrix(rng, H, 3 * H);
  w.qkv_bias = random_bias(rng, 3 * H);
  w.attn_out_weight = random_matrix(rng, H, H);
  w.attn_out_bias = random_bias(rng, H);
  w.ln1_gamma = ones(H);
  w.ln1_beta = random_bias(rng, H);
  w.inter_weight = random_matrix(rng, H, I);
  w.inter_bias = random_bias(rng, I);
  w.out_weight = random_matrix(rng, I, H);
  w.out_bias = random_bias(rng, H);
  w.ln2_gamma = ones(H);
  w.ln2_beta = random_bias(rng, H);
  return w;
}

EmbeddingWeights EmbeddingWeights::random(const ModelConfig& config,
                                          Rng& rng) {
  EmbeddingWeights w;
  w.word = random_matrix(rng, config.vocab, config.hidden);
  w.position = random_matrix(rng, config.max_pos, config.hidden);
  w.ln_gamma = ones(config.hidden);
  w.ln_beta = random_bias(rng, config.hidden);
  return w;
}

EncoderWeights EncoderWeights::random(const ModelConfig& config,
                                      uint64_t seed) {
  Rng rng(seed);
  EncoderWeights w;
  w.embedding = EmbeddingWeights::random(config, rng);
  const int distinct = config.share_layer_weights ? 1 : config.num_layers;
  w.layers.reserve(static_cast<size_t>(distinct));
  for (int i = 0; i < distinct; ++i) {
    w.layers.push_back(EncoderLayerWeights::random(config, rng));
  }
  return w;
}

DecoderLayerWeights DecoderLayerWeights::random(const ModelConfig& config,
                                                Rng& rng) {
  const int H = config.hidden;
  const int I = config.intermediate;
  DecoderLayerWeights w;
  w.self_qkv_weight = random_matrix(rng, H, 3 * H);
  w.self_qkv_bias = random_bias(rng, 3 * H);
  w.self_out_weight = random_matrix(rng, H, H);
  w.self_out_bias = random_bias(rng, H);
  w.ln1_gamma = ones(H);
  w.ln1_beta = random_bias(rng, H);
  w.cross_q_weight = random_matrix(rng, H, H);
  w.cross_q_bias = random_bias(rng, H);
  w.cross_kv_weight = random_matrix(rng, H, 2 * H);
  w.cross_kv_bias = random_bias(rng, 2 * H);
  w.cross_out_weight = random_matrix(rng, H, H);
  w.cross_out_bias = random_bias(rng, H);
  w.ln2_gamma = ones(H);
  w.ln2_beta = random_bias(rng, H);
  w.inter_weight = random_matrix(rng, H, I);
  w.inter_bias = random_bias(rng, I);
  w.out_weight = random_matrix(rng, I, H);
  w.out_bias = random_bias(rng, H);
  w.ln3_gamma = ones(H);
  w.ln3_beta = random_bias(rng, H);
  return w;
}

DecoderWeights DecoderWeights::random(const ModelConfig& config,
                                      uint64_t seed) {
  Rng rng(seed);
  DecoderWeights w;
  w.embedding = EmbeddingWeights::random(config, rng);
  w.layers.reserve(static_cast<size_t>(config.num_layers));
  for (int i = 0; i < config.num_layers; ++i) {
    w.layers.push_back(DecoderLayerWeights::random(config, rng));
  }
  w.output_proj = random_matrix(rng, config.hidden, config.vocab);
  return w;
}

}  // namespace turbo::model
