// Sequence-classification head: BERT pooler (tanh of the projected [CLS]
// position) plus a linear classifier. The model behind the paper's serving
// experiments ("a BERT-based service used to classify a paragraph of
// text", §6.3).
#pragma once

#include "model/encoder.h"

namespace turbo::model {

class SequenceClassifier {
 public:
  SequenceClassifier(ModelConfig config, int num_classes, uint64_t seed = 42);

  // ids: [B, S]. Returns logits [B, num_classes].
  Tensor classify(const Tensor& ids,
                  const std::vector<int>* valid_lens = nullptr);

  // Argmax labels for convenience.
  std::vector<int> predict(const Tensor& ids,
                           const std::vector<int>* valid_lens = nullptr);

  EncoderModel& encoder() { return encoder_; }
  int num_classes() const { return num_classes_; }

 private:
  EncoderModel encoder_;
  int num_classes_;
  Tensor pooler_weight_, pooler_bias_;      // [H, H], [H]
  Tensor classifier_weight_, classifier_bias_;  // [H, C], [C]
};

}  // namespace turbo::model
